"""Co-simulation utility (repro.harness.cosim)."""

import pytest

from repro.harness.cosim import (
    CosimResult,
    Divergence,
    cosim,
    cosim_vcd,
    dump_response_vcd,
    output_mismatches,
)
from repro.rtl import CircuitBuilder, Netlist, WordSim
from repro.waveform.vcd import read_vcd_stimuli, write_vcd
from tests.helpers import random_circuit, random_vectors


def _counter(bug_at: int | None = None):
    """8-bit counter; optionally with a planted off-by-one at a value."""
    b = CircuitBuilder()
    en = b.input("en", 1)
    count = b.reg("count", 8)
    step = b.const(1, 8)
    if bug_at is not None:
        step = b.mux(count == bug_at, b.const(2, 8), step)  # planted bug
    count.next = b.mux(en, count + step, count)
    b.output("q", count)
    return b.build()


class TestCosim:
    def test_identical_engines_pass(self):
        circuit = random_circuit(900, n_ops=40)
        result = cosim(
            WordSim(Netlist(circuit)),
            WordSim(Netlist(circuit)),
            random_vectors(circuit, 0, 30),
        )
        assert result.passed
        assert result.cycles == 30
        assert "PASS" in result.report()

    def test_divergence_localized(self):
        good = WordSim(Netlist(_counter()))
        bad = WordSim(Netlist(_counter(bug_at=5)))
        result = cosim(good, bad, [{"en": 1}] * 20)
        assert not result.passed
        d = result.divergence
        # count reaches 5 at cycle 5; the wrong step lands at cycle 6.
        assert d.cycle == 6
        assert d.signals["q"] == (6, 7)
        assert "first divergence at cycle 6" in d.describe()
        assert result.cycles == 7  # stopped at divergence

    def test_continue_past_divergence(self):
        good = WordSim(Netlist(_counter()))
        bad = WordSim(Netlist(_counter(bug_at=5)))
        result = cosim(good, bad, [{"en": 1}] * 20, stop_on_divergence=False)
        assert result.cycles == 20
        assert result.divergence.cycle == 6  # still the first one

    def test_signal_filter(self):
        b1 = _counter()
        good = WordSim(Netlist(b1))
        bad = WordSim(Netlist(_counter(bug_at=3)))
        result = cosim(good, bad, [{"en": 1}] * 10, signals=[])
        assert result.passed  # nothing watched, nothing diverges

    def test_history_depth(self):
        good = WordSim(Netlist(_counter()))
        bad = WordSim(Netlist(_counter(bug_at=5)))
        result = cosim(good, bad, [{"en": 1}] * 20, history=2)
        assert len(result.divergence.recent_inputs) == 2

    def test_gem_vs_golden_through_cosim(self):
        from repro.core.boomerang import BoomerangConfig
        from repro.core.compiler import GemCompiler, GemConfig
        from repro.core.partition import PartitionConfig

        circuit = random_circuit(901, n_ops=50, n_regs=3)
        design = GemCompiler(
            GemConfig(
                partition=PartitionConfig(gates_per_partition=400),
                boomerang=BoomerangConfig(width_log2=10),
            )
        ).compile(circuit)
        result = cosim(
            WordSim(Netlist(circuit)),
            design.simulator(),
            random_vectors(circuit, 7, 30),
            record_trace=True,
        )
        assert result.passed
        assert len(result.trace) == 30


class TestDivergenceReporting:
    """Formatting and edge cases of the divergence report."""

    def test_describe_formatting(self):
        d = Divergence(
            cycle=12,
            signals={"q": (0x1F, 0x20), "alpha": (0, 1)},
            inputs={"en": 1},
            recent_inputs=[{"en": 0}, {"en": 1}],
        )
        text = d.describe()
        lines = text.splitlines()
        assert lines[0] == "first divergence at cycle 12:"
        # signals sorted by name, values in hex
        assert lines[1] == "  alpha: reference=0x0 dut=0x1"
        assert lines[2] == "  q: reference=0x1f dut=0x20"
        assert "inputs that cycle: {'en': 1}" in text
        assert "previous 2 input vectors:" in text
        # history is oldest-first, labelled t-N .. t-1
        assert lines.index("    t-2: {'en': 0}") < lines.index("    t-1: {'en': 1}")

    def test_describe_without_history(self):
        d = Divergence(cycle=0, signals={"q": (1, 0)}, inputs={}, recent_inputs=[])
        text = d.describe()
        assert "previous" not in text
        assert "first divergence at cycle 0:" in text

    def test_empty_stimulus_trace(self):
        good = WordSim(Netlist(_counter()))
        bad = WordSim(Netlist(_counter(bug_at=0)))
        result = cosim(good, bad, [])
        assert result.passed
        assert result.cycles == 0
        assert result.divergence is None
        assert result.trace == []
        assert result.report() == "PASS: 0 cycles, outputs identical"

    def test_divergence_on_cycle_zero(self):
        # Different register init values disagree on the very first cycle.
        def counter(init):
            b = CircuitBuilder()
            count = b.reg("count", 8, init=init)
            count.next = count + b.const(1, 8)
            b.output("q", count)
            return b.build()

        result = cosim(
            WordSim(Netlist(counter(0))),
            WordSim(Netlist(counter(1))),
            [{}] * 5,
        )
        assert not result.passed
        d = result.divergence
        assert d.cycle == 0
        assert d.recent_inputs == []  # nothing precedes cycle 0
        assert d.signals["q"] == (0, 1)
        assert "first divergence at cycle 0" in result.report()
        assert result.report().startswith("FAIL after 1 cycles")

    def test_output_mismatches_helper(self):
        ref = {"a": 1, "b": 2, "c": 3}
        dut = {"a": 1, "b": 5, "d": 9}
        assert output_mismatches(ref, dut) == {"b": (2, 5)}
        # restricted signal list, including one only the reference has
        assert output_mismatches(ref, dut, signals=["a", "c"]) == {"c": (3, None)}
        assert output_mismatches(ref, ref) == {}


class TestVcdIntegration:
    def test_cosim_from_vcd(self, tmp_path):
        circuit = _counter()
        stimuli = [{"en": i % 2} for i in range(16)]
        path = str(tmp_path / "stim.vcd")
        write_vcd(path, stimuli, {"en": 1})
        result = cosim_vcd(WordSim(Netlist(circuit)), WordSim(Netlist(circuit)), path)
        assert result.passed
        assert result.cycles == 16

    def test_dump_response_roundtrip(self, tmp_path):
        circuit = _counter()
        path = str(tmp_path / "resp.vcd")
        n = dump_response_vcd(
            WordSim(Netlist(circuit)), [{"en": 1}] * 10, path, {"q": 8}
        )
        assert n == 10
        responses = read_vcd_stimuli(path)
        assert [r["q"] for r in responses] == list(range(10))
