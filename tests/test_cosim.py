"""Co-simulation utility (repro.harness.cosim)."""

import pytest

from repro.harness.cosim import CosimResult, cosim, cosim_vcd, dump_response_vcd
from repro.rtl import CircuitBuilder, Netlist, WordSim
from repro.waveform.vcd import read_vcd_stimuli, write_vcd
from tests.helpers import random_circuit, random_vectors


def _counter(bug_at: int | None = None):
    """8-bit counter; optionally with a planted off-by-one at a value."""
    b = CircuitBuilder()
    en = b.input("en", 1)
    count = b.reg("count", 8)
    step = b.const(1, 8)
    if bug_at is not None:
        step = b.mux(count == bug_at, b.const(2, 8), step)  # planted bug
    count.next = b.mux(en, count + step, count)
    b.output("q", count)
    return b.build()


class TestCosim:
    def test_identical_engines_pass(self):
        circuit = random_circuit(900, n_ops=40)
        result = cosim(
            WordSim(Netlist(circuit)),
            WordSim(Netlist(circuit)),
            random_vectors(circuit, 0, 30),
        )
        assert result.passed
        assert result.cycles == 30
        assert "PASS" in result.report()

    def test_divergence_localized(self):
        good = WordSim(Netlist(_counter()))
        bad = WordSim(Netlist(_counter(bug_at=5)))
        result = cosim(good, bad, [{"en": 1}] * 20)
        assert not result.passed
        d = result.divergence
        # count reaches 5 at cycle 5; the wrong step lands at cycle 6.
        assert d.cycle == 6
        assert d.signals["q"] == (6, 7)
        assert "first divergence at cycle 6" in d.describe()
        assert result.cycles == 7  # stopped at divergence

    def test_continue_past_divergence(self):
        good = WordSim(Netlist(_counter()))
        bad = WordSim(Netlist(_counter(bug_at=5)))
        result = cosim(good, bad, [{"en": 1}] * 20, stop_on_divergence=False)
        assert result.cycles == 20
        assert result.divergence.cycle == 6  # still the first one

    def test_signal_filter(self):
        b1 = _counter()
        good = WordSim(Netlist(b1))
        bad = WordSim(Netlist(_counter(bug_at=3)))
        result = cosim(good, bad, [{"en": 1}] * 10, signals=[])
        assert result.passed  # nothing watched, nothing diverges

    def test_history_depth(self):
        good = WordSim(Netlist(_counter()))
        bad = WordSim(Netlist(_counter(bug_at=5)))
        result = cosim(good, bad, [{"en": 1}] * 20, history=2)
        assert len(result.divergence.recent_inputs) == 2

    def test_gem_vs_golden_through_cosim(self):
        from repro.core.boomerang import BoomerangConfig
        from repro.core.compiler import GemCompiler, GemConfig
        from repro.core.partition import PartitionConfig

        circuit = random_circuit(901, n_ops=50, n_regs=3)
        design = GemCompiler(
            GemConfig(
                partition=PartitionConfig(gates_per_partition=400),
                boomerang=BoomerangConfig(width_log2=10),
            )
        ).compile(circuit)
        result = cosim(
            WordSim(Netlist(circuit)),
            design.simulator(),
            random_vectors(circuit, 7, 30),
            record_trace=True,
        )
        assert result.passed
        assert len(result.trace) == 30


class TestVcdIntegration:
    def test_cosim_from_vcd(self, tmp_path):
        circuit = _counter()
        stimuli = [{"en": i % 2} for i in range(16)]
        path = str(tmp_path / "stim.vcd")
        write_vcd(path, stimuli, {"en": 1})
        result = cosim_vcd(WordSim(Netlist(circuit)), WordSim(Netlist(circuit)), path)
        assert result.passed
        assert result.cycles == 16

    def test_dump_response_roundtrip(self, tmp_path):
        circuit = _counter()
        path = str(tmp_path / "resp.vcd")
        n = dump_response_vcd(
            WordSim(Netlist(circuit)), [{"en": 1}] * 10, path, {"q": 8}
        )
        assert n == 10
        responses = read_vcd_stimuli(path)
        assert [r["q"] for r in responses] == list(range(10))
