"""Event-based pruning in GEM (extension of the paper's §IV future work)."""

import pytest

from repro.core.boomerang import BoomerangConfig
from repro.core.compiler import GemCompiler, GemConfig
from repro.core.partition import PartitionConfig
from repro.core.perfmodel import A100, gem_metrics, gem_speed
from repro.core.pruning import PruningGemInterpreter, gem_pruned_speed
from repro.rtl import CircuitBuilder, Netlist, WordSim
from tests.helpers import lockstep, random_circuit, random_vectors


def _compile(circuit, gpp=400, width_log2=10):
    return GemCompiler(
        GemConfig(
            partition=PartitionConfig(gates_per_partition=gpp),
            boomerang=BoomerangConfig(width_log2=width_log2),
        )
    ).compile(circuit)


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    def test_pruned_matches_golden(self, seed):
        circuit = random_circuit(seed + 300, n_ops=60, n_regs=4, with_memory=True)
        design = _compile(circuit)
        lockstep(
            {
                "word": WordSim(Netlist(circuit)),
                "pruned": PruningGemInterpreter(design.program),
            },
            random_vectors(circuit, seed, 40),
        )

    def test_pruned_matches_golden_under_idle_phases(self):
        """Alternating busy/idle input phases — the case pruning targets
        and the case where stale-value bugs would show."""
        circuit = random_circuit(555, n_ops=60, n_regs=4, with_memory=True)
        design = _compile(circuit)
        stimuli = []
        busy = random_vectors(circuit, 1, 60)
        for i, vec in enumerate(busy):
            stimuli.append(vec if (i // 10) % 2 == 0 else dict(busy[(i // 10) * 10]))
        lockstep(
            {
                "word": WordSim(Netlist(circuit)),
                "pruned": PruningGemInterpreter(design.program),
            },
            stimuli,
        )

    def test_ram_partitions_wait_one_extra_cycle(self):
        # A design that writes once then idles: the value written in the
        # last busy cycle must surface on the read port one cycle later
        # even though sources are already stable.
        b = CircuitBuilder()
        wen = b.input("wen", 1)
        addr = b.input("addr", 2)
        data = b.input("data", 8)
        mem = b.memory("m", 4, 8)
        b.write(mem, wen, addr, data)
        b.output("rd", b.read(mem, addr, sync=True))
        circuit = b.build()
        design = _compile(circuit)
        gem = PruningGemInterpreter(design.program)
        word = WordSim(Netlist(circuit))
        seq = [
            {"wen": 1, "addr": 2, "data": 77},
            {"wen": 0, "addr": 2, "data": 77},  # sources change (wen)
            {"wen": 0, "addr": 2, "data": 77},  # stable; rd must show 77
            {"wen": 0, "addr": 2, "data": 77},
        ]
        for vec in seq:
            assert gem.step(vec) == word.step(vec)


class TestSkipBehaviour:
    def test_idle_inputs_skip_blocks(self):
        circuit = random_circuit(556, n_ops=80, n_regs=2)
        design = _compile(circuit, gpp=200)
        gem = PruningGemInterpreter(design.program)
        frozen = random_vectors(circuit, 2, 1)[0]
        for _ in range(30):
            gem.step(frozen)
        # With constant inputs the design settles; most executions prune.
        assert gem.skip_fraction > 0.3, gem.skip_fraction

    def test_busy_inputs_rarely_skip(self):
        circuit = random_circuit(557, n_ops=80, n_regs=2)
        design = _compile(circuit, gpp=200)
        gem = PruningGemInterpreter(design.program)
        for vec in random_vectors(circuit, 3, 30):
            gem.step(vec)
        assert gem.skip_fraction < 0.5

    def test_counters(self):
        circuit = random_circuit(558, n_ops=40)
        design = _compile(circuit)
        gem = PruningGemInterpreter(design.program)
        for _ in range(10):
            gem.step({})
        total = gem.blocks_executed + gem.blocks_skipped
        assert total == 10 * design.merge.plan.num_partitions


class TestPrunedModel:
    def test_speedup_monotone_in_skip_fraction(self):
        circuit = random_circuit(559, n_ops=60)
        metrics = gem_metrics(_compile(circuit))
        speeds = [gem_pruned_speed(metrics, f) for f in (0.0, 0.3, 0.6, 0.9)]
        assert speeds == sorted(speeds)

    def test_zero_skip_matches_baseline(self):
        circuit = random_circuit(560, n_ops=60)
        metrics = gem_metrics(_compile(circuit))
        assert gem_pruned_speed(metrics, 0.0) == pytest.approx(gem_speed(metrics, A100))

    def test_invalid_fraction(self):
        circuit = random_circuit(561, n_ops=30)
        metrics = gem_metrics(_compile(circuit))
        with pytest.raises(ValueError):
            gem_pruned_speed(metrics, 1.5)
