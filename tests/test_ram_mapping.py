"""RAM mapping (paper §III-B): native blocks, adapters, polyfill."""

import random

import pytest

from repro.core.ram_mapping import RamMappingConfig
from repro.core.synthesis import SynthesisConfig, synthesize
from repro.rtl import CircuitBuilder, Netlist, WordSim
from tests.helpers import lockstep


def _mem_design(depth=64, width=24, sync=True, read_ports=1, write_ports=1, read_en=False):
    b = CircuitBuilder("memdut")
    mem = b.memory("m", depth, width, init=[i * 3 for i in range(min(depth, 20))])
    abits = mem.addr_bits
    for p in range(write_ports):
        b.write(
            mem,
            b.input(f"wen{p}", 1),
            b.input(f"waddr{p}", abits),
            b.input(f"wdata{p}", width),
        )
    for p in range(read_ports):
        addr = b.input(f"raddr{p}", abits)
        en = b.input(f"ren{p}", 1) if (read_en and sync) else None
        b.output(f"rd{p}", b.read(mem, addr, sync=sync, en=en))
    return b.build()


def _rand_stimuli(circuit, seed, n):
    rng = random.Random(seed)
    return [
        {s.name: rng.getrandbits(s.width) for s in circuit.inputs} for _ in range(n)
    ]


def _check_equivalent(circuit, config=None, cycles=150, seed=0):
    word = WordSim(Netlist(circuit))
    synth = synthesize(circuit, config).make_sim()
    lockstep({"word": word, "gem": synth}, _rand_stimuli(circuit, seed, cycles))


class TestBlockMapping:
    CFG = SynthesisConfig(ram=RamMappingConfig(addr_bits=4, data_bits=8))

    def test_single_block_fit(self):
        circuit = _mem_design(depth=16, width=8)
        result = synthesize(circuit, self.CFG)
        report = result.memory_reports[0]
        assert report.mode == "blocks"
        assert report.blocks == 1
        _check_equivalent(circuit, self.CFG)

    def test_width_chunking(self):
        circuit = _mem_design(depth=16, width=24)
        result = synthesize(circuit, self.CFG)
        assert result.memory_reports[0].blocks == 3  # ceil(24/8) chunks
        _check_equivalent(circuit, self.CFG)

    def test_depth_banking(self):
        circuit = _mem_design(depth=64, width=8)
        result = synthesize(circuit, self.CFG)
        assert result.memory_reports[0].blocks == 4  # 64 / 2^4 banks
        assert result.memory_reports[0].adapter_gates > 0
        _check_equivalent(circuit, self.CFG)

    def test_multi_read_port_duplicates_blocks(self):
        circuit = _mem_design(depth=32, width=8, read_ports=2)
        result = synthesize(circuit, self.CFG)
        assert result.memory_reports[0].blocks == 2 * 2  # ports x banks
        _check_equivalent(circuit, self.CFG)

    def test_read_enable_hold(self):
        circuit = _mem_design(depth=64, width=16, read_en=True)
        _check_equivalent(circuit, self.CFG, cycles=200)

    def test_shallow_memory_pads_address(self):
        circuit = _mem_design(depth=8, width=8)  # depth < 2^addr_bits
        result = synthesize(circuit, self.CFG)
        assert result.memory_reports[0].blocks == 1
        _check_equivalent(circuit, self.CFG)

    def test_rom_is_mappable(self):
        b = CircuitBuilder()
        rom = b.memory("rom", 16, 8, init=list(range(16)))
        addr = b.input("addr", 4)
        b.output("data", b.read(rom, addr, sync=True))
        circuit = b.build()
        result = synthesize(circuit, self.CFG)
        assert result.memory_reports[0].mode == "blocks"
        _check_equivalent(circuit, self.CFG)


class TestPolyfill:
    CFG = SynthesisConfig(ram=RamMappingConfig(addr_bits=4, data_bits=8))

    def test_async_read_forces_polyfill(self):
        circuit = _mem_design(depth=16, width=8, sync=False)
        result = synthesize(circuit, self.CFG)
        report = result.memory_reports[0]
        assert report.mode == "polyfill"
        assert report.polyfill_ffs >= 16 * 8
        _check_equivalent(circuit, self.CFG)

    def test_multi_write_forces_polyfill(self):
        circuit = _mem_design(depth=16, width=8, write_ports=2)
        result = synthesize(circuit, self.CFG)
        assert result.memory_reports[0].mode == "polyfill"
        _check_equivalent(circuit, self.CFG)

    def test_mixed_sync_async_ports(self):
        b = CircuitBuilder()
        mem = b.memory("m", 16, 8)
        b.write(mem, b.input("wen", 1), b.input("waddr", 4), b.input("wdata", 8))
        b.output("s", b.read(mem, b.input("ra", 4), sync=True))
        b.output("a", b.read(mem, b.input("rb", 4), sync=False))
        circuit = b.build()
        result = synthesize(circuit, self.CFG)
        assert result.memory_reports[0].mode == "polyfill"
        _check_equivalent(circuit, self.CFG)

    def test_write_port_priority_matches_wordsim(self):
        # Two write ports hitting the same address: later port wins.
        b = CircuitBuilder()
        mem = b.memory("m", 8, 8)
        addr = b.input("addr", 3)
        b.write(mem, b.input("we0", 1), addr, b.input("d0", 8))
        b.write(mem, b.input("we1", 1), addr, b.input("d1", 8))
        b.output("rd", b.read(mem, addr, sync=False))
        circuit = b.build()
        word = WordSim(Netlist(circuit))
        synth = synthesize(circuit, self.CFG).make_sim()
        vec = {"addr": 3, "we0": 1, "we1": 1, "d0": 11, "d1": 22}
        word.step(vec)
        synth.step(vec)
        assert word.step({"addr": 3})["rd"] == 22
        assert synth.step({"addr": 3})["rd"] == 22

    def test_polyfill_async_cost_exceeds_block_cost(self):
        """The paper's §IV observation: async RAMs cost far more logic."""
        cfg = self.CFG
        sync_version = synthesize(_mem_design(depth=64, width=16, sync=True), cfg)
        async_version = synthesize(_mem_design(depth=64, width=16, sync=False), cfg)
        assert async_version.eaig.num_gates() > 4 * sync_version.eaig.num_gates()


class TestDefaults:
    def test_paper_block_shape(self):
        cfg = RamMappingConfig()
        assert cfg.addr_bits == 13
        assert cfg.data_bits == 32
