"""Harness utilities: registry, cache, tables, paper data, CLI parsing."""

import os

import pytest

from repro.harness.runner import DESIGNS, _cached
from repro.harness.tables import (
    PAPER_AVERAGE_SPEEDUPS,
    PAPER_EVENTS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    Table2Row,
    average_speedups,
    format_table,
    geomean,
)


class TestRegistry:
    def test_five_designs(self):
        assert set(DESIGNS) == {"nvdla", "rocketchip", "gemmini", "openpiton1", "openpiton8"}

    def test_entries_buildable(self):
        # openpiton1 is the cheapest; build it for real.
        circuit = DESIGNS["openpiton1"].build()
        assert circuit.name == "openpiton1_like"


class TestCache:
    def test_memory_and_disk_roundtrip(self, tmp_path, monkeypatch):
        import repro.harness.runner as runner

        monkeypatch.setattr(runner, "CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(runner, "_memory_cache", {})
        calls = []

        def make():
            calls.append(1)
            return {"v": 42}

        assert runner._cached("test:key", make) == {"v": 42}
        assert runner._cached("test:key", make) == {"v": 42}
        assert len(calls) == 1
        # New process simulation: clear memory cache, hits disk.
        monkeypatch.setattr(runner, "_memory_cache", {})
        assert runner._cached("test:key", make) == {"v": 42}
        assert len(calls) == 1

    def test_corrupt_cache_rebuilds(self, tmp_path, monkeypatch):
        import repro.harness.runner as runner

        monkeypatch.setattr(runner, "CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(runner, "_memory_cache", {})
        path = runner._cache_path("test:bad")
        os.makedirs(tmp_path, exist_ok=True)
        with open(path, "wb") as f:
            f.write(b"not a pickle")
        assert runner._cached("test:bad", lambda: 7) == 7


class TestPaperData:
    def test_table1_complete(self):
        assert set(PAPER_TABLE1) == set(DESIGNS)
        for row in PAPER_TABLE1.values():
            assert row["layers"] < row["levels"]

    def test_table2_row_counts(self):
        counts = {d: len(tests) for d, tests in PAPER_TABLE2.items()}
        assert counts == {
            "nvdla": 5, "rocketchip": 5, "gemmini": 2, "openpiton1": 3, "openpiton8": 3,
        }
        assert sum(counts.values()) == 18

    def test_paper_speedup_recomputation(self):
        """Recompute the paper's bottom-row averages from its own table —
        guards our transcription of Table II."""
        ratios = {"commercial": [], "verilator_8t": [], "verilator_1t": [], "gl0am": []}
        for tests in PAPER_TABLE2.values():
            for row in tests.values():
                for key in ratios:
                    if row[key] is not None:
                        ratios[key].append(row["gem_a100"] / row[key])
        for key, values in ratios.items():
            ours = sum(values) / len(values)
            assert ours == pytest.approx(PAPER_AVERAGE_SPEEDUPS[key], rel=0.02), key

    def test_openpiton_event_anomaly_recorded(self):
        assert PAPER_EVENTS["openpiton8"] / PAPER_EVENTS["openpiton1"] == pytest.approx(
            3.34, rel=0.01
        )


class TestTableFormatting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 100, "b": 0.125}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4
        assert "100" in lines[3]

    def test_format_empty(self):
        assert "empty" in format_table([])

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_average_speedups(self):
        rows = [
            Table2Row("d", "t", commercial=10, verilator_8t=20, verilator_1t=5,
                      gl0am=10, gem_a100=100, gem_3090=90),
            Table2Row("d", "u", commercial=20, verilator_8t=25, verilator_1t=10,
                      gl0am=50, gem_a100=100, gem_3090=90),
        ]
        avg = average_speedups(rows)
        assert avg["commercial"] == pytest.approx((10 + 5) / 2)
        assert avg["gl0am"] == pytest.approx((10 + 2) / 2)


class TestCli:
    def test_main_dispatch_tables_help(self, capsys):
        from repro.harness.cli import main_compile, main_run

        with pytest.raises(SystemExit):
            main_compile(["--help"])
        with pytest.raises(SystemExit):
            main_run(["not-a-design"])
