"""Unit tests for the word-level IR (repro.rtl.ir)."""

import pytest

from repro.rtl.ir import Circuit, OpKind, Signal


class TestSignal:
    def test_width_validation(self):
        with pytest.raises(ValueError):
            Signal(uid=0, name="x", width=0)

    def test_fields(self):
        s = Signal(uid=3, name="x", width=8)
        assert (s.uid, s.name, s.width) == (3, "x", 8)


class TestCircuitConstruction:
    def test_new_signal_uniquifies_names(self):
        c = Circuit()
        a = c.new_signal("x", 4)
        b = c.new_signal("x", 4)
        assert a.name == "x"
        assert b.name != "x"
        assert b.name.startswith("x")

    def test_single_producer_enforced(self):
        c = Circuit()
        s = c.new_signal("s", 4)
        c.add_op(OpKind.CONST, s, (), value=3)
        with pytest.raises(ValueError, match="already has a producer"):
            c.add_op(OpKind.CONST, s, (), value=4)

    def test_inputs_and_outputs_recorded(self):
        c = Circuit()
        i = c.add_input("a", 8)
        c.add_output("y", i)
        assert c.inputs == [i]
        assert c.outputs == [("y", i)]

    def test_registers_property(self):
        c = Circuit()
        d = c.new_signal("d", 4)
        c.add_op(OpKind.CONST, d, (), value=1)
        q = c.new_signal("q", 4)
        c.add_op(OpKind.REG, q, (d,), init=0)
        assert [op.out.name for op in c.registers] == ["q"]

    def test_stats(self):
        c = Circuit("top")
        i = c.add_input("a", 8)
        c.add_output("y", i)
        s = c.stats()
        assert s["name"] == "top"
        assert s["inputs"] == 1
        assert s["outputs"] == 1


class TestOpValidation:
    def _sig(self, c, width, value=0):
        s = c.new_signal(f"s{len(c.signals)}", width)
        c.add_op(OpKind.CONST, s, (), value=value)
        return s

    def test_binary_width_mismatch(self):
        c = Circuit()
        a = self._sig(c, 4)
        b = self._sig(c, 8)
        out = c.new_signal("out", 4)
        with pytest.raises(ValueError, match="widths must match"):
            c.add_op(OpKind.AND, out, (a, b))

    def test_binary_arity(self):
        c = Circuit()
        a = self._sig(c, 4)
        out = c.new_signal("out", 4)
        with pytest.raises(ValueError, match="2 inputs"):
            c.add_op(OpKind.ADD, out, (a,))

    def test_mux_select_width(self):
        c = Circuit()
        sel = self._sig(c, 2)
        a = self._sig(c, 4)
        b = self._sig(c, 4)
        out = c.new_signal("out", 4)
        with pytest.raises(ValueError, match="select must be 1 bit"):
            c.add_op(OpKind.MUX, out, (sel, a, b))

    def test_eq_output_must_be_one_bit(self):
        c = Circuit()
        a = self._sig(c, 4)
        b = self._sig(c, 4)
        out = c.new_signal("out", 4)
        with pytest.raises(ValueError, match="1 bit"):
            c.add_op(OpKind.EQ, out, (a, b))

    def test_slice_bounds(self):
        c = Circuit()
        a = self._sig(c, 4)
        out = c.new_signal("out", 3)
        with pytest.raises(ValueError, match="out of bounds"):
            c.add_op(OpKind.SLICE, out, (a,), lo=2)

    def test_concat_width_sum(self):
        c = Circuit()
        a = self._sig(c, 4)
        b = self._sig(c, 4)
        out = c.new_signal("out", 9)
        with pytest.raises(ValueError, match="sum of input widths"):
            c.add_op(OpKind.CONCAT, out, (a, b))

    def test_const_value_range(self):
        c = Circuit()
        out = c.new_signal("out", 4)
        with pytest.raises(ValueError, match="does not fit"):
            c.add_op(OpKind.CONST, out, (), value=16)

    def test_reg_init_range(self):
        c = Circuit()
        d = self._sig(c, 4)
        out = c.new_signal("out", 4)
        with pytest.raises(ValueError, match="init"):
            c.add_op(OpKind.REG, out, (d,), init=16)

    def test_shift_amount_attr_required(self):
        c = Circuit()
        a = self._sig(c, 4)
        out = c.new_signal("out", 4)
        with pytest.raises(ValueError, match="amount"):
            c.add_op(OpKind.SHLI, out, (a,))
