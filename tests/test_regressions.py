"""Regression pins for two quiet behaviors that previously had no tests.

1. ``gem-perf compare`` with baselines that share no (design, workload,
   batch, mode) key with the report: the gate is *vacuous* — it must say
   so and exit 0 even under ``--strict`` (an empty comparison is not a
   pass, but it is not a failure either; CI must not go red because a
   bench file rotated).
2. ``GemInterpreter`` falling back to the legacy path when stage fusion
   raises ``FusionError``: the fallback must warn exactly once through
   the ``repro.core.interpreter`` logger, flip ``mode`` to ``"legacy"``,
   and still simulate correctly.
3. Config-aware cache keying (docs/TUNING.md): tuned and default compiles
   of the same design must cache *independently* at both the runner layer
   (disk pickle per ``GemConfig.digest()``) and the interpreter's decode
   cache (``ProgramMeta.config_digest`` in the key) — before this keying a
   tuned compile could silently serve a default-config artifact.
4. The autotuner seed-determinism pin: same seed + same design CRC must
   pick the identical winning config and produce a bit-identical
   bitstream across two fresh processes, regardless of PYTHONHASHSEED.
"""

from __future__ import annotations

import json
import logging

from repro.core.boomerang import BoomerangConfig
from repro.core.compiler import GemCompiler, GemConfig
from repro.core.partition import PartitionConfig
from repro.harness.cli import main_perf
from repro.obs.report import build_run_report, write_report
from tests.helpers import random_circuit, random_vectors


def _report(tmp_path, design="nvdla", workload="idle", batch=1, mode="fused"):
    report = build_run_report(
        design=design,
        workload=workload,
        batch=batch,
        engine_mode=mode,
        cycles=1000,
        elapsed_s=0.5,
        registry=None,
    )
    path = str(tmp_path / "report.json")
    write_report(report, path)
    return path


class TestPerfCompareVacuousGate:
    def _bench(self, tmp_path, rows):
        path = str(tmp_path / "BENCH_x.json")
        with open(path, "w") as f:
            json.dump(rows, f)
        return path

    def test_no_comparable_baselines_exits_zero_even_strict(self, tmp_path, capsys):
        report = _report(tmp_path, design="nvdla")
        bench = self._bench(
            tmp_path,
            [{"design": "rocketchip", "workload": "idle", "batch": 1,
              "engine_mode": "fused", "lane_cycles_per_s": 1e6}],
        )
        rc = main_perf(["compare", report, bench, "--strict"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no comparable baselines found (gate is vacuous)" in out
        assert "0 regression(s) over 0 comparison(s)" in out

    def test_matching_baseline_still_gates(self, tmp_path, capsys):
        """Counter-case: with a comparable baseline 10x faster, --strict
        exits 1 — proving the vacuous path is not swallowing regressions."""
        report = _report(tmp_path)
        bench = self._bench(
            tmp_path,
            [{"design": "nvdla", "workload": "idle", "batch": 1,
              "engine_mode": "fused", "lane_cycles_per_s": 2000 * 10}],
        )
        rc = main_perf(["compare", report, bench, "--strict"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "no comparable baselines" not in out


class TestFusionErrorFallback:
    def _design(self):
        circuit = random_circuit(7, n_ops=30)
        return GemCompiler(
            GemConfig(
                partition=PartitionConfig(gates_per_partition=400),
                boomerang=BoomerangConfig(width_log2=10),
            )
        ).compile(circuit)

    def test_fallback_warns_and_still_simulates(self, monkeypatch, caplog):
        import repro.core.interpreter as interp_mod
        from repro.core.fused import FusionError

        design = self._design()
        reference = design.simulator(mode="legacy")

        def boom(*args, **kwargs):
            raise FusionError("deliberately broken for the regression test")

        monkeypatch.setattr(interp_mod, "fused_program", boom)
        with caplog.at_level(logging.WARNING, logger="repro.core.interpreter"):
            sim = design.simulator(mode="fused")
        warnings = [
            r for r in caplog.records
            if "stage fusion unavailable" in r.getMessage()
        ]
        assert len(warnings) == 1, "exactly one fallback warning"
        assert "deliberately broken" in warnings[0].getMessage()
        assert sim.mode == "legacy"

        circuit = random_circuit(7, n_ops=30)
        for vec in random_vectors(circuit, seed=8, cycles=10):
            assert sim.step(vec) == reference.step(vec)

    def test_legacy_mode_does_not_warn(self, monkeypatch, caplog):
        """Asking for legacy explicitly must stay silent even when fusion
        is unavailable (the warning is about a broken *request*)."""
        import repro.core.interpreter as interp_mod
        from repro.core.fused import FusionError

        design = self._design()

        def boom(*args, **kwargs):
            raise FusionError("still broken")

        monkeypatch.setattr(interp_mod, "fused_program", boom)
        with caplog.at_level(logging.WARNING, logger="repro.core.interpreter"):
            sim = design.simulator(mode="legacy")
        assert sim.mode == "legacy"
        assert not [
            r for r in caplog.records
            if "stage fusion unavailable" in r.getMessage()
        ]

    def test_fallback_counts_as_fuzz_coverage(self):
        """The oracle surfaces the fallback as a coverage feature so fuzz
        campaigns notice when fusion silently stops applying."""
        from repro.fuzz import OracleConfig, random_spec, random_stimuli
        from repro.fuzz.oracle import run_oracle
        import repro.core.interpreter as interp_mod
        from repro.core.fused import FusionError
        from unittest import mock

        spec = random_spec(11)
        stimuli = random_stimuli(spec, 11, 4)

        def boom(*args, **kwargs):
            raise FusionError("no fusion today")

        with mock.patch.object(interp_mod, "fused_program", boom):
            result = run_oracle(spec, stimuli, OracleConfig(batches=(1,)))
        assert result.ok, "legacy fallback must still be correct"
        assert "fallback:legacy" in result.coverage


class TestConfigCacheKeying:
    """Tuned vs default artifacts must never share a cache slot."""

    def _tiny_entry(self):
        from repro.harness import runner

        return runner.DesignEntry(
            "tinyreg",
            lambda: random_circuit(31, n_ops=200, max_width=10, with_memory=False),
            "tinyreg_like",
        )

    def _tiny_base(self):
        return GemConfig(
            partition=PartitionConfig(gates_per_partition=300, num_stages=2),
            boomerang=BoomerangConfig(width_log2=9),
        )

    def test_runner_compile_cache_is_config_keyed(self, tmp_path, monkeypatch):
        from repro.core.placement import RefineConfig
        from repro.harness import runner

        monkeypatch.setattr(runner, "CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(runner, "_memory_cache", {})
        monkeypatch.setitem(runner.DESIGNS, "tinyreg", self._tiny_entry())

        default_cfg = self._tiny_base()
        tuned_cfg = GemConfig(
            partition=PartitionConfig(gates_per_partition=300, num_stages=1),
            boomerang=BoomerangConfig(width_log2=9),
            refine=RefineConfig(iterations=4, seed=1),
        )
        default = runner.compile_design("tinyreg", default_cfg)
        tuned = runner.compile_design("tinyreg", tuned_cfg)
        assert default.report.config_digest != tuned.report.config_digest

        pickles = sorted(p.name for p in tmp_path.glob("compile-*.pkl"))
        assert len(pickles) == 2, f"expected 2 config-keyed entries, got {pickles}"

        # Recompiling under either config must hit, not rebuild: a fresh
        # memory cache forces the disk tier, and the entries round-trip to
        # the *matching* compiled artifact.
        monkeypatch.setattr(runner, "_memory_cache", {})
        assert (
            runner.compile_design("tinyreg", tuned_cfg).report.config_digest
            == tuned.report.config_digest
        )
        assert (
            runner.compile_design("tinyreg", default_cfg).report.config_digest
            == default.report.config_digest
        )
        assert sorted(p.name for p in tmp_path.glob("compile-*.pkl")) == pickles

    def test_decode_cache_is_config_keyed(self):
        import copy

        from repro.core.interpreter import clear_decode_cache, decode_cache_stats

        circ = random_circuit(33, n_ops=200, max_width=10, with_memory=False)
        design = GemCompiler(self._tiny_base()).compile(circ)
        twin = copy.deepcopy(design)
        # Same words, different effective config: exactly the collision the
        # meta digest exists to prevent (a words CRC alone cannot see it).
        twin.program.meta.config_digest = "f" * 16
        assert twin.program.digest() == design.program.digest()

        clear_decode_cache()
        vec = random_vectors(circ, 7, cycles=1)[0]
        design.simulator(mode="legacy").step(vec)
        twin.simulator(mode="legacy").step(vec)
        stats = decode_cache_stats()
        assert stats["misses"] == 2, f"config twin served a stale decode: {stats}"
        assert stats["hits"] == 0

        design.simulator(mode="legacy").step(vec)
        assert decode_cache_stats()["hits"] == 1  # true re-use still hits


class TestAutotuneSeedDeterminism:
    """Same seed + design CRC → same winner + bit-identical bitstream,
    across processes and under different PYTHONHASHSEED values."""

    SCRIPT = r"""
import hashlib, json, sys
from repro.core.autotune import AutotuneConfig, KnobSpace, autotune
from repro.core.boomerang import BoomerangConfig
from repro.core.compiler import GemCompiler, GemConfig
from repro.core.depth_opt import optimize
from repro.core.partition import PartitionConfig
from repro.core.synthesis import synthesize
from tests.helpers import random_circuit

synth = optimize(synthesize(random_circuit(41, n_ops=220, max_width=10)))
base = GemConfig(
    partition=PartitionConfig(gates_per_partition=300, num_stages=2),
    boomerang=BoomerangConfig(width_log2=9),
)
space = KnobSpace(
    gates_per_partition=(250, 300, 450),
    num_stages=(1, 2),
    width_log2=(9,),
    sa_iterations=(0, 6),
)
result = autotune(
    synth,
    name="pinned",
    base=base,
    space=space,
    opts=AutotuneConfig(budget=5, measure_cycles=0, seed=13, cache_dir=sys.argv[1]),
)
program = GemCompiler(result.winning_config(base)).compile(synth).program
print(json.dumps({
    "knobs": result.winner_knobs,
    "digest": result.winner_digest,
    "crc": result.crc,
    "bitstream": hashlib.sha256(program.words.tobytes()).hexdigest(),
}))
"""

    def _run(self, tmp_path, tag, hashseed):
        import os
        import subprocess
        import sys

        cache = tmp_path / tag
        cache.mkdir()
        env = dict(os.environ)
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(repo, "src") + os.pathsep + repo
        env["PYTHONHASHSEED"] = hashseed
        proc = subprocess.run(
            [sys.executable, "-c", self.SCRIPT, str(cache)],
            capture_output=True,
            text=True,
            env=env,
            cwd=repo,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        return json.loads(proc.stdout.strip().splitlines()[-1])

    def test_two_processes_agree_bit_for_bit(self, tmp_path):
        a = self._run(tmp_path, "a", "0")
        b = self._run(tmp_path, "b", "1")
        assert a["crc"] == b["crc"], "design CRC must be hash-seed independent"
        assert a["knobs"] == b["knobs"]
        assert a["digest"] == b["digest"]
        assert a["bitstream"] == b["bitstream"]


class TestFourStateRegressions:
    """Pins for the v4 checkpoint container and dual-rail observability.

    5. Checkpoint format v4 added a ``values`` header word.  The compat
       matrix must hold forever: a 2-state snapshot written as v3 is
       *section-identical* to the v4 image outside the header, v3 images
       still load (v2/v1 loading is pinned in test_runtime_checkpoint /
       test_engine_lanes), a 4-state snapshot refuses the v3 container,
       and restore refuses to mix value systems.
    6. Probe taps attach to a dual-rail (``values=4``) run unchanged:
       the catalog exposes both rails of every 4-state register and a
       ring capture of value-rail words completes without crashing.
    """

    def _dual_design(self, seed=909):
        from repro.core.compiler import compile_circuit

        circuit = random_circuit(seed, n_ops=25, n_regs=3)
        return circuit, compile_circuit(circuit, values=4)

    def test_ckpt_v4_v3_section_identity_for_2state(self):
        from repro.core.integrity import unseal
        from repro.runtime.checkpoint import (
            CKPT_VERSION_V3,
            checkpoint_from_words,
            checkpoint_to_words,
            snapshot,
        )

        circuit = random_circuit(905, n_ops=20, n_regs=2)
        design = GemCompiler().compile(circuit)
        sim = design.simulator()
        for vec in random_vectors(circuit, 3, 9):
            sim.step(vec)
        ckpt = snapshot(sim)
        v4 = unseal(checkpoint_to_words(ckpt))
        v3 = unseal(checkpoint_to_words(ckpt, version=CKPT_VERSION_V3))
        # header: v4 appends exactly one word (values) and bumps version
        assert v4[0].size == v3[0].size + 1
        assert int(v4[0][-1]) == 2 and int(v4[0][1]) == 4 and int(v3[0][1]) == 3
        assert (v4[0][2:-1] == v3[0][2:]).all()
        # every non-header section is byte-identical
        for a, b in zip(v4[1:], v3[1:]):
            assert a.size == b.size and (a == b).all()
        # and the v3 image still loads to the same checkpoint
        back = checkpoint_from_words(checkpoint_to_words(ckpt, version=CKPT_VERSION_V3))
        assert back.cycle == ckpt.cycle and back.values == 2
        assert (back.global_state == ckpt.global_state).all()

    def test_ckpt_v3_refuses_4state_and_restore_refuses_mixed_values(self):
        import pytest

        from repro.errors import CheckpointError
        from repro.runtime.checkpoint import (
            CKPT_VERSION_V3,
            checkpoint_to_words,
            restore,
            snapshot,
        )

        circuit, design = self._dual_design()
        sim = design.simulator()
        for vec in random_vectors(circuit, 5, 4):
            sim.step(vec)
        ckpt = snapshot(sim)
        assert ckpt.values == 4
        with pytest.raises(CheckpointError, match="v3 cannot carry"):
            checkpoint_to_words(ckpt, version=CKPT_VERSION_V3)
        two_state = GemCompiler().compile(circuit).simulator()
        with pytest.raises(CheckpointError):
            restore(two_state, ckpt)

    def test_ckpt_v4_roundtrip_resumes_dual_rail_bit_identical(self):
        from repro.runtime.checkpoint import (
            checkpoint_from_words,
            checkpoint_to_words,
            restore,
            snapshot,
        )

        circuit, design = self._dual_design(911)
        stimuli = random_vectors(circuit, 6, 12)
        straight = design.simulator()
        golden = [straight.step(vec) for vec in stimuli]
        first = design.simulator()
        for vec in stimuli[:5]:
            first.step(vec)
        back = checkpoint_from_words(checkpoint_to_words(snapshot(first)))
        assert back.values == 4
        resumed = design.simulator()
        restore(resumed, back)
        assert [resumed.step(vec) for vec in stimuli[5:]] == golden[5:]

    def test_probe_taps_on_dual_rail_run(self):
        from repro.obs.probe import ProbeTap, WaveRing, build_probe_plan, probe_catalog

        circuit, design = self._dual_design(913)
        nets = probe_catalog(design)
        reg_names = {n.name for n in nets if n.kind == "register"}
        value_rails = {n for n in reg_names if n.endswith("__d")}
        known_rails = {n for n in reg_names if n.endswith("__u")}
        assert value_rails and known_rails
        assert {v[:-3] for v in value_rails} == {u[:-3] for u in known_rails}
        plan = build_probe_plan(design, "registers")
        ring = WaveRing(plan, capacity=8)
        tap = ProbeTap(plan, [ring])
        sim = design.simulator()
        tap.attach(sim)
        for vec in random_vectors(circuit, 17, 8):
            sim.step(vec)
        assert tap.captured == 8
        samples = ring.lane_samples(0)
        assert len(samples) == 8
        # captured names carry both rails, value-rail words are ints
        _, last = samples[-1]
        assert any(name.endswith("__d") for name in last)
        assert any(name.endswith("__u") for name in last)
