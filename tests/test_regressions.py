"""Regression pins for two quiet behaviors that previously had no tests.

1. ``gem-perf compare`` with baselines that share no (design, workload,
   batch, mode) key with the report: the gate is *vacuous* — it must say
   so and exit 0 even under ``--strict`` (an empty comparison is not a
   pass, but it is not a failure either; CI must not go red because a
   bench file rotated).
2. ``GemInterpreter`` falling back to the legacy path when stage fusion
   raises ``FusionError``: the fallback must warn exactly once through
   the ``repro.core.interpreter`` logger, flip ``mode`` to ``"legacy"``,
   and still simulate correctly.
"""

from __future__ import annotations

import json
import logging

from repro.core.boomerang import BoomerangConfig
from repro.core.compiler import GemCompiler, GemConfig
from repro.core.partition import PartitionConfig
from repro.harness.cli import main_perf
from repro.obs.report import build_run_report, write_report
from tests.helpers import random_circuit, random_vectors


def _report(tmp_path, design="nvdla", workload="idle", batch=1, mode="fused"):
    report = build_run_report(
        design=design,
        workload=workload,
        batch=batch,
        engine_mode=mode,
        cycles=1000,
        elapsed_s=0.5,
        registry=None,
    )
    path = str(tmp_path / "report.json")
    write_report(report, path)
    return path


class TestPerfCompareVacuousGate:
    def _bench(self, tmp_path, rows):
        path = str(tmp_path / "BENCH_x.json")
        with open(path, "w") as f:
            json.dump(rows, f)
        return path

    def test_no_comparable_baselines_exits_zero_even_strict(self, tmp_path, capsys):
        report = _report(tmp_path, design="nvdla")
        bench = self._bench(
            tmp_path,
            [{"design": "rocketchip", "workload": "idle", "batch": 1,
              "engine_mode": "fused", "lane_cycles_per_s": 1e6}],
        )
        rc = main_perf(["compare", report, bench, "--strict"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no comparable baselines found (gate is vacuous)" in out
        assert "0 regression(s) over 0 comparison(s)" in out

    def test_matching_baseline_still_gates(self, tmp_path, capsys):
        """Counter-case: with a comparable baseline 10x faster, --strict
        exits 1 — proving the vacuous path is not swallowing regressions."""
        report = _report(tmp_path)
        bench = self._bench(
            tmp_path,
            [{"design": "nvdla", "workload": "idle", "batch": 1,
              "engine_mode": "fused", "lane_cycles_per_s": 2000 * 10}],
        )
        rc = main_perf(["compare", report, bench, "--strict"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "no comparable baselines" not in out


class TestFusionErrorFallback:
    def _design(self):
        circuit = random_circuit(7, n_ops=30)
        return GemCompiler(
            GemConfig(
                partition=PartitionConfig(gates_per_partition=400),
                boomerang=BoomerangConfig(width_log2=10),
            )
        ).compile(circuit)

    def test_fallback_warns_and_still_simulates(self, monkeypatch, caplog):
        import repro.core.interpreter as interp_mod
        from repro.core.fused import FusionError

        design = self._design()
        reference = design.simulator(mode="legacy")

        def boom(*args, **kwargs):
            raise FusionError("deliberately broken for the regression test")

        monkeypatch.setattr(interp_mod, "fused_program", boom)
        with caplog.at_level(logging.WARNING, logger="repro.core.interpreter"):
            sim = design.simulator(mode="fused")
        warnings = [
            r for r in caplog.records
            if "stage fusion unavailable" in r.getMessage()
        ]
        assert len(warnings) == 1, "exactly one fallback warning"
        assert "deliberately broken" in warnings[0].getMessage()
        assert sim.mode == "legacy"

        circuit = random_circuit(7, n_ops=30)
        for vec in random_vectors(circuit, seed=8, cycles=10):
            assert sim.step(vec) == reference.step(vec)

    def test_legacy_mode_does_not_warn(self, monkeypatch, caplog):
        """Asking for legacy explicitly must stay silent even when fusion
        is unavailable (the warning is about a broken *request*)."""
        import repro.core.interpreter as interp_mod
        from repro.core.fused import FusionError

        design = self._design()

        def boom(*args, **kwargs):
            raise FusionError("still broken")

        monkeypatch.setattr(interp_mod, "fused_program", boom)
        with caplog.at_level(logging.WARNING, logger="repro.core.interpreter"):
            sim = design.simulator(mode="legacy")
        assert sim.mode == "legacy"
        assert not [
            r for r in caplog.records
            if "stage fusion unavailable" in r.getMessage()
        ]

    def test_fallback_counts_as_fuzz_coverage(self):
        """The oracle surfaces the fallback as a coverage feature so fuzz
        campaigns notice when fusion silently stops applying."""
        from repro.fuzz import OracleConfig, random_spec, random_stimuli
        from repro.fuzz.oracle import run_oracle
        import repro.core.interpreter as interp_mod
        from repro.core.fused import FusionError
        from unittest import mock

        spec = random_spec(11)
        stimuli = random_stimuli(spec, 11, 4)

        def boom(*args, **kwargs):
            raise FusionError("no fusion today")

        with mock.patch.object(interp_mod, "fused_program", boom):
            result = run_oracle(spec, stimuli, OracleConfig(batches=(1,)))
        assert result.ok, "legacy fallback must still be correct"
        assert "fallback:legacy" in result.coverage
