"""Baseline simulators: equivalence and the properties Table II relies on."""

import pytest

from repro.core.synthesis import synthesize
from repro.rtl import CircuitBuilder, Netlist, WordSim
from repro.simref.cycle_sim import CompiledCycleSim, generate_cycle_source
from repro.simref.event_sim import EventDrivenSim
from repro.simref.gate_sim import GateLevelSim
from repro.simref.threads import ThreadScalingModel
from tests.helpers import lockstep, random_circuit, random_vectors


class TestEventDrivenSim:
    @pytest.mark.parametrize("seed", range(4))
    def test_equivalence(self, seed):
        circuit = random_circuit(seed + 40, n_ops=50, with_memory=True)
        synth = synthesize(circuit)
        lockstep(
            {"word": WordSim(Netlist(circuit)), "event": EventDrivenSim(synth)},
            random_vectors(circuit, seed, 40),
        )

    def test_activity_sensitivity(self):
        """The defining property (paper §II): an idle design produces almost
        no events, a busy one produces many."""
        b = CircuitBuilder()
        en = b.input("en", 1)
        acc = b.reg("acc", 32)
        acc.next = b.mux(en, acc * 2654435761 + 12345, acc)
        b.output("q", acc)
        synth = synthesize(b.build())
        busy = EventDrivenSim(synth)
        for _ in range(30):
            busy.step({"en": 1})
        quiet = EventDrivenSim(synth)
        quiet.step({"en": 1})  # one change, then hold
        for _ in range(29):
            quiet.step({"en": 0})
        assert quiet.events_per_cycle < busy.events_per_cycle / 5

    def test_event_counter_monotone(self):
        circuit = random_circuit(43, n_ops=40)
        sim = EventDrivenSim(synthesize(circuit))
        sim.step(random_vectors(circuit, 1, 1)[0])
        first = sim.total_events
        sim.step(random_vectors(circuit, 2, 1)[0])
        assert sim.total_events >= first


class TestCompiledCycleSim:
    @pytest.mark.parametrize("seed", range(4))
    def test_equivalence(self, seed):
        circuit = random_circuit(seed + 70, n_ops=50, with_memory=True, with_async_memory=True)
        netlist = Netlist(circuit)
        lockstep(
            {"word": WordSim(netlist), "compiled": CompiledCycleSim(netlist)},
            random_vectors(circuit, seed, 40),
        )

    def test_generated_source_is_python(self):
        circuit = random_circuit(30, n_ops=30)
        source = generate_cycle_source(Netlist(circuit))
        compile(source, "<test>", "exec")  # syntactically valid
        assert source.startswith("def cycle(state, inputs):")

    def test_ops_per_cycle_static(self):
        circuit = random_circuit(31, n_ops=30)
        sim = CompiledCycleSim(Netlist(circuit))
        assert sim.ops_per_cycle > 0

    def test_run_batch(self):
        circuit = random_circuit(32, n_ops=30)
        netlist = Netlist(circuit)
        sim1 = CompiledCycleSim(netlist)
        sim2 = CompiledCycleSim(netlist)
        vecs = random_vectors(circuit, 9, 15)
        batch = sim1.run(vecs)
        single = [sim2.step(v) for v in vecs]
        assert batch == single


class TestGateLevelSim:
    @pytest.mark.parametrize("seed", range(4))
    def test_equivalence(self, seed):
        circuit = random_circuit(seed + 90, n_ops=50, with_memory=True)
        synth = synthesize(circuit)
        lockstep(
            {"word": WordSim(Netlist(circuit)), "gate": GateLevelSim(synth)},
            random_vectors(circuit, seed, 40),
        )

    def test_toggle_counting(self):
        circuit = random_circuit(44, n_ops=60)
        synth = synthesize(circuit)
        sim = GateLevelSim(synth)
        for vec in random_vectors(circuit, 3, 20):
            sim.step(vec)
        assert sim.toggles_per_cycle >= 0
        assert sim.kernel_launches_per_cycle == 2 * len(sim.level_batches)

    def test_levelization_complete(self):
        circuit = random_circuit(45, n_ops=60)
        synth = synthesize(circuit)
        sim = GateLevelSim(synth)
        counted = sum(len(batch[0]) for batch in sim.level_batches)
        assert counted == synth.eaig.num_gates()


class TestThreadScaling:
    def test_monotone_until_knee(self):
        model = ThreadScalingModel()
        speedups = [model.speedup(t) for t in range(1, 9)]
        assert all(b >= a * 0.98 for a, b in zip(speedups, speedups[1:]))

    def test_paper_degradation_band(self):
        """§IV: 16 threads run at 80–95%% of 8-thread speed."""
        model = ThreadScalingModel()
        assert 0.78 <= model.degradation_16_vs_8() <= 0.96

    def test_eight_thread_speedup_plausible(self):
        # Table II shows roughly 2-4x for 8 threads on real designs.
        model = ThreadScalingModel()
        assert 1.8 <= model.speedup(8) <= 4.5

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            ThreadScalingModel().cycle_time(0)

    def test_sweep_shape(self):
        sweep = ThreadScalingModel().sweep(16)
        assert len(sweep) == 16
        assert sweep[0] == (1, 1.0)
