"""Watchdog deadlines (repro.runtime.watchdog) and their integration
with the supervisor's recovery ladder.

All timing runs on a fake clock — no real sleeping, fully deterministic.
"""

import pytest

from repro.core.boomerang import BoomerangConfig
from repro.core.compiler import GemCompiler, GemConfig
from repro.core.partition import PartitionConfig
from repro.errors import GemTimeoutError
from repro.obs.metrics import REGISTRY
from repro.runtime.chaos import FakeClock
from repro.runtime.supervisor import Supervisor
from repro.runtime.watchdog import Deadline
from tests.helpers import random_circuit, random_vectors


@pytest.fixture(scope="module")
def compiled():
    circuit = random_circuit(601, n_ops=50, n_regs=3)
    design = GemCompiler(
        GemConfig(
            partition=PartitionConfig(gates_per_partition=400),
            boomerang=BoomerangConfig(width_log2=10),
        )
    ).compile(circuit)
    stimuli = random_vectors(circuit, 4, 30)
    golden = design.simulator().run(stimuli)
    return design, stimuli, golden


class TestDeadlineUnit:
    def test_unbounded_never_expires(self):
        d = Deadline()
        d.start()
        d.note_cycles(10**6)
        assert d.expired() is None
        d.check()  # no raise
        assert d.describe() == "unbounded"

    def test_wall_expiry(self):
        clock = FakeClock()
        d = Deadline(wall_s=10.0, clock=clock)
        d.start()
        clock.advance(9.0)
        assert d.expired() is None
        clock.advance(2.0)
        assert d.expired() == "wall"
        with pytest.raises(GemTimeoutError) as exc:
            d.check()
        assert exc.value.reason == "wall"

    def test_cycle_expiry(self):
        d = Deadline(max_cycles=5)
        d.start()
        d.note_cycles(5)
        assert d.expired() is None  # budget is inclusive
        d.note_cycles(1)
        assert d.expired() == "cycles"
        with pytest.raises(GemTimeoutError) as exc:
            d.check()
        assert exc.value.reason == "cycles"

    def test_timer_starts_at_start_not_construction(self):
        clock = FakeClock()
        d = Deadline(wall_s=5.0, clock=clock)
        clock.advance(100.0)  # pre-start time must not count
        d.start()
        assert d.expired() is None
        assert d.elapsed() == 0.0
        clock.advance(6.0)
        assert d.expired() == "wall"

    def test_start_is_idempotent(self):
        clock = FakeClock()
        d = Deadline(wall_s=5.0, clock=clock)
        d.start()
        clock.advance(3.0)
        d.start()  # must not rearm
        clock.advance(3.0)
        assert d.expired() == "wall"

    def test_extend_grants_shrinking_wall_grace(self):
        clock = FakeClock()
        d = Deadline(wall_s=8.0, clock=clock, grace_factor=0.5, max_extensions=3)
        d.start()
        clock.advance(9.0)
        assert d.expired() == "wall"
        # Grants shrink: 4s, then 2s, then 1s of grace from "now".
        for grace in (4.0, 2.0, 1.0):
            assert d.extend() is True
            assert d.expired() is None
            clock.advance(grace - 0.5)
            assert d.expired() is None
            clock.advance(1.0)
            assert d.expired() == "wall"
        assert d.extend() is False  # grace exhausted

    def test_extend_grants_shrinking_cycle_grace(self):
        d = Deadline(max_cycles=8, grace_factor=0.5, max_extensions=3)
        d.start()
        d.note_cycles(9)
        assert d.expired() == "cycles"
        assert d.extend() is True  # +4 cycles from here
        d.note_cycles(4)
        assert d.expired() is None
        d.note_cycles(1)
        assert d.expired() == "cycles"
        assert d.extend() is True  # +2
        d.note_cycles(3)
        assert d.expired() == "cycles"

    def test_extend_refuses_sub_cycle_grace(self):
        d = Deadline(max_cycles=1, grace_factor=0.5)
        d.start()
        d.note_cycles(2)
        assert d.expired() == "cycles"
        assert d.extend() is False  # int(1 * 0.5) == 0 cycles of grace

    def test_remaining_wall(self):
        clock = FakeClock()
        d = Deadline(wall_s=10.0, clock=clock)
        assert d.remaining_wall() is None  # not armed yet
        d.start()
        clock.advance(4.0)
        assert d.remaining_wall() == pytest.approx(6.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Deadline(wall_s=0)
        with pytest.raises(ValueError):
            Deadline(max_cycles=0)
        with pytest.raises(ValueError):
            Deadline(wall_s=1.0, grace_factor=1.5)

    def test_describe(self):
        assert Deadline(wall_s=2.5).describe() == "wall 2.5s"
        assert Deadline(max_cycles=100).describe() == "100 cycles"
        assert "wall" in Deadline(wall_s=1, max_cycles=5).describe()


class TestSupervisorDeadline:
    def test_clean_run_within_deadline(self, compiled):
        design, stimuli, golden = compiled
        clock = FakeClock()
        result = Supervisor(
            design,
            checkpoint_every=8,
            deadline=Deadline(wall_s=100.0, clock=clock),
        ).run(stimuli)
        assert result.outputs == golden
        assert result.timeouts == 0
        assert not result.degraded
        assert any("deadline armed" in e for e in result.events)

    def test_transient_hang_recovered_under_tightened_budget(self, compiled):
        """One slow stretch trips the deadline; the retry (without the
        hang) completes inside the tightened grace, bit-identically."""
        design, stimuli, golden = compiled
        clock = FakeClock()
        fired = []

        def hook(interp, cycle):
            if cycle == 20 and not fired:
                fired.append(cycle)
                clock.advance(100.0)  # simulated hang, one time only

        result = Supervisor(
            design,
            checkpoint_every=8,
            fault_hook=hook,
            deadline=Deadline(wall_s=50.0, clock=clock),
        ).run(stimuli)
        assert result.timeouts == 1
        assert not result.degraded
        assert result.outputs == golden
        assert any("tightened deadline" in e for e in result.events)

    def test_persistent_hang_degrades_with_timeout_counted(self, compiled):
        design, stimuli, golden = compiled
        clock = FakeClock()

        def hook(interp, cycle):
            if cycle >= 15:
                clock.advance(100.0)  # hangs forever from cycle 15 on

        before = REGISTRY.counter(
            "gem_supervisor_timeouts_total",
            help="watchdog deadline expiries hit by supervised runs",
        ).value
        result = Supervisor(
            design,
            checkpoint_every=8,
            fault_hook=hook,
            deadline=Deadline(wall_s=50.0, clock=clock, max_extensions=2),
        ).run(stimuli)
        assert result.degraded
        assert result.engine == "simref"
        assert result.timeouts == 3  # initial expiry + 2 exhausted extensions
        assert result.outputs == golden  # fallback still delivers the stream
        assert any("grace exhausted" in e for e in result.events)
        after = REGISTRY.counter(
            "gem_supervisor_timeouts_total",
            help="watchdog deadline expiries hit by supervised runs",
        ).value
        assert after - before == 3

    def test_cycle_budget_bounds_rollback_loops(self, compiled):
        """A cycle budget trips even when wall time never advances —
        replayed cycles count, so a rollback loop cannot spin forever."""
        design, stimuli, golden = compiled

        def hook(interp, cycle):
            if cycle >= 10:
                interp.global_state[0] ^= 1  # persistent corruption

        result = Supervisor(
            design,
            checkpoint_every=8,
            max_retries=10**6,  # retries alone would take a long time
            deadline=Deadline(max_cycles=100),
            fault_hook=hook,
        ).run(stimuli)
        assert result.degraded
        assert result.timeouts >= 1
        assert result.outputs == golden
