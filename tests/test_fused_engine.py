"""Stage-fused executor (repro.core.fused): differential equivalence.

The fused engine replaces the per-partition interpreter loop with a
constant-folded, CSE'd, wave-scheduled AND-DAG executed as a handful of
whole-stage array ops (docs/ENGINE.md §6).  Everything here certifies
that the rewrite is *invisible*: bit-identical outputs and state digests
against legacy mode over the real designs at batch 1/16/64, identical
work counters, checkpoint/resume compatibility mid-run, and the
decode/fusion caches that let Supervisor primary+shadow fuse once.
"""

import dataclasses

import pytest

from repro.core.boomerang import BoomerangConfig
from repro.core.compiler import GemCompiler, GemConfig
from repro.core.interpreter import (
    CycleCounters,
    clear_decode_cache,
    decode_cache_stats,
)
from repro.core.fused import clear_fusion_cache, fusion_cache_stats
from repro.core.partition import PartitionConfig
from repro.harness.runner import DESIGNS, compile_design, design_workloads
from repro.runtime.supervisor import Supervisor, state_digest
from tests.helpers import random_circuit, random_vectors

BATCHES = (1, 16, 64)
CYCLES = 40


def _compile_small(circuit):
    return GemCompiler(
        GemConfig(
            partition=PartitionConfig(gates_per_partition=400),
            boomerang=BoomerangConfig(width_log2=10),
        )
    ).compile(circuit)


def _lane_streams(stimuli, batch, cycles):
    """``batch`` distinct stimulus streams: lane ``l`` starts ``l`` cycles
    into the workload (wrapping), so lanes genuinely diverge."""
    n = len(stimuli)
    return [
        [stimuli[(cycle + lane) % n] for cycle in range(cycles)]
        for lane in range(batch)
    ]


def _differential(design, stimuli, batch, cycles):
    fused = design.simulator(batch=batch, mode="fused")
    legacy = design.simulator(batch=batch, mode="legacy")
    assert fused.mode == "fused" and legacy.mode == "legacy"
    streams = _lane_streams(stimuli, batch, cycles)
    for cycle in range(cycles):
        vecs = [streams[lane][cycle] for lane in range(batch)]
        if batch == 1:
            out_f, out_l = fused.step(vecs[0]), legacy.step(vecs[0])
        else:
            out_f, out_l = fused.step_lanes(vecs), legacy.step_lanes(vecs)
        assert out_f == out_l, f"outputs diverge at cycle {cycle} (batch={batch})"
    assert state_digest(fused) == state_digest(legacy)
    return fused, legacy


@pytest.mark.parametrize("batch", BATCHES)
@pytest.mark.parametrize(
    "name",
    [
        n if n in ("rocketchip", "gemmini", "openpiton1")
        else pytest.param(n, marks=pytest.mark.slow)
        for n in sorted(DESIGNS)
    ],
)
def test_fused_matches_legacy_on_designs(name, batch):
    """The sweep the acceptance criteria name: every design in
    ``repro.designs``, batch 1/16/64, bit-identical outputs + digests."""
    design = compile_design(name)
    wl = next(iter(design_workloads(name).values()))
    _differential(design, wl.stimuli, batch, min(CYCLES, len(wl.stimuli)))


@pytest.mark.parametrize("batch", BATCHES)
def test_fused_matches_legacy_random_memory_design(batch):
    """Random circuit with RAMs: exercises per-lane addressing, write
    enables, and deferred commits under fusion."""
    circuit = random_circuit(977, n_ops=60, n_regs=4, with_memory=True)
    design = _compile_small(circuit)
    stimuli = random_vectors(circuit, seed=11, cycles=CYCLES)
    _differential(design, stimuli, batch, CYCLES)


def test_fused_is_the_default_mode():
    circuit = random_circuit(31, n_ops=30)
    design = _compile_small(circuit)
    assert design.simulator().mode == "fused"


def test_counters_identical_across_modes():
    """Work accounting is mode-independent: the fused executor reports
    the per-cycle deltas of the interpreter it replaced, and both modes
    accumulate both array-op counters."""
    design = compile_design("rocketchip")
    wl = next(iter(design_workloads("rocketchip").values()))
    fused, legacy = _differential(design, wl.stimuli, batch=1, cycles=16)
    for field in dataclasses.fields(CycleCounters):
        assert getattr(fused.counters, field.name) == getattr(
            legacy.counters, field.name
        ), f"counter {field.name} diverges between modes"
    per_cycle = fused.counters.per_cycle()
    assert per_cycle["fused_array_ops"] > 0
    assert per_cycle["array_ops"] >= 10 * per_cycle["fused_array_ops"]


def test_checkpoint_resume_mid_run_fused():
    """Snapshot a fused run mid-flight, resume into a fresh fused
    simulator, and finish bit-identically (outputs and digest)."""
    from repro.runtime.checkpoint import restore, snapshot

    design = compile_design("rocketchip")
    wl = next(iter(design_workloads("rocketchip").values()))
    stimuli = wl.stimuli[:32]
    sim = design.simulator(mode="fused")
    for vec in stimuli[:16]:
        sim.step(vec)
    ckpt = snapshot(sim)
    tail = [sim.step(vec) for vec in stimuli[16:]]

    resumed = restore(design.simulator(mode="fused"), ckpt)
    assert [resumed.step(vec) for vec in stimuli[16:]] == tail
    assert state_digest(resumed) == state_digest(sim)


def test_legacy_checkpoint_loads_into_fused_and_back():
    """Mode is not part of the checkpoint: a legacy snapshot resumes
    under fused execution (and vice versa) bit-identically."""
    from repro.runtime.checkpoint import restore, snapshot

    circuit = random_circuit(55, n_ops=50, n_regs=3, with_memory=True)
    design = _compile_small(circuit)
    stimuli = random_vectors(circuit, seed=7, cycles=24)
    legacy = design.simulator(mode="legacy")
    for vec in stimuli[:12]:
        legacy.step(vec)
    ckpt = snapshot(legacy)
    tail = [legacy.step(vec) for vec in stimuli[12:]]

    fused = restore(design.simulator(mode="fused"), ckpt)
    assert [fused.step(vec) for vec in stimuli[12:]] == tail
    assert state_digest(fused) == state_digest(legacy)


class TestDecodeAndFusionCaches:
    def test_supervisor_decodes_and_fuses_once(self):
        """Primary + redundant shadow share one decode and one fusion
        (the satellite: Supervisor no longer decodes the program twice)."""
        circuit = random_circuit(123, n_ops=40, n_regs=3, with_memory=True)
        design = _compile_small(circuit)
        stimuli = random_vectors(circuit, seed=3, cycles=8)
        clear_decode_cache()
        clear_fusion_cache()
        result = Supervisor(design, shadow="redundant", batch=4).run(stimuli)
        assert result.cycles == len(stimuli)
        decode = decode_cache_stats()
        fusion = fusion_cache_stats()
        assert decode["misses"] == 1 and decode["hits"] >= 1
        assert fusion["misses"] == 1 and fusion["hits"] >= 1

    def test_batch_is_part_of_the_key(self):
        """Decoded constants embed the lane mask, so a different batch
        must miss rather than alias another batch's tables."""
        circuit = random_circuit(124, n_ops=40, n_regs=2)
        design = _compile_small(circuit)
        clear_decode_cache()
        clear_fusion_cache()
        design.simulator(batch=1)
        design.simulator(batch=8)
        assert decode_cache_stats()["misses"] == 2
        assert fusion_cache_stats()["misses"] == 2

    def test_repeated_instantiation_hits(self):
        circuit = random_circuit(125, n_ops=40, n_regs=2)
        design = _compile_small(circuit)
        clear_decode_cache()
        clear_fusion_cache()
        design.simulator(batch=2)
        design.simulator(batch=2)
        assert decode_cache_stats() == {"misses": 1, "hits": 1}
        assert fusion_cache_stats() == {"misses": 1, "hits": 1}


def test_profile_timers_populate():
    """--profile's data source: phase_times buckets fill under both
    modes and cover inject/gather/fold/commit."""
    circuit = random_circuit(222, n_ops=40, n_regs=3, with_memory=True)
    design = _compile_small(circuit)
    stimuli = random_vectors(circuit, seed=5, cycles=12)
    for mode, phases in (
        ("fused", ("inject", "gather", "fold", "commit")),
        ("legacy", ("inject", "fold", "commit")),
    ):
        sim = design.simulator(mode=mode, profile=True)
        for vec in stimuli:
            sim.step(vec)
        assert set(sim.phase_times) == {"inject", "gather", "fold", "commit"}
        for phase in phases:
            assert sim.phase_times[phase] > 0.0, f"{mode}: {phase} never timed"
