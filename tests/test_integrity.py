"""CRC32 section framing + typed error hierarchy (repro.core.integrity,
repro.errors, and the bitstream container's integrity envelope)."""

import numpy as np
import pytest

from repro.core.boomerang import BoomerangConfig
from repro.core.bitstream import SECTION_NAMES, VERSION, verify_integrity
from repro.core.compiler import GemCompiler, GemConfig
from repro.core.integrity import crc32_words, seal, unseal
from repro.core.interpreter import GemInterpreter
from repro.core.partition import PartitionConfig
from repro.errors import (
    BitstreamError,
    CheckpointError,
    GemError,
    StateCorruptionError,
    UnmappableError,
)
from tests.helpers import random_circuit


def _compile(seed: int = 11, **kwargs):
    circuit = random_circuit(seed, n_ops=40, **kwargs)
    return GemCompiler(
        GemConfig(
            partition=PartitionConfig(gates_per_partition=400),
            boomerang=BoomerangConfig(width_log2=10),
        )
    ).compile(circuit)


class TestSectionFraming:
    def test_seal_unseal_roundtrip(self):
        sections = [
            np.arange(5, dtype=np.uint32),
            np.zeros(0, dtype=np.uint32),
            np.array([7, 11, 13], dtype=np.uint32),
        ]
        out = unseal(seal(sections), error=GemError)
        assert len(out) == 3
        for a, b in zip(sections, out):
            assert (a == b).all()

    def test_every_single_bit_flip_detected(self):
        sealed = seal([np.arange(4, dtype=np.uint32), np.array([9], dtype=np.uint32)])
        for index in range(sealed.size):
            for bit in range(32):
                corrupted = sealed.copy()
                corrupted[index] = np.uint32(int(corrupted[index]) ^ (1 << bit))
                with pytest.raises(GemError):
                    unseal(corrupted, error=GemError)

    def test_truncation_detected(self):
        sealed = seal([np.arange(8, dtype=np.uint32)])
        for cut in range(sealed.size):
            with pytest.raises(GemError):
                unseal(sealed[:cut], error=GemError)

    def test_error_class_is_parameterized(self):
        sealed = seal([np.arange(4, dtype=np.uint32)])
        bad = sealed.copy()
        bad[0] ^= np.uint32(1)
        with pytest.raises(CheckpointError):
            unseal(bad, error=CheckpointError, what="checkpoint")

    def test_crc32_words_is_stable(self):
        arr = np.array([1, 2, 3], dtype=np.uint32)
        assert crc32_words(arr) == crc32_words(arr.copy())
        assert crc32_words(arr) != crc32_words(arr[::-1].copy())


class TestBitstreamContainer:
    def test_assembled_program_verifies(self):
        design = _compile()
        sections = verify_integrity(design.program.words)
        assert len(sections) == len(SECTION_NAMES)
        assert int(sections[0][1]) == VERSION

    def test_corrupted_word_rejected_at_load(self):
        design = _compile(12)
        rng = np.random.default_rng(0)
        for _ in range(40):
            words = design.program.words.copy()
            index = int(rng.integers(words.size))
            bit = int(rng.integers(32))
            words[index] = np.uint32(int(words[index]) ^ (1 << bit))
            program = design.program
            program = type(program)(words=words, meta=program.meta)
            with pytest.raises(BitstreamError):
                GemInterpreter(program)

    def test_digest_changes_on_any_edit(self):
        design = _compile(13)
        base = design.program.digest()
        words = design.program.words.copy()
        words[5] ^= np.uint32(4)
        assert crc32_words(words) != base


class TestErrorHierarchy:
    def test_everything_derives_from_gemerror(self):
        for cls in (BitstreamError, StateCorruptionError, CheckpointError, UnmappableError):
            assert issubclass(cls, GemError)

    def test_bitstream_error_is_a_valueerror(self):
        # the decode path historically raised bare ValueError
        assert issubclass(BitstreamError, ValueError)

    def test_unmappable_still_importable_from_placement(self):
        from repro.core.placement import UnmappableError as FromPlacement

        assert FromPlacement is UnmappableError

    def test_interpreter_bad_magic_is_typed(self):
        design = _compile(14)
        program = design.program
        program.words = program.words.copy()
        program.words[0] = np.uint32(0xDEAD)
        with pytest.raises(BitstreamError, match="magic"):
            GemInterpreter(program)

    def test_interpreter_bad_version_is_typed(self):
        design = _compile(15)
        program = design.program
        program.words = program.words.copy()
        program.words[1] = np.uint32(999)
        with pytest.raises(BitstreamError, match="version"):
            GemInterpreter(program)
