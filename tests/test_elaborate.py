"""Elaboration checks: cycles, drivers, dead logic (repro.rtl.elaborate)."""

import pytest

from repro.rtl import CircuitBuilder, Netlist
from repro.rtl.elaborate import ElaborationError, check_circuit, dead_signals, live_signals
from repro.rtl.ir import Circuit, OpKind
from repro.rtl.netlist import CombinationalLoopError


class TestCycles:
    def test_combinational_loop_detected(self):
        c = Circuit()
        a = c.new_signal("a", 1)
        b = c.new_signal("b", 1)
        c.add_op(OpKind.AND, a, (b, b))
        c.add_op(OpKind.NOT, b, (a,))
        c.add_output("y", a)
        with pytest.raises(CombinationalLoopError):
            Netlist(c)

    def test_register_breaks_loop(self):
        b = CircuitBuilder()
        r = b.reg("r", 1)
        r.next = ~r
        b.output("y", r)
        Netlist(b.build())  # no exception

    def test_async_memrd_participates_in_loop(self):
        # async read data feeding the same port's address is a loop.
        b = CircuitBuilder()
        mem = b.memory("m", 4, 2)
        # Construct manually to bypass builder ordering.
        c = b.circuit
        addr = c.new_signal("addr", 2)
        data = mem.add_read_port(c, addr, sync=False)
        c.add_op(OpKind.SLICE, addr, (data,), lo=0)
        c.add_output("y", data)
        with pytest.raises(CombinationalLoopError):
            Netlist(c)

    def test_sync_memrd_breaks_loop(self):
        b = CircuitBuilder()
        mem = b.memory("m", 4, 2)
        c = b.circuit
        addr = c.new_signal("addr", 2)
        data = mem.add_read_port(c, addr, sync=True)
        c.add_op(OpKind.SLICE, addr, (data,), lo=0)
        c.add_output("y", data)
        Netlist(c)  # registered read data: no combinational cycle


class TestDrivers:
    def test_undriven_input_caught(self):
        c = Circuit()
        a = c.new_signal("a", 1)  # never driven
        out = c.new_signal("out", 1)
        c.add_op(OpKind.NOT, out, (a,))
        c.add_output("y", out)
        with pytest.raises(ElaborationError, match="no driver"):
            check_circuit(c)

    def test_undriven_output_caught(self):
        c = Circuit()
        ghost = c.new_signal("ghost", 1)
        c.add_output("y", ghost)
        with pytest.raises(ElaborationError, match="no driver"):
            check_circuit(c)

    def test_duplicate_output_names(self):
        c = Circuit()
        a = c.add_input("a", 1)
        c.add_output("y", a)
        c.add_output("y", a)
        with pytest.raises(ElaborationError, match="duplicate output"):
            check_circuit(c)


class TestLiveness:
    def test_dead_signals_found(self):
        b = CircuitBuilder()
        x = b.input("x", 4)
        _unused = x + 1  # dead
        b.output("y", x)
        circuit = b.build()
        dead = {s.name for s in dead_signals(circuit)}
        assert any("add" in name for name in dead)

    def test_register_feedback_is_live(self):
        b = CircuitBuilder()
        r = b.reg("r", 4)
        r.next = r + 1
        b.output("y", r)
        circuit = b.build()
        live = live_signals(circuit)
        assert all(s.uid in live for s in circuit.signals if s.name == "r")

    def test_memory_ports_are_live(self):
        b = CircuitBuilder()
        en = b.input("en", 1)
        addr = b.input("addr", 2)
        data = b.input("data", 4)
        mem = b.memory("m", 4, 4)
        b.write(mem, en, addr, data)
        b.output("rd", b.read(mem, addr, sync=True))
        circuit = b.build()
        assert not dead_signals(circuit)
