"""Builder DSL semantics: every Value operator matches Python integers."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtl import CircuitBuilder, Netlist, WordSim


def _eval_unary(build, width, value):
    """Run a one-input builder expression through WordSim."""
    b = CircuitBuilder()
    x = b.input("x", width)
    b.output("y", build(b, x))
    sim = WordSim(Netlist(b.build()))
    return sim.step({"x": value})["y"]


def _eval_binary(build, width, lhs, rhs):
    b = CircuitBuilder()
    x = b.input("x", width)
    y = b.input("y", width)
    b.output("z", build(b, x, y))
    sim = WordSim(Netlist(b.build()))
    return sim.step({"x": lhs, "y": rhs})["z"]


W = 8
MASK = (1 << W) - 1
values = st.integers(min_value=0, max_value=MASK)


class TestOperatorSemantics:
    @given(values, values)
    @settings(max_examples=60, deadline=None)
    def test_arith(self, a, c):
        assert _eval_binary(lambda b, x, y: x + y, W, a, c) == (a + c) & MASK
        assert _eval_binary(lambda b, x, y: x - y, W, a, c) == (a - c) & MASK
        assert _eval_binary(lambda b, x, y: x * y, W, a, c) == (a * c) & MASK

    @given(values, values)
    @settings(max_examples=60, deadline=None)
    def test_bitwise(self, a, c):
        assert _eval_binary(lambda b, x, y: x & y, W, a, c) == a & c
        assert _eval_binary(lambda b, x, y: x | y, W, a, c) == a | c
        assert _eval_binary(lambda b, x, y: x ^ y, W, a, c) == a ^ c

    @given(values)
    @settings(max_examples=40, deadline=None)
    def test_invert(self, a):
        assert _eval_unary(lambda b, x: ~x, W, a) == (~a) & MASK

    @given(values, values)
    @settings(max_examples=60, deadline=None)
    def test_comparisons(self, a, c):
        assert _eval_binary(lambda b, x, y: (x == y).zext(W), W, a, c) == int(a == c)
        assert _eval_binary(lambda b, x, y: (x != y).zext(W), W, a, c) == int(a != c)
        assert _eval_binary(lambda b, x, y: (x < y).zext(W), W, a, c) == int(a < c)
        assert _eval_binary(lambda b, x, y: (x >= y).zext(W), W, a, c) == int(a >= c)
        assert _eval_binary(lambda b, x, y: (x > y).zext(W), W, a, c) == int(a > c)
        assert _eval_binary(lambda b, x, y: (x <= y).zext(W), W, a, c) == int(a <= c)

    @given(values, st.integers(min_value=0, max_value=W + 2))
    @settings(max_examples=60, deadline=None)
    def test_const_shifts(self, a, amount):
        expected_l = (a << amount) & MASK if amount < W else 0
        # SHLI with amount >= width still yields 0 via masking semantics.
        got_l = _eval_unary(lambda b, x: x << amount, W, a)
        assert got_l == ((a << amount) & MASK if amount < 64 else 0) & MASK
        got_r = _eval_unary(lambda b, x: x >> amount, W, a)
        assert got_r == a >> amount

    @given(values, values)
    @settings(max_examples=60, deadline=None)
    def test_dynamic_shifts(self, a, amt):
        expected = (a << amt) & MASK if amt < W else 0
        assert _eval_binary(lambda b, x, y: x << y, W, a, amt) == expected
        expected = a >> amt if amt < W else 0
        assert _eval_binary(lambda b, x, y: x >> y, W, a, amt) == expected

    @given(values)
    @settings(max_examples=40, deadline=None)
    def test_reductions(self, a):
        assert _eval_unary(lambda b, x: x.reduce_and().zext(W), W, a) == int(a == MASK)
        assert _eval_unary(lambda b, x: x.reduce_or().zext(W), W, a) == int(a != 0)
        assert _eval_unary(lambda b, x: x.reduce_xor().zext(W), W, a) == bin(a).count("1") % 2

    @given(values)
    @settings(max_examples=40, deadline=None)
    def test_slicing(self, a):
        assert _eval_unary(lambda b, x: x[3:0].zext(W), W, a) == a & 0xF
        assert _eval_unary(lambda b, x: x[7:4].zext(W), W, a) == a >> 4
        assert _eval_unary(lambda b, x: x[0].zext(W), W, a) == a & 1
        assert _eval_unary(lambda b, x: x[-1].zext(W), W, a) == (a >> 7) & 1

    @given(values, values)
    @settings(max_examples=40, deadline=None)
    def test_concat(self, a, c):
        got = _eval_binary(lambda b, x, y: b.concat(x, y)[15:0], W, a, c)
        assert got == a | (c << W)

    @given(st.integers(min_value=0, max_value=1), values, values)
    @settings(max_examples=40, deadline=None)
    def test_mux(self, sel, a, c):
        b = CircuitBuilder()
        s = b.input("s", 1)
        x = b.input("x", W)
        y = b.input("y", W)
        b.output("z", b.mux(s, x, y))
        sim = WordSim(Netlist(b.build()))
        assert sim.step({"s": sel, "x": a, "y": c})["z"] == (a if sel else c)


class TestBuilderErrors:
    def test_reg_double_assign(self):
        b = CircuitBuilder()
        r = b.reg("r", 4)
        r.next = b.const(1, 4)
        with pytest.raises(ValueError, match="assigned twice"):
            r.next = b.const(2, 4)

    def test_unassigned_reg_fails_build(self):
        b = CircuitBuilder()
        b.reg("r", 4)
        with pytest.raises(ValueError, match="never assigned"):
            b.build()

    def test_reg_next_width_mismatch(self):
        b = CircuitBuilder()
        r = b.reg("r", 4)
        with pytest.raises(ValueError, match="width"):
            r.next = b.const(0, 8)

    def test_const_does_not_fit(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError, match="does not fit"):
            b.const(16, 4)

    def test_negative_const_wraps(self):
        b = CircuitBuilder()
        v = b.const(-1, 4)
        x = b.input("x", 4)
        b.output("y", x & v)
        sim = WordSim(Netlist(b.build()))
        assert sim.step({"x": 0b1010})["y"] == 0b1010

    def test_mix_builders_rejected(self):
        b1 = CircuitBuilder()
        b2 = CircuitBuilder()
        x = b1.input("x", 4)
        y = b2.input("y", 4)
        with pytest.raises(ValueError, match="different builders"):
            _ = x & y

    def test_slice_reversed_rejected(self):
        b = CircuitBuilder()
        x = b.input("x", 8)
        with pytest.raises(ValueError, match="hi < lo"):
            _ = x[0:3]

    def test_select_index_too_narrow(self):
        b = CircuitBuilder()
        idx = b.input("i", 1)
        opts = [b.const(v, 4) for v in range(4)]
        with pytest.raises(ValueError, match="index width"):
            b.select(opts, idx)


class TestComposite:
    def test_select_matches_indexing(self):
        rng = random.Random(0)
        b = CircuitBuilder()
        idx = b.input("i", 3)
        options = [b.const(rng.randrange(16), 4) for _ in range(5)]
        expected = [op.signal for op in options]
        b.output("y", b.select(options, idx))
        sim = WordSim(Netlist(b.build()))
        consts = [sim.values[s.uid] for s in expected]
        for i in range(8):
            got = sim.step({"i": i})["y"]
            want = consts[i] if i < 5 else consts[4]  # padded with last
            assert got == want

    def test_scope_prefixes_names(self):
        b = CircuitBuilder()
        with b.scope("sub"):
            x = b.input("x", 1)
        assert x.name == "sub.x"
        with b.scope("a"), b.scope("b"):
            y = b.input("y", 1)
        assert y.name == "a.b.y"

    def test_zext_trunc_resize(self):
        b = CircuitBuilder()
        x = b.input("x", 4)
        assert x.zext(8).width == 8
        assert x.zext(4) is x
        assert x.resize(2).width == 2
        with pytest.raises(ValueError):
            x.zext(2)
        with pytest.raises(ValueError):
            x.trunc(8)
