"""Chaos harness (repro.runtime.chaos): seeded failure injection with
recovery-invariant assertions, plus the gem-chaos CLI surface."""

import pytest

from repro.harness import cli
from repro.runtime.chaos import (
    SCENARIOS,
    SMOKE_SEEDS,
    ChaosOutcome,
    ChaosReport,
    run_chaos,
)


class TestRegistry:
    def test_all_documented_scenarios_present(self):
        assert set(SCENARIOS) == {
            "torn-checkpoint",
            "corrupt-cache",
            "save-oserror",
            "midcycle-fault",
            "watchdog-hang",
            "lane-quarantine",
        }

    def test_smoke_seeds_fixed(self):
        """CI pins these seeds; changing them silently would change what
        the chaos-smoke job actually covers."""
        assert SMOKE_SEEDS == (11, 23, 47)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos scenario"):
            run_chaos(seeds=(1,), scenarios=("no-such-scenario",))


class TestReport:
    def test_empty_report_passes(self):
        report = ChaosReport()
        assert report.passed
        assert "0 scenario runs" in report.summary()

    def test_failure_flips_report(self):
        report = ChaosReport()
        report.outcomes.append(ChaosOutcome("x", 1, True, "fine"))
        report.outcomes.append(ChaosOutcome("x", 2, False, "broken"))
        assert not report.passed
        assert "1 failure(s)" in report.summary()
        assert "FAIL" in report.summary()


class TestScenarios:
    """One full scenario per class of injection — the complete matrix runs
    in the CI chaos-smoke job, not here."""

    def test_midcycle_fault_scenario(self, tmp_path):
        report = run_chaos(
            seeds=(11,), scenarios=("midcycle-fault",), work_dir=str(tmp_path)
        )
        assert report.passed, report.summary()
        (outcome,) = report.outcomes
        assert outcome.scenario == "midcycle-fault"
        assert outcome.seed == 11

    def test_torn_checkpoint_scenario(self, tmp_path):
        report = run_chaos(
            seeds=(11,), scenarios=("torn-checkpoint",), work_dir=str(tmp_path)
        )
        assert report.passed, report.summary()

    def test_lane_quarantine_scenario_legacy_engine(self, tmp_path):
        """Acceptance: quarantine keeps healthy lanes bit-identical in the
        legacy engine too (the fused mode runs in the CI smoke job)."""
        report = run_chaos(
            seeds=(11,),
            scenarios=("lane-quarantine",),
            engine_mode="legacy",
            work_dir=str(tmp_path),
        )
        assert report.passed, report.summary()
        assert "legacy" in report.outcomes[0].detail


class TestChaosCLI:
    def test_cli_single_scenario(self, capsys, tmp_path):
        rc = cli.main_chaos(
            [
                "--seeds", "11",
                "--scenarios", "watchdog-hang",
                "--work-dir", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "chaos campaign" in out
        assert "watchdog-hang" in out

    def test_cli_json_output(self, capsys, tmp_path):
        import json

        rc = cli.main_chaos(
            [
                "--seeds", "11",
                "--scenarios", "save-oserror",
                "--work-dir", str(tmp_path),
                "--json",
            ]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["passed"] is True
        assert doc["outcomes"][0]["scenario"] == "save-oserror"

    def test_cli_rejects_unknown_scenario(self, capsys, tmp_path):
        rc = cli.main_chaos(["--scenarios", "bogus", "--work-dir", str(tmp_path)])
        assert rc == 2
