"""VLIW ISA encode/decode round-trips (repro.core.isa)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import isa


class TestHeaders:
    def test_roundtrip(self):
        for opcode in isa.Opcode:
            word = isa.make_header(opcode, 123)
            op, length, count = isa.parse_header(word)
            assert op is opcode
            assert count == 123
            assert length == isa.instruction_words(opcode)

    def test_instruction_lengths_match_paper(self):
        # 8192 / 16384 / 32768-bit VLIW words = 256 / 512 / 1024 words.
        assert isa.SIZE_CLASS_WORDS == (256, 512, 1024)
        assert isa.instruction_words(isa.Opcode.INIT) == 256
        assert isa.instruction_words(isa.Opcode.READ) == 512
        assert isa.instruction_words(isa.Opcode.PERM) == 1024
        assert isa.instruction_words(isa.Opcode.FOLD) == 1024

    def test_count_range_checked(self):
        with pytest.raises(ValueError):
            isa.make_header(isa.Opcode.READ, 1 << 16)


class TestInit:
    def test_roundtrip(self):
        inst = isa.encode_init(stage=2, num_layers=7, state_slots=300, num_reads=12, num_ramops=3)
        assert len(inst) == 256
        info = isa.decode_init(inst)
        assert info == {
            "stage": 2,
            "num_layers": 7,
            "state_slots": 300,
            "num_reads": 12,
            "num_ramops": 3,
        }


class TestRead:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2**30), st.integers(0, 8191), st.booleans()
            ),
            max_size=600,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_roundtrip(self, entries):
        insts = isa.encode_read(entries)
        decoded = []
        for inst in insts:
            _, _, count = isa.parse_header(int(inst[0]))
            gidx, slots, inv = isa.decode_read(inst, count)
            decoded.extend(zip(gidx.tolist(), slots.tolist(), inv.tolist()))
        assert decoded == [(g, s, i) for g, s, i in entries]

    def test_chunking(self):
        entries = [(i, i % 100, False) for i in range(600)]
        insts = isa.encode_read(entries)
        assert len(insts) == -(-600 // isa.READ_CAPACITY)


class TestPerm:
    @given(st.lists(st.integers(-1, 500), min_size=8, max_size=64))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_sparse(self, perm_list):
        perm = np.array(perm_list, dtype=np.int32)
        insts = isa.encode_perm(perm)
        recovered = {}
        for inst in insts:
            _, _, count = isa.parse_header(int(inst[0]))
            leaves, slots = isa.decode_perm(inst, count)
            recovered.update(zip(leaves.tolist(), slots.tolist()))
        expected = {i: int(v) for i, v in enumerate(perm) if v >= 0}
        assert recovered == expected

    def test_all_empty_still_emits_one(self):
        perm = np.full(16, -1, dtype=np.int32)
        insts = isa.encode_perm(perm)
        assert len(insts) == 1
        _, _, count = isa.parse_header(int(insts[0][0]))
        assert count == 0


class TestFold:
    @pytest.mark.parametrize("eff", [1, 3, 7, 13])
    def test_roundtrip(self, eff):
        rng = np.random.default_rng(eff)
        xa, xb, ob = [], [], []
        for step in range(eff):
            size = 1 << (eff - step - 1)
            xa.append(rng.random(size) < 0.5)
            xb.append(rng.random(size) < 0.5)
            ob.append(rng.random(size) < 0.5)
        inst = isa.encode_fold(eff, xa, xb, ob)
        da, db, do = isa.decode_fold(inst, eff)
        for step in range(eff):
            assert (da[step] == xa[step]).all()
            assert (db[step] == xb[step]).all()
            assert (do[step] == ob[step]).all()


class TestWb:
    @given(
        st.lists(
            st.tuples(st.integers(0, 12), st.integers(0, 4095), st.integers(0, 8191)),
            max_size=700,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_roundtrip(self, entries):
        insts = isa.encode_wb(entries)
        decoded = []
        for inst in insts:
            _, _, count = isa.parse_header(int(inst[0]))
            steps, pos, slots = isa.decode_wb(inst, count)
            decoded.extend(zip(steps.tolist(), pos.tolist(), slots.tolist()))
        assert decoded == entries

    def test_range_check(self):
        with pytest.raises(ValueError):
            isa.encode_wb([(16, 0, 0)])


class TestGwrite:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 8191),
                st.booleans(),
                st.integers(0, 2**29),
                st.booleans(),
            ),
            max_size=300,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_roundtrip(self, entries):
        insts = isa.encode_gwrite(entries)
        decoded = []
        for inst in insts:
            _, _, count = isa.parse_header(int(inst[0]))
            slots, inv, gidx, deferred = isa.decode_gwrite(inst, count)
            decoded.extend(
                zip(slots.tolist(), inv.tolist(), gidx.tolist(), deferred.tolist())
            )
        assert decoded == entries


class TestRamOp:
    def test_roundtrip(self):
        op = isa.RamOp(
            ram_index=4,
            addr_bits=13,
            data_bits=32,
            rd_global_base=9000,
            raddr=[(i, i % 2 == 0) for i in range(13)],
            ren=(77, True),
            waddr=[(100 + i, False) for i in range(13)],
            wdata=[(200 + i, i % 3 == 0) for i in range(32)],
            wen=(0, False),
        )
        decoded = isa.decode_ramop(isa.encode_ramop(op))
        assert decoded == op

    def test_slot_range_checked(self):
        op = isa.RamOp(
            ram_index=0,
            addr_bits=1,
            data_bits=1,
            rd_global_base=0,
            raddr=[(1 << 15, False)],
            ren=(0, False),
            waddr=[(0, False)],
            wdata=[(0, False)],
            wen=(0, False),
        )
        with pytest.raises(ValueError):
            isa.encode_ramop(op)
