"""Benchmark designs: structure properties and workload correctness."""

import pytest

from repro.core.synthesis import synthesize
from repro.designs.gemmini_like import GemminiScale, build_gemmini_like
from repro.designs.nvdla_like import NvdlaScale, build_nvdla_like
from repro.designs.openpiton_like import OpenPitonScale, build_openpiton_like
from repro.designs.rocket_like import RocketScale, build_rocket_like
from repro.designs.workloads import (
    gemmini_workloads,
    nvdla_workloads,
    openpiton_workloads,
    rocket_workloads,
    workloads_for,
)
from repro.rtl import Netlist, WordSim

# Small scales so the whole file runs in seconds.
SMALL_ROCKET = RocketScale(imem_depth=128, dmem_depth=128, rocc_macs=1)
SMALL_NVDLA = NvdlaScale(engines=2, lanes=2, taps=2, act_depth=64, wgt_depth=16, out_depth=64)
SMALL_GEMMINI = GemminiScale(dim=2, spad_depth=32)
SMALL_OP = OpenPitonScale(cores=2, imem_depth=64, dmem_depth=64)


class TestStructure:
    def test_rocket_has_async_regfile_polyfill(self):
        """The property driving §IV's analysis: the CPU designs pay the
        async-RAM polyfill, NVDLA does not."""
        result = synthesize(build_rocket_like(SMALL_ROCKET))
        modes = {r.name.split(".")[-1]: r.mode for r in result.memory_reports}
        assert modes["regfile"] == "polyfill"
        assert modes["imem"] == "blocks"
        assert modes["dmem"] == "blocks"

    def test_nvdla_all_memories_block_mapped(self):
        result = synthesize(build_nvdla_like(SMALL_NVDLA))
        assert all(r.mode == "blocks" for r in result.memory_reports)
        assert len(result.memory_reports) == 3 * SMALL_NVDLA.engines

    def test_gemmini_has_async_transposer(self):
        result = synthesize(build_gemmini_like(SMALL_GEMMINI))
        modes = {r.name: r.mode for r in result.memory_reports}
        assert modes["spad"] == "blocks"
        assert modes["transposer"] == "polyfill"

    def test_openpiton_scales_with_cores(self):
        one = synthesize(build_openpiton_like(OpenPitonScale(cores=1, imem_depth=64, dmem_depth=64))).eaig
        two = synthesize(build_openpiton_like(SMALL_OP)).eaig
        assert 1.7 * one.num_gates() <= two.num_gates() <= 2.4 * one.num_gates()

    def test_gemmini_is_deepest_per_gate(self):
        """Spatial row accumulation gives Gemmini the paper's depth
        profile: deeper than the similarly-sized NVDLA analogue."""
        gm = synthesize(build_gemmini_like(GemminiScale(dim=4))).eaig
        nv = synthesize(build_nvdla_like(SMALL_NVDLA)).eaig
        assert gm.depth() > nv.depth()


def _run_cpu_workload(circuit, wl):
    sim = WordSim(Netlist(circuit))
    outs = []
    for vec in wl.stimuli:
        o = sim.step(vec)
        if o.get(wl.valid_port):
            outs.append(o[wl.out_port])
    return outs


class TestRocketWorkloads:
    @pytest.mark.parametrize("name", ["dhrystone", "pmp", "spmv"])
    def test_workload_runs_correctly(self, name):
        circuit = build_rocket_like(SMALL_ROCKET)
        wl = rocket_workloads(dmem_depth=SMALL_ROCKET.dmem_depth)[name]
        assert _run_cpu_workload(circuit, wl) == wl.expected_out

    def test_workloads_have_expected_outputs(self):
        for name, wl in rocket_workloads().items():
            assert wl.expected_out, name  # golden model produced output
            assert wl.cycles > 50


class TestOpenPitonWorkloads:
    def test_two_core_workload(self):
        circuit = build_openpiton_like(SMALL_OP)
        wl = openpiton_workloads(cores=2, dmem_depth=64)["fp_mt_combo0"]
        assert _run_cpu_workload(circuit, wl) == wl.expected_out

    def test_idle_tiles_halt_quickly(self):
        circuit = build_openpiton_like(SMALL_OP)
        wl = openpiton_workloads(cores=2, dmem_depth=64)["asi_notused_priv"]
        sim = WordSim(Netlist(circuit))
        last = {}
        for vec in wl.stimuli:
            last = sim.step(vec)
        assert last["halted0"] == 1
        assert last["halted1"] == 1

    def test_ring_delivers_messages(self):
        circuit = build_openpiton_like(SMALL_OP)
        wl = openpiton_workloads(cores=2, dmem_depth=64)["ldst_quad2"]
        sim = WordSim(Netlist(circuit))
        for vec in wl.stimuli:
            last = sim.step(vec)
        assert last["ring.ring_delivered"] >= 1


class TestAcceleratorWorkloads:
    def test_nvdla_conv_matches_software_model(self):
        scale = SMALL_NVDLA
        circuit = build_nvdla_like(scale)
        wl = nvdla_workloads(scale)["pdpmax_int8_0"]
        engine = wl.stimuli[0]["engine"]
        sim = WordSim(Netlist(circuit))
        acts: dict[int, int] = {}
        wgts: dict[int, int] = {}
        length = None
        for vec in wl.stimuli:
            if vec.get("act_wen"):
                acts[vec["load_addr"]] = vec["load_data"]
            if vec.get("wgt_wen"):
                wgts[vec["load_addr"]] = vec["load_data"]
            if vec.get("start"):
                length = vec["length"]
            out = sim.step(vec)
        assert out["done"] == 1

        # Software conv model reproducing the datapath.
        def lanes_of(word):
            w = scale.data_width
            return [(word >> (i * w)) & ((1 << w) - 1) for i in range(scale.lanes)]

        mask = (1 << scale.acc_width) - 1
        checksum = 0
        for opos in range(length):
            acc = 0
            for tap in range(scale.taps):
                a = lanes_of(acts.get(opos + tap, 0))
                w = lanes_of(wgts.get(tap, 0))
                acc = (acc + sum(x * y for x, y in zip(a, w))) & mask
            relu = 0 if acc >> (scale.acc_width - 1) else acc
            checksum ^= relu ^ opos
        assert out[f"checksum{engine}"] == checksum
        # Untouched engines stay at zero.
        for other in range(scale.engines):
            if other != engine:
                assert out[f"checksum{other}"] == 0

    def test_gemmini_matmul_matches_software_model(self):
        scale = SMALL_GEMMINI
        circuit = build_gemmini_like(scale)
        wl = gemmini_workloads(scale)["tiled_matmul_ws_perf"]
        sim = WordSim(Netlist(circuit))
        N, W, A = scale.dim, scale.data_width, scale.acc_width
        maskA = (1 << A) - 1
        weights = [[0] * N for _ in range(N)]
        accs = [0] * N
        checksum = 0
        spad = {}
        for vec in wl.stimuli:
            out = sim.step(vec)
            # software model mirrors the datapath cycle by cycle
            if vec.get("acc_clear"):
                accs = [0] * N
            elif vec.get("wgt_wen"):
                row = vec["wgt_row"]
                for j in range(N):
                    weights[row][j] = (vec["wgt_bus"] >> (j * W)) & ((1 << W) - 1)
            elif vec.get("act_valid"):
                a = [(vec["act_bus"] >> (j * W)) & ((1 << W) - 1) for j in range(N)]
                for i in range(N):
                    accs[i] = (accs[i] + sum(weights[i][j] * a[j] for j in range(N))) & maskA
            elif vec.get("drain"):
                sel = accs[vec["drain_row"] % N]
                spad[vec["drain_addr"] % scale.spad_depth] = sel
                checksum = ((checksum ^ sel) + vec["drain_addr"] + 1) & maskA
        assert out["checksum"] == checksum


class TestWorkloadRegistry:
    def test_dispatch(self):
        assert set(workloads_for("rocket_like")) == {
            "dhrystone", "mt-memcpy", "pmp", "qsort", "spmv",
        }
        assert len(workloads_for("nvdla_like")) == 5
        assert len(workloads_for("gemmini_like")) == 2
        assert len(workloads_for("openpiton1_like")) == 3
        with pytest.raises(KeyError):
            workloads_for("unknown")

    def test_stimuli_only_use_circuit_inputs(self):
        circuit = build_rocket_like()
        names = {s.name for s in circuit.inputs}
        for wl in rocket_workloads().values():
            for vec in wl.stimuli[:30]:
                assert set(vec) <= names
