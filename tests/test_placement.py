"""Boomerang layers and Algorithm 2 placement (paper §III-A/D)."""

import numpy as np
import pytest

from repro.core.boomerang import BoomerangConfig, Layer, count_layer_work
from repro.core.eaig import EAIGSim, NodeKind
from repro.core.partition import PartitionConfig, partition_design
from repro.core.placement import (
    UnmappableError,
    is_mappable,
    naive_levelized_layers,
    place_partition,
)
from repro.core.synthesis import synthesize
from tests.helpers import random_circuit


def _reference_fold(layer: Layer, state: np.ndarray) -> np.ndarray:
    """Slow, obviously-correct model of a boomerang layer's semantics."""
    state = state.copy()
    vec = np.array(
        [bool(state[s]) if s >= 0 else False for s in layer.perm], dtype=bool
    )
    for step in range(layer.config.width_log2):
        nxt = np.zeros(len(vec) // 2, dtype=bool)
        for i in range(len(nxt)):
            a = vec[2 * i] ^ layer.xor_a[step][i]
            b = (vec[2 * i + 1] ^ layer.xor_b[step][i]) | layer.or_b[step][i]
            nxt[i] = a & b
        vec = nxt
        for pos, slot in layer.writebacks[step]:
            state[slot] = vec[pos]
    return state


class TestBoomerangLayer:
    def test_empty_layer_defaults(self):
        cfg = BoomerangConfig(width_log2=4)
        layer = Layer.empty(cfg)
        assert layer.perm.shape == (16,)
        assert all((layer.or_b[s] == True).all() for s in range(4))  # noqa: E712

    @pytest.mark.parametrize("seed", range(5))
    def test_execute_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        cfg = BoomerangConfig(width_log2=5)
        layer = Layer.empty(cfg)
        layer.perm = rng.integers(-1, cfg.state_size, size=cfg.width).astype(np.int32)
        for step in range(cfg.width_log2):
            layer.xor_a[step] = rng.random(len(layer.xor_a[step])) < 0.5
            layer.xor_b[step] = rng.random(len(layer.xor_b[step])) < 0.5
            layer.or_b[step] = rng.random(len(layer.or_b[step])) < 0.5
            size = cfg.width >> (step + 1)
            # one random writeback per step to a high slot
            layer.writebacks[step] = [(int(rng.integers(size)), int(rng.integers(1, cfg.state_size)))]
        state = rng.random(cfg.state_size) < 0.5
        expected = _reference_fold(layer, state)
        got = state.copy()
        layer.execute(got)
        assert (got == expected).all()

    def test_count_layer_work(self):
        cfg = BoomerangConfig(width_log2=4)
        layers = [Layer.empty(cfg), Layer.empty(cfg)]
        work = count_layer_work(layers)
        assert work["layers"] == 2
        assert work["fold_steps"] == 8
        assert count_layer_work([])["layers"] == 0

    def test_config_properties(self):
        cfg = BoomerangConfig()
        assert cfg.width == 8192
        assert cfg.state_size == 8192
        assert cfg.threads == 256


def _placed_design(seed=2, n_ops=80, width_log2=10):
    eaig = synthesize(random_circuit(seed, n_ops=n_ops, n_regs=5)).eaig
    plan = partition_design(eaig, PartitionConfig(gates_per_partition=500, num_stages=1))
    cfg = BoomerangConfig(width_log2=width_log2)
    placed = [place_partition(eaig, spec, cfg) for spec in plan.partitions]
    return eaig, plan, placed, cfg


class TestPlacement:
    def test_all_partition_values_computed_correctly(self):
        eaig, plan, placed, cfg = _placed_design()
        sim = EAIGSim(eaig)
        import random as _r

        rng = _r.Random(0)
        for _ in range(10):
            sim.settle([rng.getrandbits(1) for _ in eaig.pis])
            for pp in placed:
                local_nodes = set(pp.spec.nodes)
                state = np.zeros(cfg.state_size, dtype=bool)
                for node, slot in pp.slot_of.items():
                    if node not in local_nodes:
                        state[slot] = bool(sim.value[node])
                for layer in pp.layers:
                    layer.execute(state)
                for node, slot in pp.slot_of.items():
                    assert bool(state[slot]) == bool(sim.value[node]), node
            sim.clock_edge()

    def test_layers_beat_levelization(self):
        """Fig. 3's claim at unit scale: boomerang layers need far fewer
        synchronizations than one-per-level execution."""
        eaig, plan, placed, cfg = _placed_design(n_ops=120)
        for pp in placed:
            naive = naive_levelized_layers(eaig, pp.spec, cfg)
            if naive["layers"] >= 10:
                assert len(pp.layers) * 2 <= naive["layers"]

    def test_slot_accounting(self):
        eaig, plan, placed, cfg = _placed_design()
        for pp in placed:
            assert pp.num_slots <= cfg.state_size
            # sources all have slots, slot 0 reserved for constant
            assert 0 not in pp.slot_of.values()
            for src in pp.spec.sources:
                assert src in pp.slot_of

    def test_root_literals_resolvable(self):
        eaig, plan, placed, cfg = _placed_design()
        for pp in placed:
            for literal in pp.spec.root_literals():
                slot, inv = pp.slot_and_invert(literal)
                assert 0 <= slot < pp.num_slots

    def test_unmappable_raises(self):
        eaig = synthesize(random_circuit(4, n_ops=150, n_regs=4)).eaig
        plan = partition_design(eaig, PartitionConfig(gates_per_partition=10_000, num_stages=1))
        tiny = BoomerangConfig(width_log2=5)  # 32-bit state: hopeless
        with pytest.raises(UnmappableError):
            for spec in plan.partitions:
                place_partition(eaig, spec, tiny)

    def test_is_mappable_predicate(self):
        eaig = synthesize(random_circuit(5, n_ops=60, n_regs=3)).eaig
        plan = partition_design(eaig, PartitionConfig(gates_per_partition=5_000, num_stages=1))
        spec = plan.partitions[0]
        assert is_mappable(eaig, spec, BoomerangConfig(width_log2=12))
        assert not is_mappable(eaig, spec, BoomerangConfig(width_log2=4))

    def test_empty_partition_places_to_zero_layers(self):
        # A partition whose endpoints are fed directly by sources.
        from repro.rtl import CircuitBuilder

        b = CircuitBuilder()
        x = b.input("x", 4)
        r = b.reg("r", 4)
        r.next = x
        b.output("q", r)
        eaig = synthesize(b.build()).eaig
        plan = partition_design(eaig, PartitionConfig())
        pp = place_partition(eaig, plan.partitions[0], BoomerangConfig(width_log2=6))
        assert pp.layers == []
