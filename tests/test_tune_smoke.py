"""Bounded end-to-end autotune smoke (the CI ``tune-smoke`` job).

A full measured autotune — compile sweep, analytical ranking, measured
finalists, cache write — on one small design with a tiny fixed-seed
budget.  Slow-marked so the default CI test matrix skips it; the
dedicated ``tune-smoke`` job runs exactly this file and uploads the
tuning-cache JSON it writes as an artifact.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.autotune import AutotuneConfig, KnobSpace, autotune
from repro.core.boomerang import BoomerangConfig
from repro.core.compiler import GemConfig
from repro.core.depth_opt import optimize
from repro.core.partition import PartitionConfig
from repro.core.synthesis import synthesize
from tests.helpers import random_circuit, random_vectors

pytestmark = pytest.mark.slow


def test_bounded_measured_autotune(tmp_path):
    cache_dir = os.environ.get("GEM_TUNE_DIR", str(tmp_path))
    circ = random_circuit(19, n_ops=320, max_width=12, with_memory=False)
    synth = optimize(synthesize(circ))
    base = GemConfig(
        partition=PartitionConfig(gates_per_partition=400, num_stages=2),
        boomerang=BoomerangConfig(width_log2=9),
    )
    result = autotune(
        synth,
        random_vectors(circ, 29, cycles=16),
        name="tune-smoke",
        base=base,
        space=KnobSpace(
            gates_per_partition=(300, 400, 600),
            num_stages=(1, 2),
            width_log2=(9,),
            sa_iterations=(0, 6),
        ),
        opts=AutotuneConfig(
            budget=5,
            top_k=2,
            measure_cycles=12,
            repeats=2,
            seed=0,
            cache_dir=cache_dir,
        ),
    )

    # The tuned pick must never lose to the default it was measured against.
    assert result.default_measured is not None
    assert result.winner_measured is not None
    assert result.winner_measured >= result.default_measured

    # The cache artifact the CI job uploads: present, versioned, replayable.
    assert result.cache_path and os.path.exists(result.cache_path)
    with open(result.cache_path) as f:
        payload = json.load(f)
    assert payload["winner_knobs"] == result.winner_knobs
    assert payload["key"] == result.key

    rerun = autotune(
        synth,
        random_vectors(circ, 29, cycles=16),
        name="tune-smoke",
        base=base,
        space=KnobSpace(
            gates_per_partition=(300, 400, 600),
            num_stages=(1, 2),
            width_log2=(9,),
            sa_iterations=(0, 6),
        ),
        opts=AutotuneConfig(
            budget=5,
            top_k=2,
            measure_cycles=12,
            repeats=2,
            seed=0,
            cache_dir=cache_dir,
        ),
    )
    assert rerun.cache_hit, "second autotune of the same design must not re-sweep"
    assert rerun.winner_knobs == result.winner_knobs
