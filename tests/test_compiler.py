"""End-to-end compiler API (repro.core.compiler)."""

import pytest

from repro.core.boomerang import BoomerangConfig
from repro.core.compiler import CompileReport, GemCompiler, GemConfig, compile_circuit
from repro.core.partition import PartitionConfig
from repro.core.synthesis import synthesize
from repro.rtl import CircuitBuilder
from tests.helpers import random_circuit, random_vectors


def _config(width_log2=10, gpp=300):
    return GemConfig(
        partition=PartitionConfig(gates_per_partition=gpp),
        boomerang=BoomerangConfig(width_log2=width_log2),
    )


class TestCompile:
    def test_report_fields_consistent(self):
        circuit = random_circuit(11, n_ops=60)
        design = GemCompiler(_config()).compile(circuit)
        r = design.report
        assert r.gates == design.synth.eaig.num_gates()
        assert r.partitions == design.merge.plan.num_partitions
        assert r.stages == design.merge.plan.num_stages
        assert r.layers == max(len(p.layers) for p in design.merge.placements)
        assert r.bitstream_bytes == design.program.num_bytes
        row = r.row()
        assert row["#E-AIG Gates"] == r.gates
        assert "MB" in row["Bitstream"]

    def test_layers_much_smaller_than_levels(self):
        """The §IV headline: #layers is several times below logic depth."""
        circuit = random_circuit(13, n_ops=200, n_regs=8)
        design = GemCompiler(_config()).compile(circuit)
        if design.report.levels >= 20:
            assert design.report.layers <= design.report.levels / 2

    def test_accepts_presynthesized_input(self):
        circuit = random_circuit(12, n_ops=40)
        synth = synthesize(circuit)
        design = GemCompiler(_config()).compile(synth)
        assert design.synth is synth

    def test_compile_circuit_convenience(self):
        circuit = random_circuit(14, n_ops=30)
        design = compile_circuit(circuit, _config())
        sim = design.simulator()
        sim.step(random_vectors(circuit, 0, 1)[0])

    def test_width_config_propagates(self):
        cfg = _config(width_log2=9)
        assert cfg.partition.width == 512
        circuit = random_circuit(15, n_ops=30)
        design = GemCompiler(cfg).compile(circuit)
        assert design.merge.placements[0].config.width_log2 == 9

    def test_retry_shrinks_partitions_when_unmappable(self):
        """A narrow core forces the retry loop to subdivide partitions."""
        circuit = random_circuit(16, n_ops=400, n_regs=10, max_width=32)
        wide = GemCompiler(
            GemConfig(
                partition=PartitionConfig(gates_per_partition=4000, num_stages=1),
                boomerang=BoomerangConfig(width_log2=13),
            )
        ).compile(circuit)
        narrow = GemCompiler(
            GemConfig(
                partition=PartitionConfig(gates_per_partition=4000, num_stages=1),
                boomerang=BoomerangConfig(width_log2=10),
            )
        ).compile(circuit)
        # The 1024-bit core cannot hold the single wide partition; the retry
        # loop must have subdivided.
        assert wide.merge.plan.num_partitions == 1
        assert narrow.merge.plan.num_partitions > 1
        for placed in narrow.merge.placements:
            assert placed.num_slots <= 1024

    def test_unmappable_design_raises_cleanly(self):
        """A single endpoint cone bigger than the core state is a hard
        failure: the retry loop must give up with a clear error."""
        from repro.core.placement import UnmappableError

        circuit = random_circuit(16, n_ops=400, n_regs=10, max_width=32)
        cfg = GemConfig(
            partition=PartitionConfig(gates_per_partition=4000, num_stages=1),
            boomerang=BoomerangConfig(width_log2=9),
            max_partition_retries=1,
        )
        with pytest.raises(UnmappableError, match="could not find"):
            GemCompiler(cfg).compile(circuit)

    def test_simulator_instances_independent(self):
        circuit = random_circuit(17, n_ops=40)
        design = GemCompiler(_config()).compile(circuit)
        a = design.simulator()
        b = design.simulator()
        vecs = random_vectors(circuit, 3, 5)
        for vec in vecs:
            a.step(vec)
        before = b.outputs()
        assert b.outputs() == before  # b untouched by a's steps


class TestDegenerateDesigns:
    def test_single_gate(self):
        b = CircuitBuilder()
        x = b.input("x", 1)
        y = b.input("y", 1)
        b.output("z", x & y)
        design = GemCompiler(_config()).compile(b.build())
        sim = design.simulator()
        assert sim.step({"x": 1, "y": 1})["z"] == 1
        assert sim.step({"x": 1, "y": 0})["z"] == 0

    def test_constant_output(self):
        b = CircuitBuilder()
        b.input("x", 1)
        b.output("z", b.const(1, 1))
        design = GemCompiler(_config()).compile(b.build())
        assert design.simulator().step({})["z"] == 1

    def test_passthrough_inverted(self):
        b = CircuitBuilder()
        x = b.input("x", 4)
        b.output("z", ~x)
        design = GemCompiler(_config()).compile(b.build())
        assert design.simulator().step({"x": 0b1010})["z"] == 0b0101
