"""Golden word-level simulator semantics (repro.rtl.netlist.WordSim)."""

import pytest

from repro.rtl import CircuitBuilder, Netlist, WordSim


def _counter():
    b = CircuitBuilder("counter")
    en = b.input("en", 1)
    count = b.reg("count", 8, init=5)
    count.next = b.mux(en, count + 1, count)
    b.output("q", count)
    return b.build()


class TestRegisters:
    def test_init_value_visible_before_first_edge(self):
        sim = WordSim(Netlist(_counter()))
        assert sim.step({"en": 0})["q"] == 5

    def test_enable_gates_update(self):
        sim = WordSim(Netlist(_counter()))
        sim.step({"en": 0})
        assert sim.step({"en": 1})["q"] == 5
        assert sim.step({"en": 1})["q"] == 6
        assert sim.step({"en": 0})["q"] == 7
        assert sim.step({"en": 1})["q"] == 7

    def test_register_samples_before_update(self):
        # Two registers swapping values must swap atomically.
        b = CircuitBuilder()
        a = b.reg("a", 4, init=1)
        c = b.reg("c", 4, init=2)
        a.next = c
        c.next = a
        b.output("a", a)
        b.output("c", c)
        sim = WordSim(Netlist(b.build()))
        assert sim.step({}) == {"a": 1, "c": 2}
        assert sim.step({}) == {"a": 2, "c": 1}
        assert sim.step({}) == {"a": 1, "c": 2}


class TestInputs:
    def test_unknown_input_rejected(self):
        sim = WordSim(Netlist(_counter()))
        with pytest.raises(KeyError):
            sim.step({"nope": 1})

    def test_oversized_input_rejected(self):
        sim = WordSim(Netlist(_counter()))
        with pytest.raises(ValueError):
            sim.step({"en": 2})

    def test_missing_inputs_read_zero(self):
        sim = WordSim(Netlist(_counter()))
        sim.step({"en": 1})
        sim.step({"en": 1})
        q = sim.step({})["q"]  # en omitted -> 0 this cycle
        assert sim.step({})["q"] == q


class TestMemories:
    def _mem_circuit(self, sync=True, en=False):
        b = CircuitBuilder()
        waddr = b.input("waddr", 3)
        raddr = b.input("raddr", 3)
        wdata = b.input("wdata", 8)
        wen = b.input("wen", 1)
        kwargs = {}
        if en:
            kwargs["en"] = b.input("ren", 1)
        mem = b.memory("m", 8, 8, init=[10, 20, 30])
        b.write(mem, wen, waddr, wdata)
        b.output("rd", b.read(mem, raddr, sync=sync, **kwargs))
        return b.build()

    def test_async_read_sees_init(self):
        sim = WordSim(Netlist(self._mem_circuit(sync=False)))
        assert sim.step({"raddr": 1})["rd"] == 20

    def test_async_read_sees_write_next_cycle(self):
        sim = WordSim(Netlist(self._mem_circuit(sync=False)))
        sim.step({"wen": 1, "waddr": 4, "wdata": 99})
        assert sim.step({"raddr": 4})["rd"] == 99

    def test_sync_read_one_cycle_latency(self):
        sim = WordSim(Netlist(self._mem_circuit(sync=True)))
        assert sim.step({"raddr": 2})["rd"] == 0  # nothing sampled yet
        assert sim.step({"raddr": 0})["rd"] == 30  # addr 2 sampled last edge
        assert sim.step({})["rd"] == 10

    def test_sync_read_first_semantics(self):
        # Reading the address being written returns the OLD word.
        sim = WordSim(Netlist(self._mem_circuit(sync=True)))
        sim.step({"wen": 1, "waddr": 1, "wdata": 77, "raddr": 1})
        assert sim.step({"raddr": 1})["rd"] == 20  # old value
        assert sim.step({})["rd"] == 77  # new value on the next sample

    def test_sync_read_enable_holds(self):
        sim = WordSim(Netlist(self._mem_circuit(sync=True, en=True)))
        sim.step({"raddr": 1, "ren": 1})
        assert sim.step({"raddr": 2, "ren": 0})["rd"] == 20
        assert sim.step({"raddr": 2, "ren": 0})["rd"] == 20  # held
        sim.step({"raddr": 2, "ren": 1})
        assert sim.step({})["rd"] == 30

    def test_write_conflict_trap(self):
        b = CircuitBuilder()
        wen = b.input("wen", 1)
        mem = b.memory("m", 4, 4)
        addr = b.const(2, 2)
        b.write(mem, wen, addr, b.const(1, 4))
        b.write(mem, wen, addr, b.const(2, 4))
        b.output("rd", b.read(mem, addr, sync=True))
        netlist = Netlist(b.build())
        sim = WordSim(netlist, trap_write_conflicts=True)
        with pytest.raises(RuntimeError, match="write conflict"):
            sim.step({"wen": 1})
        # Without trapping, last write wins (visible after the next sample:
        # the first post-write edge still samples read-first).
        sim2 = WordSim(netlist)
        sim2.step({"wen": 1})
        sim2.step({})
        assert sim2.step({})["rd"] == 2

    def test_memory_depth_must_be_power_of_two(self):
        b = CircuitBuilder()
        with pytest.raises(ValueError, match="power of two"):
            b.memory("m", 6, 4)


class TestRunAndPeek:
    def test_run_returns_per_cycle_outputs(self):
        sim = WordSim(Netlist(_counter()))
        outs = sim.run([{"en": 1}] * 3)
        assert [o["q"] for o in outs] == [5, 6, 7]

    def test_peek(self):
        c = _counter()
        sim = WordSim(Netlist(c))
        sim.step({"en": 1})
        reg_sig = next(op.out for op in c.ops if op.kind.value == "reg")
        assert sim.peek(reg_sig) == 6
