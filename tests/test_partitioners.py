"""FM refinement and multilevel k-way partitioning."""

import random

import pytest

from repro.partition.fm import refine_bipartition
from repro.partition.hypergraph import Hypergraph
from repro.partition.multilevel import bisect, coarsen, partition_kway


def _two_clusters(n_per_side=12, cross_nets=2, seed=0) -> Hypergraph:
    """Two dense clusters joined by a few weak nets: the planted optimum
    is the cluster boundary."""
    rng = random.Random(seed)
    n = 2 * n_per_side
    g = Hypergraph(vertex_weight=[1] * n)
    for side in (0, 1):
        base = side * n_per_side
        for _ in range(4 * n_per_side):
            a, b = rng.sample(range(base, base + n_per_side), 2)
            g.add_net([a, b], weight=3)
    for _ in range(cross_nets):
        g.add_net([rng.randrange(n_per_side), n_per_side + rng.randrange(n_per_side)], weight=1)
    return g


class TestFM:
    def test_improves_bad_start(self):
        g = _two_clusters()
        n = g.num_vertices
        # Interleaved start: terrible cut.
        parts = [v % 2 for v in range(n)]
        start_cut = g.cut_weight(parts)
        final = refine_bipartition(g, parts, [n, n])
        assert final < start_cut
        assert final <= 2  # planted boundary weight

    def test_respects_balance_bound(self):
        g = _two_clusters()
        n = g.num_vertices
        parts = [v % 2 for v in range(n)]
        cap = n // 2 + 1
        refine_bipartition(g, parts, [cap, cap])
        weights = g.part_weights(parts, 2)
        assert max(weights) <= cap

    def test_no_nets_is_noop(self):
        g = Hypergraph(vertex_weight=[1] * 4)
        parts = [0, 1, 0, 1]
        assert refine_bipartition(g, parts, [4, 4]) == 0


class TestCoarsen:
    def test_weight_preserved(self):
        g = _two_clusters()
        coarse, vmap = coarsen(g, random.Random(0))
        assert coarse.total_weight == g.total_weight
        assert len(vmap) == g.num_vertices
        assert coarse.num_vertices < g.num_vertices

    def test_net_projection(self):
        g = Hypergraph(vertex_weight=[1] * 4)
        g.add_net([0, 1], weight=2)
        g.add_net([2, 3], weight=2)
        g.add_net([0, 2], weight=1)
        coarse, vmap = coarsen(g, random.Random(1))
        # Any surviving net must have >= 2 distinct coarse pins.
        for net in coarse.nets:
            assert len(net) >= 2


class TestBisect:
    def test_finds_planted_cut(self):
        g = _two_clusters(n_per_side=16)
        parts = bisect(g, rng=random.Random(3))
        assert g.cut_weight(parts) <= 2

    def test_weight_fraction(self):
        g = Hypergraph(vertex_weight=[1] * 30)
        for i in range(29):
            g.add_net([i, i + 1])
        parts = bisect(g, weight_fraction0=1 / 3, epsilon=0.15, rng=random.Random(0))
        w0 = sum(1 for p in parts if p == 0)
        assert 6 <= w0 <= 14  # about a third, with slack


class TestKway:
    def test_all_parts_used(self):
        g = _two_clusters(n_per_side=16)
        parts = partition_kway(g, 4)
        assert set(parts) == {0, 1, 2, 3}

    def test_k_one(self):
        g = _two_clusters()
        assert set(partition_kway(g, 1)) == {0}

    def test_k_larger_than_n(self):
        g = Hypergraph(vertex_weight=[1, 1, 1])
        parts = partition_kway(g, 8)
        assert len(parts) == 3
        assert all(0 <= p < 8 for p in parts)

    def test_deterministic_for_seed(self):
        g = _two_clusters(seed=5)
        assert partition_kway(g, 4, seed=9) == partition_kway(g, 4, seed=9)

    def test_balance_roughly_even(self):
        g = Hypergraph(vertex_weight=[1] * 64)
        rng = random.Random(2)
        for _ in range(200):
            a, b = rng.sample(range(64), 2)
            g.add_net([a, b])
        parts = partition_kway(g, 4, epsilon=0.1)
        weights = g.part_weights(parts, 4)
        assert max(weights) <= 1.5 * (64 / 4)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            partition_kway(Hypergraph(vertex_weight=[1]), 0)
