"""E-AIG structure, strashing, and the bit-level golden simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.eaig import EAIG, EAIGSim, FALSE, TRUE, NodeKind, lit_not


class TestLiterals:
    def test_constants(self):
        assert FALSE == 0
        assert TRUE == 1
        assert lit_not(FALSE) == TRUE


class TestStrash:
    def test_and_constant_folding(self):
        g = EAIG()
        a = g.add_pi("a")
        assert g.add_and(a, FALSE) == FALSE
        assert g.add_and(a, TRUE) == a
        assert g.add_and(a, a) == a
        assert g.add_and(a, lit_not(a)) == FALSE

    def test_structural_hashing_dedupes(self):
        g = EAIG()
        a = g.add_pi()
        b = g.add_pi()
        x = g.add_and(a, b)
        y = g.add_and(b, a)  # commuted
        assert x == y
        assert g.num_gates() == 1

    def test_or_xor_mux_built_from_ands(self):
        g = EAIG()
        a = g.add_pi()
        b = g.add_pi()
        g.add_or(a, b)
        g.add_xor(a, b)
        sel = g.add_pi()
        g.add_mux(sel, a, b)
        assert g.num_gates() > 0

    def test_mux_simplifications(self):
        g = EAIG()
        a = g.add_pi()
        b = g.add_pi()
        sel = g.add_pi()
        assert g.add_mux(sel, a, a) == a
        assert g.add_mux(TRUE, a, b) == a
        assert g.add_mux(FALSE, a, b) == b


class TestState:
    def test_ff_two_phase_wiring(self):
        g = EAIG()
        a = g.add_pi()
        q = g.add_ff(init=1)
        g.set_ff_input(q, lit_not(a))
        g.add_output("q", q)
        g.check()

    def test_pending_ff_fails_check(self):
        g = EAIG()
        g.add_ff()
        with pytest.raises(ValueError, match="no d input"):
            g.check()

    def test_ff_input_set_twice_rejected(self):
        g = EAIG()
        q = g.add_ff()
        g.set_ff_input(q, TRUE)
        with pytest.raises(ValueError, match="already set"):
            g.set_ff_input(q, FALSE)

    def test_ram_requires_full_ports(self):
        g = EAIG()
        ram = g.add_ram("r", addr_bits=2, data_bits=4)
        with pytest.raises(ValueError, match="address ports incomplete"):
            g.check()
        ram.raddr = [FALSE] * 2
        ram.waddr = [FALSE] * 2
        ram.wdata = [FALSE] * 4
        g.check()


class TestAnalysis:
    def test_levels_count_ands_only(self):
        g = EAIG()
        a = g.add_pi()
        b = g.add_pi()
        x = g.add_and(a, b)  # level 1
        y = g.add_and(x, lit_not(b))  # level 2; inversion is free
        g.add_output("y", y)
        assert g.depth() == 2
        assert g.lit_level(y) == 2

    def test_level_histogram(self):
        g = EAIG()
        a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
        x = g.add_and(a, b)
        g.add_and(x, c)
        hist = g.level_histogram()
        assert hist == {1: 1, 2: 1}

    def test_cone(self):
        g = EAIG()
        a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
        x = g.add_and(a, b)
        y = g.add_and(x, c)
        cone = g.cone([y])
        assert cone == {x >> 1, y >> 1}

    def test_fanout_counts(self):
        g = EAIG()
        a, b = g.add_pi(), g.add_pi()
        x = g.add_and(a, b)
        g.add_and(x, lit_not(a))
        g.add_output("o", x)
        counts = g.fanout_counts()
        assert counts[x >> 1] == 2  # one AND consumer + one output

    def test_stats(self):
        g = EAIG("t")
        a = g.add_pi()
        q = g.add_ff()
        g.set_ff_input(q, a)
        s = g.stats()
        assert s["pis"] == 1 and s["ffs"] == 1


class TestEAIGSim:
    def _xor_graph(self):
        g = EAIG()
        a = g.add_pi("a")
        b = g.add_pi("b")
        g.add_output("y", g.add_xor(a, b))
        return g

    @given(st.integers(0, 1), st.integers(0, 1))
    @settings(max_examples=8, deadline=None)
    def test_xor_truth_table(self, a, b):
        sim = EAIGSim(self._xor_graph())
        assert sim.step([a, b])["y"] == a ^ b

    def test_time_parallel_lanes(self):
        # 4 lanes simulate 4 independent stimuli at once.
        sim = EAIGSim(self._xor_graph(), vectors=4)
        # lanes: a = 0b0011, b = 0b0101 -> y = 0b0110
        outs = sim.step([0b0011, 0b0101])
        assert outs["y"] == 0b0110

    def test_ff_sequence(self):
        g = EAIG()
        a = g.add_pi("a")
        q = g.add_ff(init=0, name="q")
        g.set_ff_input(q, g.add_xor(a, q))
        g.add_output("q", q)
        sim = EAIGSim(g)
        seq = [1, 1, 0, 1]
        expect = []
        state = 0
        for bit in seq:
            expect.append(state)
            state ^= bit
        got = [sim.step([bit])["q"] for bit in seq]
        assert got == expect

    def test_ram_read_write(self):
        g = EAIG()
        ram = g.add_ram("m", addr_bits=2, data_bits=4, init=[5])
        addr = [g.add_pi(f"a{i}") for i in range(2)]
        data = [g.add_pi(f"d{i}") for i in range(4)]
        wen = g.add_pi("wen")
        ram.raddr = list(addr)
        ram.ren = TRUE
        ram.waddr = list(addr)
        ram.wdata = list(data)
        ram.wen = wen
        for i, node in enumerate(ram.data_nodes):
            g.add_output(f"q{i}", 2 * node)
        sim = EAIGSim(g)

        def step(a, d, w):
            bits = [(a >> 0) & 1, (a >> 1) & 1] + [(d >> i) & 1 for i in range(4)] + [w]
            outs = sim.step(bits)
            return sum(outs[f"q{i}"] << i for i in range(4))

        step(0, 0, 0)
        assert step(0, 0, 0) == 5  # init value at addr 0
        step(2, 9, 1)  # write 9 to addr 2 (read-first: sampled old)
        assert step(2, 0, 0) == 0  # read of addr 2 sampled before write
        assert step(0, 0, 0) == 9  # now the write is visible

    def test_pi_count_mismatch_rejected(self):
        sim = EAIGSim(self._xor_graph())
        with pytest.raises(ValueError):
            sim.step([1])
