"""Shared test utilities: random circuit generation and lockstep comparison.

The equivalence strategy of this repository: every engine (word-level
golden sim, bit-level E-AIG sim, event-driven, compiled full-cycle,
gate-level, and the GEM interpreter itself) exposes
``step(inputs) -> outputs``; tests drive them in lockstep on random and
directed stimuli and require identical output words every cycle.
"""

from __future__ import annotations

import random

from repro.rtl.builder import CircuitBuilder, Value
from repro.rtl.ir import Circuit


def random_circuit(
    seed: int,
    n_ops: int = 60,
    max_width: int = 16,
    with_memory: bool = False,
    with_async_memory: bool = False,
    n_inputs: int = 4,
    n_regs: int = 3,
) -> Circuit:
    """A random synchronous circuit with feedback registers.

    Every generated op's output is a candidate operand for later ops, so
    the result is a connected DAG with registers in feedback loops and all
    word-level op kinds exercised.
    """
    rng = random.Random(seed)
    b = CircuitBuilder(f"rand{seed}")
    widths = [1, 4, 8, max_width]
    pool: list[Value] = []
    for i in range(n_inputs):
        pool.append(b.input(f"in{i}", rng.choice(widths)))
    regs = []
    for i in range(n_regs):
        r = b.reg(f"r{i}", rng.choice(widths), init=rng.randrange(2))
        regs.append(r)
        pool.append(r)

    def pick(width: int | None = None) -> Value:
        if width is None:
            return rng.choice(pool)
        candidates = [v for v in pool if v.width == width]
        if candidates:
            return rng.choice(candidates)
        return rng.choice(pool).resize(width)

    def pick_any_pair() -> tuple[Value, Value]:
        a = pick()
        return a, pick(a.width)

    for _ in range(n_ops):
        kind = rng.randrange(12)
        try:
            if kind == 0:
                a, c = pick_any_pair()
                v = [a & c, a | c, a ^ c][rng.randrange(3)]
            elif kind == 1:
                a, c = pick_any_pair()
                v = [a + c, a - c][rng.randrange(2)]
            elif kind == 2:
                a, c = pick_any_pair()
                if a.width > 12:
                    a, c = a.trunc(8), c.trunc(8)
                v = a * c
            elif kind == 3:
                a, c = pick_any_pair()
                v = [(a == c), (a < c)][rng.randrange(2)].zext(rng.choice(widths))
            elif kind == 4:
                a = pick()
                v = ~a
            elif kind == 5:
                sel = pick(1)
                a, c = pick_any_pair()
                v = b.mux(sel, a, c)
            elif kind == 6:
                a = pick()
                v = [a.reduce_and(), a.reduce_or(), a.reduce_xor()][rng.randrange(3)]
            elif kind == 7:
                a = pick()
                amount = rng.randrange(0, a.width + 2)
                v = (a << amount) if rng.random() < 0.5 else (a >> amount)
            elif kind == 8:
                a = pick()
                c = pick(a.width)
                v = (a << c) if rng.random() < 0.5 else (a >> c)
            elif kind == 9:
                a = pick()
                hi = rng.randrange(a.width)
                lo = rng.randrange(hi + 1)
                v = a[hi:lo]
            elif kind == 10:
                a, c = pick(), pick()
                if a.width + c.width <= 48:
                    v = b.concat(a, c)
                else:
                    v = a
            else:
                a = pick()
                v = a.resize(rng.choice(widths))
            pool.append(v)
        except ValueError:
            continue  # width edge cases; skip this op

    # Registers: connect next states from the pool.
    for r in regs:
        r.next = pick(r.width)

    if with_memory or with_async_memory:
        mem = b.memory("mem", 16, 8, init=[rng.randrange(256) for _ in range(8)])
        addr = pick(4)
        wdata = pick(8)
        wen = pick(1)
        b.write(mem, wen, addr, wdata)
        b.output("mem_s", b.read(mem, addr, sync=True, en=pick(1)))
        if with_async_memory:
            b.output("mem_a", b.read(mem, pick(4), sync=False))

    # Outputs: a handful of pool values (always include register values).
    for i, r in enumerate(regs):
        b.output(f"reg{i}", r)
    for i in range(6):
        b.output(f"o{i}", rng.choice(pool))
    return b.build()


def random_vectors(circuit: Circuit, seed: int, cycles: int) -> list[dict[str, int]]:
    rng = random.Random(seed)
    return [
        {sig.name: rng.getrandbits(sig.width) for sig in circuit.inputs}
        for _ in range(cycles)
    ]


def lockstep(engines: dict[str, object], stimuli: list[dict[str, int]]) -> None:
    """Drive all engines with the same stimuli; assert identical outputs."""
    names = list(engines)
    for cycle, vec in enumerate(stimuli):
        outs = {name: engines[name].step(vec) for name in names}
        reference = outs[names[0]]
        for name in names[1:]:
            assert outs[name] == reference, (
                f"cycle {cycle}: {name} diverged from {names[0]}: "
                f"{outs[name]} != {reference} on inputs {vec}"
            )
