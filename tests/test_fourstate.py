"""4-state simulation: semantics, golden sim, dual-rail transform, and GEM.

The paper lists 4-state simulation as future work; this extension
implements it as a compile-time dual-rail transform (see
repro/fourstate/dualrail.py).  Tests close the loop three ways:

1. the value algebra is *monotone*: resolving X inputs to any 2-state
   value never contradicts a definite output bit (hypothesis-driven);
2. the golden FourStateSim collapses to WordSim when nothing is X;
3. the dual-rail transform run on WordSim — and through the full GEM
   flow — matches FourStateSim bit-for-bit, X-for-X.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fourstate import FourState, FourStateSim, X, to_dual_rail
from repro.fourstate import semantics as fs
from repro.rtl import CircuitBuilder, Netlist, WordSim
from tests.helpers import random_circuit, random_vectors

W = 6
MASK = (1 << W) - 1

words = st.tuples(st.integers(0, MASK), st.integers(0, MASK)).map(
    lambda t: FourState(t[0], t[1], W)
)


def _resolutions(value: FourState, rng: random.Random) -> int:
    """One random 2-state resolution of a 4-state word."""
    return (value.data & ~value.unknown) | (rng.getrandbits(W) & value.unknown)


_BINOPS = {
    "and": (fs.f_and, lambda a, b: a & b),
    "or": (fs.f_or, lambda a, b: a | b),
    "xor": (fs.f_xor, lambda a, b: a ^ b),
    "add": (fs.f_add, lambda a, b: (a + b) & MASK),
    "sub": (fs.f_sub, lambda a, b: (a - b) & MASK),
    "mul": (fs.f_mul, lambda a, b: (a * b) & MASK),
}


class TestSemantics:
    def test_normal_form(self):
        v = FourState(data=0b1111, unknown=0b1010, width=4)
        assert v.data == 0b0101  # data zeroed under X
        assert str(v) == "x1x1"

    def test_known_and_x_constructors(self):
        assert FourState.known(5, 4).value() == 5
        assert X(4).has_x
        with pytest.raises(ValueError):
            X(4).value()

    @pytest.mark.parametrize("name", sorted(_BINOPS))
    @given(a=words, b=words, seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_binop_monotone(self, name, a, b, seed):
        """Any resolution of the inputs must be compatible with the
        4-state output (pessimism may add X, never flip definite bits)."""
        f4, f2 = _BINOPS[name]
        out4 = f4(a, b)
        rng = random.Random(seed)
        for _ in range(4):
            ra, rb = _resolutions(a, rng), _resolutions(b, rng)
            assert out4.compatible_with(f2(ra, rb)), (name, str(a), str(b), str(out4))

    @given(a=words, b=words, sel=st.tuples(st.integers(0, 1), st.integers(0, 1)), seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_mux_monotone(self, a, b, sel, seed):
        s = FourState(sel[0], sel[1], 1)
        out4 = fs.f_mux(s, a, b)
        rng = random.Random(seed)
        for _ in range(4):
            rs = (s.data | (rng.getrandbits(1) & s.unknown)) & 1
            ra, rb = _resolutions(a, rng), _resolutions(b, rng)
            assert out4.compatible_with(ra if rs else rb)

    @given(a=words, seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_reductions_monotone(self, a, seed):
        rng = random.Random(seed)
        for _ in range(4):
            ra = _resolutions(a, rng)
            assert fs.f_redand(a).compatible_with(int(ra == MASK))
            assert fs.f_redor(a).compatible_with(int(ra != 0))
            assert fs.f_redxor(a).compatible_with(bin(ra).count("1") & 1)

    def test_zero_dominates_and(self):
        assert fs.f_and(FourState.known(0, 4), X(4)) == FourState.known(0, 4)

    def test_one_dominates_or(self):
        assert fs.f_or(FourState.known(0xF, 4), X(4)) == FourState.known(0xF, 4)

    def test_eq_decidable_mismatch(self):
        a = FourState(0b0001, 0b1000, 4)  # x001
        b = FourState(0b0010, 0b1000, 4)  # x010
        assert fs.f_eq(a, b) == FourState.known(0, 1)  # low bits differ

    def test_compatible_with(self):
        v = FourState(0b0101, 0b1010, 4)
        assert v.compatible_with(0b0101)
        assert v.compatible_with(0b1111)
        assert not v.compatible_with(0b0100)


class TestFourStateSim:
    def _counter(self, with_reset: bool):
        b = CircuitBuilder()
        en = b.input("en", 1)
        rst = b.input("rst", 1)
        count = b.reg("count", 8, init=0)
        nxt = b.mux(en, count + 1, count)
        if with_reset:
            nxt = b.mux(rst, b.const(0, 8), nxt)
        count.next = nxt
        b.output("q", count)
        return b.build()

    def test_collapses_to_wordsim_when_known(self):
        circuit = random_circuit(70, n_ops=40, with_memory=True)
        word = WordSim(Netlist(circuit))
        four = FourStateSim(Netlist(circuit), x_reset=False, x_memory=False)
        for vec in random_vectors(circuit, 3, 30):
            expect = word.step(vec)
            got = four.step(vec)
            for name, value in got.items():
                assert value.is_fully_known, name
                assert value.value() == expect[name], name

    def test_x_reset_without_reset_logic_stays_x(self):
        sim = FourStateSim(Netlist(self._counter(with_reset=False)))
        for _ in range(5):
            out = sim.step({"en": 1})
        assert out["q"].has_x  # X + 1 is X forever

    def test_reset_sequence_clears_x(self):
        sim = FourStateSim(Netlist(self._counter(with_reset=True)))
        assert sim.step({"rst": 1})["q"].has_x  # pre-reset output is X
        assert sim.step({"en": 1})["q"] == FourState.known(0, 8)
        assert sim.step({"en": 1})["q"] == FourState.known(1, 8)

    def test_unknown_output_bits_metric(self):
        sim = FourStateSim(Netlist(self._counter(with_reset=True)))
        assert sim.unknown_output_bits() == 8
        sim.step({"rst": 1})
        sim.step({})
        assert sim.unknown_output_bits() == 0

    def test_x_input_propagates(self):
        b = CircuitBuilder()
        x = b.input("x", 4)
        b.output("y", x + 1)
        sim = FourStateSim(Netlist(b.build()))
        out = sim.step({"x": FourState(0b0001, 0b0100, 4)})
        assert out["y"].has_x  # arithmetic is word-pessimistic

    def test_memory_poison_on_x_address(self):
        b = CircuitBuilder()
        wen = b.input("wen", 1)
        waddr = b.input("waddr", 2)
        raddr = b.input("raddr", 2)
        data = b.input("data", 4)
        mem = b.memory("m", 4, 4, init=[1, 2, 3, 4])
        b.write(mem, wen, waddr, data)
        b.output("rd", b.read(mem, raddr, sync=False))
        sim = FourStateSim(Netlist(b.build()), x_memory=False)
        assert sim.step({"raddr": 2})["rd"] == FourState.known(3, 4)
        sim.step({"wen": 1, "waddr": FourState(0, 0b11, 2), "data": 9})
        # After a write through an X address, every read is X — forever.
        assert sim.step({"raddr": 2})["rd"].has_x
        assert sim.step({"raddr": 0})["rd"].has_x
        assert sim.x_writes == 1


def _lockstep_dualrail(circuit, stimuli_4state, engine="word"):
    """Run FourStateSim vs the dual-rail transform on a 2-state engine."""
    dual = to_dual_rail(circuit)
    golden = FourStateSim(Netlist(circuit))
    if engine == "word":
        two_state = WordSim(Netlist(dual.circuit))
    else:
        from repro.core.boomerang import BoomerangConfig
        from repro.core.compiler import GemCompiler, GemConfig
        from repro.core.partition import PartitionConfig

        design = GemCompiler(
            GemConfig(
                partition=PartitionConfig(gates_per_partition=2500),
                boomerang=BoomerangConfig(width_log2=13),
            )
        ).compile(dual.circuit)
        two_state = design.simulator()
    for cycle, vec in enumerate(stimuli_4state):
        expect = golden.step(vec)
        got = dual.decode_outputs(two_state.step(dual.encode_inputs(vec)))
        assert got == expect, (cycle, vec, {k: str(v) for k, v in got.items()},
                               {k: str(v) for k, v in expect.items()})


def _x_stimuli(circuit, seed, cycles, x_rate=0.3):
    rng = random.Random(seed)
    out = []
    for _ in range(cycles):
        vec = {}
        for sig in circuit.inputs:
            data = rng.getrandbits(sig.width)
            unknown = rng.getrandbits(sig.width) if rng.random() < x_rate else 0
            vec[sig.name] = FourState(data, unknown, sig.width)
        out.append(vec)
    return out


class TestDualRail:
    @pytest.mark.parametrize("seed", range(5))
    def test_transform_matches_golden_on_wordsim(self, seed):
        circuit = random_circuit(seed + 200, n_ops=45)
        _lockstep_dualrail(circuit, _x_stimuli(circuit, seed, 30))

    @pytest.mark.parametrize("seed", range(3))
    def test_transform_with_memories(self, seed):
        circuit = random_circuit(seed + 230, n_ops=40, with_memory=True, with_async_memory=True)
        _lockstep_dualrail(circuit, _x_stimuli(circuit, seed + 9, 40))

    def test_rail_naming(self):
        b = CircuitBuilder()
        x = b.input("x", 4)
        b.output("y", ~x)
        dual = to_dual_rail(b.build())
        assert dual.input_rails["x"] == ("x", "x__x")
        assert dual.output_rails["y"] == ("y", "y__x")

    def test_known_inputs_known_outputs_when_no_state(self):
        b = CircuitBuilder()
        x = b.input("x", 8)
        y = b.input("y", 8)
        b.output("z", (x + y) ^ (x & y))
        circuit = b.build()
        dual = to_dual_rail(circuit)
        sim = WordSim(Netlist(dual.circuit))
        outs = sim.step(dual.encode_inputs({"x": 7, "y": 9}))
        z = dual.decode_outputs(outs)["z"]
        assert z.is_fully_known
        assert z.value() == ((7 + 9) ^ (7 & 9)) & 0xFF


class TestGemFourState:
    def test_gem_runs_4state_via_dual_rail(self):
        """The headline: the unmodified GEM flow + interpreter performs
        4-state simulation of a stateful design, X-reset included."""
        circuit = random_circuit(777, n_ops=35, n_regs=3)
        _lockstep_dualrail(circuit, _x_stimuli(circuit, 42, 25), engine="gem")


class TestXZEdgeCasePins:
    """Pins for the constant-operand corners of the x-prop algebra.

    Two corners historically disagree between simulators, so the exact
    behavior is pinned at three levels (value algebra, dual-rail on
    WordSim, dual-rail through the fused GEM engine):

    * **OR by constant 1 annihilates**: ``1 | X == 1`` and — because Z
      collapses to X in the dual-rail normal form — ``1 | Z == 1`` too;
      a driven 1 wins regardless of how unknown the other operand is.
    * **XOR by a constant flips polarity only**: the data rail flips
      where the constant has 1s, the unknown mask is preserved verbatim
      (an X stays exactly as X; it never spreads or clears).
    """

    def test_z_collapses_to_x_in_normal_form(self):
        # a Z-like raw encoding (data and unknown both set) is X after
        # normalization; there is no separate Z state downstream
        z_like = FourState(data=0b1011, unknown=0b1111, width=4)
        assert z_like == FourState.all_x(4)
        assert str(z_like) == "xxxx"

    def test_or_const_one_annihilates_x_and_z(self):
        ones = FourState.known(0b1111, 4)
        for raw_data in (0b0000, 0b1111, 0b1010):  # X and Z-like encodings
            v = FourState(raw_data, 0b1111, 4)
            assert fs.f_or(v, ones) == ones
            assert fs.f_or(ones, v) == ones

    def test_or_const_partial_annihilation(self):
        v = FourState(0b0000, 0b1100, 4)  # xx00
        r = fs.f_or(v, FourState.known(0b1010, 4))
        assert str(r) == "1x10"  # only the const's 1-bits annihilate

    def test_xor_const_flips_data_preserves_unknown(self):
        v = FourState(0b0001, 0b1100, 4)  # xx01
        for const in range(16):
            r = fs.f_xor(v, FourState.known(const, 4))
            assert r.unknown == 0b1100
            assert r.data == (0b0001 ^ const) & ~0b1100 & 0xF
        # xor by all-ones is exactly NOT: polarity flip, same x mask
        assert fs.f_xor(v, FourState.known(0xF, 4)) == fs.f_not(v)

    def _const_op_circuit(self):
        b = CircuitBuilder()
        x = b.input("x", 4)
        b.output("or1", x | b.const(0b1010, 4))
        b.output("xor1", x ^ b.const(0b0110, 4))
        return b.build()

    def _expected(self, v: FourState):
        return {
            "or1": fs.f_or(v, FourState.known(0b1010, 4)),
            "xor1": fs.f_xor(v, FourState.known(0b0110, 4)),
        }

    def test_const_pins_on_dual_rail_wordsim(self):
        circuit = self._const_op_circuit()
        dual = to_dual_rail(circuit)
        sim = WordSim(Netlist(dual.circuit))
        for v in (FourState(0, 0b1111, 4), FourState(0b0001, 0b1100, 4),
                  FourState.known(0b0101, 4)):
            got = dual.decode_outputs(sim.step(dual.encode_inputs({"x": v})))
            assert got == self._expected(v), str(v)

    def test_const_pins_on_fused_gem(self):
        from repro.core.compiler import compile_circuit

        design = compile_circuit(self._const_op_circuit(), values=4)
        sim = design.simulator()
        for v in (FourState(0, 0b1111, 4), FourState(0b0001, 0b1100, 4),
                  FourState.known(0b0101, 4)):
            got = sim.step4({"x": v})
            assert got == self._expected(v), str(v)


class TestAddressXPins:
    """Memory-port X-ness is judged on the low ``addr_bits`` only.

    Addresses are full-width nets but a depth-D memory only decodes
    ``ceil(log2 D)`` bits; an X confined to the ignored high bits selects
    the same word either way and must NOT poison the access
    (``_addr_unknown`` in repro/fourstate/sim.py).
    """

    def _mem_circuit(self):
        b = CircuitBuilder()
        addr = b.input("addr", 8)     # wider than the 4 decoded bits
        wdata = b.input("wdata", 8)
        wen = b.input("wen", 1)
        mem = b.memory("m", depth=16, width=8)
        b.write(mem, wen, addr, wdata)
        b.output("rdata", b.read(mem, addr, sync=False))
        return b.build()

    def test_high_bit_x_address_reads_known(self):
        sim = FourStateSim(Netlist(self._mem_circuit()), x_reset=False)
        known = FourState.known
        sim.step({"addr": known(3, 8), "wdata": known(0xAB, 8), "wen": known(1, 1)})
        # X only above the 4 decoded bits: same word selected either way
        hi_x = FourState(3, 0xF0, 8)
        out = sim.step({"addr": hi_x, "wdata": known(0, 8), "wen": known(0, 1)})
        assert out["rdata"] == known(0xAB, 8)
        # X inside the decoded bits does poison the read
        lo_x = FourState(2, 0x01, 8)
        out = sim.step({"addr": lo_x, "wdata": known(0, 8), "wen": known(0, 1)})
        assert out["rdata"].has_x
