"""Signal-level observability: probe taps, waveform rings, activity.

The acceptance bar (docs/OBSERVABILITY.md): a probed fused run must be
bit-identical — per probed net, per cycle, per lane — to the gate-level
reference simulator on corpus designs at batch 1 through 256, the SAIF
toggle counts must match an independent recount of the tap stream, and
tap state must survive checkpoint/rollback unchanged.
"""

from __future__ import annotations

import functools
import io
import os

import pytest

from repro.core.compiler import GemCompiler
from repro.errors import ProbeError
from repro.fuzz.corpus import _coerce_stimuli, load_repro
from repro.fuzz.oracle import compile_profile
from repro.obs.activity import (
    ActivityAccumulator,
    format_hot_nets,
    hot_nets,
    read_saif,
    write_saif,
)
from repro.obs.probe import (
    ProbeTap,
    SimrefProbe,
    WaveRing,
    build_probe_plan,
    dump_divergence_waves,
    list_nets,
    probe_catalog,
)
from repro.simref.gate_sim import GateLevelSim
from repro.waveform.vcd import VcdReader

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")

#: three structurally different corpus designs pin the bit-identity bar
IDENTITY_DESIGNS = [
    "fuzz_mixed_746926247",
    "fuzz_wide_513846579",
    "fuzz_deep_772151367",
]


@functools.lru_cache(maxsize=None)
def corpus_design(name: str):
    repro = load_repro(os.path.join(CORPUS, f"{name}.gemrepro"))
    compiled = GemCompiler(compile_profile("small")).compile(repro.spec.build())
    stimuli = _coerce_stimuli(repro.spec, repro.stimuli)
    return compiled, stimuli


def run_tapped(compiled, stimuli, *, batch=1, mode="fused", nets=None, capacity=None):
    """Run ``stimuli`` with a full-window ring + activity tap attached."""
    plan = build_probe_plan(compiled, nets)
    ring = WaveRing(plan, capacity=capacity or max(len(stimuli), 1))
    acc = ActivityAccumulator(plan)
    tap = ProbeTap(plan, [ring, acc])
    sim = compiled.simulator(batch=batch, mode=mode)
    tap.attach(sim)
    for vec in stimuli:
        sim.step(vec)
    return tap, ring, acc


class TestCatalog:
    def test_catalog_covers_all_kinds(self):
        compiled, _ = corpus_design(IDENTITY_DESIGNS[0])
        nets = probe_catalog(compiled)
        assert nets
        assert {net.kind for net in nets} <= {"input", "register", "output"}
        names = [net.name for net in nets]
        assert len(names) == len(set(names)), "catalog names must be unique"
        assert all(net.width == len(net.gidx) > 0 for net in nets)

    def test_group_selectors_and_globs(self):
        compiled, _ = corpus_design(IDENTITY_DESIGNS[0])
        everything = build_probe_plan(compiled)
        regs = build_probe_plan(compiled, "registers")
        assert regs.nets
        assert all(net.kind == "register" for net in regs.nets)
        first = everything.nets[0].name
        one = build_probe_plan(compiled, first)
        assert [net.name for net in one.nets] == [first]

    def test_unmatched_pattern_raises(self):
        compiled, _ = corpus_design(IDENTITY_DESIGNS[0])
        with pytest.raises(ProbeError, match="no_such_net"):
            build_probe_plan(compiled, "no_such_net")

    def test_list_nets_rows(self):
        compiled, _ = corpus_design(IDENTITY_DESIGNS[0])
        rows = list_nets(compiled)
        assert rows and set(rows[0]) == {"net", "kind", "width"}

    def test_attach_rejects_wrong_program(self):
        a, _ = corpus_design(IDENTITY_DESIGNS[0])
        b, _ = corpus_design(IDENTITY_DESIGNS[1])
        plan = build_probe_plan(a)
        with pytest.raises(ProbeError, match="probe plan"):
            ProbeTap(plan).attach(b.simulator())


class TestBitIdentity:
    """The tentpole bar: engine taps == gate-level reference, every lane."""

    @pytest.mark.parametrize("name", IDENTITY_DESIGNS)
    @pytest.mark.parametrize("batch", [1, 64, 256])
    def test_fused_tap_matches_simref(self, name, batch):
        compiled, stimuli = corpus_design(name)
        stimuli = stimuli[:12]
        _, ring, _ = run_tapped(compiled, stimuli, batch=batch)
        sim = GateLevelSim(compiled.synth)
        ref = SimrefProbe(ring.plan).install(sim)
        for vec in stimuli:
            sim.step(vec)
        assert len(ref.samples) == len(stimuli)
        for lane in sorted({0, batch // 2, batch - 1}):
            samples = ring.lane_samples(lane)
            assert len(samples) == len(ref.samples)
            for (cycle, values), expect in zip(samples, ref.samples):
                assert values == expect, f"lane {lane} diverges at cycle {cycle}"

    def test_fused_and_legacy_taps_agree(self):
        compiled, stimuli = corpus_design(IDENTITY_DESIGNS[0])
        stimuli = stimuli[:10]
        _, fused, _ = run_tapped(compiled, stimuli, batch=16, mode="fused")
        _, legacy, _ = run_tapped(compiled, stimuli, batch=16, mode="legacy")
        assert fused.lane_samples(5) == legacy.lane_samples(5)


class TestWaveRing:
    def test_drop_accounting(self):
        compiled, stimuli = corpus_design(IDENTITY_DESIGNS[0])
        stimuli = stimuli[:10]
        _, ring, _ = run_tapped(compiled, stimuli, capacity=4)
        assert len(ring) == 4
        assert ring.dropped == 6
        assert ring.first_cycle == 6

    def test_lane_out_of_range(self):
        compiled, stimuli = corpus_design(IDENTITY_DESIGNS[0])
        _, ring, _ = run_tapped(compiled, stimuli[:4], batch=8)
        with pytest.raises(ProbeError, match="lane 8"):
            ring.lane_samples(8)

    def test_dump_vcd_roundtrip(self, tmp_path):
        """The dumped VCD reads back exactly as the lane's tap stream."""
        compiled, stimuli = corpus_design(IDENTITY_DESIGNS[0])
        stimuli = stimuli[:10]
        _, ring, _ = run_tapped(compiled, stimuli, batch=8)
        path = str(tmp_path / "lane3.vcd")
        summary = ring.dump_vcd(path, lane=3)
        assert summary["cycles"] == 10
        assert summary["dropped_windows"] == 0
        with open(path) as f:
            cycles = VcdReader(f).cycles()
        assert cycles == [values for _, values in ring.lane_samples(3)]

    def test_dump_vcd_to_stream(self):
        compiled, stimuli = corpus_design(IDENTITY_DESIGNS[0])
        _, ring, _ = run_tapped(compiled, stimuli[:5])
        buf = io.StringIO()
        summary = ring.dump_vcd(buf, lane=0)
        assert summary["cycles"] == 5
        assert "$dumpvars" in buf.getvalue()


class TestActivity:
    def test_counts_match_independent_recount(self):
        """SAIF counters must equal a from-scratch recount of the tap
        stream through the (independent) integer lane-sample path."""
        compiled, stimuli = corpus_design(IDENTITY_DESIGNS[0])
        stimuli = stimuli[:12]
        batch = 8
        _, ring, acc = run_tapped(compiled, stimuli, batch=batch)
        per_net = acc.per_net()
        for net in ring.plan.nets:
            t1 = tc = 0
            prev = [None] * batch
            for lane in range(batch):
                for _, values in ring.lane_samples(lane):
                    value = values[net.name]
                    t1 += bin(value).count("1")
                    if prev[lane] is not None:
                        tc += bin(value ^ prev[lane]).count("1")
                    prev[lane] = value
            t0 = len(stimuli) * batch * net.width - t1
            counts = per_net[net.name]
            assert (counts["T0"], counts["T1"], counts["TC"]) == (t0, t1, tc), net.name

    def test_t0_t1_partition_invariant(self):
        compiled, stimuli = corpus_design(IDENTITY_DESIGNS[1])
        _, _, acc = run_tapped(compiled, stimuli[:9], batch=64)
        total = acc.cycles * acc.batch
        for name, counts in acc.per_bit().items():
            t0, t1, tc = counts
            assert t0 + t1 == total, name
            assert tc <= (acc.cycles - 1) * acc.batch, name

    def test_saif_roundtrip(self, tmp_path):
        compiled, stimuli = corpus_design(IDENTITY_DESIGNS[0])
        _, _, acc = run_tapped(compiled, stimuli[:10], batch=4)
        path = str(tmp_path / "act.saif")
        write_saif(path, acc, design="corpus")
        doc = read_saif(path)  # read_saif validates the count invariants
        assert doc["duration"] == 10
        assert doc["lanes"] == 4
        assert len(doc["nets"]) == acc.plan.num_bits
        per_bit = acc.per_bit()
        for name, counts in doc["nets"].items():
            assert (counts["T0"], counts["T1"], counts["TC"]) == per_bit[name]

    def test_hot_nets_table(self):
        compiled, stimuli = corpus_design(IDENTITY_DESIGNS[0])
        _, _, acc = run_tapped(compiled, stimuli[:10])
        rows = hot_nets(acc, top=3)
        assert len(rows) <= 3
        toggles = [row["toggles"] for row in rows]
        assert toggles == sorted(toggles, reverse=True)
        table = format_hot_nets(rows)
        assert rows[0]["net"] in table
        assert format_hot_nets([]).strip() == "(no activity data)"


class TestRewind:
    def test_tap_snapshot_restore(self):
        """Rolling the tap back and replaying reproduces the exact stream
        an undisturbed run would have produced."""
        from repro.runtime.checkpoint import restore, snapshot

        compiled, stimuli = corpus_design(IDENTITY_DESIGNS[0])
        stimuli = stimuli[:10]
        plan = build_probe_plan(compiled)
        ring = WaveRing(plan, capacity=16)
        acc = ActivityAccumulator(plan)
        tap = ProbeTap(plan, [ring, acc])
        sim = compiled.simulator(batch=4)
        tap.attach(sim)
        engine_snap = None
        tap_snap = None
        for cycle, vec in enumerate(stimuli):
            if cycle == 5:
                engine_snap = snapshot(sim)
                tap_snap = tap.snapshot()
            sim.step(vec)
        undisturbed = (ring.lane_samples(1), acc.per_net())
        # rewind to cycle 5 and replay the tail
        restore(sim, engine_snap)
        tap.restore(tap_snap)
        for vec in stimuli[5:]:
            sim.step(vec)
        assert tap.cycle == 10
        assert (ring.lane_samples(1), acc.per_net()) == undisturbed

    def test_supervised_run_matches_plain_tap(self, tmp_path):
        """``run_resilient(probe=...)`` wires the tap through checkpoints
        and produces the same stream as an unsupervised tapped run."""
        from repro.harness.runner import compile_design, design_workloads, run_resilient

        design = compile_design("rocketchip")
        stimuli = next(iter(design_workloads("rocketchip").values())).stimuli[:12]
        plan = build_probe_plan(design, "outputs")
        ring = WaveRing(plan, capacity=16)
        acc = ActivityAccumulator(plan)
        tap = ProbeTap(plan, [ring, acc])
        result = run_resilient(
            "rocketchip",
            max_cycles=12,
            checkpoint_every=4,
            checkpoint_dir=str(tmp_path),
            probe=tap,
        )
        assert not result.degraded
        assert tap.captured == 12 and acc.cycles == 12
        _, plain_ring, _ = run_tapped(design, stimuli, nets="outputs")
        assert ring.lane_samples(0) == plain_ring.lane_samples(0)


class TestDivergenceDump:
    def test_window_around_cycle(self, tmp_path):
        compiled, stimuli = corpus_design(IDENTITY_DESIGNS[0])
        path = str(tmp_path / "div.vcd")
        summary = dump_divergence_waves(
            compiled, stimuli[:12], 6, path, before=3, after=2
        )
        assert summary["path"] == path
        assert summary["divergence_cycle"] == 6
        assert summary["first_cycle"] == 3
        assert summary["cycles"] == 6  # cycles 3..8 inclusive
        with open(path) as f:
            assert len(VcdReader(f).cycles()) == 6

    def test_fuzz_divergence_dumps_waves(self, tmp_path):
        """A caught oracle divergence must leave a readable VCD window
        behind (the ``gem-fuzz run --wave-dir`` path)."""
        from repro.fuzz.corpus import _dump_divergence_waves
        from repro.fuzz.designgen import generate_design, random_stimuli
        from repro.fuzz.oracle import OracleConfig, run_oracle

        spec = generate_design(0, "mixed").spec
        stimuli = random_stimuli(spec, 0, 16)
        for bit in range(48):
            config = OracleConfig(
                batches=(1, 16), inject={"kind": "fold", "index": 0, "bit": bit}
            )
            result = run_oracle(spec, stimuli, config)
            if not result.ok:
                break
        else:
            pytest.fail("no observable fold bit in 48 tries")
        path = str(tmp_path / "waves" / "div.vcd")
        _dump_divergence_waves(spec, stimuli, result.divergence, config, path)
        with open(path) as f:
            assert VcdReader(f).cycles()


class TestCli:
    def test_gem_probe_list_json(self, capsys):
        import json

        from repro.harness.cli import main_probe

        assert main_probe(["list", "rocketchip", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows and {"net", "kind", "width"} <= set(rows[0])

    def test_gem_probe_bad_net_is_usage_error(self, capsys):
        from repro.harness.cli import main_probe

        assert main_probe(["list", "rocketchip", "--nets", "nope*"]) == 2
        assert "probe error" in capsys.readouterr().out

    def test_gem_run_probe_outputs(self, tmp_path, capsys):
        import json

        from repro.harness.cli import main_run

        vcd = str(tmp_path / "run.vcd")
        saif = str(tmp_path / "run.saif")
        report = str(tmp_path / "run.json")
        rc = main_run([
            "rocketchip", "--max-cycles", "10", "--batch", "4", "--lane", "2",
            "--probe", "outputs", "--vcd-out", vcd, "--saif-out", saif,
            "--report-out", report,
        ])
        assert rc == 0
        with open(vcd) as f:
            assert len(VcdReader(f).cycles()) == 10
        assert read_saif(saif)["duration"] == 10
        with open(report) as f:
            activity = json.load(f)["extras"]["activity"]
        assert activity["cycles"] == 10 and activity["lanes"] == 4
        assert activity["hot_nets"]

    def test_gem_run_lane_out_of_range(self, capsys):
        from repro.harness.cli import main_run

        assert main_run(["rocketchip", "--probe", "--lane", "5"]) == 2
        assert "out of range" in capsys.readouterr().out

    def test_perf_show_handles_reports_without_activity(self):
        from repro.obs.report import build_run_report, format_report

        report = build_run_report(
            design="x", workload="w", batch=1, engine_mode="fused",
            cycles=4, elapsed_s=0.1, registry=None,
        )
        assert "hot nets" not in format_report(report)
