"""Depth-oriented optimization (repro.core.depth_opt)."""

import pytest

from repro.core.depth_opt import compact, depth_report, optimize, rebuild
from repro.core.eaig import EAIG, NodeKind
from repro.core.synthesis import synthesize
from repro.rtl import CircuitBuilder, Netlist, WordSim
from tests.helpers import lockstep, random_circuit, random_vectors


class TestDCE:
    def test_dead_nodes_removed(self):
        g = EAIG()
        a, b = g.add_pi(), g.add_pi()
        live = g.add_and(a, b)
        g.add_and(a, g.add_and(a, lit_not_b := b ^ 1))  # dead cone
        g.add_output("y", live)
        new = compact(g)
        assert new.num_gates() == 1

    def test_ram_port_logic_is_live(self):
        g = EAIG()
        ram = g.add_ram("m", 2, 2)
        a, b = g.add_pi(), g.add_pi()
        ram.raddr = [g.add_and(a, b), a]
        ram.waddr = [a, b]
        ram.wdata = [a, b]
        ram.wen = g.add_and(a, b)
        ram.ren = 1
        g.add_output("q", 2 * ram.data_nodes[0])
        new = compact(g)
        assert new.num_gates() == 1  # the shared AND survives once
        assert len(new.rams) == 1
        assert new.rams[0].init == ram.init


class TestBalance:
    def test_chain_becomes_tree(self):
        # A linear AND chain of 16 inputs has depth 15; balance -> depth 4.
        g = EAIG()
        acc = g.add_pi()
        for _ in range(15):
            acc = g.add_and(acc, g.add_pi())
        g.add_output("y", acc)
        assert g.depth() == 15
        new, _ = rebuild(g, balance=True)
        assert new.depth() == 4

    def test_balance_respects_fanout_boundaries(self):
        # A node with external fanout must still be computed (not absorbed).
        g = EAIG()
        a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
        mid = g.add_and(a, b)
        top = g.add_and(mid, c)
        g.add_output("mid", mid)
        g.add_output("top", top)
        new, lit_map = rebuild(g, balance=True)
        assert new.num_gates() == 2
        assert dict(new.outputs)["mid"] != dict(new.outputs)["top"]


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_optimize_preserves_behaviour(self, seed):
        circuit = random_circuit(seed + 10, n_ops=45, with_memory=True)
        word = WordSim(Netlist(circuit))
        optimized = optimize(synthesize(circuit)).make_sim()
        lockstep({"word": word, "opt": optimized}, random_vectors(circuit, seed, 30))

    def test_optimize_never_increases_gates_or_depth(self):
        for seed in range(4):
            circuit = random_circuit(seed + 30, n_ops=50)
            base = synthesize(circuit)
            opt = optimize(base)
            assert opt.eaig.num_gates() <= base.eaig.num_gates()
            assert opt.eaig.depth() <= base.eaig.depth()

    def test_idempotent(self):
        circuit = random_circuit(77, n_ops=40)
        once = optimize(synthesize(circuit))
        twice = optimize(once)
        assert twice.eaig.num_gates() == once.eaig.num_gates()
        assert twice.eaig.depth() == once.eaig.depth()


class TestReport:
    def test_depth_report_fields(self):
        circuit = random_circuit(5, n_ops=40)
        report = depth_report(synthesize(circuit).eaig)
        assert report["gates"] == sum(report["histogram"].values())
        assert 0.0 <= report["frontier_fraction"] <= 1.0
        assert report["depth"] == max(report["histogram"])

    def test_long_tail_observation(self):
        """Observation 4 of the paper: most gates in the frontier levels."""
        circuit = random_circuit(123, n_ops=120)
        report = depth_report(synthesize(circuit).eaig)
        if report["depth"] >= 8:
            assert report["frontier_fraction"] > 0.25
