"""Hypergraph container and objectives (repro.partition.hypergraph)."""

import pytest

from repro.partition.hypergraph import Hypergraph


def _triangle() -> Hypergraph:
    g = Hypergraph(vertex_weight=[1, 2, 3])
    g.add_net([0, 1], weight=5)
    g.add_net([1, 2], weight=1)
    g.add_net([0, 1, 2], weight=2)
    return g


class TestConstruction:
    def test_counts(self):
        g = _triangle()
        assert g.num_vertices == 3
        assert g.num_nets == 3
        assert g.total_weight == 6

    def test_single_pin_nets_dropped(self):
        g = Hypergraph(vertex_weight=[1, 1])
        g.add_net([0])
        g.add_net([1, 1])  # dedupes to single pin
        assert g.num_nets == 0

    def test_pin_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Hypergraph(vertex_weight=[1], nets=[(0, 5)], net_weight=[1])

    def test_duplicate_pins_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Hypergraph(vertex_weight=[1, 1], nets=[(0, 0)], net_weight=[1])

    def test_mismatched_weights(self):
        with pytest.raises(ValueError, match="equal length"):
            Hypergraph(vertex_weight=[1], nets=[(0,)], net_weight=[])


class TestObjectives:
    def test_cut_weight(self):
        g = _triangle()
        assert g.cut_weight([0, 0, 0]) == 0
        assert g.cut_weight([0, 0, 1]) == 1 + 2
        assert g.cut_weight([0, 1, 1]) == 5 + 2

    def test_km1_equals_cut_for_two_parts(self):
        g = _triangle()
        for parts in ([0, 0, 1], [0, 1, 0], [0, 1, 1]):
            assert g.connectivity_minus_one(parts) == g.cut_weight(parts)

    def test_km1_counts_extra_parts(self):
        g = _triangle()
        # Net {0,1,2} spans 3 parts -> contributes 2 * weight.
        assert g.connectivity_minus_one([0, 1, 2]) == 5 + 1 + 2 * 2

    def test_part_weights(self):
        g = _triangle()
        assert g.part_weights([0, 1, 1], 2) == [1, 5]

    def test_incidence(self):
        g = _triangle()
        inc = g.incidence()
        assert inc[1] == [0, 1, 2]
        assert inc[0] == [0, 2]
