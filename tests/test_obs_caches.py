"""Decode/fusion cache behaviour under real sharing patterns (satellite).

Extends the basic cache tests in test_fused_engine with the scenarios
the observability PR cares about: supervisor primary+shadow sharing in
both engine modes, eviction past the 8-entry LRU bound, cross-mode
(fused + legacy) sharing of one decode/fusion entry, and the mirroring
of cache traffic into the metrics registry.
"""

import pytest

from repro.core.fused import (
    _FUSE_CACHE_MAX,
    clear_fusion_cache,
    fusion_cache_stats,
)
from repro.core.interpreter import (
    _DECODE_CACHE_MAX,
    clear_decode_cache,
    decode_cache_stats,
)
from repro.obs.metrics import REGISTRY
from repro.runtime.supervisor import Supervisor
from tests.helpers import random_circuit, random_vectors
from tests.test_fused_engine import _compile_small


@pytest.fixture(autouse=True)
def _clean_caches():
    clear_decode_cache()
    clear_fusion_cache()
    REGISTRY.clear()
    yield
    clear_decode_cache()
    clear_fusion_cache()
    REGISTRY.clear()


@pytest.fixture(scope="module")
def design():
    return _compile_small(random_circuit(711, n_ops=40, n_regs=3, with_memory=True))


class TestSupervisorSharing:
    @pytest.mark.parametrize("engine_mode", ["fused", "legacy"])
    def test_primary_and_shadow_share_one_entry(self, design, engine_mode):
        """Primary + redundant shadow decode and fuse exactly once in
        either engine mode (legacy still fuses for the work counters)."""
        circuit = random_circuit(711, n_ops=40, n_regs=3, with_memory=True)
        stimuli = random_vectors(circuit, seed=7, cycles=6)
        result = Supervisor(
            design, shadow="redundant", batch=2, engine_mode=engine_mode
        ).run(stimuli)
        assert result.cycles == len(stimuli)
        assert decode_cache_stats() == {"misses": 1, "hits": 1}
        assert fusion_cache_stats() == {"misses": 1, "hits": 1}

    def test_consecutive_supervised_runs_hit(self, design):
        circuit = random_circuit(711, n_ops=40, n_regs=3, with_memory=True)
        stimuli = random_vectors(circuit, seed=8, cycles=4)
        for _ in range(2):
            Supervisor(design, shadow="redundant", batch=2).run(stimuli)
        stats = decode_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 3


class TestEviction:
    def test_lru_eviction_past_capacity(self, design):
        """Distinct batch sizes are distinct keys; pushing past the
        8-entry bound evicts the oldest and re-keying it re-misses."""
        assert _DECODE_CACHE_MAX == _FUSE_CACHE_MAX == 8
        for batch in range(1, _DECODE_CACHE_MAX + 2):  # 9 distinct keys
            design.simulator(batch=batch)
        stats = decode_cache_stats()
        assert stats["misses"] == _DECODE_CACHE_MAX + 1
        assert stats["hits"] == 0
        # batch=1 was the oldest entry: it must have been evicted.
        design.simulator(batch=1)
        assert decode_cache_stats()["misses"] == _DECODE_CACHE_MAX + 2
        # The newest key is still resident.
        design.simulator(batch=_DECODE_CACHE_MAX + 1)
        assert decode_cache_stats()["hits"] == 1
        assert fusion_cache_stats()["misses"] == _DECODE_CACHE_MAX + 2
        snap = REGISTRY.snapshot()
        assert snap['gem_cache_evictions_total{cache="decode"}'] >= 2
        assert snap['gem_cache_evictions_total{cache="fusion"}'] >= 2


class TestCrossMode:
    def test_fused_and_legacy_share_decode_and_fusion(self, design):
        """Legacy mode reuses the same decode and fusion entries (fusion
        runs in legacy mode too, for the work counters) and both modes
        produce identical outputs from the shared tables."""
        circuit = random_circuit(711, n_ops=40, n_regs=3, with_memory=True)
        stimuli = random_vectors(circuit, seed=11, cycles=8)
        fused_sim = design.simulator(batch=4, mode="fused")
        legacy_sim = design.simulator(batch=4, mode="legacy")
        assert decode_cache_stats() == {"misses": 1, "hits": 1}
        assert fusion_cache_stats() == {"misses": 1, "hits": 1}
        for vec in stimuli:
            assert fused_sim.step(vec) == legacy_sim.step(vec)


class TestRegistryMirroring:
    def test_cache_traffic_lands_in_registry(self, design):
        design.simulator(batch=2)
        design.simulator(batch=2)
        snap = REGISTRY.snapshot()
        assert snap["gem_decode_cache_misses_total"] == 1.0
        assert snap["gem_decode_cache_hits_total"] == 1.0
        assert snap["gem_fusion_cache_misses_total"] == 1.0
        assert snap["gem_fusion_cache_hits_total"] == 1.0
        assert snap["gem_decode_cache_misses_total"] == decode_cache_stats()[
            "misses"
        ]

    def test_registry_reset_does_not_break_counting(self, design):
        design.simulator(batch=2)
        REGISTRY.reset()
        design.simulator(batch=2)
        assert REGISTRY.snapshot()["gem_decode_cache_hits_total"] == 1.0

    def test_registry_clear_does_not_break_counting(self, design):
        """Call sites fetch metrics get-or-create, so clear() between
        runs (the test idiom) never orphans a counter."""
        design.simulator(batch=2)
        REGISTRY.clear()
        design.simulator(batch=2)
        assert REGISTRY.snapshot()["gem_decode_cache_hits_total"] == 1.0
