"""Packed-lane execution engine (repro.core.engine + lane-batched
interpreter): helper round trips, lane equivalence against sequential
runs, RAM read-first semantics, checkpoint v2/v1 behavior, batched cosim.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boomerang import BoomerangConfig
from repro.core.compiler import GemCompiler, GemConfig
from repro.core.engine import (
    WORD_LANES,
    ExecutionEngine,
    bits_to_int,
    int_to_bits,
    weights,
)
from repro.core.partition import PartitionConfig
from repro.errors import CheckpointError
from repro.harness.cosim import cosim_lanes
from repro.rtl import Netlist, WordSim
from repro.rtl.builder import CircuitBuilder
from tests.helpers import random_circuit, random_vectors


def _compile(circuit):
    return GemCompiler(
        GemConfig(
            partition=PartitionConfig(gates_per_partition=400),
            boomerang=BoomerangConfig(width_log2=10),
        )
    ).compile(circuit)


def lane_vectors(circuit, batch: int, cycles: int, seed: int = 0):
    """``batch`` independent stimulus streams, one per lane."""
    return [random_vectors(circuit, seed + lane, cycles) for lane in range(batch)]


class TestEngineHelpers:
    @given(st.integers(min_value=0, max_value=(1 << 96) - 1), st.integers(1, 96))
    @settings(max_examples=60, deadline=None)
    def test_int_bits_roundtrip(self, value, nbits):
        value &= (1 << nbits) - 1
        assert bits_to_int(int_to_bits(value, nbits)) == value

    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 20) - 1), min_size=1, max_size=8),
        st.integers(1, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_pack_lanes_roundtrip(self, values, lane):
        eng = ExecutionEngine(len(values))
        words = eng.pack_lanes(values, 20)
        for i, value in enumerate(values):
            assert eng.lane_int(words, i) == value

    @given(
        st.integers(1, WORD_LANES),
        st.integers(1, 70),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_pack_lanes_matches_loop_reference(self, batch, nbits, seed):
        """The vectorized unpackbits/shift-reduce path is bit-identical
        to the per-lane loop it replaced, at every batch and width."""
        import random

        rng = random.Random(seed)
        values = [rng.getrandbits(nbits + 3) for _ in range(batch)]
        eng = ExecutionEngine(batch)
        reference = np.zeros(nbits, dtype=np.uint64)
        for lane, value in enumerate(values):  # the old per-lane loop
            bits = int_to_bits(value & ((1 << nbits) - 1), nbits)
            reference |= np.where(bits, np.uint64(1), np.uint64(0)) << np.uint64(lane)
        assert (eng.pack_lanes(values, nbits) == reference).all()

    def test_batch_bounds(self):
        with pytest.raises(ValueError):
            ExecutionEngine(0)
        with pytest.raises(ValueError):
            ExecutionEngine(WORD_LANES + 1)

    def test_lane_mask_covers_active_lanes_only(self):
        assert ExecutionEngine(1).lane_mask == np.uint64(1)
        assert ExecutionEngine(3).lane_mask == np.uint64(0b111)
        assert ExecutionEngine(64).lane_mask == np.uint64(0xFFFFFFFFFFFFFFFF)

    def test_const_mask_broadcasts_to_active_lanes(self):
        eng = ExecutionEngine(5)
        masks = eng.const_mask(np.array([True, False, True]))
        assert masks.tolist() == [0b11111, 0, 0b11111]

    def test_lane_values_roundtrip(self):
        eng = ExecutionEngine(4)
        values = np.array([3, 14, 0, 9], dtype=np.uint64)
        words = eng.pack_lane_values(values, 4)
        assert (eng.lane_values(words, weights(4)) == values).all()

    def test_merge_respects_lane_mask(self):
        dst = np.array([0b1010], dtype=np.uint64)
        gidx = np.array([0])
        ExecutionEngine.merge(dst, gidx, np.array([0b0101], dtype=np.uint64), np.uint64(0b0011))
        assert dst[0] == 0b1001  # low two lanes replaced, high two kept
        ExecutionEngine.merge(dst, gidx, np.array([0b1111], dtype=np.uint64), None)
        assert dst[0] == 0b1111  # no mask: plain overwrite


@pytest.fixture(scope="module")
def memory_design():
    circuit = random_circuit(401, n_ops=50, n_regs=3, with_memory=True)
    return circuit, _compile(circuit)


class TestLaneEquivalence:
    """Tentpole acceptance: a batch-B run is bit-identical to B
    independent sequential runs, on a design with FFs and RAMs."""

    @pytest.mark.parametrize("batch", [2, 7, 16])
    def test_batched_matches_sequential(self, memory_design, batch):
        circuit, design = memory_design
        streams = lane_vectors(circuit, batch, 30, seed=50)
        sequential = [design.simulator().run(streams[lane]) for lane in range(batch)]

        sim = design.simulator(batch=batch)
        for cycle in range(30):
            outs = sim.step_lanes([streams[lane][cycle] for lane in range(batch)])
            for lane in range(batch):
                assert outs[lane] == sequential[lane][cycle], (
                    f"lane {lane} diverged at cycle {cycle}"
                )

    def test_property_random_designs(self):
        """Seeded-random sweep over fresh designs (FFs + RAM each time)."""
        for seed in (402, 403):
            circuit = random_circuit(seed, n_ops=40, n_regs=2, with_memory=True)
            design = _compile(circuit)
            batch = 3 + (seed % 4)
            streams = lane_vectors(circuit, batch, 20, seed=seed)
            sequential = [design.simulator().run(s) for s in streams]
            batched = design.simulator(batch=batch).run_lanes(
                [[s[c] for s in streams] for c in range(20)]
            )
            for lane in range(batch):
                assert [row[lane] for row in batched] == sequential[lane]

    def test_broadcast_lanes_identical(self, memory_design):
        circuit, design = memory_design
        stimuli = random_vectors(circuit, 60, 25)
        golden = design.simulator().run(stimuli)
        sim = design.simulator(batch=8)
        for cycle, vec in enumerate(stimuli):
            outs = sim.step_lanes(vec)  # one mapping: broadcast
            assert all(out == golden[cycle] for out in outs)

    def test_batch1_step_bit_identical(self, memory_design):
        """The single-instance API is verbatim the batch=1 case."""
        circuit, design = memory_design
        stimuli = random_vectors(circuit, 61, 25)
        assert design.simulator(batch=1).run(stimuli) == design.simulator().run(stimuli)

    def test_inactive_lanes_stay_zero(self, memory_design):
        """The engine's layout invariant: lanes >= batch never go live."""
        circuit, design = memory_design
        sim = design.simulator(batch=3)
        streams = lane_vectors(circuit, 3, 20, seed=70)
        sim.run_lanes([[s[c] for s in streams] for c in range(20)])
        stale = ~np.uint64(0b111)
        assert not (sim.global_state & stale).any()

    def test_counters_report_lanes(self, memory_design):
        circuit, design = memory_design
        sim = design.simulator(batch=16)
        sim.run(random_vectors(circuit, 62, 5))
        assert sim.counters.lanes == 16
        assert sim.counters.lane_cycles == 5 * 16
        per_cycle = sim.counters.per_cycle()
        per_lane = sim.counters.per_lane_cycle()
        assert per_lane["fold_steps"] == pytest.approx(per_cycle["fold_steps"] / 16)


class TestBatchedCheckpoint:
    def test_checkpoint_resume_mid_batch(self, memory_design, tmp_path):
        """Satellite acceptance: checkpoint/resume mid-run of a batched
        simulation stays bit-identical to uninterrupted sequential runs."""
        from repro.runtime.checkpoint import load_checkpoint, restore, save_checkpoint, snapshot

        circuit, design = memory_design
        batch, cycles, cut = 5, 30, 17
        streams = lane_vectors(circuit, batch, cycles, seed=80)
        per_cycle = [[s[c] for s in streams] for c in range(cycles)]
        sequential = [design.simulator().run(s) for s in streams]

        sim = design.simulator(batch=batch)
        sim.run_lanes(per_cycle[:cut])
        path = str(tmp_path / "mid.gemk")
        save_checkpoint(snapshot(sim), path)
        del sim

        resumed = restore(design.simulator(batch=batch), load_checkpoint(path))
        assert resumed.cycle == cut
        tail = resumed.run_lanes(per_cycle[cut:])
        for lane in range(batch):
            assert [row[lane] for row in tail] == sequential[lane][cut:]

    def test_restore_rejects_batch_mismatch(self, memory_design):
        from repro.runtime.checkpoint import restore, snapshot

        circuit, design = memory_design
        sim = design.simulator(batch=4)
        sim.run(random_vectors(circuit, 81, 5))
        with pytest.raises(CheckpointError, match="lanes"):
            restore(design.simulator(batch=2), snapshot(sim))

    def test_v2_words_carry_batch(self, memory_design):
        from repro.runtime.checkpoint import checkpoint_from_words, checkpoint_to_words, snapshot

        circuit, design = memory_design
        sim = design.simulator(batch=6)
        streams = lane_vectors(circuit, 6, 12, seed=82)
        sim.run_lanes([[s[c] for s in streams] for c in range(12)])
        back = checkpoint_from_words(checkpoint_to_words(snapshot(sim)))
        assert back.batch == 6
        assert back.counters.lanes == 6
        assert (back.global_state == sim.global_state).all()
        for a, b in zip(back.ram_arrays, sim.ram_arrays):
            assert a.shape == b.shape == (6, b.shape[1])
            assert (a == b).all()

    def test_v1_checkpoint_still_loads(self, memory_design):
        """Acceptance: pre-lane (v1, bit-packed) files hydrate as batch=1
        and resume bit-identically."""
        from repro.core.integrity import seal
        from repro.runtime.checkpoint import (
            _COUNTER_FIELDS,
            CKPT_MAGIC,
            _pack_bits,
            _u64_pair,
            checkpoint_from_words,
            restore,
        )

        circuit, design = memory_design
        stimuli = random_vectors(circuit, 83, 30)
        golden = design.simulator().run(stimuli)
        sim = design.simulator()
        for vec in stimuli[:14]:
            sim.step(vec)

        # Serialize sim's state exactly as the seed's v1 writer did:
        # bit-packed global state, flat single-image RAM sections.
        header = np.array(
            [
                CKPT_MAGIC,
                1,
                *_u64_pair(sim.cycle),
                sim.program.digest() & 0xFFFFFFFF,
                sim.global_state.size,
                len(sim.ram_arrays),
                0,
            ],
            dtype=np.uint32,
        )
        counter_words = []
        for name in _COUNTER_FIELDS:
            counter_words.extend(_u64_pair(getattr(sim.counters, name)))
        state_sec = _pack_bits(sim.global_state.astype(bool))
        ram_words = []
        for arr in sim.ram_arrays:
            flat = arr.reshape(-1)
            ram_words.append(np.array([flat.size], dtype=np.uint32))
            ram_words.append(flat.astype(np.uint32))
        ram_sec = (
            np.concatenate(ram_words) if ram_words else np.zeros(0, dtype=np.uint32)
        )
        v1_words = seal(
            [
                header,
                np.array(counter_words, dtype=np.uint32),
                state_sec,
                ram_sec,
                np.zeros(0, dtype=np.uint32),
            ]
        )

        ckpt = checkpoint_from_words(v1_words)
        assert ckpt.batch == 1
        assert ckpt.cycle == 14
        resumed = restore(design.simulator(), ckpt)
        assert resumed.run(stimuli[14:]) == golden[14:]


class TestRamReadFirst:
    """Satellite: directed read-first coverage — ``ren`` and ``wen`` on
    the same address in the same cycle must return the pre-write word."""

    @pytest.fixture(scope="class")
    def ram_design(self):
        b = CircuitBuilder("readfirst")
        addr = b.input("addr", 4)
        wdata = b.input("wdata", 8)
        wen = b.input("wen", 1)
        ren = b.input("ren", 1)
        mem = b.memory("mem", 16, 8, init=[0xA0 + i for i in range(16)])
        b.write(mem, wen, addr, wdata)
        b.output("rd", b.read(mem, addr, sync=True, en=ren))
        circuit = b.build()
        return circuit, _compile(circuit)

    def test_same_address_same_cycle(self, ram_design):
        circuit, design = ram_design
        sim = design.simulator()
        # Cycle 0: read and write address 5 together.
        out = sim.step({"addr": 5, "wdata": 0x3C, "wen": 1, "ren": 1})
        # Cycle 1: the registered read data is the OLD word, not 0x3C...
        out = sim.step({"addr": 5, "wdata": 0, "wen": 0, "ren": 1})
        assert out["rd"] == 0xA5
        # ...and the write did land: the next read returns the new word.
        out = sim.step({"addr": 0, "wdata": 0, "wen": 0, "ren": 0})
        assert out["rd"] == 0x3C

    def test_matches_word_level_golden(self, ram_design):
        circuit, design = ram_design
        import random

        rng = random.Random(5)
        stimuli = [
            {
                "addr": rng.randrange(16),
                "wdata": rng.randrange(256),
                "wen": rng.randrange(2),
                "ren": rng.randrange(2),
            }
            for _ in range(40)
        ]
        # Force plenty of same-address read+write collisions.
        for vec in stimuli[::3]:
            vec["addr"], vec["wen"], vec["ren"] = 7, 1, 1
        ref = WordSim(Netlist(circuit))
        sim = design.simulator()
        for cycle, vec in enumerate(stimuli):
            assert sim.step(vec) == ref.step(vec), f"cycle {cycle}"

    def test_per_lane_enables(self, ram_design):
        """Lanes with ren=0 hold their read register; lanes with wen=0
        keep their RAM image — enables are honored per lane."""
        circuit, design = ram_design
        batch = 4
        streams = [
            [
                {
                    "addr": 5,
                    "wdata": 0x10 + lane,
                    "wen": int(lane % 2 == 0),
                    "ren": int(lane < 2),
                },
                {"addr": 5, "wdata": 0, "wen": 0, "ren": 1},
                {"addr": 0, "wdata": 0, "wen": 0, "ren": 0},
            ]
            for lane in range(batch)
        ]
        sequential = [design.simulator().run(s) for s in streams]
        batched = design.simulator(batch=batch).run_lanes(
            [[s[c] for s in streams] for c in range(3)]
        )
        for lane in range(batch):
            assert [row[lane] for row in batched] == sequential[lane]


class TestBatchedCosim:
    def test_each_lane_checked_against_reference(self, memory_design):
        circuit, design = memory_design
        batch = 4
        streams = lane_vectors(circuit, batch, 20, seed=90)
        result = cosim_lanes(
            lambda: WordSim(Netlist(circuit)),
            design.simulator(batch=batch),
            streams,
        )
        assert result.passed
        assert result.cycles == 20

    def test_divergence_names_the_lane(self, memory_design):
        circuit, design = memory_design
        batch = 3
        streams = lane_vectors(circuit, batch, 15, seed=91)

        class LyingDut:
            def __init__(self, sim, bad_lane):
                self.sim, self.bad_lane = sim, bad_lane

            def step_lanes(self, vecs):
                outs = self.sim.step_lanes(vecs)
                outs[self.bad_lane] = {
                    k: v ^ 1 for k, v in outs[self.bad_lane].items()
                }
                return outs

        result = cosim_lanes(
            lambda: WordSim(Netlist(circuit)),
            LyingDut(design.simulator(batch=batch), bad_lane=2),
            streams,
        )
        assert not result.passed
        assert result.divergence.lane == 2
        assert "lane 2" in result.divergence.describe()

    def test_mismatched_stream_lengths_rejected(self, memory_design):
        circuit, design = memory_design
        streams = lane_vectors(circuit, 2, 10, seed=92)
        streams[1] = streams[1][:5]
        with pytest.raises(ValueError, match="same length"):
            cosim_lanes(
                lambda: WordSim(Netlist(circuit)),
                design.simulator(batch=2),
                streams,
            )


class TestLanePlanes:
    """Multi-word lane planes: batch = K×64 (docs/ENGINE.md §7)."""

    def test_validation_typing_and_messages(self):
        from repro.core.engine import MAX_LANE_WORDS, validate_batch
        from repro.errors import GemError, LaneConfigError

        # non-positive: typed GemError, verbatim historical message
        with pytest.raises(LaneConfigError, match=r"batch must be in \[1, 64\], got 0"):
            ExecutionEngine(0)
        with pytest.raises(GemError):
            ExecutionEngine(-3)
        # 65 is still rejected: not a whole number of 64-lane words
        with pytest.raises(LaneConfigError, match="whole number"):
            ExecutionEngine(WORD_LANES + 1)
        with pytest.raises(LaneConfigError, match="lane-plane limit"):
            validate_batch((MAX_LANE_WORDS + 1) * WORD_LANES)
        assert validate_batch(64) == 1
        assert validate_batch(256) == 4
        assert validate_batch(4096) == 64

    def test_engine_geometry(self):
        eng = ExecutionEngine(256)
        assert eng.words == 4
        assert eng.zeros(5).shape == (5, 4)
        assert eng.lane_coords(0) == (0, 0)
        assert eng.lane_coords(70) == (1, 6)
        assert int(eng.lane_mask) == 0xFFFFFFFFFFFFFFFF

    def test_pack_unpack_roundtrip_multiword(self):
        rng = np.random.default_rng(3)
        eng = ExecutionEngine(192)
        values = [int(v) for v in rng.integers(0, 1 << 20, 192)]
        words = eng.pack_lanes(values, 20)
        assert words.shape == (20, 3)
        for lane, value in enumerate(values):
            assert eng.lane_int(words, lane) == value

    def test_quarantine_is_lane_exact(self):
        eng = ExecutionEngine(256)
        eng.quarantine_lanes([3, 70, 255])
        bits = eng.lane_bits(eng.quarantined)
        assert sorted(np.nonzero(bits)[0].tolist()) == [3, 70, 255]
        eng.clear_quarantine()
        assert not eng.lane_bits(eng.quarantined).any()

    @pytest.mark.parametrize("mode", ["fused", "legacy"])
    @pytest.mark.parametrize("batch", [128, 256])
    def test_plane_batch_matches_stacked_batch64(self, memory_design, mode, batch):
        """A K-word run is bit-identical to K independent batch-64 runs
        over the same lane streams — the tentpole's acceptance check."""
        circuit, design = memory_design
        cycles = 10
        streams = lane_vectors(circuit, batch, cycles, seed=17)
        big = design.simulator(batch=batch, mode=mode)
        big_rows = big.run_lanes([[s[c] for s in streams] for c in range(cycles)])
        for word in range(batch // WORD_LANES):
            lo = word * WORD_LANES
            small = design.simulator(batch=WORD_LANES, mode=mode)
            small_rows = small.run_lanes(
                [[s[c] for s in streams[lo : lo + WORD_LANES]] for c in range(cycles)]
            )
            for cycle in range(cycles):
                assert big_rows[cycle][lo : lo + WORD_LANES] == small_rows[cycle]

    def test_batch_1024_spot_check_fused(self, memory_design):
        """1024 lanes (K=16): lane k of word w matches the stacked run."""
        circuit, design = memory_design
        cycles = 6
        batch = 1024
        streams = lane_vectors(circuit, batch, cycles, seed=23)
        big = design.simulator(batch=batch)
        big_rows = big.run_lanes([[s[c] for s in streams] for c in range(cycles)])
        for word in (0, 7, 15):  # first, middle, last plane word
            lo = word * WORD_LANES
            small = design.simulator(batch=WORD_LANES)
            small_rows = small.run_lanes(
                [[s[c] for s in streams[lo : lo + WORD_LANES]] for c in range(cycles)]
            )
            for cycle in range(cycles):
                assert big_rows[cycle][lo : lo + WORD_LANES] == small_rows[cycle]

    def test_quarantined_plane_run_stays_lane_exact(self, memory_design):
        """Quarantining lanes across plane words leaves every healthy
        lane bit-identical to a clean run, and two identically
        quarantined runs agree everywhere (the scrub-digest contract)."""
        circuit, design = memory_design
        cycles = 8
        streams = lane_vectors(circuit, 128, cycles, seed=41)
        vecs = [[s[c] for s in streams] for c in range(cycles)]
        clean = design.simulator(batch=128)
        clean_rows = clean.run_lanes(vecs)
        dirty = design.simulator(batch=128)
        dirty.quarantine_lanes([5, 100])
        assert dirty.quarantined_lanes == [5, 100]
        dirty_rows = dirty.run_lanes(vecs)
        for cycle in range(cycles):
            for lane in range(128):
                if lane not in (5, 100):
                    assert dirty_rows[cycle][lane] == clean_rows[cycle][lane]
        shadow = design.simulator(batch=128, mode="legacy")
        shadow.quarantine_lanes([5, 100])
        shadow_rows = shadow.run_lanes(vecs)
        assert np.array_equal(dirty.global_state, shadow.global_state)
        assert shadow_rows == dirty_rows
