"""Live end-to-end tests of the differential fuzzing pipeline.

The corpus tests replay frozen cases; these run the machinery itself:
generation determinism, the injected-fold acceptance flow (catch →
shrink → replay to the same first-divergence site), the campaign loop,
and the ``gem-fuzz`` CLI entry points.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.bitstream import count_fold_instructions, mutate_fold_constant
from repro.core.compiler import GemCompiler
from repro.fuzz import (
    OracleConfig,
    generate_design,
    random_stimuli,
    run_fuzz,
    run_oracle,
    shrink,
)
from repro.fuzz.corpus import Corpus, Repro, load_repro, replay_repro, write_repro
from repro.fuzz.oracle import _coerce_stimuli, compile_profile
from repro.harness.cli import main_fuzz


class TestGeneratorDeterminism:
    def test_same_seed_same_spec(self):
        a = generate_design(123, "mixed").spec.to_json()
        b = generate_design(123, "mixed").spec.to_json()
        assert a == b

    def test_same_seed_same_stimuli(self):
        spec = generate_design(9, "deep").spec
        assert random_stimuli(spec, 9, 16) == random_stimuli(spec, 9, 16)

    def test_profiles_differ(self):
        assert (
            generate_design(5, "wide").spec.to_json()
            != generate_design(5, "deep").spec.to_json()
        )


class TestFoldMutation:
    def test_mutation_changes_program_and_reseals(self):
        spec = generate_design(0, "mixed").spec
        design = GemCompiler(compile_profile("small")).compile(spec.build())
        assert count_fold_instructions(design.program) > 0
        mutated = mutate_fold_constant(design.program, 0, 2)
        assert mutated.digest() != design.program.digest()
        # The mutated container still loads: wrong program, not corrupt one.
        from repro.core.bitstream import verify_integrity

        verify_integrity(mutated.words)

    def test_double_flip_restores(self):
        spec = generate_design(0, "mixed").spec
        design = GemCompiler(compile_profile("small")).compile(spec.build())
        twice = mutate_fold_constant(mutate_fold_constant(design.program, 0, 2), 0, 2)
        assert twice.digest() == design.program.digest()


class TestInjectedBugAcceptance:
    """The ISSUE acceptance flow: an injected fold-constant mutation is
    caught by the oracle, shrunk, and replayed to the same site."""

    def _failing_config(self, spec, stimuli):
        for bit in range(48):
            config = OracleConfig(
                batches=(1, 16), inject={"kind": "fold", "index": 0, "bit": bit}
            )
            result = run_oracle(spec, stimuli, config)
            if not result.ok:
                return config, result
        pytest.fail("no observable fold bit in 48 tries")

    def test_catch_shrink_replay_same_site(self, tmp_path):
        spec = generate_design(0, "mixed").spec
        stimuli = random_stimuli(spec, 0, 20)
        config, result = self._failing_config(spec, stimuli)
        assert result.divergence.engine in ("fused", "legacy")
        assert result.divergence.reference in ("word", "simref")

        shrunk = shrink(spec, stimuli, config, max_checks=120)
        assert shrunk.shrunk_size <= shrunk.original_size

        path = str(tmp_path / "case.gemrepro")
        write_repro(
            path,
            Repro(
                name="case",
                spec=shrunk.spec,
                stimuli=_coerce_stimuli(shrunk.spec, shrunk.stimuli),
                oracle=config,
                expect=shrunk.divergence,
            ),
        )
        outcome = replay_repro(path)
        assert outcome.ok, outcome.message
        assert outcome.result.divergence.same_site(shrunk.divergence)

    def test_shrink_requires_a_failing_case(self):
        spec = generate_design(0, "mixed").spec
        stimuli = random_stimuli(spec, 0, 6)
        with pytest.raises(ValueError, match="failing case"):
            shrink(spec, stimuli, OracleConfig(batches=(1,)), max_checks=10)


class TestRunFuzz:
    def test_clean_campaign_finds_no_divergence(self, tmp_path):
        stats = run_fuzz(
            0, 6, cycles=12, batches=(1, 4), failure_dir=str(tmp_path / "f")
        )
        assert stats.iterations == 6
        assert stats.divergences == 0
        assert stats.failures == []
        assert stats.coverage

    def test_campaign_is_deterministic(self, tmp_path):
        a = run_fuzz(3, 4, cycles=8, batches=(1,), failure_dir=str(tmp_path / "a"))
        b = run_fuzz(3, 4, cycles=8, batches=(1,), failure_dir=str(tmp_path / "b"))
        assert a.per_profile == b.per_profile
        assert a.coverage == b.coverage

    def test_banking_novel_coverage(self, tmp_path):
        corpus = Corpus(str(tmp_path / "corpus"))
        stats = run_fuzz(
            1, 4, cycles=8, batches=(1,),
            failure_dir=str(tmp_path / "f"), corpus=corpus, bank_novel=True,
        )
        assert stats.banked, "first iterations always break new coverage ground"
        banked = load_repro(stats.banked[0])
        assert banked.expect is None
        assert replay_repro(banked).ok


class TestFuzzCli:
    def test_run_exit_codes_and_json(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main_fuzz(
            ["run", "--seed", "0", "--iters", "2", "--profiles", "mixed",
             "--cycles", "8", "--batches", "1", "--json"]
        )
        assert rc == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["iterations"] == 2
        assert stats["divergences"] == 0

    def test_injected_run_then_replay(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        # Fold bit 2 of instruction 0 is observable on seed-0 "mixed"
        # designs (pinned by TestInjectedBugAcceptance above).
        rc = main_fuzz(
            ["run", "--seed", "0", "--iters", "3", "--profiles", "mixed",
             "--inject-fold", "0:0", "--failure-dir", "inj", "--cycles", "16"]
        )
        capsys.readouterr()
        if rc == 0:
            pytest.skip("mutation unobservable on these draws")
        repros = [os.path.join("inj", n) for n in sorted(os.listdir("inj"))]
        assert repros
        assert main_fuzz(["replay", *repros]) == 0
        out = capsys.readouterr().out
        assert "reproduced divergence" in out

    def test_corpus_summary(self, capsys):
        corpus_dir = os.path.join(os.path.dirname(__file__), "corpus")
        assert main_fuzz(["corpus", corpus_dir, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["entries"] >= 10
