"""Multi-GPU planning and timing model (extension of §V future work)."""

import pytest

from repro.core.boomerang import BoomerangConfig
from repro.core.compiler import GemCompiler, GemConfig
from repro.core.multigpu import (
    BlockWork,
    Interconnect,
    assign_blocks,
    block_workloads,
    multi_gpu_speed,
    plan_multi_gpu,
)
from repro.core.partition import PartitionConfig
from tests.helpers import random_circuit


def _design(seed=600, n_ops=200, gpp=150):
    return GemCompiler(
        GemConfig(
            partition=PartitionConfig(gates_per_partition=gpp, num_stages=1),
            boomerang=BoomerangConfig(width_log2=10),
        )
    ).compile(random_circuit(seed, n_ops=n_ops, n_regs=8))


class TestBlockWorkloads:
    def test_one_entry_per_partition(self):
        design = _design()
        blocks = block_workloads(design)
        assert len(blocks) == design.merge.plan.num_partitions
        for block in blocks:
            assert block.work_bits > 0
            assert block.inst_words > 0
            assert block.publish_bits > 0


class TestAssignment:
    def _blocks(self, sizes, stage=0):
        return [
            BlockWork(stage=stage, work_bits=s, inst_words=s, publish_bits=1, read_bits=1)
            for s in sizes
        ]

    def test_lpt_balances(self):
        blocks = self._blocks([9, 7, 6, 5, 4, 3, 2])
        assignment = assign_blocks(blocks, 2)
        loads = [sum(blocks[i].work_bits for i in dev) for dev in assignment[0]]
        assert abs(loads[0] - loads[1]) <= 2

    def test_every_block_assigned_once(self):
        blocks = self._blocks([5, 4, 3, 2, 1])
        assignment = assign_blocks(blocks, 3)
        seen = sorted(i for dev in assignment[0] for i in dev)
        assert seen == list(range(5))

    def test_stages_kept_separate(self):
        blocks = self._blocks([5, 4], stage=0) + self._blocks([3, 2], stage=1)
        # fix stages of the second group
        for i in (2, 3):
            blocks[i] = BlockWork(stage=1, work_bits=blocks[i].work_bits, inst_words=1, publish_bits=1, read_bits=1)
        assignment = assign_blocks(blocks, 2, num_stages=2)
        assert sorted(i for dev in assignment[0] for i in dev) == [0, 1]
        assert sorted(i for dev in assignment[1] for i in dev) == [2, 3]

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            assign_blocks([], 0)


class TestTimingModel:
    def test_single_gpu_is_positive(self):
        design = _design()
        assert multi_gpu_speed(design, 1) > 0

    def test_large_design_scales_then_saturates(self):
        """At paper scale (many waves per device), adding devices helps;
        the gain per device shrinks as communication takes over."""
        from repro.core.multigpu import MultiGpuPlan, assign_blocks
        from repro.core.perfmodel import A100

        # 2000 heavy blocks in one stage: ~10 fetch-bound waves on one A100.
        blocks = [
            BlockWork(stage=0, work_bits=12_000, inst_words=12_000, publish_bits=600, read_bits=600)
            for _ in range(2000)
        ]
        speeds = []
        for g in (1, 2, 4, 8):
            plan = MultiGpuPlan(
                num_gpus=g,
                gpu=A100,
                interconnect=Interconnect(),
                assignment=assign_blocks(blocks, g),
                blocks=blocks,
            )
            speeds.append(plan.speed())
        assert speeds[1] > speeds[0] * 1.3  # 2 GPUs clearly help
        # Diminishing returns: efficiency falls with device count.
        eff = [s / (g * speeds[0]) for s, g in zip(speeds, (1, 2, 4, 8))]
        assert eff[3] < eff[1]

    def test_small_design_does_not_scale(self):
        """A design that fits one device in one wave is latency-bound:
        splitting it only adds interconnect rounds."""
        design = _design(n_ops=80, gpp=400)
        one = multi_gpu_speed(design, 1)
        four = multi_gpu_speed(design, 4)
        assert four < one * 1.1

    def test_slower_interconnect_hurts(self):
        design = _design()
        fast = plan_multi_gpu(design, 4, scale_ratio=400.0).speed()
        slow = plan_multi_gpu(
            design, 4, interconnect=Interconnect("pcie", 32.0, 2.0e-5), scale_ratio=400.0
        ).speed()
        assert slow < fast

    def test_device_loads_reported(self):
        design = _design()
        plan = plan_multi_gpu(design, 2)
        loads = plan.device_loads()
        assert len(loads) == design.merge.plan.num_stages
        assert all(len(stage) == 2 for stage in loads)
