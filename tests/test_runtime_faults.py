"""Fault injection, scrubbing, self-healing, and degradation
(repro.runtime.faults + repro.runtime.supervisor)."""

import pytest

from repro.core.boomerang import BoomerangConfig
from repro.core.compiler import GemCompiler, GemConfig
from repro.core.interpreter import GemInterpreter
from repro.core.partition import PartitionConfig
from repro.errors import BitstreamError
from repro.runtime.faults import FaultInjector, run_campaign
from repro.runtime.supervisor import Supervisor, state_digest
from repro.simref.gate_sim import GateLevelSim
from tests.helpers import random_circuit, random_vectors


@pytest.fixture(scope="module")
def compiled():
    circuit = random_circuit(301, n_ops=50, n_regs=3, with_memory=True)
    design = GemCompiler(
        GemConfig(
            partition=PartitionConfig(gates_per_partition=400),
            boomerang=BoomerangConfig(width_log2=10),
        )
    ).compile(circuit)
    stimuli = random_vectors(circuit, 9, 40)
    golden = design.simulator().run(stimuli)
    return circuit, design, stimuli, golden


class TestFaultInjector:
    def test_seeded_determinism(self, compiled):
        _, design, _, _ = compiled
        a = FaultInjector(42).corrupt_bitstream(design.program)[1]
        b = FaultInjector(42).corrupt_bitstream(design.program)[1]
        assert a.location == b.location

    def test_bitstream_flip_changes_exactly_one_word(self, compiled):
        _, design, _, _ = compiled
        corrupted, _ = FaultInjector(1).corrupt_bitstream(design.program)
        diff = (corrupted.words != design.program.words).sum()
        assert diff == 1
        assert design.program.words is not corrupted.words  # original untouched

    def test_state_flip_changes_digest(self, compiled):
        _, design, _, _ = compiled
        sim = design.simulator()
        before = state_digest(sim)
        FaultInjector(2).flip_state_bit(sim)
        assert state_digest(sim) != before

    def test_ram_flip_changes_digest(self, compiled):
        _, design, _, _ = compiled
        sim = design.simulator()
        before = state_digest(sim)
        record = FaultInjector(3).flip_ram_bit(sim)
        assert record is not None
        assert state_digest(sim) != before

    def test_ram_flip_none_without_rams(self):
        circuit = random_circuit(302, n_ops=30)
        design = GemCompiler(
            GemConfig(
                partition=PartitionConfig(gates_per_partition=400),
                boomerang=BoomerangConfig(width_log2=10),
            )
        ).compile(circuit)
        assert FaultInjector(0).flip_ram_bit(design.simulator()) is None


class TestBitstreamFaultDetection:
    def test_all_injected_flips_detected_at_load(self, compiled):
        """Acceptance: 100% of single-bit bitstream faults rejected."""
        _, design, _, _ = compiled
        injector = FaultInjector(7)
        detected = 0
        trials = 60
        for _ in range(trials):
            corrupted, _ = injector.corrupt_bitstream(design.program)
            with pytest.raises(BitstreamError):
                GemInterpreter(corrupted)
            detected += 1
        assert detected == trials


class TestSupervisor:
    def test_clean_run_matches_plain(self, compiled):
        _, design, stimuli, golden = compiled
        result = Supervisor(design, checkpoint_every=8).run(stimuli)
        assert result.outputs == golden
        assert not result.degraded
        assert result.faults_detected == 0
        assert result.engine == "gem"
        assert result.checkpoints_written == len(stimuli) // 8

    def test_transient_state_fault_recovered(self, compiled):
        _, design, stimuli, golden = compiled
        injector = FaultInjector(11)
        fired = []

        def hook(interp, cycle):
            if cycle == 19 and not fired:
                fired.append(cycle)
                injector.flip_state_bit(interp, cycle)

        result = Supervisor(design, checkpoint_every=8, fault_hook=hook).run(stimuli)
        assert result.faults_detected == 1
        assert result.retries == 1
        assert not result.degraded
        assert result.outputs == golden  # bit-identical after recovery
        assert any("rolled back" in e for e in result.events)

    def test_transient_ram_fault_recovered(self, compiled):
        _, design, stimuli, golden = compiled
        injector = FaultInjector(12)
        fired = []

        def hook(interp, cycle):
            if cycle == 10 and not fired:
                fired.append(cycle)
                injector.flip_ram_bit(interp, cycle)

        result = Supervisor(design, checkpoint_every=4, fault_hook=hook).run(stimuli)
        assert result.faults_detected == 1
        assert not result.degraded
        assert result.outputs == golden

    def test_persistent_poison_degrades_to_simref(self, compiled):
        """Acceptance: a persistently poisoned interpreter still returns
        correct outputs via the simref gate-level fallback."""
        _, design, stimuli, golden = compiled

        def poison(interp, cycle):
            if cycle >= 12:
                interp.global_state[3] = not interp.global_state[3]

        result = Supervisor(
            design, checkpoint_every=8, fault_hook=poison, max_retries=2
        ).run(stimuli)
        assert result.degraded
        assert result.engine == "simref"
        assert result.outputs == golden  # fallback still correct
        assert any("degrading" in e for e in result.events)

    def test_reference_shadow_clean_run(self, compiled):
        _, design, stimuli, golden = compiled
        result = Supervisor(
            design,
            shadow=lambda: GateLevelSim(design.synth),
            checkpoint_every=16,
        ).run(stimuli)
        assert not result.degraded
        assert result.outputs == golden

    def test_no_shadow_means_no_detection(self, compiled):
        """Scrubbing is the detection mechanism: without a shadow a state
        flip silently corrupts the run (motivates the default)."""
        _, design, stimuli, golden = compiled
        injector = FaultInjector(13)
        fired = []

        def hook(interp, cycle):
            if cycle == 5 and not fired:
                fired.append(cycle)
                injector.flip_state_bit(interp, cycle)

        result = Supervisor(design, shadow=None, fault_hook=hook).run(stimuli)
        assert result.faults_detected == 0
        assert not result.degraded

    def test_resume_from_checkpoint(self, compiled):
        _, design, stimuli, golden = compiled
        from repro.runtime.checkpoint import snapshot

        sim = design.simulator()
        for vec in stimuli[:15]:
            sim.step(vec)
        result = Supervisor(design, checkpoint_every=8).run(
            stimuli, resume_from=snapshot(sim)
        )
        assert result.outputs == golden[15:]
        assert any("resumed" in e for e in result.events)

    def test_backoff_is_bounded(self, compiled):
        _, design, stimuli, _ = compiled
        sup = Supervisor(design, backoff_base=0.5, backoff_cap=1.0)
        assert min(sup.backoff_cap, sup.backoff_base * 2**5) == 1.0


class TestBatchedSupervisor:
    def test_clean_batched_run_lane_outputs(self, compiled):
        _, design, stimuli, golden = compiled
        result = Supervisor(design, checkpoint_every=8, batch=4).run(stimuli)
        assert not result.degraded
        assert result.lanes == 4
        assert result.outputs == golden
        assert len(result.lane_outputs) == len(stimuli)
        for per_cycle, expected in zip(result.lane_outputs, golden):
            assert all(out == expected for out in per_cycle)

    def test_lane_targeted_fault_detected_and_recovered(self, compiled):
        """An SEU in lane 3 only is caught by the all-lane state digest
        and rolled back; every lane's stream ends up golden."""
        _, design, stimuli, golden = compiled
        injector = FaultInjector(21)
        fired = []

        def hook(interp, cycle):
            if cycle == 19 and not fired:
                fired.append(cycle)
                injector.flip_state_bit(interp, cycle, lane=3)

        result = Supervisor(
            design, checkpoint_every=8, batch=4, fault_hook=hook
        ).run(stimuli)
        assert result.faults_detected == 1
        assert not result.degraded
        for lane in range(4):
            assert [row[lane] for row in result.lane_outputs] == golden

    def test_batch1_has_no_lane_outputs(self, compiled):
        _, design, stimuli, _ = compiled
        result = Supervisor(design, checkpoint_every=8).run(stimuli)
        assert result.lanes == 1
        assert result.lane_outputs is None


class TestCampaign:
    def test_campaign_passes_and_counts(self, compiled):
        """Acceptance: campaign report with injected/detected/recovered."""
        _, design, stimuli, _ = compiled
        report = run_campaign(
            design, stimuli, name="rand301", trials=4, seed=5, checkpoint_every=8
        )
        assert report.passed
        assert report.count("bitstream") == 4
        assert report.count("bitstream", detected=True) == 4
        assert report.count("state") == 4
        assert report.count("state", detected=True, recovered=True) == 4
        assert report.count("ram") == 4  # design has RAM blocks
        summary = report.summary()
        assert "PASS" in summary
        assert "bitstream" in summary and "state" in summary

    def test_campaign_seeded_reproducible(self, compiled):
        _, design, stimuli, _ = compiled
        a = run_campaign(design, stimuli[:20], trials=2, seed=9)
        b = run_campaign(design, stimuli[:20], trials=2, seed=9)
        assert [r.location for r in a.records] == [r.location for r in b.records]

    def test_batched_trials_land_in_distinct_lanes(self, compiled):
        """The batched campaign packs trial t into stimulus lane t."""
        _, design, stimuli, _ = compiled
        report = run_campaign(design, stimuli[:20], trials=3, seed=6)
        state_lanes = [
            r.location.rsplit("lane ", 1)[1]
            for r in report.records
            if r.kind == "state"
        ]
        assert sorted(state_lanes) == ["0", "1", "2"]

    def test_sequential_mode_still_passes(self, compiled):
        """Legacy one-run-per-trial path stays available behind a flag."""
        _, design, stimuli, _ = compiled
        report = run_campaign(
            design, stimuli[:20], trials=2, seed=7, batched=False
        )
        assert report.passed
        assert report.count("state", detected=True, recovered=True) == 2
