"""Synthesis correctness: word-level lowering vs the golden WordSim.

These are the paper's §III-B guarantees: the E-AIG implements the RTL
exactly, and the arithmetic constructions are depth-optimized (log-depth
carry networks).
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.eaig import EAIG, EAIGSim, FALSE, TRUE
from repro.core.synthesis import (
    add_words,
    const_bits,
    equal_words,
    less_than,
    multiply,
    shift_words,
    sub_words,
    synthesize,
    tree_and,
    tree_or,
    tree_xor,
)
from repro.rtl import CircuitBuilder, Netlist, WordSim
from tests.helpers import lockstep, random_circuit, random_vectors


def _bits_of(value: int, width: int) -> list[int]:
    return [(value >> i) & 1 for i in range(width)]


def _eval_bits(eaig: EAIG, pi_values: list[int], literals: list[int]) -> int:
    sim = EAIGSim(eaig)
    sim.settle(pi_values)
    out = 0
    for i, literal in enumerate(literals):
        out |= sim._lit_value(literal) << i
    return out


class TestOperatorLibrary:
    W = 6
    MASK = (1 << W) - 1

    def _operands(self):
        g = EAIG()
        a = [g.add_pi(f"a{i}") for i in range(self.W)]
        b = [g.add_pi(f"b{i}") for i in range(self.W)]
        return g, a, b

    @given(st.integers(0, MASK), st.integers(0, MASK), st.integers(0, 1))
    @settings(max_examples=80, deadline=None)
    def test_adder_exhaustive_random(self, x, y, cin):
        g, a, b = self._operands()
        total, carry = add_words(g, a, b, TRUE if cin else FALSE)
        got = _eval_bits(g, _bits_of(x, self.W) + _bits_of(y, self.W), total + [carry])
        expect = x + y + cin
        assert got == expect

    @given(st.integers(0, MASK), st.integers(0, MASK))
    @settings(max_examples=80, deadline=None)
    def test_subtract_and_compare(self, x, y):
        g, a, b = self._operands()
        diff, _ = sub_words(g, a, b)
        lt = less_than(g, a, b)
        eq = equal_words(g, a, b)
        pis = _bits_of(x, self.W) + _bits_of(y, self.W)
        assert _eval_bits(g, pis, diff) == (x - y) & self.MASK
        assert _eval_bits(g, pis, [lt]) == int(x < y)
        assert _eval_bits(g, pis, [eq]) == int(x == y)

    @given(st.integers(0, MASK), st.integers(0, MASK))
    @settings(max_examples=60, deadline=None)
    def test_multiplier(self, x, y):
        g, a, b = self._operands()
        product = multiply(g, a, b)
        pis = _bits_of(x, self.W) + _bits_of(y, self.W)
        assert _eval_bits(g, pis, product) == (x * y) & self.MASK

    @given(st.integers(0, MASK), st.integers(0, MASK), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_barrel_shifter(self, x, amount, left):
        g, a, b = self._operands()
        shifted = shift_words(g, a, b, left=left)
        pis = _bits_of(x, self.W) + _bits_of(amount, self.W)
        if left:
            expect = (x << amount) & self.MASK if amount < self.W else 0
        else:
            expect = x >> amount if amount < self.W else 0
        assert _eval_bits(g, pis, shifted) == expect

    @given(st.integers(0, MASK))
    @settings(max_examples=40, deadline=None)
    def test_reductions(self, x):
        g, a, _ = self._operands()
        pis = _bits_of(x, self.W) + [0] * self.W
        assert _eval_bits(g, pis, [tree_and(g, a)]) == int(x == self.MASK)
        assert _eval_bits(g, pis, [tree_or(g, a)]) == int(x != 0)
        assert _eval_bits(g, pis, [tree_xor(g, a)]) == bin(x).count("1") % 2

    def test_empty_reductions(self):
        g = EAIG()
        assert tree_and(g, []) == TRUE
        assert tree_or(g, []) == FALSE
        assert tree_xor(g, []) == FALSE

    def test_const_bits(self):
        assert const_bits(0b1010, 4) == [FALSE, TRUE, FALSE, TRUE]


class TestDepthOptimality:
    def test_adder_depth_is_logarithmic(self):
        """The paper requires depth-optimized synthesis; a ripple adder
        would be depth O(W), Kogge-Stone must stay O(log W)."""
        for W in (8, 16, 32, 64):
            g = EAIG()
            a = [g.add_pi() for _ in range(W)]
            b = [g.add_pi() for _ in range(W)]
            total, carry = add_words(g, a, b)
            depth = max(g.lit_level(t) for t in total + [carry])
            assert depth <= 3 * math.ceil(math.log2(W)) + 4, (W, depth)

    def test_reduction_depth_is_logarithmic(self):
        g = EAIG()
        a = [g.add_pi() for _ in range(64)]
        out = tree_and(g, a)
        assert g.lit_level(out) <= 7

    def test_huffman_merging_prefers_shallow(self):
        # One deep literal + many shallow: balanced reduce keeps the deep
        # literal near the root instead of serializing after it.
        g = EAIG()
        deep = g.add_pi()
        for _ in range(5):
            deep = g.add_and(deep, g.add_pi())
        shallow = [g.add_pi() for _ in range(8)]
        out = tree_and(g, [deep] + shallow)
        assert g.lit_level(out) <= g.lit_level(deep) + 2


class TestCircuitSynthesis:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_circuits_equivalent(self, seed):
        circuit = random_circuit(seed, n_ops=50)
        word = WordSim(Netlist(circuit))
        synth = synthesize(circuit).make_sim()
        lockstep({"word": word, "eaig": synth}, random_vectors(circuit, seed + 100, 40))

    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuits_with_memory(self, seed):
        circuit = random_circuit(seed + 50, n_ops=40, with_memory=True, with_async_memory=True)
        word = WordSim(Netlist(circuit))
        synth = synthesize(circuit).make_sim()
        lockstep({"word": word, "eaig": synth}, random_vectors(circuit, seed + 200, 40))

    def test_io_binding_complete(self):
        circuit = random_circuit(1, n_ops=30)
        result = synthesize(circuit)
        assert set(result.input_bits) == {s.name for s in circuit.inputs}
        assert set(result.output_bits) == {name for name, _ in circuit.outputs}
        for sig in circuit.inputs:
            assert len(result.input_bits[sig.name]) == sig.width

    def test_register_init_values(self):
        b = CircuitBuilder()
        r = b.reg("r", 8, init=0xA5)
        r.next = r
        b.output("q", r)
        sim = synthesize(b.build()).make_sim()
        assert sim.step({})["q"] == 0xA5
