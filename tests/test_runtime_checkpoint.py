"""Checkpoint/restore (repro.runtime.checkpoint): bit-identical resume,
binary round trips, corruption rejection, and the rotating manager."""

import os

import numpy as np
import pytest

from repro.core.boomerang import BoomerangConfig
from repro.core.compiler import GemCompiler, GemConfig
from repro.core.partition import PartitionConfig
from repro.errors import CheckpointError
from repro.harness.runner import compile_design, design_workloads
from repro.runtime.checkpoint import (
    CheckpointManager,
    checkpoint_from_words,
    checkpoint_to_words,
    load_checkpoint,
    restore,
    save_checkpoint,
    snapshot,
)
from tests.helpers import random_circuit, random_vectors


def _compile(seed: int, **kwargs):
    circuit = random_circuit(seed, n_ops=50, **kwargs)
    design = GemCompiler(
        GemConfig(
            partition=PartitionConfig(gates_per_partition=400),
            boomerang=BoomerangConfig(width_log2=10),
        )
    ).compile(circuit)
    return circuit, design


class TestSnapshotRestore:
    def test_memory_roundtrip_bit_identical(self):
        circuit, design = _compile(21, with_memory=True)
        stimuli = random_vectors(circuit, 5, 40)
        golden = design.simulator().run(stimuli)

        sim = design.simulator()
        for vec in stimuli[:23]:
            sim.step(vec)
        ckpt = snapshot(sim)
        resumed = restore(design.simulator(), ckpt)
        assert resumed.cycle == 23
        assert resumed.run(stimuli[23:]) == golden[23:]

    def test_counters_restored(self):
        circuit, design = _compile(22)
        stimuli = random_vectors(circuit, 1, 10)
        sim = design.simulator()
        sim.run(stimuli)
        ckpt = snapshot(sim)
        other = restore(design.simulator(), ckpt)
        assert other.counters.cycles == sim.counters.cycles
        assert other.counters.fold_steps == sim.counters.fold_steps

    def test_restore_rejects_wrong_program(self):
        circuit_a, design_a = _compile(23)
        circuit_b, design_b = _compile(24)
        sim = design_a.simulator()
        sim.run(random_vectors(circuit_a, 0, 5))
        with pytest.raises(CheckpointError, match="different bitstream"):
            restore(design_b.simulator(), snapshot(sim))


class TestBinaryFormat:
    def test_words_roundtrip(self):
        circuit, design = _compile(25, with_memory=True)
        sim = design.simulator()
        sim.run(random_vectors(circuit, 2, 17))
        ckpt = snapshot(sim)
        back = checkpoint_from_words(checkpoint_to_words(ckpt))
        assert back.cycle == ckpt.cycle
        assert back.program_digest == ckpt.program_digest
        assert (back.global_state == ckpt.global_state).all()
        assert len(back.ram_arrays) == len(ckpt.ram_arrays)
        for a, b in zip(back.ram_arrays, ckpt.ram_arrays):
            assert (a == b).all()
        assert back.counters == ckpt.counters

    def test_file_roundtrip_and_resume(self, tmp_path):
        circuit, design = _compile(26)
        stimuli = random_vectors(circuit, 3, 30)
        golden = design.simulator().run(stimuli)
        sim = design.simulator()
        for vec in stimuli[:11]:
            sim.step(vec)
        path = str(tmp_path / "run.gemk")
        save_checkpoint(snapshot(sim), path)
        resumed = restore(design.simulator(), load_checkpoint(path))
        assert resumed.run(stimuli[11:]) == golden[11:]

    def test_corrupted_file_rejected(self, tmp_path):
        circuit, design = _compile(27)
        sim = design.simulator()
        sim.run(random_vectors(circuit, 4, 8))
        path = str(tmp_path / "bad.gemk")
        save_checkpoint(snapshot(sim), path)
        words = np.fromfile(path, dtype=np.uint32)
        rng = np.random.default_rng(1)
        for _ in range(20):
            corrupted = words.copy()
            index = int(rng.integers(corrupted.size))
            corrupted[index] = np.uint32(int(corrupted[index]) ^ (1 << int(rng.integers(32))))
            corrupted.tofile(path)
            with pytest.raises(CheckpointError):
                load_checkpoint(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "nope.gemk"))


class TestCheckpointManager:
    def test_rotation_keeps_newest(self, tmp_path):
        circuit, design = _compile(28)
        stimuli = random_vectors(circuit, 5, 30)
        manager = CheckpointManager(str(tmp_path), every=5, keep=2)
        sim = design.simulator()
        for vec in stimuli:
            sim.step(vec)
            manager.maybe_save(sim)
        paths = manager.paths()
        assert len(paths) == 2
        assert paths[-1].endswith(f"ckpt-{30:012d}.gemk")
        assert manager.latest().cycle == 30

    def test_latest_skips_corrupt_newest(self, tmp_path):
        circuit, design = _compile(29)
        manager = CheckpointManager(str(tmp_path), every=1, keep=5)
        sim = design.simulator()
        for vec in random_vectors(circuit, 6, 4):
            sim.step(vec)
            manager.save(sim)
        newest = manager.paths()[-1]
        words = np.fromfile(newest, dtype=np.uint32)
        words[3] ^= np.uint32(1)
        words.tofile(newest)
        latest = manager.latest()
        assert latest is not None
        assert latest.cycle == 3  # newest loadable, not the torn file

    def test_empty_directory(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "none"), every=10)
        assert manager.latest() is None
        assert manager.paths() == []

    def test_invalid_period_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(str(tmp_path), every=0)


class TestRegistryDesignResume:
    """Acceptance: interrupting and resuming an arbitrary cycle produces
    bit-identical outputs on at least two registry designs."""

    @pytest.mark.parametrize("name,cut", [("openpiton1", 37), ("rocketchip", 13)])
    def test_resume_bit_identical(self, tmp_path, name, cut):
        design = compile_design(name)
        workloads = design_workloads(name)
        wl = next(iter(workloads.values()))
        stimuli = wl.stimuli[:60]
        golden = design.simulator().run(stimuli)

        # Interrupted run: stop mid-flight, persist, come back elsewhere.
        sim = design.simulator()
        for vec in stimuli[:cut]:
            sim.step(vec)
        path = str(tmp_path / f"{name}.gemk")
        save_checkpoint(snapshot(sim), path)
        del sim

        resumed = restore(design.simulator(), load_checkpoint(path))
        tail = resumed.run(stimuli[cut:])
        assert tail == golden[cut:]
        assert os.path.getsize(path) > 0
