"""Checkpoint/restore (repro.runtime.checkpoint): bit-identical resume,
binary round trips, corruption rejection, and the rotating manager."""

import json
import os
import zlib

import numpy as np
import pytest

from repro.core.boomerang import BoomerangConfig
from repro.core.compiler import GemCompiler, GemConfig
from repro.core.integrity import seal, unseal
from repro.core.partition import PartitionConfig
from repro.errors import CheckpointError
from repro.harness.runner import compile_design, design_workloads
from repro.runtime.checkpoint import (
    CKPT_MAGIC,
    CKPT_VERSION_V1,
    JOURNAL_VERSION,
    CheckpointManager,
    _COUNTER_FIELDS,
    _pack_bits,
    _u64_pair,
    checkpoint_from_words,
    checkpoint_to_words,
    load_checkpoint,
    resolve_resume,
    restore,
    save_checkpoint,
    snapshot,
)
from tests.helpers import random_circuit, random_vectors


def _compile(seed: int, **kwargs):
    circuit = random_circuit(seed, n_ops=50, **kwargs)
    design = GemCompiler(
        GemConfig(
            partition=PartitionConfig(gates_per_partition=400),
            boomerang=BoomerangConfig(width_log2=10),
        )
    ).compile(circuit)
    return circuit, design


class TestSnapshotRestore:
    def test_memory_roundtrip_bit_identical(self):
        circuit, design = _compile(21, with_memory=True)
        stimuli = random_vectors(circuit, 5, 40)
        golden = design.simulator().run(stimuli)

        sim = design.simulator()
        for vec in stimuli[:23]:
            sim.step(vec)
        ckpt = snapshot(sim)
        resumed = restore(design.simulator(), ckpt)
        assert resumed.cycle == 23
        assert resumed.run(stimuli[23:]) == golden[23:]

    def test_counters_restored(self):
        circuit, design = _compile(22)
        stimuli = random_vectors(circuit, 1, 10)
        sim = design.simulator()
        sim.run(stimuli)
        ckpt = snapshot(sim)
        other = restore(design.simulator(), ckpt)
        assert other.counters.cycles == sim.counters.cycles
        assert other.counters.fold_steps == sim.counters.fold_steps

    def test_restore_rejects_wrong_program(self):
        circuit_a, design_a = _compile(23)
        circuit_b, design_b = _compile(24)
        sim = design_a.simulator()
        sim.run(random_vectors(circuit_a, 0, 5))
        with pytest.raises(CheckpointError, match="different bitstream"):
            restore(design_b.simulator(), snapshot(sim))


class TestBinaryFormat:
    def test_words_roundtrip(self):
        circuit, design = _compile(25, with_memory=True)
        sim = design.simulator()
        sim.run(random_vectors(circuit, 2, 17))
        ckpt = snapshot(sim)
        back = checkpoint_from_words(checkpoint_to_words(ckpt))
        assert back.cycle == ckpt.cycle
        assert back.program_digest == ckpt.program_digest
        assert (back.global_state == ckpt.global_state).all()
        assert len(back.ram_arrays) == len(ckpt.ram_arrays)
        for a, b in zip(back.ram_arrays, ckpt.ram_arrays):
            assert (a == b).all()
        assert back.counters == ckpt.counters

    def test_file_roundtrip_and_resume(self, tmp_path):
        circuit, design = _compile(26)
        stimuli = random_vectors(circuit, 3, 30)
        golden = design.simulator().run(stimuli)
        sim = design.simulator()
        for vec in stimuli[:11]:
            sim.step(vec)
        path = str(tmp_path / "run.gemk")
        save_checkpoint(snapshot(sim), path)
        resumed = restore(design.simulator(), load_checkpoint(path))
        assert resumed.run(stimuli[11:]) == golden[11:]

    def test_corrupted_file_rejected(self, tmp_path):
        circuit, design = _compile(27)
        sim = design.simulator()
        sim.run(random_vectors(circuit, 4, 8))
        path = str(tmp_path / "bad.gemk")
        save_checkpoint(snapshot(sim), path)
        words = np.fromfile(path, dtype=np.uint32)
        rng = np.random.default_rng(1)
        for _ in range(20):
            corrupted = words.copy()
            index = int(rng.integers(corrupted.size))
            corrupted[index] = np.uint32(int(corrupted[index]) ^ (1 << int(rng.integers(32))))
            corrupted.tofile(path)
            with pytest.raises(CheckpointError):
                load_checkpoint(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "nope.gemk"))


class TestCheckpointManager:
    def test_rotation_keeps_newest(self, tmp_path):
        circuit, design = _compile(28)
        stimuli = random_vectors(circuit, 5, 30)
        manager = CheckpointManager(str(tmp_path), every=5, keep=2)
        sim = design.simulator()
        for vec in stimuli:
            sim.step(vec)
            manager.maybe_save(sim)
        paths = manager.paths()
        assert len(paths) == 2
        assert paths[-1].endswith(f"ckpt-{30:012d}.gemk")
        assert manager.latest().cycle == 30

    def test_latest_skips_corrupt_newest(self, tmp_path):
        circuit, design = _compile(29)
        manager = CheckpointManager(str(tmp_path), every=1, keep=5)
        sim = design.simulator()
        for vec in random_vectors(circuit, 6, 4):
            sim.step(vec)
            manager.save(sim)
        newest = manager.paths()[-1]
        words = np.fromfile(newest, dtype=np.uint32)
        words[3] ^= np.uint32(1)
        words.tofile(newest)
        latest = manager.latest()
        assert latest is not None
        assert latest.cycle == 3  # newest loadable, not the torn file

    def test_empty_directory(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "none"), every=10)
        assert manager.latest() is None
        assert manager.paths() == []

    def test_invalid_period_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(str(tmp_path), every=0)


class TestRegistryDesignResume:
    """Acceptance: interrupting and resuming an arbitrary cycle produces
    bit-identical outputs on at least two registry designs."""

    @pytest.mark.parametrize("name,cut", [("openpiton1", 37), ("rocketchip", 13)])
    def test_resume_bit_identical(self, tmp_path, name, cut):
        design = compile_design(name)
        workloads = design_workloads(name)
        wl = next(iter(workloads.values()))
        stimuli = wl.stimuli[:60]
        golden = design.simulator().run(stimuli)

        # Interrupted run: stop mid-flight, persist, come back elsewhere.
        sim = design.simulator()
        for vec in stimuli[:cut]:
            sim.step(vec)
        path = str(tmp_path / f"{name}.gemk")
        save_checkpoint(snapshot(sim), path)
        del sim

        resumed = restore(design.simulator(), load_checkpoint(path))
        tail = resumed.run(stimuli[cut:])
        assert tail == golden[cut:]
        assert os.path.getsize(path) > 0


# -- crash consistency: journal, corruption matrix, resume resolution --------


def _v1_words(ckpt) -> np.ndarray:
    """Serialize a ``batch=1`` snapshot in the legacy v1 (bit-packed,
    single-instance) container, as the pre-lane code wrote it."""
    assert ckpt.batch == 1
    header = np.array(
        [
            CKPT_MAGIC,
            CKPT_VERSION_V1,
            *_u64_pair(ckpt.cycle),
            ckpt.program_digest & 0xFFFFFFFF,
            ckpt.global_state.size,
            len(ckpt.ram_arrays),
            0,  # no deferred writes at a cycle boundary
        ],
        dtype=np.uint32,
    )
    counter_words: list[int] = []
    for name in _COUNTER_FIELDS:
        counter_words.extend(_u64_pair(getattr(ckpt.counters, name)))
    ram_words: list[np.ndarray] = []
    for arr in ckpt.ram_arrays:
        row = arr[0] if arr.ndim == 2 else arr
        ram_words.append(np.array([row.size], dtype=np.uint32))
        ram_words.append(row.astype(np.uint32))
    ram_sec = np.concatenate(ram_words) if ram_words else np.zeros(0, dtype=np.uint32)
    return seal(
        [
            header,
            np.array(counter_words, dtype=np.uint32),
            _pack_bits(ckpt.global_state.astype(bool)),
            ram_sec,
            np.zeros(0, dtype=np.uint32),
        ]
    )


@pytest.fixture(scope="module")
def ckpt_design():
    circuit, design = _compile(41, with_memory=True)
    stimuli = random_vectors(circuit, 7, 30)
    golden = design.simulator().run(stimuli)
    return circuit, design, stimuli, golden


def _mid_run_words(design, stimuli, cut=17):
    sim = design.simulator()
    for vec in stimuli[:cut]:
        sim.step(vec)
    return checkpoint_to_words(snapshot(sim))


class TestCorruptionMatrix:
    """Every torn/corrupt variant of both on-disk formats must be
    *rejected* (CheckpointError) — never silently mis-restored."""

    @pytest.fixture(scope="class")
    def images(self, ckpt_design):
        circuit, design, stimuli, _ = ckpt_design
        v2 = _mid_run_words(design, stimuli)
        v1 = _v1_words(checkpoint_from_words(v2))
        return {"v1": v1, "v2": v2}

    @pytest.mark.parametrize("fmt", ["v1", "v2"])
    def test_intact_image_loads(self, images, fmt, ckpt_design):
        circuit, design, stimuli, golden = ckpt_design
        ckpt = checkpoint_from_words(images[fmt])
        assert ckpt.cycle == 17
        assert ckpt.batch == 1
        resumed = restore(design.simulator(), ckpt)
        assert resumed.run(stimuli[17:]) == golden[17:]

    @pytest.mark.parametrize("fmt", ["v1", "v2"])
    def test_truncation_at_every_section_boundary(self, images, fmt, tmp_path):
        words = images[fmt]
        sizes = [sec.size for sec in unseal(words, error=CheckpointError)]
        boundaries = [0]
        for size in sizes:
            boundaries.append(boundaries[-1] + size)
        assert len(boundaries) == 6  # 5 sections
        path = str(tmp_path / f"torn-{fmt}.gemk")
        for cut in boundaries:
            words[:cut].tofile(path)
            with pytest.raises(CheckpointError):
                load_checkpoint(path)

    @pytest.mark.parametrize("fmt", ["v1", "v2"])
    def test_truncated_footer(self, images, fmt, tmp_path):
        path = str(tmp_path / f"footless-{fmt}.gemk")
        images[fmt][:-1].tofile(path)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    @pytest.mark.parametrize("fmt", ["v1", "v2"])
    def test_flipped_section_crc(self, images, fmt, tmp_path):
        words = images[fmt].copy()
        words[-3] ^= np.uint32(1)  # last section's stored CRC
        path = str(tmp_path / f"badcrc-{fmt}.gemk")
        words.tofile(path)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    @pytest.mark.parametrize("fmt", ["v1", "v2"])
    def test_flipped_body_word(self, images, fmt, tmp_path):
        words = images[fmt].copy()
        words[words.size // 2] ^= np.uint32(1)
        path = str(tmp_path / f"flip-{fmt}.gemk")
        words.tofile(path)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_zero_length_file(self, tmp_path):
        path = str(tmp_path / "empty.gemk")
        open(path, "wb").close()
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(str(tmp_path / "nope.gemk"))

    def test_bad_magic(self, images, tmp_path):
        words = images["v2"].copy()
        # Re-seal so only the magic is wrong, not the CRC.
        sections = unseal(words, error=CheckpointError)
        sections[0] = sections[0].copy()
        sections[0][0] = 0xDEADBEEF
        path = str(tmp_path / "magic.gemk")
        seal(sections).tofile(path)
        with pytest.raises(CheckpointError, match="bad magic"):
            load_checkpoint(path)


class TestJournal:
    def _populated(self, tmp_path, ckpt_design, keep=3):
        circuit, design, stimuli, _ = ckpt_design
        manager = CheckpointManager(str(tmp_path), every=6, keep=keep)
        sim = design.simulator()
        for vec in stimuli:
            sim.step(vec)
            manager.maybe_save(sim)
        return manager

    def test_journal_records_chain(self, tmp_path, ckpt_design):
        manager = self._populated(tmp_path, ckpt_design)
        entries = manager.read_journal()
        assert [e["cycle"] for e in entries] == [18, 24, 30]
        for entry in entries:
            path = tmp_path / entry["file"]
            assert path.exists()
            data = path.read_bytes()
            assert entry["size"] == len(data)
            assert entry["crc32"] == zlib.crc32(data) & 0xFFFFFFFF
            assert entry["batch"] == 1

    def test_journal_picks_predecessor_past_corrupt_newest(
        self, tmp_path, ckpt_design
    ):
        manager = self._populated(tmp_path, ckpt_design)
        newest = manager.paths()[-1]
        data = bytearray(open(newest, "rb").read())
        data[40] ^= 0xFF  # same size, wrong image CRC
        open(newest, "wb").write(bytes(data))
        recovered = manager.recover()
        assert recovered is not None
        assert recovered.checkpoint.cycle == 24
        assert recovered.path.endswith(f"ckpt-{24:012d}.gemk")
        assert len(recovered.skipped) == 1
        assert "CRC mismatch" in recovered.skipped[0][1]

    def test_journal_detects_torn_write_by_size(self, tmp_path, ckpt_design):
        manager = self._populated(tmp_path, ckpt_design)
        newest = manager.paths()[-1]
        data = open(newest, "rb").read()
        open(newest, "wb").write(data[: len(data) // 2])
        recovered = manager.recover()
        assert recovered.checkpoint.cycle == 24
        assert "torn write" in recovered.skipped[0][1]

    def test_journal_skips_missing_file(self, tmp_path, ckpt_design):
        manager = self._populated(tmp_path, ckpt_design)
        os.remove(manager.paths()[-1])
        recovered = manager.recover()
        assert recovered.checkpoint.cycle == 24
        assert "file missing" in recovered.skipped[0][1]

    def test_lost_journal_falls_back_to_scan(self, tmp_path, ckpt_design):
        manager = self._populated(tmp_path, ckpt_design)
        os.remove(manager.journal_path)
        assert manager.read_journal() == []
        recovered = manager.recover()
        assert recovered is not None
        assert recovered.checkpoint.cycle == 30

    def test_unknown_journal_version_ignored(self, tmp_path, ckpt_design):
        manager = self._populated(tmp_path, ckpt_design)
        doc = {"version": JOURNAL_VERSION + 1, "entries": [{"file": "x"}]}
        open(manager.journal_path, "w").write(json.dumps(doc))
        assert manager.read_journal() == []
        assert manager.recover().checkpoint.cycle == 30  # scan fallback

    def test_garbage_journal_ignored(self, tmp_path, ckpt_design):
        manager = self._populated(tmp_path, ckpt_design)
        open(manager.journal_path, "w").write("{not json")
        assert manager.read_journal() == []
        assert manager.recover().checkpoint.cycle == 30

    def test_stale_tmp_swept_on_recovery(self, tmp_path, ckpt_design):
        manager = self._populated(tmp_path, ckpt_design)
        stale = tmp_path / "ckpt-000000000099.gemk.tmp"
        stale.write_bytes(b"torn write leftovers")
        recovered = manager.recover()
        assert recovered.checkpoint.cycle == 30
        assert not stale.exists()

    def test_all_checkpoints_corrupt_returns_none(self, tmp_path, ckpt_design):
        manager = self._populated(tmp_path, ckpt_design)
        for path in manager.paths():
            open(path, "wb").write(b"\x00" * 16)
        assert manager.recover() is None
        assert manager.latest() is None

    def test_journal_survives_entry_for_foreign_path(self, tmp_path, ckpt_design):
        """A malicious/corrupt entry naming a path outside the directory is
        rejected as malformed, not followed."""
        manager = self._populated(tmp_path, ckpt_design)
        entries = manager.read_journal()
        entries.append({"file": "../../etc/passwd", "cycle": 99, "size": 1, "crc32": 0})
        doc = {"version": JOURNAL_VERSION, "entries": entries}
        open(manager.journal_path, "w").write(json.dumps(doc))
        recovered = manager.recover()
        assert recovered.checkpoint.cycle == 30
        assert any("malformed" in reason for _, reason in recovered.skipped)


class TestResolveResume:
    def test_latest_in_directory(self, tmp_path, ckpt_design):
        circuit, design, stimuli, golden = ckpt_design
        manager = CheckpointManager(str(tmp_path), every=6)
        sim = design.simulator()
        for vec in stimuli:
            sim.step(vec)
            manager.maybe_save(sim)
        for target in (True, "latest"):
            recovered = resolve_resume(target, str(tmp_path))
            assert recovered.checkpoint.cycle == 30
        # A directory passed as the target itself works the same way.
        assert resolve_resume(str(tmp_path)).checkpoint.cycle == 30

    def test_exact_file(self, tmp_path, ckpt_design):
        circuit, design, stimuli, golden = ckpt_design
        sim = design.simulator()
        for vec in stimuli[:11]:
            sim.step(vec)
        path = str(tmp_path / "exact.gemk")
        save_checkpoint(snapshot(sim), path)
        recovered = resolve_resume(path)
        assert recovered.checkpoint.cycle == 11
        assert recovered.path == path
        resumed = restore(design.simulator(), recovered.checkpoint)
        assert resumed.run(stimuli[11:]) == golden[11:]

    def test_corrupt_exact_file_raises(self, tmp_path):
        path = str(tmp_path / "bad.gemk")
        open(path, "wb").write(b"\x01\x02\x03\x04" * 8)
        with pytest.raises(CheckpointError):
            resolve_resume(path)

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no valid checkpoint"):
            resolve_resume(str(tmp_path))

    def test_latest_without_directory_raises(self):
        with pytest.raises(CheckpointError, match="requires a checkpoint directory"):
            resolve_resume("latest", None)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            resolve_resume(str(tmp_path / "ghost.gemk"))


class TestLanePlaneCheckpoints:
    """Format v3: multi-word lane planes, v2 compatibility, and
    backend-independence of the on-disk state."""

    def _lane_vectors(self, circuit, batch, cycles, seed=0):
        return [random_vectors(circuit, seed + lane, cycles) for lane in range(batch)]

    def test_roundtrip_batch_256_with_quarantine(self, tmp_path):
        circuit, design = _compile(33, with_memory=True)
        batch, cycles = 256, 18
        streams = self._lane_vectors(circuit, batch, cycles, seed=60)
        vecs = [[s[c] for s in streams] for c in range(cycles)]
        golden = design.simulator(batch=batch)
        golden.quarantine_lanes([3, 70, 255])
        golden_rows = golden.run_lanes(vecs)

        sim = design.simulator(batch=batch)
        sim.quarantine_lanes([3, 70, 255])
        sim.run_lanes(vecs[:11])
        path = os.path.join(tmp_path, "plane.gemk")
        save_checkpoint(snapshot(sim), path)
        ckpt = load_checkpoint(path)
        assert ckpt.batch == 256
        assert ckpt.words == 4
        assert ckpt.global_state.shape[1] == 4
        # the quarantined lanes' zeroed-then-deterministic bits are part
        # of the snapshot, so the resumed run needs no re-quarantine
        resumed = restore(design.simulator(batch=batch), ckpt)
        assert resumed.run_lanes(vecs[11:]) == golden_rows[11:]
        assert np.array_equal(resumed.global_state, golden.global_state)

    def test_v2_file_loads_as_single_word(self):
        """A v2 container (9-word header, no K) hydrates as K=1 — the
        K==1 v3 layout is byte-identical past the header."""
        circuit, design = _compile(33, with_memory=True)
        sim = design.simulator(batch=6)
        for vec in random_vectors(circuit, 9, 14):
            sim.step(vec)
        sections = unseal(checkpoint_to_words(snapshot(sim)), error=CheckpointError)
        header = sections[0][:9].copy()  # drop the K word
        header[1] = 2  # rewrite the version stamp to v2
        v2_words = seal([header, *sections[1:]])
        back = checkpoint_from_words(v2_words)
        assert back.words == 1
        assert back.batch == 6
        assert np.array_equal(back.global_state, sim.global_state)
        resumed = restore(design.simulator(batch=6), back)
        assert np.array_equal(resumed.global_state, sim.global_state)

    def test_v3_rejects_bad_lane_geometry(self):
        circuit, design = _compile(33)
        sim = design.simulator(batch=128)
        sim.step({})
        sections = unseal(checkpoint_to_words(snapshot(sim)), error=CheckpointError)
        header = sections[0].copy()
        header[9] = 3  # K=3 but batch stays 128 — inconsistent
        with pytest.raises(CheckpointError, match="lane geometry"):
            checkpoint_from_words(seal([header, *sections[1:]]))

    def test_cross_backend_resume_bit_identical(self, tmp_path):
        """A checkpoint saved under the numpy hot loop resumes under a
        compiled backend (and vice versa) with identical state."""
        from repro.core.backend import ArrayBackend

        class RefBackend(ArrayBackend):
            name = "ref"

        circuit, design = _compile(35, with_memory=True)
        batch, cycles = 128, 16
        streams = self._lane_vectors(circuit, batch, cycles, seed=80)
        vecs = [[s[c] for s in streams] for c in range(cycles)]
        golden = design.simulator(batch=batch)
        golden_rows = golden.run_lanes(vecs)

        saver = design.simulator(batch=batch, backend="numpy")
        saver.run_lanes(vecs[:9])
        path = os.path.join(tmp_path, "xback.gemk")
        save_checkpoint(snapshot(saver), path)

        compiled = restore(
            design.simulator(batch=batch, backend=RefBackend()), load_checkpoint(path)
        )
        assert compiled.run_lanes(vecs[9:]) == golden_rows[9:]
        assert np.array_equal(compiled.global_state, golden.global_state)

        # and back: state written under the compiled path resumes on numpy
        save_checkpoint(snapshot(compiled), path)
        back = restore(design.simulator(batch=batch), load_checkpoint(path))
        assert np.array_equal(back.global_state, golden.global_state)

    @pytest.mark.skipif(
        not pytest.importorskip("importlib.util").find_spec("numba"),
        reason="numba not installed",
    )
    def test_cross_backend_resume_numba(self, tmp_path):
        circuit, design = _compile(35, with_memory=True)
        batch, cycles = 128, 12
        streams = self._lane_vectors(circuit, batch, cycles, seed=90)
        vecs = [[s[c] for s in streams] for c in range(cycles)]
        golden = design.simulator(batch=batch)
        golden_rows = golden.run_lanes(vecs)
        saver = design.simulator(batch=batch, backend="numpy")
        saver.run_lanes(vecs[:7])
        path = os.path.join(tmp_path, "numba.gemk")
        save_checkpoint(snapshot(saver), path)
        resumed = restore(
            design.simulator(batch=batch, backend="numba"), load_checkpoint(path)
        )
        assert resumed.run_lanes(vecs[7:]) == golden_rows[7:]
        assert np.array_equal(resumed.global_state, golden.global_state)
