"""Per-lane quarantine and retry backoff (repro.runtime.supervisor).

A persistently corrupt lane must be masked out of the batch while every
healthy lane continues bit-identically — in both engine modes — and the
backoff schedule must follow the documented exponential exactly.
"""

import numpy as np
import pytest

from repro.core.boomerang import BoomerangConfig
from repro.core.compiler import GemCompiler, GemConfig
from repro.core.partition import PartitionConfig
from repro.obs.metrics import REGISTRY
from repro.runtime.supervisor import (
    LANE_OUTCOMES,
    Supervisor,
    state_digest_lanes,
)
from tests.helpers import random_circuit, random_vectors

BATCH = 8


@pytest.fixture(scope="module")
def compiled():
    circuit = random_circuit(701, n_ops=50, n_regs=3, with_memory=True)
    design = GemCompiler(
        GemConfig(
            partition=PartitionConfig(gates_per_partition=400),
            boomerang=BoomerangConfig(width_log2=10),
        )
    ).compile(circuit)
    stimuli = random_vectors(circuit, 8, 30)
    return circuit, design, stimuli


def _persistent_lane_fault(victim: int, start: int):
    """A hook that corrupts lane ``victim``'s bit plane every cycle."""

    def hook(interp, cycle):
        if cycle >= start:
            interp.global_state[0] ^= np.uint64(1) << np.uint64(victim)

    return hook


class TestLaneDigests:
    def test_lanes_identical_under_broadcast(self, compiled):
        """Broadcast stimuli drive every lane identically, so the RAM-free
        per-lane digests must agree lane to lane."""
        circuit, design, stimuli = compiled
        sim = design.simulator(batch=BATCH)
        for vec in stimuli[:10]:
            sim.step_lanes(vec)
        digests = state_digest_lanes(sim)
        assert len(digests) == BATCH
        assert len(set(digests)) == 1

    def test_single_lane_flip_localized(self, compiled):
        circuit, design, stimuli = compiled
        a = design.simulator(batch=BATCH)
        b = design.simulator(batch=BATCH)
        for vec in stimuli[:5]:
            a.step_lanes(vec)
            b.step_lanes(vec)
        victim = 5
        a.global_state[3] ^= np.uint64(1) << np.uint64(victim)
        da, db = state_digest_lanes(a), state_digest_lanes(b)
        assert [lane for lane in range(BATCH) if da[lane] != db[lane]] == [victim]


class TestQuarantine:
    @pytest.mark.parametrize("engine_mode", ["fused", "legacy"])
    def test_persistent_lane_fault_quarantined_healthy_bit_identical(
        self, compiled, engine_mode
    ):
        """Acceptance: quarantining lane L leaves every other lane's output
        stream bit-identical to an undisturbed run, in both engine modes."""
        circuit, design, stimuli = compiled
        victim = 3
        golden = Supervisor(design, batch=BATCH, engine_mode=engine_mode).run(stimuli)
        assert not golden.degraded

        result = Supervisor(
            design,
            batch=BATCH,
            checkpoint_every=6,
            engine_mode=engine_mode,
            fault_hook=_persistent_lane_fault(victim, start=15),
        ).run(stimuli)
        assert not result.degraded
        assert result.quarantined_lanes == [victim]
        assert result.lane_outcomes[victim] == "quarantined"
        assert any("quarantined lane(s) 3" in e for e in result.events)
        healthy = [lane for lane in range(BATCH) if lane != victim]
        for lane in healthy:
            assert result.lane_outcomes[lane] == "ok"
        assert len(result.lane_outputs) == len(golden.lane_outputs)
        for got, want in zip(result.lane_outputs, golden.lane_outputs):
            for lane in healthy:
                assert got[lane] == want[lane]

    def test_quarantine_counted_in_metrics(self, compiled):
        circuit, design, stimuli = compiled
        counter = REGISTRY.counter(
            "gem_supervisor_quarantined_lanes_total",
            help="stimulus lanes quarantined for persistent divergence",
        )
        before = counter.value
        result = Supervisor(
            design,
            batch=BATCH,
            checkpoint_every=6,
            fault_hook=_persistent_lane_fault(1, start=12),
        ).run(stimuli)
        assert result.quarantined_lanes == [1]
        assert counter.value - before == 1

    def test_transient_lane_fault_recovers_without_quarantine(self, compiled):
        """A one-shot lane fault stays on the rollback/retry path: the
        default ``quarantine_after=2`` requires a *streak*."""
        circuit, design, stimuli = compiled
        golden = Supervisor(design, batch=BATCH).run(stimuli)
        fired = []

        def hook(interp, cycle):
            if cycle == 14 and not fired:
                fired.append(cycle)
                interp.global_state[0] ^= np.uint64(1) << np.uint64(6)

        result = Supervisor(
            design, batch=BATCH, checkpoint_every=6, fault_hook=hook
        ).run(stimuli)
        assert not result.degraded
        assert result.quarantined_lanes == []
        assert result.lane_outcomes[6] == "recovered"
        assert result.faults_detected == 1
        assert result.lane_outputs == golden.lane_outputs

    def test_quarantine_after_one_is_immediate(self, compiled):
        circuit, design, stimuli = compiled
        result = Supervisor(
            design,
            batch=BATCH,
            checkpoint_every=6,
            quarantine_after=1,
            fault_hook=_persistent_lane_fault(2, start=15),
        ).run(stimuli)
        assert result.quarantined_lanes == [2]
        assert result.retries == 1  # no second divergence needed

    def test_quarantine_after_validated(self, compiled):
        circuit, design, stimuli = compiled
        with pytest.raises(ValueError, match="quarantine_after"):
            Supervisor(design, quarantine_after=0)

    def test_all_lanes_quarantined_degrades(self, compiled):
        """Corruption across the whole word consumes every lane, and the
        run falls back to the gate-level engine."""
        circuit, design, stimuli = compiled

        def hook(interp, cycle):
            if cycle >= 15:
                interp.global_state[0] ^= np.uint64(0xFF)  # all 8 lanes

        result = Supervisor(
            design,
            batch=BATCH,
            checkpoint_every=6,
            quarantine_after=1,
            fault_hook=hook,
        ).run(stimuli)
        assert result.degraded
        assert result.quarantined_lanes == list(range(BATCH))
        assert all(
            result.lane_outcomes[lane] == "quarantined" for lane in range(BATCH)
        )
        assert any("every lane quarantined" in e for e in result.events)

    def test_lane_outcome_vocabulary(self, compiled):
        circuit, design, stimuli = compiled
        result = Supervisor(
            design,
            batch=BATCH,
            checkpoint_every=6,
            fault_hook=_persistent_lane_fault(0, start=15),
        ).run(stimuli)
        assert set(result.lane_outcomes) == set(range(BATCH))
        assert all(v in LANE_OUTCOMES for v in result.lane_outcomes.values())


class TestBackoff:
    def test_backoff_schedule_pinned(self, compiled):
        """Satellite: the exact exponential — base, 2*base, 4*base — via
        the injectable ``sleep_fn``, then degrade on the fourth attempt."""
        circuit, design, stimuli = compiled
        sleeps = []

        def hook(interp, cycle):
            if cycle >= 10:
                interp.global_state[0] ^= np.uint64(1)  # unrecoverable

        result = Supervisor(
            design,
            batch=1,
            checkpoint_every=8,
            max_retries=3,
            backoff_base=0.25,
            backoff_cap=10.0,
            sleep_fn=sleeps.append,
            fault_hook=hook,
        ).run(stimuli)
        assert result.degraded
        assert sleeps == [0.25, 0.5, 1.0]

    def test_backoff_cap_clamps(self, compiled):
        circuit, design, stimuli = compiled
        sleeps = []

        def hook(interp, cycle):
            if cycle >= 10:
                interp.global_state[0] ^= np.uint64(1)

        Supervisor(
            design,
            batch=1,
            checkpoint_every=8,
            max_retries=3,
            backoff_base=0.25,
            backoff_cap=0.4,
            sleep_fn=sleeps.append,
            fault_hook=hook,
        ).run(stimuli)
        assert sleeps == [0.25, 0.4, 0.4]

    def test_zero_base_never_sleeps(self, compiled):
        circuit, design, stimuli = compiled
        sleeps = []
        fired = []

        def hook(interp, cycle):
            if cycle == 12 and not fired:
                fired.append(cycle)
                interp.global_state[0] ^= np.uint64(1)

        result = Supervisor(
            design, batch=1, checkpoint_every=8, sleep_fn=sleeps.append,
            fault_hook=hook,
        ).run(stimuli)
        assert not result.degraded
        assert sleeps == []
