"""Algorithm 1: partition merging (repro.core.merging)."""

import pytest

from repro.core.boomerang import BoomerangConfig
from repro.core.merging import merge_partitions
from repro.core.partition import PartitionConfig, partition_design
from repro.core.synthesis import synthesize
from tests.helpers import random_circuit


def _setup(seed=3, n_ops=120, gates_per_partition=150, width_log2=11, stages=1):
    eaig = synthesize(random_circuit(seed, n_ops=n_ops, n_regs=6)).eaig
    plan = partition_design(
        eaig,
        PartitionConfig(gates_per_partition=gates_per_partition, num_stages=stages),
    )
    return eaig, plan, BoomerangConfig(width_log2=width_log2)


class TestMerging:
    def test_reduces_partition_count(self):
        eaig, plan, cfg = _setup()
        result = merge_partitions(eaig, plan, cfg)
        assert result.partitions_after <= result.partitions_before
        assert result.partitions_after == result.plan.num_partitions

    def test_merged_plan_validates(self):
        eaig, plan, cfg = _setup(seed=4)
        result = merge_partitions(eaig, plan, cfg)
        result.plan.validate()

    def test_placements_align_with_plan(self):
        eaig, plan, cfg = _setup(seed=5)
        result = merge_partitions(eaig, plan, cfg)
        assert len(result.placements) == result.plan.num_partitions
        for placed, spec in zip(result.placements, result.plan.partitions):
            assert placed.spec is spec
            assert placed.num_slots <= cfg.state_size

    def test_merging_never_increases_replication(self):
        eaig, plan, cfg = _setup(seed=6)
        before = plan.replication_cost()
        result = merge_partitions(eaig, plan, cfg)
        assert result.plan.replication_cost() <= before + 1e-9

    def test_stages_not_merged_across(self):
        eaig, plan, cfg = _setup(seed=7, n_ops=160, stages=2)
        result = merge_partitions(eaig, plan, cfg)
        for spec in result.plan.partitions:
            stages = {spec.stage}
            assert len(stages) == 1

    def test_tight_width_blocks_merging(self):
        # With a core barely big enough for single partitions, nothing merges.
        eaig, plan, _ = _setup(seed=8, gates_per_partition=400)
        from repro.core.placement import place_partition

        slots = [
            place_partition(eaig, spec, BoomerangConfig(width_log2=13)).num_slots
            for spec in plan.partitions
        ]
        if len(slots) >= 2:
            # width just above the biggest single partition
            need = max(slots)
            bits = max(6, (need - 1).bit_length())
            cfg = BoomerangConfig(width_log2=bits)
            result = merge_partitions(eaig, plan, cfg)
            # All original partitions stay mappable; merging is limited by
            # the width, so utilization is high on merged cores.
            assert result.partitions_after >= 1

    def test_stats_fields(self):
        eaig, plan, cfg = _setup(seed=9)
        result = merge_partitions(eaig, plan, cfg)
        stats = result.stats()
        assert 0.0 <= stats["mean_utilization"] <= 1.0
        assert stats["partitions_before"] == plan.num_partitions
