"""Multi-stage partitioning of whole designs (repro.core.partition)."""

import pytest

from repro.core.eaig import NodeKind, lit_node
from repro.core.partition import (
    PartitionConfig,
    build_endpoint_groups,
    choose_cut_levels,
    partition_design,
)
from repro.core.synthesis import synthesize
from repro.rtl import CircuitBuilder
from tests.helpers import random_circuit


def _design(seed=1, n_ops=80):
    return synthesize(random_circuit(seed, n_ops=n_ops, n_regs=6, with_memory=True)).eaig


class TestEndpointGroups:
    def test_groups_cover_everything(self):
        eaig = _design()
        groups = build_endpoint_groups(eaig)
        kinds = {}
        for g in groups:
            kinds[g.kind] = kinds.get(g.kind, 0) + 1
        assert kinds.get("ff", 0) == len(eaig.ffs)
        assert kinds.get("ram", 0) == len(eaig.rams)
        assert kinds.get("po", 0) >= 1

    def test_ram_groups_keep_all_ports(self):
        eaig = _design()
        for g in build_endpoint_groups(eaig):
            if g.kind == "ram":
                ram = eaig.rams[g.ram_index]
                assert set(g.roots) == set(ram.port_literals())

    def test_po_groups_by_word(self):
        eaig = _design()
        po_names = {g.po_name for g in build_endpoint_groups(eaig) if g.kind == "po"}
        expected = {name.rsplit("[", 1)[0] for name, _ in eaig.outputs}
        assert po_names == expected


class TestCutLevels:
    def test_single_stage_no_cuts(self):
        eaig = _design()
        assert choose_cut_levels(eaig, build_endpoint_groups(eaig), 1) == []

    def test_two_stage_cut_in_range(self):
        eaig = _design(seed=4, n_ops=120)
        cuts = choose_cut_levels(eaig, build_endpoint_groups(eaig), 2)
        if cuts:  # shallow designs may decline to cut
            assert 1 <= cuts[0] < eaig.depth()

    def test_cuts_are_increasing(self):
        eaig = _design(seed=5, n_ops=150)
        cuts = choose_cut_levels(eaig, build_endpoint_groups(eaig), 3)
        assert cuts == sorted(set(cuts))


class TestPartitionDesign:
    @pytest.mark.parametrize("stages", [1, 2])
    def test_plan_validates(self, stages):
        eaig = _design(seed=7, n_ops=100)
        plan = partition_design(
            eaig, PartitionConfig(gates_per_partition=300, num_stages=stages)
        )
        plan.validate()  # raises on any ownership/source violation
        assert plan.num_partitions >= 1

    def test_every_gate_owned_somewhere(self):
        eaig = _design(seed=8)
        plan = partition_design(eaig, PartitionConfig(gates_per_partition=300))
        owned = set()
        for spec in plan.partitions:
            owned.update(spec.nodes)
        # Every live gate (reachable from endpoints) is owned; dead gates
        # need not be.
        live = eaig.cone(eaig.state_roots())
        assert live <= owned

    def test_stage_sources_only_from_earlier_stages(self):
        eaig = _design(seed=9, n_ops=140)
        plan = partition_design(
            eaig, PartitionConfig(gates_per_partition=200, num_stages=2)
        )
        published_by_stage: dict[int, set[int]] = {}
        for spec in plan.partitions:
            published_by_stage.setdefault(spec.stage, set()).update(spec.cut_nodes)
        for spec in plan.partitions:
            for src in spec.sources:
                if eaig.kind[src] is NodeKind.AND:
                    earlier = set()
                    for s in range(spec.stage):
                        earlier |= published_by_stage.get(s, set())
                    assert src in earlier

    def test_multi_stage_reduces_replication_on_shared_designs(self):
        """Fig. 5's effect: staging cuts replication at high partition
        counts (checked loosely: staged cost must not explode)."""
        eaig = _design(seed=10, n_ops=200)
        one = partition_design(
            eaig, PartitionConfig(gates_per_partition=150, num_stages=1, overpartition=1.0)
        )
        two = partition_design(
            eaig, PartitionConfig(gates_per_partition=150, num_stages=2, overpartition=1.0)
        )
        # Small random circuits only show the effect weakly (the full-size
        # demonstration is benchmarks/test_fig5_repcut_stages.py); here we
        # only require staging not to blow the cost up.
        assert two.replication_cost() <= one.replication_cost() * 1.5 + 0.05

    def test_stats_shape(self):
        eaig = _design(seed=11)
        plan = partition_design(eaig, PartitionConfig(gates_per_partition=400))
        stats = plan.stats()
        assert stats["partitions"] == plan.num_partitions
        assert len(stats["stage_partitions"]) == stats["stages"]

    def test_replication_cost_nonnegative(self):
        eaig = _design(seed=12)
        plan = partition_design(eaig, PartitionConfig(gates_per_partition=250))
        assert plan.replication_cost() >= 0.0


class TestTrivialDesigns:
    def test_pure_combinational(self):
        b = CircuitBuilder()
        x = b.input("x", 8)
        y = b.input("y", 8)
        b.output("z", x + y)
        eaig = synthesize(b.build()).eaig
        plan = partition_design(eaig, PartitionConfig())
        plan.validate()
        assert plan.num_partitions == 1

    def test_wire_only_design(self):
        b = CircuitBuilder()
        x = b.input("x", 4)
        b.output("y", x)
        eaig = synthesize(b.build()).eaig
        plan = partition_design(eaig, PartitionConfig())
        plan.validate()
