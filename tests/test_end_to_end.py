"""Flagship equivalence: all five engines in lockstep on real designs.

This is the repository's central correctness statement: the golden
word-level simulator, the event-driven baseline, the compiled full-cycle
baseline, the gate-level baseline, and the GEM interpreter (through
synthesis, multi-stage RepCut, merging, placement and binary bitstream)
produce identical outputs on every cycle of real workloads.
"""

import pytest

from repro.core.boomerang import BoomerangConfig
from repro.core.compiler import GemCompiler, GemConfig
from repro.core.partition import PartitionConfig
from repro.core.ram_mapping import RamMappingConfig
from repro.core.synthesis import SynthesisConfig, synthesize
from repro.designs.gemmini_like import GemminiScale, build_gemmini_like
from repro.designs.nvdla_like import NvdlaScale, build_nvdla_like
from repro.designs.openpiton_like import OpenPitonScale, build_openpiton_like
from repro.designs.rocket_like import RocketScale, build_rocket_like
from repro.designs.workloads import (
    gemmini_workloads,
    nvdla_workloads,
    openpiton_workloads,
    rocket_workloads,
)
from repro.rtl import Netlist, WordSim
from repro.simref.cycle_sim import CompiledCycleSim
from repro.simref.event_sim import EventDrivenSim
from repro.simref.gate_sim import GateLevelSim
from tests.helpers import lockstep


def _config():
    return GemConfig(
        synthesis=SynthesisConfig(ram=RamMappingConfig(addr_bits=5, data_bits=16)),
        partition=PartitionConfig(gates_per_partition=2500),
        boomerang=BoomerangConfig(width_log2=13),  # the paper's 8192-bit core
    )


def _all_engines(circuit):
    netlist = Netlist(circuit)
    synth = synthesize(circuit, _config().synthesis)
    design = GemCompiler(_config()).compile(circuit)
    return {
        "word": WordSim(netlist),
        "event": EventDrivenSim(synth),
        "compiled": CompiledCycleSim(netlist),
        "gate": GateLevelSim(synth),
        "gem": design.simulator(),
    }


@pytest.mark.slow
@pytest.mark.parametrize(
    "workload", ["dhrystone", "pmp"], ids=["dhrystone", "pmp"]
)
def test_rocket_all_engines(workload):
    scale = RocketScale(imem_depth=128, dmem_depth=128, rocc_macs=1)
    circuit = build_rocket_like(scale)
    wl = rocket_workloads(dmem_depth=scale.dmem_depth)[workload]
    engines = _all_engines(circuit)
    lockstep(engines, wl.stimuli)


@pytest.mark.slow
def test_openpiton2_all_engines():
    scale = OpenPitonScale(cores=2, imem_depth=64, dmem_depth=64)
    circuit = build_openpiton_like(scale)
    wl = openpiton_workloads(cores=2, dmem_depth=64)["fp_mt_combo0"]
    engines = _all_engines(circuit)
    lockstep(engines, wl.stimuli)


@pytest.mark.slow
def test_nvdla_all_engines():
    scale = NvdlaScale(engines=2, lanes=2, taps=2, act_depth=64, wgt_depth=16, out_depth=64)
    circuit = build_nvdla_like(scale)
    wl = nvdla_workloads(scale)["pdpmax_int8_0"]
    engines = _all_engines(circuit)
    lockstep(engines, wl.stimuli)


@pytest.mark.slow
def test_gemmini_all_engines():
    scale = GemminiScale(dim=2, spad_depth=32)
    circuit = build_gemmini_like(scale)
    wl = gemmini_workloads(scale)["tiled_matmul_ws_perf"]
    engines = _all_engines(circuit)
    lockstep(engines, wl.stimuli)
