"""Execution-backend seam: resolution, fallback, and kernel equivalence.

The contract under test (docs/ENGINE.md §6):

* ``resolve_backend`` maps names to live backends, falls back to numpy
  with exactly one warning per process when a dependency is missing
  (mirroring the ``FusionError`` → legacy fallback regression pin in
  test_regressions.py), and hard-fails only under ``strict=True``;
* the generic ``ArrayBackend.compile_stage`` path — the reference every
  compiled backend mirrors — is bit-identical to the hand-tuned numpy
  executor at every lane geometry;
* the numba backend (when installed) is bit-identical too.
"""

import logging

import numpy as np
import pytest

import repro.core.backend as backend_mod
from repro.core.backend import (
    ArrayBackend,
    NumpyBackend,
    available_backends,
    resolve_backend,
    reset_backend_state,
)
from repro.core.boomerang import BoomerangConfig
from repro.core.compiler import GemCompiler, GemConfig
from repro.core.partition import PartitionConfig
from repro.errors import BackendUnavailableError, GemError
from tests.helpers import random_circuit

try:
    import numba  # noqa: F401

    HAVE_NUMBA = True
except ImportError:
    HAVE_NUMBA = False


@pytest.fixture(autouse=True)
def _clean_backend_state():
    reset_backend_state()
    yield
    reset_backend_state()


def _design(seed=7, n_ops=40, with_memory=False):
    circuit = random_circuit(seed, n_ops=n_ops, with_memory=with_memory)
    return GemCompiler(
        GemConfig(
            partition=PartitionConfig(gates_per_partition=400),
            boomerang=BoomerangConfig(width_log2=10),
        )
    ).compile(circuit)


class RefBackend(ArrayBackend):
    """The generic compile_stage path under a non-numpy name, so the
    executor takes the compiled-kernel branch instead of its hot loop."""

    name = "ref"


class TestResolution:
    def test_none_means_numpy(self):
        assert resolve_backend(None).name == "numpy"
        assert isinstance(resolve_backend(None), NumpyBackend)

    def test_instance_passes_through(self):
        inst = RefBackend()
        assert resolve_backend(inst) is inst

    def test_unknown_name_raises_typed(self):
        with pytest.raises(BackendUnavailableError) as exc:
            resolve_backend("tpu")
        assert isinstance(exc.value, GemError)
        assert "tpu" in str(exc.value)

    def test_instances_are_cached(self):
        assert resolve_backend("numpy") is resolve_backend("numpy")

    def test_available_backends_always_has_numpy(self):
        assert "numpy" in available_backends()

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed here")
    def test_strict_raises_when_numba_missing(self):
        with pytest.raises(BackendUnavailableError):
            resolve_backend("numba", strict=True)


class TestFallbackWarnsOnce:
    """Missing-dependency fallback mirrors the FusionError → legacy pin."""

    class _Unavailable(ArrayBackend):
        name = "numba"

        def __init__(self):
            raise BackendUnavailableError("deliberately unavailable for the test")

    def test_fallback_warns_once_and_still_resolves(self, monkeypatch, caplog):
        monkeypatch.setitem(backend_mod._CLASSES, "numba", self._Unavailable)
        with caplog.at_level(logging.WARNING, logger="repro.core.backend"):
            first = resolve_backend("numba")
            second = resolve_backend("numba")
        warnings = [
            r for r in caplog.records if "falling back to numpy" in r.getMessage()
        ]
        assert len(warnings) == 1, "exactly one fallback warning per process"
        assert "deliberately unavailable" in warnings[0].getMessage()
        assert first.name == "numpy" and second.name == "numpy"

    def test_simulator_falls_back_and_runs(self, monkeypatch, caplog):
        monkeypatch.setitem(backend_mod._CLASSES, "numba", self._Unavailable)
        design = _design()
        with caplog.at_level(logging.WARNING, logger="repro.core.backend"):
            sim = design.simulator(batch=4, backend="numba")
        assert sim.backend.name == "numpy"
        sim.step({})  # and it still simulates

    def test_legacy_mode_downgrades_compiled_backend(self, caplog):
        design = _design()
        with caplog.at_level(logging.INFO, logger="repro.core.interpreter"):
            sim = design.simulator(mode="legacy", backend=RefBackend())
        assert sim.mode == "legacy"
        assert sim.backend.name == "numpy"


class TestCompiledKernelEquivalence:
    """compile_stage schedules must match the numpy hot loop bit-for-bit."""

    @pytest.mark.parametrize("batch", [1, 3, 64, 128, 256])
    def test_generic_compile_stage_matches_numpy(self, batch):
        design = _design(seed=11, n_ops=60, with_memory=True)
        ref = design.simulator(batch=batch, backend="numpy")
        dut = design.simulator(batch=batch, backend=RefBackend())
        assert dut.mode == "fused"
        rng = np.random.default_rng(batch)
        names = list(ref._pi_tables)
        for _ in range(24):
            vecs = [
                {n: int(v) for n, v in zip(names, rng.integers(0, 1 << 12, len(names)))}
                for _ in range(batch)
            ]
            outs_ref = ref.step_lanes(vecs)
            outs_dut = dut.step_lanes(vecs)
            assert outs_ref == outs_dut
        assert np.array_equal(ref.global_state, dut.global_state)
        for a, b in zip(ref.ram_arrays, dut.ram_arrays):
            assert np.array_equal(a, b)

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    @pytest.mark.parametrize("batch", [1, 64, 128])
    def test_numba_matches_numpy(self, batch):
        design = _design(seed=13, n_ops=60, with_memory=True)
        ref = design.simulator(batch=batch, backend="numpy")
        dut = design.simulator(batch=batch, backend="numba")
        assert dut.backend.name == "numba"
        rng = np.random.default_rng(batch)
        names = list(ref._pi_tables)
        for _ in range(24):
            vecs = [
                {n: int(v) for n, v in zip(names, rng.integers(0, 1 << 12, len(names)))}
                for _ in range(batch)
            ]
            assert ref.step_lanes(vecs) == dut.step_lanes(vecs)
        assert np.array_equal(ref.global_state, dut.global_state)


class TestOracleEnrollment:
    """Backends ride the differential oracle at rotated lane batches."""

    def test_backend_runs_as_extra_oracle_engine(self, monkeypatch):
        from repro.fuzz.designgen import generate_design, random_stimuli
        from repro.fuzz.oracle import OracleConfig, run_oracle

        # stand the generic compile_stage path in for numba so the
        # backend-DUT lockstep runs without the real dependency
        class StandIn(ArrayBackend):
            name = "numba"

        monkeypatch.setitem(backend_mod._CLASSES, "numba", StandIn)
        gen = generate_design(1234, "mixed")
        stimuli = random_stimuli(gen.spec, 1234, 12)
        result = run_oracle(
            gen.spec,
            stimuli,
            OracleConfig(batches=(1, 128), backends=("numpy", "numba")),
        )
        assert result.ok
        assert "backend:numba" in result.coverage

    def test_unavailable_backend_skips_with_marker(self):
        from repro.fuzz.designgen import generate_design, random_stimuli
        from repro.fuzz.oracle import OracleConfig, run_oracle

        gen = generate_design(99, "mixed")
        stimuli = random_stimuli(gen.spec, 99, 8)
        result = run_oracle(
            gen.spec,
            stimuli,
            OracleConfig(batches=(1, 16), backends=("numpy", "cupy")),
        )
        assert result.ok
        assert "backend-skip:cupy" in result.coverage

    def test_config_round_trips_backends(self):
        from repro.fuzz.oracle import OracleConfig

        config = OracleConfig(backends=("numpy", "numba"))
        back = OracleConfig.from_json(config.to_json())
        assert back.backends == ("numpy", "numba")
        # older configs without the key hydrate with the default
        legacy = OracleConfig.from_json({"batches": [1, 4]})
        assert legacy.backends == ("numpy",)
