"""Cross-cutting property-based tests on the core data structures.

Hypothesis-driven invariants that no directed test pins down:

* random E-AIGs placed onto random-width boomerang configurations execute
  bit-exactly (placement is total and correct for any mappable shape);
* the bitstream survives assembly/decode for random designs, and corrupt
  binaries fail loudly instead of mis-executing;
* RepCut's accounting identities hold on random cone structures;
* the compiled cycle simulator's generated code is deterministic.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boomerang import BoomerangConfig
from repro.core.eaig import EAIG, EAIGSim, TRUE
from repro.core.partition import PartitionConfig, partition_design
from repro.core.placement import UnmappableError, place_partition
from repro.partition.repcut import repcut_partition
from tests.helpers import random_circuit


def random_eaig(rng: random.Random, n_pis: int, n_ffs: int, n_gates: int) -> EAIG:
    """A random, well-formed E-AIG with feedback through FFs."""
    g = EAIG(f"rand{rng.randrange(1 << 30)}")
    literals = [TRUE]
    for i in range(n_pis):
        literals.append(g.add_pi(f"p{i}"))
    ffs = [g.add_ff(init=rng.randrange(2), name=f"f{i}") for i in range(n_ffs)]
    literals.extend(ffs)
    for _ in range(n_gates):
        a = rng.choice(literals) ^ rng.randrange(2)
        b = rng.choice(literals) ^ rng.randrange(2)
        literals.append(g.add_and(a, b))
    for ff in ffs:
        g.set_ff_input(ff, rng.choice(literals) ^ rng.randrange(2))
    for i in range(4):
        g.add_output(f"o{i}[0]", rng.choice(literals) ^ rng.randrange(2))
    g.check()
    return g


class TestPlacementProperty:
    @given(seed=st.integers(0, 10_000), width_log2=st.integers(6, 9))
    @settings(max_examples=15, deadline=None)
    def test_random_eaig_placement_is_correct(self, seed, width_log2):
        rng = random.Random(seed)
        eaig = random_eaig(rng, n_pis=5, n_ffs=3, n_gates=40)
        plan = partition_design(eaig, PartitionConfig(gates_per_partition=1000, num_stages=1))
        cfg = BoomerangConfig(width_log2=width_log2)
        try:
            placed = [place_partition(eaig, spec, cfg) for spec in plan.partitions]
        except UnmappableError:
            return  # legitimately too small a core for this shape
        sim = EAIGSim(eaig)
        for _ in range(5):
            sim.settle([rng.getrandbits(1) for _ in eaig.pis])
            for pp in placed:
                local = set(pp.spec.nodes)
                state = np.zeros(cfg.state_size, dtype=bool)
                for node, slot in pp.slot_of.items():
                    if node not in local:
                        state[slot] = bool(sim.value[node])
                for layer in pp.layers:
                    layer.execute(state)
                for node, slot in pp.slot_of.items():
                    assert bool(state[slot]) == bool(sim.value[node])
            sim.clock_edge()

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_layer_count_bounded_by_local_depth(self, seed):
        rng = random.Random(seed)
        eaig = random_eaig(rng, n_pis=4, n_ffs=2, n_gates=60)
        plan = partition_design(eaig, PartitionConfig(gates_per_partition=1000, num_stages=1))
        for spec in plan.partitions:
            pp = place_partition(eaig, spec, BoomerangConfig(width_log2=10))
            # A layer always realizes at least one level, so layers never
            # exceed the node count; and every node ends up with a slot or
            # is consumed purely in-tree.
            assert len(pp.layers) <= max(1, len(spec.nodes))
            for literal in spec.root_literals():
                pp.slot_and_invert(literal)  # resolvable


class TestRepcutProperty:
    @given(seed=st.integers(0, 10_000), k=st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_accounting_identities(self, seed, k):
        rng = random.Random(seed)
        eaig = random_eaig(rng, n_pis=4, n_ffs=4, n_gates=50)
        groups = [[eaig.fanin0[ff]] for ff in eaig.ffs]
        groups += [[lit] for _, lit in eaig.outputs]
        result = repcut_partition(eaig, groups, k=k, seed=seed)
        # Every group assigned to exactly one part.
        assert sorted(g for part in result.part_groups for g in part) == list(
            range(len(groups))
        )
        # Node multiset identity: total placed = live + replicated.
        placed = sum(len(nodes) for nodes in result.part_nodes)
        assert placed == result.total_nodes + result.replicated_nodes
        assert result.replication_cost >= 0.0
        # Each part's nodes cover its groups' cones.
        for p, group_ids in enumerate(result.part_groups):
            part_nodes = set(result.part_nodes[p])
            for gi in group_ids:
                assert eaig.cone(groups[gi]) <= part_nodes


class TestBitstreamRobustness:
    def _program(self, seed=42):
        from repro.core.compiler import GemCompiler, GemConfig

        circuit = random_circuit(seed, n_ops=40)
        return GemCompiler(
            GemConfig(
                partition=PartitionConfig(gates_per_partition=400),
                boomerang=BoomerangConfig(width_log2=10),
            )
        ).compile(circuit)

    def test_truncated_binary_fails_loudly(self):
        from repro.core.interpreter import GemInterpreter

        design = self._program()
        program = design.program
        program.words = program.words[: len(program.words) // 2].copy()
        with pytest.raises(Exception):
            GemInterpreter(program)

    def test_corrupted_opcode_fails_loudly(self):
        from repro.core.interpreter import GemInterpreter

        design = self._program(43)
        words = design.program.words.copy()
        # Find the first instruction header and stamp an invalid opcode.
        num_stages = int(words[5])
        table_base = 8 + num_stages
        first = int(words[table_base])
        words[first] = np.uint32(0xFF << 24)
        design.program.words = words
        with pytest.raises(ValueError):
            GemInterpreter(design.program)

    def test_assembly_is_deterministic(self):
        a = self._program(44).program.words
        b = self._program(44).program.words
        assert (a == b).all()


class TestCompiledSimDeterminism:
    def test_generated_source_stable(self):
        from repro.rtl import Netlist
        from repro.simref.cycle_sim import generate_cycle_source

        circuit = random_circuit(45, n_ops=40)
        src1 = generate_cycle_source(Netlist(circuit))
        src2 = generate_cycle_source(Netlist(circuit))
        assert src1 == src2


class TestFuzzGeneratorProperties:
    """Hypothesis strategies drawn from the fuzz design generator.

    Small shapes only: each example compiles a full design.  The heavier,
    curated structures live in tests/corpus/ (replayed, not generated).
    """

    SMALL = None  # populated lazily to keep import cost out of collection

    @staticmethod
    def _small_knobs():
        from repro.fuzz import ShapeKnobs

        return ShapeKnobs(
            n_inputs=3,
            n_regs=2,
            n_ops=10,
            widths=(1, 3, 8),
            max_arith_width=8,
            clock_enable_frac=0.5,
            mem_recipes=(((4, 8), (3, 5), 0.7, 0.2, 0.2),),
            n_outputs=3,
        )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_generated_specs_roundtrip_and_build(self, seed):
        from repro.fuzz import DesignSpec, random_spec

        spec = random_spec(seed, self._small_knobs())
        again = DesignSpec.from_json(spec.to_json())
        assert again.to_json() == spec.to_json()
        circuit = spec.build()
        assert circuit.name == spec.name

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_engines_agree_on_generated_designs(self, seed):
        """fused == legacy == simref == word on generator output."""
        from repro.fuzz import OracleConfig, random_spec, random_stimuli, run_oracle

        spec = random_spec(seed, self._small_knobs())
        stimuli = random_stimuli(spec, seed, 8)
        result = run_oracle(
            spec, stimuli, OracleConfig(batches=(1, 4), compile_profile="small")
        )
        assert result.ok, result.divergence.describe()

    @given(seed=st.integers(0, 10_000), cut=st.integers(1, 6))
    @settings(max_examples=6, deadline=None)
    def test_checkpoint_resume_bit_identity_mid_fuzz(self, seed, cut):
        """Snapshot at a random cycle, restore into a fresh interpreter,
        and finish the stimulus: outputs and state digests must match the
        uninterrupted run bit-for-bit."""
        from repro.core.compiler import GemCompiler
        from repro.fuzz import random_spec, random_stimuli
        from repro.fuzz.oracle import compile_profile
        from repro.runtime.checkpoint import restore, snapshot
        from repro.runtime.supervisor import state_digest

        spec = random_spec(seed, self._small_knobs())
        stimuli = random_stimuli(spec, seed, 8)
        design = GemCompiler(compile_profile("small")).compile(spec.build())

        straight = design.simulator(mode="fused")
        full_trace = [straight.step(vec) for vec in stimuli]

        first = design.simulator(mode="fused")
        for vec in stimuli[:cut]:
            first.step(vec)
        ckpt = snapshot(first)
        resumed = design.simulator(mode="fused")
        restore(resumed, ckpt)
        tail = [resumed.step(vec) for vec in stimuli[cut:]]
        assert tail == full_trace[cut:]
        assert state_digest(resumed) == state_digest(straight)


class TestFourStateProperties:
    """Property tests for dual-rail 4-state execution (docs/FUZZING.md).

    (a) the fast dual-rail engines agree with the golden
        ``repro.fourstate.sim`` reference at batch 1, 16 and 64 on
        generated designs with x-injecting stimuli;
    (b) with fully-known inputs and known power-on state the 4-state
        compile is *bit-identical* to the plain 2-state fused engine —
        the known-rail machinery must cost zero semantic drift.
    """

    @staticmethod
    def _small_knobs(**over):
        from repro.fuzz import ShapeKnobs

        base = dict(
            n_inputs=3,
            n_regs=2,
            n_ops=10,
            widths=(1, 3, 8),
            max_arith_width=8,
            clock_enable_frac=0.5,
            mem_recipes=(((4, 8), (3, 5), 0.7, 0.2, 0.2),),
            n_outputs=3,
        )
        base.update(over)
        return ShapeKnobs(**base)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=4, deadline=None)
    def test_dual_rail_engines_agree_with_fourstate_sim(self, seed):
        """4-value oracle: every fast engine == FourStateSim, X-for-X,
        at single-lane, packed-word, and full-word batch widths."""
        from repro.fuzz import OracleConfig, random_spec, random_stimuli, run_oracle

        knobs = self._small_knobs(x_input_rate=0.35, values=4)
        spec = random_spec(seed, knobs)
        stimuli = random_stimuli(spec, seed, 8, x_rate=knobs.x_input_rate)
        result = run_oracle(
            spec, stimuli,
            OracleConfig(batches=(1, 16, 64), compile_profile="small", values=4),
        )
        assert result.ok, result.divergence.describe()
        assert "values:4" in result.coverage

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=4, deadline=None)
    def test_fully_known_values4_bit_identical_to_2state(self, seed):
        """Known inputs + known power-on: the dual-rail fused engine's
        value rail reproduces the 2-state fused engine bit-for-bit and
        reports zero unknown output bits."""
        from repro.core.compiler import GemCompiler, compile_circuit
        from repro.fuzz import random_spec, random_stimuli
        from repro.fuzz.oracle import compile_profile

        spec = random_spec(seed, self._small_knobs())
        stimuli = random_stimuli(spec, seed, 8)
        circuit = spec.build()
        config = compile_profile("small")
        plain = GemCompiler(config).compile(circuit).simulator(mode="fused")
        dual = compile_circuit(
            circuit, config, values=4, x_reset=False, x_memory=False
        ).simulator(mode="fused")
        for cycle, vec in enumerate(stimuli):
            expect = plain.step(vec)
            got4 = dual.step4(vec)
            got = {name: v.value() for name, v in got4.items()}
            assert got == expect, (cycle, vec)
            assert dual.unknown_output_bits() == 0
