"""Replay every ``tests/corpus/*.gemrepro`` through the N-way oracle.

The corpus is the fuzzer's regression memory: passing entries pin
cross-engine agreement on structurally novel designs (banked for new
coverage during seeding campaigns), and ``expect``-divergence entries pin
the detection path itself — each carries an injected mutation (a
fold-constant bit flip, or a known-rail state flip in the 4-state
entries) that must still be caught at the recorded cycle and signal.
No generation happens here; every case replays a self-contained JSON
file, so this stays fast and deterministic (docs/FUZZING.md).
"""

from __future__ import annotations

import os

import pytest

from repro.fuzz.corpus import Corpus, load_repro, replay_repro

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = Corpus(CORPUS_DIR)
PATHS = CORPUS.paths()


def test_corpus_is_seeded():
    assert len(PATHS) >= 10, "tests/corpus should ship at least 10 repros"


def test_corpus_pins_both_outcomes():
    repros = CORPUS.load_all()
    assert any(r.expect is None for r in repros), "need expect-pass entries"
    assert any(r.expect is not None for r in repros), "need expect-divergence entries"


def test_corpus_covers_four_state():
    """The 4-value entries pin x-reset, X-address RAM, dual-rail
    checkpoint/resume, and the known-rail injection detection path."""
    feats = CORPUS.coverage()
    assert "values:4" in feats
    four = [r for r in CORPUS.load_all() if r.oracle.values == 4]
    assert len(four) >= 4, "need at least 4 four-state corpus entries"
    assert any(
        r.expect is not None
        and (r.oracle.inject or {}).get("kind") == "known_rail"
        for r in four
    ), "need an expect-divergence known-rail injection pin"
    assert any(r.oracle.checkpoint_cycle is not None for r in four), (
        "need a dual-rail mid-run checkpoint/resume entry"
    )


def test_corpus_covers_ram_adapters_and_merging():
    feats = CORPUS.coverage()
    assert "ram:blocks" in feats
    assert "ram:polyfill" in feats
    assert "ram:multiblock" in feats, "corpus should hit multi-bank adapters"
    assert any(f.startswith("partitions:2") for f in feats), (
        "corpus should include a multi-partition (Algorithm 1 merging) design"
    )


@pytest.mark.parametrize("path", PATHS, ids=[os.path.basename(p) for p in PATHS])
def test_replay(path):
    outcome = replay_repro(path)
    assert outcome.ok, outcome.message


@pytest.mark.parametrize("path", PATHS, ids=[os.path.basename(p) for p in PATHS])
def test_repro_roundtrip(path):
    """Every shipped repro re-serializes to the identical JSON document."""
    repro = load_repro(path)
    assert repro.spec.build() is not None
    from repro.fuzz.corpus import Repro

    assert Repro.from_json(repro.to_json()).to_json() == repro.to_json()
