"""CLI entry points (repro.harness.cli) — smoke level, cheapest design.

These use the harness cache like the benchmarks do; with a warm cache each
command is fast, and with a cold cache they compile openpiton1 (~seconds),
the smallest registered design.
"""

import pytest

from repro.harness import cli


class TestCompileCommand:
    def test_compile_prints_table1_row(self, capsys, tmp_path):
        bitstream = str(tmp_path / "op1.bin")
        assert cli.main_compile(["openpiton1", "--bitstream", bitstream]) == 0
        out = capsys.readouterr().out
        assert "#E-AIG Gates" in out
        assert "replication" in out
        import os

        assert os.path.getsize(bitstream) > 1000

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            cli.main_compile(["no-such-design"])


class TestRunCommand:
    def test_run_reports_match(self, capsys):
        assert cli.main_run(["openpiton1", "ldst_quad2"]) == 0
        out = capsys.readouterr().out
        assert "MATCH" in out

    def test_run_default_workload(self, capsys):
        assert cli.main_run(["openpiton1"]) == 0
        assert "cycles in" in capsys.readouterr().out

    def test_run_unknown_workload(self, capsys):
        assert cli.main_run(["openpiton1", "nope"]) == 2
        assert "available" in capsys.readouterr().out

    def test_run_batched_lanes(self, capsys):
        assert cli.main_run([
            "openpiton1", "ldst_quad2", "--batch", "16", "--max-cycles", "30",
        ]) == 0
        out = capsys.readouterr().out
        assert "x 16 lanes" in out
        assert "lane-cycles/s" in out

    def test_run_batched_output_stream_matches(self, capsys):
        """Lane 0 of a broadcast batched run reproduces the workload's
        expected observable stream exactly."""
        assert cli.main_run(["openpiton1", "ldst_quad2", "--batch", "8"]) == 0
        assert "MATCH" in capsys.readouterr().out


class TestCosimCommand:
    def test_cosim_passes(self, capsys):
        assert cli.main_cosim(["openpiton1", "asi_notused_priv"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_cosim_max_cycles(self, capsys):
        assert cli.main_cosim(["openpiton1", "ldst_quad2", "--max-cycles", "40"]) == 0
        assert "40 cycles" in capsys.readouterr().out


class TestSupervisedRunCommand:
    def test_checkpointed_run_reports_ok(self, capsys, tmp_path):
        ckpt_dir = str(tmp_path / "ckpts")
        assert cli.main_run([
            "openpiton1", "ldst_quad2", "--max-cycles", "40",
            "--checkpoint-every", "10", "--checkpoint-dir", ckpt_dir,
        ]) == 0
        out = capsys.readouterr().out
        assert "supervised run" in out
        assert "[OK]" in out
        import os

        assert any(n.endswith(".gemk") for n in os.listdir(ckpt_dir))

    def test_resume_continues_from_checkpoint(self, capsys, tmp_path):
        ckpt_dir = str(tmp_path / "ckpts")
        assert cli.main_run([
            "openpiton1", "ldst_quad2", "--max-cycles", "25",
            "--checkpoint-every", "10", "--checkpoint-dir", ckpt_dir,
        ]) == 0
        capsys.readouterr()
        assert cli.main_run([
            "openpiton1", "ldst_quad2", "--max-cycles", "60",
            "--checkpoint-every", "10", "--checkpoint-dir", ckpt_dir,
            "--resume",
        ]) == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint at cycle 20" in out

    def test_scrub_only_run(self, capsys):
        assert cli.main_run([
            "openpiton1", "ldst_quad2", "--max-cycles", "30", "--scrub-every", "5",
        ]) == 0
        assert "faults detected: 0" in capsys.readouterr().out

    def test_supervised_batched_run(self, capsys):
        assert cli.main_run([
            "openpiton1", "ldst_quad2", "--max-cycles", "30",
            "--scrub-every", "5", "--batch", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "x 4 lanes" in out
        assert "faults detected: 0" in out


class TestFaultCampaignCommand:
    def test_campaign_passes(self, capsys):
        assert cli.main_faultcampaign([
            "openpiton1", "ldst_quad2",
            "--trials", "2", "--max-cycles", "24", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "fault campaign" in out
        assert "PASS" in out
        assert "bitstream" in out and "state" in out


class TestDispatcher:
    def test_main_routes_commands(self, capsys):
        assert cli.main(["run", "openpiton1", "ldst_quad2"]) == 0
        assert "MATCH" in capsys.readouterr().out

    def test_main_routes_faultcampaign(self, capsys):
        assert cli.main([
            "faultcampaign", "openpiton1", "ldst_quad2",
            "--trials", "1", "--max-cycles", "16",
        ]) == 0
        assert "fault campaign" in capsys.readouterr().out

    def test_main_rejects_unknown(self):
        with pytest.raises(SystemExit):
            cli.main(["frobnicate"])


class TestResilienceExitCodes:
    """Satellite: distinct nonzero exit codes for the distinct failure
    classes (fault-exhausted vs timeout vs corrupt-resume)."""

    def test_exit_codes_distinct(self):
        codes = [
            cli.EXIT_OK,
            cli.EXIT_MISMATCH,
            cli.EXIT_USAGE,
            cli.EXIT_DEGRADED,
            cli.EXIT_TIMEOUT,
            cli.EXIT_CORRUPT_RESUME,
        ]
        assert codes == [0, 1, 2, 3, 4, 5]
        assert len(set(codes)) == len(codes)

    def test_resume_from_empty_dir_exits_corrupt(self, capsys, tmp_path):
        rc = cli.main_run([
            "openpiton1", "ldst_quad2", "--max-cycles", "20",
            "--checkpoint-dir", str(tmp_path / "nothing"), "--resume",
        ])
        assert rc == cli.EXIT_CORRUPT_RESUME
        assert "cannot resume" in capsys.readouterr().out

    def test_resume_from_corrupt_file_exits_corrupt(self, capsys, tmp_path):
        bad = tmp_path / "bad.gemk"
        bad.write_bytes(b"\x00" * 64)
        rc = cli.main_run([
            "openpiton1", "ldst_quad2", "--max-cycles", "20",
            "--resume", str(bad),
        ])
        assert rc == cli.EXIT_CORRUPT_RESUME
        assert "cannot resume" in capsys.readouterr().out

    def test_exhausted_cycle_budget_exits_timeout(self, capsys):
        """A one-cycle budget cannot finish or extend (half a cycle of
        grace rounds to zero), so the run degrades with a timeout."""
        rc = cli.main_run([
            "openpiton1", "ldst_quad2", "--max-cycles", "20",
            "--cycle-budget", "1",
        ])
        out = capsys.readouterr().out
        assert rc == cli.EXIT_TIMEOUT
        assert "DEGRADED" in out
        assert "timeouts: 1" in out

    def test_resume_directory_target_picks_newest(self, capsys, tmp_path):
        """--resume DIR (explicit argument, not the bare flag) selects the
        newest valid checkpoint in that directory via its journal."""
        ckpt_dir = str(tmp_path / "ckpts")
        assert cli.main_run([
            "openpiton1", "ldst_quad2", "--max-cycles", "25",
            "--checkpoint-every", "10", "--checkpoint-dir", ckpt_dir,
        ]) == 0
        capsys.readouterr()
        assert cli.main_run([
            "openpiton1", "ldst_quad2", "--max-cycles", "60",
            "--checkpoint-every", "10", "--checkpoint-dir", ckpt_dir,
            "--resume", ckpt_dir,
        ]) == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint at cycle 20" in out
        import os

        assert "journal.json" in os.listdir(ckpt_dir)

    def test_deadline_flag_reports_clean_run(self, capsys):
        rc = cli.main_run([
            "openpiton1", "ldst_quad2", "--max-cycles", "30",
            "--deadline", "300",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "timeouts: 0" in out
