"""Replication-aided partitioning (repro.partition.repcut)."""

from repro.core.eaig import EAIG, NodeKind, lit_not
from repro.partition.repcut import (
    build_sharing_hypergraph,
    cone_masks,
    repcut_partition,
)


def _diamond() -> tuple[EAIG, list[list[int]], dict]:
    """Two endpoints sharing a middle cone:

        a b     c d
         \\|     |/
          x     y
           \\   /
            s        (shared)
           / \\
          e1  e2     (endpoint roots: AND(s,x), AND(s,y))
    """
    g = EAIG()
    a, b, c, d = (g.add_pi() for _ in range(4))
    x = g.add_and(a, b)
    y = g.add_and(c, d)
    s = g.add_and(x, y)
    e1 = g.add_and(s, x)
    e2 = g.add_and(s, lit_not(y))
    nodes = {"x": x >> 1, "y": y >> 1, "s": s >> 1, "e1": e1 >> 1, "e2": e2 >> 1}
    return g, [[e1], [e2]], nodes


class TestConeMasks:
    def test_membership(self):
        g, groups, n = _diamond()
        masks = cone_masks(g, groups)
        assert masks[n["e1"]] == 0b01
        assert masks[n["e2"]] == 0b10
        assert masks[n["s"]] == 0b11  # shared
        assert masks[n["x"]] == 0b11  # via s and via e1
        assert masks[n["y"]] == 0b11

    def test_source_flags_truncate(self):
        g, groups, n = _diamond()
        flags = [False] * len(g.kind)
        flags[n["s"]] = True  # pretend s is published by an earlier stage
        masks = cone_masks(g, groups, source_flags=flags)
        assert masks[n["s"]] == 0
        assert masks[n["x"]] == 0b01  # only via e1 now
        assert masks[n["y"]] == 0b10

    def test_state_sources_never_masked(self):
        g, groups, _ = _diamond()
        masks = cone_masks(g, groups)
        for pi in g.pis:
            assert masks[pi] == 0


class TestSharingHypergraph:
    def test_nets_from_signatures(self):
        g, groups, n = _diamond()
        masks = cone_masks(g, groups)
        graph, hist = build_sharing_hypergraph(2, masks)
        # signature 0b11 appears for x, y, s -> one net of weight 3.
        assert hist[0b11] == 3
        assert graph.num_nets == 1
        assert graph.net_weight[0] == 3

    def test_vertex_weights_are_cone_sizes(self):
        g, groups, _ = _diamond()
        masks = cone_masks(g, groups)
        graph, _ = build_sharing_hypergraph(2, masks)
        # Each group's cone has 4 nodes, plus base weight 1.
        assert graph.vertex_weight == [5, 5]

    def test_huge_nets_dropped(self):
        masks = [0b1111] * 10
        graph, _ = build_sharing_hypergraph(4, masks, max_net_pins=3)
        assert graph.num_nets == 0


class TestRepCut:
    def test_split_duplicates_shared_cone(self):
        g, groups, n = _diamond()
        result = repcut_partition(g, groups, k=2)
        # The two endpoints land apart; shared nodes s, x, y are duplicated.
        assert sorted(result.assignment) == [0, 1]
        assert result.total_nodes == 5
        assert result.replicated_nodes == 3
        assert abs(result.replication_cost - 3 / 5) < 1e-9

    def test_single_partition_no_replication(self):
        g, groups, _ = _diamond()
        result = repcut_partition(g, groups, k=1)
        assert result.replication_cost == 0.0
        assert len(result.part_nodes[0]) == 5

    def test_every_group_assigned(self):
        g, groups, _ = _diamond()
        result = repcut_partition(g, groups, k=2)
        assert sorted(v for part in result.part_groups for v in part) == [0, 1]

    def test_part_nodes_cover_cones(self):
        g, groups, _ = _diamond()
        result = repcut_partition(g, groups, k=2)
        for gi, literals in enumerate(groups):
            part = result.assignment[gi]
            part_nodes = set(result.part_nodes[part])
            assert g.cone(literals) <= part_nodes

    def test_replication_grows_with_k(self):
        """The paper's Fig. 5 premise: replication cost rises with
        partition count."""
        import random

        from tests.helpers import random_circuit
        from repro.core.synthesis import synthesize
        from repro.core.partition import build_endpoint_groups

        circuit = random_circuit(3, n_ops=80, n_regs=8)
        eaig = synthesize(circuit).eaig
        groups = [g.roots for g in build_endpoint_groups(eaig)]
        costs = []
        for k in (1, 2, 4, 8):
            result = repcut_partition(eaig, groups, k=k, seed=1)
            costs.append(result.replication_cost)
        assert costs[0] == 0.0
        assert costs[-1] >= costs[1]
