"""Integration: every CPU workload runs correctly on GEM (and pruned GEM).

These drive the full compiled designs through complete workloads; the
designs come from the harness cache (`.gem_cache/`), so the first run
compiles them (~a minute each) and later runs are fast.  They certify the
same property as Table II's execution column: the bitstream interpreter is
a drop-in replacement for the reference simulator on real programs.
"""

import pytest

from repro.core.pruning import PruningGemInterpreter
from repro.harness.runner import compile_design, design_workloads


def _run_stream(sim, wl):
    observed = []
    for vec in wl.stimuli:
        outs = sim.step(vec)
        if outs.get(wl.valid_port):
            observed.append(outs[wl.out_port])
        if outs.get("halted") or outs.get("all_halted"):
            break
    return observed


@pytest.mark.parametrize("workload", ["dhrystone", "mt-memcpy", "pmp", "qsort", "spmv"])
def test_rocket_workloads_on_gem(workload):
    design = compile_design("rocketchip")
    wl = design_workloads("rocketchip")[workload]
    assert _run_stream(design.simulator(), wl) == wl.expected_out


@pytest.mark.parametrize("workload", ["ldst_quad2", "fp_mt_combo0", "asi_notused_priv"])
def test_openpiton1_workloads_on_gem(workload):
    design = compile_design("openpiton1")
    wl = design_workloads("openpiton1")[workload]
    assert _run_stream(design.simulator(), wl) == wl.expected_out


@pytest.mark.slow
def test_openpiton8_workload_on_pruned_gem():
    """The pruning extension stays bit-exact on the full multicore run."""
    design = compile_design("openpiton8")
    wl = design_workloads("openpiton8")["fp_mt_combo0"]
    sim = PruningGemInterpreter(design.program)
    assert _run_stream(sim, wl) == wl.expected_out
    assert sim.blocks_skipped > 0  # pruning actually engaged


@pytest.mark.slow
def test_nvdla_checksum_on_gem():
    design = compile_design("nvdla")
    wl = design_workloads("nvdla")["pdpmax_int8_0"]
    gem = design.simulator()
    last = {}
    for vec in wl.stimuli:
        last = gem.step(vec)
    assert last["done"] == 1
    assert last["checksum"] != 0
