"""Performance model behaviour (repro.core.perfmodel + calibration)."""

import json
import os

import pytest

from repro.core.boomerang import BoomerangConfig
from repro.core.compiler import GemCompiler, GemConfig
from repro.core.partition import PartitionConfig
from repro.core.perfmodel import (
    A100,
    RTX3090,
    XEON,
    GemMetrics,
    compiled_sim_speed,
    event_sim_speed,
    gate_sim_speed,
    gem_cycle_time,
    gem_metrics,
    gem_speed,
    tuning_score,
)
from repro.harness.calibrate import PAPER_ANCHOR, CalibratedModels, calibrate
from repro.harness.runner import ActivityMeasurement
from tests.helpers import random_circuit


def _metrics(parts=8, inst_words=50_000, work=200_000, stages=1) -> GemMetrics:
    per_stage = parts // stages
    return GemMetrics(
        stage_partitions=[per_stage] * stages,
        inst_words=inst_words,
        stage_work_bits=[work // stages] * stages,
        stage_max_block_bits=[work // parts] * stages,
        global_traffic=5_000,
    )


class TestGemModel:
    def test_positive_and_finite(self):
        hz = gem_speed(_metrics(), A100)
        assert 0 < hz < 1e9

    def test_bigger_bitstream_is_slower(self):
        small = gem_speed(_metrics(inst_words=10_000), A100)
        large = gem_speed(_metrics(inst_words=40_000_000), A100)
        assert large < small

    def test_more_stages_cost_syncs(self):
        one = gem_cycle_time(_metrics(parts=8, stages=1), A100)
        two = gem_cycle_time(_metrics(parts=8, stages=2), A100)
        assert two > one

    def test_wave_quantization(self):
        """Once partitions exceed the resident-block count, extra waves
        serialize (the OpenPiton8-on-3090 resource-pressure effect)."""
        slots = A100.sms * A100.blocks_per_sm
        fits = _metrics(parts=slots, work=slots * 5_000_000)
        spills = _metrics(parts=slots * 3, work=slots * 3 * 5_000_000)
        t_fits = gem_cycle_time(fits, A100)
        t_spills = gem_cycle_time(spills, A100)
        assert t_spills > 1.5 * t_fits

    def test_a100_beats_3090_under_pressure(self):
        heavy = _metrics(parts=400, inst_words=40_000_000, work=4_000_000)
        assert gem_speed(heavy, A100) > gem_speed(heavy, RTX3090)

    def test_metrics_extraction(self):
        circuit = random_circuit(21, n_ops=60)
        design = GemCompiler(
            GemConfig(
                partition=PartitionConfig(gates_per_partition=300),
                boomerang=BoomerangConfig(width_log2=10),
            )
        ).compile(circuit)
        m = gem_metrics(design)
        assert m.inst_words == int(design.program.words[7])
        assert len(m.stage_partitions) == design.merge.plan.num_stages
        assert sum(m.stage_work_bits) > 0


class TestBaselineModels:
    def test_event_model_activity_scaling(self):
        fast = event_sim_speed(1_000)
        slow = event_sim_speed(100_000)
        assert fast > 5 * slow

    def test_compiled_model_threads(self):
        one = compiled_sim_speed(100_000, threads=1)
        eight = compiled_sim_speed(100_000, threads=8)
        sixteen = compiled_sim_speed(100_000, threads=16)
        assert eight > one  # parallel speedup
        assert sixteen < eight  # the paper's degradation

    def test_gate_model_launch_bound(self):
        few_levels = gate_sim_speed(10_000, 20)
        many_levels = gate_sim_speed(10_000, 400)
        assert few_levels > many_levels


class TestCalibration:
    def _fake_inputs(self):
        metrics = _metrics()
        activity = ActivityMeasurement(
            design="nvdla",
            workload="anchor",
            cycles=100,
            events_per_cycle=5_000.0,
            toggles_per_cycle=8_000.0,
            gate_levels=60,
            compiled_ops_per_cycle=30_000.0,
        )
        return metrics, activity

    def test_anchor_points_match_exactly(self):
        metrics, activity = self._fake_inputs()

        class FakeDesign:  # duck-typed: calibrate only calls gem_metrics
            pass

        import repro.harness.calibrate as cal

        original = cal.gem_metrics
        try:
            cal.gem_metrics = lambda d: metrics  # type: ignore[assignment]
            cal_models = cal.calibrate(FakeDesign(), activity)  # type: ignore[arg-type]
        finally:
            cal.gem_metrics = original
        assert cal_models.gem(metrics, A100) == pytest.approx(PAPER_ANCHOR["gem_a100"])
        assert cal_models.gem(metrics, RTX3090) == pytest.approx(PAPER_ANCHOR["gem_3090"])
        assert cal_models.commercial(activity.events_per_cycle) == pytest.approx(
            PAPER_ANCHOR["commercial"]
        )
        assert cal_models.verilator(activity.compiled_ops_per_cycle, 1) == pytest.approx(
            PAPER_ANCHOR["verilator_1t"]
        )
        assert cal_models.gl0am(
            activity.toggles_per_cycle, 2 * activity.gate_levels
        ) == pytest.approx(PAPER_ANCHOR["gl0am"])

    def test_uncalibrated_scale_is_identity(self):
        models = CalibratedModels()
        assert models.commercial(1000) == event_sim_speed(1000)


class TestTuningScoreSanity:
    """Monotonicity pins behind the autotuner's cheap filter (docs/TUNING.md).

    A model that could rank more work, more stages, or a bigger bitstream
    as *faster* would steer the knob search toward pessimal configs, so
    each axis is pinned never-faster here.
    """

    def test_more_work_bits_never_faster(self):
        speeds = [
            gem_speed(_metrics(work=100_000 * scale), A100)
            for scale in (1, 2, 4, 8, 16)
        ]
        for slower, faster in zip(speeds[1:], speeds):
            assert slower <= faster

    def test_more_stages_never_faster(self):
        """Same partitions, same total work — only the stage split grows."""
        speeds = [
            gem_speed(_metrics(parts=8, work=400_000, stages=s), A100)
            for s in (1, 2, 4, 8)
        ]
        for slower, faster in zip(speeds[1:], speeds):
            assert slower <= faster

    def test_more_inst_words_never_faster(self):
        speeds = [
            gem_speed(_metrics(inst_words=w), A100)
            for w in (10_000, 100_000, 1_000_000, 10_000_000)
        ]
        for slower, faster in zip(speeds[1:], speeds):
            assert slower <= faster

    def test_tuning_score_reports_gem_speed(self):
        m = _metrics(parts=8, stages=2)
        score = tuning_score(m, A100)
        assert score["model_hz"] == gem_speed(m, A100)
        assert score["stages"] == 2
        assert score["partitions"] == 8
        assert score["work_bits"] == sum(m.stage_work_bits)


class TestBenchCalibration:
    """The analytical fused-vs-legacy ranking must agree in *direction*
    with the measured BENCH_cycle.json rows — the same sanity the
    autotuner relies on when its model filter picks finalists."""

    BENCH = os.path.join(
        os.path.dirname(__file__), os.pardir, "BENCH_cycle.json"
    )

    def _default_rows(self):
        with open(self.BENCH) as f:
            payload = json.load(f)
        # tuned rows carry a config label (docs/TUNING.md); the calibration
        # pin compares the plain default-config pairs only.
        return [
            r for r in payload["rows"] if r.get("config") in (None, "default")
        ]

    def test_fused_direction_agrees_with_measurement(self):
        rows = self._default_rows()
        by_key = {(r["design"], r["engine_mode"]): r for r in rows}
        designs = sorted({r["design"] for r in rows})
        assert designs, "BENCH_cycle.json has no default rows"
        for design in designs:
            legacy = by_key[(design, "legacy")]
            fused = by_key[(design, "fused")]
            measured_fused_wins = fused["cycles_per_s"] > legacy["cycles_per_s"]
            # the analytical proxy: fusion wins iff it dispatches fewer
            # array ops per cycle than the legacy interpreter
            model_fused_wins = (
                fused["fused_array_ops_per_cycle"] < fused["array_ops_per_cycle"]
            )
            assert measured_fused_wins == model_fused_wins, (
                f"{design}: model and measurement disagree on fused-vs-legacy"
            )
