"""Bitstream assembly + binary interpretation (paper §III-E).

The interpreter consumes only the assembled *binary* (plus the host I/O
sidecar), so these tests cover the full serialize→decode→execute loop.
"""

import numpy as np
import pytest

from repro.core.bitstream import MAGIC, VERSION, allocate_global_state, assemble
from repro.core.boomerang import BoomerangConfig
from repro.core.compiler import GemCompiler, GemConfig
from repro.core.interpreter import GemInterpreter
from repro.core.partition import PartitionConfig
from repro.core.ram_mapping import RamMappingConfig
from repro.core.synthesis import SynthesisConfig
from repro.rtl import CircuitBuilder, Netlist, WordSim
from tests.helpers import lockstep, random_circuit, random_vectors


def _small_config(width_log2=10, stages=None, gpp=300):
    return GemConfig(
        synthesis=SynthesisConfig(ram=RamMappingConfig(addr_bits=4, data_bits=8)),
        partition=PartitionConfig(gates_per_partition=gpp, num_stages=stages),
        boomerang=BoomerangConfig(width_log2=width_log2),
    )


def _compile(circuit, **kwargs):
    return GemCompiler(_small_config(**kwargs)).compile(circuit)


class TestBinaryFormat:
    def test_header_fields(self):
        design = _compile(random_circuit(1, n_ops=40))
        words = design.program.words
        assert int(words[0]) == MAGIC
        assert int(words[1]) == VERSION
        assert int(words[2]) == 10  # width_log2
        assert int(words[4]) == design.merge.plan.num_partitions

    def test_bad_magic_rejected(self):
        design = _compile(random_circuit(2, n_ops=30))
        program = design.program
        program.words = program.words.copy()
        program.words[0] = 0xDEAD
        with pytest.raises(ValueError, match="magic"):
            GemInterpreter(program)

    def test_global_allocation_no_overlap(self):
        design = _compile(random_circuit(3, n_ops=50, with_memory=True))
        meta = design.program.meta
        indices = list(meta.node_gidx.values())
        for bits in meta.po_index.values():
            indices.extend(bits)
        assert len(indices) == len(set(indices))
        assert 0 not in indices  # bit 0 is the constant-0 slot
        assert max(indices) < meta.global_bits

    def test_size_accounting(self):
        design = _compile(random_circuit(4, n_ops=40))
        assert design.program.num_bytes == design.program.words.size * 4
        assert design.report.bitstream_bytes == design.program.num_bytes

    def test_ram_data_section_roundtrip(self):
        b = CircuitBuilder()
        rom = b.memory("rom", 16, 8, init=[7, 11, 13, 17])
        addr = b.input("addr", 4)
        b.output("d", b.read(rom, addr, sync=True))
        design = _compile(b.build())
        interp = GemInterpreter(design.program)
        # RAM images are lane-major: shape (batch, depth), lane 0 first
        assert interp.ram_arrays[0][0, :4].tolist() == [7, 11, 13, 17]


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_circuits(self, seed):
        circuit = random_circuit(seed + 20, n_ops=60, n_regs=4)
        design = _compile(circuit)
        lockstep(
            {"word": WordSim(Netlist(circuit)), "gem": design.simulator()},
            random_vectors(circuit, seed, 40),
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_with_memories(self, seed):
        circuit = random_circuit(seed + 60, n_ops=50, with_memory=True, with_async_memory=True)
        design = _compile(circuit)
        lockstep(
            {"word": WordSim(Netlist(circuit)), "gem": design.simulator()},
            random_vectors(circuit, seed + 5, 50),
        )

    @pytest.mark.parametrize("stages", [1, 2, 3])
    def test_multi_stage_execution(self, stages):
        circuit = random_circuit(99, n_ops=120, n_regs=6)
        design = _compile(circuit, stages=stages, gpp=150)
        assert design.merge.plan.num_stages <= stages + 1
        lockstep(
            {"word": WordSim(Netlist(circuit)), "gem": design.simulator()},
            random_vectors(circuit, 7, 40),
        )

    def test_cross_partition_ff_timing(self):
        """A FF chain crossing partitions must still shift one per cycle
        (the deferred-commit semantics of the interpreter)."""
        b = CircuitBuilder()
        x = b.input("x", 1)
        v = x
        regs = []
        for i in range(12):
            r = b.reg(f"s{i}", 1)
            r.next = v
            # interleave logic so partitioning has something to split
            v = r ^ b.const(0, 1)
            regs.append(r)
        b.output("y", v)
        circuit = b.build()
        design = _compile(circuit, gpp=4)
        assert design.merge.plan.num_partitions >= 1
        word = WordSim(Netlist(circuit))
        gem = design.simulator()
        seq = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 0, 1]
        for bit in seq + [0] * 15:
            assert word.step({"x": bit}) == gem.step({"x": bit})


class TestCounters:
    def test_counters_accumulate(self):
        circuit = random_circuit(8, n_ops=50)
        design = _compile(circuit)
        sim = design.simulator()
        for vec in random_vectors(circuit, 0, 10):
            sim.step(vec)
        c = sim.counters
        assert c.cycles == 10
        per = c.per_cycle()
        assert per["device_syncs"] >= 1
        assert per["instruction_words"] > 0
        # Full-cycle property: identical work every cycle.
        assert c.instruction_words == 10 * per["instruction_words"]

    def test_constant_speed_regardless_of_activity(self):
        """GEM is an oblivious full-cycle simulator (paper §II): the work
        counters must not depend on input activity."""
        circuit = random_circuit(9, n_ops=60)
        design = _compile(circuit)
        busy = design.simulator()
        idle = design.simulator()
        for vec in random_vectors(circuit, 1, 20):
            busy.step(vec)
        for _ in range(20):
            idle.step({})
        assert busy.counters.fold_steps == idle.counters.fold_steps
        assert busy.counters.instruction_words == idle.counters.instruction_words
