"""The repro.obs telemetry subsystem: tracer, metrics, reports, gem-perf.

Covers the tracer's ring buffer and Chrome trace-event output, the
metrics registry and its exporters, RunReport build/write/load/diff and
the BENCH regression gate, interpreter reset semantics, and the CLI
surface end to end (``gem-run --trace-out/--report-out/--metrics-out``,
``gem-perf show|diff|compare|validate-trace``, ``--log-level``).
"""

import json

import pytest

from repro.harness import cli
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.report import (
    build_run_report,
    compare_to_bench,
    diff_reports,
    format_report,
    load_report,
    write_report,
)
from repro.obs.trace import CYCLE_PHASES, TRACER, Tracer, validate_trace
from tests.helpers import random_circuit, random_vectors
from tests.test_fused_engine import _compile_small


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test starts and ends with the global tracer/registry quiet."""
    TRACER.disable()
    TRACER.clear()
    REGISTRY.clear()
    yield
    TRACER.disable()
    TRACER.clear()
    REGISTRY.clear()


# -- tracer -------------------------------------------------------------------


class TestTracer:
    def test_span_records_complete_event(self):
        t = Tracer()
        t.enable()
        with t.span("work", cat="compile", args={"k": 1}):
            pass
        (ev,) = t.events()
        assert ev["name"] == "work" and ev["ph"] == "X"
        assert ev["cat"] == "compile" and ev["args"] == {"k": 1}
        assert ev["dur"] >= 0 and isinstance(ev["ts"], float)

    def test_decorator_and_instant_and_counter(self):
        t = Tracer()
        t.enable()

        @t.traced(cat="compile")
        def helper():
            return 7

        assert helper() == 7
        t.instant("mark", cat="supervisor", args={"cycle": 3})
        t.counter("cache", {"hits": 2.0})
        phs = [e["ph"] for e in t.events()]
        assert phs == ["X", "i", "C"]
        names = [e["name"] for e in t.events()]
        assert names[0].endswith("helper") and names[1:] == ["mark", "cache"]

    def test_disabled_is_a_noop(self):
        t = Tracer()
        with t.span("work"):
            pass
        t.instant("mark")
        t.complete("x", t.now())
        t.cycle(0, t.now(), 0.0, {})
        assert len(t) == 0

    def test_ring_buffer_evicts_and_counts_dropped(self):
        t = Tracer(capacity=4)
        t.enable()
        for i in range(10):
            t.instant(f"e{i}")
        assert len(t) == 4
        assert t.dropped == 6
        assert [e["name"] for e in t.events()] == ["e6", "e7", "e8", "e9"]
        assert t.chrome()["otherData"]["dropped_events"] == 6

    def test_enable_can_resize(self):
        t = Tracer(capacity=2)
        t.enable(capacity=16)
        assert t.capacity == 16

    def test_cycle_emits_parent_and_phase_children(self):
        t = Tracer()
        t.enable()
        t.cycle(5, t.now(), 0.01, {p: 0.001 for p in CYCLE_PHASES})
        evs = t.events()
        assert evs[0]["name"] == "cycle" and evs[0]["args"] == {"cycle": 5}
        assert [e["name"] for e in evs[1:]] == list(CYCLE_PHASES)
        assert sum(e["dur"] for e in evs[1:]) <= evs[0]["dur"] + 1e-6

    def test_write_produces_valid_chrome_trace(self, tmp_path):
        t = Tracer()
        t.enable()
        with t.span("a"):
            t.instant("b")
        path = str(tmp_path / "trace.json")
        assert t.write(path) == 2
        assert validate_trace(path) == []


class TestValidateTrace:
    def test_accepts_dict_list_and_json_string(self):
        events = [{"name": "a", "ph": "X", "ts": 0.0, "dur": 1.0}]
        assert validate_trace({"traceEvents": events}) == []
        assert validate_trace(events) == []
        assert validate_trace(json.dumps({"traceEvents": events})) == []

    def test_flags_schema_problems(self):
        bad = [
            {"ph": "X", "ts": 0.0},  # no name, no dur
            {"name": "x", "ph": "Z", "ts": "later"},  # bad phase, bad ts
            {"name": "y", "ph": "i", "ts": 0.0, "args": [1]},  # args not a dict
        ]
        problems = validate_trace(bad)
        assert any("missing 'name'" in p for p in problems)
        assert any("dur" in p for p in problems)
        assert any("unknown phase" in p for p in problems)
        assert any("non-numeric ts" in p for p in problems)
        assert any("args" in p for p in problems)

    def test_flags_unreadable_and_wrong_shape(self, tmp_path):
        assert validate_trace(str(tmp_path / "absent.json"))
        assert validate_trace({"notTraceEvents": []})
        assert validate_trace(42)


# -- metrics ------------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram_basics(self):
        reg = MetricsRegistry()
        c = reg.counter("gem_t_total", help="h")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)
        g = reg.gauge("gem_t_gauge")
        g.set(5)
        g.inc(-2)
        assert g.value == 3.0
        h = reg.histogram("gem_t_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(100.0)
        assert h.count == 3 and h.sum == pytest.approx(100.55)
        assert h.cumulative()[-1] == (float("inf"), 3)

    def test_get_or_create_is_identity_and_type_checked(self):
        reg = MetricsRegistry()
        assert reg.counter("gem_x_total") is reg.counter("gem_x_total")
        assert reg.counter("gem_l_total", labels={"k": "a"}) is not reg.counter(
            "gem_l_total", labels={"k": "b"}
        )
        with pytest.raises(TypeError):
            reg.gauge("gem_x_total")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.counter("gem_ok_total", labels={"bad-label": "x"})

    def test_reset_keeps_identity_clear_drops(self):
        reg = MetricsRegistry()
        c = reg.counter("gem_r_total")
        c.inc(4)
        reg.reset()
        assert c.value == 0
        assert reg.counter("gem_r_total") is c
        reg.clear()
        assert reg.counter("gem_r_total") is not c

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("gem_hits_total", help="cache hits", labels={"kind": "a"}).inc(3)
        reg.gauge("gem_rate").set(1.5)
        reg.histogram("gem_dur_seconds", buckets=(1.0,)).observe(0.5)
        text = reg.to_prometheus()
        assert "# HELP gem_hits_total cache hits" in text
        assert "# TYPE gem_hits_total counter" in text
        assert 'gem_hits_total{kind="a"} 3' in text
        assert "gem_rate 1.5" in text
        assert 'gem_dur_seconds_bucket{le="1.0"} 1' in text
        assert 'gem_dur_seconds_bucket{le="+Inf"} 1' in text
        assert "gem_dur_seconds_count 1" in text

    def test_snapshot_and_json(self):
        reg = MetricsRegistry()
        reg.counter("gem_a_total").inc()
        reg.histogram("gem_h", buckets=(1.0,)).observe(2.0)
        snap = reg.snapshot()
        assert snap["gem_a_total"] == 1.0
        assert snap["gem_h"]["count"] == 1 and snap["gem_h"]["buckets"]["+Inf"] == 1
        assert reg.to_json() == {"metrics": snap}

    def test_publish_phase_times_accumulates(self):
        reg = MetricsRegistry()
        reg.publish_phase_times({"fold": 0.25, "inject": 0.0})
        reg.publish_phase_times({"fold": 0.25})
        snap = reg.snapshot()
        assert snap['gem_phase_seconds_total{phase="fold"}'] == pytest.approx(0.5)
        assert 'gem_phase_seconds_total{phase="inject"}' not in snap

    def test_publish_cycle_counters(self):
        from repro.core.interpreter import CycleCounters

        reg = MetricsRegistry()
        counters = CycleCounters(cycles=9, fold_steps=100)
        reg.publish_cycle_counters(counters)
        snap = reg.snapshot()
        assert snap["gem_interp_cycles"] == 9.0
        assert snap["gem_interp_fold_steps"] == 100.0


# -- reports and the regression gate ------------------------------------------


def _report(**overrides):
    base = dict(
        design="rocketchip",
        workload="wl",
        batch=1,
        engine_mode="fused",
        cycles=100,
        elapsed_s=0.5,
    )
    base.update(overrides)
    return build_run_report(**base)


class TestRunReport:
    def test_build_computes_rates_and_captures_registry(self):
        REGISTRY.counter("gem_seen_total").inc(7)
        rep = _report(batch=4)
        assert rep.cycles_per_s == pytest.approx(200.0)
        assert rep.lane_cycles_per_s == pytest.approx(800.0)
        assert rep.metrics["gem_seen_total"] == 7.0
        assert rep.environment["python"]

    def test_write_load_roundtrip_and_unknown_keys(self, tmp_path):
        path = str(tmp_path / "r.json")
        write_report(_report(extras={"note": "x"}), path)
        raw = json.load(open(path))
        raw["future_field"] = 123
        json.dump(raw, open(path, "w"))
        rep = load_report(path)
        assert rep.design == "rocketchip"
        assert rep.extras["note"] == "x" and rep.extras["future_field"] == 123

    def test_load_rejects_non_reports(self, tmp_path):
        path = str(tmp_path / "bad.json")
        json.dump({"hello": 1}, open(path, "w"))
        with pytest.raises(ValueError):
            load_report(path)
        json.dump([1, 2], open(path, "w"))
        with pytest.raises(ValueError):
            load_report(path)

    def test_format_report_renders(self):
        rep = _report(
            counters={"cycles": 100, "array_ops": 500},
            phase_times={"fold": 0.3, "inject": 0.1},
        )
        text = format_report(rep)
        assert "rocketchip/wl" in text and "phase split" in text
        assert "array_ops/cycle" in text

    def test_diff_reports(self):
        a = _report(counters={"array_ops": 100}, phase_times={"fold": 0.1})
        b = _report(
            elapsed_s=1.0, counters={"array_ops": 200}, phase_times={"fold": 0.2}
        )
        names = [d.name for d in diff_reports(a, b)]
        assert "cycles_per_s" in names
        assert "counters.array_ops" in names and "phase.fold" in names

    def test_compare_to_bench_flags_regression(self):
        bench = {
            "rows": [
                {
                    "design": "rocketchip",
                    "engine_mode": "fused",
                    "batch": 1,
                    "cycles_per_s": 1000.0,
                    "lane_cycles_per_s": 1000.0,
                }
            ]
        }
        rep = _report()  # 200 cycles/s vs 1000 baseline: an 80% drop
        comparisons, notes = compare_to_bench(rep, bench, threshold=0.10)
        assert notes == []
        assert len(comparisons) == 2
        assert all(c.regressed for c in comparisons)
        ok, _ = compare_to_bench(rep, bench, threshold=0.9)
        assert not any(c.regressed for c in ok)

    def test_compare_to_bench_notes_non_matches(self):
        comparisons, notes = compare_to_bench(
            _report(design="nvdla"), {"rows": [{"design": "rocketchip"}]}
        )
        assert comparisons == [] and any("no baseline row" in n for n in notes)

    def test_compare_tolerates_engine_modeless_rows(self):
        """BENCH_batch.json rows predate engine_mode; they still match."""
        bench = [{"design": "rocketchip", "batch": 1, "cycles_per_s": 150.0}]
        comparisons, notes = compare_to_bench(_report(), bench)
        assert notes == [] and len(comparisons) == 1
        assert not comparisons[0].regressed


# -- interpreter reset + traced cycles ----------------------------------------


class TestInterpreterTelemetry:
    def test_reset_replays_bit_identically(self):
        circuit = random_circuit(321, n_ops=40, n_regs=3, with_memory=True)
        design = _compile_small(circuit)
        stimuli = random_vectors(circuit, seed=9, cycles=10)
        sim = design.simulator(profile=True)
        first = [sim.step(vec) for vec in stimuli]
        assert sim.cycle == 10 and any(sim.phase_times.values())
        sim.reset()
        assert sim.cycle == 0
        assert sim.counters.cycles == 0
        assert all(v == 0.0 for v in sim.phase_times.values())
        second = [sim.step(vec) for vec in stimuli]
        assert first == second

    def test_traced_step_emits_cycle_spans(self):
        circuit = random_circuit(322, n_ops=40, n_regs=2)
        design = _compile_small(circuit)
        stimuli = random_vectors(circuit, seed=2, cycles=3)
        sim = design.simulator()
        TRACER.enable()
        TRACER.clear()
        try:
            baseline = [sim.step(vec) for vec in stimuli]
        finally:
            TRACER.disable()
        evs = TRACER.events()
        cycles = [e for e in evs if e["name"] == "cycle"]
        assert len(cycles) == 3
        assert [c["args"]["cycle"] for c in cycles] == [0, 1, 2]
        phase_names = {e["name"] for e in evs if e.get("cat") == "runtime.phase"}
        assert phase_names == set(CYCLE_PHASES)
        # Tracing must not have perturbed simulation results.
        sim2 = design.simulator()
        assert [sim2.step(vec) for vec in stimuli] == baseline

    def test_traced_step_does_not_leave_profiling_on(self):
        circuit = random_circuit(323, n_ops=30, n_regs=2)
        design = _compile_small(circuit)
        vec = random_vectors(circuit, seed=1, cycles=1)[0]
        sim = design.simulator(profile=False)
        TRACER.enable()
        try:
            sim.step(vec)
        finally:
            TRACER.disable()
        assert sim.profile is False
        before = dict(sim.phase_times)
        sim.step(vec)
        assert sim.phase_times == before  # untraced step doesn't time


class TestSupervisorTelemetry:
    def test_supervised_run_emits_events_and_metrics(self, tmp_path):
        from repro.runtime.supervisor import Supervisor

        circuit = random_circuit(324, n_ops=40, n_regs=3, with_memory=True)
        design = _compile_small(circuit)
        stimuli = random_vectors(circuit, seed=4, cycles=12)
        TRACER.enable()
        try:
            result = Supervisor(
                design,
                checkpoint_every=4,
                checkpoint_dir=str(tmp_path / "ckpt"),
                scrub_every=4,
                profile=True,
            ).run(stimuli)
        finally:
            TRACER.disable()
        assert result.cycles == 12
        assert any(result.phase_times.values())
        names = {e["name"] for e in TRACER.events()}
        assert "supervisor.scrub" in names
        assert "checkpoint.save" in names
        snap = REGISTRY.snapshot()
        assert snap["gem_supervisor_scrubs_total"] == 3.0
        assert snap["gem_checkpoint_writes_total"] == 3.0
        assert snap["gem_checkpoint_bytes_total"] > 0
        assert snap['gem_phase_seconds_total{phase="fold"}'] > 0

    def test_fault_recovery_counts(self, tmp_path):
        from repro.runtime.supervisor import Supervisor

        circuit = random_circuit(325, n_ops=40, n_regs=3)
        design = _compile_small(circuit)
        stimuli = random_vectors(circuit, seed=5, cycles=10)
        flipped = []

        def hook(interp, cycle):
            if cycle == 5 and not flipped:
                flipped.append(cycle)
                interp.global_state[1] ^= 1

        TRACER.enable()
        try:
            result = Supervisor(
                design, checkpoint_every=2, scrub_every=1, fault_hook=hook
            ).run(stimuli)
        finally:
            TRACER.disable()
        assert result.faults_detected >= 1 and not result.degraded
        names = {e["name"] for e in TRACER.events()}
        assert {"supervisor.fault", "supervisor.rollback"} <= names
        snap = REGISTRY.snapshot()
        assert snap["gem_supervisor_faults_detected_total"] >= 1
        assert snap["gem_supervisor_rollbacks_total"] >= 1


# -- CLI end to end -----------------------------------------------------------


class TestRunObservabilityFlags:
    def test_trace_report_metrics_outputs(self, capsys, tmp_path):
        trace = str(tmp_path / "trace.json")
        report = str(tmp_path / "report.json")
        metrics = str(tmp_path / "metrics.prom")
        assert cli.main_run([
            "openpiton1", "--max-cycles", "8",
            "--trace-out", trace, "--report-out", report,
            "--metrics-out", metrics, "--log-level", "info",
        ]) == 0
        out = capsys.readouterr().out
        assert "trace written" in out and "report written" in out
        assert validate_trace(trace) == []
        doc = json.load(open(trace))
        names = [e["name"] for e in doc["traceEvents"]]
        assert any(n.startswith("compile:") for n in names)
        cycle_evs = [
            e for e in doc["traceEvents"]
            if e["name"] == "cycle" and e.get("cat") == "runtime"
        ]
        assert len(cycle_evs) >= 1
        phase_names = {
            e["name"] for e in doc["traceEvents"]
            if e.get("cat") == "runtime.phase"
        }
        assert phase_names == set(CYCLE_PHASES)
        rep = load_report(report)
        assert rep.design == "openpiton1" and rep.cycles == 8
        assert rep.extras["trace_out"] == trace
        prom = open(metrics).read()
        assert "gem_interp_cycles" in prom

    def test_supervised_trace_has_supervisor_events(self, tmp_path):
        trace = str(tmp_path / "trace.json")
        report = str(tmp_path / "report.json")
        assert cli.main_run([
            "openpiton1", "--max-cycles", "16",
            "--checkpoint-every", "4", "--scrub-every", "4",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--trace-out", trace, "--report-out", report, "--profile",
        ]) == 0
        names = {e["name"] for e in json.load(open(trace))["traceEvents"]}
        assert "supervisor.scrub" in names
        assert "checkpoint.save" in names
        rep = load_report(report)
        assert rep.kind == "gem-run/supervised"
        assert rep.extras["checkpoints_written"] == 4
        assert any(rep.phase_times.values())

    def test_log_level_accepted_everywhere(self, capsys):
        assert cli.main_run([
            "openpiton1", "--max-cycles", "4", "--log-level", "debug",
        ]) == 0
        with pytest.raises(SystemExit):
            cli.main_run(["openpiton1", "--log-level", "loud"])


class TestPerfCommand:
    @pytest.fixture()
    def reports(self, tmp_path):
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        write_report(_report(), a)
        write_report(_report(elapsed_s=1.0), b)
        return a, b

    def test_show_and_diff(self, capsys, reports):
        a, b = reports
        assert cli.main_perf(["show", a]) == 0
        assert "rocketchip/wl" in capsys.readouterr().out
        assert cli.main_perf(["diff", a, b]) == 0
        assert "cycles_per_s" in capsys.readouterr().out

    def test_validate_trace_exit_codes(self, capsys, tmp_path):
        good = str(tmp_path / "good.json")
        json.dump({"traceEvents": [{"name": "a", "ph": "i", "ts": 0.0}]},
                  open(good, "w"))
        assert cli.main_perf(["validate-trace", good]) == 0
        bad = str(tmp_path / "bad.json")
        json.dump({"traceEvents": [{"ph": "Q"}]}, open(bad, "w"))
        assert cli.main_perf(["validate-trace", bad]) == 1

    def test_compare_warn_only_vs_strict(self, capsys, reports, tmp_path):
        a, _ = reports
        bench = str(tmp_path / "bench.json")
        json.dump({"rows": [{
            "design": "rocketchip", "engine_mode": "fused", "batch": 1,
            "cycles_per_s": 1e9, "lane_cycles_per_s": 1e9,
        }]}, open(bench, "w"))
        assert cli.main_perf(["compare", a, bench]) == 0  # warn-only
        assert "WARNING" in capsys.readouterr().out
        assert cli.main_perf(["compare", a, bench, "--strict"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_vacuous_gate_is_explicit(self, capsys, reports, tmp_path):
        a, _ = reports
        bench = str(tmp_path / "bench.json")
        json.dump({"rows": []}, open(bench, "w"))
        assert cli.main_perf(["compare", a, bench]) == 0
        out = capsys.readouterr().out
        assert "no comparable baselines" in out
