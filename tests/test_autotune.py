"""Compile-time autotuner: knob sweep, SA refinement, tuning cache.

Covers the docs/TUNING.md contracts:

* the SA placement refinement never worsens ``placement_cost``, is
  deterministic under a seed, and leaves simulated behavior bit-identical;
* the knob sweep is deterministic, records unmappable candidates instead
  of dying, and never selects a measured winner below the default;
* the tuning cache turns the second autotune of the same (design CRC,
  knob space, options) into a pure cache hit — no sweep re-run — proved
  on the ``gem_tune_*`` counters.
"""

from __future__ import annotations

import pytest

from repro.core.autotune import (
    AutotuneConfig,
    AutotuneResult,
    KnobSpace,
    apply_knobs,
    autotune,
    design_crc,
)
from repro.core.boomerang import BoomerangConfig
from repro.core.compiler import GemCompiler, GemConfig
from repro.core.depth_opt import optimize
from repro.core.partition import PartitionConfig, partition_design
from repro.core.placement import RefineConfig, place_partition, placement_cost
from repro.core.synthesis import synthesize
from repro.obs.metrics import REGISTRY
from tests.helpers import random_circuit, random_vectors


def _tiny_config(**kwargs) -> GemConfig:
    return GemConfig(
        partition=PartitionConfig(
            gates_per_partition=kwargs.pop("gates_per_partition", 400),
            num_stages=kwargs.pop("num_stages", 2),
        ),
        boomerang=BoomerangConfig(width_log2=kwargs.pop("width_log2", 9)),
        **kwargs,
    )


@pytest.fixture(scope="module")
def tiny():
    circ = random_circuit(11, n_ops=240, max_width=12, with_memory=False)
    synth = optimize(synthesize(circ))
    return circ, synth


def _counter_value(name: str) -> float:
    return REGISTRY.counter(name).value


class TestRefinement:
    """Seeded simulated annealing over boomerang placement."""

    def _first_spec(self, synth, config):
        plan = partition_design(synth.eaig, config.partition)
        # the deepest partition benefits most; just take the largest
        specs = [s for stage in plan.stages for s in stage]
        return max(specs, key=lambda s: len(s.nodes))

    def test_never_worse_and_deterministic(self, tiny):
        _, synth = tiny
        config = _tiny_config()
        spec = self._first_spec(synth, config)
        base = place_partition(synth.eaig, spec, config.boomerang)
        refine = RefineConfig(iterations=12, seed=5)
        a = place_partition(synth.eaig, spec, config.boomerang, refine=refine)
        b = place_partition(synth.eaig, spec, config.boomerang, refine=refine)
        assert placement_cost(a) <= placement_cost(base)
        assert placement_cost(a) == placement_cost(b)
        assert [layer.perm.tolist() for layer in a.layers] == [
            layer.perm.tolist() for layer in b.layers
        ]

    def test_zero_iterations_is_baseline(self, tiny):
        _, synth = tiny
        config = _tiny_config()
        spec = self._first_spec(synth, config)
        base = place_partition(synth.eaig, spec, config.boomerang)
        off = place_partition(
            synth.eaig, spec, config.boomerang, refine=RefineConfig(iterations=0)
        )
        assert placement_cost(base) == placement_cost(off)
        assert [layer.perm.tolist() for layer in base.layers] == [
            layer.perm.tolist() for layer in off.layers
        ]

    def test_refined_compile_outputs_bit_identical(self, tiny):
        circ, synth = tiny
        default = GemCompiler(_tiny_config()).compile(synth)
        refined = GemCompiler(
            _tiny_config(refine=RefineConfig(iterations=8, seed=2))
        ).compile(synth)
        assert default.report.config_digest != refined.report.config_digest
        sim_d, sim_r = default.simulator(), refined.simulator()
        for vec in random_vectors(circ, 17, cycles=24):
            assert sim_d.step(vec) == sim_r.step(vec)


class TestKnobSpace:
    def test_grid_is_deterministic(self):
        space = KnobSpace(gates_per_partition=(256, 512), num_stages=(1, 2))
        assert space.grid() == space.grid()
        assert space.digest() == KnobSpace(
            gates_per_partition=(256, 512), num_stages=(1, 2)
        ).digest()
        assert space.digest() != KnobSpace(gates_per_partition=(256,)).digest()

    def test_apply_knobs_builds_fresh_config(self):
        base = _tiny_config()
        tuned = apply_knobs(base, {"num_stages": 1, "sa_iterations": 4})
        assert tuned.partition.num_stages == 1
        assert tuned.refine.iterations == 4
        assert tuned.partition is not base.partition  # no aliasing
        assert base.partition.num_stages == 2
        # width budget re-wired by __post_init__
        assert tuned.partition.width == tuned.boomerang.state_size

    def test_config_digest_covers_nested_knobs(self):
        a = _tiny_config()
        b = apply_knobs(a, {"num_stages": 1})
        c = _tiny_config(refine=RefineConfig(iterations=3))
        assert len({a.digest(), b.digest(), c.digest()}) == 3


class TestDesignCrc:
    def test_stable_and_structural(self, tiny):
        circ, synth = tiny
        assert design_crc(synth) == design_crc(synth)
        resynth = optimize(synthesize(circ))
        assert design_crc(synth) == design_crc(resynth)
        other = optimize(synthesize(random_circuit(12, n_ops=240, max_width=12)))
        assert design_crc(synth) != design_crc(other)


class TestAutotune:
    SPACE = KnobSpace(
        gates_per_partition=(300, 400, 600),
        num_stages=(1, 2),
        width_log2=(9,),
        sa_iterations=(0, 6),
    )

    def test_model_only_winner_and_cache_hit_counters(self, tiny, tmp_path):
        _, synth = tiny
        opts = AutotuneConfig(
            budget=5, measure_cycles=0, seed=7, cache_dir=str(tmp_path)
        )
        hits0 = _counter_value("gem_tune_cache_hits_total")
        misses0 = _counter_value("gem_tune_cache_misses_total")
        compiled0 = _counter_value("gem_tune_candidates_total")

        first = autotune(
            synth, name="tiny", base=_tiny_config(), space=self.SPACE, opts=opts
        )
        assert not first.cache_hit
        assert first.winner_label in ("default", "tuned")
        assert _counter_value("gem_tune_cache_misses_total") == misses0 + 1
        compiled_after_first = _counter_value("gem_tune_candidates_total")
        assert compiled_after_first > compiled0

        second = autotune(
            synth, name="tiny", base=_tiny_config(), space=self.SPACE, opts=opts
        )
        assert second.cache_hit
        assert second.winner_knobs == first.winner_knobs
        assert second.winner_digest == first.winner_digest
        # A cache hit runs no sweep: hit counter up, candidate counter flat.
        assert _counter_value("gem_tune_cache_hits_total") == hits0 + 1
        assert _counter_value("gem_tune_candidates_total") == compiled_after_first

    def test_unmappable_candidates_recorded_not_fatal(self, tiny, tmp_path):
        _, synth = tiny
        # width_log2=5 gives 31 usable state slots — the 2-stage cut of a
        # 240-op circuit cannot fit, so those candidates must be recorded
        # as unmappable while the sane ones proceed.
        space = KnobSpace(
            gates_per_partition=(400,),
            num_stages=(2,),
            width_log2=(5, 9),
            sa_iterations=(0,),
        )
        base = _tiny_config(max_partition_retries=0)
        result = autotune(
            synth,
            name="tiny-unmap",
            base=base,
            space=space,
            opts=AutotuneConfig(budget=4, measure_cycles=0, cache_dir=str(tmp_path)),
        )
        statuses = {c.status for c in result.candidates}
        assert "unmappable" in statuses
        assert "ok" in statuses
        assert result.winner_digest  # a mappable winner was still chosen

    def test_measured_winner_never_below_default(self, tiny, tmp_path):
        circ, synth = tiny
        stimuli = random_vectors(circ, 23, cycles=12)
        result = autotune(
            synth,
            stimuli,
            name="tiny-measured",
            base=_tiny_config(),
            space=self.SPACE,
            opts=AutotuneConfig(
                budget=4,
                top_k=2,
                measure_cycles=10,
                repeats=1,
                cache_dir=str(tmp_path),
            ),
        )
        assert result.default_measured is not None
        assert result.winner_measured is not None
        assert result.winner_measured >= result.default_measured
        if result.winner_label == "default":
            assert result.winner_knobs == {}

    def test_crashing_candidate_recorded_not_fatal(self, tiny, tmp_path):
        """A knob corner that dies mid-compile (not merely unmappable) is
        recorded as status="error" and the sweep keeps going."""
        _, synth = tiny
        base = _tiny_config()

        def compile_fn(config):
            if config.digest() != base.digest():
                raise RuntimeError("kaboom in assembly")
            return GemCompiler(config).compile(synth)

        result = autotune(
            synth,
            name="tiny-crash",
            base=base,
            space=KnobSpace(
                gates_per_partition=(400,),
                num_stages=(1,),
                width_log2=(9,),
                sa_iterations=(0,),
            ),
            opts=AutotuneConfig(budget=4, measure_cycles=0, cache_dir=str(tmp_path)),
            compile_fn=compile_fn,
        )
        statuses = [c.status for c in result.candidates]
        assert statuses[0] == "ok"
        assert "error" in statuses
        assert result.winner_label == "default"
        err = next(c for c in result.candidates if c.status == "error")
        assert "RuntimeError" in err.error

    def test_failing_base_config_is_fatal(self, tiny, tmp_path):
        """If the *base* config itself cannot compile there is nothing to
        tune against — the sweep must raise, not crown a random winner."""
        from repro.errors import UnmappableError

        _, synth = tiny
        base = _tiny_config()

        def compile_fn(config):
            if config.digest() == base.digest():
                raise RuntimeError("base is broken")
            return GemCompiler(config).compile(synth)

        with pytest.raises(UnmappableError, match="base config itself failed"):
            autotune(
                synth,
                name="tiny-badbase",
                base=base,
                # non-default candidates must be mappable so the failure is
                # attributable to the broken base, not an empty sweep
                space=KnobSpace(
                    gates_per_partition=(300,),
                    num_stages=(2,),
                    width_log2=(9,),
                    sa_iterations=(0, 6),
                ),
                opts=AutotuneConfig(
                    budget=3, measure_cycles=0, cache_dir=str(tmp_path)
                ),
                compile_fn=compile_fn,
            )

    def test_cache_payload_roundtrip(self, tiny, tmp_path):
        _, synth = tiny
        opts = AutotuneConfig(budget=3, measure_cycles=0, cache_dir=str(tmp_path))
        result = autotune(
            synth, name="tiny-rt", base=_tiny_config(), space=self.SPACE, opts=opts
        )
        loaded = AutotuneResult.from_payload(result.to_payload(), result.cache_path)
        assert loaded.winner_knobs == result.winner_knobs
        assert loaded.winning_config(_tiny_config()).digest() == result.winner_digest
