"""RAM-adapter edge-case matrix vs the word-level golden model (§III-B).

The adapter synthesis paths — width chunking onto 32-bit native blocks,
bank splitting past 13 address bits, and FF polyfill for the shapes
blocks cannot host — were previously covered only by the five curated
designs.  This matrix pins the extremes: 1-bit and 33-bit words, depth 1,
a depth-8193 request (which rounds up to 16384 and therefore splits into
two native banks), and read-during-write on both ports of a dual-read
memory at the same address (read-first semantics everywhere).

Every case runs three independent implementations in lockstep: the
word-level golden model, the synthesized gate-level reference (the first
engine that actually contains the adapter logic), and the fused GEM
engine over the assembled bitstream.
"""

from __future__ import annotations

import random

import pytest

from repro.core.compiler import GemCompiler, GemConfig
from repro.core.boomerang import BoomerangConfig
from repro.core.partition import PartitionConfig
from repro.fuzz.designgen import DesignSpec, MemSpec, _pow2_depth
from repro.rtl.builder import CircuitBuilder
from repro.rtl.netlist import Netlist, WordSim
from repro.simref.gate_sim import GateLevelSim


def _config() -> GemConfig:
    return GemConfig(
        partition=PartitionConfig(gates_per_partition=400),
        boomerang=BoomerangConfig(width_log2=10),
    )


def _mem_circuit(depth: int, width: int, *, dual_read: bool = False):
    """One memory with write port + sync read(s), all ports primary I/O."""
    b = CircuitBuilder(f"ram_{depth}x{width}")
    abits = max(1, (depth - 1).bit_length())
    addr = b.input("addr", abits)
    wdata = b.input("wdata", width)
    wen = b.input("wen", 1)
    mem = b.memory("m", depth, width)
    b.write(mem, wen, addr, wdata)
    b.output("rd", b.read(mem, addr, sync=True))
    if dual_read:
        addr2 = b.input("addr2", abits)
        b.output("rd2", b.read(mem, addr2, sync=True))
    return b.build()


def _lockstep(circuit, stimuli) -> None:
    design = GemCompiler(_config()).compile(circuit)
    golden = WordSim(Netlist(circuit))
    gate = GateLevelSim(design.synth)
    gem = design.simulator(mode="fused")
    for cycle, vec in enumerate(stimuli):
        want = golden.step(vec)
        got_gate = gate.step(vec)
        got_gem = gem.step(vec)
        assert got_gate == want, f"gate-level diverged at cycle {cycle}: {got_gate} != {want}"
        assert got_gem == want, f"GEM diverged at cycle {cycle}: {got_gem} != {want}"


def _sweep_stimuli(depth: int, width: int, seed: int, cycles: int = 40):
    """Writes and reads hammering low/high addresses and mask edges."""
    rng = random.Random(seed)
    abits = max(1, (depth - 1).bit_length())
    edge_addrs = [0, depth - 1, depth // 2, (1 << abits) - 1]
    edge_data = [0, 1, (1 << width) - 1, 1 << (width - 1)]
    out = []
    for _ in range(cycles):
        out.append(
            {
                "addr": rng.choice(edge_addrs) if rng.random() < 0.5 else rng.getrandbits(abits),
                "wdata": rng.choice(edge_data) if rng.random() < 0.5 else rng.getrandbits(width),
                "wen": rng.getrandbits(1),
            }
        )
    return out


@pytest.mark.parametrize(
    "depth,width",
    [
        (16, 1),  # width 1: single-bit chunks
        (16, 33),  # width 33: 32+1 chunking on native 32-bit blocks
        (1, 8),  # depth 1: degenerate address decode
        (2, 33),  # both extremes at once
        (64, 5),  # odd width, comfortable depth
    ],
    ids=lambda v: str(v),
)
def test_adapter_widths_and_depths(depth, width):
    _lockstep(_mem_circuit(depth, width), _sweep_stimuli(depth, width, seed=depth * 100 + width))


def test_depth_8193_rounds_up_and_splits_banks():
    """A depth-8193 request becomes a 16384-deep memory (power-of-two
    storage) and must split into two native 8192-word banks."""
    spec = DesignSpec(
        name="deep_ram",
        inputs=[("addr", 14), ("wdata", 4), ("wen", 1)],
        mems=[MemSpec(name="m", depth=8193, width=4, addr=0, wdata=1, wen=2)],
        outputs=[("rd", 3)],
    )
    assert _pow2_depth(8193) == 16384
    circuit = spec.build()
    design = GemCompiler(_config()).compile(circuit)
    (report,) = design.synth.memory_reports
    assert report.mode == "blocks"
    assert report.blocks == 2, "16384 deep / 8192-per-bank native = 2 banks"

    rng = random.Random(8193)
    # Hammer the bank boundary: addresses straddling 8191/8192.
    addrs = [8190, 8191, 8192, 8193, 0, 16383]
    stimuli = [
        {
            "addr": rng.choice(addrs) if rng.random() < 0.7 else rng.getrandbits(14),
            "wdata": rng.getrandbits(4),
            "wen": rng.getrandbits(1),
        }
        for _ in range(30)
    ]
    _lockstep(circuit, stimuli)


def test_read_during_write_same_address_both_ports():
    """Both read ports aimed at the write address while writing: sync
    reads return the *old* word (read-first), on every engine."""
    circuit = _mem_circuit(8, 6, dual_read=True)
    stimuli = []
    for cycle in range(24):
        addr = cycle % 8
        stimuli.append(
            {"addr": addr, "addr2": addr, "wdata": (cycle * 7 + 3) % 64, "wen": 1}
        )
        # Next cycle reads the same address without writing: sees the new word.
        stimuli.append({"addr": addr, "addr2": addr, "wdata": 63, "wen": 0})
    _lockstep(circuit, stimuli)


def test_polyfill_read_during_write_same_address():
    """The same read-during-write contract holds on the polyfill path
    (async read port forces FF+mux synthesis): combinational reads see
    the old word during the write cycle, the new word after the edge."""
    b = CircuitBuilder("poly_rdw")
    addr = b.input("addr", 3)
    wdata = b.input("wdata", 4)
    wen = b.input("wen", 1)
    mem = b.memory("m", 8, 4)
    b.write(mem, wen, addr, wdata)
    b.output("rd", b.read(mem, addr, sync=False))
    circuit = b.build()
    design = GemCompiler(_config()).compile(circuit)
    (report,) = design.synth.memory_reports
    assert report.mode == "polyfill"

    stimuli = [
        {"addr": c % 8, "wdata": (3 * c + 1) % 16, "wen": int(c % 3 != 0)}
        for c in range(30)
    ]
    _lockstep(circuit, stimuli)
