"""MiniRV ISA: encoding, assembler, and the hardware/software match.

The hypothesis fuzzer generates random straight-line-plus-branches
programs and checks the hardware core against the software golden model —
the strongest correctness statement for the CPU substrate.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs import isa_mini as mi
from repro.designs.riscish import CoreConfig, build_core
from repro.rtl import CircuitBuilder, Netlist, WordSim


class TestEncoding:
    @given(
        st.integers(0, 63),
        st.integers(0, 15),
        st.integers(0, 15),
        st.integers(0, 15),
        st.integers(-(1 << 13), (1 << 13) - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, opcode, rd, rs1, rs2, imm):
        word = mi.encode(opcode, rd, rs1, rs2, imm)
        assert mi.decode(word) == (opcode, rd, rs1, rs2, imm)

    def test_range_checks(self):
        with pytest.raises(ValueError):
            mi.encode(64)
        with pytest.raises(ValueError):
            mi.encode(0, rd=16)
        with pytest.raises(ValueError):
            mi.encode(0, imm=1 << 13)


class TestAssembler:
    def test_labels_resolve_relative(self):
        a = mi.Assembler()
        a.label("start")
        a.addi(1, 0, 1)
        a.bne(1, 0, "start")
        prog = a.assemble()
        _, _, _, _, imm = mi.decode(prog[1])
        assert imm == -2  # back to pc 0 from next pc 2

    def test_undefined_label(self):
        a = mi.Assembler()
        a.jal(0, "nowhere")
        with pytest.raises(ValueError, match="undefined label"):
            a.assemble()

    def test_duplicate_label(self):
        a = mi.Assembler()
        a.label("x")
        with pytest.raises(ValueError, match="duplicate"):
            a.label("x")


class TestReferenceModel:
    def test_r0_hardwired_zero(self):
        a = mi.Assembler()
        a.addi(0, 0, 7)
        a.out(0)
        a.halt()
        assert mi.reference_execute(a.assemble())["out"] == [0]

    def test_halt_stops(self):
        a = mi.Assembler()
        a.halt()
        a.out(1)
        ref = mi.reference_execute(a.assemble())
        assert ref["out"] == []

    def test_memory_wraps(self):
        a = mi.Assembler()
        a.addi(1, 0, 5)
        a.st(1, 0, 0)
        a.lui(2, 1)  # large base
        a.ld(3, 2, 0)  # wraps modulo depth -> dmem[large % 256]
        a.out(3)
        a.halt()
        ref = mi.reference_execute(a.assemble(), dmem_depth=256)
        assert ref["out"] == [5]  # (1 << 18) % 256 == 0, where 5 was stored


def _run_hw(program, dmem_init=None, max_cycles=4000, config=None):
    b = CircuitBuilder("core")
    ports = build_core(
        b, "c", program, dmem_init=dmem_init, config=config or CoreConfig(imem_depth=64, dmem_depth=64)
    )
    b.output("halted", ports.halted)
    b.output("out", ports.out)
    b.output("out_valid", ports.out_valid)
    sim = WordSim(Netlist(b.build()))
    outs = []
    for _ in range(max_cycles):
        o = sim.step({})
        if o["out_valid"]:
            outs.append(o["out"])
        if o["halted"]:
            break
    else:
        raise AssertionError("core did not halt")
    return outs


# Random-program strategy: ALU ops, memory ops, OUTs, short forward
# branches, guaranteed HALT at the end (and a step budget in the reference).
_reg = st.integers(0, 7)
_instr = st.one_of(
    st.tuples(st.sampled_from([mi.ADD, mi.SUB, mi.AND, mi.OR, mi.XOR, mi.MUL, mi.SHL, mi.SHR]), _reg, _reg, _reg),
    st.tuples(st.just(mi.ADDI), _reg, _reg, st.integers(-64, 64)),
    st.tuples(st.just(mi.LUI), _reg, st.integers(0, 255)),
    st.tuples(st.just(mi.LD), _reg, _reg, st.integers(0, 31)),
    st.tuples(st.just(mi.ST), _reg, _reg, st.integers(0, 31)),
    st.tuples(st.just(mi.OUT), _reg),
    st.tuples(st.sampled_from([mi.BEQ, mi.BNE, mi.BLT]), _reg, _reg, st.integers(1, 3)),
)


@given(st.lists(_instr, min_size=1, max_size=24), st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_hw_matches_reference_on_random_programs(instrs, seed_word):
    a = mi.Assembler()
    a.lui(1, seed_word & 0x1FFF)  # give registers some entropy
    a.addi(2, 1, (seed_word >> 14) & 0x3F)
    for item in instrs:
        op = item[0]
        if op in (mi.ADD, mi.SUB, mi.AND, mi.OR, mi.XOR, mi.MUL, mi.SHL, mi.SHR):
            a._emit(op, item[1], item[2], item[3])
        elif op == mi.ADDI:
            a.addi(item[1], item[2], item[3])
        elif op == mi.LUI:
            a.lui(item[1], item[2])
        elif op == mi.LD:
            a.ld(item[1], item[2], item[3])
        elif op == mi.ST:
            a.st(item[1], item[2], item[3])
        elif op == mi.OUT:
            a.out(item[1])
        else:  # forward branch; target stays inside the program + halt pad
            a._emit(op, 0, item[1], item[2], item[3])
    a.halt()
    a.halt()
    a.halt()
    a.halt()  # pad so short forward branches always land on a halt
    program = a.assemble()
    ref = mi.reference_execute(program, dmem_depth=64)
    hw = _run_hw(program)
    assert hw == ref["out"]


class TestCoreDetails:
    def test_out_valid_is_a_pulse(self):
        a = mi.Assembler()
        a.addi(1, 0, 9)
        a.out(1)
        a.addi(2, 0, 1)
        a.addi(2, 0, 2)
        a.halt()
        b = CircuitBuilder("core")
        ports = build_core(b, "c", a.assemble(), config=CoreConfig(imem_depth=32, dmem_depth=32))
        b.output("out_valid", ports.out_valid)
        b.output("halted", ports.halted)
        sim = WordSim(Netlist(b.build()))
        pulses = 0
        for _ in range(60):
            o = sim.step({})
            pulses += o["out_valid"]
            if o["halted"]:
                break
        assert pulses == 1

    def test_program_too_big_rejected(self):
        with pytest.raises(ValueError, match="exceeds imem"):
            build_core(
                CircuitBuilder(), "c", [0] * 100, config=CoreConfig(imem_depth=64)
            )

    def test_retired_counts_instructions(self):
        a = mi.Assembler()
        for _ in range(5):
            a.addi(1, 1, 1)
        a.halt()
        b = CircuitBuilder("core")
        ports = build_core(b, "c", a.assemble(), config=CoreConfig(imem_depth=32, dmem_depth=32))
        b.output("retired", ports.retired)
        b.output("halted", ports.halted)
        sim = WordSim(Netlist(b.build()))
        for _ in range(40):
            o = sim.step({})
            if o["halted"]:
                break
        assert o["retired"] == 5
