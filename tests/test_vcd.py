"""VCD waveform round-trips (repro.waveform.vcd)."""

import io
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.waveform.vcd import VcdReader, VcdWriter, _make_id, read_vcd_stimuli, write_vcd


class TestIdentifiers:
    def test_unique_and_printable(self):
        ids = [_make_id(i) for i in range(500)]
        assert len(set(ids)) == 500
        for ident in ids:
            assert all(33 <= ord(c) <= 126 for c in ident)


class TestRoundTrip:
    def _roundtrip(self, widths, stimuli):
        buf = io.StringIO()
        writer = VcdWriter(buf, widths)
        for vec in stimuli:
            writer.sample(vec)
        writer.close()
        buf.seek(0)
        reader = VcdReader(buf)
        return reader.cycles()

    def test_simple(self):
        widths = {"clk_en": 1, "data": 8}
        stimuli = [{"clk_en": 1, "data": 5}, {"clk_en": 0, "data": 5}, {"data": 255}]
        cycles = self._roundtrip(widths, stimuli)
        assert len(cycles) == 3
        assert cycles[0] == {"clk_en": 1, "data": 5}
        assert cycles[1] == {"clk_en": 0, "data": 5}
        assert cycles[2] == {"clk_en": 0, "data": 255}  # missing -> 0… then set

    def test_unspecified_signals_are_zero(self):
        cycles = self._roundtrip({"a": 4}, [{"a": 9}, {}])
        assert cycles[1]["a"] == 0

    def test_identical_cycles_preserved(self):
        cycles = self._roundtrip({"a": 4}, [{"a": 3}] * 5)
        assert len(cycles) == 5
        assert all(c["a"] == 3 for c in cycles)

    @given(
        st.lists(
            st.fixed_dictionaries({"x": st.integers(0, 255), "y": st.integers(0, 1)}),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_random_roundtrip(self, stimuli):
        cycles = self._roundtrip({"x": 8, "y": 1}, stimuli)
        assert cycles == [{"x": v["x"], "y": v["y"]} for v in stimuli]

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_widths_sparse_roundtrip(self, data):
        """Random widths 1..64, several signals, sparse per-cycle changes:
        the reader must reconstruct exactly what the writer modeled
        (omitted signals read as 0)."""
        n_signals = data.draw(st.integers(1, 5), label="signals")
        widths = {
            f"s{i}": data.draw(st.integers(1, 64), label=f"width{i}")
            for i in range(n_signals)
        }
        n_cycles = data.draw(st.integers(1, 20), label="cycles")
        stimuli = []
        for _ in range(n_cycles):
            vec = {
                name: data.draw(st.integers(0, (1 << width) - 1))
                for name, width in widths.items()
                if data.draw(st.booleans())  # sparse: most signals idle
            }
            stimuli.append(vec)
        cycles = self._roundtrip(widths, stimuli)
        expected = [
            {name: vec.get(name, 0) for name in widths} for vec in stimuli
        ]
        assert cycles == expected


class TestDumpvars:
    """The $dumpvars initial-value block (cycle 0)."""

    def _written(self, widths, stimuli):
        buf = io.StringIO()
        writer = VcdWriter(buf, widths)
        for vec in stimuli:
            writer.sample(vec)
        writer.close()
        return buf.getvalue()

    def test_initial_block_present_with_driven_values(self):
        text = self._written({"a": 1, "b": 4}, [{"a": 1, "b": 9}, {"a": 0}])
        assert "$dumpvars" in text
        block = text.split("$dumpvars", 1)[1].split("$end", 1)[0]
        assert "b1001" in block, "driven vector gets its real initial value"

    def test_undriven_signals_xfilled(self):
        text = self._written({"a": 1, "b": 4}, [{"a": 1}, {"a": 0, "b": 3}])
        block = text.split("$dumpvars", 1)[1].split("$end", 1)[0]
        assert "bxxxx" in block, "undriven vector is x-filled, width-exact"
        buf = io.StringIO(text)
        cycles = VcdReader(buf).cycles()
        assert cycles[0]["b"] == 0  # x reads back as 0
        assert cycles[1]["b"] == 3

    def test_undriven_scalar_xfilled(self):
        text = self._written({"a": 4, "flag": 1}, [{"a": 2}])
        block = text.split("$dumpvars", 1)[1].split("$end", 1)[0]
        assert "x" in block.replace("bxxxx", "")


class TestFiles:
    def test_write_and_read_file(self, tmp_path):
        path = str(tmp_path / "stim.vcd")
        rng = random.Random(0)
        stimuli = [{"a": rng.getrandbits(8), "b": rng.getrandbits(1)} for _ in range(20)]
        count = write_vcd(path, stimuli, {"a": 8, "b": 1})
        assert count == 20
        back = read_vcd_stimuli(path)
        assert back == stimuli

    def test_replay_into_simulator(self, tmp_path):
        """Stimuli written to VCD drive a simulator to identical results —
        the paper's execution-stage waveform flow."""
        from repro.rtl import CircuitBuilder, Netlist, WordSim

        b = CircuitBuilder()
        x = b.input("x", 8)
        acc = b.reg("acc", 8)
        acc.next = acc + x
        b.output("acc", acc)
        circuit = b.build()

        rng = random.Random(1)
        stimuli = [{"x": rng.getrandbits(8)} for _ in range(25)]
        path = str(tmp_path / "replay.vcd")
        write_vcd(path, stimuli, {"x": 8})
        direct = WordSim(Netlist(circuit)).run(stimuli)
        replayed = WordSim(Netlist(circuit)).run(read_vcd_stimuli(path))
        assert direct == replayed


class TestReaderTolerance:
    def test_x_and_z_values_read_as_zero(self):
        text = (
            "$timescale 1ns $end\n"
            "$scope module top $end\n"
            "$var wire 1 ! sig $end\n"
            "$upscope $end\n"
            "$enddefinitions $end\n"
            "#0\nx!\n#1\n1!\n#2\n"
        )
        reader = VcdReader(io.StringIO(text))
        cycles = reader.cycles()
        assert cycles[0]["sig"] == 0
        assert cycles[1]["sig"] == 1

    def test_hierarchical_names(self):
        text = (
            "$scope module top $end\n"
            "$scope module sub $end\n"
            "$var wire 4 ! bus $end\n"
            "$upscope $end\n"
            "$upscope $end\n"
            "$enddefinitions $end\n"
            "#0\nb1010 !\n#1\n"
        )
        reader = VcdReader(io.StringIO(text))
        assert reader.cycles()[0]["sub.bus"] == 0b1010
