"""Experiment F6 — §IV claim: boomerang layers are 6–8x fewer than levels.

"The number of boomerang layers is 6–8x smaller than the logic depth
(e.g., reduced from 148 to 19 for Gemmini)."  Table I's #Levels / #Layers
columns give per-design ratios between 4.3x (RocketChip 82/13... 6.3x) and
8.25x (OpenPiton8 66/8→... the paper's range is roughly 5–8x); we assert a
3–10x band at reproduction scale.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.runner import DESIGNS, compile_design
from repro.harness.tables import PAPER_TABLE1, format_table, geomean


def _measure():
    rows = []
    for name in DESIGNS:
        report = compile_design(name).report
        paper = PAPER_TABLE1[name]
        rows.append(
            {
                "design": name,
                "levels": report.levels,
                "layers": report.layers,
                "ratio": round(report.levels / report.layers, 2),
                "paper_levels": paper["levels"],
                "paper_layers": paper["layers"],
                "paper_ratio": round(paper["levels"] / paper["layers"], 2),
            }
        )
    return rows


def test_layers_vs_depth(benchmark, record_experiment):
    rows = run_once(benchmark, _measure)
    print("\nLayers vs logic depth (ours vs paper):")
    print(format_table(rows))
    ours = geomean([row["ratio"] for row in rows])
    paper = geomean([row["paper_ratio"] for row in rows])
    print(f"geomean ratio: ours {ours:.2f}x, paper {paper:.2f}x")
    record_experiment(
        "F6_layers_vs_depth", {"rows": rows, "geomean_ours": ours, "geomean_paper": paper}
    )
    for row in rows:
        assert 3.0 <= row["ratio"] <= 12.0, row
    # Within a factor of two of the paper's geomean compression.
    assert paper / 2 <= ours <= paper * 2
