"""Experiment A2 — ablation of Algorithm 1 (partition merging).

The paper over-partitions and merges back subject to the width constraint,
claiming "it is easy to guarantee that each partition has at least 50%
effective bit utilization".  We compare the pre-merge and post-merge plans
on every design: partition count, replication cost, and utilization.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.placement import place_partition
from repro.harness.runner import DESIGNS, compile_design
from repro.harness.tables import format_table


def _measure():
    rows = []
    for name in DESIGNS:
        design = compile_design(name)
        eaig = design.synth.eaig
        pre_plan = design.plan  # the over-partitioned plan before Algorithm 1
        merged = design.merge
        pre_util = []
        for spec in pre_plan.partitions:
            placed = place_partition(eaig, spec, design.merge.placements[0].config)
            pre_util.append(placed.num_slots / placed.config.state_size)
        rows.append(
            {
                "design": name,
                "parts_before": pre_plan.num_partitions,
                "parts_after": merged.plan.num_partitions,
                "repl_before": round(pre_plan.replication_cost(), 3),
                "repl_after": round(merged.plan.replication_cost(), 3),
                "util_before": round(sum(pre_util) / len(pre_util), 3),
                "util_after": round(merged.mean_utilization(), 3),
            }
        )
    return rows


def test_merging_recovers_replication_and_utilization(benchmark, record_experiment):
    rows = run_once(benchmark, _measure)
    print("\nA2: Algorithm 1 merging, before vs after:")
    print(format_table(rows))
    record_experiment("A2_merging_ablation", {"rows": rows})
    for row in rows:
        # Merging never increases partition count or replication.
        assert row["parts_after"] <= row["parts_before"], row
        assert row["repl_after"] <= row["repl_before"] + 1e-9, row
        # Utilization improves (or was already high).
        assert row["util_after"] >= row["util_before"] - 0.05, row
    # The paper's 50% bar, on designs where merging had room to work.
    merged_designs = [r for r in rows if r["parts_after"] < r["parts_before"]]
    assert merged_designs, "merging did nothing anywhere?"
    for row in merged_designs:
        assert row["util_after"] >= 0.4, row
