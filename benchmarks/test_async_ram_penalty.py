"""Experiment X3 — §IV: the asynchronous-RAM polyfill penalty.

"NVDLA shows the best speed-up GEM can achieve because all RAMs inside it
are mapped to E-AIG RAM blocks, but the other 4 designs have RAMs with
asynchronous read ports that can only be implemented inefficiently with
FFs and decoder logic."

Two measurements:

1. a port-type sweep on an isolated memory — gate cost and GEM cycle work
   for block mapping vs polyfill, across sizes;
2. the designs themselves — NVDLA all-blocks vs the CPU designs' polyfilled
   register files, and the resulting share of polyfill logic.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.ram_mapping import RamMappingConfig
from repro.core.synthesis import SynthesisConfig, synthesize
from repro.harness.runner import DESIGNS, design_synth
from repro.harness.tables import format_table
from repro.rtl import CircuitBuilder


def _memory_circuit(depth, width, sync):
    b = CircuitBuilder(f"mem_{depth}x{width}_{'s' if sync else 'a'}")
    mem = b.memory("m", depth, width)
    b.write(mem, b.input("wen", 1), b.input("waddr", mem.addr_bits), b.input("wdata", width))
    b.output("rd", b.read(mem, b.input("raddr", mem.addr_bits), sync=sync))
    return b.build()


def _sweep():
    cfg = SynthesisConfig(ram=RamMappingConfig(addr_bits=6, data_bits=32))
    rows = []
    for depth, width in [(64, 32), (128, 32), (256, 32), (256, 64)]:
        sync = synthesize(_memory_circuit(depth, width, True), cfg)
        asyn = synthesize(_memory_circuit(depth, width, False), cfg)
        rows.append(
            {
                "memory": f"{depth}x{width}",
                "sync_gates": sync.eaig.num_gates(),
                "async_gates": asyn.eaig.num_gates(),
                "penalty": round(asyn.eaig.num_gates() / max(1, sync.eaig.num_gates()), 1),
                "polyfill_ffs": asyn.memory_reports[0].polyfill_ffs,
            }
        )
    return rows


def test_port_type_sweep(benchmark, record_experiment):
    rows = run_once(benchmark, _sweep)
    print("\nAsync-read polyfill penalty (isolated memory):")
    print(format_table(rows))
    record_experiment("X3_port_sweep", {"rows": rows})
    for row in rows:
        assert row["penalty"] > 5.0, row
    # Polyfill cost is linear in depth x width (one FF per bit)…
    for row in rows:
        depth, width = (int(x) for x in row["memory"].split("x"))
        assert row["polyfill_ffs"] == depth * width, row
    # …while block mapping stays a handful of adapter gates.
    async_gates = [row["async_gates"] for row in rows]
    assert async_gates == sorted(async_gates)
    assert rows[-2]["async_gates"] > 100 * rows[-2]["sync_gates"]


def test_designs_polyfill_share(benchmark, record_experiment):
    def measure():
        rows = []
        for name in DESIGNS:
            synth = design_synth(name)
            polyfill_ffs = sum(r.polyfill_ffs for r in synth.memory_reports)
            blocks = sum(r.blocks for r in synth.memory_reports)
            modes = {r.mode for r in synth.memory_reports}
            rows.append(
                {
                    "design": name,
                    "ram_blocks": blocks,
                    "polyfill_ffs": polyfill_ffs,
                    "all_sync": modes == {"blocks"},
                }
            )
        return rows

    rows = run_once(benchmark, measure)
    print("\nRAM mapping per design (the paper's NVDLA-vs-rest split):")
    print(format_table(rows))
    record_experiment("X3_design_split", {"rows": rows})
    by = {row["design"]: row for row in rows}
    # NVDLA: every memory on native blocks (paper: why it's the best case).
    assert by["nvdla"]["all_sync"]
    assert by["nvdla"]["polyfill_ffs"] == 0
    # Every other design pays the polyfill somewhere.
    for name in ("rocketchip", "gemmini", "openpiton1", "openpiton8"):
        assert by[name]["polyfill_ffs"] > 0, name
