"""Experiment C1 — stage-fused single-instance cycle latency.

The tentpole acceptance of the stage-fused executor: at batch=1 the
per-cycle cost of the legacy interpreter is dominated by NumPy dispatch
(thousands of tiny kernels per cycle — the software analogue of the
kernel-launch tax GEM's megakernel avoids, PAPER §III-E).  Fusing each
stage into a handful of whole-stage array ops (constant-folded, CSE'd,
wave-scheduled AND DAG; see docs/ENGINE.md §6) must therefore multiply
batch=1 cycles/sec while staying bit-identical.

Writes ``BENCH_cycle.json`` at the repo root (batch=1 cycles/sec for
legacy vs fused on rocketchip + gemmini, plus the per-cycle array-op
counts from the new ``CycleCounters`` fields) so the latency trajectory
is tracked from this PR onward; the CI smoke job runs exactly this file.
Acceptance: fused ≥ 5x legacy cycles/sec on rocketchip with the
per-cycle array-op count reduced ≥ 10x; gemmini is tracked with softer
floors (its DAG is deeper and wider, so dispatch amortizes less).

Every row now carries a ``config`` label (docs/TUNING.md): the historical
``default`` rows plus ``tuned`` fused rows compiled under the winner of a
bounded compile-time autotune (stage-count sweep — merging to one stage
eliminates the stage-boundary publish/reload traffic at batch=1).  The
tuned and default configs are measured *interleaved* (round-robin
repeats, best-of each) because this host's frequency drift is larger
than the knob effects being measured.  Acceptance: the tuned config
never loses to the default beyond measurement noise
(``TUNED_GAIN_HARD_FLOOR``), outputs stay bit-identical, and the gain
against the aspirational ≥ 10% target (``TUNED_GAIN_TARGET``) is
recorded either way — on this dispatch-bound host the honest knob
effect is ~0-5%; the analytical model puts the same winner at ~1.8x on
the paper's GPU target (see EXPERIMENTS.md).

Two warn-only four-state rows ride along: openpiton1 compiled plain and
through the dual-rail transform, measured on the same fused batch=1
path.  The dual-rail cost ratio is recorded (``fourstate_cost``) but
never gated.
"""

import json
import os

from benchmarks.conftest import run_once, write_run_reports
from repro.core.autotune import AutotuneConfig, KnobSpace
from repro.harness.runner import (
    autotune_design,
    compile_design,
    design_workloads,
    measure_batch_throughput,
)

BENCH_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_cycle.json")
)
DESIGNS = ("rocketchip", "gemmini")
MODES = ("legacy", "fused")
CYCLES = 40
WALL_FLOOR = {"rocketchip": 5.0, "gemmini": 3.0}
OP_FLOOR = {"rocketchip": 10.0, "gemmini": 6.0}
#: the curated sweep: stage count is the dominant batch=1 fused lever
TUNE_SPACE = KnobSpace(
    gates_per_partition=(3072,), num_stages=(None, 1), sa_iterations=(0,)
)
TUNE_OPTS = AutotuneConfig(budget=4, top_k=2, measure_cycles=CYCLES, repeats=3, seed=0)
#: the tuned config must never lose to the default beyond host noise
TUNED_GAIN_HARD_FLOOR = 0.95
#: the aspirational target (ISSUE acceptance); recorded, warned if missed
TUNED_GAIN_TARGET = 1.10


def _assert_outputs_identical(design: str, tuned_config, cycles: int = CYCLES) -> None:
    """Tuning must not change simulated behavior, only its speed."""
    default = compile_design(design)
    tuned = compile_design(design, tuned_config)
    wls = design_workloads(design)
    stimuli = wls[next(iter(wls))].stimuli[:cycles]
    sim_d = default.simulator(batch=1, mode="fused")
    sim_t = tuned.simulator(batch=1, mode="fused")
    for i, vec in enumerate(stimuli):
        out_d, out_t = sim_d.step(vec), sim_t.step(vec)
        assert out_d == out_t, f"{design}: tuned outputs diverge at cycle {i}"


def test_cycle_latency(benchmark, record_experiment):
    # Warm the compile cache and both engines' first-touch costs (decode,
    # fusion, allocation) so neither mode pays them inside the timed run.
    for design in DESIGNS:
        for mode in MODES:
            measure_batch_throughput(design, batch=1, max_cycles=5, engine_mode=mode)

    def measure():
        return [
            measure_batch_throughput(design, batch=1, max_cycles=CYCLES, engine_mode=mode)
            for design in DESIGNS
            for mode in MODES
        ]

    rows = run_once(benchmark, measure)
    by_key = {(row["design"], row["engine_mode"]): row for row in rows}
    speedups = {}
    op_ratios = {}
    for design in DESIGNS:
        legacy = by_key[(design, "legacy")]
        fused = by_key[(design, "fused")]
        speedups[design] = fused["cycles_per_s"] / legacy["cycles_per_s"]
        op_ratios[design] = (
            fused["array_ops_per_cycle"] / fused["fused_array_ops_per_cycle"]
        )

    # Tuned rows: the autotuner picks (or recalls) the winning config per
    # design, its compile lands in the shared compile cache, and the tuned
    # fused run is measured under the same conditions as the default rows.
    tuned_gain = {}
    tuned_knobs = {}
    for design in DESIGNS:
        tune = autotune_design(design, space=TUNE_SPACE, opts=TUNE_OPTS)
        config = tune.winning_config()
        _assert_outputs_identical(design, config)
        for label, cfg in (("default", None), ("tuned", config)):
            measure_batch_throughput(  # warm decode/fusion outside the timing
                design, batch=1, max_cycles=5, config=cfg, config_label=label
            )
        # Interleaved round-robin repeats, best-of each: comparing a tuned
        # run against the default row measured minutes earlier would let
        # host frequency drift masquerade as a knob effect.
        best = {}
        for _ in range(3):
            for label, cfg in (("default", None), ("tuned", config)):
                row = measure_batch_throughput(
                    design, batch=1, max_cycles=CYCLES, config=cfg, config_label=label
                )
                if (
                    label not in best
                    or row["cycles_per_s"] > best[label]["cycles_per_s"]
                ):
                    best[label] = row
        rows.append(best["tuned"])
        tuned_gain[design] = (
            best["tuned"]["cycles_per_s"] / best["default"]["cycles_per_s"]
        )
        tuned_knobs[design] = tune.winner_knobs

    # Four-state rows (warn-only): openpiton1 compiled plain and through
    # the dual-rail transform, measured on the same fused batch=1 path
    # (openpiton1 is the cheapest dual-rail compile in the registry, so
    # this stays a smoke-scale measurement).  Both rails are ordinary
    # lane-plane words, so the expected cost is ~2x the 2-state row plus
    # the x-prop glue; the ratio is recorded so the trajectory is
    # tracked, but never gated — dual-rail throughput is a capability,
    # not a latency claim (docs/ENGINE.md §7).
    for values in (2, 4):  # warm compiles/decode outside the timing
        measure_batch_throughput(
            "openpiton1", batch=1, max_cycles=5, engine_mode="fused", values=values
        )
    plain_row = measure_batch_throughput(
        "openpiton1", batch=1, max_cycles=CYCLES, engine_mode="fused", values=2
    )
    four_row = measure_batch_throughput(
        "openpiton1", batch=1, max_cycles=CYCLES, engine_mode="fused", values=4
    )
    # Kept out of ``rows``: consumers of that list (the perf-model
    # calibration test, gem-perf gates) expect legacy/fused pairs per
    # design; these two are a self-contained fused-only comparison.
    fourstate_cost = plain_row["cycles_per_s"] / four_row["cycles_per_s"]

    payload = {
        "cycles": CYCLES,
        "batch": 1,
        "rows": rows,
        "fused_speedup": speedups,
        "array_op_reduction": op_ratios,
        "tuned_gain": tuned_gain,
        "tuned_gain_target": TUNED_GAIN_TARGET,
        "tuned_knobs": tuned_knobs,
        "fourstate_cost": fourstate_cost,
        "fourstate_rows": [plain_row, four_row],
    }
    with open(BENCH_PATH, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    record_experiment("cycle_latency", payload)
    write_run_reports("cycle_latency", rows)

    print(f"\nbatch=1 cycle latency, legacy vs fused ({CYCLES} cycles):")
    for design in DESIGNS:
        legacy = by_key[(design, "legacy")]
        fused = by_key[(design, "fused")]
        print(
            f"  {design:10s} legacy {legacy['cycles_per_s']:8.0f} c/s  "
            f"fused {fused['cycles_per_s']:8.0f} c/s  "
            f"({speedups[design]:5.2f}x wall, "
            f"{op_ratios[design]:5.1f}x fewer array ops)"
        )
    print("tuned vs default fused (config-labelled rows):")
    for design in DESIGNS:
        print(
            f"  {design:10s} tuned gain {tuned_gain[design]:5.2f}x  "
            f"knobs {tuned_knobs[design] or '(default)'}"
        )
    print(
        f"  openpiton1 values=4 fused {four_row['cycles_per_s']:8.0f} c/s  "
        f"({fourstate_cost:.2f}x the 2-state cost; warn-only)"
    )
    if fourstate_cost > 4.0:
        print(
            f"NOTE: dual-rail per-cycle cost {fourstate_cost:.2f}x exceeds the "
            f"~2x expectation — worth profiling, but not gated here"
        )
    for design in DESIGNS:
        assert speedups[design] >= WALL_FLOOR[design], (
            f"fused mode is only {speedups[design]:.2f}x legacy on {design} "
            f"(acceptance floor: {WALL_FLOOR[design]}x)"
        )
        assert op_ratios[design] >= OP_FLOOR[design], (
            f"fusion reduces per-cycle array ops only {op_ratios[design]:.1f}x "
            f"on {design} (acceptance floor: {OP_FLOOR[design]}x)"
        )
    for design in DESIGNS:
        assert tuned_gain[design] >= TUNED_GAIN_HARD_FLOOR, (
            f"tuned config lost to the default on {design} "
            f"({tuned_gain[design]:.2f}x < {TUNED_GAIN_HARD_FLOOR}x): the "
            f"autotuner's never-worse guarantee broke"
        )
    if max(tuned_gain.values()) < TUNED_GAIN_TARGET:
        print(
            f"NOTE: tuned gain below the {TUNED_GAIN_TARGET}x target on every "
            f"design (gains: {tuned_gain}) — expected on this dispatch-bound "
            f"host; see EXPERIMENTS.md"
        )
