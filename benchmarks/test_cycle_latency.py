"""Experiment C1 — stage-fused single-instance cycle latency.

The tentpole acceptance of the stage-fused executor: at batch=1 the
per-cycle cost of the legacy interpreter is dominated by NumPy dispatch
(thousands of tiny kernels per cycle — the software analogue of the
kernel-launch tax GEM's megakernel avoids, PAPER §III-E).  Fusing each
stage into a handful of whole-stage array ops (constant-folded, CSE'd,
wave-scheduled AND DAG; see docs/ENGINE.md §6) must therefore multiply
batch=1 cycles/sec while staying bit-identical.

Writes ``BENCH_cycle.json`` at the repo root (batch=1 cycles/sec for
legacy vs fused on rocketchip + gemmini, plus the per-cycle array-op
counts from the new ``CycleCounters`` fields) so the latency trajectory
is tracked from this PR onward; the CI smoke job runs exactly this file.
Acceptance: fused ≥ 5x legacy cycles/sec on rocketchip with the
per-cycle array-op count reduced ≥ 10x; gemmini is tracked with softer
floors (its DAG is deeper and wider, so dispatch amortizes less).
"""

import json
import os

from benchmarks.conftest import run_once, write_run_reports
from repro.harness.runner import measure_batch_throughput

BENCH_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_cycle.json")
)
DESIGNS = ("rocketchip", "gemmini")
MODES = ("legacy", "fused")
CYCLES = 40
WALL_FLOOR = {"rocketchip": 5.0, "gemmini": 3.0}
OP_FLOOR = {"rocketchip": 10.0, "gemmini": 6.0}


def test_cycle_latency(benchmark, record_experiment):
    # Warm the compile cache and both engines' first-touch costs (decode,
    # fusion, allocation) so neither mode pays them inside the timed run.
    for design in DESIGNS:
        for mode in MODES:
            measure_batch_throughput(design, batch=1, max_cycles=5, engine_mode=mode)

    def measure():
        return [
            measure_batch_throughput(design, batch=1, max_cycles=CYCLES, engine_mode=mode)
            for design in DESIGNS
            for mode in MODES
        ]

    rows = run_once(benchmark, measure)
    by_key = {(row["design"], row["engine_mode"]): row for row in rows}
    speedups = {}
    op_ratios = {}
    for design in DESIGNS:
        legacy = by_key[(design, "legacy")]
        fused = by_key[(design, "fused")]
        speedups[design] = fused["cycles_per_s"] / legacy["cycles_per_s"]
        op_ratios[design] = (
            fused["array_ops_per_cycle"] / fused["fused_array_ops_per_cycle"]
        )
    payload = {
        "cycles": CYCLES,
        "batch": 1,
        "rows": rows,
        "fused_speedup": speedups,
        "array_op_reduction": op_ratios,
    }
    with open(BENCH_PATH, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    record_experiment("cycle_latency", payload)
    write_run_reports("cycle_latency", rows)

    print(f"\nbatch=1 cycle latency, legacy vs fused ({CYCLES} cycles):")
    for design in DESIGNS:
        legacy = by_key[(design, "legacy")]
        fused = by_key[(design, "fused")]
        print(
            f"  {design:10s} legacy {legacy['cycles_per_s']:8.0f} c/s  "
            f"fused {fused['cycles_per_s']:8.0f} c/s  "
            f"({speedups[design]:5.2f}x wall, "
            f"{op_ratios[design]:5.1f}x fewer array ops)"
        )
    for design in DESIGNS:
        assert speedups[design] >= WALL_FLOOR[design], (
            f"fused mode is only {speedups[design]:.2f}x legacy on {design} "
            f"(acceptance floor: {WALL_FLOOR[design]}x)"
        )
        assert op_ratios[design] >= OP_FLOOR[design], (
            f"fusion reduces per-cycle array ops only {op_ratios[design]:.1f}x "
            f"on {design} (acceptance floor: {OP_FLOOR[design]}x)"
        )
