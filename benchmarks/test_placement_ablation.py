"""Experiment A1 — ablation of Algorithm 2's timing-driven ordering.

DESIGN.md's per-experiment index calls out the design choice in §III-D:
nodes are placed most-critical-first (reverse logic depth over the
remaining subgraph, constantly updated).  We re-place every partition of
two designs with criticality disabled (FIFO order) and compare layer
counts — the metric the ordering exists to minimize.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.placement import place_partition
from repro.harness.runner import compile_design
from repro.harness.tables import format_table

DESIGNS_TO_TEST = ["rocketchip", "nvdla"]


def _measure():
    rows = []
    for name in DESIGNS_TO_TEST:
        design = compile_design(name)
        eaig = design.synth.eaig
        timing = 0
        fifo = 0
        for placed in design.merge.placements:
            timing += len(placed.layers)
            fifo += len(
                place_partition(
                    eaig, placed.spec, placed.config, timing_driven=False
                ).layers
            )
        rows.append(
            {
                "design": name,
                "layers_timing_driven": timing,
                "layers_fifo": fifo,
                "saving": round((fifo - timing) / max(1, fifo), 3),
            }
        )
    return rows


def test_timing_driven_placement_saves_layers(benchmark, record_experiment):
    rows = run_once(benchmark, _measure)
    print("\nA1: timing-driven vs FIFO bit placement (total layers):")
    print(format_table(rows))
    record_experiment("A1_placement_ablation", {"rows": rows})
    total_timing = sum(row["layers_timing_driven"] for row in rows)
    total_fifo = sum(row["layers_fifo"] for row in rows)
    # Criticality ordering must never lose, and should win overall.
    assert total_timing <= total_fifo
    for row in rows:
        assert row["layers_timing_driven"] <= row["layers_fifo"] * 1.05, row
