"""Extension experiment — event-based pruning in GEM (§IV future work).

The paper identifies GEM's weakness: as an oblivious full-cycle simulator
it pays for idle logic, so the low-activity OpenPiton8 workload is its
worst case, and names event-based pruning as the planned fix.  This
benchmark implements and evaluates that fix:

1. run real workloads under :class:`PruningGemInterpreter` (bit-exact, see
   tests/test_pruning.py) and measure the fraction of block executions
   pruned;
2. feed the measured skip fraction into the pruned performance model and
   regenerate the Table II rows where it matters.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.perfmodel import A100
from repro.core.pruning import PruningGemInterpreter, gem_pruned_speed
from repro.harness.runner import compile_design, design_workloads, measure_activity
from repro.harness.tables import (
    _scale_activity,
    calibrated_models,
    format_table,
    paper_scale_ratio,
    projected_metrics,
)

CASES = [("openpiton8", "asi_notused_priv"), ("openpiton1", "asi_notused_priv"), ("nvdla", "pdpmax_int8_0")]


def _measure():
    models = calibrated_models()
    rows = []
    for design_name, wl_name in CASES:
        design = compile_design(design_name)
        wl = design_workloads(design_name)[wl_name]
        gem = PruningGemInterpreter(design.program)
        for vec in wl.stimuli[:250]:
            gem.step(vec)
        skip = gem.skip_fraction
        metrics = projected_metrics(design_name)
        baseline = models.gem(metrics, A100)
        scale = models.scales.get("gem_a100", 1.0)
        pruned = gem_pruned_speed(metrics, skip, A100, scale=scale)
        activity = _scale_activity(
            measure_activity(design_name, wl), paper_scale_ratio(design_name)
        )
        commercial = models.commercial(activity.events_per_cycle)
        rows.append(
            {
                "design": design_name,
                "workload": wl_name,
                "skip_fraction": round(skip, 3),
                "gem_hz": round(baseline),
                "gem_pruned_hz": round(pruned),
                "pruning_gain": round(pruned / baseline, 2),
                "vs_commercial": round(baseline / commercial, 2),
                "pruned_vs_commercial": round(pruned / commercial, 2),
            }
        )
    return rows


def test_event_pruning_helps_low_activity_designs(benchmark, record_experiment):
    rows = run_once(benchmark, _measure)
    print("\nEvent-based pruning in GEM (the paper's proposed fix):")
    print(format_table(rows))
    record_experiment("EXT_pruning", {"rows": rows})
    by = {row["design"]: row for row in rows}

    # Every workload leaves some blocks idle; pruning monetizes them and
    # never hurts.
    for row in rows:
        assert 0.1 <= row["skip_fraction"] <= 0.9, row
        assert row["pruning_gain"] >= 1.2, row
        # The margin over the event-driven baseline widens everywhere.
        assert row["pruned_vs_commercial"] > row["vs_commercial"], row
    # The §IV problem case specifically improves: pruned GEM pulls further
    # ahead of the commercial tool on OpenPiton8.
    assert by["openpiton8"]["pruned_vs_commercial"] > 1.4 * by["openpiton8"]["vs_commercial"] * 0.9

    # Finding worth recording (EXPERIMENTS.md): the multicore's skip
    # fraction is capped well below its idle-core share because RepCut
    # partitions interleave logic from several cores — one busy core
    # dirties most blocks.  Locality-aware partitioning would be the next
    # step.  The multi-engine NVDLA, whose engines land in disjoint
    # partitions, prunes more than the multicore despite a busier workload.
    assert by["nvdla"]["skip_fraction"] > by["openpiton8"]["skip_fraction"]
