"""Experiment B1 — lane-batched packed-word throughput tracking.

The tentpole acceptance of the lane-batched execution engine: packing
B ≤ 64 stimulus lanes into every ``uint64`` state word must multiply
cycles×lanes/sec throughput, because every fold/gather/writeback word op
serves all lanes at once while the per-cycle interpreter overhead stays
constant.  Running batch=1 sixty-four times sequentially delivers exactly
the batch=1 ``lane_cycles_per_s``, so the batched-vs-sequential speedup
is the ratio of that metric across batch sizes.

Writes ``BENCH_batch.json`` at the repo root (cycles×lanes/sec for
batch ∈ {1, 16, 64} on the rocketchip riscish-core workload) so the perf
trajectory is tracked from this PR onward; the CI smoke job runs exactly
this file.  Acceptance: batch=64 ≥ 10× the sequential lane throughput.
"""

import json
import os

from benchmarks.conftest import run_once, write_run_reports
from repro.harness.runner import measure_batch_throughput

BENCH_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_batch.json")
)
DESIGN = "rocketchip"
BATCHES = (1, 16, 64)
CYCLES = 60


def test_batch_throughput(benchmark, record_experiment):
    # Warm the compile cache and interpreter code paths so the batch=1
    # row is not penalized by first-touch costs.
    measure_batch_throughput(DESIGN, batch=1, max_cycles=5)

    def measure():
        return [
            measure_batch_throughput(DESIGN, batch=batch, max_cycles=CYCLES)
            for batch in BATCHES
        ]

    rows = run_once(benchmark, measure)
    by_batch = {row["batch"]: row for row in rows}
    sequential = by_batch[1]["lane_cycles_per_s"]
    payload = {
        "design": DESIGN,
        "workload": rows[0]["workload"],
        "cycles": CYCLES,
        "rows": rows,
        "speedups_vs_sequential": {
            str(batch): by_batch[batch]["lane_cycles_per_s"] / sequential
            for batch in BATCHES
        },
    }
    with open(BENCH_PATH, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    record_experiment("batch_throughput", payload)
    write_run_reports("batch_throughput", rows)

    print(f"\nlane throughput on {DESIGN}/{payload['workload']} ({CYCLES} cycles):")
    for batch in BATCHES:
        row = by_batch[batch]
        print(
            f"  batch {batch:3d}: {row['lane_cycles_per_s']:12.0f} lane-cycles/s "
            f"({payload['speedups_vs_sequential'][str(batch)]:6.2f}x sequential)"
        )
    speedup64 = payload["speedups_vs_sequential"]["64"]
    assert speedup64 >= 10.0, (
        f"batch=64 delivers only {speedup64:.2f}x the sequential lane "
        f"throughput (acceptance floor: 10x)"
    )
