"""Experiment B1 — lane-batched packed-word throughput tracking.

The tentpole acceptance of the lane-batched execution engine: packing
B stimulus lanes into every ``uint64`` state word (B ≤ 64) or into
K-word lane planes (B = K×64, up to 4096) must multiply
cycles×lanes/sec throughput, because every fold/gather/writeback word op
serves all lanes at once while the per-cycle interpreter overhead stays
constant.  Running batch=1 sixty-four times sequentially delivers exactly
the batch=1 ``lane_cycles_per_s``, so the batched-vs-sequential speedup
is the ratio of that metric across batch sizes.

Writes ``BENCH_batch.json`` at the repo root (cycles×lanes/sec for
batch ∈ {1, 16, 64, 256, 1024} on the rocketchip riscish-core workload,
one row per available execution backend at the lane-plane batches) so
the perf trajectory is tracked from this PR onward; the CI smoke job
runs exactly this file.  Acceptance: numpy batch=64 ≥ 10× the
sequential lane throughput, and — when numba is installed — the numba
compiled-kernel backend ≥ 2× numpy fused cycles/s at batch ≥ 256.
"""

import json
import os

from benchmarks.conftest import run_once, write_run_reports
from repro.core.backend import available_backends
from repro.harness.runner import measure_batch_throughput

BENCH_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_batch.json")
)
DESIGN = "rocketchip"
BATCHES = (1, 16, 64, 256, 1024)
#: lane-plane batches where compiled backends earn their keep — the
#: per-backend rows the regression gate tracks
PLANE_BATCHES = (256, 1024)
CYCLES = 60


def test_batch_throughput(benchmark, record_experiment):
    # Warm the compile cache and interpreter code paths so the batch=1
    # row is not penalized by first-touch costs.
    measure_batch_throughput(DESIGN, batch=1, max_cycles=5)
    extra_backends = tuple(
        b for b in available_backends() if b not in ("numpy", "cupy")
    )
    if "numba" in extra_backends:
        # pay the one-time JIT compile outside the measured region
        measure_batch_throughput(DESIGN, batch=256, max_cycles=2, backend="numba")

    def measure():
        rows = [
            measure_batch_throughput(DESIGN, batch=batch, max_cycles=CYCLES)
            for batch in BATCHES
        ]
        rows += [
            measure_batch_throughput(
                DESIGN, batch=batch, max_cycles=CYCLES, backend=backend
            )
            for backend in extra_backends
            for batch in PLANE_BATCHES
        ]
        return rows

    rows = run_once(benchmark, measure)
    numpy_rows = {row["batch"]: row for row in rows if row["backend"] == "numpy"}
    sequential = numpy_rows[1]["lane_cycles_per_s"]
    payload = {
        "design": DESIGN,
        "workload": rows[0]["workload"],
        "cycles": CYCLES,
        "backends": ["numpy", *extra_backends],
        "rows": rows,
        "speedups_vs_sequential": {
            str(batch): numpy_rows[batch]["lane_cycles_per_s"] / sequential
            for batch in BATCHES
        },
    }
    with open(BENCH_PATH, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    record_experiment("batch_throughput", payload)
    write_run_reports("batch_throughput", rows)

    print(f"\nlane throughput on {DESIGN}/{payload['workload']} ({CYCLES} cycles):")
    for row in rows:
        speedup = row["lane_cycles_per_s"] / sequential
        print(
            f"  batch {row['batch']:4d} [{row['backend']:>5s}]: "
            f"{row['lane_cycles_per_s']:12.0f} lane-cycles/s "
            f"({speedup:7.2f}x sequential)"
        )
    speedup64 = payload["speedups_vs_sequential"]["64"]
    assert speedup64 >= 10.0, (
        f"batch=64 delivers only {speedup64:.2f}x the sequential lane "
        f"throughput (acceptance floor: 10x)"
    )
    for batch in PLANE_BATCHES:
        plane_speedup = payload["speedups_vs_sequential"][str(batch)]
        assert plane_speedup >= 0.9 * speedup64, (
            f"batch={batch} lane planes deliver {plane_speedup:.2f}x but "
            f"batch=64 already delivers {speedup64:.2f}x — planes must not "
            f"lose per-lane ground (>=0.9x the single-word speedup)"
        )
    if "numba" in extra_backends:
        for batch in PLANE_BATCHES:
            numba_row = next(
                r for r in rows if r["backend"] == "numba" and r["batch"] == batch
            )
            ratio = numba_row["cycles_per_s"] / numpy_rows[batch]["cycles_per_s"]
            assert ratio >= 2.0, (
                f"numba batch={batch} is only {ratio:.2f}x numpy fused "
                f"cycles/s (acceptance floor: 2x)"
            )
