"""Experiment X2 — §IV limitation: the OpenPiton8 low-activity anomaly.

The paper: the commercial tool reports 8,612 signal events per cycle for
OpenPiton1 but only 28,789 (3.3x, not 8x) for OpenPiton8, because the
workload keeps one core busy; event-driven simulators exploit the idle
cores, while GEM — an oblivious full-cycle simulator — pays for all eight.
The consequence is GEM's weakest relative speed-up on OpenPiton8.

We measure exactly the same statistics on the reproduction designs.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.runner import compile_design, design_workloads, measure_activity
from repro.harness.tables import PAPER_EVENTS, format_table


def _measure():
    rows = []
    per_design = {}
    for name in ("openpiton1", "openpiton8"):
        gates = compile_design(name).report.gates
        events = []
        for wl in design_workloads(name).values():
            m = measure_activity(name, wl)
            events.append(m.events_per_cycle)
        mean_events = sum(events) / len(events)
        per_design[name] = {"gates": gates, "events": mean_events}
        rows.append(
            {
                "design": name,
                "gates": gates,
                "events_per_cycle": round(mean_events, 1),
                "activity": round(mean_events / gates, 4),
            }
        )
    return rows, per_design


def test_activity_anomaly(benchmark, record_experiment):
    rows, per = run_once(benchmark, _measure)
    gate_ratio = per["openpiton8"]["gates"] / per["openpiton1"]["gates"]
    event_ratio = per["openpiton8"]["events"] / per["openpiton1"]["events"]
    paper_ratio = PAPER_EVENTS["openpiton8"] / PAPER_EVENTS["openpiton1"]
    print("\nOpenPiton activity anomaly (events per cycle):")
    print(format_table(rows))
    print(
        f"gate ratio {gate_ratio:.2f}x but event ratio only {event_ratio:.2f}x "
        f"(paper: 3.34x at an 8x design)"
    )
    record_experiment(
        "X2_activity_anomaly",
        {
            "rows": rows,
            "gate_ratio": gate_ratio,
            "event_ratio": event_ratio,
            "paper_event_ratio": paper_ratio,
        },
    )
    # The defining anomaly: events grow far slower than the design.
    assert gate_ratio > 6.0
    assert event_ratio < gate_ratio / 2
    # Idle cores leave per-gate activity much lower on the 8-core design.
    assert rows[1]["activity"] < rows[0]["activity"] / 2


def test_anomaly_hurts_gem_relative_speedup(benchmark, record_experiment):
    """The consequence the paper draws: GEM's speed-up over the commercial
    tool is lower on OpenPiton8 than on OpenPiton1."""
    from repro.harness.tables import table2_rows

    rows = run_once(benchmark, lambda: table2_rows(designs=["openpiton1", "openpiton8"]))
    speedups = {}
    for design in ("openpiton1", "openpiton8"):
        values = [r.speedups()["commercial"] for r in rows if r.design == design]
        speedups[design] = sum(values) / len(values)
    print(f"\nmean GEM-vs-commercial speed-up: {speedups}")
    record_experiment("X2_gem_consequence", {"mean_speedups": speedups})
    assert speedups["openpiton8"] < speedups["openpiton1"]
