"""Experiment X1 — §IV: multi-threaded compiled simulation hits a wall.

"We run Verilator with up to 8 threads as we observe that 16-threaded
Verilator is only 80%–95% the speed of 8 threads."  The thread-scaling
model reproduces that wall; this benchmark prints the sweep and checks the
knee and the degradation band.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.tables import format_table
from repro.simref.threads import ThreadScalingModel


def _sweep():
    model = ThreadScalingModel()
    rows = [
        {"threads": t, "speedup": round(s, 3)} for t, s in model.sweep(16)
    ]
    return rows, model


def test_thread_scaling_wall(benchmark, record_experiment):
    rows, model = run_once(benchmark, _sweep)
    print("\nCompiled-simulation thread scaling:")
    print(format_table(rows))
    degradation = model.degradation_16_vs_8()
    print(f"speed(16T) / speed(8T) = {degradation:.3f} (paper: 0.80–0.95)")
    record_experiment(
        "X1_verilator_scaling", {"rows": rows, "degradation_16_vs_8": degradation}
    )
    # The paper's observed band.
    assert 0.80 <= degradation <= 0.95
    # Speedup should peak at or before ~12 threads.
    speedups = [row["speedup"] for row in rows]
    peak_at = speedups.index(max(speedups)) + 1
    assert peak_at <= 12
    # And 8-thread speedup should sit in Table II's observed 2–4.5x range.
    assert 2.0 <= speedups[7] <= 4.5
