"""Extension experiment — multi-GPU scaling (§V future work).

Plans the largest design's blocks across 1–8 A100s at paper scale and
reports the scaling curve of the timing model: near-linear while each
device still runs multiple fetch-bound waves, saturating once per-device
work shrinks to the interconnect all-gather floor — and no benefit at all
for a design that already fits one device's residency.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.multigpu import plan_multi_gpu
from repro.harness.runner import compile_design
from repro.harness.tables import format_table, paper_scale_ratio

GPUS = [1, 2, 4, 8]


def _measure():
    rows = []
    for name in ("openpiton8", "openpiton1"):
        design = compile_design(name)
        ratio = paper_scale_ratio(name)
        base = None
        for g in GPUS:
            plan = plan_multi_gpu(design, g, scale_ratio=ratio)
            hz = plan.speed()
            if base is None:
                base = hz
            rows.append(
                {
                    "design": name,
                    "gpus": g,
                    "relative_hz": round(hz / base, 3),
                    "efficiency": round(hz / base / g, 3),
                }
            )
    return rows


def test_multigpu_scaling(benchmark, record_experiment):
    rows = run_once(benchmark, _measure)
    print("\nMulti-GPU scaling at paper scale (relative to 1 GPU):")
    print(format_table(rows))
    record_experiment("EXT_multigpu", {"rows": rows})
    big = {r["gpus"]: r for r in rows if r["design"] == "openpiton8"}
    small = {r["gpus"]: r for r in rows if r["design"] == "openpiton1"}
    # The 5.5M-gate design gains from a second device…
    assert big[2]["relative_hz"] > 1.25
    # …with monotone throughput and falling efficiency (communication).
    assert big[8]["relative_hz"] >= big[4]["relative_hz"] >= big[2]["relative_hz"]
    assert big[8]["efficiency"] < big[2]["efficiency"]
    # The small design is latency/residency-bound: extra devices are wasted.
    assert small[8]["relative_hz"] < 1.6
    assert small[2]["relative_hz"] < big[2]["relative_hz"]