"""Shared infrastructure for the experiment benchmarks.

Each ``benchmarks/test_*`` file regenerates one paper artifact (see the
per-experiment index in DESIGN.md).  Results are printed as paper-vs-
measured tables and appended to ``benchmarks/results.json`` so
EXPERIMENTS.md can be refreshed from a run.

Compiled designs are cached under ``.gem_cache/`` — the first full run
takes a few minutes, later runs are seconds.
"""

from __future__ import annotations

import json
import os

import pytest

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.json")


def _load() -> dict:
    if os.path.exists(RESULTS_PATH):
        try:
            with open(RESULTS_PATH) as f:
                return json.load(f)
        except Exception:
            return {}
    return {}


@pytest.fixture
def record_experiment():
    """Record one experiment's result dict under its id."""

    def record(experiment_id: str, payload: dict) -> None:
        data = _load()
        data[experiment_id] = payload
        with open(RESULTS_PATH, "w") as f:
            json.dump(data, f, indent=2, sort_keys=True)

    return record


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The experiments here are compile-flow measurements, not microbenchmarks;
    one round keeps the suite's wall time sane while still reporting timing.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
