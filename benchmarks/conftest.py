"""Shared infrastructure for the experiment benchmarks.

Each ``benchmarks/test_*`` file regenerates one paper artifact (see the
per-experiment index in DESIGN.md).  Results are printed as paper-vs-
measured tables and appended to ``benchmarks/results.json`` so
EXPERIMENTS.md can be refreshed from a run.

Compiled designs are cached under ``.gem_cache/`` — the first full run
takes a few minutes, later runs are seconds.
"""

from __future__ import annotations

import json
import os

import pytest

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.json")
REPORTS_DIR = os.path.join(os.path.dirname(__file__), "reports")

#: row keys that map onto first-class RunReport fields; everything else
#: (array-op counts, speedup ratios, ...) rides along in ``extras``.
_REPORT_FIELDS = frozenset(
    {"design", "workload", "batch", "engine_mode", "cycles", "elapsed_s",
     "cycles_per_s", "lane_cycles_per_s"}
)


def write_run_reports(experiment_id: str, rows: list[dict]) -> list[str]:
    """Write one ``RunReport`` per measured row under ``benchmarks/reports/``.

    The rows are the dicts ``measure_batch_throughput`` returns — the
    same shape the ``BENCH_*.json`` history stores — so the emitted
    reports feed straight into ``gem-perf show``/``diff``/``compare``.
    """
    from repro.obs.report import build_run_report, write_report

    os.makedirs(REPORTS_DIR, exist_ok=True)
    paths: list[str] = []
    for row in rows:
        extras = {
            k: v
            for k, v in row.items()
            if k not in _REPORT_FIELDS and k not in ("backend", "lane_words")
        }
        extras["experiment"] = experiment_id
        report = build_run_report(
            design=row["design"],
            workload=row.get("workload", ""),
            batch=int(row.get("batch", 1)),
            engine_mode=row.get("engine_mode", "fused"),
            cycles=int(row["cycles"]),
            elapsed_s=float(row["elapsed_s"]),
            backend=row.get("backend"),
            lane_words=row.get("lane_words"),
            extras=extras,
            kind=f"benchmark/{experiment_id}",
        )
        backend_tag = row.get("backend")
        suffix = f"_{backend_tag}" if backend_tag and backend_tag != "numpy" else ""
        config_tag = row.get("config")
        if config_tag and config_tag != "default":
            suffix += f"_{config_tag}"
        name = (
            f"{experiment_id}_{report.design}_{report.engine_mode}"
            f"_b{report.batch}{suffix}.json"
        )
        path = os.path.join(REPORTS_DIR, name)
        write_report(report, path)
        paths.append(path)
    return paths


def _load() -> dict:
    if os.path.exists(RESULTS_PATH):
        try:
            with open(RESULTS_PATH) as f:
                return json.load(f)
        except Exception:
            return {}
    return {}


@pytest.fixture
def record_experiment():
    """Record one experiment's result dict under its id."""

    def record(experiment_id: str, payload: dict) -> None:
        data = _load()
        data[experiment_id] = payload
        with open(RESULTS_PATH, "w") as f:
            json.dump(data, f, indent=2, sort_keys=True)

    return record


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The experiments here are compile-flow measurements, not microbenchmarks;
    one round keeps the suite's wall time sane while still reporting timing.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
