"""Experiment T1 — Table I: design statistics and GEM mapping results.

Runs the real compile flow (synthesis → multi-stage RepCut → Algorithm 1
merging → placement → bitstream) on all five reproduction designs and
prints our Table I next to the paper's.  Absolute sizes differ (our designs
are scaled for CPU-hosted reference simulation, DESIGN.md §5); the *shape*
assertions encode what must transfer:

* boomerang layers are several times fewer than logic levels;
* the bitstream is a compact encoding (a few hundred bits per gate);
* staging and partition counts grow with design size;
* post-merge bit utilization clears the paper's 50% bar.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.runner import DESIGNS, compile_design
from repro.harness.tables import PAPER_TABLE1, format_table, table1_rows


def test_table1(benchmark, record_experiment):
    rows = run_once(benchmark, table1_rows)
    merged = []
    for row in rows:
        paper = PAPER_TABLE1[row["design"]]
        merged.append(
            {
                "design": row["design"],
                "gates": row["gates"],
                "levels": row["levels"],
                "stages": row["stages"],
                "layers": row["layers"],
                "parts": row["parts"],
                "bitstream_mb": round(row["bitstream_mb"], 2),
                "util": round(row["utilization"], 2),
                "paper_gates": paper["gates"],
                "paper_levels": paper["levels"],
                "paper_layers": paper["layers"],
                "paper_parts": paper["parts"],
            }
        )
    print("\nTable I (ours vs paper):")
    print(format_table(merged))
    record_experiment("T1_table1", {"rows": merged})

    by_design = {row["design"]: row for row in rows}
    # Layer compression: the paper sees levels/layers between ~5x and ~8x.
    for name, row in by_design.items():
        ratio = row["levels"] / row["layers"]
        assert ratio >= 3.0, (name, ratio)
    # Bitstream compactness: well under 1 KB per gate (paper: ~250 bits).
    for name, row in by_design.items():
        bits_per_gate = row["bitstream_mb"] * 8 * 1024 * 1024 / row["gates"]
        assert bits_per_gate < 1200, (name, bits_per_gate)
    # Post-merge utilization (Algorithm 1's guarantee).
    for name, row in by_design.items():
        if row["parts"] > 1:
            assert row["utilization"] >= 0.4, (name, row["utilization"])
    # Size ordering mirrors the paper: openpiton8 biggest, openpiton1 smallest.
    assert by_design["openpiton8"]["gates"] > by_design["gemmini"]["gates"]
    assert by_design["openpiton1"]["gates"] < by_design["nvdla"]["gates"]
    # Gemmini is the deepest design in both tables.
    assert by_design["gemmini"]["levels"] == max(r["levels"] for r in rows)
    # openpiton8 has ~8x the gates and more partitions than openpiton1.
    assert by_design["openpiton8"]["parts"] > by_design["openpiton1"]["parts"]
