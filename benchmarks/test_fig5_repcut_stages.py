"""Experiment F5 — Fig. 5: multi-stage RepCut vs replication explosion.

The paper: single-stage RepCut costs 1.30% replication at 8 partitions,
10.95% at 48, and "over 200%" at the 216 partitions a GPU needs; adding
one stage brings a 500K-gate design at 216 blocks down to "less than 3%".

We sweep partition counts on the largest reproduction design and plot the
replication cost for one and two stages.  Scaled expectations: the cost
must grow steeply with k for a single stage, and staging must cut it by a
large factor at the GPU-scale end of the sweep.
"""

import math

import pytest

from benchmarks.conftest import run_once
from repro.core.partition import PartitionConfig, partition_design
from repro.harness.runner import design_synth
from repro.harness.tables import format_table

KS = [4, 8, 16, 32, 64]


def _sweep():
    eaig = design_synth("openpiton8").eaig
    live = eaig.num_gates()
    rows = []
    for k in KS:
        gpp = max(64, math.ceil(live / k))
        costs = {}
        parts = {}
        for stages in (1, 2):
            plan = partition_design(
                eaig,
                PartitionConfig(
                    gates_per_partition=gpp, num_stages=stages, overpartition=1.0
                ),
            )
            costs[stages] = plan.replication_cost()
            parts[stages] = plan.num_partitions
        rows.append(
            {
                "k_target": k,
                "parts_1stage": parts[1],
                "repl_1stage": round(costs[1], 4),
                "parts_2stage": parts[2],
                "repl_2stage": round(costs[2], 4),
                "reduction": round(costs[1] / max(costs[2], 1e-6), 2),
            }
        )
    return rows


def test_fig5_staging_reduces_replication(benchmark, record_experiment):
    rows = run_once(benchmark, _sweep)
    print("\nFig. 5: replication cost vs partition count (openpiton8 design)")
    print(format_table(rows))
    record_experiment("F5_repcut_stages", {"rows": rows})

    one_stage = [row["repl_1stage"] for row in rows]
    # RepCut premise: single-stage replication grows steeply with k.
    assert one_stage[-1] > 3 * one_stage[0] + 0.02, one_stage
    # GEM's fix: at the largest k, one extra stage cuts replication hard
    # (paper: 200% -> <3%; we require at least a 2x cut at scale).
    last = rows[-1]
    assert last["repl_2stage"] < last["repl_1stage"] / 2, last
    # And staging should help (or at least not hurt) at every large k.
    for row in rows[2:]:
        assert row["repl_2stage"] <= row["repl_1stage"] * 1.05, row
