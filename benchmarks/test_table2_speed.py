"""Experiment T2 — Table II: simulation speed and speed-up comparison.

Regenerates all 18 design/test rows: GEM on the A100 and RTX 3090 profiles
against the commercial event-driven stand-in, Verilator-style compiled
simulation (1 and 8 threads) and the GL0AM-style gate-level model.

Methodology (EXPERIMENTS.md): analytical engine models driven by measured
work (instruction words assembled, events and toggles counted on the real
workloads), calibrated once against the paper's NVDLA anchor row.  The
anchor row matches by construction; everything else — 17 rows, every
cross-design and cross-workload ratio — is a genuine model output.

Shape assertions encode the paper's headline findings:

* GEM wins on (nearly) every row; the average speed-ups are of the same
  order as the paper's 9.15x / 5.98x / 24.87x / 7.72x bottom line;
* NVDLA (all-synchronous RAMs) is GEM's best case;
* OpenPiton8 with its low-activity workload is GEM's worst case — the
  event-driven baseline gets close or crosses over (paper: 0.95x row);
* GEM's speed is per-design constant (oblivious full-cycle), while the
  event-driven baseline swings with workload activity.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.tables import (
    PAPER_AVERAGE_SPEEDUPS,
    PAPER_TABLE2,
    average_speedups,
    format_table,
    table2_rows,
)


def test_table2(benchmark, record_experiment):
    rows = run_once(benchmark, table2_rows)
    printable = []
    for row in rows:
        paper = PAPER_TABLE2[row.design][row.test]
        d = row.as_dict()
        d["paper_gem_a100"] = paper["gem_a100"]
        d["paper_commercial"] = paper["commercial"]
        printable.append(d)
    print("\nTable II (ours; paper reference columns at right):")
    print(
        format_table(
            printable,
            columns=[
                "design", "test", "commercial", "verilator_8t", "verilator_1t",
                "gl0am", "gem_a100", "gem_3090",
                "speedup_commercial", "speedup_verilator_1t",
                "paper_commercial", "paper_gem_a100",
            ],
            floatfmt=".0f",
        )
    )
    ours_avg = average_speedups(rows)
    print("average speed-ups (ours vs paper):")
    for key, value in ours_avg.items():
        print(f"  {key:14s} {value:7.2f}   paper {PAPER_AVERAGE_SPEEDUPS[key]:6.2f}")
    record_experiment(
        "T2_table2",
        {
            "rows": [r.as_dict() for r in rows],
            "average_speedups": ours_avg,
            "paper_average_speedups": PAPER_AVERAGE_SPEEDUPS,
        },
    )

    designs = list(dict.fromkeys(r.design for r in rows))
    gem_by_design = {d: next(r.gem_a100 for r in rows if r.design == d) for d in designs}

    def design_mean(key: str, design: str) -> float:
        vals = [r.speedups()[key] for r in rows if r.design == design]
        return sum(vals) / len(vals)

    # GEM is per-design constant (full-cycle): same Hz on every workload.
    for design in designs:
        speeds = {r.gem_a100 for r in rows if r.design == design}
        assert len(speeds) == 1, design

    # The commercial baseline is activity-sensitive: it varies per workload.
    nvdla_comm = [r.commercial for r in rows if r.design == "nvdla"]
    assert max(nvdla_comm) > 1.2 * min(nvdla_comm)

    # GEM wins on at least 16 of the 18 rows vs every baseline (the paper
    # loses one row: OpenPiton8/fp_mt_combo0 vs commercial at 0.95x).
    for key in ("commercial", "gl0am", "verilator_1t", "verilator_8t"):
        wins = sum(1 for r in rows if r.speedups()[key] > 1.0)
        assert wins >= len(rows) - 2, (key, wins)

    # GEM-A100 Hz ordering across designs matches the paper exactly:
    # NVDLA fastest ... Gemmini slower ... OpenPiton8 slowest.
    assert gem_by_design["openpiton8"] == min(gem_by_design.values())
    assert gem_by_design["gemmini"] < gem_by_design["nvdla"]
    assert gem_by_design["gemmini"] < gem_by_design["openpiton1"]

    # NVDLA's GEM-vs-commercial speed-up sits in the paper's observed band
    # (8.3x–38.9x across the five NVDLA tests).
    assert 8.0 <= design_mean("commercial", "nvdla") <= 40.0

    # OpenPiton8 is GEM's weakest design vs the commercial tool (the
    # crossover region of the paper).
    means = {d: design_mean("commercial", d) for d in designs}
    assert means["openpiton8"] == min(means.values()), means
    assert means["openpiton8"] < 6.0

    # Average speed-ups land within the paper's order of magnitude
    # (EXPERIMENTS.md discusses the per-column deviations).
    assert 4.0 <= ours_avg["commercial"] <= 30.0
    assert 10.0 <= ours_avg["verilator_1t"] <= 300.0
    assert 4.0 <= ours_avg["gl0am"] <= 60.0
    assert ours_avg["verilator_1t"] > ours_avg["verilator_8t"]

    # 3090 never beats the A100, and falls behind most on the design with
    # the highest resource pressure (paper §IV: OpenPiton8).
    for r in rows:
        assert r.gem_3090 <= r.gem_a100 * 1.01
    ratio = {d: next(r.gem_3090 / r.gem_a100 for r in rows if r.design == d) for d in designs}
    assert ratio["openpiton8"] <= min(ratio["nvdla"], ratio["rocketchip"]) + 0.01
