"""Experiment F3 — Fig. 3: the boomerang layer vs plain levelization.

The paper: "Experimentally, boomerang layer reduces the number of bit
permutations and synchronizations inside a GPU thread block by more than
5x."  We compare, for every partition of every compiled design, the number
of permutation+synchronization rounds under (a) boomerang placement
(Algorithm 2) and (b) classic one-batch-per-logic-level execution.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.placement import naive_levelized_layers
from repro.harness.runner import DESIGNS, compile_design
from repro.harness.tables import format_table, geomean


def _measure():
    rows = []
    for name in DESIGNS:
        design = compile_design(name)
        eaig = design.synth.eaig
        boomerang_syncs = 0
        levelized_syncs = 0
        for placed in design.merge.placements:
            boomerang_syncs += len(placed.layers)
            levelized_syncs += naive_levelized_layers(eaig, placed.spec, placed.config)[
                "permutations"
            ]
        rows.append(
            {
                "design": name,
                "boomerang_syncs": boomerang_syncs,
                "levelized_syncs": levelized_syncs,
                "reduction": levelized_syncs / max(1, boomerang_syncs),
            }
        )
    return rows


def test_fig3_boomerang_reduction(benchmark, record_experiment):
    rows = run_once(benchmark, _measure)
    print("\nFig. 3 ablation: per-block permutations/synchronizations per cycle")
    print(format_table(rows))
    overall = geomean([row["reduction"] for row in rows])
    print(f"geomean reduction: {overall:.2f}x (paper: >5x)")
    record_experiment(
        "F3_boomerang_ablation", {"rows": rows, "geomean_reduction": overall}
    )
    # The paper reports >5x; our placement engine lands ~3.5-4.5x at
    # reproduction scale (EXPERIMENTS.md discusses the gap — the long-tailed
    # frontier saturates the 8192 leaf positions before deep levels fill,
    # and the authors' placer packs those vacancies better).  The claim's
    # substance — a multi-x reduction in block synchronizations — holds.
    assert overall > 3.0
    for row in rows:
        assert row["reduction"] > 2.5, row
