"""Word-level RTL substrate.

This package is the front end of the reproduction: a small synchronous
hardware IR (:mod:`repro.rtl.ir`), an ergonomic circuit construction DSL
(:mod:`repro.rtl.builder`), behavioral memories (:mod:`repro.rtl.memory`),
elaboration checks (:mod:`repro.rtl.elaborate`) and the canonical flat
netlist with a golden word-level evaluator (:mod:`repro.rtl.netlist`).

It stands in for the Verilog/SystemVerilog + Yosys front end the paper uses:
designs are described directly in Python and lowered by
:mod:`repro.core.synthesis` to the paper's E-AIG format.
"""

from repro.rtl.builder import CircuitBuilder, Value
from repro.rtl.ir import Circuit, Op, OpKind, Signal
from repro.rtl.memory import Memory, ReadPort, WritePort
from repro.rtl.netlist import Netlist, WordSim

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "Memory",
    "Netlist",
    "Op",
    "OpKind",
    "ReadPort",
    "Signal",
    "Value",
    "WordSim",
    "WritePort",
]
