"""Core word-level hardware IR.

A :class:`Circuit` is a flat dataflow graph of word-level operations over
:class:`Signal` values, plus registers and behavioral memories.  It models a
synthesizable synchronous design with a single implicit clock, which is the
domain the paper targets (E-AIG supports combinational logic, D flip-flops
and RAM blocks — §II, Fig. 2 of the paper).

Semantics
---------
* Every signal is an unsigned bit vector of fixed ``width``; arithmetic wraps
  modulo ``2**width``.
* Registers sample their ``d`` input on the (implicit) rising clock edge.
  Enables and synchronous resets are expressed by the builder as muxes in
  front of ``d``.
* Memories are described in :mod:`repro.rtl.memory`; synchronous read ports
  register their read data (data valid the following cycle), asynchronous
  read ports are combinational.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:
    from repro.rtl.memory import Memory


class OpKind(enum.Enum):
    """Kinds of word-level operations.

    The set intentionally matches what common RTL front ends produce after
    parsing Verilog expressions, so that :mod:`repro.core.synthesis` has the
    same lowering job as the paper's Yosys + ASIC-synthesis pipeline.
    """

    CONST = "const"  # attrs: value
    INPUT = "input"
    # Bitwise, same-width operands.
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    # Reductions: N-bit operand -> 1-bit result.
    REDAND = "redand"
    REDOR = "redor"
    REDXOR = "redxor"
    # Arithmetic (unsigned, wrapping).
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    # Comparisons (unsigned), 1-bit result.
    EQ = "eq"
    LT = "lt"
    # 2:1 multiplexer: inputs (sel, a, b) -> sel ? a : b.
    MUX = "mux"
    # Shifts by a constant amount (attrs: amount).
    SHLI = "shli"
    SHRI = "shri"
    # Shifts by a signal amount.
    SHL = "shl"
    SHR = "shr"
    # Bit selection and concatenation.
    SLICE = "slice"  # attrs: lo  (width gives hi = lo + width - 1)
    CONCAT = "concat"  # inputs listed LSB-first
    # State elements.
    REG = "reg"  # attrs: init ; input: d
    # Memory read data (combinational view of a read port).  attrs:
    # memory name + port index; inputs resolved through Memory objects.
    MEMRD = "memrd"


#: Op kinds that take exactly one input signal.
UNARY_KINDS = frozenset(
    {OpKind.NOT, OpKind.REDAND, OpKind.REDOR, OpKind.REDXOR, OpKind.SHLI, OpKind.SHRI, OpKind.SLICE, OpKind.REG}
)
#: Op kinds that take exactly two input signals.
BINARY_KINDS = frozenset(
    {OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.EQ, OpKind.LT, OpKind.SHL, OpKind.SHR}
)
#: Op kinds whose output does not combinationally depend on their inputs.
SEQUENTIAL_KINDS = frozenset({OpKind.REG})


@dataclass(frozen=True)
class Signal:
    """A named, fixed-width unsigned bit vector."""

    uid: int
    name: str
    width: int

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"signal {self.name!r}: width must be >= 1, got {self.width}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name}:{self.width})"


@dataclass
class Op:
    """One word-level operation producing signal ``out`` from ``inputs``."""

    kind: OpKind
    out: Signal
    inputs: tuple[Signal, ...]
    attrs: dict = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        ins = ", ".join(s.name for s in self.inputs)
        return f"Op({self.kind.value} {self.out.name} <- {ins} {self.attrs or ''})"


class Circuit:
    """A flat synchronous circuit: signals, ops, registers, memories, ports.

    Instances are normally constructed through
    :class:`repro.rtl.builder.CircuitBuilder` rather than directly.
    """

    def __init__(self, name: str = "top") -> None:
        self.name = name
        self.signals: list[Signal] = []
        self.ops: list[Op] = []
        #: producing op per signal uid (inputs have none).
        self.producer: dict[int, Op] = {}
        self.inputs: list[Signal] = []
        self.outputs: list[tuple[str, Signal]] = []
        self.memories: list["Memory"] = []
        self._names: set[str] = set()

    # -- construction ------------------------------------------------------

    def new_signal(self, name: str, width: int) -> Signal:
        """Create a fresh signal, uniquifying ``name`` if already taken."""
        base = name
        suffix = 0
        while name in self._names:
            suffix += 1
            name = f"{base}${suffix}"
        self._names.add(name)
        sig = Signal(uid=len(self.signals), name=name, width=width)
        self.signals.append(sig)
        return sig

    def add_op(self, kind: OpKind, out: Signal, inputs: Iterable[Signal], **attrs) -> Op:
        """Append an operation; each signal may be produced at most once."""
        if out.uid in self.producer:
            raise ValueError(f"signal {out.name!r} already has a producer")
        op = Op(kind=kind, out=out, inputs=tuple(inputs), attrs=dict(attrs))
        _check_op(op)
        self.ops.append(op)
        self.producer[out.uid] = op
        return op

    def add_input(self, name: str, width: int) -> Signal:
        sig = self.new_signal(name, width)
        self.add_op(OpKind.INPUT, sig, ())
        self.inputs.append(sig)
        return sig

    def add_output(self, name: str, sig: Signal) -> None:
        self.outputs.append((name, sig))

    # -- queries -----------------------------------------------------------

    @property
    def registers(self) -> list[Op]:
        """All REG ops, in creation order."""
        return [op for op in self.ops if op.kind is OpKind.REG]

    def stats(self) -> dict:
        """Cheap structural statistics used by reports and tests."""
        kinds: dict[str, int] = {}
        for op in self.ops:
            kinds[op.kind.value] = kinds.get(op.kind.value, 0) + 1
        return {
            "name": self.name,
            "signals": len(self.signals),
            "ops": len(self.ops),
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "registers": kinds.get("reg", 0),
            "memories": len(self.memories),
            "op_kinds": kinds,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Circuit({self.name}: {len(self.ops)} ops, {len(self.memories)} memories)"


def _check_op(op: Op) -> None:
    """Validate operand counts and width rules for ``op``.

    Raises :class:`ValueError` on malformed operations so errors surface at
    construction time, not during simulation.
    """
    kind, out, ins = op.kind, op.out, op.inputs
    if kind in UNARY_KINDS and len(ins) != 1:
        raise ValueError(f"{kind.value} takes 1 input, got {len(ins)}")
    if kind in BINARY_KINDS and len(ins) != 2:
        raise ValueError(f"{kind.value} takes 2 inputs, got {len(ins)}")

    if kind in (OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.ADD, OpKind.SUB, OpKind.MUL):
        a, b = ins
        if not (a.width == b.width == out.width):
            raise ValueError(f"{kind.value}: widths must match ({a.width}, {b.width}) -> {out.width}")
    elif kind is OpKind.NOT:
        if ins[0].width != out.width:
            raise ValueError("not: input/output width mismatch")
    elif kind in (OpKind.REDAND, OpKind.REDOR, OpKind.REDXOR, OpKind.EQ, OpKind.LT):
        if out.width != 1:
            raise ValueError(f"{kind.value}: output must be 1 bit")
        if kind in (OpKind.EQ, OpKind.LT) and ins[0].width != ins[1].width:
            raise ValueError(f"{kind.value}: operand widths must match")
    elif kind is OpKind.MUX:
        if len(ins) != 3:
            raise ValueError("mux takes 3 inputs (sel, a, b)")
        sel, a, b = ins
        if sel.width != 1:
            raise ValueError("mux: select must be 1 bit")
        if not (a.width == b.width == out.width):
            raise ValueError("mux: data widths must match output")
    elif kind in (OpKind.SHLI, OpKind.SHRI):
        if "amount" not in op.attrs or op.attrs["amount"] < 0:
            raise ValueError(f"{kind.value}: non-negative 'amount' attr required")
        if ins[0].width != out.width:
            raise ValueError(f"{kind.value}: input/output width mismatch")
    elif kind in (OpKind.SHL, OpKind.SHR):
        if ins[0].width != out.width:
            raise ValueError(f"{kind.value}: input/output width mismatch")
    elif kind is OpKind.SLICE:
        lo = op.attrs.get("lo")
        if lo is None or lo < 0 or lo + out.width > ins[0].width:
            raise ValueError(
                f"slice: range [{lo}, {lo}+{out.width}) out of bounds for {ins[0].width}-bit input"
            )
    elif kind is OpKind.CONCAT:
        if sum(s.width for s in ins) != out.width:
            raise ValueError("concat: output width must equal sum of input widths")
        if not ins:
            raise ValueError("concat: needs at least one input")
    elif kind is OpKind.REG:
        if ins[0].width != out.width:
            raise ValueError("reg: d/q width mismatch")
        init = op.attrs.get("init", 0)
        if not (0 <= init < (1 << out.width)):
            raise ValueError(f"reg: init {init} does not fit in {out.width} bits")
    elif kind is OpKind.CONST:
        value = op.attrs.get("value")
        if value is None or not (0 <= value < (1 << out.width)):
            raise ValueError(f"const: value {value} does not fit in {out.width} bits")
        if ins:
            raise ValueError("const takes no inputs")
