"""Elaboration checks for circuits.

The builder produces flat circuits directly (hierarchy is expressed with
Python function composition and :meth:`CircuitBuilder.scope` name prefixes),
so "elaboration" here is the validation pass a Verilog front end would run
after flattening: every signal driven, no combinational cycles, memory ports
well-formed, output signals exist.

``check_circuit`` raises on the first problem; ``dead_signals`` reports
logic with no path to an output, register, or memory port (useful to catch
generator bugs in :mod:`repro.designs`).
"""

from __future__ import annotations

from collections import deque

from repro.rtl.ir import Circuit, OpKind, Signal


class ElaborationError(ValueError):
    """Raised when a circuit fails structural validation."""


def check_circuit(circuit: Circuit) -> None:
    """Validate structural well-formedness; raise :class:`ElaborationError`."""
    driven = set(circuit.producer)
    for op in circuit.ops:
        for sig in op.inputs:
            if sig.uid not in driven:
                raise ElaborationError(f"op {op!r}: input {sig.name!r} has no driver")
    for name, sig in circuit.outputs:
        if sig.uid not in driven:
            raise ElaborationError(f"output {name!r}: signal {sig.name!r} has no driver")
    seen_outputs: set[str] = set()
    for name, _ in circuit.outputs:
        if name in seen_outputs:
            raise ElaborationError(f"duplicate output name {name!r}")
        seen_outputs.add(name)
    for mem in circuit.memories:
        for wp in mem.write_ports:
            for sig in (wp.en, wp.addr, wp.data):
                if sig.uid not in driven:
                    raise ElaborationError(f"memory {mem.name!r}: port signal {sig.name!r} undriven")
        for rp in mem.read_ports:
            if rp.addr is None:
                raise ElaborationError(
                    f"memory {mem.name!r}: deferred read port {rp.data.name!r} was never "
                    f"bound (add_deferred_read_port without bind_read_port)"
                )
            if rp.addr.uid not in driven:
                raise ElaborationError(f"memory {mem.name!r}: read address {rp.addr.name!r} undriven")
    # Combinational-cycle detection is delegated to Netlist's toposort; do it
    # here so builder.build() fails fast with a precise error.
    from repro.rtl.netlist import Netlist

    Netlist(circuit)


def live_signals(circuit: Circuit) -> set[int]:
    """Signal uids reachable (backwards) from outputs, registers, memories."""
    roots: list[Signal] = [sig for _, sig in circuit.outputs]
    for op in circuit.ops:
        if op.kind is OpKind.REG:
            roots.append(op.inputs[0])
            roots.append(op.out)
    for mem in circuit.memories:
        for wp in mem.write_ports:
            roots.extend((wp.en, wp.addr, wp.data))
        for rp in mem.read_ports:
            roots.append(rp.addr)
            roots.append(rp.data)
            if rp.en is not None:
                roots.append(rp.en)
    live: set[int] = set()
    queue = deque(roots)
    while queue:
        sig = queue.popleft()
        if sig.uid in live:
            continue
        live.add(sig.uid)
        op = circuit.producer.get(sig.uid)
        if op is not None:
            queue.extend(op.inputs)
    return live


def dead_signals(circuit: Circuit) -> list[Signal]:
    """Signals whose values can never influence observable behaviour."""
    live = live_signals(circuit)
    return [s for s in circuit.signals if s.uid not in live]
