"""Canonical flat netlist plus the golden word-level simulator.

:class:`Netlist` wraps an elaborated :class:`~repro.rtl.ir.Circuit` with the
derived structure every downstream consumer needs: a topological order of the
combinational ops, logic levels, fanout maps and cycle detection.

:class:`WordSim` is the *golden model* of the whole repository: a direct
Python-integer evaluation of the word-level netlist, independent of the
E-AIG synthesis path.  Every other simulator (the event-driven baseline, the
levelized baseline, the gate-level model, and the GEM interpreter itself) is
tested cycle-for-cycle against it.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Mapping

from repro.rtl.ir import Circuit, Op, OpKind, Signal
from repro.rtl.memory import Memory


class CombinationalLoopError(ValueError):
    """Raised when the design contains a combinational cycle."""


def _mask(width: int) -> int:
    return (1 << width) - 1


#: Op kinds whose output is state or external, i.e. not produced by the
#: current cycle's combinational evaluation.
_SOURCE_KINDS = frozenset({OpKind.INPUT, OpKind.CONST, OpKind.REG})


def _comb_deps(op: Op) -> tuple[Signal, ...]:
    """Input signals that ``op`` combinationally depends on."""
    if op.kind in _SOURCE_KINDS:
        return ()
    if op.kind is OpKind.MEMRD and op.attrs["sync"]:
        return ()  # registered read data: a state source
    return op.inputs


class Netlist:
    """Topologically ordered view of a circuit."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.memories: dict[str, Memory] = {m.name: m for m in circuit.memories}
        self.order: list[Op] = self._toposort()
        self.level: dict[int, int] = self._levelize()

    # -- structure -----------------------------------------------------------

    def _toposort(self) -> list[Op]:
        """Kahn topological sort of combinational ops; sources first."""
        circuit = self.circuit
        indeg: dict[int, int] = {}
        consumers: dict[int, list[Op]] = {}
        comb_ops: list[Op] = []
        for op in circuit.ops:
            deps = _comb_deps(op)
            if op.kind in _SOURCE_KINDS or (op.kind is OpKind.MEMRD and op.attrs["sync"]):
                continue
            comb_ops.append(op)
            indeg[op.out.uid] = 0
            for sig in deps:
                producer = circuit.producer.get(sig.uid)
                if producer is not None and _comb_deps(producer):
                    pass  # counted below via consumers
        # Build consumer edges between combinational ops only.
        comb_set = {op.out.uid for op in comb_ops}
        for op in comb_ops:
            for sig in _comb_deps(op):
                if sig.uid in comb_set:
                    consumers.setdefault(sig.uid, []).append(op)
                    indeg[op.out.uid] += 1
        ready = deque(op for op in comb_ops if indeg[op.out.uid] == 0)
        order: list[Op] = []
        while ready:
            op = ready.popleft()
            order.append(op)
            for nxt in consumers.get(op.out.uid, ()):
                indeg[nxt.out.uid] -= 1
                if indeg[nxt.out.uid] == 0:
                    ready.append(nxt)
        if len(order) != len(comb_ops):
            stuck = [op for op in comb_ops if indeg[op.out.uid] > 0]
            names = ", ".join(op.out.name for op in stuck[:5])
            raise CombinationalLoopError(
                f"combinational cycle involving {len(stuck)} ops (e.g. {names})"
            )
        return order

    def _levelize(self) -> dict[int, int]:
        """Word-level logic level per signal uid (sources at level 0)."""
        level: dict[int, int] = {}
        for op in self.circuit.ops:
            if not _comb_deps(op):
                level[op.out.uid] = 0
        for op in self.order:
            level[op.out.uid] = 1 + max(
                (level.get(sig.uid, 0) for sig in _comb_deps(op)), default=0
            )
        return level

    @property
    def depth(self) -> int:
        """Maximum word-level combinational depth."""
        return max(self.level.values(), default=0)

    def fanout(self) -> dict[int, int]:
        """Number of consumers per signal uid (memories count port uses)."""
        counts: dict[int, int] = {}
        for op in self.circuit.ops:
            for sig in op.inputs:
                counts[sig.uid] = counts.get(sig.uid, 0) + 1
        for mem in self.circuit.memories:
            for wp in mem.write_ports:
                for sig in (wp.en, wp.addr, wp.data):
                    counts[sig.uid] = counts.get(sig.uid, 0) + 1
            for rp in mem.read_ports:
                counts[rp.addr.uid] = counts.get(rp.addr.uid, 0) + 1
                if rp.en is not None:
                    counts[rp.en.uid] = counts.get(rp.en.uid, 0) + 1
        for _, sig in self.circuit.outputs:
            counts[sig.uid] = counts.get(sig.uid, 0) + 1
        return counts

    def stats(self) -> dict:
        s = self.circuit.stats()
        s["comb_ops"] = len(self.order)
        s["word_depth"] = self.depth
        return s


def _evaluate(op: Op, get: Callable[[Signal], int]) -> int:
    """Evaluate one combinational op given operand values."""
    kind = op.kind
    w = op.out.width
    if kind is OpKind.AND:
        return get(op.inputs[0]) & get(op.inputs[1])
    if kind is OpKind.OR:
        return get(op.inputs[0]) | get(op.inputs[1])
    if kind is OpKind.XOR:
        return get(op.inputs[0]) ^ get(op.inputs[1])
    if kind is OpKind.NOT:
        return ~get(op.inputs[0]) & _mask(w)
    if kind is OpKind.ADD:
        return (get(op.inputs[0]) + get(op.inputs[1])) & _mask(w)
    if kind is OpKind.SUB:
        return (get(op.inputs[0]) - get(op.inputs[1])) & _mask(w)
    if kind is OpKind.MUL:
        return (get(op.inputs[0]) * get(op.inputs[1])) & _mask(w)
    if kind is OpKind.EQ:
        return int(get(op.inputs[0]) == get(op.inputs[1]))
    if kind is OpKind.LT:
        return int(get(op.inputs[0]) < get(op.inputs[1]))
    if kind is OpKind.MUX:
        sel, a, b = op.inputs
        return get(a) if get(sel) else get(b)
    if kind is OpKind.REDAND:
        return int(get(op.inputs[0]) == _mask(op.inputs[0].width))
    if kind is OpKind.REDOR:
        return int(get(op.inputs[0]) != 0)
    if kind is OpKind.REDXOR:
        return bin(get(op.inputs[0])).count("1") & 1
    if kind is OpKind.SHLI:
        return (get(op.inputs[0]) << op.attrs["amount"]) & _mask(w)
    if kind is OpKind.SHRI:
        return get(op.inputs[0]) >> op.attrs["amount"]
    if kind is OpKind.SHL:
        amount = get(op.inputs[1])
        return (get(op.inputs[0]) << amount) & _mask(w) if amount < w else 0
    if kind is OpKind.SHR:
        amount = get(op.inputs[1])
        return get(op.inputs[0]) >> amount if amount < w else 0
    if kind is OpKind.SLICE:
        return (get(op.inputs[0]) >> op.attrs["lo"]) & _mask(w)
    if kind is OpKind.CONCAT:
        value = 0
        shift = 0
        for sig in op.inputs:
            value |= get(sig) << shift
            shift += sig.width
        return value
    raise NotImplementedError(f"cannot evaluate {kind}")


class WordSim:
    """Golden word-level cycle simulator.

    ``step(inputs)`` evaluates one full clock cycle: combinational settle,
    then clock edge (register update, memory writes, synchronous read-port
    sampling with read-first semantics).  Returns a dict of output values.
    """

    def __init__(self, netlist: Netlist, trap_write_conflicts: bool = False) -> None:
        self.netlist = netlist
        self.circuit = netlist.circuit
        self.trap_write_conflicts = trap_write_conflicts
        self.values: dict[int, int] = {}
        self.mem_state: dict[str, list[int]] = {
            m.name: m.initial_words() for m in self.circuit.memories
        }
        #: sync read-port output values: (mem name, port index) -> int
        self.sync_rd: dict[tuple[str, int], int] = {}
        for mem in self.circuit.memories:
            for i, rp in enumerate(mem.read_ports):
                if rp.sync:
                    self.sync_rd[(mem.name, i)] = 0
        for op in self.circuit.ops:
            if op.kind is OpKind.REG:
                self.values[op.out.uid] = op.attrs.get("init", 0)
            elif op.kind is OpKind.CONST:
                self.values[op.out.uid] = op.attrs["value"]
        self.cycle = 0

    def _get(self, sig: Signal) -> int:
        return self.values[sig.uid]

    def settle(self, inputs: Mapping[str, int]) -> None:
        """Drive inputs and propagate combinational values (no clock edge)."""
        values = self.values
        by_name = {s.name: s for s in self.circuit.inputs}
        # Undriven inputs read as 0 this cycle (consistent across all the
        # simulators in this repository, which compare cycle-for-cycle).
        for sig in self.circuit.inputs:
            values[sig.uid] = 0
        for name, value in inputs.items():
            sig = by_name.get(name)
            if sig is None:
                raise KeyError(f"unknown input {name!r}")
            if value >> sig.width:
                raise ValueError(f"input {name!r}: value {value} does not fit in {sig.width} bits")
            values[sig.uid] = value
        # Publish sync read data (state) before combinational eval.
        for mem in self.circuit.memories:
            for i, rp in enumerate(mem.read_ports):
                if rp.sync:
                    values[rp.data.uid] = self.sync_rd[(mem.name, i)]
        get = self._get
        for op in self.netlist.order:
            if op.kind is OpKind.MEMRD:  # asynchronous read port
                mem = self.netlist.memories[op.attrs["memory"]]
                addr = get(op.inputs[0]) % mem.depth
                values[op.out.uid] = self.mem_state[mem.name][addr]
            else:
                values[op.out.uid] = _evaluate(op, get)

    def clock_edge(self) -> None:
        """Apply one rising clock edge to all state elements."""
        get = self._get
        # Sample register inputs before any update.
        reg_next = [(op.out.uid, get(op.inputs[0])) for op in self.circuit.ops if op.kind is OpKind.REG]
        # Sample sync read ports (read-first: before writes of this edge).
        new_sync_rd: dict[tuple[str, int], int] = {}
        for mem in self.circuit.memories:
            words = self.mem_state[mem.name]
            for i, rp in enumerate(mem.read_ports):
                if not rp.sync:
                    continue
                if rp.en is not None and not get(rp.en):
                    new_sync_rd[(mem.name, i)] = self.sync_rd[(mem.name, i)]
                else:
                    new_sync_rd[(mem.name, i)] = words[get(rp.addr) % mem.depth]
        # Apply memory writes.
        for mem in self.circuit.memories:
            words = self.mem_state[mem.name]
            written: set[int] = set()
            for wp in mem.write_ports:
                if get(wp.en):
                    addr = get(wp.addr) % mem.depth
                    if self.trap_write_conflicts and addr in written:
                        raise RuntimeError(f"memory {mem.name!r}: write conflict at address {addr}")
                    written.add(addr)
                    words[addr] = get(wp.data)
        # Commit registers.
        for uid, value in reg_next:
            self.values[uid] = value
        self.sync_rd = new_sync_rd
        self.cycle += 1

    def step(self, inputs: Mapping[str, int] | None = None) -> dict[str, int]:
        """Run one full clock cycle and return the circuit outputs."""
        self.settle(inputs or {})
        outs = self.outputs()
        self.clock_edge()
        return outs

    def outputs(self) -> dict[str, int]:
        """Current (settled) output values."""
        return {name: self.values[sig.uid] for name, sig in self.circuit.outputs}

    def peek(self, sig: Signal) -> int:
        """Read any settled signal value (for debugging and tests)."""
        return self.values[sig.uid]

    def run(self, stimuli: Iterable[Mapping[str, int]]) -> list[dict[str, int]]:
        """Run a sequence of input vectors, returning outputs per cycle."""
        return [self.step(vec) for vec in stimuli]
