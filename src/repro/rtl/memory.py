"""Behavioral memories for the RTL IR.

A :class:`Memory` is an array of ``depth`` words of ``width`` bits with any
number of write ports and read ports.  Read ports come in two flavours, which
matter a great deal to the paper:

* **Synchronous** read ports register the read address internally: read data
  corresponds to the address presented on the *previous* cycle.  These map
  directly onto GEM's native 13-bit-address × 32-bit-data RAM blocks
  (paper §III-B).
* **Asynchronous** read ports are combinational.  The paper notes (§IV) that
  asynchronous read ports cannot use the native RAM blocks and must be
  polyfilled with flip-flops and decoder logic, which is why NVDLA (all-sync
  RAMs) shows GEM's best speed-up.  :mod:`repro.core.ram_mapping` implements
  exactly that polyfill.

Write-port semantics: on the clock edge, if ``en`` is high, ``mem[addr]``
takes the value of ``data``.  Multiple write ports writing the same address
in the same cycle is a design error; the word simulator applies ports in
declaration order (last write wins) and can be asked to trap on conflicts.
Read-during-write (sync port reading the address being written) returns the
*old* data, the common "read-first" BRAM behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtl.ir import Circuit, OpKind, Signal


@dataclass
class WritePort:
    """One synchronous write port: ``if en: mem[addr] <= data``."""

    en: Signal
    addr: Signal
    data: Signal


@dataclass
class ReadPort:
    """One read port; ``sync`` selects registered (True) vs combinational.

    ``addr`` is ``None`` only transiently, between
    :meth:`Memory.add_deferred_read_port` and
    :meth:`Memory.bind_read_port`; ``build()`` rejects circuits that
    leave a port unbound.
    """

    addr: Signal | None
    data: Signal
    sync: bool
    #: For sync ports: optional read-enable; when low the output holds.
    en: Signal | None = None


@dataclass
class Memory:
    """A behavioral memory attached to a :class:`~repro.rtl.ir.Circuit`."""

    name: str
    depth: int
    width: int
    write_ports: list[WritePort] = field(default_factory=list)
    read_ports: list[ReadPort] = field(default_factory=list)
    init: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError(f"memory {self.name!r}: depth must be >= 1")
        if self.depth & (self.depth - 1):
            raise ValueError(
                f"memory {self.name!r}: depth must be a power of two (got {self.depth}); "
                "declare the next power of two and leave the tail unused"
            )
        if self.width < 1:
            raise ValueError(f"memory {self.name!r}: width must be >= 1")
        for i, word in enumerate(self.init):
            if not 0 <= word < (1 << self.width):
                raise ValueError(f"memory {self.name!r}: init[{i}] = {word} does not fit in {self.width} bits")

    @property
    def addr_bits(self) -> int:
        """Number of address bits needed to index ``depth`` words."""
        return max(1, (self.depth - 1).bit_length())

    def add_write_port(self, en: Signal, addr: Signal, data: Signal) -> WritePort:
        if addr.width < self.addr_bits:
            raise ValueError(f"memory {self.name!r}: write addr width {addr.width} < {self.addr_bits}")
        if data.width != self.width:
            raise ValueError(f"memory {self.name!r}: write data width {data.width} != {self.width}")
        if en.width != 1:
            raise ValueError(f"memory {self.name!r}: write enable must be 1 bit")
        port = WritePort(en=en, addr=addr, data=data)
        self.write_ports.append(port)
        return port

    def add_read_port(
        self, circuit: Circuit, addr: Signal, sync: bool = True, en: Signal | None = None
    ) -> Signal:
        """Attach a read port and return its data signal.

        The data signal is produced by a ``MEMRD`` op so it participates in
        dataflow traversals like any other signal.
        """
        if addr.width < self.addr_bits:
            raise ValueError(f"memory {self.name!r}: read addr width {addr.width} < {self.addr_bits}")
        if en is not None and en.width != 1:
            raise ValueError(f"memory {self.name!r}: read enable must be 1 bit")
        if en is not None and not sync:
            raise ValueError(f"memory {self.name!r}: async read ports have no enable")
        data = circuit.new_signal(f"{self.name}_rd{len(self.read_ports)}", self.width)
        inputs = (addr,) if en is None else (addr, en)
        circuit.add_op(OpKind.MEMRD, data, inputs, memory=self.name, port=len(self.read_ports), sync=sync)
        port = ReadPort(addr=addr, data=data, sync=sync, en=en)
        self.read_ports.append(port)
        return data

    def add_deferred_read_port(self, circuit: Circuit) -> Signal:
        """Attach a *synchronous* read port whose address is bound later.

        Two-phase circuit constructions (the dual-rail transform) need a
        sync port's data signal — which is state, like a register — while
        building the very logic that computes its address.  This returns
        the data signal immediately; :meth:`bind_read_port` supplies
        ``addr``/``en`` once they exist.  Only sync ports may defer: an
        async port's output depends combinationally on its address, so
        there is no phase at which the output exists without it.
        """
        data = circuit.new_signal(f"{self.name}_rd{len(self.read_ports)}", self.width)
        circuit.add_op(OpKind.MEMRD, data, (), memory=self.name, port=len(self.read_ports), sync=True)
        port = ReadPort(addr=None, data=data, sync=True, en=None)
        self.read_ports.append(port)
        return data

    def bind_read_port(
        self, circuit: Circuit, data: Signal, addr: Signal, en: Signal | None = None
    ) -> None:
        """Late-bind the address (and optional enable) of a deferred port."""
        for port in self.read_ports:
            if port.data.uid == data.uid:
                break
        else:
            raise ValueError(f"memory {self.name!r}: {data.name!r} is not one of my read ports")
        if port.addr is not None:
            raise ValueError(f"memory {self.name!r}: read port {data.name!r} is already bound")
        if addr.width < self.addr_bits:
            raise ValueError(f"memory {self.name!r}: read addr width {addr.width} < {self.addr_bits}")
        if en is not None and en.width != 1:
            raise ValueError(f"memory {self.name!r}: read enable must be 1 bit")
        port.addr = addr
        port.en = en
        op = circuit.producer[data.uid]
        op.inputs = (addr,) if en is None else (addr, en)

    def initial_words(self) -> list[int]:
        """The full ``depth``-long initial content (zero-padded)."""
        words = list(self.init) + [0] * (self.depth - len(self.init))
        return words[: self.depth]
