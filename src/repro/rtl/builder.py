"""Ergonomic construction DSL for :class:`~repro.rtl.ir.Circuit`.

The builder wraps every signal in a :class:`Value`, giving natural operator
syntax (``a & b``, ``a + 1``, ``a[3:0]``, ``mux(sel, a, b)``) while recording
word-level ops into the underlying circuit.  Hierarchy is expressed with
plain Python functions plus :meth:`CircuitBuilder.scope`, which prefixes
signal names so flattened netlists keep readable hierarchical names — our
stand-in for Verilog module instantiation.

Example
-------
>>> b = CircuitBuilder("counter")
>>> en = b.input("en", 1)
>>> count = b.reg("count", 8)
>>> count.next = mux(en, count + 1, count)
>>> b.output("q", count)
>>> circuit = b.build()
"""

from __future__ import annotations

import contextlib
from typing import Iterable, Iterator, Sequence

from repro.rtl.ir import Circuit, OpKind, Signal
from repro.rtl.memory import Memory


def _mask(width: int) -> int:
    return (1 << width) - 1


class Value:
    """A signal handle bound to a builder, with operator overloading.

    Integers used as operands are implicitly converted to constants of the
    other operand's width (they must fit).
    """

    __slots__ = ("builder", "signal")

    def __init__(self, builder: "CircuitBuilder", signal: Signal) -> None:
        self.builder = builder
        self.signal = signal

    @property
    def width(self) -> int:
        return self.signal.width

    @property
    def name(self) -> str:
        return self.signal.name

    # -- helpers -----------------------------------------------------------

    def _coerce(self, other: "Value | int") -> "Value":
        if isinstance(other, Value):
            if other.builder is not self.builder:
                raise ValueError("cannot mix values from different builders")
            return other
        return self.builder.const(other, self.width)

    def _bin(self, kind: OpKind, other: "Value | int", out_width: int | None = None, label: str = "v") -> "Value":
        rhs = self._coerce(other)
        width = out_width if out_width is not None else self.width
        out = self.builder._emit(kind, width, (self.signal, rhs.signal), label)
        return out

    # -- bitwise -----------------------------------------------------------

    def __and__(self, other: "Value | int") -> "Value":
        return self._bin(OpKind.AND, other, label="and")

    def __or__(self, other: "Value | int") -> "Value":
        return self._bin(OpKind.OR, other, label="or")

    def __xor__(self, other: "Value | int") -> "Value":
        return self._bin(OpKind.XOR, other, label="xor")

    def __invert__(self) -> "Value":
        return self.builder._emit(OpKind.NOT, self.width, (self.signal,), "not")

    __rand__ = __and__
    __ror__ = __or__
    __rxor__ = __xor__

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: "Value | int") -> "Value":
        return self._bin(OpKind.ADD, other, label="add")

    def __sub__(self, other: "Value | int") -> "Value":
        return self._bin(OpKind.SUB, other, label="sub")

    def __rsub__(self, other: int) -> "Value":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: "Value | int") -> "Value":
        return self._bin(OpKind.MUL, other, label="mul")

    __radd__ = __add__
    __rmul__ = __mul__

    # -- comparisons (unsigned) ---------------------------------------------

    def __eq__(self, other: object) -> "Value":  # type: ignore[override]
        if not isinstance(other, (Value, int)):
            return NotImplemented  # type: ignore[return-value]
        return self._bin(OpKind.EQ, other, out_width=1, label="eq")

    def __ne__(self, other: object) -> "Value":  # type: ignore[override]
        return ~(self == other)  # type: ignore[operator]

    # Comparisons call __lt__ explicitly instead of using the < operator:
    # Reg subclasses Value, and Python's reflected-operand priority for
    # subclasses would otherwise bounce Value < Reg into Reg.__gt__ forever.
    def __lt__(self, other: "Value | int") -> "Value":
        return self._bin(OpKind.LT, other, out_width=1, label="lt")

    def __ge__(self, other: "Value | int") -> "Value":
        return ~self.__lt__(other)

    def __gt__(self, other: "Value | int") -> "Value":
        return self._coerce(other).__lt__(self)

    def __le__(self, other: "Value | int") -> "Value":
        return ~self._coerce(other).__lt__(self)

    def __hash__(self) -> int:
        return hash(self.signal)

    # -- shifts --------------------------------------------------------------

    def __lshift__(self, amount: "Value | int") -> "Value":
        if isinstance(amount, int):
            return self.builder._emit(OpKind.SHLI, self.width, (self.signal,), "shl", amount=amount)
        return self._bin(OpKind.SHL, amount, label="shl")

    def __rshift__(self, amount: "Value | int") -> "Value":
        if isinstance(amount, int):
            return self.builder._emit(OpKind.SHRI, self.width, (self.signal,), "shr", amount=amount)
        return self._bin(OpKind.SHR, amount, label="shr")

    # -- bit selection --------------------------------------------------------

    def __getitem__(self, index: "int | slice") -> "Value":
        """Verilog-style bit select: ``v[i]`` or ``v[hi:lo]`` (inclusive)."""
        if isinstance(index, int):
            if index < 0:
                index += self.width
            return self.builder._emit(OpKind.SLICE, 1, (self.signal,), "bit", lo=index)
        hi, lo = index.start, index.stop
        if index.step is not None:
            raise ValueError("bit slices do not support a step")
        if hi is None:
            hi = self.width - 1
        if lo is None:
            lo = 0
        if hi < lo:
            raise ValueError(f"slice [{hi}:{lo}] has hi < lo (use Verilog order [hi:lo])")
        return self.builder._emit(OpKind.SLICE, hi - lo + 1, (self.signal,), "slice", lo=lo)

    # -- reductions -----------------------------------------------------------

    def reduce_and(self) -> "Value":
        return self.builder._emit(OpKind.REDAND, 1, (self.signal,), "redand")

    def reduce_or(self) -> "Value":
        return self.builder._emit(OpKind.REDOR, 1, (self.signal,), "redor")

    def reduce_xor(self) -> "Value":
        return self.builder._emit(OpKind.REDXOR, 1, (self.signal,), "redxor")

    def any(self) -> "Value":
        """Alias of :meth:`reduce_or`, reads naturally in conditions."""
        return self.reduce_or()

    # -- width adjustment -------------------------------------------------------

    def zext(self, width: int) -> "Value":
        """Zero-extend to ``width`` (no-op if already that wide)."""
        if width < self.width:
            raise ValueError(f"zext to {width} narrower than {self.width}; use slicing")
        if width == self.width:
            return self
        pad = self.builder.const(0, width - self.width)
        return self.builder.concat(self, pad)

    def trunc(self, width: int) -> "Value":
        """Keep the low ``width`` bits."""
        if width > self.width:
            raise ValueError(f"trunc to {width} wider than {self.width}; use zext")
        if width == self.width:
            return self
        return self[width - 1 : 0]

    def resize(self, width: int) -> "Value":
        return self.zext(width) if width >= self.width else self.trunc(width)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Value({self.signal.name}:{self.width})"


class Reg(Value):
    """A register value whose next-cycle input is assigned via ``.next``."""

    __slots__ = ("_assigned", "_init")

    def __init__(self, builder: "CircuitBuilder", signal: Signal) -> None:
        super().__init__(builder, signal)
        object.__setattr__(self, "_assigned", False)

    @property
    def next(self) -> Value:
        raise AttributeError("reg .next is write-only")

    @next.setter
    def next(self, value: "Value | int") -> None:
        if self._assigned:
            raise ValueError(f"register {self.name!r} assigned twice")
        val = self._coerce(value)
        if val.width != self.width:
            raise ValueError(f"register {self.name!r}: next width {val.width} != {self.width}")
        self.builder._finish_reg(self, val)
        object.__setattr__(self, "_assigned", True)

    # Value uses __slots__; allow the one mutable flag through the property
    # machinery above.
    def __setattr__(self, key: str, value) -> None:
        if key == "next":
            Reg.next.fset(self, value)  # type: ignore[attr-defined]
        else:
            object.__setattr__(self, key, value)


class CircuitBuilder:
    """Incrementally constructs a :class:`~repro.rtl.ir.Circuit`."""

    def __init__(self, name: str = "top") -> None:
        self.circuit = Circuit(name)
        self._scopes: list[str] = []
        self._pending_regs: dict[int, Reg] = {}
        self._const_cache: dict[tuple[int, int], Value] = {}

    # -- naming ----------------------------------------------------------------

    def _qualify(self, name: str) -> str:
        return ".".join(self._scopes + [name]) if self._scopes else name

    @contextlib.contextmanager
    def scope(self, name: str) -> Iterator[None]:
        """Prefix signal names created inside with ``name.`` (hierarchy)."""
        self._scopes.append(name)
        try:
            yield
        finally:
            self._scopes.pop()

    # -- primitives ---------------------------------------------------------------

    def _emit(self, kind: OpKind, width: int, inputs: tuple[Signal, ...], label: str, **attrs) -> Value:
        out = self.circuit.new_signal(self._qualify(label), width)
        self.circuit.add_op(kind, out, inputs, **attrs)
        return Value(self, out)

    def const(self, value: int, width: int) -> Value:
        """A constant; cached so repeated literals share one signal."""
        if value < 0:
            value &= _mask(width)
        if value >> width:
            raise ValueError(f"constant {value} does not fit in {width} bits")
        key = (value, width)
        cached = self._const_cache.get(key)
        if cached is not None:
            return cached
        val = self._emit(OpKind.CONST, width, (), f"c{value}w{width}", value=value)
        self._const_cache[key] = val
        return val

    def input(self, name: str, width: int) -> Value:
        sig = self.circuit.add_input(self._qualify(name), width)
        return Value(self, sig)

    def output(self, name: str, value: "Value | int", width: int | None = None) -> None:
        if isinstance(value, int):
            if width is None:
                raise ValueError("integer outputs need an explicit width")
            value = self.const(value, width)
        self.circuit.add_output(self._qualify(name), value.signal)

    def reg(self, name: str, width: int, init: int = 0) -> Reg:
        """Declare a register; assign its input later via ``r.next = ...``.

        Declaring before assigning lets registers appear in feedback loops
        (the natural RTL idiom).  :meth:`build` fails if any register is left
        unassigned.
        """
        q = self.circuit.new_signal(self._qualify(name), width)
        reg = Reg(self, q)
        reg._init = init  # type: ignore[attr-defined]
        self._pending_regs[q.uid] = reg
        return reg

    def reg_en(self, reg: Reg, en: "Value | int", d: "Value | int") -> None:
        """Assign a register's input behind a clock enable.

        ``reg_en(r, en, d)`` is ``r.next = mux(en, d, r)`` — the
        multi-clock-enable FF idiom (every enabled register holds its value
        on disabled cycles).  Provided as a first-class helper so generated
        and hand-written designs spell the hold loop identically.
        """
        d_v = reg._coerce(d).resize(reg.width)
        reg.next = self.mux(en, d_v, reg)

    def _finish_reg(self, reg: Reg, d: Value) -> None:
        if reg.signal.uid not in self._pending_regs:
            raise ValueError(f"register {reg.name!r} is not pending (already assigned?)")
        self.circuit.add_op(OpKind.REG, reg.signal, (d.signal,), init=getattr(reg, "_init", 0))
        del self._pending_regs[reg.signal.uid]

    # -- composite helpers ----------------------------------------------------------

    def mux(self, sel: "Value | int", a: "Value | int", b: "Value | int") -> Value:
        """``sel ? a : b``.  At least one of a/b must be a Value."""
        if isinstance(a, int) and isinstance(b, int):
            raise ValueError("mux needs at least one Value arm to infer width")
        ref = a if isinstance(a, Value) else b
        assert isinstance(ref, Value)
        a_v = ref._coerce(a)
        b_v = ref._coerce(b)
        sel_v = a_v._coerce(sel) if isinstance(sel, int) else sel
        if sel_v.width != 1:
            raise ValueError("mux select must be 1 bit")
        if a_v.width != b_v.width:
            raise ValueError(f"mux arms differ in width ({a_v.width} vs {b_v.width})")
        out = self.circuit.new_signal(self._qualify("mux"), a_v.width)
        self.circuit.add_op(OpKind.MUX, out, (sel_v.signal, a_v.signal, b_v.signal))
        return Value(self, out)

    def concat(self, *parts: Value) -> Value:
        """Concatenate values, first argument is the least significant."""
        if not parts:
            raise ValueError("concat needs at least one part")
        if len(parts) == 1:
            return parts[0]
        width = sum(p.width for p in parts)
        out = self.circuit.new_signal(self._qualify("cat"), width)
        self.circuit.add_op(OpKind.CONCAT, out, tuple(p.signal for p in parts))
        return Value(self, out)

    def select(self, options: Sequence["Value | int"], index: Value) -> Value:
        """A mux tree: ``options[index]`` (options padded with last entry)."""
        vals: list[Value] = []
        ref = next(o for o in options if isinstance(o, Value))
        for o in options:
            vals.append(ref._coerce(o))
        n = len(vals)
        if n == 0:
            raise ValueError("select needs at least one option")
        # Pad to a power of two with the final option so the tree is full.
        size = 1 << max(1, (n - 1)).bit_length() if n > 1 else 1
        vals = vals + [vals[-1]] * (size - n)
        level = vals
        bit = 0
        needed = (len(level) - 1).bit_length()
        if index.width < needed:
            raise ValueError(f"select: index width {index.width} < {needed} needed for {n} options")
        while len(level) > 1:
            sel = index[bit]
            level = [self.mux(sel, level[i + 1], level[i]) for i in range(0, len(level), 2)]
            bit += 1
        return level[0]

    def memory(self, name: str, depth: int, width: int, init: Iterable[int] = ()) -> Memory:
        mem = Memory(name=self._qualify(name), depth=depth, width=width, init=list(init))
        self.circuit.memories.append(mem)
        return mem

    def read(self, mem: Memory, addr: Value, sync: bool = True, en: "Value | None" = None) -> Value:
        data = mem.add_read_port(self.circuit, addr.signal, sync=sync, en=None if en is None else en.signal)
        return Value(self, data)

    def read_deferred(self, mem: Memory) -> Value:
        """A sync read port created before its address exists; see bind_read."""
        return Value(self, mem.add_deferred_read_port(self.circuit))

    def bind_read(self, mem: Memory, data: Value, addr: Value, en: "Value | None" = None) -> None:
        """Late-bind the address/enable of a ``read_deferred`` port."""
        mem.bind_read_port(
            self.circuit, data.signal, addr.signal, None if en is None else en.signal
        )

    def write(self, mem: Memory, en: Value, addr: Value, data: Value) -> None:
        mem.add_write_port(en.signal, addr.signal, data.signal)

    # -- finish --------------------------------------------------------------------

    def build(self) -> Circuit:
        """Validate and return the finished circuit."""
        if self._pending_regs:
            names = ", ".join(r.name for r in self._pending_regs.values())
            raise ValueError(f"registers never assigned: {names}")
        from repro.rtl.elaborate import check_circuit

        check_circuit(self.circuit)
        return self.circuit
