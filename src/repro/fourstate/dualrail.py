"""Dual-rail transform: compile 4-state semantics into a 2-state circuit.

``to_dual_rail(circuit)`` produces a new word-level circuit computing the
(data, unknown) encoding of the original design.  Every input grows an
``<name>__x`` companion (X-mask), every output an ``<name>__x`` rail, each
register becomes a data/unknown register pair (optionally powering up as
X), and each memory becomes a data/unknown memory pair plus a sticky
poison register realizing the X-address write rule.

Because the result is an ordinary 2-state circuit, it runs on *every*
engine in this repository — WordSim, the event-driven/compiled/gate-level
baselines, and the **GEM interpreter**, which thereby gains the 4-state
simulation the paper lists as future work with zero changes to the
virtual Boolean machine: 4-state is a compile-time transform, exactly as
in production 2-state flows.

The transform's semantics match :class:`repro.fourstate.sim.FourStateSim`
bit-for-bit (tests/test_fourstate.py drives them in lockstep).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fourstate.semantics import FourState
from repro.rtl.builder import CircuitBuilder, Value
from repro.rtl.ir import Circuit, Op, OpKind
from repro.rtl.netlist import Netlist

Rail = tuple[Value, Value]  # (data, unknown), normal form: data & unknown == 0


@dataclass
class DualRailCircuit:
    """The transformed circuit plus host-side encode/decode helpers."""

    circuit: Circuit
    #: original input name -> (data input name, x-mask input name)
    input_rails: dict[str, tuple[str, str]]
    #: original output name -> (data output name, x-mask output name)
    output_rails: dict[str, tuple[str, str]]
    input_widths: dict[str, int]
    output_widths: dict[str, int]

    def encode_inputs(self, inputs: dict[str, "int | FourState"]) -> dict[str, int]:
        """4-state (or plain int) input words -> 2-state stimulus dict."""
        vec: dict[str, int] = {}
        for name, value in inputs.items():
            d_name, x_name = self.input_rails[name]
            if isinstance(value, FourState):
                vec[d_name] = value.data
                vec[x_name] = value.unknown
            else:
                vec[d_name] = value
                vec[x_name] = 0
        return vec

    def decode_outputs(self, outputs: dict[str, int]) -> dict[str, FourState]:
        """2-state engine outputs -> 4-state words."""
        decoded: dict[str, FourState] = {}
        for name, (d_name, x_name) in self.output_rails.items():
            decoded[name] = FourState(
                data=outputs[d_name],
                unknown=outputs[x_name],
                width=self.output_widths[name],
            )
        return decoded


def to_dual_rail(circuit: Circuit, x_reset: bool = True, x_memory: bool = True) -> DualRailCircuit:
    """Build the dual-rail 2-state equivalent of ``circuit``."""
    netlist = Netlist(circuit)
    b = CircuitBuilder(f"{circuit.name}__4state")
    env: dict[int, Rail] = {}

    def ones(width: int) -> Value:
        return b.const((1 << width) - 1, width)

    def zero(width: int) -> Value:
        return b.const(0, width)

    input_rails: dict[str, tuple[str, str]] = {}
    input_widths: dict[str, int] = {}
    for sig in circuit.inputs:
        d_in = b.input(sig.name, sig.width)
        u_in = b.input(f"{sig.name}__x", sig.width)
        env[sig.uid] = (d_in & ~u_in, u_in)  # normalize host-driven rails
        input_rails[sig.name] = (sig.name, f"{sig.name}__x")
        input_widths[sig.name] = sig.width

    # State elements first (two-phase, like every other consumer of the IR).
    reg_pairs: list[tuple[Op, Value, Value]] = []
    for op in circuit.ops:
        if op.kind is OpKind.CONST:
            env[op.out.uid] = (b.const(op.attrs["value"], op.out.width), zero(op.out.width))
        elif op.kind is OpKind.REG:
            w = op.out.width
            init = op.attrs.get("init", 0)
            d_reg = b.reg(f"{op.out.name}__d", w, init=0 if x_reset else init)
            u_reg = b.reg(f"{op.out.name}__u", w, init=(1 << w) - 1 if x_reset else 0)
            env[op.out.uid] = (d_reg, u_reg)
            reg_pairs.append((op, d_reg, u_reg))

    mems = _build_memories(b, circuit, env, netlist, x_reset, x_memory)

    for op in netlist.order:
        env[op.out.uid] = _lower(b, op, env, mems, netlist)

    output_rails: dict[str, tuple[str, str]] = {}
    output_widths: dict[str, int] = {}
    for name, sig in circuit.outputs:
        d, u = env[sig.uid]
        b.output(name, d)
        b.output(f"{name}__x", u)
        output_rails[name] = (name, f"{name}__x")
        output_widths[name] = sig.width

    for op, d_reg, u_reg in reg_pairs:
        d, u = env[op.inputs[0].uid]
        d_reg.next = d
        u_reg.next = u
    _finish_memories(b, circuit, env, mems)

    return DualRailCircuit(
        circuit=b.build(),
        input_rails=input_rails,
        output_rails=output_rails,
        input_widths=input_widths,
        output_widths=output_widths,
    )


class _MemPair:
    def __init__(self, b: CircuitBuilder, mem, x_memory: bool) -> None:
        init = mem.initial_words()
        known = len(mem.init)
        self.mem = mem
        self.d = b.memory(f"{mem.name}__d", mem.depth, mem.width, init=init)
        u_init = ([0] * known + [(1 << mem.width) - 1] * (mem.depth - known)) if x_memory else []
        self.u = b.memory(f"{mem.name}__u", mem.depth, mem.width, init=u_init)
        self.poison = b.reg(f"{mem.name}__poison", 1, init=0)
        #: per sync read port: (override reg, data reg, unknown reg)
        self.sync_ports: list[tuple[Value, Value, Value] | None] = []


def _build_memories(b, circuit, env, netlist, x_reset, x_memory) -> dict[str, _MemPair]:
    mems: dict[str, _MemPair] = {}
    for mem in circuit.memories:
        pair = _MemPair(b, mem, x_memory)
        mems[mem.name] = pair
        # Sync read data is state: deferred native sync ports give us the
        # data rails before the combinational pass computes the address
        # (bound in _finish_memories).  Keeping the ports *synchronous* is
        # what preserves native RAM-block mapping — lowering them to async
        # reads plus sampling registers would polyfill both rail memories
        # into depth x width mux trees (§III-B: async ports cannot use
        # native blocks), a ~15-20x gate blow-up on RAM-heavy designs.
        for i, rp in enumerate(mem.read_ports):
            if rp.sync:
                # The pre-first-sample output is register-like state: the
                # reference powers it up X under x_reset (not x_memory),
                # known 0 otherwise.
                ovr = b.reg(f"{mem.name}__ovr{i}", 1, init=1 if x_reset else 0)
                rd_d = b.read_deferred(pair.d)
                rd_u = b.read_deferred(pair.u)
                pair.sync_ports.append((ovr, rd_d, rd_u))
                force_x = ovr | pair.poison
                mw = mem.width
                env[rp.data.uid] = (
                    b.mux(force_x, b.const(0, mw), rd_d & ~rd_u),
                    b.mux(force_x, b.const((1 << mw) - 1, mw), rd_u),
                )
            else:
                pair.sync_ports.append(None)
    return mems


def _lower(b: CircuitBuilder, op: Op, env: dict[int, Rail], mems, netlist) -> Rail:
    kind = op.kind
    w = op.out.width
    ins = [env[s.uid] for s in op.inputs]

    def ones() -> Value:
        return b.const((1 << w) - 1, w)

    def zero() -> Value:
        return b.const(0, w)

    if kind is OpKind.AND:
        (ad, au), (bd, bu) = ins
        definitely_zero = (~ad & ~au) | (~bd & ~bu)
        u = (au | bu) & ~definitely_zero
        return (ad & bd, u)
    if kind is OpKind.OR:
        (ad, au), (bd, bu) = ins
        one = ad | bd
        return (one, (au | bu) & ~one)
    if kind is OpKind.XOR:
        (ad, au), (bd, bu) = ins
        u = au | bu
        return ((ad ^ bd) & ~u, u)
    if kind is OpKind.NOT:
        (ad, au) = ins[0]
        return (~ad & ~au, au)
    if kind in (OpKind.ADD, OpKind.SUB, OpKind.MUL):
        (ad, au), (bd, bu) = ins
        anyx = (au | bu).reduce_or()
        result = {OpKind.ADD: ad + bd, OpKind.SUB: ad - bd, OpKind.MUL: ad * bd}[kind]
        return (b.mux(anyx, zero(), result), b.mux(anyx, ones(), zero()))
    if kind is OpKind.EQ:
        (ad, au), (bd, bu) = ins
        xs = au | bu
        mismatch = ((ad ^ bd) & ~xs).reduce_or()
        anyx = xs.reduce_or()
        return (~mismatch & ~anyx, anyx & ~mismatch)
    if kind is OpKind.LT:
        (ad, au), (bd, bu) = ins
        anyx = (au | bu).reduce_or()
        return ((ad < bd) & ~anyx, anyx)
    if kind is OpKind.MUX:
        (sd, su), (ad, au), (bd, bu) = ins
        agree = ~(au | bu) & ~(ad ^ bd)
        merged_d = ad & agree
        merged_u = ~agree
        pick_d = b.mux(sd[0], ad, bd)
        pick_u = b.mux(sd[0], au, bu)
        return (b.mux(su[0], merged_d, pick_d), b.mux(su[0], merged_u, pick_u))
    if kind is OpKind.REDAND:
        (ad, au) = ins[0]
        has_def0 = (~ad & ~au).reduce_or()
        anyx = au.reduce_or()
        return (~has_def0 & ~anyx, ~has_def0 & anyx)
    if kind is OpKind.REDOR:
        (ad, au) = ins[0]
        one = ad.reduce_or()
        return (one, au.reduce_or() & ~one)
    if kind is OpKind.REDXOR:
        (ad, au) = ins[0]
        anyx = au.reduce_or()
        return (ad.reduce_xor() & ~anyx, anyx)
    if kind in (OpKind.SHLI, OpKind.SHRI):
        (ad, au) = ins[0]
        amount = op.attrs["amount"]
        if kind is OpKind.SHLI:
            return (ad << amount, au << amount)
        return (ad >> amount, au >> amount)
    if kind in (OpKind.SHL, OpKind.SHR):
        (ad, au), (bd, bu) = ins
        anyx = bu.reduce_or()
        if kind is OpKind.SHL:
            sd, su = ad << bd, au << bd
        else:
            sd, su = ad >> bd, au >> bd
        return (b.mux(anyx, zero(), sd), b.mux(anyx, ones(), su))
    if kind is OpKind.SLICE:
        (ad, au) = ins[0]
        lo = op.attrs["lo"]
        hi = lo + w - 1
        return (ad[hi:lo], au[hi:lo])
    if kind is OpKind.CONCAT:
        return (b.concat(*(d for d, _ in ins)), b.concat(*(u for _, u in ins)))
    if kind is OpKind.MEMRD:  # asynchronous port
        pair = mems[op.attrs["memory"]]
        mem = pair.mem
        (ad, au) = ins[0]
        addr = ad.trunc(mem.addr_bits)
        anyx = au[mem.addr_bits - 1 : 0].reduce_or() | pair.poison
        rd_d = b.read(pair.d, addr, sync=False)
        rd_u = b.read(pair.u, addr, sync=False)
        mw = mem.width
        return (
            b.mux(anyx, b.const(0, mw), rd_d & ~rd_u),
            b.mux(anyx, b.const((1 << mw) - 1, mw), rd_u),
        )
    raise NotImplementedError(str(kind))


def _finish_memories(b: CircuitBuilder, circuit, env, mems) -> None:
    for mem in circuit.memories:
        pair = mems[mem.name]
        mw = mem.width
        ab = mem.addr_bits
        all_ones = b.const((1 << mw) - 1, mw)
        # Write side.
        poison_next = pair.poison
        for wp in mem.write_ports:
            en_d, en_u = env[wp.en.uid]
            ad, au = env[wp.addr.uid]
            dd, du = env[wp.data.uid]
            maybe = en_d | en_u
            addr_x = au[ab - 1 : 0].reduce_or()
            poison_next = poison_next | (maybe & addr_x)
            wen = maybe & ~addr_x
            # A maybe-write (X enable) stores an all-X word.
            wdata_d = b.mux(en_u, b.const(0, mw), dd)
            wdata_u = b.mux(en_u, all_ones, du)
            b.write(pair.d, wen, ad.trunc(ab), wdata_d)
            b.write(pair.u, wen, ad.trunc(ab), wdata_u)
        pair.poison.next = poison_next
        # Sync read ports: bind the deferred native ports built up front.
        # A maybe-enabled port (X enable) still samples — pessimistically
        # latching *something* — and the ``ovr`` register marks the output
        # X until the next definitely-known sample.  Port semantics
        # (read-first, hold when disabled, output 0 before any sample)
        # match the sampling-register formulation exactly; the initial
        # pre-sample output is never observable because ``ovr`` powers up
        # set.
        for i, rp in enumerate(mem.read_ports):
            if not rp.sync:
                continue
            ovr, rd_d, rd_u = pair.sync_ports[i]
            ad, au = env[rp.addr.uid]
            addr_x = au[ab - 1 : 0].reduce_or()
            if rp.en is not None:
                en_d, en_u = env[rp.en.uid]
                sample = en_d | en_u
                ovr.next = b.mux(sample, en_u | addr_x, ovr)
                b.bind_read(pair.d, rd_d, ad.trunc(ab), en=sample)
                b.bind_read(pair.u, rd_u, ad.trunc(ab), en=sample)
            else:
                ovr.next = addr_x
                b.bind_read(pair.d, rd_d, ad.trunc(ab))
                b.bind_read(pair.u, rd_u, ad.trunc(ab))