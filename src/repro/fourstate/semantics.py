"""The 4-state value algebra: dual-rail words with pessimistic X-propagation.

A 4-state word of width ``w`` is a pair of 2-state words ``(data, unknown)``:
bit ``i`` is X when ``unknown[i] = 1``, otherwise it is ``data[i]``.  Z is
collapsed to X on read (this is a simulator, not a strength resolver), the
usual 2-state-engine treatment.

Normal form: ``data & unknown == 0`` (data bits under an X are zero).  All
operations below maintain it, which makes equality checks canonical.

Propagation rules follow IEEE 1364's semantics for the operators our IR
has (the same rules commercial X-prop uses):

* bitwise ops are per-bit exact (``0 & X = 0``, ``1 | X = 1``, else X);
* arithmetic, comparisons and variable shifts are *word-pessimistic*: any
  X bit in an operand makes the whole result X;
* ``mux`` with an X select merges the arms per bit (equal definite bits
  survive, the rest go X);
* reductions short-circuit on dominating definite bits.
"""

from __future__ import annotations

from dataclasses import dataclass


def _mask(width: int) -> int:
    return (1 << width) - 1


@dataclass(frozen=True)
class FourState:
    """One 4-state word in normal form."""

    data: int
    unknown: int
    width: int

    def __post_init__(self) -> None:
        m = _mask(self.width)
        object.__setattr__(self, "data", self.data & m & ~self.unknown)
        object.__setattr__(self, "unknown", self.unknown & m)

    # -- constructors --------------------------------------------------------

    @classmethod
    def known(cls, value: int, width: int) -> "FourState":
        return cls(data=value, unknown=0, width=width)

    @classmethod
    def all_x(cls, width: int) -> "FourState":
        return cls(data=0, unknown=_mask(width), width=width)

    # -- queries ---------------------------------------------------------------

    @property
    def is_fully_known(self) -> bool:
        return self.unknown == 0

    @property
    def has_x(self) -> bool:
        return self.unknown != 0

    def value(self) -> int:
        """The integer value; raises if any bit is X."""
        if self.unknown:
            raise ValueError(f"value has X bits: {self}")
        return self.data

    def compatible_with(self, value: int) -> bool:
        """Could this 4-state word resolve to the 2-state ``value``?

        True iff every *definite* bit matches — the monotonicity relation
        X-propagation must respect (pessimism may add X, never flip a
        definite bit).
        """
        definite = _mask(self.width) & ~self.unknown
        return (self.data & definite) == (value & definite)

    def __str__(self) -> str:
        chars = []
        for i in reversed(range(self.width)):
            if (self.unknown >> i) & 1:
                chars.append("x")
            else:
                chars.append(str((self.data >> i) & 1))
        return "".join(chars)


#: convenience singleton factory
def X(width: int) -> FourState:
    return FourState.all_x(width)


# ---------------------------------------------------------------------------
# Operator library (word in, word out).
# ---------------------------------------------------------------------------


def f_and(a: FourState, b: FourState) -> FourState:
    # 0 dominates: a bit is definite-0 if either side is definite-0.
    zero = (~a.data & ~a.unknown) | (~b.data & ~b.unknown)
    data = a.data & b.data
    unknown = (a.unknown | b.unknown) & ~zero
    return FourState(data, unknown, a.width)


def f_or(a: FourState, b: FourState) -> FourState:
    one = a.data | b.data  # definite-1 dominates (data is 0 under X)
    unknown = (a.unknown | b.unknown) & ~one
    return FourState(one, unknown, a.width)


def f_xor(a: FourState, b: FourState) -> FourState:
    unknown = a.unknown | b.unknown
    return FourState((a.data ^ b.data) & ~unknown, unknown, a.width)


def f_not(a: FourState) -> FourState:
    return FourState(~a.data & _mask(a.width) & ~a.unknown, a.unknown, a.width)


def _word_pessimistic(width: int, *operands: FourState):
    """None if all operands known, else the all-X word."""
    if any(op.unknown for op in operands):
        return FourState.all_x(width)
    return None


def f_add(a: FourState, b: FourState) -> FourState:
    return _word_pessimistic(a.width, a, b) or FourState.known(
        (a.data + b.data) & _mask(a.width), a.width
    )


def f_sub(a: FourState, b: FourState) -> FourState:
    return _word_pessimistic(a.width, a, b) or FourState.known(
        (a.data - b.data) & _mask(a.width), a.width
    )


def f_mul(a: FourState, b: FourState) -> FourState:
    return _word_pessimistic(a.width, a, b) or FourState.known(
        (a.data * b.data) & _mask(a.width), a.width
    )


def f_eq(a: FourState, b: FourState) -> FourState:
    # Definite mismatch on any definite bit pair -> definite 0, even with
    # other X bits (IEEE 1364: comparisons with X are X, but a 2-state
    # mismatch is decidable; we use the tighter decidable rule).
    definite = ~(a.unknown | b.unknown) & _mask(a.width)
    if (a.data ^ b.data) & definite:
        return FourState.known(0, 1)
    if (a.unknown | b.unknown) == 0:
        return FourState.known(1, 1)
    return FourState.all_x(1)


def f_lt(a: FourState, b: FourState) -> FourState:
    return _word_pessimistic(1, a, b) or FourState.known(int(a.data < b.data), 1)


def f_mux(sel: FourState, a: FourState, b: FourState) -> FourState:
    if sel.unknown:
        # Per-bit merge: definite-equal bits survive, everything else is X.
        agree = ~(a.unknown | b.unknown) & ~(a.data ^ b.data) & _mask(a.width)
        return FourState(a.data & agree, ~agree & _mask(a.width), a.width)
    return a if sel.data else b


def f_shli(a: FourState, amount: int) -> FourState:
    return FourState(a.data << amount, a.unknown << amount, a.width)


def f_shri(a: FourState, amount: int) -> FourState:
    return FourState(a.data >> amount, a.unknown >> amount, a.width)


def f_shl(a: FourState, amount: FourState) -> FourState:
    if amount.unknown:
        return FourState.all_x(a.width)
    amt = amount.data
    if amt >= a.width:
        return FourState.known(0, a.width)
    return f_shli(a, amt)


def f_shr(a: FourState, amount: FourState) -> FourState:
    if amount.unknown:
        return FourState.all_x(a.width)
    amt = amount.data
    if amt >= a.width:
        return FourState.known(0, a.width)
    return f_shri(a, amt)


def f_redand(a: FourState) -> FourState:
    if (~a.data & ~a.unknown) & _mask(a.width):
        return FourState.known(0, 1)  # a definite 0 dominates
    if a.unknown:
        return FourState.all_x(1)
    return FourState.known(1, 1)


def f_redor(a: FourState) -> FourState:
    if a.data:
        return FourState.known(1, 1)  # a definite 1 dominates
    if a.unknown:
        return FourState.all_x(1)
    return FourState.known(0, 1)


def f_redxor(a: FourState) -> FourState:
    if a.unknown:
        return FourState.all_x(1)
    return FourState.known(bin(a.data).count("1") & 1, 1)


def f_slice(a: FourState, lo: int, width: int) -> FourState:
    return FourState((a.data >> lo), (a.unknown >> lo), width)


def f_concat(parts: list[FourState]) -> FourState:
    data = 0
    unknown = 0
    shift = 0
    for p in parts:
        data |= p.data << shift
        unknown |= p.unknown << shift
        shift += p.width
    return FourState(data, unknown, shift)
