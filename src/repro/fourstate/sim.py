"""Golden 4-state simulator over the word-level netlist.

Mirrors :class:`repro.rtl.netlist.WordSim` but computes
:class:`~repro.fourstate.semantics.FourState` words, with the features
4-state simulation exists for:

* registers power up as **X** unless the design gave an init value and
  ``x_reset`` is left on — running a workload and checking outputs are
  fully known proves the design's reset sequence actually initializes its
  state;
* memory words are X until written (configurable), and a write through an
  X address X-poisons the whole memory (the pessimistic-but-sound rule);
* inputs may be driven with :class:`FourState` values (or plain ints).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.fourstate import semantics as fs
from repro.fourstate.semantics import FourState
from repro.rtl.ir import Op, OpKind, Signal
from repro.rtl.netlist import Netlist


def _addr_unknown(addr: FourState, mem) -> bool:
    """True when the *address port* carries X.

    Only the low ``addr_bits`` of the address word exist in hardware (the
    dual-rail transform truncates the address to the port width before it
    reaches the decoder), so an X confined to bits above ``addr_bits``
    cannot change which word is selected and must not poison the access.
    The oracle flushed this out: the old whole-word test was pessimistic
    in a way no realizable dual-rail netlist can reproduce.
    """
    return bool(addr.unknown & ((1 << mem.addr_bits) - 1))


class FourStateSim:
    """4-state cycle simulation of a word-level netlist."""

    def __init__(self, netlist: Netlist, x_reset: bool = True, x_memory: bool = True) -> None:
        self.netlist = netlist
        self.circuit = netlist.circuit
        self.values: dict[int, FourState] = {}
        self.x_writes = 0  # writes dropped/poisoned due to X controls
        for op in self.circuit.ops:
            if op.kind is OpKind.REG:
                if x_reset:
                    self.values[op.out.uid] = FourState.all_x(op.out.width)
                else:
                    self.values[op.out.uid] = FourState.known(
                        op.attrs.get("init", 0), op.out.width
                    )
            elif op.kind is OpKind.CONST:
                self.values[op.out.uid] = FourState.known(op.attrs["value"], op.out.width)
        self.mem_state: dict[str, list[FourState]] = {}
        for mem in self.circuit.memories:
            words = []
            init = mem.initial_words()
            for w in range(mem.depth):
                if x_memory and w >= len(mem.init):
                    words.append(FourState.all_x(mem.width))
                else:
                    words.append(FourState.known(init[w], mem.width))
            self.mem_state[mem.name] = words
        self.sync_rd: dict[tuple[str, int], FourState] = {}
        for mem in self.circuit.memories:
            for i, rp in enumerate(mem.read_ports):
                if rp.sync:
                    self.sync_rd[(mem.name, i)] = (
                        FourState.all_x(mem.width)
                        if x_reset
                        else FourState.known(0, mem.width)
                    )
        #: sticky X-poison per memory: set when a write's address was X
        #: (the sound, hardware-realizable rule — see dualrail.py)
        self.mem_poison: dict[str, bool] = {m.name: False for m in self.circuit.memories}
        self.cycle = 0

    # -- evaluation -----------------------------------------------------------

    def _get(self, sig: Signal) -> FourState:
        return self.values[sig.uid]

    def _eval(self, op: Op) -> FourState:
        get = self._get
        kind = op.kind
        ins = op.inputs
        if kind is OpKind.AND:
            return fs.f_and(get(ins[0]), get(ins[1]))
        if kind is OpKind.OR:
            return fs.f_or(get(ins[0]), get(ins[1]))
        if kind is OpKind.XOR:
            return fs.f_xor(get(ins[0]), get(ins[1]))
        if kind is OpKind.NOT:
            return fs.f_not(get(ins[0]))
        if kind is OpKind.ADD:
            return fs.f_add(get(ins[0]), get(ins[1]))
        if kind is OpKind.SUB:
            return fs.f_sub(get(ins[0]), get(ins[1]))
        if kind is OpKind.MUL:
            return fs.f_mul(get(ins[0]), get(ins[1]))
        if kind is OpKind.EQ:
            return fs.f_eq(get(ins[0]), get(ins[1]))
        if kind is OpKind.LT:
            return fs.f_lt(get(ins[0]), get(ins[1]))
        if kind is OpKind.MUX:
            return fs.f_mux(get(ins[0]), get(ins[1]), get(ins[2]))
        if kind is OpKind.REDAND:
            return fs.f_redand(get(ins[0]))
        if kind is OpKind.REDOR:
            return fs.f_redor(get(ins[0]))
        if kind is OpKind.REDXOR:
            return fs.f_redxor(get(ins[0]))
        if kind is OpKind.SHLI:
            return fs.f_shli(get(ins[0]), op.attrs["amount"])
        if kind is OpKind.SHRI:
            return fs.f_shri(get(ins[0]), op.attrs["amount"])
        if kind is OpKind.SHL:
            return fs.f_shl(get(ins[0]), get(ins[1]))
        if kind is OpKind.SHR:
            return fs.f_shr(get(ins[0]), get(ins[1]))
        if kind is OpKind.SLICE:
            return fs.f_slice(get(ins[0]), op.attrs["lo"], op.out.width)
        if kind is OpKind.CONCAT:
            return fs.f_concat([get(s) for s in ins])
        if kind is OpKind.MEMRD:  # asynchronous port
            mem = self.netlist.memories[op.attrs["memory"]]
            addr = get(ins[0])
            if _addr_unknown(addr, mem) or self.mem_poison[mem.name]:
                return FourState.all_x(mem.width)
            return self.mem_state[mem.name][addr.data % mem.depth]
        raise NotImplementedError(str(kind))

    def settle(self, inputs: Mapping[str, "int | FourState"]) -> None:
        values = self.values
        by_name = {s.name: s for s in self.circuit.inputs}
        for sig in self.circuit.inputs:
            values[sig.uid] = FourState.known(0, sig.width)
        for name, value in inputs.items():
            sig = by_name[name]
            if isinstance(value, FourState):
                if value.width != sig.width:
                    raise ValueError(f"input {name!r}: width mismatch")
                values[sig.uid] = value
            else:
                values[sig.uid] = FourState.known(value, sig.width)
        for mem in self.circuit.memories:
            for i, rp in enumerate(mem.read_ports):
                if rp.sync:
                    values[rp.data.uid] = self.sync_rd[(mem.name, i)]
        for op in self.netlist.order:
            values[op.out.uid] = self._eval(op)

    def clock_edge(self) -> None:
        get = self._get
        reg_next = [
            (op.out.uid, get(op.inputs[0]))
            for op in self.circuit.ops
            if op.kind is OpKind.REG
        ]
        new_sync: dict[tuple[str, int], FourState] = {}
        for mem in self.circuit.memories:
            words = self.mem_state[mem.name]
            for i, rp in enumerate(mem.read_ports):
                if not rp.sync:
                    continue
                en = get(rp.en) if rp.en is not None else FourState.known(1, 1)
                addr = get(rp.addr)
                old = self.sync_rd[(mem.name, i)]
                if en.unknown:
                    new_sync[(mem.name, i)] = FourState.all_x(mem.width)
                elif not en.data:
                    new_sync[(mem.name, i)] = old
                elif _addr_unknown(addr, mem):
                    new_sync[(mem.name, i)] = FourState.all_x(mem.width)
                else:
                    new_sync[(mem.name, i)] = words[addr.data % mem.depth]
        for mem in self.circuit.memories:
            words = self.mem_state[mem.name]
            for wp in mem.write_ports:
                en = get(wp.en)
                if not en.unknown and not en.data:
                    continue  # definitely no write
                addr = get(wp.addr)
                if _addr_unknown(addr, mem):
                    # A write whose target is unknown poisons the memory:
                    # every later read returns X (sticky — the rule a
                    # dual-rail hardware transform can realize exactly).
                    self.x_writes += 1
                    self.mem_poison[mem.name] = True
                elif en.unknown:
                    # Maybe-write to a known address: that word goes X.
                    self.x_writes += 1
                    words[addr.data % mem.depth] = FourState.all_x(mem.width)
                else:
                    words[addr.data % mem.depth] = get(wp.data)
        # Poison overrides sync read data from this edge onward (matching
        # the transform, where the poison register ORs into read data).
        for mem in self.circuit.memories:
            if self.mem_poison[mem.name]:
                for i, rp in enumerate(mem.read_ports):
                    if rp.sync:
                        new_sync[(mem.name, i)] = FourState.all_x(mem.width)
        for uid, value in reg_next:
            self.values[uid] = value
        self.sync_rd.update(new_sync)
        self.cycle += 1

    def step(self, inputs: Mapping[str, "int | FourState"] | None = None) -> dict[str, FourState]:
        self.settle(inputs or {})
        outs = self.outputs()
        self.clock_edge()
        return outs

    def outputs(self) -> dict[str, FourState]:
        return {name: self.values[sig.uid] for name, sig in self.circuit.outputs}

    def run(self, stimuli: Iterable[Mapping[str, int]]) -> list[dict[str, FourState]]:
        return [self.step(vec) for vec in stimuli]

    def unknown_output_bits(self) -> int:
        """Total X bits currently visible on outputs (reset-coverage metric)."""
        return sum(bin(v.unknown).count("1") for v in self.outputs().values())
