"""4-state execution on the fast engines: the dual-rail fast path.

The seed's 4-state support ran only on the slow word-level reference
(:class:`~repro.fourstate.sim.FourStateSim`).  This module brings X/Z
semantics to the packed-lane and stage-fused engines by compiling the
dual-rail transform (:func:`~repro.fourstate.dualrail.to_dual_rail`)
through the regular GEM flow: every state element of the original design
becomes a *pair* of state elements — a value rail and a known rail — and
the unmodified virtual Boolean machine executes both at full speed, lane
planes, stage fusion, compiled backends, quarantine and checkpoints
included.

Why the transform rather than gate-wise engine changes: the 4-state
reference is *word-level* (word-pessimistic arithmetic, per-bit mux
agree-merge), and the synthesized AND-DAG is structurally different from
the word netlist — gate-wise pessimistic x-prop over the fused waves
would not match the reference.  The dual-rail circuit matches it by
construction (pinned bit-for-bit, X-for-X in tests/test_fourstate.py),
so fused const-folding (XOR-by-const polarity flips, OR-const-1
annihilation) stays a sound 2-state rewrite of an already-correct
4-state network.

Entry points::

    design = compile_fourstate(circuit)        # CompiledDesign, values=4
    sim = design.simulator(batch=64)           # FourStateSimulator
    sim.step({"en": 1})                        # raw rails (name + name__x)
    sim.step4({"en": FourState(0, 1, 1)})      # 4-state words in and out
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

from repro.core.engine import SUPPORTED_VALUES, validate_values  # noqa: F401
from repro.fourstate.dualrail import DualRailCircuit, to_dual_rail
from repro.fourstate.semantics import FourState

if TYPE_CHECKING:
    from repro.core.compiler import CompiledDesign, GemConfig
    from repro.rtl.ir import Circuit


def compile_fourstate(
    circuit: "Circuit",
    config: "GemConfig | None" = None,
    *,
    x_reset: bool = True,
    x_memory: bool = True,
) -> "CompiledDesign":
    """Compile ``circuit`` for 4-state execution on the fast engines.

    Applies the dual-rail transform, runs the full GEM compile on the
    resulting 2-state circuit, and returns a :class:`CompiledDesign`
    whose :meth:`~repro.core.compiler.CompiledDesign.simulator` builds
    :class:`FourStateSimulator` instances.  ``x_reset=False`` powers
    registers up at their declared init values — the mode in which a
    fully-known-input run is bit-identical to the 2-state engine.
    """
    from repro.core.compiler import GemCompiler

    dual = to_dual_rail(circuit, x_reset=x_reset, x_memory=x_memory)
    design = GemCompiler(config).compile(dual.circuit)
    design.fourstate = dual
    return design


def _encode_stimulus(
    dual: DualRailCircuit, vec: Mapping[str, "int | FourState"]
) -> dict[str, int]:
    """One stimulus dict -> dual-rail input dict.

    Accepts original input names carrying ints or :class:`FourState`
    words, *and* pre-encoded rail names (``name__x`` unknown masks ride
    through untouched, taking precedence over the implicit 0 mask of a
    plain-int value) — the representation ``.gemrepro`` stimuli use.
    """
    data: dict[str, int] = {}
    masks: dict[str, int] = {}
    for name, value in vec.items():
        rails = dual.input_rails.get(name)
        if rails is None:
            # An explicit rail name (an __x mask, or an input the
            # transform does not know): pass through verbatim.
            masks[name] = int(value)
            continue
        d_name, x_name = rails
        if isinstance(value, FourState):
            data[d_name] = value.data
            masks[x_name] = value.unknown
        else:
            data[d_name] = int(value)
            masks.setdefault(x_name, 0)
    data.update(masks)  # explicit masks win over implicit known-0
    return data


class FourStateSimulator:
    """4-state veneer over :class:`~repro.core.compiler.GemSimulator`.

    Constructed via ``CompiledDesign.simulator()`` on a design compiled
    with :func:`compile_fourstate`.  This *is* a ``GemSimulator`` (the
    class is grafted below to avoid a circular import): ``step`` /
    ``step_lanes`` / checkpoints / probes / quarantine behave exactly
    like the 2-state engine over the dual-rail program, except stimuli
    are encoded first, so plain-int vectors, ``FourState`` words, and
    pre-encoded ``name__x`` masks all work.  The ``*4`` variants decode
    outputs back to :class:`FourState` words.
    """

    # Real definition injected in repro.core.compiler to keep the import
    # DAG acyclic; this placeholder only documents the API.


def make_fourstate_simulator_class(gem_simulator_cls):
    """Build the concrete FourStateSimulator over ``GemSimulator``."""

    class _FourStateSimulator(gem_simulator_cls):
        values = 4

        def __init__(self, program, dual: DualRailCircuit, **kwargs) -> None:
            self.dual = dual
            super().__init__(program, **kwargs)

        # -- raw stepping (2-state rails), stimulus-encoded ---------------

        def step(self, inputs=None):
            return super().step(_encode_stimulus(self.dual, inputs or {}))

        def step_lanes(self, lane_inputs: Sequence[Mapping[str, object]]):
            return super().step_lanes(
                [_encode_stimulus(self.dual, vec) for vec in lane_inputs]
            )

        # -- 4-state API ---------------------------------------------------

        def step4(self, inputs=None) -> dict[str, FourState]:
            return self.dual.decode_outputs(self.step(inputs))

        def step_lanes4(
            self, lane_inputs: Sequence[Mapping[str, object]]
        ) -> list[dict[str, FourState]]:
            return [
                self.dual.decode_outputs(out) for out in self.step_lanes(lane_inputs)
            ]

        def outputs4(self) -> dict[str, FourState]:
            return self.dual.decode_outputs(self.outputs())

        def outputs_lanes4(self) -> list[dict[str, FourState]]:
            return [self.dual.decode_outputs(out) for out in self.outputs_lanes()]

        def unknown_output_bits(self, lane: int = 0) -> int:
            """Total X bits visible on lane ``lane``'s outputs."""
            outs = self.outputs_lanes4()[lane] if self.batch > 1 else self.outputs4()
            return sum(bin(v.unknown).count("1") for v in outs.values())

    _FourStateSimulator.__name__ = "FourStateSimulator"
    _FourStateSimulator.__qualname__ = "FourStateSimulator"
    return _FourStateSimulator
