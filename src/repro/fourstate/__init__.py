"""4-state (0/1/X/Z) simulation — the paper's first listed future work.

The paper closes §V with "many improvements are possible as future works,
including native arithmetic operations, multi-GPU support, CUDA software
pipelining, 4-state simulation".  This package implements 4-state
simulation the way production 2-state engines do:

* :mod:`repro.fourstate.semantics` — the value algebra: IEEE-1364-style
  pessimistic X-propagation over (data, unknown) dual-rail words;
* :mod:`repro.fourstate.sim` — :class:`FourStateSim`, a golden 4-state
  interpreter of the word-level netlist (registers and memories can power
  up as X, so reset coverage is checkable);
* :mod:`repro.fourstate.dualrail` — a circuit-to-circuit transform that
  compiles a design into a 2-state circuit computing its own dual-rail
  encoding.  The transformed circuit runs on *any* 2-state engine in this
  repository — including the GEM interpreter, which therefore gains
  4-state simulation with zero kernel changes.
"""

from repro.fourstate.dualrail import DualRailCircuit, to_dual_rail
from repro.fourstate.semantics import X, FourState
from repro.fourstate.sim import FourStateSim

__all__ = ["DualRailCircuit", "FourState", "FourStateSim", "X", "to_dual_rail"]
