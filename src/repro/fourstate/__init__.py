"""4-state (0/1/X/Z) simulation — the paper's first listed future work.

The paper closes §V with "many improvements are possible as future works,
including native arithmetic operations, multi-GPU support, CUDA software
pipelining, 4-state simulation".  This package implements 4-state
simulation the way production 2-state engines do:

* :mod:`repro.fourstate.semantics` — the value algebra: IEEE-1364-style
  pessimistic X-propagation over (data, unknown) dual-rail words;
* :mod:`repro.fourstate.sim` — :class:`FourStateSim`, a golden 4-state
  interpreter of the word-level netlist (registers and memories can power
  up as X, so reset coverage is checkable);
* :mod:`repro.fourstate.dualrail` — a circuit-to-circuit transform that
  compiles a design into a 2-state circuit computing its own dual-rail
  encoding.  The transformed circuit runs on *any* 2-state engine in this
  repository — including the GEM interpreter, which therefore gains
  4-state simulation with zero kernel changes;
* :mod:`repro.fourstate.fastpath` — ``values=4`` on the fast engines:
  :func:`compile_fourstate` runs the dual-rail transform through the
  full GEM compile so the packed-lane / stage-fused / backend-compiled
  paths execute both rails natively (``gem-run --values 4``).
"""

from repro.fourstate.dualrail import DualRailCircuit, to_dual_rail
from repro.fourstate.fastpath import SUPPORTED_VALUES, compile_fourstate, validate_values
from repro.fourstate.semantics import X, FourState
from repro.fourstate.sim import FourStateSim

__all__ = [
    "DualRailCircuit",
    "FourState",
    "FourStateSim",
    "SUPPORTED_VALUES",
    "X",
    "compile_fourstate",
    "to_dual_rail",
    "validate_values",
]
