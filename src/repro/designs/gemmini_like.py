"""Gemmini-like benchmark design: a weight-stationary systolic MAC array.

Structural analogue of the paper's Gemmini target (DESIGN.md §2).  Gemmini
is the paper's *deepest* design (148 logic levels); this analogue gets its
depth the same way — each array row reduces its partial products through a
combinational multiply-accumulate chain (weight-stationary dataflow with
spatial accumulation), so depth grows linearly with the array dimension.

Dataflow per matmul tile:

1. host writes the weight tile (one row per cycle) with ``wgt_wen``; row
   ``i`` of the array latches its weights from the broadcast bus when
   ``wgt_row == i``;
2. host streams activation vectors (``act_valid``); each vector flows
   through every row combinationally, producing one dot product per row
   per cycle, accumulated into per-row accumulators;
3. results are drained into the scratchpad (synchronous-read RAM) and a
   running checksum; ``row_sums`` are visible as outputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rtl.builder import CircuitBuilder
from repro.rtl.ir import Circuit


@dataclass
class GemminiScale:
    """Size knobs (defaults give the deepest, largest default design)."""

    #: array dimension (rows == cols)
    dim: int = 6
    data_width: int = 8
    acc_width: int = 32
    spad_depth: int = 256


def build_gemmini_like(scale: GemminiScale | None = None) -> Circuit:
    scale = scale or GemminiScale()
    s = scale
    b = CircuitBuilder("gemmini_like")
    N = s.dim
    W = s.data_width
    A = s.acc_width

    wgt_wen = b.input("wgt_wen", 1)
    wgt_row = b.input("wgt_row", 8)
    wgt_bus = b.input("wgt_bus", W * N)
    act_valid = b.input("act_valid", 1)
    act_bus = b.input("act_bus", W * N)
    acc_clear = b.input("acc_clear", 1)
    drain = b.input("drain", 1)
    drain_addr = b.input("drain_addr", 16)

    # Weight-stationary PE array: row i holds weights w[i][0..N-1].
    weights: list[list] = []
    for i in range(N):
        with b.scope(f"row{i}"):
            row = []
            load = wgt_wen & (wgt_row == i)
            for j in range(N):
                wreg = b.reg(f"w{j}", W)
                wreg.next = b.mux(load, wgt_bus[(j + 1) * W - 1 : j * W], wreg)
                row.append(wreg)
            weights.append(row)

    acts = [act_bus[(j + 1) * W - 1 : j * W] for j in range(N)]

    # Spatial MAC chain per row: ps_j = ps_{j-1} + w_j * a_j, combinational
    # along the row (this is where the logic depth comes from).
    row_sums = []
    checksum = b.reg("checksum", A)
    spad = b.memory("spad", s.spad_depth, A)
    for i in range(N):
        with b.scope(f"row{i}"):
            ps = b.const(0, A)
            for j in range(N):
                ps = ps + weights[i][j].zext(A) * acts[j].zext(A)
            acc = b.reg("acc", A)
            acc.next = b.mux(
                acc_clear, b.const(0, A), b.mux(act_valid, acc + ps, acc)
            )
            row_sums.append(acc)

    # Drain one row per cycle through the scratchpad's single write port
    # (keeps the RAM block-mappable: sync read + one write port).
    drain_row = b.input("drain_row", 8)
    row_bits = max(1, (N - 1).bit_length())
    selected = b.select(row_sums, drain_row.trunc(row_bits))
    b.write(spad, drain, drain_addr.trunc(spad.addr_bits), selected)
    # Order-sensitive fold of each drained value (xor of a rotating mix so
    # identical rows cannot cancel pairwise).
    checksum.next = b.mux(
        drain, (checksum ^ selected) + drain_addr.zext(A) + 1, checksum
    )

    # Transposer register file: asynchronous read (like Gemmini's internal
    # transpose buffers) — incurs the paper's async-RAM polyfill penalty.
    transposer = b.memory("transposer", 16, A)
    t_wen = b.input("t_wen", 1)
    t_addr = b.input("t_addr", 4)
    b.write(transposer, t_wen, t_addr, selected)
    t_rdata = b.read(transposer, t_addr, sync=False)
    b.output("t_data", t_rdata)

    # Transpose-read verification port (synchronous scratchpad read).
    verify_addr = b.input("verify_addr", 16)
    b.output("verify_data", b.read(spad, verify_addr.trunc(spad.addr_bits), sync=True))
    b.output("checksum", checksum)
    b.output("row0_sum", row_sums[0])
    b.output("rowN_sum", row_sums[-1])
    return b.build()
