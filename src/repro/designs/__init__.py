"""Benchmark designs and workloads.

Structural stand-ins for the paper's evaluation targets (DESIGN.md §2
documents the substitution):

* :mod:`repro.designs.nvdla_like` — convolution accelerator with MAC tree
  and line/weight buffers; **all RAMs synchronous-read**, so every memory
  maps to native RAM blocks (the property that makes NVDLA GEM's best case
  in §IV).
* :mod:`repro.designs.rocket_like` — an in-order RISC CPU with an
  asynchronous-read register file (the async-RAM polyfill cost of the
  other four designs) running real machine-code workloads.
* :mod:`repro.designs.gemmini_like` — a weight-stationary systolic MAC
  array with scratchpad memories; the deepest design, like the paper's
  Gemmini (148 levels).
* :mod:`repro.designs.openpiton_like` — an ``n``-core tile array with a
  ring interconnect; the 8-core configuration with a single-core workload
  reproduces the low-activity anomaly of §IV.

All generators take a ``scale`` knob; defaults are sized so the
pure-Python reference simulators stay tractable (DESIGN.md §5).
"""

__all__ = [
    "build_gemmini_like",
    "build_nvdla_like",
    "build_openpiton_like",
    "build_rocket_like",
]

_HOMES = {
    "build_gemmini_like": "repro.designs.gemmini_like",
    "build_nvdla_like": "repro.designs.nvdla_like",
    "build_openpiton_like": "repro.designs.openpiton_like",
    "build_rocket_like": "repro.designs.rocket_like",
}


def __getattr__(name: str):
    # Lazy imports keep `import repro.designs.riscish` (and friends) cheap.
    home = _HOMES.get(name)
    if home is None:
        raise AttributeError(f"module 'repro.designs' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(home), name)
