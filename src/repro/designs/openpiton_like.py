"""OpenPiton-like benchmark design: an ``n``-core tile array with a ring.

Structural analogue of the paper's OpenPiton targets (DESIGN.md §2): ``n``
identical tiles — each a MiniRV core with its own instruction/data memory
and asynchronous-read register file — connected by a unidirectional ring
of message registers (the NoC stand-in).

The crucial evaluation property (paper §IV, experiment X2): the 8-core
configuration running a workload that keeps only one core busy exhibits
far fewer signal events per cycle than 8× the single-core activity, which
flatters event-driven baselines and shrinks GEM's *relative* speed-up —
GEM, as a full-cycle simulator, pays for all 8 cores regardless.

Boot addressing: ``boot_core`` selects the tile whose memory is written;
all tiles share the address/data bus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.designs.riscish import BootBus, CoreConfig, build_core
from repro.rtl.builder import CircuitBuilder
from repro.rtl.ir import Circuit


@dataclass
class OpenPitonScale:
    """Size knobs; per-tile sizes are smaller than the rocket-like core."""

    cores: int = 1
    imem_depth: int = 128
    dmem_depth: int = 128
    width: int = 32
    #: tiles drop the hardware multiplier (like the paper's OpenPiton
    #: SPARC tiles, which have no big mul in the integer pipe)
    with_mul: bool = False


def build_openpiton_like(scale: OpenPitonScale | None = None) -> Circuit:
    scale = scale or OpenPitonScale()
    s = scale
    b = CircuitBuilder(f"openpiton{s.cores}_like")

    boot_mode = b.input("boot_mode", 1)
    boot_core = b.input("boot_core", 8)
    boot_imem_wen = b.input("boot_imem_wen", 1)
    boot_dmem_wen = b.input("boot_dmem_wen", 1)
    boot_addr = b.input("boot_addr", 16)
    boot_data = b.input("boot_data", 32)

    cfg = CoreConfig(
        imem_depth=s.imem_depth,
        dmem_depth=s.dmem_depth,
        width=s.width,
        with_mul=s.with_mul,
    )
    ports = []
    for i in range(s.cores):
        hit = boot_core == i
        boot = BootBus(
            mode=boot_mode,
            imem_wen=boot_imem_wen & hit,
            dmem_wen=boot_dmem_wen & hit,
            addr=boot_addr,
            data=boot_data,
        )
        ports.append(build_core(b, f"tile{i}", config=cfg, boot=boot))

    # Ring NoC: one message register per hop carrying (valid, out value);
    # each tile injects when its out_valid fires, messages hop every cycle.
    with b.scope("ring"):
        hop_valid = [b.reg(f"v{i}", 1) for i in range(s.cores)]
        hop_data = [b.reg(f"d{i}", s.width) for i in range(s.cores)]
        for i in range(s.cores):
            prev = (i - 1) % s.cores
            inject = ports[i].out_valid
            if i == 0:
                # Hop 0 is the home node: messages arriving from the last
                # hop are consumed here, so the ring drains.
                hop_valid[i].next = inject
            else:
                hop_valid[i].next = inject | hop_valid[prev]
            hop_data[i].next = b.mux(inject, ports[i].out, hop_data[prev])
        delivered = b.reg("delivered", 16)
        last = s.cores - 1
        delivered.next = b.mux(hop_valid[last], delivered + 1, delivered)
        b.output("ring_delivered", delivered)
        b.output("ring_data", hop_data[last])

    all_halted = ports[0].halted
    any_out = ports[0].out_valid
    agg = ports[0].out
    for p in ports[1:]:
        all_halted = all_halted & p.halted
        any_out = any_out | p.out_valid
        agg = agg ^ p.out
    b.output("all_halted", all_halted)
    b.output("any_out_valid", any_out)
    b.output("out_xor", agg)
    for i, p in enumerate(ports):
        b.output(f"halted{i}", p.halted)
        b.output(f"out{i}", p.out)
        b.output(f"out_valid{i}", p.out_valid)
        b.output(f"retired{i}", p.retired)
    return b.build()
