"""NVDLA-like benchmark design: a multi-engine convolution accelerator.

Structural analogue of the paper's NVDLA target (DESIGN.md §2).  Two
properties of the real design matter to the evaluation and are preserved:

* **every memory has only synchronous read ports**, so the whole design
  maps to native RAM blocks with no FF polyfill — why NVDLA is GEM's best
  case in §IV;
* the chip is a collection of **mostly-idle engines** (conv core, SDP, PDP,
  CDP, …) and each benchmark exercises one of them — why the event-driven
  commercial tool's speed swings by ~4x across NVDLA tests (Table II) while
  only a fraction of the logic switches.  This generator instantiates
  ``engines`` identical MAC pipelines; workloads drive exactly one.

Each engine is a 1-D convolution datapath (the inner loop of NVDLA's
CDMA+CMAC pipeline):

1. host loads activations and weights through the engine's write ports;
2. ``start`` pulses with an output length; the sequencer slides the
   ``taps``-wide window over the activation buffer, one MAC-tree dot
   product per window;
3. each ReLU'd result is written to the output buffer and XOR-folded into
   a running checksum; ``done`` rises at the end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rtl.builder import CircuitBuilder, Value
from repro.rtl.ir import Circuit


@dataclass
class NvdlaScale:
    """Size knobs (defaults give a high-tens-of-kilogates E-AIG)."""

    #: independent engines (conv / pooling / normalization analogues)
    engines: int = 3
    #: parallel MAC lanes per engine (the Atomic-C dimension)
    lanes: int = 8
    #: filter taps accumulated per output (the Atomic-K dimension)
    taps: int = 4
    data_width: int = 16
    acc_width: int = 32
    act_depth: int = 256
    wgt_depth: int = 64
    out_depth: int = 256


def _build_engine(b: CircuitBuilder, s: NvdlaScale, io: dict) -> dict:
    """One conv engine under the current scope; returns its outputs."""
    act = b.memory("act_buf", s.act_depth, s.data_width * s.lanes)
    wgt = b.memory("wgt_buf", s.wgt_depth, s.data_width * s.lanes)
    out = b.memory("out_buf", s.out_depth, s.acc_width)
    b.write(act, io["act_wen"], io["load_addr"].trunc(act.addr_bits), io["load_data"])
    b.write(wgt, io["wgt_wen"], io["load_addr"].trunc(wgt.addr_bits), io["load_data"])

    start = io["start"]
    length = io["length"]
    busy = b.reg("busy", 1)
    opos = b.reg("opos", 16)
    tap = b.reg("tap", 8)
    remaining = b.reg("remaining", 16)
    issue = busy & (tap < s.taps)
    act_rd = b.read(act, (opos + tap.zext(16)).trunc(act.addr_bits), sync=True, en=issue)
    wgt_rd = b.read(wgt, tap.trunc(wgt.addr_bits), sync=True, en=issue)
    data_valid = b.reg("data_valid", 1)
    data_valid.next = issue

    acc = b.reg("acc", s.acc_width)
    products = []
    for lane in range(s.lanes):
        hi = (lane + 1) * s.data_width - 1
        lo = lane * s.data_width
        products.append(act_rd[hi:lo].zext(s.acc_width) * wgt_rd[hi:lo].zext(s.acc_width))
    while len(products) > 1:
        products = [
            products[i] + products[i + 1] if i + 1 < len(products) else products[i]
            for i in range(0, len(products), 2)
        ]
    acc_plus = acc + products[0]

    last_tap_done = data_valid & (tap == s.taps)
    owen = last_tap_done
    acc.next = b.mux(
        owen,
        b.const(0, s.acc_width),
        b.mux(data_valid, acc_plus, b.mux(busy, acc, b.const(0, s.acc_width))),
    )
    tap.next = b.mux(
        start & ~busy,
        b.const(0, 8),
        b.mux(issue, tap + 1, b.mux(last_tap_done, b.const(0, 8), tap)),
    )

    relu = b.mux(acc_plus[s.acc_width - 1], b.const(0, s.acc_width), acc_plus)
    b.write(out, owen, opos.trunc(out.addr_bits), relu)
    checksum = b.reg("checksum", s.acc_width)
    checksum.next = b.mux(owen, checksum ^ relu ^ opos.zext(s.acc_width), checksum)

    finished = (owen & (remaining == 1)) | (busy & (remaining == 0))
    opos.next = b.mux(start & ~busy, b.const(0, 16), b.mux(owen, opos + 1, opos))
    remaining.next = b.mux(start & ~busy, length, b.mux(owen, remaining - 1, remaining))
    busy.next = b.mux(start & ~busy, b.const(1, 1), b.mux(finished, b.const(0, 1), busy))

    verify = b.read(out, io["verify_addr"].trunc(out.addr_bits), sync=True)
    return {"done": ~busy, "checksum": checksum, "opos": opos, "verify": verify}


def build_nvdla_like(scale: NvdlaScale | None = None) -> Circuit:
    scale = scale or NvdlaScale()
    s = scale
    b = CircuitBuilder("nvdla_like")

    engine_sel = b.input("engine", 4)
    act_wen = b.input("act_wen", 1)
    wgt_wen = b.input("wgt_wen", 1)
    load_addr = b.input("load_addr", 16)
    load_data = b.input("load_data", s.data_width * s.lanes)
    start = b.input("start", 1)
    length = b.input("length", 16)
    verify_addr = b.input("verify_addr", 16)

    outs = []
    for e in range(s.engines):
        hit = engine_sel == e
        with b.scope(f"eng{e}"):
            outs.append(
                _build_engine(
                    b,
                    s,
                    {
                        "act_wen": act_wen & hit,
                        "wgt_wen": wgt_wen & hit,
                        "load_addr": load_addr,
                        "load_data": load_data,
                        "start": start & hit,
                        "length": length,
                        "verify_addr": verify_addr,
                    },
                )
            )

    all_done = outs[0]["done"]
    csum = outs[0]["checksum"]
    for o in outs[1:]:
        all_done = all_done & o["done"]
        csum = csum ^ o["checksum"]
    b.output("done", all_done)
    b.output("checksum", csum)
    for e, o in enumerate(outs):
        b.output(f"done{e}", o["done"])
        b.output(f"checksum{e}", o["checksum"])
        b.output(f"verify{e}", o["verify"])
    return b.build()
