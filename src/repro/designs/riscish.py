"""Hardware implementation of a MiniRV core (multi-cycle, in-order).

Shared by :mod:`repro.designs.rocket_like` (one big core with caches) and
:mod:`repro.designs.openpiton_like` (many smaller tiles).  Deliberate
microarchitectural properties that matter to the paper's evaluation:

* the **register file uses asynchronous read ports** — like RocketChip's —
  which forces the flip-flop + mux-tree polyfill in RAM mapping (§IV's
  explanation of why NVDLA speeds up more than the CPU designs);
* instruction and data memories are **synchronous-read** block RAMs, so
  they map to native GEM RAM blocks;
* execution is a 3-state FSM (FETCH → EXEC → MEM), CPI 2–3, giving real
  control-flow-dependent switching activity.

The core is verified instruction-for-instruction against the software
golden model :func:`repro.designs.isa_mini.reference_execute`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.designs import isa_mini as mi
from repro.rtl.builder import CircuitBuilder, Value


@dataclass
class CoreConfig:
    """Size knobs for one core."""

    imem_depth: int = 256
    dmem_depth: int = 256
    #: datapath width (registers, ALU, memories)
    width: int = 32
    #: implement MUL in hardware (a Wallace multiplier is the single
    #: biggest logic block; tiles in the multicore design drop it)
    with_mul: bool = True


@dataclass
class CorePorts:
    """Signals a core exposes to its enclosing design."""

    halted: Value
    out: Value
    out_valid: Value
    pc: Value
    retired: Value


@dataclass
class BootBus:
    """Host-side program/data loading interface.

    While ``mode`` is high the core idles (pc pinned to 0, halt cleared) and
    the host streams words into instruction/data memory — the way emulator
    hosts load workloads, and the reason one GEM compile serves every
    workload of a design (programs arrive through stimulus, not RAM init).
    """

    mode: Value
    imem_wen: Value
    dmem_wen: Value
    addr: Value
    data: Value


S_FETCH = 0
S_EXEC = 1
S_MEM = 2


def build_core(
    b: CircuitBuilder,
    name: str,
    program: list[int] | None = None,
    dmem_init: list[int] | None = None,
    config: CoreConfig | None = None,
    boot: BootBus | None = None,
) -> CorePorts:
    """Instantiate one MiniRV core under scope ``name``.

    ``program``/``dmem_init`` pre-initialize the memories (direct-run use);
    a :class:`BootBus` additionally allows loading at runtime.
    """
    cfg = config or CoreConfig()
    if program and len(program) > cfg.imem_depth:
        raise ValueError(f"program ({len(program)} words) exceeds imem depth {cfg.imem_depth}")
    if dmem_init and len(dmem_init) > cfg.dmem_depth:
        raise ValueError(f"dmem image exceeds dmem depth {cfg.dmem_depth}")
    W = cfg.width
    with b.scope(name):
        state = b.reg("state", 2, init=S_FETCH)
        pc = b.reg("pc", W, init=0)
        halted = b.reg("halted", 1, init=0)
        out_reg = b.reg("out", W, init=0)
        out_valid = b.reg("out_valid", 1, init=0)
        retired = b.reg("retired", 16, init=0)

        in_fetch = state == S_FETCH
        in_exec = state == S_EXEC
        in_mem = state == S_MEM
        booting = boot.mode if boot is not None else b.const(0, 1)
        enabled = ~booting
        running = ~halted & enabled

        # Instruction memory: sync read issued in FETCH, data held after.
        imem = b.memory("imem", cfg.imem_depth, 32, init=program or [])
        fetch_en = in_fetch & running
        instr = b.read(imem, pc.trunc(imem.addr_bits), sync=True, en=fetch_en)
        if boot is not None:
            b.write(
                imem,
                booting & boot.imem_wen,
                boot.addr.resize(imem.addr_bits),
                boot.data.resize(32),
            )

        opcode = instr[31:26]
        rd = instr[25:22]
        rs1 = instr[21:18]
        rs2 = instr[17:14]
        imm14 = instr[13:0]
        sign = instr[13]
        imm = b.concat(imm14, b.mux(sign, b.const((1 << (W - 14)) - 1, W - 14), 0))

        def is_op(code: int) -> Value:
            return opcode == code

        # Register file: asynchronous read ports (the polyfill trigger).
        regfile = b.memory("regfile", 16, W)
        rs1_val = b.read(regfile, rs1, sync=False)
        rs2_val = b.read(regfile, rs2, sync=False)

        # ALU.
        shamt = rs2_val[4:0].zext(W)
        alu_add = rs1_val + imm
        results: list[tuple[Value, Value]] = [
            (is_op(mi.ADD), rs1_val + rs2_val),
            (is_op(mi.SUB), rs1_val - rs2_val),
            (is_op(mi.AND), rs1_val & rs2_val),
            (is_op(mi.OR), rs1_val | rs2_val),
            (is_op(mi.XOR), rs1_val ^ rs2_val),
            (is_op(mi.SHL), rs1_val << shamt),
            (is_op(mi.SHR), rs1_val >> shamt),
            (is_op(mi.ADDI), alu_add),
            (is_op(mi.LUI), imm << 18),
        ]
        if cfg.with_mul:
            results.append((is_op(mi.MUL), rs1_val * rs2_val))
        alu = b.const(0, W)
        for cond, value in results:
            alu = b.mux(cond, value, alu)

        is_ld = is_op(mi.LD)
        is_st = is_op(mi.ST)
        is_jal = is_op(mi.JAL)
        is_jalr = is_op(mi.JALR)
        link = pc + 1

        # Data memory: sync read for LD (data in MEM), write for ST.  The
        # boot bus shares the single write port (keeps it block-mappable).
        dmem = b.memory("dmem", cfg.dmem_depth, W, init=dmem_init or [])
        addr = alu_add.trunc(dmem.addr_bits)
        ld_issue = in_exec & running & is_ld
        ld_data = b.read(dmem, addr, sync=True, en=ld_issue)
        st_en = in_exec & running & is_st
        if boot is not None:
            boot_wen = booting & boot.dmem_wen
            wen = boot_wen | st_en
            waddr = b.mux(booting, boot.addr.resize(dmem.addr_bits), addr)
            wdata = b.mux(booting, boot.data.resize(W), rs2_val)
            b.write(dmem, wen, waddr, wdata)
        else:
            b.write(dmem, st_en, addr, rs2_val)

        # Branch resolution.
        take = b.mux(
            is_op(mi.BEQ),
            rs1_val == rs2_val,
            b.mux(
                is_op(mi.BNE),
                rs1_val != rs2_val,
                b.mux(is_op(mi.BLT), rs1_val < rs2_val, b.const(0, 1)),
            ),
        )
        pc_seq = pc + 1
        pc_branch = pc + 1 + imm
        next_pc = b.mux(
            is_jalr, alu_add, b.mux(is_jal | take, pc_branch, pc_seq)
        )
        pc_hold = b.mux(in_exec & running, next_pc, pc)
        pc.next = b.mux(booting, b.const(0, W), pc_hold)

        # Register writeback: ALU ops and links in EXEC, loads in MEM.
        wb_exec_ops = (
            is_op(mi.ADD)
            | is_op(mi.SUB)
            | is_op(mi.AND)
            | is_op(mi.OR)
            | is_op(mi.XOR)
            | is_op(mi.SHL)
            | is_op(mi.SHR)
            | is_op(mi.ADDI)
            | is_op(mi.LUI)
            | (is_op(mi.MUL) if cfg.with_mul else b.const(0, 1))
        )
        wb_data = b.mux(is_jal | is_jalr, link, b.mux(in_mem, ld_data, alu))
        wb_en = (
            (in_exec & running & (wb_exec_ops | is_jal | is_jalr))
            | (in_mem & running)
        ) & (rd != 0)
        b.write(regfile, wb_en, rd, wb_data)

        # HALT / OUT.
        halt_now = in_exec & running & is_op(mi.HALT)
        halted.next = (halted | halt_now) & enabled
        do_out = in_exec & running & is_op(mi.OUT)
        out_reg.next = b.mux(do_out, rs1_val, out_reg)
        out_valid.next = do_out
        retired.next = b.mux(in_exec & running & ~is_op(mi.HALT), retired + 1, retired)

        # FSM.
        next_state = b.mux(
            in_fetch,
            b.const(S_EXEC, 2),
            b.mux(
                in_exec,
                b.mux(is_ld, b.const(S_MEM, 2), b.const(S_FETCH, 2)),
                b.const(S_FETCH, 2),
            ),
        )
        state.next = b.mux(
            booting, b.const(S_FETCH, 2), b.mux(running, next_state, state)
        )

        return CorePorts(
            halted=halted, out=out_reg, out_valid=out_valid, pc=pc, retired=retired
        )
