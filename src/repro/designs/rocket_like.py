"""RocketChip-like benchmark design: one in-order RISC CPU with caches.

Structural analogue of the paper's RocketChip target (DESIGN.md §2): an
in-order core with an asynchronous-read register file (the async-RAM
polyfill cost), synchronous-read instruction/data memories (native RAM
blocks), plus a victim-buffer-style store queue and a performance-counter
block that add the uncore logic a real SoC carries around its core.

The design exposes a :class:`~repro.designs.riscish.BootBus` so workloads
(real MiniRV programs, :mod:`repro.designs.workloads`) are loaded through
stimulus — one GEM compile serves every workload, exactly like an emulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.designs.riscish import BootBus, CoreConfig, build_core
from repro.rtl.builder import CircuitBuilder
from repro.rtl.ir import Circuit


@dataclass
class RocketScale:
    """Size knobs; the default lands in the tens of kilogates after
    synthesis (paper scale divided down per DESIGN.md §5)."""

    imem_depth: int = 256
    dmem_depth: int = 256
    width: int = 32
    #: extra MAC pipeline ("RoCC-style" accelerator stub) stages
    rocc_macs: int = 4


def build_rocket_like(scale: RocketScale | None = None) -> Circuit:
    """Build the design; returns the elaborated circuit."""
    scale = scale or RocketScale()
    b = CircuitBuilder("rocket_like")

    boot = BootBus(
        mode=b.input("boot_mode", 1),
        imem_wen=b.input("boot_imem_wen", 1),
        dmem_wen=b.input("boot_dmem_wen", 1),
        addr=b.input("boot_addr", 16),
        data=b.input("boot_data", 32),
    )
    core_cfg = CoreConfig(
        imem_depth=scale.imem_depth, dmem_depth=scale.dmem_depth, width=scale.width
    )
    ports = build_core(b, "core", config=core_cfg, boot=boot)

    # RoCC-style MAC accelerator stub: a small chain of multiply-accumulate
    # stages fed by the core's out register (adds deep arithmetic logic the
    # way Rocket's FPU/RoCC does).
    with b.scope("rocc"):
        acc = ports.out
        for i in range(scale.rocc_macs):
            stage = b.reg(f"mac{i}", scale.width)
            stage.next = b.mux(ports.out_valid, acc * (acc + (2 * i + 1)), stage)
            acc = stage
        b.output("rocc_acc", acc)

    # Performance counter block ("uncore"): cycle counter, retire counter,
    # halt latency register — always-on switching logic.
    with b.scope("hpm"):
        cycles = b.reg("cycles", 32)
        cycles.next = cycles + 1
        halted_at = b.reg("halted_at", 32)
        first_halt = ports.halted & (halted_at == 0)
        halted_at.next = b.mux(first_halt, cycles, halted_at)
        b.output("hpm_cycles", cycles)
        b.output("hpm_halted_at", halted_at)

    b.output("halted", ports.halted)
    b.output("out", ports.out)
    b.output("out_valid", ports.out_valid)
    b.output("retired", ports.retired)
    b.output("pc", ports.pc.trunc(16))
    return b.build()
