"""The MiniRV ISA: instruction encodings and a two-pass assembler.

The RISC cores in :mod:`repro.designs.rocket_like` and
:mod:`repro.designs.openpiton_like` execute this little load/store ISA so
the benchmark workloads are *real programs* (loops, memcpy, sorting), the
way the paper uses each design's official benchmark workloads.

Encoding (32-bit words)::

    [31:26] opcode   [25:22] rd   [21:18] rs1   [17:14] rs2   [13:0] imm14

``imm14`` is sign-extended.  PC and load/store addresses are word-granular.

=========  ==============================  =========  ======================
mnemonic   semantics                       mnemonic   semantics
=========  ==============================  =========  ======================
halt       stop; pc holds                  addi       rd = rs1 + imm
add        rd = rs1 + rs2                  lui        rd = imm << 18
sub        rd = rs1 - rs2                  ld         rd = mem[rs1 + imm]
and_       rd = rs1 & rs2                  st         mem[rs1 + imm] = rs2
or_        rd = rs1 | rs2                  beq        if rs1 == rs2: pc += imm
xor        rd = rs1 ^ rs2                  bne        if rs1 != rs2: pc += imm
shl        rd = rs1 << rs2[4:0]            blt        if rs1 <  rs2: pc += imm
shr        rd = rs1 >> rs2[4:0]            jal        rd = pc + 1; pc += imm
mul        rd = (rs1 * rs2) & mask         jalr       rd = pc + 1; pc = rs1+imm
out        out_reg = rs1 (visible output)
=========  ==============================  =========  ======================

Branch/JAL offsets are relative to the *next* pc (pc + 1 + imm), the usual
assembler convention for this kind of core.
"""

from __future__ import annotations

from dataclasses import dataclass, field

HALT = 0
ADD = 1
SUB = 2
AND = 3
OR = 4
XOR = 5
SHL = 6
SHR = 7
ADDI = 8
LUI = 9
LD = 10
ST = 11
BEQ = 12
BNE = 13
BLT = 14
JAL = 15
JALR = 16
MUL = 17
OUT = 18

NUM_OPCODES = 19
IMM_BITS = 14
IMM_MASK = (1 << IMM_BITS) - 1


def encode(opcode: int, rd: int = 0, rs1: int = 0, rs2: int = 0, imm: int = 0) -> int:
    """Pack one instruction word."""
    if not 0 <= opcode < (1 << 6):
        raise ValueError(f"opcode {opcode} out of range")
    for name, reg in (("rd", rd), ("rs1", rs1), ("rs2", rs2)):
        if not 0 <= reg < 16:
            raise ValueError(f"{name}={reg} out of range (16 registers)")
    if not -(1 << (IMM_BITS - 1)) <= imm < (1 << (IMM_BITS - 1)):
        raise ValueError(f"imm {imm} does not fit {IMM_BITS} signed bits")
    return (
        (opcode << 26) | (rd << 22) | (rs1 << 18) | (rs2 << 14) | (imm & IMM_MASK)
    )


def decode(word: int) -> tuple[int, int, int, int, int]:
    """Unpack (opcode, rd, rs1, rs2, signed imm)."""
    imm = word & IMM_MASK
    if imm & (1 << (IMM_BITS - 1)):
        imm -= 1 << IMM_BITS
    return (word >> 26) & 0x3F, (word >> 22) & 0xF, (word >> 18) & 0xF, (word >> 14) & 0xF, imm


@dataclass
class Assembler:
    """Two-pass assembler with labels.

    >>> a = Assembler()
    >>> a.addi(1, 0, 5)
    >>> a.label("loop")
    >>> a.addi(1, 1, -1)
    >>> a.bne(1, 0, "loop")
    >>> a.halt()
    >>> program = a.assemble()
    """

    #: list of (opcode, rd, rs1, rs2, imm-or-label)
    items: list[tuple] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)

    def label(self, name: str) -> None:
        if name in self.labels:
            raise ValueError(f"duplicate label {name!r}")
        self.labels[name] = len(self.items)

    def _emit(self, opcode: int, rd: int = 0, rs1: int = 0, rs2: int = 0, imm=0) -> None:
        self.items.append((opcode, rd, rs1, rs2, imm))

    # Register-register.
    def add(self, rd, rs1, rs2):
        self._emit(ADD, rd, rs1, rs2)

    def sub(self, rd, rs1, rs2):
        self._emit(SUB, rd, rs1, rs2)

    def and_(self, rd, rs1, rs2):
        self._emit(AND, rd, rs1, rs2)

    def or_(self, rd, rs1, rs2):
        self._emit(OR, rd, rs1, rs2)

    def xor(self, rd, rs1, rs2):
        self._emit(XOR, rd, rs1, rs2)

    def shl(self, rd, rs1, rs2):
        self._emit(SHL, rd, rs1, rs2)

    def shr(self, rd, rs1, rs2):
        self._emit(SHR, rd, rs1, rs2)

    def mul(self, rd, rs1, rs2):
        self._emit(MUL, rd, rs1, rs2)

    # Immediates and memory.
    def addi(self, rd, rs1, imm):
        self._emit(ADDI, rd, rs1, 0, imm)

    def lui(self, rd, imm):
        self._emit(LUI, rd, 0, 0, imm)

    def ld(self, rd, rs1, imm=0):
        self._emit(LD, rd, rs1, 0, imm)

    def st(self, rs2, rs1, imm=0):
        self._emit(ST, 0, rs1, rs2, imm)

    # Control flow (targets may be labels).
    def beq(self, rs1, rs2, target):
        self._emit(BEQ, 0, rs1, rs2, target)

    def bne(self, rs1, rs2, target):
        self._emit(BNE, 0, rs1, rs2, target)

    def blt(self, rs1, rs2, target):
        self._emit(BLT, 0, rs1, rs2, target)

    def jal(self, rd, target):
        self._emit(JAL, rd, 0, 0, target)

    def jalr(self, rd, rs1, imm=0):
        self._emit(JALR, rd, rs1, 0, imm)

    # Misc.
    def out(self, rs1):
        self._emit(OUT, 0, rs1, 0)

    def halt(self):
        self._emit(HALT)

    def nop(self):
        self._emit(ADD, 0, 0, 0)

    def assemble(self) -> list[int]:
        words: list[int] = []
        for pc, (opcode, rd, rs1, rs2, imm) in enumerate(self.items):
            if isinstance(imm, str):
                if imm not in self.labels:
                    raise ValueError(f"undefined label {imm!r}")
                imm = self.labels[imm] - (pc + 1)  # relative to next pc
            words.append(encode(opcode, rd, rs1, rs2, imm))
        return words


def reference_execute(
    program: list[int],
    dmem_init: list[int] | None = None,
    dmem_depth: int = 256,
    max_steps: int = 100_000,
) -> dict:
    """Golden software model of MiniRV (used to check the hardware cores).

    Returns final registers, data memory, the ``out`` history, and the
    retired-instruction count.
    """
    mask = (1 << 32) - 1
    regs = [0] * 16
    dmem = list(dmem_init or []) + [0] * dmem_depth
    dmem = dmem[:dmem_depth]
    out_history: list[int] = []
    pc = 0
    steps = 0
    while steps < max_steps:
        steps += 1
        word = program[pc] if pc < len(program) else 0
        opcode, rd, rs1, rs2, imm = decode(word)
        next_pc = pc + 1
        if opcode == HALT:
            break
        if opcode == ADD:
            regs[rd] = (regs[rs1] + regs[rs2]) & mask
        elif opcode == SUB:
            regs[rd] = (regs[rs1] - regs[rs2]) & mask
        elif opcode == AND:
            regs[rd] = regs[rs1] & regs[rs2]
        elif opcode == OR:
            regs[rd] = regs[rs1] | regs[rs2]
        elif opcode == XOR:
            regs[rd] = regs[rs1] ^ regs[rs2]
        elif opcode == SHL:
            regs[rd] = (regs[rs1] << (regs[rs2] & 31)) & mask
        elif opcode == SHR:
            regs[rd] = regs[rs1] >> (regs[rs2] & 31)
        elif opcode == MUL:
            regs[rd] = (regs[rs1] * regs[rs2]) & mask
        elif opcode == ADDI:
            regs[rd] = (regs[rs1] + imm) & mask
        elif opcode == LUI:
            regs[rd] = (imm << 18) & mask
        elif opcode == LD:
            regs[rd] = dmem[((regs[rs1] + imm) & mask) % dmem_depth]
        elif opcode == ST:
            dmem[((regs[rs1] + imm) & mask) % dmem_depth] = regs[rs2]
        elif opcode == BEQ:
            if regs[rs1] == regs[rs2]:
                next_pc = pc + 1 + imm
        elif opcode == BNE:
            if regs[rs1] != regs[rs2]:
                next_pc = pc + 1 + imm
        elif opcode == BLT:
            if regs[rs1] < regs[rs2]:
                next_pc = pc + 1 + imm
        elif opcode == JAL:
            regs[rd] = (pc + 1) & mask
            next_pc = pc + 1 + imm
        elif opcode == JALR:
            regs[rd] = (pc + 1) & mask
            next_pc = (regs[rs1] + imm) & mask
        elif opcode == OUT:
            out_history.append(regs[rs1])
        else:
            raise ValueError(f"illegal opcode {opcode} at pc {pc}")
        if rd == 0 and opcode in (ADD, SUB, AND, OR, XOR, SHL, SHR, MUL, ADDI, LUI, LD, JAL, JALR):
            regs[0] = 0  # r0 is hardwired zero
        pc = next_pc & mask
        if pc >= len(program):
            break
    return {"regs": regs, "dmem": dmem, "out": out_history, "steps": steps, "pc": pc}
