"""Benchmark workloads — the Test Name column of the paper's Table II.

Each design gets workloads analogous to the paper's official benchmarks:
real MiniRV programs for the CPU designs (loaded over the boot bus),
tile/stream schedules for the accelerators.  Every workload carries the
full input stimulus sequence plus, where a software golden model exists,
the expected visible outputs — so the same workload object drives GEM, the
event-driven baseline, the compiled baseline, the gate-level baseline and
the correctness tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.designs.isa_mini import Assembler, reference_execute


@dataclass
class Workload:
    """One named stimulus sequence for one design."""

    name: str
    design: str
    stimuli: list[dict[str, int]]
    #: expected values on the design's ``out``-style ports, when a golden
    #: software model exists (CPU programs); None otherwise
    expected_out: list[int] | None = None
    note: str = ""
    #: output ports carrying the observable stream ``expected_out`` checks
    out_port: str = "out"
    valid_port: str = "out_valid"

    @property
    def cycles(self) -> int:
        return len(self.stimuli)


# ---------------------------------------------------------------------------
# MiniRV programs (the CPU workloads)
# ---------------------------------------------------------------------------


def program_dhrystone(iterations: int = 12) -> Assembler:
    """Mixed integer/branch/memory loop (the dhrystone stand-in)."""
    a = Assembler()
    a.addi(1, 0, iterations)  # loop counter
    a.addi(2, 0, 0)  # checksum
    a.addi(3, 0, 17)  # working value
    a.label("loop")
    a.add(3, 3, 1)
    a.xor(2, 2, 3)
    a.shl(4, 3, 1)
    a.or_(2, 2, 4)
    a.st(2, 1, 16)  # record[i]
    a.ld(5, 1, 16)
    a.sub(5, 5, 3)
    a.add(2, 2, 5)
    a.addi(1, 1, -1)
    a.bne(1, 0, "loop")
    a.out(2)
    a.halt()
    return a


def program_memcpy(words: int = 24) -> Assembler:
    """Copy a block, then fold it into a checksum (mt-memcpy stand-in)."""
    a = Assembler()
    a.addi(1, 0, 0)  # src base
    a.addi(2, 0, 64)  # dst base
    a.addi(3, 0, words)  # count
    a.label("copy")
    a.ld(4, 1, 0)
    a.st(4, 2, 0)
    a.addi(1, 1, 1)
    a.addi(2, 2, 1)
    a.addi(3, 3, -1)
    a.bne(3, 0, "copy")
    a.addi(2, 0, 64)
    a.addi(3, 0, words)
    a.addi(5, 0, 0)
    a.label("sum")
    a.ld(4, 2, 0)
    a.add(5, 5, 4)
    a.addi(2, 2, 1)
    a.addi(3, 3, -1)
    a.bne(3, 0, "sum")
    a.out(5)
    a.halt()
    return a


def program_pmp(checks: int = 16) -> Assembler:
    """Bound-check-heavy loop (the pmp privilege-check stand-in)."""
    a = Assembler()
    a.addi(1, 0, checks)
    a.addi(2, 0, 0)  # grants
    a.addi(3, 0, 0)  # denials
    a.addi(6, 0, 5)  # lower bound
    a.addi(7, 0, 11)  # upper bound
    a.label("loop")
    a.shl(4, 1, 1)  # address under test = i << 1
    a.blt(4, 6, "deny")
    a.blt(7, 4, "deny")
    a.addi(2, 2, 1)
    a.jal(0, "next")
    a.label("deny")
    a.addi(3, 3, 1)
    a.label("next")
    a.addi(1, 1, -1)
    a.bne(1, 0, "loop")
    a.shl(2, 2, 2)  # pack grants/denials: grants << grants? no: << r2? fixed
    a.add(2, 2, 3)
    a.out(2)
    a.halt()
    return a


def program_qsort(seed: int = 3, n: int = 10) -> Assembler:
    """Insertion sort of pre-loaded data then output min/max/sum (qsort)."""
    a = Assembler()
    # data pre-loaded at dmem[0..n-1] by the boot sequence
    a.addi(1, 0, 1)  # i
    a.addi(8, 0, n)
    a.label("outer")
    a.ld(2, 1, 0)  # key
    a.add(3, 1, 0)  # j = i
    a.label("inner")
    a.beq(3, 0, "place")
    a.addi(4, 3, -1)
    a.ld(5, 4, 0)  # data[j-1]
    a.blt(2, 5, "shift")
    a.jal(0, "place")
    a.label("shift")
    a.st(5, 3, 0)
    a.addi(3, 3, -1)
    a.jal(0, "inner")
    a.label("place")
    a.st(2, 3, 0)
    a.addi(1, 1, 1)
    a.bne(1, 8, "outer")
    a.ld(6, 0, 0)  # min
    a.addi(7, 8, -1)
    a.ld(7, 7, 0)  # max
    a.out(6)
    a.out(7)
    a.addi(1, 0, 0)
    a.addi(5, 0, 0)
    a.label("sum")
    a.ld(4, 1, 0)
    a.add(5, 5, 4)
    a.addi(1, 1, 1)
    a.bne(1, 8, "sum")
    a.out(5)
    a.halt()
    return a


def program_spmv(nnz: int = 12) -> Assembler:
    """Indexed gather/MAC loop (the spmv stand-in).

    dmem layout (boot-loaded): cols at [0..nnz), vals at [32..32+nnz),
    x-vector at [96..).
    """
    a = Assembler()
    a.addi(1, 0, nnz)
    a.addi(2, 0, 0)  # k
    a.addi(5, 0, 0)  # y accumulator
    a.label("loop")
    a.ld(3, 2, 0)  # col index
    a.addi(4, 3, 96)
    a.ld(4, 4, 0)  # x[col]
    a.ld(6, 2, 32)  # val
    a.mul(7, 4, 6)
    a.add(5, 5, 7)
    a.addi(2, 2, 1)
    a.bne(2, 1, "loop")
    a.out(5)
    a.halt()
    return a


def program_idle(spins: int = 2) -> Assembler:
    """Tiny spin-then-halt used by inactive multicore tiles."""
    a = Assembler()
    a.addi(1, 0, spins)
    a.label("spin")
    a.addi(1, 1, -1)
    a.bne(1, 0, "spin")
    a.halt()
    return a


def program_alu_mix(iterations: int = 14) -> Assembler:
    """ALU-dense loop without loads (fp_mt_combo stand-in, integer form)."""
    a = Assembler()
    a.addi(1, 0, iterations)
    a.addi(2, 0, 0x1F)
    a.addi(3, 0, 3)
    a.label("loop")
    a.add(2, 2, 3)
    a.xor(2, 2, 1)
    a.shl(4, 2, 3)
    a.shr(5, 4, 3)
    a.or_(2, 2, 5)
    a.sub(2, 2, 3)
    a.addi(1, 1, -1)
    a.bne(1, 0, "loop")
    a.out(2)
    a.halt()
    return a


def program_ldst(quads: int = 10) -> Assembler:
    """Load/store-dominated loop (ldst_quad2 stand-in)."""
    a = Assembler()
    a.addi(1, 0, quads)
    a.addi(2, 0, 0)
    a.label("loop")
    a.st(1, 1, 8)
    a.st(2, 1, 40)
    a.ld(3, 1, 8)
    a.ld(4, 1, 40)
    a.add(2, 2, 3)
    a.xor(2, 2, 4)
    a.addi(1, 1, -1)
    a.bne(1, 0, "loop")
    a.out(2)
    a.halt()
    return a


# ---------------------------------------------------------------------------
# Boot + run stimulus assembly
# ---------------------------------------------------------------------------


def _cpu_boot(
    program: list[int],
    dmem: dict[int, int] | None = None,
    core: int | None = None,
) -> list[dict[str, int]]:
    """Boot-bus stimulus loading one core's instruction and data memory."""
    stimuli: list[dict[str, int]] = []
    sel = {} if core is None else {"boot_core": core}
    for addr, word in enumerate(program):
        stimuli.append(
            {"boot_mode": 1, "boot_imem_wen": 1, "boot_addr": addr, "boot_data": word, **sel}
        )
    for addr, word in sorted((dmem or {}).items()):
        stimuli.append(
            {"boot_mode": 1, "boot_dmem_wen": 1, "boot_addr": addr, "boot_data": word, **sel}
        )
    return stimuli


def _cpu_workload(
    design: str,
    name: str,
    assembler: Assembler,
    dmem: dict[int, int] | None = None,
    dmem_depth: int = 256,
    cores: int = 1,
    note: str = "",
    idle_program: Assembler | None = None,
) -> Workload:
    program = assembler.assemble()
    dmem_init = [0] * dmem_depth
    for addr, word in (dmem or {}).items():
        dmem_init[addr] = word
    ref = reference_execute(program, dmem_init, dmem_depth=dmem_depth)
    stimuli: list[dict[str, int]] = []
    if cores == 1 and design == "rocket_like":
        stimuli += _cpu_boot(program, dmem)
    else:
        stimuli += _cpu_boot(program, dmem, core=0)
        idle = (idle_program or program_idle()).assemble()
        for c in range(1, cores):
            stimuli += _cpu_boot(idle, core=c)
    run_cycles = 3 * ref["steps"] + 40
    stimuli += [{} for _ in range(run_cycles)]
    multi = cores > 1 or design.startswith("openpiton")
    return Workload(
        name=name,
        design=design,
        stimuli=stimuli,
        expected_out=ref["out"],
        note=note,
        out_port="out0" if multi else "out",
        valid_port="out_valid0" if multi else "out_valid",
    )


def rocket_workloads(dmem_depth: int = 256) -> dict[str, Workload]:
    rng = random.Random(42)
    qsort_data = {i: rng.randrange(1, 100) for i in range(10)}
    spmv_dmem: dict[int, int] = {}
    for k in range(12):
        spmv_dmem[k] = rng.randrange(0, 16)  # col index
        spmv_dmem[32 + k] = rng.randrange(1, 9)  # value
    for j in range(16):
        spmv_dmem[96 + j] = rng.randrange(1, 50)  # x vector
    mk = lambda name, asm, dmem=None, note="": _cpu_workload(
        "rocket_like", name, asm, dmem, dmem_depth, note=note
    )
    return {
        "dhrystone": mk("dhrystone", program_dhrystone(), note="mixed integer loop"),
        "mt-memcpy": mk(
            "mt-memcpy",
            program_memcpy(),
            {i: rng.randrange(1, 1000) for i in range(24)},
            note="block copy + checksum",
        ),
        "pmp": mk("pmp", program_pmp(), note="bound-check/branch heavy"),
        "qsort": mk("qsort", program_qsort(), qsort_data, note="insertion sort"),
        "spmv": mk("spmv", program_spmv(), spmv_dmem, note="indexed gather/MAC"),
    }


def openpiton_workloads(cores: int, dmem_depth: int = 128) -> dict[str, Workload]:
    design = f"openpiton{cores}_like"
    mk = lambda name, asm, note="": _cpu_workload(
        design, name, asm, None, dmem_depth, cores=cores, note=note
    )
    return {
        "ldst_quad2": mk("ldst_quad2", program_ldst(), note="load/store dominated"),
        "fp_mt_combo0": mk("fp_mt_combo0", program_alu_mix(), note="ALU dense"),
        "asi_notused_priv": mk(
            "asi_notused_priv", program_pmp(10), note="privilege checks, low activity"
        ),
    }


# ---------------------------------------------------------------------------
# Accelerator workloads
# ---------------------------------------------------------------------------


def nvdla_workloads(scale=None) -> dict[str, Workload]:
    """Conv schedules named after the paper's NVDLA tests.

    Like the real benchmarks, each test exercises *one* engine (direct-conv
    tests the conv core, ``cdp_*`` the normalization engine, ``pdp*`` the
    pooling engine) while the others idle — the activity profile behind the
    commercial tool's 1.7–7.8 kHz spread on NVDLA in the paper's Table II.
    """
    from repro.designs.nvdla_like import NvdlaScale

    scale = scale or NvdlaScale()
    rng = random.Random(7)
    max_data = (1 << (scale.data_width * scale.lanes)) - 1

    def conv(name: str, engine: int, acts: int, length: int, note: str) -> Workload:
        engine = engine % scale.engines
        stimuli: list[dict[str, int]] = []
        for addr in range(acts):
            stimuli.append(
                {
                    "engine": engine,
                    "act_wen": 1,
                    "load_addr": addr,
                    "load_data": rng.randrange(max_data),
                }
            )
        for addr in range(scale.taps):
            stimuli.append(
                {
                    "engine": engine,
                    "wgt_wen": 1,
                    "load_addr": addr,
                    "load_data": rng.randrange(max_data),
                }
            )
        stimuli.append({"engine": engine, "start": 1, "length": length})
        run = length * (scale.taps + 3) + 20
        stimuli += [{"engine": engine} for _ in range(run)]
        return Workload(name=name, design="nvdla_like", stimuli=stimuli, note=note)

    return {
        "dc6x3x76x270_int8_0": conv("dc6x3x76x270_int8_0", 0, 96, 88, "long direct conv"),
        "dc6x3x76x16_int8_0": conv("dc6x3x76x16_int8_0", 0, 64, 56, "short direct conv"),
        "img_51x96x4int8_0": conv("img_51x96x4int8_0", 0, 96, 80, "image mode"),
        "cdp_8x8x32_lrn3_int8_2": conv("cdp_8x8x32_lrn3_int8_2", 1, 48, 40, "cross-channel"),
        "pdpmax_int8_0": conv("pdpmax_int8_0", 2, 32, 24, "pooling-ish short run"),
    }


def gemmini_workloads(scale=None) -> dict[str, Workload]:
    from repro.designs.gemmini_like import GemminiScale

    scale = scale or GemminiScale()
    rng = random.Random(9)
    N = scale.dim
    row_max = (1 << (scale.data_width * N)) - 1

    def matmul(name: str, tiles: int, streams: int, note: str) -> Workload:
        stimuli: list[dict[str, int]] = []
        addr = 0
        for _tile in range(tiles):
            stimuli.append({"acc_clear": 1})
            for row in range(N):
                stimuli.append(
                    {"wgt_wen": 1, "wgt_row": row, "wgt_bus": rng.randrange(row_max)}
                )
            for _ in range(streams):
                stimuli.append({"act_valid": 1, "act_bus": rng.randrange(row_max)})
            for row in range(N):
                stimuli.append(
                    {
                        "drain": 1,
                        "drain_row": row,
                        "drain_addr": addr,
                        "t_wen": 1,
                        "t_addr": addr & 15,
                    }
                )
                addr += 1
            # Scratchpad/DMA refill stall between tiles: the systolic array
            # idles while the next tile's operands are fetched (real Gemmini
            # spends a large share of cycles on mvin/mvout).
            stimuli += [{} for _ in range(2 * N)]
        stimuli.append({})
        return Workload(name=name, design="gemmini_like", stimuli=stimuli, note=note)

    return {
        "tiled_matmul_ws_full_C": matmul("tiled_matmul_ws_full_C", 4, 3 * N, "full tiles"),
        "tiled_matmul_ws_perf": matmul("tiled_matmul_ws_perf", 6, 2 * N, "perf tiles"),
    }


def workloads_for(design_name: str, **kwargs) -> dict[str, Workload]:
    """Dispatch per design (openpiton wants ``cores=``)."""
    if design_name == "rocket_like":
        return rocket_workloads(**kwargs)
    if design_name == "nvdla_like":
        return nvdla_workloads(**kwargs)
    if design_name == "gemmini_like":
        return gemmini_workloads(**kwargs)
    if design_name.startswith("openpiton"):
        cores = int(design_name.removeprefix("openpiton").split("_")[0])
        return openpiton_workloads(cores=cores, **kwargs)
    raise KeyError(f"unknown design {design_name!r}")
