"""Gate-level event-driven simulator (the commercial-tool stand-in).

Classic selective-trace simulation over the E-AIG: only nodes whose inputs
changed are re-evaluated.  Zero-delay correctness is guaranteed by
processing dirty nodes in ascending node index (node indices are
topological in an :class:`~repro.core.eaig.EAIG`), via a heap.

The property that matters for the paper's evaluation is captured exactly:
per-cycle cost is proportional to **signal events**, so low-activity
workloads (the OpenPiton8 anomaly of §IV, experiment X2 in DESIGN.md) run
fast while GEM's full-cycle approach is activity-independent.  The
simulator therefore tracks ``events_per_cycle`` — the same statistic the
paper quotes from the commercial tool (8,612 events for OpenPiton1 vs
28,789 for OpenPiton8).
"""

from __future__ import annotations

import heapq
from typing import Iterable, Mapping

from repro.core.eaig import EAIG, NodeKind, lit_node
from repro.core.synthesis import SynthesisResult


class EventDrivenSim:
    """Event-driven execution of a synthesized design with word-level I/O."""

    def __init__(self, synth: SynthesisResult) -> None:
        synth.eaig.check()
        self.synth = synth
        self.eaig = synth.eaig
        eaig = self.eaig
        n = len(eaig.kind)
        self.value = [False] * n
        #: consumers of each node among AND nodes
        self.consumers: list[list[int]] = [[] for _ in range(n)]
        for node in range(n):
            if eaig.kind[node] is NodeKind.AND:
                self.consumers[lit_node(eaig.fanin0[node])].append(node)
                self.consumers[lit_node(eaig.fanin1[node])].append(node)
        for ff in eaig.ffs:
            self.value[ff] = bool(eaig.aux[ff])
        self.ram_words: list[list[int]] = []
        for ram in eaig.rams:
            words = list(ram.init) + [0] * (ram.depth - len(ram.init))
            self.ram_words.append(words[: ram.depth])
        # Settle initial values (FF init values may imply non-zero logic).
        self._dirty: list[int] = []
        self._in_queue = [False] * n
        for node in range(n):
            if eaig.kind[node] is NodeKind.AND:
                self._schedule(node)
        self._events = 0
        self._propagate()
        self.cycle = 0
        self.total_events = 0
        self.events_last_cycle = 0

    # -- core engine --------------------------------------------------------

    def _schedule(self, node: int) -> None:
        if not self._in_queue[node]:
            self._in_queue[node] = True
            heapq.heappush(self._dirty, node)

    def _lit_value(self, literal: int) -> bool:
        return self.value[literal >> 1] ^ bool(literal & 1)

    def _set(self, node: int, value: bool) -> None:
        """Update a source value, scheduling consumers on change."""
        if self.value[node] != value:
            self.value[node] = value
            self._events += 1
            for consumer in self.consumers[node]:
                self._schedule(consumer)

    def _propagate(self) -> None:
        eaig = self.eaig
        value = self.value
        dirty = self._dirty
        in_queue = self._in_queue
        while dirty:
            node = heapq.heappop(dirty)
            in_queue[node] = False
            a = eaig.fanin0[node]
            b = eaig.fanin1[node]
            new = (value[a >> 1] ^ bool(a & 1)) and (value[b >> 1] ^ bool(b & 1))
            if new != value[node]:
                value[node] = new
                self._events += 1
                for consumer in self.consumers[node]:
                    self._schedule(consumer)

    # -- cycle interface ------------------------------------------------------

    def step(self, inputs: Mapping[str, int] | None = None) -> dict[str, int]:
        eaig = self.eaig
        self._events = 0
        given = inputs or {}
        for name, bits in self.synth.input_bits.items():
            word = given.get(name, 0)
            for i, literal in enumerate(bits):
                self._set(literal >> 1, bool((word >> i) & 1))
        self._propagate()
        outs = self.outputs()
        # Clock edge: sample FF inputs and RAM ports, then commit.
        ff_next = [(ff, self._lit_value(eaig.fanin0[ff])) for ff in eaig.ffs]
        ram_next: list[list[tuple[int, bool]]] = []
        for ridx, ram in enumerate(eaig.rams):
            updates: list[tuple[int, bool]] = []
            if self._lit_value(ram.ren):
                raddr = self._bits(ram.raddr)
                word = self.ram_words[ridx][raddr]
                for bit, node in enumerate(ram.data_nodes):
                    updates.append((node, bool((word >> bit) & 1)))
            if self._lit_value(ram.wen):
                self.ram_words[ridx][self._bits(ram.waddr)] = self._bits(ram.wdata)
            ram_next.append(updates)
        for ff, val in ff_next:
            self._set(ff, val)
        for updates in ram_next:
            for node, val in updates:
                self._set(node, val)
        self._propagate()
        self.cycle += 1
        self.events_last_cycle = self._events
        self.total_events += self._events
        return outs

    def _bits(self, literals: Iterable[int]) -> int:
        word = 0
        for i, literal in enumerate(literals):
            if self._lit_value(literal):
                word |= 1 << i
        return word

    def outputs(self) -> dict[str, int]:
        return {
            name: self._word(bits) for name, bits in self.synth.output_bits.items()
        }

    def _word(self, literals: list[int]) -> int:
        word = 0
        for i, literal in enumerate(literals):
            if self._lit_value(literal):
                word |= 1 << i
        return word

    def run(self, stimuli: Iterable[Mapping[str, int]]) -> list[dict[str, int]]:
        return [self.step(vec) for vec in stimuli]

    @property
    def events_per_cycle(self) -> float:
        """Mean signal events per cycle (the paper's activity metric)."""
        return self.total_events / self.cycle if self.cycle else 0.0
