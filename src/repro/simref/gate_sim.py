"""Levelized gate-level batch simulator (the GL0AM stand-in).

GPU gate-level simulators (GCS, GATSPI, GL0AM, …) evaluate gates in
levelized batches: all gates of one logic level are independent, so each
batch is one data-parallel kernel of LUT queries.  This module implements
that execution model over the E-AIG with NumPy as the data-parallel
substrate:

* per cycle, levels are evaluated in order; each level is one vectorized
  gather-evaluate-scatter (one "kernel launch" + one synchronization);
* per-node toggle counts are tracked, because GL0AM's re-simulation
  acceleration makes its effective speed activity-dependent — the
  performance model uses the measured toggle rate the same way.

It is validated bit-for-bit against :class:`repro.core.eaig.EAIGSim`.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.core.eaig import EAIG, NodeKind, lit_node
from repro.core.synthesis import SynthesisResult


class GateLevelSim:
    """Full-cycle levelized gate-level evaluation of a synthesized design."""

    def __init__(self, synth: SynthesisResult) -> None:
        synth.eaig.check()
        self.synth = synth
        self.eaig = synth.eaig
        eaig = self.eaig
        n = len(eaig.kind)
        levels = eaig.levels()
        self.depth = max(levels) if levels else 0
        #: per level: (gate nodes, fanin0 node, fanin0 neg, fanin1 node, neg)
        self.level_batches: list[tuple[np.ndarray, ...]] = []
        by_level: dict[int, list[int]] = {}
        for node in range(n):
            if eaig.kind[node] is NodeKind.AND:
                by_level.setdefault(levels[node], []).append(node)
        for level in sorted(by_level):
            nodes = np.array(by_level[level], dtype=np.int64)
            f0 = np.array([eaig.fanin0[v] for v in by_level[level]], dtype=np.int64)
            f1 = np.array([eaig.fanin1[v] for v in by_level[level]], dtype=np.int64)
            self.level_batches.append(
                (nodes, f0 >> 1, (f0 & 1).astype(bool), f1 >> 1, (f1 & 1).astype(bool))
            )
        self.value = np.zeros(n, dtype=bool)
        for ff in eaig.ffs:
            self.value[ff] = bool(eaig.aux[ff])
        self.ram_words: list[list[int]] = []
        for ram in eaig.rams:
            words = list(ram.init) + [0] * (ram.depth - len(ram.init))
            self.ram_words.append(words[: ram.depth])
        self.cycle = 0
        self.total_toggles = 0
        self.gates = eaig.num_gates()
        #: optional per-cycle observer called at the settled point (after
        #: the combinational settle, before the clock edge) — the same
        #: observation point as the packed-lane engines' probe tap, so
        #: tapped streams are comparable bit-for-bit.
        self.probe_hook = None
        self._settle()  # FF init values may imply non-zero logic

    def _settle(self) -> int:
        """Evaluate all levels; returns the number of gate toggles."""
        value = self.value
        toggles = 0
        for nodes, f0, n0, f1, n1 in self.level_batches:
            new = (value[f0] ^ n0) & (value[f1] ^ n1)
            toggles += int((value[nodes] != new).sum())
            value[nodes] = new
        return toggles

    def _lit(self, literal: int) -> bool:
        return bool(self.value[literal >> 1]) ^ bool(literal & 1)

    def _bits(self, literals) -> int:
        word = 0
        for i, literal in enumerate(literals):
            if self._lit(literal):
                word |= 1 << i
        return word

    def step(self, inputs: Mapping[str, int] | None = None) -> dict[str, int]:
        eaig = self.eaig
        given = inputs or {}
        for name, bits in self.synth.input_bits.items():
            word = given.get(name, 0)
            for i, literal in enumerate(bits):
                self.value[literal >> 1] = bool((word >> i) & 1)
        toggles = self._settle()
        outs = self.outputs()
        if self.probe_hook is not None:
            self.probe_hook(self)
        # Clock edge.
        ff_next = [(ff, self._lit(eaig.fanin0[ff])) for ff in eaig.ffs]
        ram_updates: list[tuple[int, bool]] = []
        for ridx, ram in enumerate(eaig.rams):
            if self._lit(ram.ren):
                word = self.ram_words[ridx][self._bits(ram.raddr)]
                for bit, node in enumerate(ram.data_nodes):
                    ram_updates.append((node, bool((word >> bit) & 1)))
            if self._lit(ram.wen):
                self.ram_words[ridx][self._bits(ram.waddr)] = self._bits(ram.wdata)
        for ff, val in ff_next:
            self.value[ff] = val
        for node, val in ram_updates:
            self.value[node] = val
        toggles += self._settle()
        self.total_toggles += toggles
        self.cycle += 1
        return outs

    def outputs(self) -> dict[str, int]:
        return {name: self._bits(bits) for name, bits in self.synth.output_bits.items()}

    def run(self, stimuli: Iterable[Mapping[str, int]]) -> list[dict[str, int]]:
        return [self.step(vec) for vec in stimuli]

    @property
    def toggles_per_cycle(self) -> float:
        """Mean gate toggles per cycle (GL0AM's activity metric)."""
        return self.total_toggles / self.cycle if self.cycle else 0.0

    @property
    def kernel_launches_per_cycle(self) -> int:
        """Levelized batches per cycle (two settles: comb + post-edge)."""
        return 2 * len(self.level_batches)
