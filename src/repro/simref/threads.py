"""CPU multi-thread scaling model for compiled RTL simulation.

The paper runs Verilator with up to 8 threads because "16-threaded
Verilator is only 80–95% the speed of 8 threads" (§IV) — CPU-parallel RTL
simulation hits a wall from synchronization overhead and memory bandwidth.
This module models that wall so Table II's Verilator-8T column and the X1
scaling experiment can be regenerated.

Model
-----
Compiled simulation splits each cycle's work over ``T`` threads through a
levelized task graph.  Per-cycle time::

    t(T) = W_par / (T * e(T)) + W_ser + S * B * (1 + alpha * T)

* ``W_par``: parallelizable evaluation work (op count / single-thread rate);
* ``e(T)``: parallel efficiency from load imbalance across partitions,
  ``e(T) = 1 / (1 + beta * (T - 1))`` — partitions of a real netlist are
  never perfectly balanced, and imbalance grows with finer partitions;
* ``W_ser``: serial per-cycle overhead (eval scheduling, tracing hooks);
* ``S``: synchronization barriers per cycle (one per task-graph level);
* ``B * (1 + alpha * T)``: barrier cost growing with thread count
  (cache-line ping-pong on the barrier, memory-bandwidth saturation).

Defaults are calibrated in :mod:`repro.harness.calibrate` so that 8→16
threads lands in the paper's observed 80–95% degradation band.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ThreadScalingModel:
    """Predict relative throughput of T-threaded compiled simulation."""

    #: fraction of per-cycle work that parallelizes
    parallel_fraction: float = 0.92
    #: load-imbalance growth per extra thread
    beta: float = 0.015
    #: barrier base cost as a fraction of single-thread cycle time
    barrier_cost: float = 0.0035
    #: barrier cost growth per thread
    alpha: float = 0.45
    #: synchronization barriers per cycle (task-graph depth)
    barriers_per_cycle: int = 12

    def cycle_time(self, threads: int, single_thread_time: float = 1.0) -> float:
        """Per-cycle wall time for ``threads`` threads (arbitrary units)."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        if threads == 1:
            return single_thread_time
        w_par = self.parallel_fraction * single_thread_time
        w_ser = (1.0 - self.parallel_fraction) * single_thread_time
        efficiency = 1.0 / (1.0 + self.beta * (threads - 1))
        sync = (
            self.barriers_per_cycle
            * self.barrier_cost
            * single_thread_time
            * (1.0 + self.alpha * threads)
        )
        return w_par / (threads * efficiency) + w_ser + sync

    def speedup(self, threads: int) -> float:
        """Throughput relative to one thread."""
        return self.cycle_time(1) / self.cycle_time(threads)

    def sweep(self, max_threads: int = 16) -> list[tuple[int, float]]:
        return [(t, self.speedup(t)) for t in range(1, max_threads + 1)]

    def degradation_16_vs_8(self) -> float:
        """The paper's §IV statistic: speed(16T) / speed(8T)."""
        return self.speedup(16) / self.speedup(8)
