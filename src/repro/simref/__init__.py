"""Baseline simulators (the paper's comparison targets, Table II).

* :mod:`repro.simref.event_sim` — gate-level event-driven simulation with
  an activity-sensitive queue; stand-in for the commercial event-based
  simulator (whose defining property the paper leans on: cost scales with
  signal events per cycle, §IV).
* :mod:`repro.simref.cycle_sim` — compiled, levelized full-cycle word-level
  simulation; stand-in for Verilator (compile-to-code, evaluate everything
  each cycle).
* :mod:`repro.simref.gate_sim` — LUT-query gate-level batch evaluation;
  stand-in for GL0AM-style GPU gate-level simulation.
* :mod:`repro.simref.threads` — the multi-core scaling model that
  reproduces Verilator's 8→16-thread performance *degradation* (§IV).

All of them are validated cycle-for-cycle against the golden
:class:`repro.rtl.netlist.WordSim`, so Table II's comparisons are between
functionally identical engines.
"""

from repro.simref.cycle_sim import CompiledCycleSim
from repro.simref.event_sim import EventDrivenSim
from repro.simref.gate_sim import GateLevelSim
from repro.simref.threads import ThreadScalingModel

__all__ = ["CompiledCycleSim", "EventDrivenSim", "GateLevelSim", "ThreadScalingModel"]
