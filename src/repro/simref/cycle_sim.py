"""Compiled levelized full-cycle simulator (the Verilator stand-in).

Verilator's model: translate the word-level RTL into straight-line code
that evaluates the *entire* design every cycle, in topological order, with
no event queue.  This module does exactly that — it generates one Python
function from the netlist (real compiled simulation, not interpretation)
and executes it per cycle.

Characteristics faithfully reproduced:

* cost per cycle is constant and activity-independent (full-cycle);
* it operates on words, not bits, so it is much faster than gate-level
  interpretation (the 10–100× RTL vs gate-level gap the paper cites);
* single-threaded by construction; the multi-thread scaling behaviour is
  modelled by :mod:`repro.simref.threads`.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.rtl.ir import Circuit, Op, OpKind
from repro.rtl.netlist import Netlist


def _mask(width: int) -> int:
    return (1 << width) - 1


class CompiledCycleSim:
    """Compile a netlist to one Python cycle function and run it."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.circuit = netlist.circuit
        source = generate_cycle_source(netlist)
        self.source = source
        namespace: dict = {}
        exec(compile(source, f"<compiled:{self.circuit.name}>", "exec"), namespace)
        self._cycle = namespace["cycle"]
        self.state = self._initial_state()
        self.cycle_count = 0
        #: static per-cycle op count (full-cycle simulators do all the work
        #: every cycle, which is what the performance model charges them)
        self.ops_per_cycle = len(netlist.order) + len(self.circuit.registers)
        #: width-weighted work: one unit per produced bit.  Compiled-code
        #: cost tracks datapath width (wide ops compile to more machine
        #: work), so the Verilator model is driven by this, not raw op count.
        self.work_units = sum(op.out.width for op in netlist.order) + sum(
            op.out.width for op in self.circuit.registers
        )

    def _initial_state(self) -> dict:
        state: dict = {"regs": {}, "mems": {}, "sync_rd": {}}
        for op in self.circuit.ops:
            if op.kind is OpKind.REG:
                state["regs"][op.out.uid] = op.attrs.get("init", 0)
        for mem in self.circuit.memories:
            state["mems"][mem.name] = mem.initial_words()
            for i, rp in enumerate(mem.read_ports):
                if rp.sync:
                    state["sync_rd"][(mem.name, i)] = 0
        return state

    def step(self, inputs: Mapping[str, int] | None = None) -> dict[str, int]:
        outs = self._cycle(self.state, inputs or {})
        self.cycle_count += 1
        return outs

    def run(self, stimuli: Iterable[Mapping[str, int]]) -> list[dict[str, int]]:
        cycle = self._cycle
        state = self.state
        results = [cycle(state, vec) for vec in stimuli]
        self.cycle_count += len(results)
        return results


def generate_cycle_source(netlist: Netlist) -> str:
    """Emit the Python source of ``cycle(state, inputs)`` for a netlist."""
    circuit = netlist.circuit
    lines: list[str] = [
        "def cycle(state, inputs):",
        "    regs = state['regs']",
        "    mems = state['mems']",
        "    sync_rd = state['sync_rd']",
    ]
    emit = lines.append
    mem_var = {mem.name: f"m{idx}" for idx, mem in enumerate(circuit.memories)}
    for mem in circuit.memories:
        emit(f"    {mem_var[mem.name]} = mems[{mem.name!r}]")
    for sig in circuit.inputs:
        emit(f"    s{sig.uid} = inputs.get({sig.name!r}, 0)")
    for op in circuit.ops:
        if op.kind is OpKind.CONST:
            emit(f"    s{op.out.uid} = {op.attrs['value']}")
        elif op.kind is OpKind.REG:
            emit(f"    s{op.out.uid} = regs[{op.out.uid}]")
        elif op.kind is OpKind.MEMRD and op.attrs["sync"]:
            emit(f"    s{op.out.uid} = sync_rd[({op.attrs['memory']!r}, {op.attrs['port']})]")
    for op in netlist.order:
        emit(f"    {_expr(op, mem_var, netlist)}")
    out_items = ", ".join(
        f"{name!r}: s{sig.uid}" for name, sig in circuit.outputs
    )
    emit(f"    outs = {{{out_items}}}")
    # Clock edge: sample everything, then commit.
    for idx, op in enumerate(circuit.registers):
        emit(f"    rn{idx} = s{op.inputs[0].uid}")
    for midx, mem in enumerate(circuit.memories):
        for pidx, rp in enumerate(mem.read_ports):
            if not rp.sync:
                continue
            read = f"{mem_var[mem.name]}[s{rp.addr.uid} & {mem.depth - 1}]"
            if rp.en is not None:
                read = f"({read} if s{rp.en.uid} else sync_rd[({mem.name!r}, {pidx})])"
            emit(f"    srn{midx}_{pidx} = {read}")
    for mem in circuit.memories:
        for wp in mem.write_ports:
            emit(f"    if s{wp.en.uid}:")
            emit(
                f"        {mem_var[mem.name]}[s{wp.addr.uid} & {mem.depth - 1}]"
                f" = s{wp.data.uid}"
            )
    for idx, op in enumerate(circuit.registers):
        emit(f"    regs[{op.out.uid}] = rn{idx}")
    for midx, mem in enumerate(circuit.memories):
        for pidx, rp in enumerate(mem.read_ports):
            if rp.sync:
                emit(f"    sync_rd[({mem.name!r}, {pidx})] = srn{midx}_{pidx}")
    emit("    return outs")
    return "\n".join(lines) + "\n"


def _expr(op: Op, mem_var: dict[str, str], netlist: Netlist) -> str:
    """One assignment statement for a combinational op."""
    o = f"s{op.out.uid}"
    ins = [f"s{s.uid}" for s in op.inputs]
    w = op.out.width
    kind = op.kind
    if kind is OpKind.AND:
        return f"{o} = {ins[0]} & {ins[1]}"
    if kind is OpKind.OR:
        return f"{o} = {ins[0]} | {ins[1]}"
    if kind is OpKind.XOR:
        return f"{o} = {ins[0]} ^ {ins[1]}"
    if kind is OpKind.NOT:
        return f"{o} = ~{ins[0]} & {_mask(w)}"
    if kind is OpKind.ADD:
        return f"{o} = ({ins[0]} + {ins[1]}) & {_mask(w)}"
    if kind is OpKind.SUB:
        return f"{o} = ({ins[0]} - {ins[1]}) & {_mask(w)}"
    if kind is OpKind.MUL:
        return f"{o} = ({ins[0]} * {ins[1]}) & {_mask(w)}"
    if kind is OpKind.EQ:
        return f"{o} = 1 if {ins[0]} == {ins[1]} else 0"
    if kind is OpKind.LT:
        return f"{o} = 1 if {ins[0]} < {ins[1]} else 0"
    if kind is OpKind.MUX:
        return f"{o} = {ins[1]} if {ins[0]} else {ins[2]}"
    if kind is OpKind.REDAND:
        return f"{o} = 1 if {ins[0]} == {_mask(op.inputs[0].width)} else 0"
    if kind is OpKind.REDOR:
        return f"{o} = 1 if {ins[0]} else 0"
    if kind is OpKind.REDXOR:
        return f"{o} = ({ins[0]}).bit_count() & 1"
    if kind is OpKind.SHLI:
        return f"{o} = ({ins[0]} << {op.attrs['amount']}) & {_mask(w)}"
    if kind is OpKind.SHRI:
        return f"{o} = {ins[0]} >> {op.attrs['amount']}"
    if kind is OpKind.SHL:
        return f"{o} = ({ins[0]} << {ins[1]}) & {_mask(w)} if {ins[1]} < {w} else 0"
    if kind is OpKind.SHR:
        return f"{o} = {ins[0]} >> {ins[1]} if {ins[1]} < {w} else 0"
    if kind is OpKind.SLICE:
        return f"{o} = ({ins[0]} >> {op.attrs['lo']}) & {_mask(w)}"
    if kind is OpKind.CONCAT:
        shift = 0
        parts = []
        for sig in op.inputs:
            parts.append(f"(s{sig.uid} << {shift})" if shift else f"s{sig.uid}")
            shift += sig.width
        return f"{o} = " + " | ".join(parts)
    if kind is OpKind.MEMRD:  # async read port
        mem = netlist.memories[op.attrs["memory"]]
        return f"{o} = {mem_var[mem.name]}[{ins[0]} & {mem.depth - 1}]"
    raise NotImplementedError(f"cannot compile {kind}")
