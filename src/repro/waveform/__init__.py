"""Waveform I/O.

The paper's execution stage consumes stimuli "provided as waveforms or
recorded signal patterns (e.g., VCD or FSDB format)" (§II).  This package
provides a VCD writer and reader so stimuli and responses can round-trip
through the standard interchange format.
"""

from repro.waveform.vcd import VcdReader, VcdWriter, read_vcd_stimuli, write_vcd

__all__ = ["VcdReader", "VcdWriter", "read_vcd_stimuli", "write_vcd"]
