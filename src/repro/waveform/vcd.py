"""Minimal, standard-conforming VCD (Value Change Dump) support.

Covers what cycle-based RTL simulation needs:

* :class:`VcdWriter` — dump named word-valued signals per cycle; only
  changed values are emitted (real VCD semantics);
* :class:`VcdReader` — parse a VCD back into per-cycle value maps;
* :func:`write_vcd` / :func:`read_vcd_stimuli` — one-shot helpers used by
  the examples and the stimulus replay path (paper §II's "execution stage"
  consumes recorded signal patterns in exactly this format).

One VCD timestep equals one simulated clock cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, Iterable, Mapping

_ID_CHARS = "".join(chr(c) for c in range(33, 127))

# x/z bits inside binary vectors read back as 0, matching the scalar
# x/z rule below (2-state simulation: unknown -> 0).
_XZ_TO_ZERO = str.maketrans("xXzZ", "0000")


def _make_id(index: int) -> str:
    """Compact VCD identifier for the index-th variable."""
    if index < 0:
        raise ValueError("negative id")
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        chars.append(_ID_CHARS[rem])
    return "".join(chars)


class VcdWriter:
    """Stream signal values, emitting change records."""

    def __init__(self, stream: IO[str], signals: Mapping[str, int], module: str = "top") -> None:
        """``signals`` maps name -> bit width."""
        self.stream = stream
        self.widths = dict(signals)
        self.ids = {name: _make_id(i) for i, name in enumerate(self.widths)}
        self.last: dict[str, int | None] = {name: None for name in self.widths}
        self.time = 0
        w = stream.write
        w("$date reproduction run $end\n")
        w("$version repro GEM VCD writer $end\n")
        w("$timescale 1ns $end\n")
        w(f"$scope module {module} $end\n")
        for name, width in self.widths.items():
            kind = "wire"
            w(f"$var {kind} {width} {self.ids[name]} {name} $end\n")
        w("$upscope $end\n")
        w("$enddefinitions $end\n")

    def sample(self, values: Mapping[str, int]) -> None:
        """Record one cycle of values.

        Unspecified signals are recorded as 0 — matching the repository-wide
        simulator convention that undriven inputs read as zero — so a VCD
        round-trip reproduces stimuli exactly.
        """
        w = self.stream.write
        # Every cycle gets a timestamp (even with no changes) so readers
        # recover the exact cycle count.
        w(f"#{self.time}\n")
        if self.time == 0:
            # Initial-value block: viewers render signals from time 0
            # instead of showing unknowns until the first change record.
            # Signals with no driven value yet are x-filled; ``last`` stays
            # None for those so the 0 they implicitly hold is still emitted
            # as a change record on the next driven (or defaulted) cycle,
            # keeping the read-back cycle stream exact.
            w("$dumpvars\n")
            for name, width in self.widths.items():
                ident = self.ids[name]
                if name in values:
                    value = int(values[name])
                    self.last[name] = value
                    if width == 1:
                        w(f"{value & 1}{ident}\n")
                    else:
                        w(f"b{value:b} {ident}\n")
                elif width == 1:
                    w(f"x{ident}\n")
                else:
                    w(f"b{'x' * width} {ident}\n")
            w("$end\n")
            self.time += 1
            return
        for name, width in self.widths.items():
            value = values.get(name, 0)
            if value == self.last[name]:
                continue
            self.last[name] = value
            ident = self.ids[name]
            if width == 1:
                w(f"{value & 1}{ident}\n")
            else:
                w(f"b{value:b} {ident}\n")
        self.time += 1

    def close(self) -> None:
        self.stream.write(f"#{self.time}\n")


@dataclass
class VcdSignal:
    name: str
    width: int
    ident: str


class VcdReader:
    """Parse a VCD file into per-timestep value dictionaries."""

    def __init__(self, stream: IO[str]) -> None:
        self.signals: dict[str, VcdSignal] = {}
        self._by_id: dict[str, VcdSignal] = {}
        self.samples: list[dict[str, int]] = []
        self._parse(stream)

    def _parse(self, stream: IO[str]) -> None:
        in_header = True
        current: dict[str, int] = {}
        started = False
        scopes: list[str] = []
        for raw in stream:
            line = raw.strip()
            if not line:
                continue
            if in_header:
                tokens = line.split()
                if tokens[0] == "$scope" and len(tokens) >= 3:
                    scopes.append(tokens[2])
                elif tokens[0] == "$upscope":
                    if scopes:
                        scopes.pop()
                elif tokens[0] == "$var" and len(tokens) >= 5:
                    width = int(tokens[2])
                    ident = tokens[3]
                    name = tokens[4]
                    full = ".".join(scopes[1:] + [name]) if len(scopes) > 1 else name
                    sig = VcdSignal(name=full, width=width, ident=ident)
                    self.signals[full] = sig
                    self._by_id[ident] = sig
                elif tokens[0] == "$enddefinitions":
                    in_header = False
                continue
            if line.startswith("#"):
                if started:
                    self.samples.append(dict(current))
                started = True
                continue
            if line.startswith("$"):
                # $dumpvars / $end wrappers around the initial-value block;
                # the value records inside parse like ordinary changes.
                continue
            if line.startswith("b"):
                value_str, ident = line[1:].split()
                sig = self._by_id[ident]
                current[sig.name] = int(value_str.translate(_XZ_TO_ZERO), 2)
            elif line[0] in "01":
                sig = self._by_id[line[1:]]
                current[sig.name] = int(line[0])
            elif line[0] in "xXzZ":
                sig = self._by_id[line[1:]]
                current[sig.name] = 0  # 2-state simulation: unknown -> 0
        # VCD files end with a final timestamp marker; anything accumulated
        # since the last '#' belongs to the final (already appended) sample.

    def cycles(self) -> list[dict[str, int]]:
        """Cumulative per-cycle values (each cycle holds previous values)."""
        out: list[dict[str, int]] = []
        state: dict[str, int] = {}
        for sample in self.samples:
            state.update(sample)
            out.append(dict(state))
        return out


def write_vcd(path: str, stimuli: Iterable[Mapping[str, int]], widths: Mapping[str, int], module: str = "top") -> int:
    """Write a stimulus sequence to ``path``; returns the cycle count."""
    count = 0
    with open(path, "w", encoding="ascii") as f:
        writer = VcdWriter(f, widths, module=module)
        for vec in stimuli:
            writer.sample(vec)
            count += 1
        writer.close()
    return count


def read_vcd_stimuli(path: str) -> list[dict[str, int]]:
    """Read a VCD back as per-cycle input dictionaries."""
    with open(path, encoding="ascii") as f:
        return VcdReader(f).cycles()
