"""Low-overhead span tracer emitting Chrome trace-event JSON.

The tracer answers "where did the wall-clock go?" for one process: the
compile flow (synthesis → partitioning → placement → bitstream, with
per-stage and per-partition child spans), the runtime hot path (one span
per simulated cycle with inject/gather/fold/commit children), and the
resilience machinery (supervisor scrub/rollback/degrade instants,
checkpoint save/load spans).  Output is the Chrome trace-event format
(`"traceEvents"` array of ``X``/``i``/``C`` events, microsecond
timestamps), directly loadable in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.

Design constraints, in order:

1. **Zero cost when off.**  ``TRACER.enabled`` is a plain attribute;
   instrumented hot paths check it once and skip everything else.  The
   interpreter's fused cycle loop pays exactly one such check per
   ``step`` when tracing is disabled (<5% overhead budget — enforced by
   the ``gem-perf compare`` gate against ``BENCH_cycle.json``).
2. **Bounded memory.**  Events land in a ring buffer
   (``collections.deque`` with ``maxlen``): a multi-hour traced run
   keeps the newest ``capacity`` events and counts the rest in
   :attr:`Tracer.dropped` instead of exhausting the host.
3. **Thread safety.**  ``deque.append`` is atomic under the GIL, so
   recording takes no lock; only buffer reconfiguration and export do.
4. **Monotonic clocks.**  All timestamps come from
   ``time.perf_counter`` relative to the tracer epoch — wall-clock
   adjustments never corrupt span nesting.

Typical use::

    from repro.obs import TRACER

    TRACER.enable()
    with TRACER.span("synthesis", cat="compile"):
        ...
    TRACER.write("trace.json")
"""

from __future__ import annotations

import functools
import json
import threading
import time
from collections import deque
from typing import Any, Callable, Mapping

_US = 1_000_000.0  # seconds → microseconds
#: fixed order of the per-cycle phase children (matches ``phase_times``)
CYCLE_PHASES = ("inject", "gather", "fold", "commit")


class _Span:
    """Context manager recording one complete (``ph: X``) event."""

    __slots__ = ("_tracer", "name", "cat", "args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        tracer = self._tracer
        if tracer.enabled:
            tracer.complete(self.name, self._t0, cat=self.cat, args=self.args)
        return False


class Tracer:
    """Thread-safe ring-buffer span tracer (see module docstring).

    All record methods are cheap no-ops while :attr:`enabled` is false,
    but hot paths should still guard on ``tracer.enabled`` themselves to
    skip argument construction entirely.
    """

    def __init__(self, capacity: int = 1_000_000) -> None:
        self.enabled = False
        self.dropped = 0
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()
        # event tuples: (ph, name, cat, ts_us, dur_us, tid, args)
        self._events: deque = deque(maxlen=max(1, capacity))

    # -- lifecycle ------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._events.maxlen or 0

    def enable(self, capacity: int | None = None) -> None:
        """Start recording (optionally resizing the ring buffer)."""
        with self._lock:
            if capacity is not None and capacity != self._events.maxlen:
                self._events = deque(self._events, maxlen=max(1, capacity))
            self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop every recorded event and restart the epoch."""
        with self._lock:
            self._events.clear()
            self.dropped = 0
            self._t0 = time.perf_counter()

    def __len__(self) -> int:
        return len(self._events)

    # -- recording ------------------------------------------------------------

    def now(self) -> float:
        """The tracer's clock (``time.perf_counter`` seconds)."""
        return time.perf_counter()

    def _push(self, ev: tuple) -> None:
        events = self._events
        if len(events) == events.maxlen:
            self.dropped += 1
        events.append(ev)

    def complete(
        self,
        name: str,
        t0: float,
        *,
        t1: float | None = None,
        cat: str = "",
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Record a complete span from ``t0`` to ``t1`` (default: now)."""
        if not self.enabled:
            return
        end = time.perf_counter() if t1 is None else t1
        self._push(
            (
                "X",
                name,
                cat,
                (t0 - self._t0) * _US,
                max(0.0, (end - t0) * _US),
                threading.get_ident(),
                dict(args) if args else None,
            )
        )

    def instant(
        self, name: str, *, cat: str = "", args: Mapping[str, Any] | None = None
    ) -> None:
        """Record a zero-duration instant event (``ph: i``)."""
        if not self.enabled:
            return
        self._push(
            (
                "i",
                name,
                cat,
                (time.perf_counter() - self._t0) * _US,
                None,
                threading.get_ident(),
                dict(args) if args else None,
            )
        )

    def counter(self, name: str, values: Mapping[str, float], *, cat: str = "") -> None:
        """Record a counter sample (``ph: C``) — Perfetto plots these."""
        if not self.enabled:
            return
        self._push(
            (
                "C",
                name,
                cat,
                (time.perf_counter() - self._t0) * _US,
                None,
                threading.get_ident(),
                dict(values),
            )
        )

    def span(
        self, name: str, *, cat: str = "", args: Mapping[str, Any] | None = None
    ) -> _Span:
        """Context manager recording one complete event around its body."""
        return _Span(self, name, cat, args)

    def traced(self, name: str | None = None, *, cat: str = "") -> Callable:
        """Decorator form of :meth:`span` (span name defaults to the
        function's qualified name)."""

        def decorate(fn: Callable) -> Callable:
            span_name = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                if not self.enabled:
                    return fn(*args, **kwargs)
                t0 = time.perf_counter()
                try:
                    return fn(*args, **kwargs)
                finally:
                    self.complete(span_name, t0, cat=cat)

            return wrapper

        return decorate

    def cycle(
        self, index: int, t0: float, dur_s: float, phases: Mapping[str, float]
    ) -> None:
        """One simulated cycle: a parent ``cycle`` span plus sequential
        inject/gather/fold/commit children laid out from ``t0``.

        The children are rendered from the interpreter's per-phase timer
        deltas; phases genuinely interleave per stage inside a cycle, so
        the children summarize where the cycle went rather than the exact
        stage-by-stage schedule (the sum of children ≤ the parent).
        """
        if not self.enabled:
            return
        tid = threading.get_ident()
        base = (t0 - self._t0) * _US
        self._push(("X", "cycle", "runtime", base, dur_s * _US, tid, {"cycle": index}))
        offset = base
        for phase in CYCLE_PHASES:
            d = max(0.0, phases.get(phase, 0.0)) * _US
            self._push(("X", phase, "runtime.phase", offset, d, tid, None))
            offset += d

    # -- export ---------------------------------------------------------------

    def events(self) -> list[dict]:
        """Snapshot of the buffer as Chrome trace-event dicts."""
        with self._lock:
            raw = list(self._events)
        out = []
        for ph, name, cat, ts, dur, tid, args in raw:
            ev: dict[str, Any] = {
                "name": name,
                "ph": ph,
                "ts": ts,
                "pid": 1,
                "tid": tid,
            }
            if cat:
                ev["cat"] = cat
            if ph == "X":
                ev["dur"] = dur
            if ph == "i":
                ev["s"] = "t"  # thread-scoped instant
            if args is not None:
                ev["args"] = args
            out.append(ev)
        return out

    def chrome(self) -> dict:
        """The full Chrome trace-event JSON object."""
        return {
            "traceEvents": self.events(),
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.obs.trace",
                "dropped_events": self.dropped,
            },
        }

    def write(self, path: str) -> int:
        """Serialize the trace to ``path``; returns the event count."""
        doc = self.chrome()
        with open(path, "w") as f:
            json.dump(doc, f)
        return len(doc["traceEvents"])


#: The process-wide tracer every instrumented module records into.
TRACER = Tracer()

_VALID_PH = {"X", "B", "E", "i", "I", "C", "M"}


def validate_trace(doc: object) -> list[str]:
    """Schema-check a Chrome trace-event document; returns problems
    (empty list = valid).  Accepts the parsed JSON object, a JSON
    string, or a file path."""
    if isinstance(doc, str):
        try:
            if doc.lstrip().startswith(("{", "[")):
                doc = json.loads(doc)
            else:
                with open(doc) as f:
                    doc = json.load(f)
        except (OSError, ValueError) as exc:
            return [f"unreadable trace: {exc}"]
    if isinstance(doc, list):
        events = doc  # the bare-array variant of the format
    elif isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object has no 'traceEvents' array"]
    else:
        return [f"trace must be an object or array, got {type(doc).__name__}"]
    problems: list[str] = []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        where = f"event {i} ({ev.get('name', '?')!r})"
        for key in ("name", "ph", "ts"):
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
        ph = ev.get("ph")
        if ph is not None and ph not in _VALID_PH:
            problems.append(f"{where}: unknown phase {ph!r}")
        if not isinstance(ev.get("ts", 0.0), (int, float)):
            problems.append(f"{where}: non-numeric ts")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event needs dur >= 0")
        if "args" in ev and not isinstance(ev["args"], dict):
            problems.append(f"{where}: args must be an object")
        if len(problems) >= 20:
            problems.append("... (truncated)")
            break
    return problems
