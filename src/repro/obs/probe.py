"""Signal-level probes: engine-speed taps on named nets.

Runtime observability (spans, metrics, reports) says *how fast* a run
went; probes say *what the design did*.  A :class:`ProbePlan` resolves
user-facing net names — input words, registers, output words — through
the synthesis name maps (``SynthesisResult.input_bits`` /
``output_bits``, the E-AIG flip-flop names, and the
:class:`~repro.core.bitstream.ProgramMeta` global-state layout) down to
global state word indices.  A :class:`ProbeTap` then gathers those words
once per cycle, packed uint64 lane planes and all, and feeds them to
sinks:

* :class:`WaveRing` — a bounded per-cycle window (dropped-window
  accounting when it overflows) that can stream any single lane of a
  batched run to the :class:`~repro.waveform.vcd.VcdWriter`;
* :class:`~repro.obs.activity.ActivityAccumulator` — SAIF-style
  T0/T1/TC counters (see :mod:`repro.obs.activity`).

Why probing the global state is always safe in fused mode: every net a
plan can name *is* a global-state terminal (PI bits, FF q bits, PO
bits), and the fused executor's DCE roots at global writes — probed
terminals survive CSE/DCE by construction, no re-materialization pass
needed.  ``tests/test_probe.py`` locks this with a fused-vs-legacy tap
equality regression.

The tap samples at the settled point of the cycle — after the
combinational waves, before deferred commits — which is bit-identical
to the gate-level reference observed right after its first settle
(:attr:`repro.simref.gate_sim.GateLevelSim.probe_hook`); that identity
is the probe acceptance gate and what makes divergence wave dumps
(:func:`dump_divergence_waves`) trustworthy.

Cost model: detached, one ``is None`` check per cycle (mirroring
``TRACER.enabled``); attached, one fancy-index gather of the probed
bits plus whatever the sinks do.
"""

from __future__ import annotations

import fnmatch
import logging
from collections import deque
from dataclasses import dataclass, field
from typing import IO, TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ProbeError
from repro.waveform.vcd import VcdWriter

if TYPE_CHECKING:
    from repro.core.compiler import CompiledDesign
    from repro.core.interpreter import GemInterpreter
    from repro.simref.gate_sim import GateLevelSim

logger = logging.getLogger(__name__)

#: default WaveRing capacity (cycles) — bounds memory, not run length
DEFAULT_WINDOW = 4096

KINDS = ("input", "register", "output")


@dataclass(frozen=True)
class ProbeNet:
    """One probeable net: a named word of design state."""

    name: str
    #: "input" | "register" | "output"
    kind: str
    width: int
    #: global state word index per bit, LSB first
    gidx: tuple[int, ...]
    #: E-AIG literal per bit (how the gate-level reference samples it)
    literals: tuple[int, ...]


@dataclass(eq=False)
class ProbePlan:
    """A resolved, ordered set of probed nets plus gather tables."""

    nets: tuple[ProbeNet, ...]
    #: CRC digest of the program the plan was resolved against
    program_digest: int = 0
    all_gidx: np.ndarray = field(init=False, repr=False)
    _slices: dict[str, slice] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        indices: list[int] = []
        slices: dict[str, slice] = {}
        for net in self.nets:
            slices[net.name] = slice(len(indices), len(indices) + net.width)
            indices.extend(net.gidx)
        self.all_gidx = np.asarray(indices, dtype=np.int64)
        self._slices = slices

    @property
    def num_bits(self) -> int:
        return int(self.all_gidx.size)

    def net_slice(self, name: str) -> slice:
        return self._slices[name]

    def widths(self) -> dict[str, int]:
        """name -> width, in plan order (the VcdWriter signal map)."""
        return {net.name: net.width for net in self.nets}

    def values_from_bits(self, bits: np.ndarray) -> dict[str, int]:
        """Assemble per-net ints from a flat 0/1 array (plan order)."""
        out: dict[str, int] = {}
        for net in self.nets:
            sl = self._slices[net.name]
            value = 0
            for i in range(net.width):
                if bits[sl.start + i]:
                    value |= 1 << i
            out[net.name] = value
        return out


def _register_words(synth) -> list[tuple[str, list[tuple[int, int]]]]:
    """Group named FF bits back into words: (name, [(bit index, node)])."""
    eaig = synth.eaig
    groups: dict[str, list[tuple[int, int]]] = {}
    order: list[str] = []
    for ff in eaig.ffs:
        name = eaig.names.get(ff)
        if name and name.endswith("]") and "[" in name:
            base, _, idx_str = name.rpartition("[")
            try:
                idx = int(idx_str[:-1])
            except ValueError:
                base, idx = name, 0
        else:
            base, idx = (name or f"ff{ff}"), 0
        if base not in groups:
            groups[base] = []
            order.append(base)
        groups[base].append((idx, ff))
    return [(base, sorted(groups[base])) for base in order]


def probe_catalog(design: "CompiledDesign") -> list[ProbeNet]:
    """Every probeable net of a compiled design, inputs first, then
    registers, then outputs.  Name collisions across kinds (an output
    word that is also a register name, say) are disambiguated with a
    ``.kind`` suffix on the later entry."""
    synth = design.synth
    meta = design.program.meta
    nets: list[ProbeNet] = []
    taken: set[str] = set()

    def add(name: str, kind: str, gidx: Sequence[int], literals: Sequence[int]) -> None:
        if name in taken:
            name = f"{name}.{kind}"
        taken.add(name)
        nets.append(
            ProbeNet(
                name=name,
                kind=kind,
                width=len(gidx),
                gidx=tuple(int(g) for g in gidx),
                literals=tuple(int(l) for l in literals),
            )
        )

    for name, bits in synth.input_bits.items():
        add(name, "input", meta.pi_index[name], bits)
    node_gidx = meta.node_gidx
    for base, bit_nodes in _register_words(synth):
        add(
            base,
            "register",
            [node_gidx[node] for _, node in bit_nodes],
            [node * 2 for _, node in bit_nodes],
        )
    for name, bits in synth.output_bits.items():
        add(name, "output", meta.po_index[name], bits)
    return nets


def _split_patterns(nets: str | Sequence[str] | None) -> list[str]:
    if nets is None:
        return ["*"]
    if isinstance(nets, str):
        nets = [p for p in nets.split(",") if p.strip()]
    return [p.strip() for p in nets] or ["*"]


def build_probe_plan(
    design: "CompiledDesign", nets: str | Sequence[str] | None = None
) -> ProbePlan:
    """Resolve net names/globs into a :class:`ProbePlan`.

    ``nets`` is a comma-separated string or a sequence of patterns; each
    pattern is an :mod:`fnmatch` glob matched against net names, or one
    of the group selectors ``inputs`` / ``registers`` / ``outputs``.
    ``None`` (or ``"*"``) probes everything.  A pattern that matches
    nothing raises :class:`~repro.errors.ProbeError` — a typo'd net name
    must not silently produce an empty waveform.
    """
    catalog = probe_catalog(design)
    patterns = _split_patterns(nets)
    selected: dict[str, ProbeNet] = {}
    for pattern in patterns:
        if pattern in ("inputs", "registers", "outputs"):
            kind = pattern[:-1]
            matches = [net for net in catalog if net.kind == kind]
        else:
            matches = [net for net in catalog if fnmatch.fnmatchcase(net.name, pattern)]
        if not matches:
            known = ", ".join(net.name for net in catalog[:12])
            more = ", ..." if len(catalog) > 12 else ""
            raise ProbeError(
                f"probe pattern {pattern!r} matches no net; known nets: {known}{more}"
            )
        for net in matches:
            selected.setdefault(net.name, net)
    ordered = tuple(net for net in catalog if net.name in selected)
    return ProbePlan(nets=ordered, program_digest=design.program.digest())


def list_nets(design: "CompiledDesign") -> list[dict]:
    """``gem-probe list`` rows: name, kind, width per probeable net."""
    return [
        {"net": net.name, "kind": net.kind, "width": net.width}
        for net in probe_catalog(design)
    ]


# ---------------------------------------------------------------------------
# The tap
# ---------------------------------------------------------------------------


class ProbeTap:
    """Per-cycle probe gather, fanned out to sinks.

    Attach to a :class:`~repro.core.interpreter.GemInterpreter` (any
    mode, any backend, any batch); each cycle the probed global-state
    words — ``(num_bits,)`` for one lane word, ``(num_bits, K)`` lane
    planes beyond batch 64 — are gathered once and handed to every sink's
    ``on_cycle(cycle, words)``.  :meth:`snapshot` / :meth:`restore` give
    the supervisor probe continuity across checkpoint rollbacks: rewind
    the tap exactly when the engine rewinds, so a recovered run's tap
    stream is bit-identical to an undisturbed one.
    """

    def __init__(self, plan: ProbePlan, sinks: Iterable = ()) -> None:
        self.plan = plan
        self.sinks = list(sinks)
        self.cycle = 0
        self.batch = 1
        self.words = 1
        self.captured = 0
        #: set when a supervised run degraded to the gate-level fallback
        #: (the tap stops; captured data up to the degrade point is valid)
        self.detached_reason: str | None = None
        self._gidx = plan.all_gidx

    def attach(self, interp: "GemInterpreter") -> "ProbeTap":
        digest = interp.program.digest()
        if self.plan.program_digest and digest != self.plan.program_digest:
            raise ProbeError(
                f"probe plan was resolved against program {self.plan.program_digest:#x}, "
                f"interpreter runs {digest:#x}"
            )
        self.batch = interp.batch
        self.words = interp.engine.words
        self.cycle = interp.cycle
        for sink in self.sinks:
            bind = getattr(sink, "bind", None)
            if bind is not None:
                bind(self.batch, self.words)
        interp.attach_probe(self)
        return self

    def capture(self, interp: "GemInterpreter") -> None:
        """Hot path: called by the interpreter at the settled point."""
        words = interp.global_state[self._gidx]
        cycle = self.cycle
        for sink in self.sinks:
            sink.on_cycle(cycle, words)
        self.cycle = cycle + 1
        self.captured += 1

    def snapshot(self) -> tuple:
        return (self.cycle, self.captured, [sink.snapshot() for sink in self.sinks])

    def restore(self, state: tuple) -> None:
        cycle, captured, sink_states = state
        self.cycle = cycle
        self.captured = captured
        for sink, snap in zip(self.sinks, sink_states):
            sink.restore(snap)

    def sink_of(self, cls):
        """First attached sink of the given class, or None."""
        for sink in self.sinks:
            if isinstance(sink, cls):
                return sink
        return None


# ---------------------------------------------------------------------------
# Waveform ring sink
# ---------------------------------------------------------------------------


def _lane_bits(words: np.ndarray, lane: int) -> np.ndarray:
    """Extract one lane's 0/1 bits from packed tap words."""
    k, b = divmod(lane, 64)
    col = words if words.ndim == 1 else words[:, k]
    return ((col >> np.uint64(b)) & np.uint64(1)).astype(np.uint8)


class WaveRing:
    """Bounded per-cycle tap window with dropped-window accounting.

    Keeps the most recent ``capacity`` cycles of raw packed tap words
    (all lanes — lane selection happens at dump time, so one captured
    run can be inspected lane by lane).  When full, the oldest cycle is
    dropped and counted; RunReports surface ``dropped_windows`` so a
    truncated waveform is never mistaken for a complete one.
    """

    def __init__(self, plan: ProbePlan, capacity: int = DEFAULT_WINDOW) -> None:
        if capacity <= 0:
            raise ValueError("WaveRing capacity must be positive")
        self.plan = plan
        self.capacity = capacity
        self._entries: deque[tuple[int, np.ndarray]] = deque(maxlen=capacity)
        self.dropped = 0
        self.batch = 1
        self.words = 1

    def bind(self, batch: int, words: int) -> None:
        self.batch = batch
        self.words = words

    def on_cycle(self, cycle: int, words: np.ndarray) -> None:
        if len(self._entries) == self.capacity:
            self.dropped += 1
        self._entries.append((cycle, words))

    # -- rewind support -----------------------------------------------------

    def snapshot(self) -> tuple:
        return (list(self._entries), self.dropped)

    def restore(self, state: tuple) -> None:
        entries, dropped = state
        self._entries = deque(entries, maxlen=self.capacity)
        self.dropped = dropped

    # -- inspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def first_cycle(self) -> int | None:
        return self._entries[0][0] if self._entries else None

    def entries(self) -> list[tuple[int, np.ndarray]]:
        return list(self._entries)

    def lane_samples(self, lane: int = 0) -> list[tuple[int, dict[str, int]]]:
        """(cycle, net -> value) pairs for one lane of the window."""
        if not 0 <= lane < self.batch:
            raise ProbeError(f"lane {lane} out of range for batch {self.batch}")
        return [
            (cycle, self.plan.values_from_bits(_lane_bits(words, lane)))
            for cycle, words in self._entries
        ]

    def dump_vcd(
        self, target: str | IO[str], lane: int = 0, module: str = "probe"
    ) -> dict:
        """Stream one lane of the window as a VCD; returns a summary dict.

        VCD time 0 corresponds to the first cycle still in the window
        (``first_cycle`` in the summary); with no drops that is cycle 0.
        """
        samples = self.lane_samples(lane)

        def write(stream: IO[str]) -> None:
            writer = VcdWriter(stream, self.plan.widths(), module=module)
            for _, values in samples:
                writer.sample(values)
            writer.close()

        if isinstance(target, str):
            with open(target, "w", encoding="ascii") as f:
                write(f)
        else:
            write(target)
        return {
            "lane": lane,
            "cycles": len(samples),
            "first_cycle": samples[0][0] if samples else 0,
            "dropped_windows": self.dropped,
        }


# ---------------------------------------------------------------------------
# Gate-level reference sampling (the bit-identity oracle)
# ---------------------------------------------------------------------------


class SimrefProbe:
    """Record a probe plan's nets from :class:`GateLevelSim`, per cycle.

    Install as ``sim.probe_hook``; the hook fires at the same settled
    point the engine tap samples, so ``samples[c][net]`` must equal the
    engine tap's lane value at cycle ``c`` bit for bit.
    """

    def __init__(self, plan: ProbePlan) -> None:
        self.plan = plan
        self.samples: list[dict[str, int]] = []

    def install(self, sim: "GateLevelSim") -> "SimrefProbe":
        sim.probe_hook = self
        return self

    def __call__(self, sim: "GateLevelSim") -> None:
        self.samples.append(
            {net.name: sim._bits(net.literals) for net in self.plan.nets}
        )


# ---------------------------------------------------------------------------
# Divergence wave dumps (fuzz oracle / cosim hookup)
# ---------------------------------------------------------------------------


def dump_divergence_waves(
    compiled: "CompiledDesign",
    stimuli: Sequence[Mapping[str, int]],
    cycle: int,
    path: str,
    *,
    nets: str | Sequence[str] | None = None,
    before: int = 8,
    after: int = 8,
    engine_mode: str = "fused",
    backend: str | None = None,
    lane: int = 0,
    batch: int = 1,
) -> dict:
    """Re-run a failing stimulus with probes on and dump the window
    around the first divergent cycle as a VCD.

    Called by the fuzz campaign and ``gem-cosim --dump-waves`` when an
    oracle mismatch is found: the probed re-run is deterministic, so the
    dumped window shows exactly the state the diverging engine computed
    leading into and out of the bad cycle.  Returns the
    :meth:`WaveRing.dump_vcd` summary plus the dump path.
    """
    plan = build_probe_plan(compiled, nets)
    last = min(len(stimuli), cycle + after + 1)
    first = max(0, cycle - before)
    ring = WaveRing(plan, capacity=max(last - first, 1))
    tap = ProbeTap(plan, [ring])
    sim = compiled.simulator(batch=batch, mode=engine_mode, backend=backend)
    tap.attach(sim)
    for vec in stimuli[:last]:
        sim.step(vec)
    summary = ring.dump_vcd(path, lane=lane)
    summary["path"] = path
    summary["divergence_cycle"] = cycle
    logger.info(
        "divergence waves: %d cycles (first cycle %d) around cycle %d -> %s",
        summary["cycles"], summary["first_cycle"], cycle, path,
    )
    return summary
