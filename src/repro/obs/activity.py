"""SAIF-style per-net activity profiling over probe-tap streams.

GATSPI (PAPERS.md) drives power analysis from per-net toggle activity
collected during GPU gate-level simulation; this module is the same idea
on top of :mod:`repro.obs.probe` taps.  Every probed net-bit accrues
three counters over the captured window, summed across active lanes:

* ``T0`` — lane-cycles spent at 0;
* ``T1`` — lane-cycles spent at 1;
* ``TC`` — toggle count (popcount of the XOR between consecutive tap
  words — the classic SAIF transition count).

The accumulate step is a handful of vectorized popcounts per cycle —
``numpy.bitwise_count`` when the installed numpy has it (>= 2.0), a
byte-LUT fallback otherwise, and an optional numba JIT kernel
(``backend="numba"``) mirroring the gating style of
:mod:`repro.core.backend`: numba is never required, and when it is
missing the accumulator falls back to numpy with a warn-once log unless
``strict`` is set.

Export paths: :func:`write_saif` (a minimal SAIF 2.0 file, backward
direction, DURATION in cycles — see docs/OBSERVABILITY.md for the
multi-lane note), :func:`read_saif` (parser used by tests and CI to
validate emitted files), ``gem_net_toggles_total`` metrics via
:func:`publish_net_activity`, and :func:`hot_nets` (the Top-N table in
RunReports and ``gem-probe activity``).
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.obs.metrics import REGISTRY

if TYPE_CHECKING:
    from repro.obs.probe import ProbePlan

logger = logging.getLogger(__name__)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: per-byte popcount lookup for numpys without ``bitwise_count``
_BYTE_POPCOUNT = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint64)


def popcount(arr: np.ndarray) -> np.ndarray:
    """Elementwise popcount of a uint64 array (any shape)."""
    a = np.ascontiguousarray(arr, dtype=np.uint64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(a).astype(np.uint64)
    as_bytes = a.view(np.uint8).reshape(a.shape + (8,))
    return _BYTE_POPCOUNT[as_bytes].sum(axis=-1)


def _accumulate_numpy(
    words: np.ndarray,
    prev: np.ndarray | None,
    mask: np.ndarray,
    t0: np.ndarray,
    t1: np.ndarray,
    tc: np.ndarray,
    batch: int,
) -> None:
    masked = words & mask
    ones = popcount(masked).sum(axis=1, dtype=np.uint64)
    t1 += ones
    t0 += np.uint64(batch) - ones
    if prev is not None:
        tc += popcount((words ^ prev) & mask).sum(axis=1, dtype=np.uint64)


_NUMBA_KERNEL = None


def _numba_accumulate():
    """Build (once) the numba JIT accumulate kernel; raises ImportError
    when numba is not installed."""
    global _NUMBA_KERNEL
    if _NUMBA_KERNEL is None:
        import numba

        @numba.njit(cache=True)
        def kernel(words, prev, mask, t0, t1, tc, batch, have_prev):  # pragma: no cover
            nbits, nwords = words.shape
            for i in range(nbits):
                ones = np.uint64(0)
                toggles = np.uint64(0)
                for k in range(nwords):
                    w = words[i, k] & mask[k]
                    # SWAR popcount (Hacker's Delight fig. 5-2)
                    x = w - ((w >> np.uint64(1)) & np.uint64(0x5555555555555555))
                    x = (x & np.uint64(0x3333333333333333)) + (
                        (x >> np.uint64(2)) & np.uint64(0x3333333333333333)
                    )
                    x = (x + (x >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
                    ones += (x * np.uint64(0x0101010101010101)) >> np.uint64(56)
                    if have_prev:
                        d = (words[i, k] ^ prev[i, k]) & mask[k]
                        y = d - ((d >> np.uint64(1)) & np.uint64(0x5555555555555555))
                        y = (y & np.uint64(0x3333333333333333)) + (
                            (y >> np.uint64(2)) & np.uint64(0x3333333333333333)
                        )
                        y = (y + (y >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
                        toggles += (y * np.uint64(0x0101010101010101)) >> np.uint64(56)
                t1[i] += ones
                t0[i] += np.uint64(batch) - ones
                tc[i] += toggles

        _NUMBA_KERNEL = kernel
    return _NUMBA_KERNEL


_warned_numba = False


def resolve_activity_backend(name: str | None, strict: bool = False):
    """Return the accumulate implementation for ``name`` (numpy/numba).

    Mirrors :func:`repro.core.backend.resolve_backend`: unknown names
    raise, a missing numba falls back to numpy with a warn-once log, or
    raises when ``strict``.
    """
    global _warned_numba
    if name in (None, "numpy"):
        return _accumulate_numpy
    if name != "numba":
        raise ValueError(f"unknown activity backend {name!r}; have numpy, numba")
    try:
        kernel = _numba_accumulate()
    except ImportError:
        if strict:
            raise
        if not _warned_numba:
            _warned_numba = True
            logger.warning("numba unavailable; activity counting falls back to numpy")
        return _accumulate_numpy

    def run(words, prev, mask, t0, t1, tc, batch):
        have_prev = prev is not None
        if prev is None:
            prev = words
        kernel(words, prev, mask, t0, t1, tc, batch, have_prev)

    return run


def lane_masks(batch: int, words: int) -> np.ndarray:
    """Active-lane mask per lane-plane word (partial final word)."""
    masks = np.zeros(words, dtype=np.uint64)
    remaining = batch
    for k in range(words):
        lanes = min(64, remaining)
        masks[k] = np.uint64(0xFFFFFFFFFFFFFFFF) if lanes >= 64 else np.uint64((1 << lanes) - 1)
        remaining -= lanes
    return masks


class ActivityAccumulator:
    """Streaming T0/T1/TC counters over a probe-tap word stream.

    A probe-tap *sink* (see :class:`repro.obs.probe.ProbeTap`): receives
    each cycle's gathered tap words and folds them into per-net-bit
    counters.  Supports :meth:`snapshot` / :meth:`restore` so the
    supervisor can rewind it with the engine on checkpoint rollback.
    """

    def __init__(self, plan: "ProbePlan", backend: str | None = None, strict: bool = False) -> None:
        self.plan = plan
        self.backend = "numba" if backend == "numba" else "numpy"
        self._accumulate = resolve_activity_backend(backend, strict=strict)
        n = plan.num_bits
        self.t0 = np.zeros(n, dtype=np.uint64)
        self.t1 = np.zeros(n, dtype=np.uint64)
        self.tc = np.zeros(n, dtype=np.uint64)
        self.cycles = 0
        self.batch = 1
        self._mask = lane_masks(1, 1)
        self._prev: np.ndarray | None = None

    def bind(self, batch: int, words: int) -> None:
        """Called by the tap at attach time with the engine's lane shape."""
        self.batch = batch
        self._mask = lane_masks(batch, words)

    def on_cycle(self, cycle: int, words: np.ndarray) -> None:
        w = words.reshape(self.plan.num_bits, -1)
        self._accumulate(w, self._prev, self._mask, self.t0, self.t1, self.tc, self.batch)
        self._prev = w
        self.cycles += 1

    # -- rewind support (supervisor rollback) -------------------------------

    def snapshot(self) -> tuple:
        return (
            self.t0.copy(),
            self.t1.copy(),
            self.tc.copy(),
            self.cycles,
            None if self._prev is None else self._prev.copy(),
        )

    def restore(self, state: tuple) -> None:
        t0, t1, tc, cycles, prev = state
        self.t0 = t0.copy()
        self.t1 = t1.copy()
        self.tc = tc.copy()
        self.cycles = cycles
        self._prev = None if prev is None else prev.copy()

    # -- aggregation --------------------------------------------------------

    def per_net(self) -> dict[str, dict[str, int]]:
        """Word-level totals: net name -> {T0, T1, TC} summed over bits."""
        out: dict[str, dict[str, int]] = {}
        for net in self.plan.nets:
            sl = self.plan.net_slice(net.name)
            out[net.name] = {
                "T0": int(self.t0[sl].sum()),
                "T1": int(self.t1[sl].sum()),
                "TC": int(self.tc[sl].sum()),
            }
        return out

    def per_bit(self) -> dict[str, tuple[int, int, int]]:
        """Bit-level (T0, T1, TC) keyed by ``net[i]`` (plain net if 1-wide)."""
        out: dict[str, tuple[int, int, int]] = {}
        for net in self.plan.nets:
            sl = self.plan.net_slice(net.name)
            for i, j in enumerate(range(sl.start, sl.stop)):
                key = net.name if net.width == 1 else f"{net.name}[{i}]"
                out[key] = (int(self.t0[j]), int(self.t1[j]), int(self.tc[j]))
        return out


def hot_nets(acc: ActivityAccumulator, top: int = 10) -> list[dict]:
    """Top-N nets by toggle count, with a per-bit-lane-cycle toggle rate."""
    transitions = max(acc.cycles - 1, 1)
    rows = []
    for net in acc.plan.nets:
        sl = acc.plan.net_slice(net.name)
        toggles = int(acc.tc[sl].sum())
        denom = net.width * acc.batch * transitions
        rows.append(
            {
                "net": net.name,
                "kind": net.kind,
                "width": net.width,
                "toggles": toggles,
                "rate": round(toggles / denom, 6) if denom else 0.0,
            }
        )
    rows.sort(key=lambda r: (-r["toggles"], r["net"]))
    return rows[:top]


def publish_net_activity(acc: ActivityAccumulator, registry=REGISTRY) -> None:
    """Publish per-net toggle totals as ``gem_net_toggles_total``."""
    for name, counts in acc.per_net().items():
        registry.counter(
            "gem_net_toggles_total",
            help="net toggle count (TC) summed over probed bits and lanes",
            labels={"net": name},
        ).inc(counts["TC"])
    registry.gauge(
        "gem_probe_cycles",
        help="cycles captured by the probe tap this run",
    ).set(float(acc.cycles))


# ---------------------------------------------------------------------------
# SAIF 2.0 writer / reader
# ---------------------------------------------------------------------------


def _saif_escape(name: str) -> str:
    return name.replace("[", "\\[").replace("]", "\\]")


def _saif_unescape(name: str) -> str:
    return name.replace("\\[", "[").replace("\\]", "]")


def write_saif(path: str, acc: ActivityAccumulator, design: str = "top") -> str:
    """Write a minimal backward-SAIF file; returns the path.

    DURATION is the captured cycle count; T0/T1/TC are lane-summed
    (T0+T1 == DURATION * lanes), which standard single-trace SAIF
    consumers read as lanes==1.  One NET entry per probed bit.
    """
    lines = [
        "(SAIFILE",
        '  (SAIFVERSION "2.0")',
        '  (DIRECTION "backward")',
        f'  (DESIGN "{design}")',
        "  (TIMESCALE 1 ns)",
        f"  (DURATION {acc.cycles})",
        f"  (LANES {acc.batch})",
        f"  (INSTANCE {design}",
        "    (NET",
    ]
    for key, (t0, t1, tc) in acc.per_bit().items():
        lines.append(f"      ({_saif_escape(key)} (T0 {t0}) (T1 {t1}) (TC {tc}))")
    lines += ["    )", "  )", ")", ""]
    with open(path, "w", encoding="ascii") as f:
        f.write("\n".join(lines))
    return path


def _tokenize_saif(text: str) -> list[str]:
    tokens: list[str] = []
    cur: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            cur.append(text[i : i + 2])
            i += 2
            continue
        if ch in "()":
            if cur:
                tokens.append("".join(cur))
                cur = []
            tokens.append(ch)
        elif ch.isspace():
            if cur:
                tokens.append("".join(cur))
                cur = []
        else:
            cur.append(ch)
        i += 1
    if cur:
        tokens.append("".join(cur))
    return tokens


def _parse_sexpr(tokens: list[str], pos: int = 0):
    if tokens[pos] != "(":
        return tokens[pos], pos + 1
    out: list = []
    pos += 1
    while pos < len(tokens) and tokens[pos] != ")":
        node, pos = _parse_sexpr(tokens, pos)
        out.append(node)
    if pos >= len(tokens):
        raise ValueError("SAIF: unbalanced parentheses")
    return out, pos + 1


def read_saif(path: str) -> dict:
    """Parse a SAIF file written by :func:`write_saif` (validation path).

    Returns ``{"duration": int, "lanes": int, "nets": {name: {"T0","T1","TC"}}}``
    and raises :class:`ValueError` on malformed input or inconsistent
    counts (every net must satisfy T0+T1 == duration*lanes).
    """
    with open(path, encoding="ascii") as f:
        tree, _ = _parse_sexpr(_tokenize_saif(f.read()))
    if not isinstance(tree, list) or not tree or tree[0] != "SAIFILE":
        raise ValueError("SAIF: missing SAIFILE root")

    duration = lanes = None
    nets: dict[str, dict[str, int]] = {}

    def walk(node) -> None:
        nonlocal duration, lanes
        if not isinstance(node, list) or not node:
            return
        head = node[0]
        if head == "DURATION" and len(node) >= 2:
            duration = int(node[1])
        elif head == "LANES" and len(node) >= 2:
            lanes = int(node[1])
        elif head == "NET":
            for entry in node[1:]:
                if not isinstance(entry, list) or not entry:
                    continue
                name = _saif_unescape(str(entry[0]))
                counts = {"T0": 0, "T1": 0, "TC": 0}
                for pair in entry[1:]:
                    if isinstance(pair, list) and len(pair) == 2 and pair[0] in counts:
                        counts[pair[0]] = int(pair[1])
                nets[name] = counts
        else:
            for child in node[1:]:
                walk(child)

    walk(tree)
    if duration is None:
        raise ValueError("SAIF: missing DURATION")
    lanes = 1 if lanes is None else lanes
    for name, counts in nets.items():
        if counts["T0"] + counts["T1"] != duration * lanes:
            raise ValueError(
                f"SAIF: net {name!r} T0+T1={counts['T0'] + counts['T1']} != "
                f"duration*lanes={duration * lanes}"
            )
        if duration and counts["TC"] > max(duration - 1, 0) * lanes:
            raise ValueError(f"SAIF: net {name!r} TC exceeds the transition bound")
    return {"duration": duration, "lanes": lanes, "nets": nets}


def format_hot_nets(rows: list[Mapping]) -> str:
    """Render a hot-net Top-N table (``gem-perf show`` / ``gem-probe``)."""
    if not rows:
        return "  (no activity data)"
    header = f"  {'net':<28} {'kind':<9} {'width':>5} {'toggles':>12} {'rate':>9}"
    lines = [header, "  " + "-" * (len(header) - 2)]
    for r in rows:
        lines.append(
            f"  {str(r.get('net', '?')):<28} {str(r.get('kind', '?')):<9} "
            f"{int(r.get('width', 0)):>5} {int(r.get('toggles', 0)):>12} "
            f"{float(r.get('rate', 0.0)):>9.4f}"
        )
    return "\n".join(lines)
