"""Per-run :class:`RunReport` and the perf-regression gate.

Every measured execution — ``gem-run`` (plain or supervised),
:func:`repro.harness.runner.run_resilient`, and the benchmark harness —
can write one JSON ``RunReport``: what ran (design/workload/batch/engine
mode), how fast (wall seconds, cycles/s, lane-cycles/s), the work
counters and phase timers behind the rates, a full metric-registry
snapshot, and the environment that produced the numbers (python/numpy
versions, platform, CPU count).  Reports are the currency of ``gem-perf``:

* ``gem-perf show report.json`` renders one;
* ``gem-perf diff a.json b.json`` compares two field by field;
* ``gem-perf compare report.json BENCH_cycle.json`` matches the report
  against the benchmark history rows (same design + engine mode + batch)
  and flags throughput regressions beyond a configurable threshold —
  warn-only by default, a hard gate with ``--strict``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import asdict, dataclass, field
from typing import Mapping

from repro.obs.metrics import REGISTRY, MetricsRegistry

SCHEMA_VERSION = 1

#: throughput fields the regression gate compares (higher is better)
RATE_FIELDS = ("cycles_per_s", "lane_cycles_per_s")


def environment_info() -> dict:
    """The reproducibility context a perf number is meaningless without."""
    import numpy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "cpu_count": os.cpu_count(),
    }


@dataclass
class RunReport:
    """One run's telemetry snapshot (see module docstring)."""

    design: str
    workload: str
    batch: int
    engine_mode: str
    cycles: int
    elapsed_s: float
    cycles_per_s: float
    lane_cycles_per_s: float
    #: CycleCounters totals (dataclass fields as a dict)
    counters: dict = field(default_factory=dict)
    #: inject/gather/fold/commit wall seconds (zeros unless profiled/traced)
    phase_times: dict = field(default_factory=dict)
    #: metric-registry snapshot at report time
    metrics: dict = field(default_factory=dict)
    environment: dict = field(default_factory=environment_info)
    #: run-shape extras (supervised stats, trace path, CLI argv, ...)
    extras: dict = field(default_factory=dict)
    kind: str = "gem-run"
    schema: int = SCHEMA_VERSION
    created_unix: float = 0.0

    def to_json(self) -> dict:
        return asdict(self)


def build_run_report(
    *,
    design: str,
    workload: str,
    batch: int,
    engine_mode: str,
    cycles: int,
    elapsed_s: float,
    counters: Mapping[str, float] | None = None,
    phase_times: Mapping[str, float] | None = None,
    registry: MetricsRegistry | None = REGISTRY,
    extras: Mapping[str, object] | None = None,
    kind: str = "gem-run",
    backend: str | None = None,
    lane_words: int | None = None,
) -> RunReport:
    """Assemble a report from raw measurements plus the live registry.

    ``backend``/``lane_words`` record the execution backend and the
    lane-plane word count K in ``environment`` (and as the
    ``gem_backend_info`` metric) so ``gem-perf diff``/``compare`` can
    tell a numba run from a numpy run of the same design.
    """
    elapsed = max(elapsed_s, 1e-9)
    environment = environment_info()
    if backend is not None:
        environment["backend"] = backend
    if lane_words is not None:
        environment["lane_words"] = int(lane_words)
    if backend is not None and registry is not None:
        registry.gauge(
            "gem_backend_info",
            help="active execution backend (value is lane-plane words K)",
            labels={"backend": backend},
        ).set(float(lane_words if lane_words is not None else 1))
    return RunReport(
        design=design,
        workload=workload,
        batch=batch,
        engine_mode=engine_mode,
        cycles=cycles,
        elapsed_s=elapsed_s,
        cycles_per_s=cycles / elapsed,
        lane_cycles_per_s=cycles * max(1, batch) / elapsed,
        counters=dict(counters or {}),
        phase_times=dict(phase_times or {}),
        metrics=registry.snapshot() if registry is not None else {},
        environment=environment,
        extras=dict(extras or {}),
        kind=kind,
        created_unix=time.time(),
    )


def write_report(report: RunReport, path: str) -> None:
    tmp = f"{path}.tmp"
    with open(tmp, "w") as f:
        json.dump(report.to_json(), f, indent=2, sort_keys=True)
    os.replace(tmp, path)


def load_report(path: str) -> RunReport:
    """Read a report, tolerating unknown keys from newer writers."""
    with open(path) as f:
        raw = json.load(f)
    if not isinstance(raw, dict):
        raise ValueError(f"{path}: not a RunReport (expected a JSON object)")
    known = {f.name for f in RunReport.__dataclass_fields__.values()}  # type: ignore[attr-defined]
    kwargs = {k: v for k, v in raw.items() if k in known}
    extras = dict(kwargs.get("extras") or {})
    extras.update({k: v for k, v in raw.items() if k not in known})
    kwargs["extras"] = extras
    missing = {"design", "workload", "batch", "engine_mode", "cycles"} - set(kwargs)
    if missing:
        raise ValueError(f"{path}: not a RunReport (missing {sorted(missing)})")
    return RunReport(**kwargs)


def format_report(report: RunReport) -> str:
    """Human rendering for ``gem-perf show``."""
    lines = [
        f"{report.kind}: {report.design}/{report.workload} "
        f"({report.engine_mode} engine, batch {report.batch})",
        f"  cycles          {report.cycles}",
        f"  wall            {report.elapsed_s:.3f}s",
        f"  cycles/s        {report.cycles_per_s:,.0f}",
        f"  lane-cycles/s   {report.lane_cycles_per_s:,.0f}",
    ]
    if any(v > 0 for v in report.phase_times.values()):
        total = sum(report.phase_times.values()) or 1e-9
        split = "  ".join(
            f"{k} {v / total:.0%}" for k, v in report.phase_times.items()
        )
        lines.append(f"  phase split     {split}")
    if report.counters:
        cycles = max(1, int(report.counters.get("cycles", report.cycles) or 1))
        for key in ("array_ops", "fused_array_ops", "fold_steps", "global_writes"):
            if key in report.counters:
                lines.append(
                    f"  {key + '/cycle':15s} {report.counters[key] / cycles:,.1f}"
                )
    env = report.environment
    if env:
        lines.append(
            f"  environment     python {env.get('python', '?')}, "
            f"numpy {env.get('numpy', '?')}, {env.get('platform', '?')}"
        )
        if "backend" in env:
            lines.append(
                f"  backend         {env['backend']} "
                f"(lane words {env.get('lane_words', 1)})"
            )
    activity = report.extras.get("activity")
    for key, value in sorted(report.extras.items()):
        if key == "activity":
            continue  # rendered as a table below
        lines.append(f"  {key:15s} {value}")
    if isinstance(activity, Mapping) and activity.get("hot_nets"):
        from repro.obs.activity import format_hot_nets

        lines.append(
            f"  hot nets        top {len(activity['hot_nets'])} by toggles over "
            f"{activity.get('cycles', '?')} cycles x "
            f"{activity.get('lanes', report.batch)} lane(s)"
        )
        lines.append(format_hot_nets(activity["hot_nets"]))
    return "\n".join(lines)


@dataclass
class FieldDiff:
    """One numeric field's before/after in a report diff."""

    name: str
    a: float
    b: float

    @property
    def ratio(self) -> float:
        return self.b / self.a if self.a else float("inf")

    def render(self) -> str:
        pct = (self.ratio - 1.0) * 100.0 if self.a else float("inf")
        return f"{self.name:24s} {self.a:>14,.2f} -> {self.b:>14,.2f}  ({pct:+.1f}%)"


def diff_reports(a: RunReport, b: RunReport) -> list[FieldDiff]:
    """Field-by-field numeric comparison (rates, then shared counters)."""
    diffs = [
        FieldDiff("elapsed_s", a.elapsed_s, b.elapsed_s),
        FieldDiff("cycles_per_s", a.cycles_per_s, b.cycles_per_s),
        FieldDiff("lane_cycles_per_s", a.lane_cycles_per_s, b.lane_cycles_per_s),
    ]
    for key in sorted(set(a.counters) & set(b.counters)):
        va, vb = a.counters[key], b.counters[key]
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)) and va != vb:
            diffs.append(FieldDiff(f"counters.{key}", va, vb))
    for key in sorted(set(a.phase_times) & set(b.phase_times)):
        va, vb = a.phase_times[key], b.phase_times[key]
        if va or vb:
            diffs.append(FieldDiff(f"phase.{key}", va, vb))
    return diffs


# -- the BENCH_*.json regression gate -----------------------------------------


@dataclass
class BenchComparison:
    """One report-vs-baseline rate comparison."""

    metric: str
    baseline: float
    current: float
    threshold: float
    source: str

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")

    @property
    def regressed(self) -> bool:
        return self.baseline > 0 and self.ratio < (1.0 - self.threshold)

    def render(self) -> str:
        verdict = "REGRESSION" if self.regressed else "ok"
        return (
            f"{self.metric:20s} baseline {self.baseline:>14,.0f}  "
            f"current {self.current:>14,.0f}  ({self.ratio:6.2f}x)  [{verdict}]"
        )


def _bench_rows(bench: dict) -> list[dict]:
    """Both ``BENCH_cycle.json`` and ``BENCH_batch.json`` carry their
    measurements as a ``rows`` list of ``measure_batch_throughput``
    dicts; tolerate a bare list too."""
    if isinstance(bench, list):
        return [r for r in bench if isinstance(r, dict)]
    rows = bench.get("rows", [])
    return [r for r in rows if isinstance(r, dict)]


def compare_to_bench(
    report: RunReport,
    bench: dict,
    *,
    threshold: float = 0.10,
    source: str = "bench",
    config: str | None = None,
) -> tuple[list[BenchComparison], list[str]]:
    """Match ``report`` against the benchmark-history rows.

    Rows are matched on (design, engine_mode, batch) — and on the
    execution backend when both the report environment and the row carry
    one, so numba rows never gate a numpy run.  Likewise for the compile
    ``config`` label (``default``/``tuned``, docs/TUNING.md): default and
    tuned rows for the same design coexist in one bench file and a run is
    gated only against rows with its own label.  ``config`` overrides the
    report's label to diff explicitly against the other side.  Each
    throughput field present on both sides becomes one
    :class:`BenchComparison`.  Returns ``(comparisons, notes)`` — notes
    explain silent non-matches so a gate never passes just because
    nothing lined up.
    """
    backend = report.environment.get("backend") if report.environment else None
    config_label = config or (report.extras or {}).get("config")
    matches = [
        row
        for row in _bench_rows(bench)
        if row.get("design") == report.design
        and row.get("engine_mode", report.engine_mode) == report.engine_mode
        and int(row.get("batch", report.batch)) == report.batch
        and (
            backend is None
            or row.get("backend") is None
            or row.get("backend") == backend
        )
        and (
            config_label is None
            or row.get("config") is None
            or row.get("config") == config_label
        )
    ]
    notes: list[str] = []
    if not matches:
        label = f"/{backend}" if backend else ""
        if config_label:
            label += f"/{config_label}"
        notes.append(
            f"{source}: no baseline row for {report.design}/"
            f"{report.engine_mode}/batch={report.batch}{label}"
        )
        return [], notes
    comparisons: list[BenchComparison] = []
    for row in matches:
        for metric in RATE_FIELDS:
            baseline = row.get(metric)
            current = getattr(report, metric, None)
            if isinstance(baseline, (int, float)) and baseline > 0 and current:
                comparisons.append(
                    BenchComparison(
                        metric=metric,
                        baseline=float(baseline),
                        current=float(current),
                        threshold=threshold,
                        source=source,
                    )
                )
    if not comparisons:
        notes.append(f"{source}: matching rows carry no comparable rate fields")
    return comparisons, notes
