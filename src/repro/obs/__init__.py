"""repro.obs — the unified telemetry layer (tracing, metrics, reports,
signal probes).

Cooperating pieces, all dependency-free and import-cycle-safe (the rest
of the package imports ``repro.obs``, never the other way round — the
probe layer only *receives* core objects, it never imports them):

* :mod:`repro.obs.trace` — a low-overhead span tracer emitting Chrome
  trace-event JSON (load it at https://ui.perfetto.dev).  Disabled by
  default: every instrumented hot path guards on ``TRACER.enabled`` so
  the fused cycle loop pays one attribute check when tracing is off.
* :mod:`repro.obs.metrics` — a process-wide metrics registry (counters,
  gauges, histograms) with Prometheus-text and JSON exporters.  The
  compile cache, decode/fusion caches, supervisor, checkpoint manager
  and fault campaigns all publish here.
* :mod:`repro.obs.report` — the per-run :class:`RunReport` (rates,
  counters, metric snapshot, environment) plus report diffing and the
  ``BENCH_*.json`` regression gate behind ``gem-perf``.
* :mod:`repro.obs.probe` — signal-level taps: named nets resolved to
  engine state slots, captured per cycle as packed lane planes into a
  bounded waveform ring (``gem-run --vcd-out``) and activity sinks.
* :mod:`repro.obs.activity` — SAIF-style T0/T1/TC toggle counters over
  tap streams, SAIF export, and the hot-net Top-N table.

See docs/OBSERVABILITY.md for the full tour and the metric-name table.
"""

from repro.obs.activity import (
    ActivityAccumulator,
    format_hot_nets,
    hot_nets,
    publish_net_activity,
    read_saif,
    write_saif,
)
from repro.obs.metrics import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.probe import (
    ProbePlan,
    ProbeTap,
    SimrefProbe,
    WaveRing,
    build_probe_plan,
    dump_divergence_waves,
    list_nets,
    probe_catalog,
)
from repro.obs.report import (
    RunReport,
    build_run_report,
    compare_to_bench,
    diff_reports,
    environment_info,
    format_report,
    load_report,
    write_report,
)
from repro.obs.trace import TRACER, Tracer, validate_trace

__all__ = [
    "ActivityAccumulator",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProbePlan",
    "ProbeTap",
    "REGISTRY",
    "RunReport",
    "SimrefProbe",
    "TRACER",
    "Tracer",
    "WaveRing",
    "build_probe_plan",
    "build_run_report",
    "compare_to_bench",
    "diff_reports",
    "dump_divergence_waves",
    "environment_info",
    "format_hot_nets",
    "format_report",
    "hot_nets",
    "list_nets",
    "load_report",
    "probe_catalog",
    "publish_net_activity",
    "read_saif",
    "validate_trace",
    "write_report",
    "write_saif",
]
