"""repro.obs — the unified telemetry layer (tracing, metrics, reports).

Three cooperating pieces, all dependency-free and import-cycle-safe (the
rest of the package imports ``repro.obs``, never the other way round):

* :mod:`repro.obs.trace` — a low-overhead span tracer emitting Chrome
  trace-event JSON (load it at https://ui.perfetto.dev).  Disabled by
  default: every instrumented hot path guards on ``TRACER.enabled`` so
  the fused cycle loop pays one attribute check when tracing is off.
* :mod:`repro.obs.metrics` — a process-wide metrics registry (counters,
  gauges, histograms) with Prometheus-text and JSON exporters.  The
  compile cache, decode/fusion caches, supervisor, checkpoint manager
  and fault campaigns all publish here.
* :mod:`repro.obs.report` — the per-run :class:`RunReport` (rates,
  counters, metric snapshot, environment) plus report diffing and the
  ``BENCH_*.json`` regression gate behind ``gem-perf``.

See docs/OBSERVABILITY.md for the full tour and the metric-name table.
"""

from repro.obs.metrics import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import (
    RunReport,
    build_run_report,
    compare_to_bench,
    diff_reports,
    environment_info,
    format_report,
    load_report,
    write_report,
)
from repro.obs.trace import TRACER, Tracer, validate_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "RunReport",
    "TRACER",
    "Tracer",
    "build_run_report",
    "compare_to_bench",
    "diff_reports",
    "environment_info",
    "format_report",
    "load_report",
    "validate_trace",
    "write_report",
]
