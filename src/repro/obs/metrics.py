"""Process-wide metrics registry: counters, gauges, histograms.

The registry absorbs what used to be scattered ad-hoc accounting —
``CycleCounters`` fields, the interpreter's ``phase_times``, the
decode/fusion/compile cache hit counters, supervisor and checkpoint
events, fault-campaign outcomes — into *named* metrics one exporter can
walk.  Two export formats:

* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` preamble, ``name{labels} value``
  samples), ready for a node scrape or a file sink
  (``gem-run --metrics-out``);
* :meth:`MetricsRegistry.to_json` — a nested snapshot for
  :class:`repro.obs.report.RunReport`.

Conventions (the full name table lives in docs/OBSERVABILITY.md):
every metric is prefixed ``gem_``; counters end in ``_total``; durations
are seconds; labels are sparse and low-cardinality (``kind=state``,
``phase=fold``).  Metric mutation is lock-protected — none of the
instrumented call sites sit inside the fused per-cycle hot loop, so the
lock cost is irrelevant to throughput.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Iterable, Mapping

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: default histogram buckets — tuned for sub-second phase/IO durations
DEFAULT_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, math.inf)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _label_key(labels: Mapping[str, str] | None) -> tuple:
    if not labels:
        return ()
    for k in labels:
        if not _LABEL_RE.match(k):
            raise ValueError(f"invalid label name {k!r}")
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: tuple) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


class _Metric:
    """Common identity plumbing of one (name, labels) time series."""

    kind = "untyped"

    def __init__(self, name: str, labels: tuple, help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._lock = threading.Lock()

    @property
    def full_name(self) -> str:
        return self.name + _render_labels(self.labels)


class Counter(_Metric):
    """Monotonically increasing count (events, bytes, cache hits)."""

    kind = "counter"

    def __init__(self, name: str, labels: tuple = (), help: str = "") -> None:
        super().__init__(name, labels, help)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0


class Gauge(_Metric):
    """A value that goes up and down (rates, sizes, last-run stats)."""

    kind = "gauge"

    def __init__(self, name: str, labels: tuple = (), help: str = "") -> None:
        super().__init__(name, labels, help)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0


class Histogram(_Metric):
    """Cumulative-bucket histogram of observed values (durations)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: tuple = (),
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, labels, help)
        edges = sorted(set(float(b) for b in buckets))
        if not edges or edges[-1] != math.inf:
            edges.append(math.inf)
        self.buckets = tuple(edges)
        self._counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, edge in enumerate(self.buckets):
                if value <= edge:
                    self._counts[i] += 1
                    break

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper edge, cumulative count) pairs — the ``_bucket`` series."""
        out, running = [], 0
        for edge, n in zip(self.buckets, self._counts):
            running += n
            out.append((edge, running))
        return out

    def _reset(self) -> None:
        self._counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0


class MetricsRegistry:
    """Name → metric store with get-or-create semantics and exporters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, tuple], _Metric] = {}

    def _get_or_create(self, cls, name, labels, help, **kwargs) -> _Metric:
        key = (_check_name(name), _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(key[0], key[1], help=help, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested {cls.kind}"
                )
            return metric

    def counter(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None
    ) -> Counter:
        return self._get_or_create(Counter, name, labels, help)  # type: ignore[return-value]

    def gauge(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None
    ) -> Gauge:
        return self._get_or_create(Gauge, name, labels, help)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(  # type: ignore[return-value]
            Histogram, name, labels, help, buckets=buckets
        )

    def metrics(self) -> list[_Metric]:
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def reset(self) -> None:
        """Zero every registered metric (identity-preserving — cached
        references held by instrumented modules keep working)."""
        for metric in self.metrics():
            metric._reset()

    def clear(self) -> None:
        """Drop every registration (tests only: any module-level metric
        reference becomes a dangling, unexported series)."""
        with self._lock:
            self._metrics.clear()

    # -- ingestion helpers ----------------------------------------------------

    def set_gauges(
        self, values: Mapping[str, float], prefix: str = "", help: str = ""
    ) -> None:
        """Bulk-set one gauge per mapping entry (``prefix + key``)."""
        for key, value in values.items():
            self.gauge(prefix + key, help=help).set(float(value))

    def publish_cycle_counters(self, counters, prefix: str = "gem_interp_") -> None:
        """Mirror a :class:`~repro.core.interpreter.CycleCounters` into
        gauges (absolute totals; per-cycle derivations stay in reports)."""
        from dataclasses import asdict

        self.set_gauges(
            asdict(counters), prefix=prefix, help="CycleCounters field (run total)"
        )

    def publish_phase_times(
        self, phase_times: Mapping[str, float], name: str = "gem_phase_seconds_total"
    ) -> None:
        """Accumulate per-phase wall seconds into labelled counters."""
        for phase, seconds in phase_times.items():
            if seconds > 0:
                self.counter(
                    name,
                    help="wall seconds spent per interpreter phase",
                    labels={"phase": phase},
                ).inc(seconds)

    # -- export ---------------------------------------------------------------

    def snapshot(self) -> dict:
        """Flat ``full_name -> value`` (histograms: count/sum/buckets)."""
        out: dict[str, object] = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                out[metric.full_name] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "buckets": {
                        ("+Inf" if math.isinf(e) else repr(e)): c
                        for e, c in metric.cumulative()
                    },
                }
            else:
                out[metric.full_name] = metric.value  # type: ignore[union-attr]
        return out

    def to_json(self) -> dict:
        return {"metrics": self.snapshot()}

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        seen_header: set[str] = set()
        for metric in self.metrics():
            if metric.name not in seen_header:
                seen_header.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                for edge, cum in metric.cumulative():
                    le = "+Inf" if math.isinf(edge) else repr(edge)
                    key = metric.labels + (("le", le),)
                    lines.append(
                        f"{metric.name}_bucket{_render_labels(key)} {cum}"
                    )
                lbl = _render_labels(metric.labels)
                lines.append(f"{metric.name}_sum{lbl} {metric.sum}")
                lines.append(f"{metric.name}_count{lbl} {metric.count}")
            else:
                value = metric.value  # type: ignore[union-attr]
                rendered = repr(value) if value % 1 else str(int(value))
                lines.append(f"{metric.full_name} {rendered}")
        return "\n".join(lines) + "\n"


#: The process-wide registry every instrumented module publishes into.
REGISTRY = MetricsRegistry()


def publish_fuzz_iteration(
    profile: str, diverged: bool, coverage_size: int, shrink_checks: int = 0
) -> None:
    """Publish one differential-fuzz iteration (``repro.fuzz`` calls this
    so fuzz campaigns show up in the same Prometheus exposition as runs).
    """
    REGISTRY.counter(
        "gem_fuzz_iterations_total",
        help="differential fuzz iterations by shape profile",
        labels={"profile": profile},
    ).inc()
    if diverged:
        REGISTRY.counter(
            "gem_fuzz_divergences_total",
            help="cross-engine divergences found by the fuzzer",
            labels={"profile": profile},
        ).inc()
    if shrink_checks:
        REGISTRY.counter(
            "gem_fuzz_shrink_checks_total",
            help="oracle runs spent inside the shrinker",
        ).inc(shrink_checks)
    REGISTRY.gauge(
        "gem_fuzz_coverage_features",
        help="distinct structural coverage features seen this campaign",
    ).set(float(coverage_size))
