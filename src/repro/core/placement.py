"""Iterative timing-driven bit placement (paper §III-D, Algorithm 2, Fig. 6).

Each partition's AIG is mapped onto a sequence of boomerang layers:

* Nodes are placed at the tree level matching their *local* logic level
  (depth over the not-yet-computed subgraph; values already in block state
  count as level 0).
* Placing a node at position ``(l, i)`` recursively claims its fan-in: an
  available value (source, constant, or a node computed by an earlier
  layer) is **routed** up from a leaf through a chain of bypass positions
  (``OR.B = 1`` — Fig. 6's dashed lines); a not-yet-computed node is
  recursively placed at the child position, **duplicating** it if another
  copy already sits elsewhere in this layer (tree positions feed only their
  parent).
* Within a level, the most timing-critical nodes (largest reverse depth
  over the remaining subgraph, Algorithm 2 lines 7–8) are placed first;
  leftover capacity is filled by *stretching* shallower nodes upward.
* After a layer is full, every newly computed value still needed (by a
  later layer or as an endpoint root) is written back to a fresh state
  slot; the layer repeats on the remaining subgraph.

A partition is **mappable** iff its state demand — constant slot + sources
+ written-back values — fits the core's state (8192 bits).  This predicate
is exactly what Algorithm 1 (:mod:`repro.core.merging`) probes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

import numpy as np

from repro.core.boomerang import BoomerangConfig, Layer
from repro.core.eaig import EAIG, NodeKind, lit_neg, lit_node
from repro.core.partition import PartitionSpec
from repro.errors import UnmappableError

__all__ = [
    "PlacedPartition",
    "RefineConfig",
    "UnmappableError",
    "place_partition",
    "placement_cost",
]


@dataclass(frozen=True)
class RefineConfig:
    """Simulated-annealing refinement of boomerang placement.

    ``iterations == 0`` (the default) disables refinement entirely and keeps
    :func:`place_partition` byte-identical to the unrefined pass.  All entropy
    comes from ``seed`` plus the partition's coordinates — no wall clock, no
    ``hash()`` — so the same seed reproduces the same placement bit-for-bit
    across processes.

    Each SA move perturbs the placement *inputs* rather than the placement
    itself: a per-node jitter added to the Algorithm 2 criticality key
    reorders which nodes claim tree positions first, and a per-node level
    promotion places a node one tree level deeper than its local logic level
    (pre-empting the stretch phase).  The full placement pass re-runs under
    the perturbation; candidates are accepted on a layer-count +
    writeback-traffic cost (see :func:`placement_cost`).
    """

    iterations: int = 0
    seed: int = 0
    #: initial temperature in layer-count units (wb traffic is fractional)
    initial_temp: float = 0.5
    cooling: float = 0.9
    #: magnitude of the uniform criticality jitter per perturbed node
    jitter: float = 1.5
    #: probability a move toggles a level promotion instead of jittering
    promote_prob: float = 0.25
    #: fraction of the partition's nodes perturbed per move
    move_frac: float = 0.125


def placement_cost(placed: PlacedPartition) -> tuple[int, int, int]:
    """(layers, writebacks, slots) — lexicographic placement quality.

    Layer count dominates (each layer is a device-wide sync per cycle,
    paper §III-D); writeback traffic breaks ties (each writeback is a
    state-store the fused executor must scatter); slot footprint last.
    """
    writebacks = sum(len(wb) for layer in placed.layers for wb in layer.writebacks)
    return (len(placed.layers), writebacks, placed.num_slots)


def _scalar_cost(cost: tuple[int, int, int], config: BoomerangConfig) -> float:
    layers, writebacks, _slots = cost
    return layers + writebacks / (4.0 * config.width)


@dataclass
class PlacedPartition:
    """A partition mapped onto boomerang layers plus its state layout."""

    spec: PartitionSpec
    config: BoomerangConfig
    layers: list[Layer]
    #: node -> state slot (sources and written-back values; node 0 -> 0)
    slot_of: dict[int, int]
    num_slots: int

    def slot_and_invert(self, literal: int) -> tuple[int, bool]:
        """Locate a literal's value in block state."""
        node = lit_node(literal)
        slot = 0 if node == 0 else self.slot_of[node]
        return slot, lit_neg(literal)

    def stats(self) -> dict:
        occupancy = sum(int((layer.perm >= 0).sum()) for layer in self.layers)
        return {
            "layers": len(self.layers),
            "slots": self.num_slots,
            "nodes": len(self.spec.nodes),
            "leaf_bits_used": occupancy,
        }


# Content tags for occupied tree positions.
_AND = 0
_ROUTE = 1
_LEAF = 2


class _LayerBuilder:
    """Occupancy-tracked construction of one boomerang layer."""

    def __init__(self, config: BoomerangConfig) -> None:
        self.config = config
        L = config.width_log2
        self.num_levels = L
        self.occupied: list[list[bool]] = [
            [False] * (config.width >> l) for l in range(L + 1)
        ]
        #: free positions in the subtree rooted at each position
        self.freecnt: list[list[int]] = [
            [(1 << (l + 1)) - 1] * (config.width >> l) for l in range(L + 1)
        ]
        self.free_at_level: list[int] = [config.width >> l for l in range(L + 1)]
        self.cursor: list[int] = [0] * (L + 1)
        #: (level, index) -> (tag, payload); payload: _AND -> (node, na, nb),
        #: _LEAF -> slot
        self.content: dict[tuple[int, int], tuple[int, object]] = {}
        self.writeback_slots: list[tuple[int, int, int]] = []  # (level, pos, slot)
        self.mapped: dict[int, tuple[int, int]] = {}  # node -> first position

    # -- occupancy ---------------------------------------------------------

    def _occupy(self, level: int, i: int, tag: int, payload, journal: list) -> None:
        self.occupied[level][i] = True
        self.free_at_level[level] -= 1
        self.content[(level, i)] = (tag, payload)
        idx = i
        for m in range(level, self.num_levels + 1):
            self.freecnt[m][idx] -= 1
            idx >>= 1
        journal.append((level, i))

    def _rollback(self, journal: list, mapped_added: list[int]) -> None:
        for level, i in journal:
            self.occupied[level][i] = False
            self.free_at_level[level] += 1
            del self.content[(level, i)]
            idx = i
            for m in range(level, self.num_levels + 1):
                self.freecnt[m][idx] += 1
                idx >>= 1
        for node in mapped_added:
            del self.mapped[node]

    # -- mapping primitives --------------------------------------------------

    def _route(self, slot: int, level: int, i: int, journal: list) -> bool:
        """Bypass chain carrying a state slot from a leaf to (level, i)."""
        m, j = level, i
        chain: list[tuple[int, int]] = []
        while m > 0:
            if self.occupied[m][j]:
                return False
            chain.append((m, j))
            j *= 2
            m -= 1
        if self.occupied[0][j]:
            return False
        for mm, jj in chain:
            self._occupy(mm, jj, _ROUTE, None, journal)
        self._occupy(0, j, _LEAF, slot, journal)
        return True

    def _map_rec(
        self,
        eaig: EAIG,
        n: int,
        level: int,
        i: int,
        remaining: set[int],
        slot_of: dict[int, int],
        need: dict[int, int],
        journal: list,
        mapped_added: list[int],
    ) -> bool:
        if self.occupied[level][i] or level < 1:
            return False
        fa = eaig.fanin0[n]
        fb = eaig.fanin1[n]
        self._occupy(level, i, _AND, (n, fa & 1, fb & 1), journal)
        if n not in self.mapped:
            self.mapped[n] = (level, i)
            mapped_added.append(n)
        freecnt_child = self.freecnt[level - 1]
        for child_i, fanin in ((2 * i, fa), (2 * i + 1, fb)):
            f = fanin >> 1
            if f == 0 or f in slot_of:
                # Route needs one position per level down to the leaf.
                if freecnt_child[child_i] < level:
                    return False
                slot = 0 if f == 0 else slot_of[f]
                if not self._route(slot, level - 1, child_i, journal):
                    return False
            elif f in remaining:
                # Fail fast when the child subtree lacks capacity for the
                # (duplicate-counting) cone of f.
                if freecnt_child[child_i] < need[f]:
                    return False
                if not self._map_rec(
                    eaig, f, level - 1, child_i, remaining, slot_of, need, journal, mapped_added
                ):
                    return False
            else:  # pragma: no cover - guarded by PartitionPlan.validate
                raise AssertionError(f"node {n}: fanin {f} neither available nor local")
        return True

    def try_map_node(
        self,
        eaig: EAIG,
        n: int,
        level: int,
        remaining: set[int],
        slot_of: dict[int, int],
        need: dict[int, int],
        max_attempts: int = 8,
    ) -> bool:
        """Place ``n`` at tree level ``level``; first-fit with capacity filter."""
        size = self.config.width >> level
        min_need = need[n]
        i = self.cursor[level]
        attempts = 0
        scanned = 0
        occupied = self.occupied[level]
        freecnt = self.freecnt[level]
        while scanned < size and attempts < max_attempts:
            if i >= size:
                i = 0
            if not occupied[i] and freecnt[i] >= min_need:
                journal: list = []
                mapped_added: list[int] = []
                if self._map_rec(eaig, n, level, i, remaining, slot_of, need, journal, mapped_added):
                    self.cursor[level] = i + 1
                    return True
                self._rollback(journal, mapped_added)
                attempts += 1
            i += 1
            scanned += 1
        return False

    # -- finishing -------------------------------------------------------------

    def add_writeback(self, level: int, pos: int, slot: int) -> None:
        self.writeback_slots.append((level, pos, slot))

    def compile(self) -> Layer:
        layer = Layer.empty(self.config)
        for (level, i), (tag, payload) in self.content.items():
            if level == 0:
                if tag == _LEAF:
                    layer.perm[i] = payload
                continue
            step = level - 1
            if tag == _AND:
                _, na, nb = payload
                layer.xor_a[step][i] = na
                layer.xor_b[step][i] = nb
                layer.or_b[step][i] = False
            # _ROUTE keeps defaults: or_b=1, xor_a=0 (pass-through of a).
        for level, pos, slot in self.writeback_slots:
            layer.writebacks[level - 1].append((pos, slot))
        return layer


def _place_once(
    eaig: EAIG,
    spec: PartitionSpec,
    config: BoomerangConfig,
    timing_driven: bool,
    bias: dict[int, float] | None = None,
    promote: dict[int, int] | None = None,
) -> PlacedPartition:
    """One full Algorithm 2 pass, optionally under an SA perturbation.

    ``bias`` jitters the criticality sort key per node; ``promote`` lifts a
    node's placement level above its local logic level (capped at the tree
    height).  With both empty/None the pass is byte-identical to the
    unperturbed placement.
    """
    slot_of: dict[int, int] = {}
    next_slot = 1  # slot 0 is the constant-0 slot
    for s in spec.sources:
        slot_of[s] = next_slot
        next_slot += 1
    if next_slot > config.state_size:
        raise UnmappableError(
            f"partition s{spec.stage}p{spec.index}: {len(spec.sources)} sources "
            f"exceed state size {config.state_size}"
        )

    remaining = set(spec.nodes)
    consumers: dict[int, list[int]] = {n: [] for n in spec.nodes}
    for n in spec.nodes:
        for fanin in (eaig.fanin0[n], eaig.fanin1[n]):
            f = lit_node(fanin)
            if f in consumers:
                consumers[f].append(n)
    root_nodes = {
        lit_node(r) for r in spec.root_literals() if lit_node(r) in remaining
    }

    layers: list[Layer] = []
    order = sorted(spec.nodes)  # ascending node index = topological
    while remaining:
        # Local logic level over the remaining subgraph.
        local: dict[int, int] = {}
        for n in order:
            if n not in remaining:
                continue
            best = 0
            for fanin in (eaig.fanin0[n], eaig.fanin1[n]):
                f = lit_node(fanin)
                if f in remaining:
                    lf = local[f]
                    if lf > best:
                        best = lf
            local[n] = best + 1
        # Timing criticality: reverse depth over the remaining subgraph.
        crit: dict[int, int] = {}
        if timing_driven:
            for n in reversed(order):
                if n not in remaining:
                    continue
                c = 0
                for m in consumers[n]:
                    if m in remaining:
                        cm = crit[m] + 1
                        if cm > c:
                            c = cm
                crit[n] = c
        else:
            for n in remaining:
                crit[n] = 0  # FIFO ablation: no priority

        # Duplicate-counting cone size: a lower bound on the tree positions
        # mapping each node takes (duplicates counted, routes as leaves).
        # Used to prune placement attempts that cannot possibly fit.
        need: dict[int, int] = {}
        for n in order:
            if n not in remaining:
                continue
            total = 1
            for fanin in (eaig.fanin0[n], eaig.fanin1[n]):
                f = fanin >> 1
                total += need.get(f, 1) if f in remaining else 1
            need[n] = total

        if bias:
            for n, b in bias.items():
                if n in crit:
                    crit[n] = crit[n] + b

        builder = _LayerBuilder(config)
        by_level: dict[int, list[int]] = {}
        for n in remaining:
            lvl = local[n]
            if promote and lvl <= config.width_log2:
                lvl = min(config.width_log2, lvl + promote.get(n, 0))
            by_level.setdefault(lvl, []).append(n)
        max_consecutive_failures = 20
        for level in range(1, config.width_log2 + 1):
            exact = sorted(by_level.get(level, ()), key=lambda n: -crit[n])
            failures = 0
            for n in exact:
                if builder.free_at_level[level] == 0 or failures >= max_consecutive_failures:
                    break
                if n in builder.mapped:
                    continue
                if builder.try_map_node(eaig, n, level, remaining, slot_of, need):
                    failures = 0
                else:
                    failures += 1
            # Stretch: fill leftover capacity with shallower unmapped nodes.
            if builder.free_at_level[level] > 0:
                stretch = sorted(
                    (
                        n
                        for shallower in range(1, level)
                        for n in by_level.get(shallower, ())
                        if n not in builder.mapped
                    ),
                    key=lambda n: -crit[n],
                )
                failures = 0
                for n in stretch:
                    if builder.free_at_level[level] == 0 or failures >= max_consecutive_failures:
                        break
                    if builder.try_map_node(eaig, n, level, remaining, slot_of, need):
                        failures = 0
                    else:
                        failures += 1

        if not builder.mapped:
            raise RuntimeError(
                f"partition s{spec.stage}p{spec.index}: placement made no progress"
            )
        # Write back values needed by later layers or endpoint roots.
        for n, (level, pos) in builder.mapped.items():
            needed = n in root_nodes or any(
                c in remaining and c not in builder.mapped for c in consumers[n]
            )
            if needed:
                if next_slot >= config.state_size:
                    raise UnmappableError(
                        f"partition s{spec.stage}p{spec.index}: state overflow at "
                        f"{next_slot} slots"
                    )
                slot_of[n] = next_slot
                builder.add_writeback(level, pos, next_slot)
                next_slot += 1
        layers.append(builder.compile())
        remaining -= set(builder.mapped)

    return PlacedPartition(
        spec=spec, config=config, layers=layers, slot_of=slot_of, num_slots=next_slot
    )


def _refine_rng(refine: RefineConfig, spec: PartitionSpec) -> random.Random:
    # Integer seed mixed from partition coordinates: int hashing is
    # PYTHONHASHSEED-independent, so this reproduces across processes.
    mix = (
        refine.seed * 1_000_003
        + spec.stage * 8_191
        + spec.index * 131
        + len(spec.nodes)
    )
    return random.Random(mix)


def _neighbor(
    bias: dict[int, float],
    promote: dict[int, int],
    nodes: list[int],
    rng: random.Random,
    refine: RefineConfig,
) -> tuple[dict[int, float], dict[int, int]]:
    bias = dict(bias)
    promote = dict(promote)
    moves = max(1, int(len(nodes) * refine.move_frac))
    for _ in range(moves):
        n = nodes[rng.randrange(len(nodes))]
        if rng.random() < refine.promote_prob:
            if n in promote:
                del promote[n]
            else:
                promote[n] = 1
        else:
            bias[n] = rng.uniform(-refine.jitter, refine.jitter)
    return bias, promote


def place_partition(
    eaig: EAIG,
    spec: PartitionSpec,
    config: BoomerangConfig | None = None,
    timing_driven: bool = True,
    refine: RefineConfig | None = None,
) -> PlacedPartition:
    """Algorithm 2: iterative multi-boomerang-layer mapping of one partition.

    ``timing_driven=False`` disables the criticality ordering (nodes are
    picked in index order instead) — the A1 ablation of DESIGN.md, which
    quantifies how much Algorithm 2's lines 7–8 reduce the layer count.

    ``refine`` (with ``iterations > 0``) runs a seeded simulated-annealing
    loop on top of the greedy pass: each iteration re-places the partition
    under a perturbed criticality ordering / level assignment and keeps the
    best placement seen under :func:`placement_cost`.  The result is never
    worse than the unrefined placement.
    """
    config = config or BoomerangConfig()
    best = _place_once(eaig, spec, config, timing_driven)
    if refine is None or refine.iterations <= 0:
        return best

    rng = _refine_rng(refine, spec)
    best_cost = placement_cost(best)
    cur_cost = _scalar_cost(best_cost, config)
    bias: dict[int, float] = {}
    promote: dict[int, int] = {}
    nodes = sorted(spec.nodes)
    temp = refine.initial_temp
    for _ in range(refine.iterations):
        cand_bias, cand_promote = _neighbor(bias, promote, nodes, rng, refine)
        try:
            cand = _place_once(
                eaig, spec, config, timing_driven, bias=cand_bias, promote=cand_promote
            )
        except UnmappableError:
            temp *= refine.cooling
            continue
        cand_cost = placement_cost(cand)
        cand_scalar = _scalar_cost(cand_cost, config)
        delta = cand_scalar - cur_cost
        if delta <= 0 or rng.random() < math.exp(-delta / max(temp, 1e-9)):
            bias, promote = cand_bias, cand_promote
            cur_cost = cand_scalar
            if cand_cost < best_cost:
                best, best_cost = cand, cand_cost
        temp *= refine.cooling
    return best


def is_mappable(eaig: EAIG, spec: PartitionSpec, config: BoomerangConfig | None = None) -> bool:
    """Algorithm 1's predicate: does the partition fit one core?"""
    try:
        place_partition(eaig, spec, config)
        return True
    except UnmappableError:
        return False


def naive_levelized_layers(eaig: EAIG, spec: PartitionSpec, config: BoomerangConfig | None = None) -> dict:
    """Baseline for the Fig. 3 ablation: one permutation + sync per logic
    level (classic levelized GPU simulation) instead of boomerang layers.

    Returns the same work metrics as :func:`repro.core.boomerang.count_layer_work`
    so the ablation can compare permutation/synchronization counts directly.
    """
    config = config or BoomerangConfig()
    remaining = set(spec.nodes)
    local: dict[int, int] = {}
    for n in sorted(spec.nodes):
        best = 0
        for fanin in (eaig.fanin0[n], eaig.fanin1[n]):
            f = lit_node(fanin)
            if f in remaining:
                lf = local[f]
                if lf > best:
                    best = lf
        local[n] = best + 1
    if not local:
        return {"layers": 0, "permutations": 0, "fold_steps": 0, "writebacks": 0}
    depth = max(local.values())
    # Levelized execution: each level gathers its inputs (one permutation),
    # evaluates one batch of independent gates, and synchronizes.  Levels
    # wider than the datapath need multiple passes.
    passes = 0
    hist: dict[int, int] = {}
    for n, lvl in local.items():
        hist[lvl] = hist.get(lvl, 0) + 1
    for lvl in range(1, depth + 1):
        count = hist.get(lvl, 0)
        passes += max(1, -(-count // (config.width // 2)))
    return {
        "layers": depth,
        "permutations": passes,
        "fold_steps": passes,
        "writebacks": len(spec.nodes),
    }
