"""Multi-GPU execution planning — the paper's §V future-work item.

GEM's execution model extends to multiple GPUs naturally: blocks within a
stage are independent, so they can be spread across devices; the values a
block publishes (flip-flop next states, RAM read data, stage-cut values,
outputs) must then be exchanged between devices at the same points where a
single GPU needs a device-wide synchronization — stage boundaries and the
cycle boundary — over NVLink instead of on-die.

This module provides:

* :func:`block_workloads` — per-block work and traffic extracted from a
  compiled design;
* :func:`assign_blocks` — LPT (longest-processing-time) balancing of each
  stage's blocks across devices;
* :class:`MultiGpuPlan` / :func:`multi_gpu_speed` — the timing model:
  per-stage compute is the max over devices (each with its own block
  waves), plus an all-gather of the published values over the interconnect
  at every synchronization point.

The scaling experiment (``benchmarks/test_multigpu_extension.py``) shows
the expected regime change: large designs scale until the all-gather
dominates; small designs are synchronization-bound and do not benefit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bitstream import _effective_width_log2
from repro.core.compiler import CompiledDesign
from repro.core.perfmodel import A100, GpuProfile


@dataclass(frozen=True)
class Interconnect:
    """Device-to-device link model (NVLink-class defaults)."""

    name: str = "nvlink4"
    bandwidth_gb: float = 450.0  # per direction, GB/s
    latency_s: float = 8.0e-6  # per synchronization/all-gather round


@dataclass
class BlockWork:
    """One block's per-cycle cost terms."""

    stage: int
    work_bits: int
    inst_words: int
    publish_bits: int
    read_bits: int


@dataclass
class MultiGpuPlan:
    """Blocks assigned to devices, with the derived cycle-time terms."""

    num_gpus: int
    gpu: GpuProfile
    interconnect: Interconnect
    #: per stage, per device: list of block indices
    assignment: list[list[list[int]]]
    blocks: list[BlockWork]
    #: replication factor applied to work quantities (paper-scale runs)
    scale_ratio: float = 1.0

    def cycle_time(self) -> float:
        gpu = self.gpu
        slots = gpu.sms * gpu.blocks_per_sm
        rate = gpu.block_bit_rate()
        total = 0.0
        for stage_assignment in self.assignment:
            stage_time = 0.0
            publish = 0
            for device_blocks in stage_assignment:
                if not device_blocks:
                    continue
                work = [self.blocks[i] for i in device_blocks]
                n = max(1, round(len(work) * self.scale_ratio))
                waves = -(-n // slots)
                mean_bits = sum(b.work_bits for b in work) / len(work)
                max_bits = max(b.work_bits for b in work)
                compute = (max_bits + (waves - 1) * mean_bits) / rate
                fetch = (
                    sum(b.inst_words for b in work) * self.scale_ratio * 4
                ) / gpu.mem_bw_bytes
                stage_time = max(stage_time, max(compute, fetch))
                publish += int(sum(b.publish_bits for b in work) * self.scale_ratio)
            # All-gather of published values across devices at the stage
            # boundary (skipped on a single device, where the on-die sync
            # cost is already charged below).
            if self.num_gpus > 1:
                exchange = publish / 8 * (self.num_gpus - 1) / self.num_gpus
                stage_time += exchange / (self.interconnect.bandwidth_gb * 1e9)
                stage_time += self.interconnect.latency_s
            else:
                stage_time += gpu.sync_s
            total += stage_time
        return total

    def speed(self, scale: float = 1.0) -> float:
        return scale / self.cycle_time()

    def device_loads(self) -> list[list[int]]:
        """Per stage, per device: total work bits (balance diagnostics)."""
        return [
            [sum(self.blocks[i].work_bits for i in dev) for dev in stage]
            for stage in self.assignment
        ]


def block_workloads(design: CompiledDesign) -> list[BlockWork]:
    """Extract per-block cost terms from a compiled design."""
    blocks: list[BlockWork] = []
    header = design.program.words
    num_stages = int(header[5])
    table_base = 8 + num_stages
    for bi, placed in enumerate(design.merge.placements):
        bits = 0
        for li in range(len(placed.layers)):
            width = 1 << _effective_width_log2(placed, li)
            bits += 2 * width - 1
        inst_words = int(header[table_base + 2 * bi + 1])
        spec = placed.spec
        blocks.append(
            BlockWork(
                stage=spec.stage,
                work_bits=bits,
                inst_words=inst_words,
                publish_bits=len(spec.root_literals()),
                read_bits=len(spec.sources),
            )
        )
    return blocks


def assign_blocks(
    blocks: list[BlockWork], num_gpus: int, num_stages: int | None = None
) -> list[list[list[int]]]:
    """LPT bin packing of each stage's blocks onto ``num_gpus`` devices."""
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    stages = num_stages or (max((b.stage for b in blocks), default=0) + 1)
    assignment: list[list[list[int]]] = []
    for s in range(stages):
        indices = [i for i, b in enumerate(blocks) if b.stage == s]
        indices.sort(key=lambda i: -blocks[i].work_bits)
        devices: list[list[int]] = [[] for _ in range(num_gpus)]
        loads = [0] * num_gpus
        for i in indices:
            dev = loads.index(min(loads))
            devices[dev].append(i)
            loads[dev] += blocks[i].work_bits
        assignment.append(devices)
    return assignment


def plan_multi_gpu(
    design: CompiledDesign,
    num_gpus: int,
    gpu: GpuProfile = A100,
    interconnect: Interconnect | None = None,
    scale_ratio: float = 1.0,
) -> MultiGpuPlan:
    """Build the multi-GPU execution plan for a compiled design."""
    blocks = block_workloads(design)
    assignment = assign_blocks(blocks, num_gpus, design.merge.plan.num_stages)
    return MultiGpuPlan(
        num_gpus=num_gpus,
        gpu=gpu,
        interconnect=interconnect or Interconnect(),
        assignment=assignment,
        blocks=blocks,
        scale_ratio=scale_ratio,
    )


def multi_gpu_speed(
    design: CompiledDesign,
    num_gpus: int,
    gpu: GpuProfile = A100,
    scale: float = 1.0,
    scale_ratio: float = 1.0,
) -> float:
    """Simulated Hz on ``num_gpus`` devices (``scale`` = calibration)."""
    return plan_multi_gpu(design, num_gpus, gpu, scale_ratio=scale_ratio).speed(scale)
