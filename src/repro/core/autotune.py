"""Compile-time autotuner: knob sweep + SA placement refinement (docs/TUNING.md).

Simulation speed in GEM is decided at compile time — layers × stages ×
partitions fix the per-cycle work — so this module closes the loop from
:mod:`repro.core.perfmodel` back to the compile knobs:

1. **Knob sweep** — a deterministic grid over :class:`KnobSpace` dimensions
   (gates_per_partition, stage count, merge aggressiveness, depth-opt,
   boomerang tree height, SA refinement budget) is compiled candidate by
   candidate and scored with the cheap analytical
   :func:`repro.core.perfmodel.tuning_score` filter.
2. **Measured finalists** — the top-k analytical candidates (the default
   config always rides along) get a short measured batch=1 fused
   ``cycles_per_s`` run; the measured winner must beat the default by a
   margin (``min_gain``) or the default is kept.  With
   ``measure_cycles=0`` the sweep is model-only and fully deterministic.
3. **Tuning cache** — the winning knobs are stored as JSON keyed by the
   design's structural CRC + knob-space digest + autotune options, so the
   search runs once per (design, space) and every later compile is a
   cache hit (``gem_tune_cache_hits_total``).

Everything is seeded (`AutotuneConfig.seed`) and wall-clock-free except the
explicit measurement phase, so the *selection* is reproducible bit-for-bit
across processes; see ``tests/test_regressions.py``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import random
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Callable

import numpy as np

from repro.core.compiler import CompiledDesign, GemCompiler, GemConfig
from repro.core.perfmodel import tuning_score
from repro.core.synthesis import SynthesisResult
from repro.errors import UnmappableError
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER

__all__ = [
    "AutotuneConfig",
    "AutotuneResult",
    "CandidateResult",
    "KnobSpace",
    "apply_knobs",
    "autotune",
    "design_crc",
]

CACHE_VERSION = 1
DEFAULT_TUNE_DIR = ".gem_tune"


def default_tune_dir() -> str:
    """Tuning-cache directory (``GEM_TUNE_DIR`` env override)."""
    return os.environ.get("GEM_TUNE_DIR", DEFAULT_TUNE_DIR)


def design_crc(synth: SynthesisResult) -> str:
    """Structural CRC of a synthesized design (the tuning-cache identity).

    Hashes the E-AIG parallel arrays plus the word-level I/O binding, so two
    structurally identical synthesis results share tuning state while any
    netlist change invalidates it.  Independent of PYTHONHASHSEED.
    """
    eaig = synth.eaig
    h = hashlib.sha256()
    h.update(np.asarray([int(k) for k in eaig.kind], dtype=np.int64).tobytes())
    h.update(np.asarray(eaig.fanin0, dtype=np.int64).tobytes())
    h.update(np.asarray(eaig.fanin1, dtype=np.int64).tobytes())
    h.update(np.asarray(eaig.aux, dtype=np.int64).tobytes())
    h.update(repr(eaig.pis).encode())
    h.update(repr(eaig.ffs).encode())
    h.update(repr(eaig.outputs).encode())
    for ram in eaig.rams:
        h.update(repr(ram).encode())
    h.update(repr(sorted(synth.input_bits.items())).encode())
    h.update(repr(sorted(synth.output_bits.items())).encode())
    return h.hexdigest()[:16]


@dataclass(frozen=True)
class KnobSpace:
    """The swept GemConfig dimensions (each a tuple of values to try).

    The cross product of all dimensions, in field order, is the candidate
    grid; :class:`AutotuneConfig.budget` subsamples it deterministically.
    The base config itself is always candidate 0 (knobs ``{}``).
    """

    gates_per_partition: tuple[int, ...] = (3072, 6144, 8192)
    num_stages: tuple[int | None, ...] = (None, 1)
    overpartition: tuple[float, ...] = (1.5,)
    #: depth-opt on/off (only effective when the autotuner synthesizes per
    #: candidate, i.e. a synth *provider* was given — see :func:`autotune`)
    optimize: tuple[bool, ...] = (True,)
    #: boomerang tree height (2^w leaf bits per layer)
    width_log2: tuple[int, ...] = (13,)
    #: Algorithm 1 merge-candidate cap (None = unlimited)
    merge_limit: tuple[int | None, ...] = (None,)
    #: simulated-annealing placement refinement budget per partition
    sa_iterations: tuple[int, ...] = (0, 12)

    def digest(self) -> str:
        payload = json.dumps(asdict(self), sort_keys=True, default=repr)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def grid(self) -> list[dict]:
        """Every knob combination, in deterministic field order."""
        dims = list(asdict(self).items())
        out = []
        for combo in itertools.product(*(values for _, values in dims)):
            out.append({k: v for (k, _), v in zip(dims, combo)})
        return out


def apply_knobs(base: GemConfig, knobs: dict) -> GemConfig:
    """A fresh GemConfig: ``base`` with ``knobs`` overriding its dimensions."""
    partition = replace(
        base.partition,
        gates_per_partition=knobs.get(
            "gates_per_partition", base.partition.gates_per_partition
        ),
        num_stages=knobs.get("num_stages", base.partition.num_stages),
        overpartition=knobs.get("overpartition", base.partition.overpartition),
    )
    boomerang = replace(
        base.boomerang, width_log2=knobs.get("width_log2", base.boomerang.width_log2)
    )
    refine = replace(
        base.refine, iterations=knobs.get("sa_iterations", base.refine.iterations)
    )
    return GemConfig(
        synthesis=base.synthesis,
        partition=partition,
        boomerang=boomerang,
        optimize=knobs.get("optimize", base.optimize),
        max_partition_retries=base.max_partition_retries,
        refine=refine,
        merge_limit=knobs.get("merge_limit", base.merge_limit),
    )


@dataclass
class AutotuneConfig:
    """Search budget and scoring policy of one autotune run."""

    #: max candidates compiled (grid is subsampled deterministically)
    budget: int = 8
    #: analytical finalists that get a measured run (default always rides)
    top_k: int = 3
    #: measured run length per finalist; 0 = model-only (fully deterministic)
    measure_cycles: int = 24
    #: best-of repeats per measured finalist (shields against host noise)
    repeats: int = 3
    seed: int = 0
    #: measured/model winner must beat the default by this fraction
    min_gain: float = 0.05
    #: tuning-cache directory (None → GEM_TUNE_DIR / .gem_tune)
    cache_dir: str | None = None

    def key_dict(self) -> dict:
        return {
            "budget": self.budget,
            "top_k": self.top_k,
            "measure_cycles": self.measure_cycles,
            "repeats": self.repeats,
            "seed": self.seed,
            "min_gain": self.min_gain,
        }


@dataclass
class CandidateResult:
    """One evaluated knob combination."""

    knobs: dict
    digest: str  # GemConfig.digest() of the applied candidate
    status: str  # "ok" | "unmappable" | "error"
    score: dict | None = None  # perfmodel.tuning_score breakdown
    measured_cycles_per_s: float | None = None
    compile_s: float = 0.0
    error: str = ""

    @property
    def model_hz(self) -> float:
        return float(self.score["model_hz"]) if self.score else 0.0


@dataclass
class AutotuneResult:
    """The winning config plus the full audit trail of the search."""

    design: str
    crc: str
    space_digest: str
    base_digest: str
    key: str
    seed: int
    winner_knobs: dict
    winner_digest: str
    winner_label: str  # "default" | "tuned"
    cache_hit: bool
    cache_path: str | None
    candidates: list[CandidateResult] = field(default_factory=list)
    default_measured: float | None = None
    winner_measured: float | None = None

    def winning_config(self, base: GemConfig | None = None) -> GemConfig:
        return apply_knobs(base or GemConfig(), self.winner_knobs)

    @property
    def measured_gain(self) -> float | None:
        if self.default_measured and self.winner_measured:
            return self.winner_measured / self.default_measured
        return None

    def to_payload(self) -> dict:
        return {
            "version": CACHE_VERSION,
            "design": self.design,
            "crc": self.crc,
            "space_digest": self.space_digest,
            "base_digest": self.base_digest,
            "key": self.key,
            "seed": self.seed,
            "winner_knobs": self.winner_knobs,
            "winner_digest": self.winner_digest,
            "winner_label": self.winner_label,
            "default_measured": self.default_measured,
            "winner_measured": self.winner_measured,
            "candidates": [asdict(c) for c in self.candidates],
        }

    @classmethod
    def from_payload(cls, payload: dict, cache_path: str) -> "AutotuneResult":
        return cls(
            design=payload["design"],
            crc=payload["crc"],
            space_digest=payload["space_digest"],
            base_digest=payload["base_digest"],
            key=payload["key"],
            seed=payload["seed"],
            winner_knobs=payload["winner_knobs"],
            winner_digest=payload["winner_digest"],
            winner_label=payload["winner_label"],
            cache_hit=True,
            cache_path=cache_path,
            candidates=[CandidateResult(**c) for c in payload.get("candidates", ())],
            default_measured=payload.get("default_measured"),
            winner_measured=payload.get("winner_measured"),
        )


def _tune_key(crc: str, space: KnobSpace, base: GemConfig, opts: AutotuneConfig) -> str:
    payload = json.dumps(
        {
            "crc": crc,
            "space": space.digest(),
            "base": base.digest(),
            "opts": opts.key_dict(),
            "version": CACHE_VERSION,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _counter(name: str, help: str, **labels):
    return REGISTRY.counter(name, help=help, labels=labels or None)


def _load_cache(path: str, key: str) -> dict | None:
    try:
        with open(path) as f:
            payload = json.load(f)
    except (OSError, ValueError):
        return None
    if payload.get("version") != CACHE_VERSION or payload.get("key") != key:
        return None
    return payload


def _knob_sort_key(knobs: dict) -> str:
    return json.dumps(knobs, sort_keys=True, default=repr)


def _choose_candidates(
    space: KnobSpace, base: GemConfig, opts: AutotuneConfig
) -> list[tuple[str, dict]]:
    """``[(label, knobs)]``: the base first, then a budgeted grid sample."""
    base_digest = base.digest()
    chosen: list[tuple[str, dict]] = [("default", {})]
    seen = {base_digest}
    grid = []
    for knobs in space.grid():
        digest = apply_knobs(base, knobs).digest()
        if digest in seen:
            continue
        seen.add(digest)
        grid.append(knobs)
    budget = max(0, opts.budget - 1)  # slot 0 is the default
    if len(grid) > budget:
        rng = random.Random(opts.seed * 2_654_435_761 + len(grid))
        grid = sorted(rng.sample(grid, budget), key=_knob_sort_key)
    chosen.extend((_knob_sort_key(k), k) for k in grid)
    return chosen


def _measure_once(design: CompiledDesign, vecs: list[dict]) -> float:
    sim = design.simulator(batch=1, mode="fused")
    for vec in vecs[:2]:  # first-touch decode/fusion outside the timer
        sim.step(vec)
    t0 = time.perf_counter()
    for vec in vecs:
        sim.step(vec)
    elapsed = max(time.perf_counter() - t0, 1e-9)
    return len(vecs) / elapsed


def autotune(
    design_input: SynthesisResult | Callable[[GemConfig], SynthesisResult],
    stimuli: list[dict] | None = None,
    *,
    name: str | None = None,
    base: GemConfig | None = None,
    space: KnobSpace | None = None,
    opts: AutotuneConfig | None = None,
    compile_fn: Callable[[GemConfig], CompiledDesign] | None = None,
) -> AutotuneResult:
    """Find (or recall) the best GemConfig for one design.

    ``design_input`` is either a ready :class:`SynthesisResult` (synthesis
    knobs like ``optimize`` are then inert — every candidate reuses the same
    netlist) or a provider called as ``provider(config)`` so candidates with
    different synthesis knobs get their own netlist (the runner passes its
    config-keyed ``design_synth``).  ``stimuli`` feeds the measured phase;
    without it (or with ``measure_cycles=0``) selection is model-only.
    ``compile_fn`` overrides how a candidate config becomes a
    :class:`CompiledDesign` — the runner passes its disk-cached
    ``compile_design`` so tuning also warms the compile cache.
    """
    base = base or GemConfig()
    space = space or KnobSpace()
    opts = opts or AutotuneConfig()
    if callable(design_input):
        provider = design_input
    else:
        synth_fixed = design_input

        def provider(_config: GemConfig) -> SynthesisResult:
            return synth_fixed

    if compile_fn is None:

        def compile_fn(config: GemConfig) -> CompiledDesign:
            return GemCompiler(config).compile(provider(config))

    base_synth = provider(base)
    design = name or base_synth.eaig.name
    crc = design_crc(base_synth)
    key = _tune_key(crc, space, base, opts)
    cache_dir = opts.cache_dir or default_tune_dir()
    cache_path = os.path.join(cache_dir, f"{design}-{key[:12]}.json")

    cached = _load_cache(cache_path, key)
    if cached is not None:
        _counter(
            "gem_tune_cache_hits_total", "tuning-cache hits (no sweep re-run)"
        ).inc()
        return AutotuneResult.from_payload(cached, cache_path)
    _counter("gem_tune_cache_misses_total", "tuning-cache misses (sweep runs)").inc()

    chosen = _choose_candidates(space, base, opts)
    records: list[CandidateResult] = []
    compiled: dict[str, CompiledDesign] = {}

    with TRACER.span(
        f"tune:{design}",
        cat="tune",
        args={"crc": crc, "candidates": len(chosen), "seed": opts.seed},
    ):
        for label, knobs in chosen:
            config = apply_knobs(base, knobs)
            digest = config.digest()
            _counter("gem_tune_candidates_total", "knob candidates evaluated").inc()
            t0 = time.perf_counter()
            try:
                with TRACER.span(
                    f"tune:compile:{design}",
                    cat="tune",
                    args={"digest": digest, "knobs": label},
                ):
                    candidate = compile_fn(config)
            except UnmappableError as exc:
                _counter(
                    "gem_tune_unmappable_total", "candidates rejected as unmappable"
                ).inc()
                records.append(
                    CandidateResult(
                        knobs=knobs,
                        digest=digest,
                        status="unmappable",
                        compile_s=time.perf_counter() - t0,
                        error=str(exc),
                    )
                )
                continue
            except Exception as exc:
                # A sweep probes corners of the knob space the rest of the
                # flow has never seen (e.g. width_log2=14 currently dies in
                # assembly) — record the crash against the candidate and
                # keep sweeping rather than losing the whole search.
                _counter(
                    "gem_tune_errors_total", "candidates crashed during compile"
                ).inc()
                records.append(
                    CandidateResult(
                        knobs=knobs,
                        digest=digest,
                        status="error",
                        compile_s=time.perf_counter() - t0,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            compiled[digest] = candidate
            records.append(
                CandidateResult(
                    knobs=knobs,
                    digest=digest,
                    status="ok",
                    score=tuning_score(candidate),
                    compile_s=time.perf_counter() - t0,
                )
            )

        ok = [r for r in records if r.status == "ok"]
        if not ok:
            raise UnmappableError(
                f"autotune({design}): no mappable candidate in the knob space"
            )
        default_record = records[0]  # slot 0 is always the base config
        if default_record.status != "ok":
            raise UnmappableError(
                f"autotune({design}): the base config itself failed "
                f"({default_record.status}: {default_record.error})"
            )

        measure = opts.measure_cycles > 0 and stimuli is not None
        if measure:
            ranked = sorted(
                ok, key=lambda r: (-r.model_hz, _knob_sort_key(r.knobs))
            )
            finalists = ranked[: max(1, opts.top_k)]
            if default_record not in finalists:
                finalists.append(default_record)
            vecs = stimuli[: opts.measure_cycles]
            if not vecs:
                raise ValueError(
                    "measurement requested but the stimulus list is empty"
                )
            # Round-robin the repeats across finalists (best-of per
            # finalist): measuring one candidate's repeats back-to-back
            # lets host frequency drift masquerade as a config effect,
            # while interleaving puts every finalist through the same
            # thermal window.
            best: dict[str, float] = {r.digest: 0.0 for r in finalists}
            for _ in range(max(1, opts.repeats)):
                for record in finalists:
                    with TRACER.span(
                        f"tune:measure:{design}",
                        cat="tune",
                        args={"digest": record.digest},
                    ):
                        hz = _measure_once(compiled[record.digest], vecs)
                    best[record.digest] = max(best[record.digest], hz)
                    _counter(
                        "gem_tune_measurements_total", "measured finalist runs"
                    ).inc()
            for record in finalists:
                record.measured_cycles_per_s = best[record.digest]
            winner = max(
                finalists,
                key=lambda r: (r.measured_cycles_per_s, _knob_sort_key(r.knobs)),
            )
            default_value = default_record.measured_cycles_per_s or 0.0
            if (
                winner is not default_record
                and winner.measured_cycles_per_s < default_value * (1 + opts.min_gain)
            ):
                winner = default_record
        else:
            winner = max(ok, key=lambda r: (r.model_hz, _knob_sort_key(r.knobs)))
            if (
                winner is not default_record
                and winner.model_hz < default_record.model_hz * (1 + opts.min_gain)
            ):
                winner = default_record

    result = AutotuneResult(
        design=design,
        crc=crc,
        space_digest=space.digest(),
        base_digest=base.digest(),
        key=key,
        seed=opts.seed,
        winner_knobs=winner.knobs,
        winner_digest=winner.digest,
        winner_label="default" if winner is default_record else "tuned",
        cache_hit=False,
        cache_path=cache_path,
        candidates=records,
        default_measured=default_record.measured_cycles_per_s,
        winner_measured=winner.measured_cycles_per_s,
    )
    gain = result.measured_gain
    if gain is not None:
        REGISTRY.gauge(
            "gem_tune_best_gain", help="measured winner/default cycles_per_s ratio"
        ).set(gain)
    os.makedirs(cache_dir, exist_ok=True)
    tmp = cache_path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(result.to_payload(), f, indent=2, sort_keys=True)
    os.replace(tmp, cache_path)
    return result
