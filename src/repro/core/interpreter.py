"""Word-parallel virtual-GPU interpreter for GEM bitstreams.

This is the reproduction's substitute for the paper's CUDA kernel (see
DESIGN.md §2).  It decodes the *binary* bitstream produced by
:mod:`repro.core.bitstream` — not the in-memory placement objects — and
executes simulated cycles with the exact semantics the CUDA interpreter
implements:

* one **global state** bit vector (GPU global memory); primary inputs are
  host-written, flip-flop outputs / RAM read data / stage-cut values live
  at allocated indices;
* per cycle, every partition (thread block): loads its sources (READ),
  runs its boomerang layers (PERM gather → FOLD steps → WB stores into
  block-local state), then stores results (GWRITE / RAMOP);
* stage boundaries and the cycle boundary are device-wide synchronizations
  (cooperative groups in the paper); *deferred* global writes (FF next
  states, RAM read data) commit at the cycle boundary so every block reads
  consistent previous-cycle state, while *immediate* writes (cut values,
  primary outputs) are visible to later stages within the cycle;
* the NumPy arrays play the role of the GPU's word-parallel ALUs: one
  boolean vector op here corresponds to one 32-bit bitwise instruction per
  thread there (Observation 3 of the paper).

The interpreter also keeps the per-cycle work counters (instruction words
fetched, fold steps, synchronizations, global traffic) that feed the
analytical GPU timing model in :mod:`repro.core.perfmodel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.core import isa
from repro.core.bitstream import MAGIC, VERSION, GemProgram, verify_integrity
from repro.errors import BitstreamError


@dataclass
class _DecodedLayer:
    eff_width_log2: int
    #: dense gather indices into local state, size 2**eff (0 = const slot)
    gather: np.ndarray
    xor_a: list[np.ndarray]
    xor_b: list[np.ndarray]
    or_b: list[np.ndarray]
    #: per fold step: (positions, slots) arrays
    writebacks: list[tuple[np.ndarray, np.ndarray]]


@dataclass
class _DecodedPartition:
    stage: int
    state_slots: int
    read_gidx: np.ndarray
    read_slots: np.ndarray
    read_inv: np.ndarray
    layers: list[_DecodedLayer]
    #: immediate global writes: (slots, inv, gidx)
    gw_now: tuple[np.ndarray, np.ndarray, np.ndarray]
    #: deferred global writes: (slots, inv, gidx)
    gw_deferred: tuple[np.ndarray, np.ndarray, np.ndarray]
    ramops: list[isa.RamOp]
    instruction_words: int


@dataclass
class CycleCounters:
    """Per-cycle work, accumulated over a run (perf-model inputs)."""

    cycles: int = 0
    instruction_words: int = 0
    fold_steps: int = 0
    permutation_bits: int = 0
    layer_syncs: int = 0
    device_syncs: int = 0
    global_reads: int = 0
    global_writes: int = 0

    def per_cycle(self) -> dict:
        c = max(1, self.cycles)
        return {
            "instruction_words": self.instruction_words / c,
            "fold_steps": self.fold_steps / c,
            "permutation_bits": self.permutation_bits / c,
            "layer_syncs": self.layer_syncs / c,
            "device_syncs": self.device_syncs / c,
            "global_reads": self.global_reads / c,
            "global_writes": self.global_writes / c,
        }


class GemInterpreter:
    """Execute an assembled GEM program cycle by cycle."""

    def __init__(self, program: GemProgram) -> None:
        self.program = program
        self.meta = program.meta
        words = program.words
        if words.size < 8 or int(words[0]) != MAGIC:
            raise BitstreamError("not a GEM bitstream (bad magic)")
        if int(words[1]) != VERSION:
            raise BitstreamError(
                f"unsupported bitstream format version {int(words[1])} "
                f"(interpreter supports {VERSION})"
            )
        # Per-section CRC check before any decode: a corrupted container
        # must fail loudly at load, never silently mis-simulate.
        verify_integrity(words)
        self.width_log2 = int(words[2])
        self.global_bits = int(words[3])
        num_parts = int(words[4])
        num_stages = int(words[5])
        num_rams = int(words[6])
        stage_counts = [int(words[8 + s]) for s in range(num_stages)]
        table_base = 8 + num_stages
        offsets = [
            (int(words[table_base + 2 * i]), int(words[table_base + 2 * i + 1]))
            for i in range(num_parts)
        ]
        self.partitions = [
            _decode_partition(words[start : start + length]) for start, length in offsets
        ]
        self.stage_indices: list[list[int]] = []
        cursor = 0
        for count in stage_counts:
            self.stage_indices.append(list(range(cursor, cursor + count)))
            cursor += count
        # RAM data section follows the instruction stream.
        ram_base = table_base + 2 * num_parts + int(words[7])
        self.ram_arrays: list[np.ndarray] = []
        self.ram_shapes: list[tuple[int, int]] = []
        pos = ram_base
        for _ in range(num_rams):
            shape = int(words[pos])
            depth = int(words[pos + 1])
            self.ram_shapes.append((shape >> 16, shape & 0xFFFF))
            self.ram_arrays.append(words[pos + 2 : pos + 2 + depth].astype(np.uint32).copy())
            pos += 2 + depth
        # Reset section: flip-flop init values as global bit indices.
        reset_count = int(words[pos])
        self._reset_ones = words[pos + 1 : pos + 1 + reset_count].astype(np.int64)

        self.global_state = np.zeros(self.global_bits, dtype=bool)
        self.global_state[self._reset_ones] = True
        self._locals = [np.zeros(p.state_slots, dtype=bool) for p in self.partitions]
        self.counters = CycleCounters()
        self.cycle = 0

    # -- execution ------------------------------------------------------------

    def _run_partition(self, part: _DecodedPartition, local: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
        """Execute one block; returns deferred (gidx, values) scatters."""
        gstate = self.global_state
        local[:] = False
        if part.read_gidx.size:
            local[part.read_slots] = gstate[part.read_gidx] ^ part.read_inv
        counters = self.counters
        for layer in part.layers:
            vec = local[layer.gather]
            for step in range(layer.eff_width_log2):
                vec = (vec[0::2] ^ layer.xor_a[step]) & (
                    (vec[1::2] ^ layer.xor_b[step]) | layer.or_b[step]
                )
                positions, slots = layer.writebacks[step]
                if positions.size:
                    local[slots] = vec[positions]
            counters.fold_steps += layer.eff_width_log2
            counters.permutation_bits += layer.gather.size
        counters.layer_syncs += len(part.layers)

        deferred: list[tuple[np.ndarray, np.ndarray]] = []
        slots, inv, gidx = part.gw_now
        if gidx.size:
            gstate[gidx] = local[slots] ^ inv
        slots, inv, gidx = part.gw_deferred
        if gidx.size:
            deferred.append((gidx, local[slots] ^ inv))
        for op in part.ramops:
            deferred.extend(self._run_ramop(op, local))
        counters.global_reads += int(part.read_gidx.size)
        counters.global_writes += int(part.gw_now[2].size + part.gw_deferred[2].size)
        counters.instruction_words += part.instruction_words
        return deferred

    def _run_ramop(self, op: isa.RamOp, local: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
        def bits_value(refs: list[tuple[int, bool]]) -> int:
            value = 0
            for i, (slot, inv) in enumerate(refs):
                if bool(local[slot]) ^ inv:
                    value |= 1 << i
            return value

        def bit_value(ref: tuple[int, bool]) -> bool:
            slot, inv = ref
            return bool(local[slot]) ^ inv

        array = self.ram_arrays[op.ram_index]
        deferred: list[tuple[np.ndarray, np.ndarray]] = []
        if bit_value(op.ren):
            raddr = bits_value(op.raddr)
            word = int(array[raddr])  # read-first: sampled before the write
            gidx = np.arange(op.rd_global_base, op.rd_global_base + op.data_bits)
            values = np.array([(word >> b) & 1 for b in range(op.data_bits)], dtype=bool)
            deferred.append((gidx, values))
            self.counters.global_writes += op.data_bits
        if bit_value(op.wen):
            waddr = bits_value(op.waddr)
            array[waddr] = bits_value(op.wdata)
        return deferred

    def step(self, inputs: Mapping[str, int] | None = None) -> dict[str, int]:
        """Simulate one cycle; returns the settled primary output words."""
        gstate = self.global_state
        pi_index = self.meta.pi_index
        for name, indices in pi_index.items():
            value = (inputs or {}).get(name, 0)
            for i, gidx in enumerate(indices):
                gstate[gidx] = bool((value >> i) & 1)
        deferred: list[tuple[np.ndarray, np.ndarray]] = []
        for stage_parts in self.stage_indices:
            for idx in stage_parts:
                deferred.extend(
                    self._run_partition(self.partitions[idx], self._locals[idx])
                )
            self.counters.device_syncs += 1
        outs = self.outputs()
        for gidx, values in deferred:
            gstate[gidx] = values
        self.counters.cycles += 1
        self.cycle += 1
        return outs

    def outputs(self) -> dict[str, int]:
        words: dict[str, int] = {}
        gstate = self.global_state
        for name, indices in self.meta.po_index.items():
            value = 0
            for i, gidx in enumerate(indices):
                if gstate[gidx]:
                    value |= 1 << i
            words[name] = value
        return words

    def run(self, stimuli: Iterable[Mapping[str, int]]) -> list[dict[str, int]]:
        return [self.step(vec) for vec in stimuli]


def _decode_partition(words: np.ndarray) -> _DecodedPartition:
    """Decode one partition's instruction stream."""
    pos = 0
    stage = 0
    state_slots = 0
    read_chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    layers: list[_DecodedLayer] = []
    gw_now: list[tuple[int, bool, int]] = []
    gw_deferred: list[tuple[int, bool, int]] = []
    ramops: list[isa.RamOp] = []
    pending_perm: list[tuple[np.ndarray, np.ndarray]] = []

    while pos < len(words):
        opcode, length, count = isa.parse_header(int(words[pos]))
        inst = words[pos : pos + length]
        if opcode is isa.Opcode.INIT:
            info = isa.decode_init(inst)
            stage = info["stage"]
            state_slots = info["state_slots"]
        elif opcode is isa.Opcode.READ:
            read_chunks.append(isa.decode_read(inst, count))
        elif opcode is isa.Opcode.PERM:
            pending_perm.append(isa.decode_perm(inst, count))
        elif opcode is isa.Opcode.FOLD:
            eff = count
            xor_a, xor_b, or_b = isa.decode_fold(inst, eff)
            gather = np.zeros(1 << eff, dtype=np.int64)
            for leaves, slots in pending_perm:
                inside = leaves < (1 << eff)
                gather[leaves[inside]] = slots[inside]
            pending_perm = []
            layers.append(
                _DecodedLayer(
                    eff_width_log2=eff,
                    gather=gather,
                    xor_a=xor_a,
                    xor_b=xor_b,
                    or_b=or_b,
                    writebacks=[
                        (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
                        for _ in range(eff)
                    ],
                )
            )
        elif opcode is isa.Opcode.WB:
            steps, positions, slots = isa.decode_wb(inst, count)
            layer = layers[-1]
            for s in range(layer.eff_width_log2):
                sel = steps == s
                if sel.any():
                    old_pos, old_slot = layer.writebacks[s]
                    layer.writebacks[s] = (
                        np.concatenate([old_pos, positions[sel]]),
                        np.concatenate([old_slot, slots[sel]]),
                    )
        elif opcode is isa.Opcode.GWRITE:
            slots, inv, gidx, deferred_flags = isa.decode_gwrite(inst, count)
            for s, iv, g, d in zip(slots, inv, gidx, deferred_flags):
                (gw_deferred if d else gw_now).append((int(s), bool(iv), int(g)))
        elif opcode is isa.Opcode.RAMOP:
            ramops.append(isa.decode_ramop(inst))
        else:  # pragma: no cover - parse_header already validates
            raise BitstreamError(f"unknown opcode {opcode}")
        pos += length

    def pack_reads() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if not read_chunks:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, np.zeros(0, dtype=bool)
        g = np.concatenate([c[0] for c in read_chunks])
        s = np.concatenate([c[1] for c in read_chunks])
        i = np.concatenate([c[2] for c in read_chunks])
        return g, s, i

    def pack_gw(entries: list[tuple[int, bool, int]]):
        if not entries:
            empty = np.zeros(0, dtype=np.int64)
            return empty.copy(), np.zeros(0, dtype=bool), empty.copy()
        slots = np.array([e[0] for e in entries], dtype=np.int64)
        inv = np.array([e[1] for e in entries], dtype=bool)
        gidx = np.array([e[2] for e in entries], dtype=np.int64)
        return slots, inv, gidx

    read_gidx, read_slots, read_inv = pack_reads()
    return _DecodedPartition(
        stage=stage,
        state_slots=max(1, state_slots),
        read_gidx=read_gidx,
        read_slots=read_slots,
        read_inv=read_inv,
        layers=layers,
        gw_now=pack_gw(gw_now),
        gw_deferred=pack_gw(gw_deferred),
        ramops=ramops,
        instruction_words=len(words),
    )
