"""Word-parallel virtual-GPU interpreter for GEM bitstreams.

This is the reproduction's substitute for the paper's CUDA kernel (see
DESIGN.md §2).  It decodes the *binary* bitstream produced by
:mod:`repro.core.bitstream` — not the in-memory placement objects — and
executes simulated cycles with the exact semantics the CUDA interpreter
implements:

* one **global state** vector (GPU global memory); primary inputs are
  host-written, flip-flop outputs / RAM read data / stage-cut values live
  at allocated indices;
* per cycle, every partition (thread block): loads its sources (READ),
  runs its boomerang layers (PERM gather → FOLD steps → WB stores into
  block-local state), then stores results (GWRITE / RAMOP);
* stage boundaries and the cycle boundary are device-wide synchronizations
  (cooperative groups in the paper); *deferred* global writes (FF next
  states, RAM read data) commit at the cycle boundary so every block reads
  consistent previous-cycle state, while *immediate* writes (cut values,
  primary outputs) are visible to later stages within the cycle.

Every state element is a **packed ``uint64`` word carrying up to 64
independent stimulus lanes** (:mod:`repro.core.engine`): one vector op
here corresponds to one bitwise instruction per GPU thread there
(Observation 3 of the paper), and with ``batch=B`` each such op advances
``B`` simulation instances at once.  RAM blocks hold one image per lane
and their addressing is per-lane.  ``batch=1`` preserves the original
single-instance semantics verbatim: ``step(dict) -> dict`` behaves
bit-identically to the historical boolean engine.

The interpreter also keeps the per-cycle work counters (instruction words
fetched, fold steps, synchronizations, global traffic) that feed the
analytical GPU timing model in :mod:`repro.core.perfmodel`; the counters
are lane-aware so amortized per-lane work is reportable.

Two execution modes share those semantics bit-for-bit (docs/ENGINE.md §6):

* ``mode="fused"`` (default) executes the decode-time stage fusion of
  :mod:`repro.core.fused` — per-stage merged gathers, depth-grouped
  liveness-compacted folds, coalesced commit tables — cutting the NumPy
  dispatch count per cycle by an order of magnitude;
* ``mode="legacy"`` walks the original per-partition loop, kept for
  differential testing and for subclasses that hook ``_run_partition``.

Decode and fusion results are memoized keyed by the bitstream CRC (plus
container size and batch), so a Supervisor's primary+shadow pair and
repeated ``GemSimulator`` instantiations decode and fuse exactly once —
see :func:`decode_cache_stats`.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core import isa
from repro.core.backend import resolve_backend
from repro.core.bitstream import MAGIC, VERSION, GemProgram, verify_integrity
from repro.core.engine import ExecutionEngine, bits_to_int, weights
from repro.core.fused import (
    FusedExecutor,
    FusionError,
    count_legacy_array_ops,
    fused_program,
)
from repro.errors import BitstreamError
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER

logger = logging.getLogger(__name__)

_ONE = np.uint64(1)


@dataclass
class _DecodedLayer:
    eff_width_log2: int
    #: dense gather indices into local state, size 2**eff (0 = const slot)
    gather: np.ndarray
    #: per fold step: lane-masked uint64 constant words
    xor_a: list[np.ndarray]
    xor_b: list[np.ndarray]
    or_b: list[np.ndarray]
    #: per fold step: (positions, slots) arrays
    writebacks: list[tuple[np.ndarray, np.ndarray]]


@dataclass
class _DecodedRamOp:
    """A RAM port with decode-time index/weight tables (no per-bit loops)."""

    spec: isa.RamOp
    raddr_slots: np.ndarray
    raddr_inv: np.ndarray  # uint64 lane masks, one per address bit
    waddr_slots: np.ndarray
    waddr_inv: np.ndarray
    wdata_slots: np.ndarray
    wdata_inv: np.ndarray
    ren_slot: int
    ren_inv: np.uint64
    wen_slot: int
    wen_inv: np.uint64
    addr_weights: np.ndarray
    data_weights: np.ndarray
    rd_gidx: np.ndarray


@dataclass
class _DecodedPartition:
    stage: int
    state_slots: int
    read_gidx: np.ndarray
    read_slots: np.ndarray
    read_inv: np.ndarray  # uint64 lane masks
    layers: list[_DecodedLayer]
    #: immediate global writes: (slots, inv masks, gidx)
    gw_now: tuple[np.ndarray, np.ndarray, np.ndarray]
    #: deferred global writes: (slots, inv masks, gidx)
    gw_deferred: tuple[np.ndarray, np.ndarray, np.ndarray]
    ramops: list[_DecodedRamOp]
    instruction_words: int


@dataclass
class CycleCounters:
    """Per-cycle work, accumulated over a run (perf-model inputs).

    The work fields count *word* operations — one fold step or global
    word transfer serves every packed lane at once — so ``lanes`` is the
    amortization factor: divide by it for per-instance cost.
    """

    cycles: int = 0
    instruction_words: int = 0
    fold_steps: int = 0
    permutation_bits: int = 0
    layer_syncs: int = 0
    device_syncs: int = 0
    global_reads: int = 0
    global_writes: int = 0
    #: NumPy dispatches per cycle of the legacy per-partition path — the
    #: kernel-launch-equivalent count; static, accumulated in both modes
    array_ops: int = 0
    #: NumPy dispatches per cycle of the fused whole-stage path
    fused_array_ops: int = 0
    #: stimulus lanes served by each counted word op (the batch size)
    lanes: int = 1

    def per_cycle(self) -> dict:
        c = max(1, self.cycles)
        return {
            "instruction_words": self.instruction_words / c,
            "fold_steps": self.fold_steps / c,
            "permutation_bits": self.permutation_bits / c,
            "layer_syncs": self.layer_syncs / c,
            "device_syncs": self.device_syncs / c,
            "global_reads": self.global_reads / c,
            "global_writes": self.global_writes / c,
            "array_ops": self.array_ops / c,
            "fused_array_ops": self.fused_array_ops / c,
        }

    def per_lane_cycle(self) -> dict:
        """Per-cycle work amortized over the packed stimulus lanes."""
        lanes = max(1, self.lanes)
        return {key: value / lanes for key, value in self.per_cycle().items()}

    @property
    def lane_cycles(self) -> int:
        """Total simulated instance-cycles (cycles × lanes)."""
        return self.cycles * max(1, self.lanes)


#: Decoded-partition memoization, keyed by (bitstream CRC, container
#: size, batch).  The decoded tables are immutable at runtime, so
#: sharing them across interpreter instances (Supervisor primary+shadow,
#: repeated GemSimulator construction) is safe; batch is part of the key
#: because decoded constants embed the engine's active-lane mask.
_DECODE_CACHE: dict[tuple, list["_DecodedPartition"]] = {}
_DECODE_CACHE_MAX = 8
_DECODE_STATS = {"hits": 0, "misses": 0}


def decode_cache_stats() -> dict:
    """Hit/miss counters of the partition-decode cache."""
    return dict(_DECODE_STATS)


def clear_decode_cache() -> None:
    """Drop every memoized decode (tests; frees the tables)."""
    _DECODE_CACHE.clear()
    _DECODE_STATS["hits"] = 0
    _DECODE_STATS["misses"] = 0


class GemInterpreter:
    """Execute an assembled GEM program cycle by cycle.

    ``batch`` packs that many independent stimulus lanes into every state
    word (§ :mod:`repro.core.engine`).  The single-instance API
    (``step``/``outputs``/``run``) always addresses lane 0 and broadcasts
    its inputs to all lanes; the lane API (``step_lanes`` etc.) drives
    and observes every lane individually.

    ``mode`` selects the execution path: ``"fused"`` (default) runs the
    stage-fused whole-stage array ops of :mod:`repro.core.fused`,
    ``"legacy"`` the original per-partition loop.  Both are bit-identical
    in outputs, global state, and work counters.  ``profile=True`` keeps
    lightweight wall-clock timers per phase in :attr:`phase_times`
    (``inject`` / ``gather`` / ``fold`` / ``commit``).

    ``backend`` selects the array backend of the fused path
    (:mod:`repro.core.backend`): ``"numpy"`` (default), ``"numba"``
    (per-stage JIT kernels), or ``"cupy"``; a name whose dependency is
    missing falls back to numpy with one warning per process.  The
    legacy path is numpy-only — a non-numpy backend downgrades with a
    log line when fusion is unavailable.
    """

    #: value system of the executed program: 2 for plain designs, 4 for
    #: dual-rail designs (repro.fourstate.fastpath overrides this) —
    #: recorded in checkpoints so a v4 file cannot silently restore into
    #: an engine running the other value system
    values = 2

    def __init__(
        self,
        program: GemProgram,
        batch: int = 1,
        mode: str = "fused",
        profile: bool = False,
        backend: str | None = None,
    ) -> None:
        if mode not in ("fused", "legacy"):
            raise ValueError(f"mode must be 'fused' or 'legacy', got {mode!r}")
        self.program = program
        self.meta = program.meta
        self.engine = ExecutionEngine(batch)
        self.batch = batch
        self.mode = mode
        self.profile = profile
        self.backend = resolve_backend(backend)
        self.phase_times = {"inject": 0.0, "gather": 0.0, "fold": 0.0, "commit": 0.0}
        words = program.words
        if words.size < 8 or int(words[0]) != MAGIC:
            raise BitstreamError("not a GEM bitstream (bad magic)")
        if int(words[1]) != VERSION:
            raise BitstreamError(
                f"unsupported bitstream format version {int(words[1])} "
                f"(interpreter supports {VERSION})"
            )
        # Per-section CRC check before any decode: a corrupted container
        # must fail loudly at load, never silently mis-simulate.
        verify_integrity(words)
        self.width_log2 = int(words[2])
        self.global_bits = int(words[3])
        num_parts = int(words[4])
        num_stages = int(words[5])
        num_rams = int(words[6])
        stage_counts = [int(words[8 + s]) for s in range(num_stages)]
        table_base = 8 + num_stages
        # The 32-bit words CRC alone is a weak identity: two compiles of the
        # same circuit under different GemConfig knobs can, in principle,
        # collide.  Folding the config digest in keys tuned and default
        # decodes of one design independently (getattr: old pickled caches
        # predate the field).
        cache_key = (
            program.digest(),
            getattr(program.meta, "config_digest", ""),
            int(words.size),
            batch,
        )
        cached = _DECODE_CACHE.get(cache_key)
        if cached is not None:
            _DECODE_STATS["hits"] += 1
            REGISTRY.counter(
                "gem_decode_cache_hits_total", "partition-decode cache hits"
            ).inc()
            self.partitions = cached
        else:
            _DECODE_STATS["misses"] += 1
            REGISTRY.counter(
                "gem_decode_cache_misses_total", "partition-decode cache misses"
            ).inc()
            with TRACER.span("decode", cat="compile", args={"partitions": num_parts}):
                offsets = [
                    (int(words[table_base + 2 * i]), int(words[table_base + 2 * i + 1]))
                    for i in range(num_parts)
                ]
                self.partitions = [
                    _decode_partition(words[start : start + length], self.engine)
                    for start, length in offsets
                ]
            while len(_DECODE_CACHE) >= _DECODE_CACHE_MAX:
                _DECODE_CACHE.pop(next(iter(_DECODE_CACHE)))
                REGISTRY.counter(
                    "gem_cache_evictions_total",
                    "LRU evictions per in-process cache",
                    labels={"cache": "decode"},
                ).inc()
            _DECODE_CACHE[cache_key] = self.partitions
        self.stage_indices: list[list[int]] = []
        cursor = 0
        for count in stage_counts:
            self.stage_indices.append(list(range(cursor, cursor + count)))
            cursor += count
        # RAM data section follows the instruction stream.  Each block
        # keeps one image per lane: shape (batch, depth).
        ram_base = table_base + 2 * num_parts + int(words[7])
        self.ram_arrays: list[np.ndarray] = []
        self.ram_shapes: list[tuple[int, int]] = []
        #: pristine per-block images (depth,), kept for :meth:`reset`
        self._ram_init: list[np.ndarray] = []
        pos = ram_base
        for _ in range(num_rams):
            shape = int(words[pos])
            depth = int(words[pos + 1])
            self.ram_shapes.append((shape >> 16, shape & 0xFFFF))
            image = words[pos + 2 : pos + 2 + depth].astype(np.uint32)
            self._ram_init.append(image)
            self.ram_arrays.append(np.repeat(image[None, :], batch, axis=0).copy())
            pos += 2 + depth
        # Reset section: flip-flop init values as global bit indices.
        reset_count = int(words[pos])
        self._reset_ones = words[pos + 1 : pos + 1 + reset_count].astype(np.int64)

        # Decode-time index tables for vectorized PI scatter / PO gather.
        self._pi_tables = {
            name: np.asarray(indices, dtype=np.int64)
            for name, indices in self.meta.pi_index.items()
        }
        self._po_tables = {
            name: np.asarray(indices, dtype=np.int64)
            for name, indices in self.meta.po_index.items()
        }

        self.global_state = self.engine.zeros(self.global_bits)
        self.global_state[self._reset_ones] = self.engine.lane_mask
        self.counters = CycleCounters(lanes=batch)
        self.cycle = 0
        #: optional per-cycle signal tap (repro.obs.probe.ProbeTap); the
        #: hot-loop cost while detached is one attribute check per step,
        #: mirroring the TRACER.enabled guard.
        self._probe_tap = None

        # Stage fusion (cached alongside the decode).  Fusion is also run
        # in legacy mode so the fused_array_ops counter — the
        # dispatch-amortization denominator — is reported either way; if
        # a program cannot be fused the interpreter falls back to the
        # legacy path, which has no ordering preconditions.
        self._fused = None
        self._executor: FusedExecutor | None = None
        try:
            self._fused = fused_program(
                cache_key, self.partitions, self.stage_indices, self.engine
            )
        except FusionError as exc:
            if self.mode == "fused":
                logger.warning(
                    "stage fusion unavailable (%s); running legacy path", exc
                )
            self.mode = "legacy"
        if self.mode == "legacy" and self.backend.name != "numpy":
            logger.info(
                "%s backend only accelerates the fused path; "
                "legacy mode runs on numpy",
                self.backend.name,
            )
            self.backend = resolve_backend("numpy")
        if self.mode == "fused":
            self._executor = FusedExecutor(self._fused, self)
            self._locals: list[np.ndarray] = []
        else:
            self._locals = [self.engine.zeros(p.state_slots) for p in self.partitions]
        self._array_ops_per_cycle = (
            self._fused.static.array_ops
            if self._fused is not None
            else count_legacy_array_ops(self.partitions, self.stage_indices)
        )
        self._fused_ops_per_cycle = (
            self._fused.static.fused_array_ops if self._fused is not None else 0
        )

    # -- lifecycle ------------------------------------------------------------

    def reset(self) -> None:
        """Return to power-on state: FF reset values, pristine RAM images,
        cycle 0, fresh work counters, zeroed phase timers.

        Decoded tables, the fused program, and the executor's constant
        presets are immutable at runtime and stay shared; only mutable
        state is touched, so a reset interpreter replays a stimulus
        stream bit-identically to a freshly constructed one.
        """
        self.engine.clear_quarantine()
        self.global_state[:] = 0
        self.global_state[self._reset_ones] = self.engine.lane_mask
        for arr, init in zip(self.ram_arrays, self._ram_init):
            arr[:] = init[None, :]
        self.cycle = 0
        self.counters = CycleCounters(lanes=self.batch)
        self.reset_phase_times()

    def quarantine_lanes(self, lanes: Sequence[int]) -> None:
        """Mask stimulus lanes out of the batch (fault containment).

        Zeroes the quarantined lanes' bits across the global state vector
        and their per-lane RAM images, and records them on the engine's
        quarantine mask.  Healthy lanes' bits are untouched, so their
        simulation continues bit-identically; the quarantined lanes keep
        executing (the program's fold constants still drive them) but
        from an all-zero state, deterministically.  Call at a cycle
        boundary only — deferred writes must be drained.
        """
        lanes = sorted(set(int(lane) for lane in lanes))
        keep = self.engine.quarantine_lanes(lanes)
        self.global_state &= keep
        for arr in self.ram_arrays:
            if arr.size:
                arr[lanes, :] = 0

    @property
    def quarantined_lanes(self) -> list[int]:
        """Lane indices currently masked out by :meth:`quarantine_lanes`."""
        bits = self.engine.lane_bits(self.engine.quarantined)
        return np.nonzero(bits)[0].tolist()

    def reset_phase_times(self) -> None:
        """Zero the per-phase wall-clock timers (kept across ``step``
        calls so a run accumulates; call between measured runs)."""
        for phase in self.phase_times:
            self.phase_times[phase] = 0.0

    # -- execution ------------------------------------------------------------

    def _run_partition(
        self, part: _DecodedPartition, local: np.ndarray
    ) -> list[tuple[np.ndarray, np.ndarray, np.uint64 | None]]:
        """Execute one block; returns deferred (gidx, values, lane mask)
        scatters (mask ``None`` = unconditional commit)."""
        gstate = self.global_state
        local[:] = 0
        if part.read_gidx.size:
            local[part.read_slots] = gstate[part.read_gidx] ^ part.read_inv
        counters = self.counters
        fold_step = self.engine.fold_step
        for layer in part.layers:
            vec = local[layer.gather]
            for step in range(layer.eff_width_log2):
                vec = fold_step(vec, layer.xor_a[step], layer.xor_b[step], layer.or_b[step])
                positions, slots = layer.writebacks[step]
                if positions.size:
                    local[slots] = vec[positions]
            counters.fold_steps += layer.eff_width_log2
            counters.permutation_bits += layer.gather.size
        counters.layer_syncs += len(part.layers)

        deferred: list[tuple[np.ndarray, np.ndarray, np.uint64 | None]] = []
        slots, inv, gidx = part.gw_now
        if gidx.size:
            gstate[gidx] = local[slots] ^ inv
        slots, inv, gidx = part.gw_deferred
        if gidx.size:
            deferred.append((gidx, local[slots] ^ inv, None))
        for op in part.ramops:
            deferred.extend(self._run_ramop(op, local))
        counters.global_reads += int(part.read_gidx.size)
        counters.global_writes += int(part.gw_now[2].size + part.gw_deferred[2].size)
        counters.instruction_words += part.instruction_words
        return deferred

    def _run_ramop(
        self, op: _DecodedRamOp, local: np.ndarray
    ) -> list[tuple[np.ndarray, np.ndarray, np.uint64 | None]]:
        """One RAM port, all lanes at once, addresses computed per lane.

        Read-first semantics: the read samples the array *before* this
        port's write lands, lane by lane.
        """
        eng = self.engine
        # scalar words for K == 1, (K,) plane rows beyond — np.any gates
        # both without the ambiguous array truthiness
        ren = (local[op.ren_slot] ^ op.ren_inv) & eng.lane_mask
        wen = (local[op.wen_slot] ^ op.wen_inv) & eng.lane_mask
        array = self.ram_arrays[op.spec.ram_index]
        deferred: list[tuple[np.ndarray, np.ndarray, np.uint64 | None]] = []
        if bool(np.any(ren)):
            raddr = eng.lane_values(local[op.raddr_slots] ^ op.raddr_inv, op.addr_weights)
            lanes = np.nonzero(eng.lane_bits(ren))[0]
            sampled = np.zeros(eng.batch, dtype=np.uint64)
            sampled[lanes] = array[lanes, raddr[lanes]]  # before the write
            values = eng.pack_lane_values(sampled, op.spec.data_bits)
            deferred.append((op.rd_gidx, values, ren))
            self.counters.global_writes += op.spec.data_bits
        if bool(np.any(wen)):
            waddr = eng.lane_values(local[op.waddr_slots] ^ op.waddr_inv, op.addr_weights)
            wdata = eng.lane_values(local[op.wdata_slots] ^ op.wdata_inv, op.data_weights)
            lanes = np.nonzero(eng.lane_bits(wen))[0]
            array[lanes, waddr[lanes]] = wdata[lanes].astype(array.dtype)
        return deferred

    # -- stimulus injection ---------------------------------------------------

    def _inject_broadcast(self, inputs: Mapping[str, int] | None) -> None:
        """Write one input vector to every lane (vectorized scatter)."""
        gstate = self.global_state
        engine = self.engine
        for name, idx in self._pi_tables.items():
            value = (inputs or {}).get(name, 0)
            gstate[idx] = engine.broadcast_int(value, idx.size)

    def _inject_lanes(self, vecs: Sequence[Mapping[str, int]]) -> None:
        """Write one input vector per lane."""
        gstate = self.global_state
        engine = self.engine
        for name, idx in self._pi_tables.items():
            values = [(vec or {}).get(name, 0) for vec in vecs]
            first = values[0]
            if all(v == first for v in values):
                gstate[idx] = engine.broadcast_int(first, idx.size)
            else:
                gstate[idx] = engine.pack_lanes(values, idx.size)

    # -- the cycle ------------------------------------------------------------

    def _run_cycle(self) -> list[tuple[np.ndarray, np.ndarray, np.uint64 | None]]:
        counters = self.counters
        if self.mode == "fused":
            deferred = self._executor.run_cycle()
            work = self._fused.static
            counters.instruction_words += work.instruction_words
            counters.fold_steps += work.fold_steps
            counters.permutation_bits += work.permutation_bits
            counters.layer_syncs += work.layer_syncs
            counters.device_syncs += work.device_syncs
            counters.global_reads += work.global_reads
            counters.global_writes += work.global_writes
        else:
            t0 = time.perf_counter() if self.profile else 0.0
            deferred = []
            for stage_parts in self.stage_indices:
                for idx in stage_parts:
                    deferred.extend(
                        self._run_partition(self.partitions[idx], self._locals[idx])
                    )
                counters.device_syncs += 1
            if self.profile:
                self.phase_times["fold"] += time.perf_counter() - t0
        counters.array_ops += self._array_ops_per_cycle
        counters.fused_array_ops += self._fused_ops_per_cycle
        return deferred

    def _commit(self, deferred: list[tuple[np.ndarray, np.ndarray, np.uint64 | None]]) -> None:
        t0 = time.perf_counter() if self.profile else 0.0
        gstate = self.global_state
        merge = self.engine.merge
        for gidx, values, mask in deferred:
            merge(gstate, gidx, values, mask)
        if self.profile:
            self.phase_times["commit"] += time.perf_counter() - t0
        self.counters.cycles += 1
        self.cycle += 1

    def step(self, inputs: Mapping[str, int] | None = None) -> dict[str, int]:
        """Simulate one cycle; returns the settled primary output words.

        With ``batch > 1`` the inputs are broadcast to every lane and the
        returned outputs are lane 0's (all lanes see identical stimulus
        unless :meth:`step_lanes` is used).  When the global tracer is
        enabled the cycle is recorded as a span with per-phase children
        (the only hot-loop cost while it is disabled is this one check).
        """
        if TRACER.enabled:
            return _trace_cycle(self, self._step_impl, inputs)
        return self._step_impl(inputs)

    def _step_impl(self, inputs: Mapping[str, int] | None) -> dict[str, int]:
        if self.profile:
            t0 = time.perf_counter()
            self._inject_broadcast(inputs)
            self.phase_times["inject"] += time.perf_counter() - t0
        else:
            self._inject_broadcast(inputs)
        deferred = self._run_cycle()
        if self._probe_tap is not None:
            self._probe_tap.capture(self)
        outs = self.outputs()
        self._commit(deferred)
        return outs

    def step_lanes(
        self, inputs: Sequence[Mapping[str, int]] | Mapping[str, int] | None = None
    ) -> list[dict[str, int]]:
        """Simulate one cycle with per-lane stimulus; returns per-lane outputs.

        ``inputs`` is either one mapping (broadcast to all lanes) or a
        sequence of exactly ``batch`` mappings, one per lane.
        """
        if TRACER.enabled:
            return _trace_cycle(self, self._step_lanes_impl, inputs)
        return self._step_lanes_impl(inputs)

    def _step_lanes_impl(
        self, inputs: Sequence[Mapping[str, int]] | Mapping[str, int] | None
    ) -> list[dict[str, int]]:
        t0 = time.perf_counter() if self.profile else 0.0
        if inputs is None or isinstance(inputs, Mapping):
            self._inject_broadcast(inputs)
        else:
            if len(inputs) != self.batch:
                raise ValueError(
                    f"expected {self.batch} per-lane input vectors, got {len(inputs)}"
                )
            self._inject_lanes(inputs)
        if self.profile:
            self.phase_times["inject"] += time.perf_counter() - t0
        deferred = self._run_cycle()
        if self._probe_tap is not None:
            self._probe_tap.capture(self)
        outs = self.outputs_lanes()
        self._commit(deferred)
        return outs

    # -- observation ----------------------------------------------------------

    def attach_probe(self, tap) -> None:
        """Bind a signal tap (:class:`repro.obs.probe.ProbeTap`).

        The tap's ``capture`` runs once per cycle at the settled point:
        after the combinational waves (POs and cut values hold cycle-t
        results) but before deferred commits land (FF bits still hold the
        state that *entered* the cycle) — the exact observation point of
        the gate-level reference right after its first settle.
        """
        self._probe_tap = tap

    def detach_probe(self) -> None:
        self._probe_tap = None

    def outputs(self) -> dict[str, int]:
        """Lane 0's primary output words (vectorized gather)."""
        gstate = self.global_state
        if self.engine.words > 1:
            return {
                name: bits_to_int(gstate[idx, 0] & _ONE)
                for name, idx in self._po_tables.items()
            }
        return {
            name: bits_to_int(gstate[idx] & _ONE)
            for name, idx in self._po_tables.items()
        }

    def outputs_lanes(self) -> list[dict[str, int]]:
        """Primary output words of every lane."""
        gstate = self.global_state
        engine = self.engine
        gathered = {name: gstate[idx] for name, idx in self._po_tables.items()}
        return [
            {name: engine.lane_int(words, lane) for name, words in gathered.items()}
            for lane in range(self.batch)
        ]

    def run(self, stimuli: Iterable[Mapping[str, int]]) -> list[dict[str, int]]:
        return [self.step(vec) for vec in stimuli]

    def run_lanes(
        self, stimuli: Iterable[Sequence[Mapping[str, int]] | Mapping[str, int]]
    ) -> list[list[dict[str, int]]]:
        """Per-cycle, per-lane outputs for a stream of (per-lane) stimuli."""
        return [self.step_lanes(vec) for vec in stimuli]


def _trace_cycle(interp: GemInterpreter, impl, inputs):
    """Run one ``step``/``step_lanes`` under the span tracer.

    Tracing implies per-phase timing: the profile timers are forced on
    for the cycle so the emitted span carries inject/gather/fold/commit
    children derived from the ``phase_times`` deltas.  The timers keep
    their accumulated totals (tracing surfaces them, it never hides
    work), and ``profile`` is restored afterwards.
    """
    t0 = time.perf_counter()
    before = dict(interp.phase_times)
    prev_profile = interp.profile
    interp.profile = True
    try:
        out = impl(inputs)
    finally:
        interp.profile = prev_profile
    dur = time.perf_counter() - t0
    phases = {k: interp.phase_times[k] - before[k] for k in before}
    TRACER.cycle(interp.cycle - 1, t0, dur, phases)
    return out


def _decode_ramop(op: isa.RamOp, engine: ExecutionEngine) -> _DecodedRamOp:
    """Precompute index/inversion/weight tables for one RAM port."""

    def refs(pairs: list[tuple[int, bool]]) -> tuple[np.ndarray, np.ndarray]:
        slots = np.array([slot for slot, _ in pairs], dtype=np.int64)
        inv = engine.const_mask(np.array([inv for _, inv in pairs], dtype=bool))
        return slots, inv

    raddr_slots, raddr_inv = refs(op.raddr)
    waddr_slots, waddr_inv = refs(op.waddr)
    wdata_slots, wdata_inv = refs(op.wdata)
    return _DecodedRamOp(
        spec=op,
        raddr_slots=raddr_slots,
        raddr_inv=raddr_inv,
        waddr_slots=waddr_slots,
        waddr_inv=waddr_inv,
        wdata_slots=wdata_slots,
        wdata_inv=wdata_inv,
        ren_slot=op.ren[0],
        ren_inv=engine.scalar_mask(op.ren[1]),
        wen_slot=op.wen[0],
        wen_inv=engine.scalar_mask(op.wen[1]),
        addr_weights=weights(op.addr_bits),
        data_weights=weights(op.data_bits),
        rd_gidx=np.arange(op.rd_global_base, op.rd_global_base + op.data_bits),
    )


def _decode_partition(words: np.ndarray, engine: ExecutionEngine) -> _DecodedPartition:
    """Decode one partition's instruction stream into lane-masked tables."""
    pos = 0
    stage = 0
    state_slots = 0
    read_chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    layers: list[_DecodedLayer] = []
    gw_now: list[tuple[int, bool, int]] = []
    gw_deferred: list[tuple[int, bool, int]] = []
    ramops: list[_DecodedRamOp] = []
    pending_perm: list[tuple[np.ndarray, np.ndarray]] = []

    while pos < len(words):
        opcode, length, count = isa.parse_header(int(words[pos]))
        inst = words[pos : pos + length]
        if opcode is isa.Opcode.INIT:
            info = isa.decode_init(inst)
            stage = info["stage"]
            state_slots = info["state_slots"]
        elif opcode is isa.Opcode.READ:
            read_chunks.append(isa.decode_read(inst, count))
        elif opcode is isa.Opcode.PERM:
            pending_perm.append(isa.decode_perm(inst, count))
        elif opcode is isa.Opcode.FOLD:
            eff = count
            xor_a, xor_b, or_b = isa.decode_fold(inst, eff)
            gather = np.zeros(1 << eff, dtype=np.int64)
            for leaves, slots in pending_perm:
                inside = leaves < (1 << eff)
                gather[leaves[inside]] = slots[inside]
            pending_perm = []
            layers.append(
                _DecodedLayer(
                    eff_width_log2=eff,
                    gather=gather,
                    xor_a=[engine.const_mask(a) for a in xor_a],
                    xor_b=[engine.const_mask(b) for b in xor_b],
                    or_b=[engine.const_mask(o) for o in or_b],
                    writebacks=[
                        (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
                        for _ in range(eff)
                    ],
                )
            )
        elif opcode is isa.Opcode.WB:
            steps, positions, slots = isa.decode_wb(inst, count)
            layer = layers[-1]
            for s in range(layer.eff_width_log2):
                sel = steps == s
                if sel.any():
                    old_pos, old_slot = layer.writebacks[s]
                    layer.writebacks[s] = (
                        np.concatenate([old_pos, positions[sel]]),
                        np.concatenate([old_slot, slots[sel]]),
                    )
        elif opcode is isa.Opcode.GWRITE:
            slots, inv, gidx, deferred_flags = isa.decode_gwrite(inst, count)
            for s, iv, g, d in zip(slots, inv, gidx, deferred_flags):
                (gw_deferred if d else gw_now).append((int(s), bool(iv), int(g)))
        elif opcode is isa.Opcode.RAMOP:
            ramops.append(_decode_ramop(isa.decode_ramop(inst), engine))
        else:  # pragma: no cover - parse_header already validates
            raise BitstreamError(f"unknown opcode {opcode}")
        pos += length

    def pack_reads() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if not read_chunks:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, engine.const_mask(np.zeros(0, dtype=bool))
        g = np.concatenate([c[0] for c in read_chunks])
        s = np.concatenate([c[1] for c in read_chunks])
        i = np.concatenate([c[2] for c in read_chunks])
        return g, s, engine.const_mask(i)

    def pack_gw(entries: list[tuple[int, bool, int]]):
        if not entries:
            empty = np.zeros(0, dtype=np.int64)
            return empty.copy(), engine.const_mask(np.zeros(0, dtype=bool)), empty.copy()
        slots = np.array([e[0] for e in entries], dtype=np.int64)
        inv = engine.const_mask(np.array([e[1] for e in entries], dtype=bool))
        gidx = np.array([e[2] for e in entries], dtype=np.int64)
        return slots, inv, gidx

    read_gidx, read_slots, read_inv = pack_reads()
    return _DecodedPartition(
        stage=stage,
        state_slots=max(1, state_slots),
        read_gidx=read_gidx,
        read_slots=read_slots,
        read_inv=read_inv,
        layers=layers,
        gw_now=pack_gw(gw_now),
        gw_deferred=pack_gw(gw_deferred),
        ramops=ramops,
        instruction_words=len(words),
    )
