"""Extended and-inverter graph (E-AIG), the paper's circuit format (Fig. 2).

An E-AIG contains:

* **AND** nodes over complementable edges (INVERT gates are edge attributes,
  the standard AIG encoding; the paper's fake ASIC library gives INV gates
  0 ps, so logic depth counts AND levels only);
* **FF** nodes — D flip-flops clocked by the single implicit clock;
* **RAM** blocks — the fixed native RAM type (13-bit address × 32-bit data
  by default) with one synchronous read port and one write port.  General
  behavioral RAMs are decomposed onto this type by
  :mod:`repro.core.ram_mapping`.

Edges are *literals*: ``lit = 2 * node + negated``.  Node 0 is the constant
false, so literal 0 is ``0`` and literal 1 is ``1``.

The class performs structural hashing and constant folding on construction
(``AND(x, 0) = 0``, ``AND(x, 1) = x``, ``AND(x, x) = x``,
``AND(x, ~x) = 0``), which is the first half of the depth-oriented synthesis
step; the rest lives in :mod:`repro.core.depth_opt`.

:class:`EAIGSim` is the bit-level golden simulator for the format, used to
cross-check both the word-level golden model and the GEM interpreter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

FALSE = 0  #: literal constant false
TRUE = 1  #: literal constant true


class NodeKind(enum.IntEnum):
    CONST = 0  # node 0 only
    PI = 1
    AND = 2
    FF = 3
    RAMRD = 4  # one bit of a RAM block's registered read data


def lit(node: int, neg: bool = False) -> int:
    """Build a literal from a node index and a complement flag."""
    return 2 * node + (1 if neg else 0)


def lit_node(literal: int) -> int:
    return literal >> 1


def lit_neg(literal: int) -> bool:
    return bool(literal & 1)


def lit_not(literal: int) -> int:
    return literal ^ 1


@dataclass
class Ram:
    """One native RAM block instance.

    Ports are literal vectors into the same E-AIG.  Semantics per clock
    edge (matching :class:`repro.rtl.memory.Memory` read-first behaviour)::

        if wen: ram[waddr] <= wdata
        rdata  <= ram[raddr_old] if ren else rdata   # sampled before write

    ``rdata`` is exposed through ``data_nodes``: RAMRD nodes owned by this
    block, one per data bit.
    """

    index: int
    name: str
    addr_bits: int
    data_bits: int
    raddr: list[int] = field(default_factory=list)
    ren: int = TRUE
    waddr: list[int] = field(default_factory=list)
    wdata: list[int] = field(default_factory=list)
    wen: int = FALSE
    data_nodes: list[int] = field(default_factory=list)
    init: list[int] = field(default_factory=list)

    @property
    def depth(self) -> int:
        return 1 << self.addr_bits

    def port_literals(self) -> list[int]:
        """All input literals consumed by this RAM block."""
        return [*self.raddr, self.ren, *self.waddr, *self.wdata, self.wen]


class EAIG:
    """Extended and-inverter graph with structural hashing."""

    def __init__(self, name: str = "eaig") -> None:
        self.name = name
        # Per-node parallel arrays (compact, cache-friendly for big graphs).
        self.kind: list[NodeKind] = [NodeKind.CONST]
        self.fanin0: list[int] = [FALSE]  # AND: literal a; FF: literal d
        self.fanin1: list[int] = [FALSE]  # AND: literal b
        self.aux: list[int] = [0]  # PI: input index; FF: init; RAMRD: packed ram/bit
        #: Incrementally maintained logic level per node (AND adds a level).
        self.level_of: list[int] = [0]
        self.names: dict[int, str] = {}
        self.pis: list[int] = []
        self.ffs: list[int] = []
        self.rams: list[Ram] = []
        self.outputs: list[tuple[str, int]] = []
        self._strash: dict[tuple[int, int], int] = {}
        #: FFs created before their d input is known (two-phase construction)
        self._pending_ffs: set[int] = set()

    # -- construction --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.kind)

    def _new_node(self, kind: NodeKind, f0: int = FALSE, f1: int = FALSE, aux: int = 0) -> int:
        node = len(self.kind)
        self.kind.append(kind)
        self.fanin0.append(f0)
        self.fanin1.append(f1)
        self.aux.append(aux)
        if kind is NodeKind.AND:
            self.level_of.append(1 + max(self.level_of[f0 >> 1], self.level_of[f1 >> 1]))
        else:
            self.level_of.append(0)
        return node

    def add_pi(self, name: str | None = None) -> int:
        """Add a primary input; returns its (positive) literal."""
        node = self._new_node(NodeKind.PI, aux=len(self.pis))
        self.pis.append(node)
        if name:
            self.names[node] = name
        return lit(node)

    def add_and(self, a: int, b: int) -> int:
        """Add (or reuse) an AND node; returns the output literal.

        Applies constant folding and structural hashing, so the returned
        literal may refer to an existing node or a constant.
        """
        if a > b:
            a, b = b, a
        if a == FALSE:
            return FALSE
        if a == TRUE:
            return b
        if a == b:
            return a
        if a == lit_not(b):
            return FALSE
        key = (a, b)
        node = self._strash.get(key)
        if node is None:
            node = self._new_node(NodeKind.AND, a, b)
            self._strash[key] = node
        return lit(node)

    def add_or(self, a: int, b: int) -> int:
        return lit_not(self.add_and(lit_not(a), lit_not(b)))

    def add_xor(self, a: int, b: int) -> int:
        return self.add_or(self.add_and(a, lit_not(b)), self.add_and(lit_not(a), b))

    def add_mux(self, sel: int, a: int, b: int) -> int:
        """``sel ? a : b``."""
        if a == b:
            return a
        if sel == TRUE:
            return a
        if sel == FALSE:
            return b
        return self.add_or(self.add_and(sel, a), self.add_and(lit_not(sel), b))

    def add_ff(self, init: int = 0, name: str | None = None) -> int:
        """Declare a flip-flop (d assigned later); returns its literal."""
        node = self._new_node(NodeKind.FF, aux=init)
        self.ffs.append(node)
        self._pending_ffs.add(node)
        if name:
            self.names[node] = name
        return lit(node)

    def set_ff_input(self, ff_literal: int, d: int) -> None:
        node = lit_node(ff_literal)
        if self.kind[node] is not NodeKind.FF:
            raise ValueError(f"node {node} is not a FF")
        if node not in self._pending_ffs:
            raise ValueError(f"FF {node} input already set")
        if lit_neg(ff_literal):
            raise ValueError("set_ff_input expects the positive FF literal")
        self.fanin0[node] = d
        self._pending_ffs.discard(node)

    def add_ram(self, name: str, addr_bits: int, data_bits: int, init: Sequence[int] = ()) -> Ram:
        """Declare a native RAM block; ports are wired by the caller."""
        ram = Ram(index=len(self.rams), name=name, addr_bits=addr_bits, data_bits=data_bits, init=list(init))
        for bit in range(data_bits):
            node = self._new_node(NodeKind.RAMRD, aux=(ram.index << 8) | bit)
            ram.data_nodes.append(node)
        self.rams.append(ram)
        return ram

    def add_output(self, name: str, literal: int) -> None:
        self.outputs.append((name, literal))

    def check(self) -> None:
        """Validate completeness: no pending FFs, RAM ports fully wired."""
        if self._pending_ffs:
            raise ValueError(f"{len(self._pending_ffs)} FFs have no d input")
        n = len(self.kind)
        for ram in self.rams:
            if len(ram.raddr) != ram.addr_bits or len(ram.waddr) != ram.addr_bits:
                raise ValueError(f"RAM {ram.name!r}: address ports incomplete")
            if len(ram.wdata) != ram.data_bits:
                raise ValueError(f"RAM {ram.name!r}: write data port incomplete")
            for literal in ram.port_literals():
                if lit_node(literal) >= n:
                    raise ValueError(f"RAM {ram.name!r}: dangling port literal {literal}")
        for _, literal in self.outputs:
            if lit_node(literal) >= n:
                raise ValueError(f"dangling output literal {literal}")

    # -- analysis --------------------------------------------------------------

    def num_gates(self) -> int:
        """Number of AND gates (the paper's '#E-AIG Gates' metric)."""
        return sum(1 for k in self.kind if k is NodeKind.AND)

    def levels(self) -> list[int]:
        """Logic level per node: AND = 1 + max(inputs); sources = 0.

        Matches the paper's delay model (AND/OR = 1 ps, INV = 0 ps): only
        AND nodes add a level, inverters are free edge attributes.
        """
        level = [0] * len(self.kind)
        for node in range(len(self.kind)):
            if self.kind[node] is NodeKind.AND:
                a = level[lit_node(self.fanin0[node])]
                b = level[lit_node(self.fanin1[node])]
                level[node] = 1 + (a if a > b else b)
        return level

    def lit_level(self, literal: int) -> int:
        """Incrementally tracked logic level of a literal's node."""
        return self.level_of[literal >> 1]

    def depth(self) -> int:
        """Maximum logic level over all nodes (the paper's '#Levels')."""
        lvl = self.levels()
        return max(lvl) if lvl else 0

    def level_histogram(self) -> dict[int, int]:
        """AND-gate count per logic level — exhibits the long tail (Obs. 4)."""
        hist: dict[int, int] = {}
        lvl = self.levels()
        for node in range(len(self.kind)):
            if self.kind[node] is NodeKind.AND:
                hist[lvl[node]] = hist.get(lvl[node], 0) + 1
        return hist

    def state_roots(self) -> list[int]:
        """Literals that must be computed every cycle: FF inputs, RAM ports,
        and primary outputs.  These are the 'endpoints' partitioning uses."""
        roots = [self.fanin0[ff] for ff in self.ffs]
        for ram in self.rams:
            roots.extend(ram.port_literals())
        roots.extend(literal for _, literal in self.outputs)
        return roots

    def fanout_counts(self) -> list[int]:
        counts = [0] * len(self.kind)
        for node in range(len(self.kind)):
            if self.kind[node] is NodeKind.AND:
                counts[lit_node(self.fanin0[node])] += 1
                counts[lit_node(self.fanin1[node])] += 1
            elif self.kind[node] is NodeKind.FF:
                counts[lit_node(self.fanin0[node])] += 1
        for ram in self.rams:
            for literal in ram.port_literals():
                counts[lit_node(literal)] += 1
        for _, literal in self.outputs:
            counts[lit_node(literal)] += 1
        return counts

    def cone(self, roots: Iterable[int]) -> set[int]:
        """Transitive combinational fan-in nodes of ``roots`` literals.

        Stops at PIs, FFs, RAMRDs and constants (state sources); the result
        contains only AND node indices, the replication unit of RepCut.
        """
        seen: set[int] = set()
        stack = [lit_node(r) for r in roots]
        while stack:
            node = stack.pop()
            if node in seen or self.kind[node] is not NodeKind.AND:
                continue
            seen.add(node)
            stack.append(lit_node(self.fanin0[node]))
            stack.append(lit_node(self.fanin1[node]))
        return seen

    def stats(self) -> dict:
        return {
            "name": self.name,
            "nodes": len(self.kind),
            "gates": self.num_gates(),
            "levels": self.depth(),
            "pis": len(self.pis),
            "ffs": len(self.ffs),
            "rams": len(self.rams),
            "outputs": len(self.outputs),
        }


class EAIGSim:
    """Golden bit-level simulator for an E-AIG.

    Evaluates nodes in index order, which is topological by construction
    (every fanin literal refers to an already-created node, except FF d
    inputs which are state).  Time-parallel: values are Python ints used as
    bit masks, so ``vectors`` independent test sequences simulate at once.
    """

    def __init__(self, eaig: EAIG, vectors: int = 1) -> None:
        eaig.check()
        self.eaig = eaig
        self.vectors = vectors
        self.vmask = (1 << vectors) - 1
        self.value: list[int] = [0] * len(eaig.kind)
        for ff in eaig.ffs:
            self.value[ff] = self.vmask if eaig.aux[ff] else 0
        #: RAM contents, one array of int-bitmask words per vector lane —
        #: stored as per-lane lists because addresses differ across lanes.
        self.ram_words: list[list[list[int]]] = []
        for ram in eaig.rams:
            words = ram.init + [0] * (ram.depth - len(ram.init))
            self.ram_words.append([list(words[: ram.depth]) for _ in range(vectors)])
        self.cycle = 0

    def _lit_value(self, literal: int) -> int:
        v = self.value[lit_node(literal)]
        return (~v & self.vmask) if lit_neg(literal) else v

    def settle(self, pi_values: Mapping[str, int] | Sequence[int]) -> None:
        """Drive PI values (bitmask per vector lane) and evaluate all ANDs."""
        eaig = self.eaig
        if isinstance(pi_values, Mapping):
            by_name = {eaig.names.get(node, f"pi{idx}"): node for idx, node in enumerate(eaig.pis)}
            for name, val in pi_values.items():
                node = by_name.get(name)
                if node is None:
                    raise KeyError(f"unknown PI {name!r}")
                self.value[node] = val & self.vmask
        else:
            if len(pi_values) != len(eaig.pis):
                raise ValueError(f"expected {len(eaig.pis)} PI values, got {len(pi_values)}")
            for node, val in zip(eaig.pis, pi_values):
                self.value[node] = val & self.vmask
        value = self.value
        kind = eaig.kind
        fanin0 = eaig.fanin0
        fanin1 = eaig.fanin1
        vmask = self.vmask
        for node in range(1, len(kind)):
            if kind[node] is NodeKind.AND:
                a = fanin0[node]
                b = fanin1[node]
                va = value[a >> 1] ^ (vmask if a & 1 else 0)
                vb = value[b >> 1] ^ (vmask if b & 1 else 0)
                value[node] = va & vb

    def _lane_bits(self, literals: Sequence[int], lane: int) -> int:
        word = 0
        for i, literal in enumerate(literals):
            if (self._lit_value(literal) >> lane) & 1:
                word |= 1 << i
        return word

    def clock_edge(self) -> None:
        eaig = self.eaig
        ff_next = [(ff, self._lit_value(eaig.fanin0[ff])) for ff in eaig.ffs]
        ram_next: list[list[int | None]] = []
        for ram_idx, ram in enumerate(eaig.rams):
            lanes: list[int | None] = []
            for lane in range(self.vectors):
                if (self._lit_value(ram.ren) >> lane) & 1:
                    raddr = self._lane_bits(ram.raddr, lane)
                    lanes.append(self.ram_words[ram_idx][lane][raddr])
                else:
                    lanes.append(None)  # hold
            ram_next.append(lanes)
        for ram_idx, ram in enumerate(eaig.rams):
            for lane in range(self.vectors):
                if (self._lit_value(ram.wen) >> lane) & 1:
                    waddr = self._lane_bits(ram.waddr, lane)
                    wdata = self._lane_bits(ram.wdata, lane)
                    self.ram_words[ram_idx][lane][waddr] = wdata
        for ff, val in ff_next:
            self.value[ff] = val
        for ram_idx, ram in enumerate(eaig.rams):
            for bit, node in enumerate(ram.data_nodes):
                current = self.value[node]
                new = current
                for lane in range(self.vectors):
                    word = ram_next[ram_idx][lane]
                    if word is None:
                        continue
                    bitval = (word >> bit) & 1
                    new = (new & ~(1 << lane)) | (bitval << lane)
                self.value[node] = new & self.vmask
        self.cycle += 1

    def step(self, pi_values: Mapping[str, int] | Sequence[int]) -> dict[str, int]:
        self.settle(pi_values)
        outs = self.outputs()
        self.clock_edge()
        return outs

    def outputs(self) -> dict[str, int]:
        return {name: self._lit_value(literal) for name, literal in self.eaig.outputs}
