"""Partition merging — Algorithm 1 of the paper (§III-C).

The hypergraph partitioner balances partition *sizes*, but the virtual
Boolean processor constrains partition *width* (state bits).  Rather than
teaching the partitioner a non-additive width objective, the paper
over-partitions and then greedily merges:

    1  Partition the design excessively so that each partition is mappable;
    2  for each partition p:
    3      sort other unvisited partitions by overlap size with p;
    4      for partition q with large-to-small overlap:
    5          try merging q with p; if the result is mappable, commit.

Merging partitions with large *node overlap* deduplicates replicated logic
(the shared nodes are stored once), so the merge both shrinks the partition
count and recovers replication cost.  The mappability probe is a real
placement run (:func:`repro.core.placement.place_partition`), so a commit
always comes with the finished placement for free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.boomerang import BoomerangConfig
from repro.core.eaig import EAIG
from repro.core.partition import PartitionPlan, PartitionSpec, compute_sources
from repro.core.placement import (
    PlacedPartition,
    RefineConfig,
    UnmappableError,
    place_partition,
    placement_cost,
)


@dataclass
class MergeResult:
    """Merged plan plus the placements produced by the mappability probes."""

    plan: PartitionPlan
    placements: list[PlacedPartition]
    partitions_before: int
    partitions_after: int

    def stats(self) -> dict:
        return {
            "partitions_before": self.partitions_before,
            "partitions_after": self.partitions_after,
            "replication_cost": self.plan.replication_cost(),
            "mean_utilization": self.mean_utilization(),
        }

    def mean_utilization(self) -> float:
        """Mean effective bit utilization (paper: ≥50% after Algorithm 1).

        Utilization of a core = fraction of its state bits that hold live
        values (sources + written-back nodes).
        """
        if not self.placements:
            return 0.0
        total = sum(p.num_slots / p.config.state_size for p in self.placements)
        return total / len(self.placements)


def _merge_specs(eaig: EAIG, p: PartitionSpec, q: PartitionSpec) -> PartitionSpec:
    merged = PartitionSpec(
        stage=p.stage,
        index=p.index,
        nodes=sorted(set(p.nodes) | set(q.nodes)),
        groups=p.groups + q.groups,
    )
    compute_sources(eaig, merged)
    return merged


def merge_partitions(
    eaig: EAIG,
    plan: PartitionPlan,
    config: BoomerangConfig | None = None,
    refine: RefineConfig | None = None,
    merge_limit: int | None = None,
) -> MergeResult:
    """Run Algorithm 1 on every stage of ``plan``.

    ``merge_limit`` caps how many merge candidates each base partition may
    probe (Algorithm 1 line 4) — the merge-aggressiveness knob: ``0``
    disables merging, ``None`` probes every overlap candidate as before.

    ``refine`` (iterations > 0) runs the simulated-annealing placement
    refinement *after* merging settles, re-placing only the final surviving
    partitions — the probe placements stay cheap and the SA budget is spent
    exactly once per shipped partition.  A refined placement is only adopted
    when it strictly improves :func:`repro.core.placement.placement_cost`.
    """
    config = config or BoomerangConfig()
    before = plan.num_partitions
    new_stages: list[list[PartitionSpec]] = []
    placements: list[PlacedPartition] = []

    for stage_specs in plan.stages:
        merged_stage, stage_placements = _merge_stage(
            eaig, stage_specs, config, merge_limit
        )
        for index, spec in enumerate(merged_stage):
            spec.index = index
        new_stages.append(merged_stage)
        placements.extend(stage_placements)

    if refine is not None and refine.iterations > 0:
        placements = [_refine_placement(eaig, p, config, refine) for p in placements]

    merged_plan = PartitionPlan(
        eaig=eaig,
        config=plan.config,
        cut_levels=plan.cut_levels,
        stages=new_stages,
        stage_results=plan.stage_results,
        stage_live=plan.stage_live,
    )
    merged_plan.validate()
    return MergeResult(
        plan=merged_plan,
        placements=placements,
        partitions_before=before,
        partitions_after=merged_plan.num_partitions,
    )


def _refine_placement(
    eaig: EAIG,
    placed: PlacedPartition,
    config: BoomerangConfig,
    refine: RefineConfig,
) -> PlacedPartition:
    refined = place_partition(eaig, placed.spec, config, refine=refine)
    return refined if placement_cost(refined) < placement_cost(placed) else placed


def _merge_stage(
    eaig: EAIG,
    specs: list[PartitionSpec],
    config: BoomerangConfig,
    merge_limit: int | None = None,
) -> tuple[list[PartitionSpec], list[PlacedPartition]]:
    """Algorithm 1 within one stage."""
    alive: dict[int, PartitionSpec] = dict(enumerate(specs))
    placed: dict[int, PlacedPartition] = {}
    node_sets: dict[int, set[int]] = {i: set(s.nodes) for i, s in alive.items()}
    visited: set[int] = set()

    for i in sorted(alive):
        if i not in alive:
            continue
        visited.add(i)
        base = alive[i]
        if i not in placed:
            placed[i] = place_partition(eaig, base, config)
        # Line 3: other unvisited partitions by overlap, large to small.
        candidates = sorted(
            (j for j in alive if j not in visited),
            key=lambda j: -len(node_sets[i] & node_sets[j]),
        )
        if merge_limit is not None:
            candidates = candidates[:merge_limit]
        for j in candidates:
            if j not in alive:
                continue
            trial = _merge_specs(eaig, base, alive[j])
            # Cheap pre-filter: a merged partition needs at least one slot
            # per source plus the constant slot.
            if len(trial.sources) + 1 > config.state_size:
                continue
            try:
                trial_placed = place_partition(eaig, trial, config)
            except UnmappableError:
                continue
            # Line 5: commit.
            base = trial
            alive[i] = trial
            placed[i] = trial_placed
            node_sets[i] = set(trial.nodes)
            del alive[j]
            node_sets.pop(j)
            placed.pop(j, None)

    order = sorted(alive)
    return [alive[i] for i in order], [placed[i] for i in order]
