"""Bitstream generation (paper §III-E).

Serializes a fully compiled design — synthesis result, partition plan and
placements — into the binary the GEM interpreter loads.  As the paper puts
it, this is simultaneously FPGA-style bitstream generation (it encodes the
wiring of a reconfigurable fabric) and a software assembler (the result is
interpreted by a virtual machine).

Binary layout (32-bit words)::

    [0]  magic 'GEMB'                [5]  number of stages
    [1]  format version              [6]  number of RAM blocks
    [2]  width_log2                  [7]  total instruction words
    [3]  global state bits           [8..] partitions per stage
    [4]  number of partitions
    per-partition offset table: (start word, word count) pairs
    instruction stream (per partition: INIT, READ*, {PERM*, FOLD, WB*}
                        per layer, GWRITE*, RAMOP*)
    RAM data section: per block, (addr_bits<<16|data_bits), depth words
    reset section: count, then global bit indices that power up as 1
    integrity footer: per-section (length, CRC32) pairs, section count,
                      footer magic (see :mod:`repro.core.integrity`)

Format version 2 split the container into four CRC32-protected sections
(header, instruction stream, RAM data, reset) so that any single-bit
corruption — a GPU soft error in the resident bitstream, a truncated
file — is detected at load instead of silently mis-simulating.
:class:`~repro.core.interpreter.GemInterpreter` verifies the footer
before decoding and raises :class:`~repro.errors.BitstreamError`.

Global state layout: ``[const0 | PIs | FF q | RAM read data | stage-cut
values | PO bits]``.  Host-side name→bit-index maps live in
:class:`ProgramMeta` (the sidecar a real flow would emit as JSON).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import isa
from repro.core.boomerang import BoomerangConfig
from repro.core.eaig import EAIG, lit_node
from repro.core.integrity import crc32_words, seal, unseal
from repro.core.merging import MergeResult
from repro.core.placement import PlacedPartition
from repro.core.synthesis import SynthesisResult
from repro.errors import BitstreamError
from repro.obs.trace import TRACER

MAGIC = 0x47454D42  # "GEMB"
VERSION = 2

#: payload sections of the container, in order (footer pairs match these)
SECTION_NAMES = ("header", "instructions", "ram", "reset")


def verify_integrity(words: np.ndarray) -> list[np.ndarray]:
    """Check every section CRC of an assembled bitstream.

    Returns the four payload sections; raises
    :class:`~repro.errors.BitstreamError` on any corruption.
    """
    sections = unseal(words, error=BitstreamError, what="bitstream")
    if len(sections) != len(SECTION_NAMES):
        raise BitstreamError(
            f"bitstream: expected {len(SECTION_NAMES)} sections, found {len(sections)}"
        )
    return sections


@dataclass
class ProgramMeta:
    """Host-side sidecar: how to feed inputs and read outputs."""

    config: BoomerangConfig
    global_bits: int
    #: input word name -> global bit indices (LSB first)
    pi_index: dict[str, list[int]]
    #: output word name -> global bit indices (LSB first)
    po_index: dict[str, list[int]]
    #: E-AIG node -> global bit index (PIs, FFs, RAM read bits, cut values)
    node_gidx: dict[int, int]
    stage_partition_counts: list[int]
    #: GemConfig.digest() of the compile that produced this program ("" when
    #: assembled outside the GemCompiler flow or loaded from an old cache)
    config_digest: str = ""


@dataclass
class GemProgram:
    """An assembled bitstream plus its host sidecar."""

    words: np.ndarray
    meta: ProgramMeta

    @property
    def num_bytes(self) -> int:
        return int(self.words.size) * 4

    def size_mb(self) -> float:
        return self.num_bytes / (1024 * 1024)

    def digest(self) -> int:
        """CRC32 over the whole container (binds checkpoints to programs)."""
        return crc32_words(self.words)


@dataclass
class _PartitionCode:
    instructions: list[np.ndarray] = field(default_factory=list)

    def extend(self, insts) -> None:
        if isinstance(insts, np.ndarray):
            self.instructions.append(insts)
        else:
            self.instructions.extend(insts)

    def words(self) -> np.ndarray:
        if not self.instructions:
            return np.zeros(0, dtype=np.uint32)
        return np.concatenate(self.instructions)


def allocate_global_state(eaig: EAIG, merge: MergeResult, synth: SynthesisResult) -> ProgramMeta:
    """Assign a global bit index to every globally visible value."""
    node_gidx: dict[int, int] = {}
    next_bit = 1  # bit 0 is a constant 0 (handy for unconnected reads)
    for pi in eaig.pis:
        node_gidx[pi] = next_bit
        next_bit += 1
    for ff in eaig.ffs:
        node_gidx[ff] = next_bit
        next_bit += 1
    for ram in eaig.rams:
        for node in ram.data_nodes:
            node_gidx[node] = next_bit
            next_bit += 1
    for spec in merge.plan.partitions:
        for node in spec.cut_nodes:
            node_gidx[node] = next_bit
            next_bit += 1
    po_index: dict[str, list[int]] = {}
    for name, bits in synth.output_bits.items():
        po_index[name] = list(range(next_bit, next_bit + len(bits)))
        next_bit += len(bits)
    pi_index = {
        name: [node_gidx[lit_node(l)] for l in bits]
        for name, bits in synth.input_bits.items()
    }
    config = merge.placements[0].config if merge.placements else BoomerangConfig()
    return ProgramMeta(
        config=config,
        global_bits=next_bit,
        pi_index=pi_index,
        po_index=po_index,
        node_gidx=node_gidx,
        stage_partition_counts=[len(s) for s in merge.plan.stages],
    )


def _effective_width_log2(placed: PlacedPartition, layer_index: int) -> int:
    """Trimmed tree width: the placement cursor packs leaves leftwards, so
    folding only the occupied power-of-two prefix is equivalent and much
    cheaper to execute (the interpreter honours this per-layer width)."""
    layer = placed.layers[layer_index]
    occupied = np.nonzero(layer.perm >= 0)[0]
    eff = 1
    if occupied.size:
        eff = max(eff, int(occupied[-1]).bit_length())
    for step, wbs in enumerate(layer.writebacks):
        for pos, _slot in wbs:
            eff = max(eff, step + 1 + pos.bit_length())
    return min(max(eff, 1), placed.config.width_log2)


def assemble_partition(
    eaig: EAIG, placed: PlacedPartition, meta: ProgramMeta, synth: SynthesisResult
) -> _PartitionCode:
    """Emit the instruction stream of one partition."""
    spec = placed.spec
    code = _PartitionCode()

    read_entries = [
        (meta.node_gidx[node], placed.slot_of[node], False) for node in spec.sources
    ]
    ramops: list[isa.RamOp] = []
    for ram_index in spec.ram_indices:
        ram = eaig.rams[ram_index]
        ramops.append(
            isa.RamOp(
                ram_index=ram_index,
                addr_bits=ram.addr_bits,
                data_bits=ram.data_bits,
                rd_global_base=meta.node_gidx[ram.data_nodes[0]],
                raddr=[placed.slot_and_invert(l) for l in ram.raddr],
                ren=placed.slot_and_invert(ram.ren),
                waddr=[placed.slot_and_invert(l) for l in ram.waddr],
                wdata=[placed.slot_and_invert(l) for l in ram.wdata],
                wen=placed.slot_and_invert(ram.wen),
            )
        )

    code.extend(
        isa.encode_init(
            stage=spec.stage,
            num_layers=len(placed.layers),
            state_slots=placed.num_slots,
            num_reads=len(read_entries),
            num_ramops=len(ramops),
        )
    )
    code.extend(isa.encode_read(read_entries))
    for li, layer in enumerate(placed.layers):
        eff = _effective_width_log2(placed, li)
        code.extend(isa.encode_perm(layer.perm))
        code.extend(isa.encode_fold(eff, layer.xor_a, layer.xor_b, layer.or_b))
        wb_entries = [
            (step, pos, slot)
            for step, wbs in enumerate(layer.writebacks)
            for pos, slot in wbs
        ]
        if wb_entries:
            code.extend(isa.encode_wb(wb_entries))

    gwrite_entries: list[tuple[int, bool, int, bool]] = []
    for group in spec.groups:
        if group.kind == "ff":
            slot, inv = placed.slot_and_invert(eaig.fanin0[group.ff_node])
            gwrite_entries.append((slot, inv, meta.node_gidx[group.ff_node], True))
        elif group.kind == "cut":
            slot, inv = placed.slot_and_invert(2 * group.cut_node)
            gwrite_entries.append((slot, inv, meta.node_gidx[group.cut_node], False))
        elif group.kind == "po":
            targets = meta.po_index[group.po_name]
            literals = synth.output_bits[group.po_name]
            for literal, gidx in zip(literals, targets):
                slot, inv = placed.slot_and_invert(literal)
                gwrite_entries.append((slot, inv, gidx, False))
    if gwrite_entries:
        code.extend(isa.encode_gwrite(gwrite_entries))
    for op in ramops:
        code.extend(isa.encode_ramop(op))
    return code


def assemble(
    eaig: EAIG, synth: SynthesisResult, merge: MergeResult, config_digest: str = ""
) -> GemProgram:
    """Assemble the complete program for a compiled design."""
    meta = allocate_global_state(eaig, merge, synth)
    meta.config_digest = config_digest
    # Partition order is stage-major: all stage-0 blocks, then stage-1, ...
    if TRACER.enabled:
        codes = []
        for pi, placed in enumerate(merge.placements):
            with TRACER.span(
                f"assemble:p{pi}",
                cat="compile.partition",
                args={"stage": placed.spec.stage, "layers": len(placed.layers)},
            ):
                codes.append(assemble_partition(eaig, placed, meta, synth))
    else:
        codes = [
            assemble_partition(eaig, placed, meta, synth) for placed in merge.placements
        ]
    num_parts = len(codes)
    num_stages = len(meta.stage_partition_counts)
    header_len = 8 + num_stages + 2 * num_parts
    offsets: list[tuple[int, int]] = []
    cursor = header_len
    chunks: list[np.ndarray] = []
    for code in codes:
        words = code.words()
        offsets.append((cursor, len(words)))
        chunks.append(words)
        cursor += len(words)
    total_inst_words = cursor - header_len

    # Reset section: global bits that power up as 1 (flip-flop init values).
    ones = [meta.node_gidx[ff] for ff in eaig.ffs if eaig.aux[ff]]
    reset_section = np.array([len(ones), *ones], dtype=np.uint32)

    ram_section: list[np.ndarray] = []
    for ram in eaig.rams:
        head = np.zeros(2, dtype=np.uint32)
        head[0] = (ram.addr_bits << 16) | ram.data_bits
        head[1] = ram.depth
        words = np.zeros(ram.depth, dtype=np.uint32)
        init = ram.init[: ram.depth]
        words[: len(init)] = np.asarray(init, dtype=np.uint32)
        ram_section.extend((head, words))

    header = np.zeros(header_len, dtype=np.uint32)
    header[0] = MAGIC
    header[1] = VERSION
    header[2] = meta.config.width_log2
    header[3] = meta.global_bits
    header[4] = num_parts
    header[5] = num_stages
    header[6] = len(eaig.rams)
    header[7] = total_inst_words
    for s, count in enumerate(meta.stage_partition_counts):
        header[8 + s] = count
    for i, (start, length) in enumerate(offsets):
        header[8 + num_stages + 2 * i] = start
        header[8 + num_stages + 2 * i + 1] = length

    inst_stream = (
        np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.uint32)
    )
    ram_words = (
        np.concatenate(ram_section) if ram_section else np.zeros(0, dtype=np.uint32)
    )
    words = seal([header, inst_stream, ram_words, reset_section])
    return GemProgram(words=words, meta=meta)


# -- fault injection -----------------------------------------------------------


def _fold_sites(instructions: np.ndarray) -> list[tuple[int, int]]:
    """(stream offset, eff_width_log2) of every FOLD with a live payload."""
    sites: list[tuple[int, int]] = []
    pos = 0
    while pos < instructions.size:
        opcode, length, count = isa.parse_header(int(instructions[pos]))
        if opcode is isa.Opcode.FOLD and count > 0:
            sites.append((pos, count))
        pos += length
    return sites


def count_fold_instructions(program: GemProgram) -> int:
    """Number of FOLD instructions with at least one live constant bit."""
    return len(_fold_sites(verify_integrity(program.words)[1]))


def mutate_fold_constant(program: GemProgram, fold_index: int, bit: int) -> GemProgram:
    """A copy of ``program`` with one boomerang fold-constant bit flipped.

    The differential fuzzer's canonical *semantics* bug: both GEM
    execution paths (stage-fused and legacy) decode the same instruction
    stream, so the mutation mis-simulates identically on both while the
    gate-level and word-level references stay correct — exactly the kind
    of defect only cross-engine checking can catch.  The mutated
    container is resealed (section CRCs recomputed), so it loads cleanly;
    this is a wrong *program*, not a corrupt one (contrast the SEU
    campaigns of :mod:`repro.runtime.faults`, which flip resident bits
    and expect integrity machinery to notice).

    ``fold_index`` selects a FOLD instruction (see
    :func:`count_fold_instructions`); ``bit`` indexes into its live
    constant bits, modulo the payload size so any non-negative value is
    usable.  Raises :class:`ValueError` when the program has no live fold
    constants.
    """
    sections = verify_integrity(program.words)
    instructions = sections[1].copy()
    sites = _fold_sites(instructions)
    if not sites:
        raise ValueError("program has no FOLD instructions with live constants")
    pos, eff_width_log2 = sites[fold_index % len(sites)]
    live_bits = 3 * ((1 << eff_width_log2) - 1)  # xor_a/xor_b/or_b per step
    target = bit % live_bits
    word = pos + 1 + (target >> 5)
    instructions[word] = np.uint32(instructions[word]) ^ np.uint32(1 << (target & 31))
    words = seal([sections[0], instructions, sections[2], sections[3]])
    return GemProgram(words=words, meta=program.meta)
