"""End-to-end GEM compile flow and user-facing simulator API.

``GemCompiler`` chains the paper's whole pipeline (Fig. 1's right side):

    RTL circuit → synthesis → depth optimization → multi-stage RepCut
    → Algorithm 1 merging (placements fall out of the mappability probes)
    → bitstream assembly

and returns a :class:`CompiledDesign` whose :meth:`CompiledDesign.simulator`
is ready to run stimuli.  :class:`CompileReport` carries the exact columns
of the paper's Table I (gates, levels, stages, layers, partitions,
bitstream size) plus the reproduction's extra accounting.

Typical use::

    from repro.core import GemCompiler
    design = GemCompiler().compile(circuit)
    sim = design.simulator()
    outs = sim.step({"in": 3})
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import TYPE_CHECKING

from repro.core.bitstream import GemProgram, assemble
from repro.core.boomerang import BoomerangConfig
from repro.core.depth_opt import optimize as depth_optimize
from repro.core.interpreter import GemInterpreter
from repro.core.merging import MergeResult, merge_partitions
from repro.core.partition import PartitionConfig, PartitionPlan, partition_design
from repro.core.placement import RefineConfig
from repro.core.synthesis import SynthesisConfig, SynthesisResult, synthesize
from repro.errors import UnmappableError
from repro.obs.trace import TRACER
from repro.rtl.ir import Circuit

if TYPE_CHECKING:
    from repro.fourstate.dualrail import DualRailCircuit


@dataclass
class GemConfig:
    """All knobs of the compile flow in one place."""

    synthesis: SynthesisConfig = field(default_factory=SynthesisConfig)
    partition: PartitionConfig = field(default_factory=PartitionConfig)
    boomerang: BoomerangConfig = field(default_factory=BoomerangConfig)
    #: run the depth-optimization cleanup after lowering
    optimize: bool = True
    #: halve gates_per_partition and retry when a base partition is
    #: unmappable (the paper's flow tunes partition granularity similarly)
    max_partition_retries: int = 3
    #: simulated-annealing placement refinement (iterations=0 disables)
    refine: RefineConfig = field(default_factory=RefineConfig)
    #: Algorithm 1 aggressiveness: max merge candidates probed per base
    #: partition (None = unlimited, 0 = no merging)
    merge_limit: int | None = None

    def __post_init__(self) -> None:
        # The partitioner's width budget must match the processor's state.
        self.partition.width = self.boomerang.state_size

    def knob_dict(self) -> dict:
        """Canonical JSON-friendly dump of every effective knob.

        This (not ``repr``) is the identity of a compile: cache keys and
        bitstream metadata derive from it via :meth:`digest`.
        """
        return asdict(self)

    def digest(self) -> str:
        """Stable hex digest of the effective knobs (sorted-key JSON)."""
        payload = json.dumps(self.knob_dict(), sort_keys=True, default=repr)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass
class CompileReport:
    """Table I columns for one design, straight from the real flow."""

    name: str
    gates: int
    levels: int
    stages: int
    #: maximum boomerang layer count over all partitions (per-cycle critical
    #: path inside a block)
    layers: int
    partitions: int
    bitstream_bytes: int
    replication_cost: float
    mean_utilization: float
    ram_blocks: int
    ffs: int
    #: digest of the GemConfig that produced this bitstream ("" = unknown)
    config_digest: str = ""

    def row(self) -> dict:
        return {
            "Design": self.name,
            "#E-AIG Gates": self.gates,
            "#Levels": self.levels,
            "#Stages": self.stages,
            "#Layers": self.layers,
            "#Parts": self.partitions,
            "Bitstream": f"{self.bitstream_bytes / (1024 * 1024):.1f} MB",
        }


@dataclass
class CompiledDesign:
    """Everything produced by one compile run."""

    synth: SynthesisResult
    plan: PartitionPlan
    merge: MergeResult
    program: GemProgram
    report: CompileReport
    #: set when this design was compiled through the dual-rail transform
    #: (:func:`repro.fourstate.fastpath.compile_fourstate`): the rail map
    #: needed to encode 4-state stimuli and decode 4-state outputs
    fourstate: "DualRailCircuit | None" = None

    @property
    def values(self) -> int:
        """Value system this design executes: 2 (plain) or 4 (dual-rail)."""
        return 4 if self.fourstate is not None else 2

    def simulator(
        self,
        batch: int = 1,
        mode: str = "fused",
        profile: bool = False,
        backend: str | None = None,
    ) -> "GemSimulator":
        """An execution engine for this design; ``batch`` packs that many
        independent stimulus lanes into every state word (docs/ENGINE.md).
        Batches beyond 64 must be a whole number of 64-lane words.

        ``mode`` selects the stage-fused executor (default) or the legacy
        per-partition interpreter; ``profile`` enables per-phase timers;
        ``backend`` picks the fused path's array backend
        (``numpy``/``numba``/``cupy``, with warn-once numpy fallback).

        Designs compiled for ``values=4`` return a
        :class:`~repro.fourstate.fastpath.FourStateSimulator` — the same
        engine over the dual-rail program, plus 4-state encode/decode.
        """
        if self.fourstate is not None:
            return FourStateSimulator(
                self.program,
                dual=self.fourstate,
                batch=batch,
                mode=mode,
                profile=profile,
                backend=backend,
            )
        return GemSimulator(
            self.program, batch=batch, mode=mode, profile=profile, backend=backend
        )


class GemSimulator(GemInterpreter):
    """The user-facing execution engine (paper's 'execution stage', §II).

    A thin veneer over :class:`~repro.core.interpreter.GemInterpreter`:
    word-valued inputs in, word-valued outputs out, with the per-cycle work
    counters exposed for the performance model.  Construct with
    ``batch=B`` to simulate up to 64 independent stimulus streams per
    bitwise op (``step``/``run`` then address lane 0; ``step_lanes`` /
    ``outputs_lanes`` address every lane).
    """


# Concrete 4-state simulator: GemSimulator over a dual-rail program with
# stimulus encoding / output decoding grafted on (defined in fastpath to
# keep the 4-state semantics in one package, instantiated here to keep
# the import DAG acyclic).
from repro.fourstate.fastpath import (  # noqa: E402
    make_fourstate_simulator_class as _make_fourstate_cls,
)

FourStateSimulator = _make_fourstate_cls(GemSimulator)


class GemCompiler:
    """Drives the compile stage (paper §III-B..E)."""

    def __init__(self, config: GemConfig | None = None) -> None:
        self.config = config or GemConfig()

    def compile(self, circuit: Circuit | SynthesisResult) -> CompiledDesign:
        config = self.config
        if isinstance(circuit, SynthesisResult):
            synth = circuit
        else:
            with TRACER.span("synthesis", cat="compile", args={"design": circuit.name}):
                synth = synthesize(circuit, config.synthesis)
            if config.optimize:
                with TRACER.span("depth_opt", cat="compile"):
                    synth = depth_optimize(synth)
        eaig = synth.eaig

        pconfig = config.partition
        merge: MergeResult | None = None
        plan: PartitionPlan | None = None
        for attempt in range(config.max_partition_retries + 1):
            with TRACER.span(
                "partition",
                cat="compile",
                args={
                    "attempt": attempt,
                    "gates_per_partition": pconfig.gates_per_partition,
                },
            ):
                plan = partition_design(eaig, pconfig)
            try:
                with TRACER.span(
                    "placement",
                    cat="compile",
                    args={
                        "partitions": plan.num_partitions,
                        "sa_iterations": config.refine.iterations,
                    },
                ):
                    merge = merge_partitions(
                        eaig,
                        plan,
                        config.boomerang,
                        refine=config.refine,
                        merge_limit=config.merge_limit,
                    )
                break
            except UnmappableError:
                pconfig = replace(
                    pconfig, gates_per_partition=max(64, pconfig.gates_per_partition // 2)
                )
        if merge is None or plan is None:
            raise UnmappableError(
                f"{eaig.name}: could not find a mappable partitioning even at "
                f"{pconfig.gates_per_partition} gates per partition"
            )

        config_digest = config.digest()
        with TRACER.span(
            "bitstream", cat="compile", args={"partitions": merge.plan.num_partitions}
        ):
            program = assemble(eaig, synth, merge, config_digest=config_digest)
        report = CompileReport(
            name=eaig.name,
            gates=eaig.num_gates(),
            levels=eaig.depth(),
            stages=merge.plan.num_stages,
            layers=max((len(p.layers) for p in merge.placements), default=0),
            partitions=merge.plan.num_partitions,
            bitstream_bytes=program.num_bytes,
            replication_cost=merge.plan.replication_cost(),
            mean_utilization=merge.mean_utilization(),
            ram_blocks=len(eaig.rams),
            ffs=len(eaig.ffs),
            config_digest=config_digest,
        )
        return CompiledDesign(synth=synth, plan=plan, merge=merge, program=program, report=report)


def compile_circuit(
    circuit: Circuit,
    config: GemConfig | None = None,
    *,
    values: int = 2,
    x_reset: bool = True,
    x_memory: bool = True,
) -> CompiledDesign:
    """Convenience one-shot compile.

    ``values=4`` compiles through the dual-rail transform so the fast
    engines execute X/Z semantics natively; ``x_reset`` / ``x_memory``
    control whether registers / memories power up unknown (only
    meaningful with ``values=4``).
    """
    from repro.fourstate.fastpath import compile_fourstate, validate_values

    if validate_values(values) == 4:
        return compile_fourstate(circuit, config, x_reset=x_reset, x_memory=x_memory)
    return GemCompiler(config).compile(circuit)
