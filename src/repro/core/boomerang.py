"""The boomerang-shaped executor layer (paper §III-A, Fig. 3).

A boomerang layer operates on the block state of a virtual Boolean
processor core (8192 bits by default).  Executing one layer means:

1. **gather** — a bit permutation loads ``width`` leaf bits from state
   (shared memory) positions given by ``perm``; ``-1`` loads the constant-0
   slot;
2. **fold** — ``width_log2`` fold steps; step ``l`` halves the vector by
   combining adjacent pairs ``(a, b) = (v[2i], v[2i+1])`` into::

       out[i] = (a ^ XOR.A[l][i]) & ((b ^ XOR.B[l][i]) | OR.B[l][i])

   ``XOR.A``/``XOR.B`` realize the AIG's INVERT edges; ``OR.B = 1``
   bypasses operand ``b`` so the position passes ``a ^ XOR.A`` through —
   the dashed routes of Fig. 6(4);
3. **writeback** — after fold step ``l``, positions carrying placed AIG
   node values are stored back to allocated state slots.

A single layer can therefore realize up to ``width_log2`` consecutive AIG
levels between synchronizations, which is the mechanism behind the paper's
">5× fewer permutations/synchronizations" claim (Fig. 3) reproduced in
``benchmarks/test_fig3_boomerang_ablation.py``.

This module holds the data model plus a NumPy reference executor; the
bit-exact bitstream interpreter in :mod:`repro.core.interpreter` uses the
same semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class BoomerangConfig:
    """Shape of the virtual Boolean processor core."""

    #: log2 of the leaf width; the paper's core folds 8192 bits (2^13)
    width_log2: int = 13
    #: state bits per core; defaults to the leaf width (the paper keeps
    #: "up to 8192 bits of circuit states" per core)
    state_bits: int | None = None

    @property
    def width(self) -> int:
        return 1 << self.width_log2

    @property
    def state_size(self) -> int:
        return self.state_bits if self.state_bits is not None else self.width

    @property
    def threads(self) -> int:
        """GPU threads per block (256 threads × 32 bits = 8192 lanes)."""
        return max(1, self.width // 32)


@dataclass
class Layer:
    """One placed boomerang layer, ready to execute."""

    config: BoomerangConfig
    #: state slot per leaf; -1 means "load constant 0"
    perm: np.ndarray
    #: per fold step (index 0 = first fold), bool vectors of halving sizes
    xor_a: list[np.ndarray] = field(default_factory=list)
    xor_b: list[np.ndarray] = field(default_factory=list)
    or_b: list[np.ndarray] = field(default_factory=list)
    #: per fold step, list of (position, state slot) stores
    writebacks: list[list[tuple[int, int]]] = field(default_factory=list)

    @classmethod
    def empty(cls, config: BoomerangConfig) -> "Layer":
        width = config.width
        layer = cls(config=config, perm=np.full(width, -1, dtype=np.int32))
        size = width // 2
        for _ in range(config.width_log2):
            layer.xor_a.append(np.zeros(size, dtype=bool))
            layer.xor_b.append(np.zeros(size, dtype=bool))
            # Default bypass: unoccupied positions pass operand a unchanged.
            layer.or_b.append(np.ones(size, dtype=bool))
            layer.writebacks.append([])
            size //= 2
        return layer

    def num_writebacks(self) -> int:
        return sum(len(w) for w in self.writebacks)

    def execute(self, state: np.ndarray) -> None:
        """Run gather → folds → writebacks over a bool state vector."""
        gather = np.where(self.perm >= 0, self.perm, 0)
        vec = state[gather]
        vec[self.perm < 0] = False
        for step in range(self.config.width_log2):
            a = vec[0::2]
            b = vec[1::2]
            vec = (a ^ self.xor_a[step]) & ((b ^ self.xor_b[step]) | self.or_b[step])
            for pos, slot in self.writebacks[step]:
                state[slot] = vec[pos]


def count_layer_work(layers: list[Layer]) -> dict:
    """Per-cycle work metrics for one partition's layer list.

    These counts feed the GPU performance model: each layer is one shared
    memory permutation plus ``width_log2`` fold steps, with one intra-block
    synchronization per layer (the quantity Fig. 3 is about).
    """
    if not layers:
        return {"layers": 0, "permutations": 0, "fold_steps": 0, "writebacks": 0}
    return {
        "layers": len(layers),
        "permutations": len(layers),
        "fold_steps": sum(layer.config.width_log2 for layer in layers),
        "writebacks": sum(layer.num_writebacks() for layer in layers),
    }
