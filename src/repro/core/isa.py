"""The GEM VLIW instruction set (paper §III-E, Fig. 7).

The virtual Boolean processor is programmed with very long instruction
words in three length classes — 8192, 16384 and 32768 bits — sized so that
a 256-thread GPU block loads one instruction with a single fully-coalesced
32-, 64- or 128-bit read per thread.  In this reproduction a 32-bit word is
the unit, so the classes are 256, 512 and 1024 words.

Instruction kinds (every instruction starts with a one-word header):

========  =====  ======================================================
opcode    words  payload
========  =====  ======================================================
INIT      256    per-partition block setup: stage, #layers, state size,
                 #reads, #RAM ops (Fig. 7 "initialization")
READ      512    global→local state loads: (global bit, local slot) pairs
                 ("global state reading", once per cycle)
PERM      1024   sparse bit permutation chunk: (leaf, source slot) pairs
                 ("local bit permutation" — the compressed source-indexed
                 form the paper describes)
FOLD      1024   all boomerang fold constants of one layer: bit-packed
                 XOR.A / XOR.B / OR.B per fold step ("boomerang folding")
WB        512    state writebacks: (fold step, position, slot) triples
GWRITE    512    local→global stores; flag selects commit phase
                 (immediate = same-cycle visible, e.g. stage cut values;
                 deferred = next-cycle visible, e.g. FF next states)
RAMOP     512    one native RAM block cycle: port slot references plus the
                 block's global read-data base index
========  =====  ======================================================

Header word layout: ``[opcode:8 | size_class:2 | count:16]`` where count is
the number of payload entries (meaning varies per opcode).

This module provides pure encode/decode helpers over ``numpy.uint32``
arrays; :mod:`repro.core.bitstream` assembles whole programs and
:mod:`repro.core.interpreter` executes them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import BitstreamError


class Opcode(enum.IntEnum):
    INIT = 1
    READ = 2
    PERM = 3
    FOLD = 4
    WB = 5
    GWRITE = 6
    RAMOP = 7


#: instruction length (32-bit words) per size class
SIZE_CLASS_WORDS = (256, 512, 1024)

_OPCODE_SIZE_CLASS = {
    Opcode.INIT: 0,
    Opcode.READ: 1,
    Opcode.PERM: 2,
    Opcode.FOLD: 2,
    Opcode.WB: 1,
    Opcode.GWRITE: 1,
    Opcode.RAMOP: 1,
}

#: payload entry capacities (entries per single instruction)
READ_CAPACITY = (SIZE_CLASS_WORDS[1] - 1) // 2  # 2 words per entry
PERM_CAPACITY = SIZE_CLASS_WORDS[2] - 2  # 1 word per entry (+chunk base)
WB_CAPACITY = SIZE_CLASS_WORDS[1] - 1  # 1 word per entry
GWRITE_CAPACITY = (SIZE_CLASS_WORDS[1] - 1) // 2  # 2 words per entry


def instruction_words(opcode: Opcode) -> int:
    return SIZE_CLASS_WORDS[_OPCODE_SIZE_CLASS[opcode]]


def make_header(opcode: Opcode, count: int) -> int:
    if not 0 <= count < (1 << 16):
        raise ValueError(f"instruction entry count {count} out of range")
    return (int(opcode) << 24) | (_OPCODE_SIZE_CLASS[opcode] << 22) | count


def parse_header(word: int) -> tuple[Opcode, int, int]:
    """Returns (opcode, instruction length in words, entry count)."""
    try:
        opcode = Opcode((word >> 24) & 0xFF)
    except ValueError as exc:
        raise BitstreamError(
            f"invalid instruction header {word:#010x}: unknown opcode"
        ) from exc
    size_class = (word >> 22) & 0x3
    count = word & 0xFFFF
    return opcode, SIZE_CLASS_WORDS[size_class], count


def _blank(opcode: Opcode, count: int) -> np.ndarray:
    inst = np.zeros(instruction_words(opcode), dtype=np.uint32)
    inst[0] = make_header(opcode, count)
    return inst


# -- INIT --------------------------------------------------------------------


def encode_init(
    stage: int, num_layers: int, state_slots: int, num_reads: int, num_ramops: int
) -> np.ndarray:
    inst = _blank(Opcode.INIT, 0)
    inst[1] = stage
    inst[2] = num_layers
    inst[3] = state_slots
    inst[4] = num_reads
    inst[5] = num_ramops
    return inst


def decode_init(inst: np.ndarray) -> dict:
    return {
        "stage": int(inst[1]),
        "num_layers": int(inst[2]),
        "state_slots": int(inst[3]),
        "num_reads": int(inst[4]),
        "num_ramops": int(inst[5]),
    }


# -- READ ----------------------------------------------------------------------


def encode_read(entries: list[tuple[int, int, bool]]) -> list[np.ndarray]:
    """Entries: (global bit index, local slot, invert)."""
    out = []
    for base in range(0, len(entries), READ_CAPACITY):
        chunk = entries[base : base + READ_CAPACITY]
        inst = _blank(Opcode.READ, len(chunk))
        for i, (gidx, slot, inv) in enumerate(chunk):
            inst[1 + 2 * i] = gidx | (0x80000000 if inv else 0)
            inst[2 + 2 * i] = slot
        out.append(inst)
    return out


def decode_read(inst: np.ndarray, count: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Returns (global indices, local slots, invert flags) arrays."""
    raw = inst[1 : 1 + 2 * count].astype(np.int64)
    gidx = raw[0::2] & 0x7FFFFFFF
    inv = (raw[0::2] >> 31).astype(bool)
    slots = raw[1::2]
    return gidx, slots, inv


# -- PERM ------------------------------------------------------------------------


def encode_perm(perm: np.ndarray) -> list[np.ndarray]:
    """Sparse permutation: one (leaf, slot) word per occupied leaf."""
    occupied = np.nonzero(perm >= 0)[0]
    out = []
    for base in range(0, len(occupied), PERM_CAPACITY):
        chunk = occupied[base : base + PERM_CAPACITY]
        inst = _blank(Opcode.PERM, len(chunk))
        inst[1] = 0  # reserved (chunk base; leaves are absolute here)
        for i, leaf in enumerate(chunk):
            inst[2 + i] = (int(leaf) << 16) | int(perm[leaf])
        out.append(inst)
    if not out:  # a layer of pure constants still needs its permutation slot
        out.append(_blank(Opcode.PERM, 0))
    return out


def decode_perm(inst: np.ndarray, count: int) -> tuple[np.ndarray, np.ndarray]:
    """Returns (leaf indices, source slots)."""
    raw = inst[2 : 2 + count].astype(np.int64)
    return raw >> 16, raw & 0xFFFF


# -- FOLD -----------------------------------------------------------------------


def _pack_bits(bits: np.ndarray, words: np.ndarray, bit_offset: int) -> int:
    for i, b in enumerate(bits):
        if b:
            pos = bit_offset + i
            words[pos >> 5] |= np.uint32(1 << (pos & 31))
    return bit_offset + len(bits)


def _unpack_bits(words: np.ndarray, bit_offset: int, n: int) -> tuple[np.ndarray, int]:
    idx = bit_offset + np.arange(n)
    bits = (words[idx >> 5] >> (idx & 31)) & 1
    return bits.astype(bool), bit_offset + n


def encode_fold(
    eff_width_log2: int,
    xor_a: list[np.ndarray],
    xor_b: list[np.ndarray],
    or_b: list[np.ndarray],
) -> np.ndarray:
    """All fold constants of one layer, trimmed to the effective width."""
    inst = _blank(Opcode.FOLD, eff_width_log2)
    payload = np.zeros(instruction_words(Opcode.FOLD) - 1, dtype=np.uint32)
    offset = 0
    for step in range(eff_width_log2):
        size = 1 << (eff_width_log2 - step - 1)
        offset = _pack_bits(xor_a[step][:size], payload, offset)
        offset = _pack_bits(xor_b[step][:size], payload, offset)
        offset = _pack_bits(or_b[step][:size], payload, offset)
    if offset > len(payload) * 32:
        raise ValueError("fold constants overflow the instruction")
    inst[1:] = payload
    return inst


def decode_fold(inst: np.ndarray, eff_width_log2: int) -> tuple[list, list, list]:
    payload = inst[1:]
    xor_a, xor_b, or_b = [], [], []
    offset = 0
    for step in range(eff_width_log2):
        size = 1 << (eff_width_log2 - step - 1)
        a, offset = _unpack_bits(payload, offset, size)
        b, offset = _unpack_bits(payload, offset, size)
        o, offset = _unpack_bits(payload, offset, size)
        xor_a.append(a)
        xor_b.append(b)
        or_b.append(o)
    return xor_a, xor_b, or_b


# -- WB -------------------------------------------------------------------------


def encode_wb(entries: list[tuple[int, int, int]]) -> list[np.ndarray]:
    """Entries: (fold step, position, state slot)."""
    out = []
    for base in range(0, len(entries), WB_CAPACITY):
        chunk = entries[base : base + WB_CAPACITY]
        inst = _blank(Opcode.WB, len(chunk))
        for i, (step, pos, slot) in enumerate(chunk):
            if step >= 16 or pos >= (1 << 14) or slot >= (1 << 14):
                raise ValueError(f"writeback entry out of range: {(step, pos, slot)}")
            inst[1 + i] = (step << 28) | (pos << 14) | slot
        out.append(inst)
    return out


def decode_wb(inst: np.ndarray, count: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    raw = inst[1 : 1 + count].astype(np.int64)
    return raw >> 28, (raw >> 14) & 0x3FFF, raw & 0x3FFF


# -- GWRITE ---------------------------------------------------------------------


def encode_gwrite(entries: list[tuple[int, bool, int, bool]]) -> list[np.ndarray]:
    """Entries: (local slot, invert, global bit index, deferred)."""
    out = []
    for base in range(0, len(entries), GWRITE_CAPACITY):
        chunk = entries[base : base + GWRITE_CAPACITY]
        inst = _blank(Opcode.GWRITE, len(chunk))
        for i, (slot, inv, gidx, deferred) in enumerate(chunk):
            inst[1 + 2 * i] = slot | (0x80000000 if inv else 0)
            inst[2 + 2 * i] = gidx | (0x80000000 if deferred else 0)
        out.append(inst)
    return out


def decode_gwrite(
    inst: np.ndarray, count: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Returns (slots, invert, global indices, deferred) arrays."""
    raw = inst[1 : 1 + 2 * count].astype(np.int64)
    slots = raw[0::2] & 0x7FFFFFFF
    inv = (raw[0::2] >> 31).astype(bool)
    gidx = raw[1::2] & 0x7FFFFFFF
    deferred = (raw[1::2] >> 31).astype(bool)
    return slots, inv, gidx, deferred


# -- RAMOP -----------------------------------------------------------------------


@dataclass
class RamOp:
    """Decoded RAM block operation."""

    ram_index: int
    addr_bits: int
    data_bits: int
    rd_global_base: int
    #: each ref is (slot, invert); slot 0 is the constant-0 state slot
    raddr: list[tuple[int, bool]]
    ren: tuple[int, bool]
    waddr: list[tuple[int, bool]]
    wdata: list[tuple[int, bool]]
    wen: tuple[int, bool]


def _pack_ref(ref: tuple[int, bool]) -> int:
    slot, inv = ref
    if slot >= (1 << 15):
        raise ValueError(f"slot {slot} does not fit a 16-bit port reference")
    return slot | (0x8000 if inv else 0)


def _unpack_ref(value: int) -> tuple[int, bool]:
    return value & 0x7FFF, bool(value & 0x8000)


def encode_ramop(op: RamOp) -> np.ndarray:
    inst = _blank(Opcode.RAMOP, 0)
    inst[1] = op.ram_index
    inst[2] = (op.addr_bits << 16) | op.data_bits
    inst[3] = op.rd_global_base
    refs = [*op.raddr, op.ren, *op.waddr, *op.wdata, op.wen]
    packed = [_pack_ref(r) for r in refs]
    for i, value in enumerate(packed):
        word = 4 + (i >> 1)
        shift = 16 * (i & 1)
        inst[word] |= np.uint32(value << shift)
    if 4 + (len(packed) + 1) // 2 > instruction_words(Opcode.RAMOP):
        raise ValueError("RAM op does not fit one instruction")
    return inst


def decode_ramop(inst: np.ndarray) -> RamOp:
    ram_index = int(inst[1])
    addr_bits = int(inst[2]) >> 16
    data_bits = int(inst[2]) & 0xFFFF
    rd_global_base = int(inst[3])
    total = 2 * addr_bits + data_bits + 2
    refs = []
    for i in range(total):
        word = int(inst[4 + (i >> 1)])
        refs.append(_unpack_ref((word >> (16 * (i & 1))) & 0xFFFF))
    raddr = refs[:addr_bits]
    ren = refs[addr_bits]
    waddr = refs[addr_bits + 1 : 2 * addr_bits + 1]
    wdata = refs[2 * addr_bits + 1 : 2 * addr_bits + 1 + data_bits]
    wen = refs[2 * addr_bits + 1 + data_bits]
    return RamOp(
        ram_index=ram_index,
        addr_bits=addr_bits,
        data_bits=data_bits,
        rd_global_base=rd_global_base,
        raddr=raddr,
        ren=ren,
        waddr=waddr,
        wdata=wdata,
        wen=wen,
    )
