"""RAM mapping onto the fixed native RAM block type (paper §III-B).

GEM's E-AIG supports one native RAM block shape — by default 13 address bits
× 32 data bits, one synchronous read port, one write port.  This module
performs the job the paper delegates to Yosys with a fake FPGA target:

* A behavioral memory with only synchronous read ports and at most one
  write port is decomposed onto native blocks: the depth is split into
  *banks* of ``2**addr_bits`` words and the width into *chunks* of
  ``data_bits`` bits.  Adapter logic is generated automatically — write
  enables gated by bank decode, and read data selected by a *registered*
  bank index (registered because native read data arrives one cycle after
  the address).  Each additional read port instantiates its own copy of
  every block (content duplication, the standard BRAM multi-port recipe).
* A memory with any **asynchronous** read port, or with multiple write
  ports, cannot use native blocks and is *polyfilled* with flip-flops,
  write decoders and read mux trees — exactly the costly fallback the paper
  describes for the four non-NVDLA designs (§IV), and the subject of the
  async-RAM penalty experiment (X3 in DESIGN.md).

Construction is three-phase to fit the synthesizer's topological lowering
(see :mod:`repro.core.synthesis`): state nodes first, combinational reads
on demand, port wiring last.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.eaig import EAIG, FALSE, TRUE, lit_not
from repro.rtl.memory import Memory

#: Resolver from an RTL signal to its E-AIG literal vector (LSB first).
LitsOf = Callable[[object], list[int]]


@dataclass
class RamMappingConfig:
    """Native RAM block shape (the paper's 13-bit address × 32-bit data)."""

    addr_bits: int = 13
    data_bits: int = 32


@dataclass
class MappingReport:
    """Per-memory accounting, consumed by the async-RAM penalty experiment."""

    name: str
    mode: str  # "blocks" | "polyfill"
    blocks: int = 0
    polyfill_ffs: int = 0
    adapter_gates_before: int = 0
    adapter_gates_after: int = 0

    @property
    def adapter_gates(self) -> int:
        return self.adapter_gates_after - self.adapter_gates_before


def _tree_or(eaig: EAIG, lits: Sequence[int]) -> int:
    """Balanced OR over literals (depth-minimal for equal input depths)."""
    level = list(lits)
    if not level:
        return FALSE
    while len(level) > 1:
        nxt = [eaig.add_or(level[i], level[i + 1]) for i in range(0, len(level) - 1, 2)]
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def _eq_const(eaig: EAIG, lits: Sequence[int], value: int) -> int:
    """Literal for ``lits == value`` (balanced AND of matched bits)."""
    terms = []
    for i, literal in enumerate(lits):
        terms.append(literal if (value >> i) & 1 else lit_not(literal))
    level = terms
    if not level:
        return TRUE
    while len(level) > 1:
        nxt = [eaig.add_and(level[i], level[i + 1]) for i in range(0, len(level) - 1, 2)]
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def _effective_addr_bits(memory: Memory) -> int:
    """Address bits that actually select a word: ``log2(depth)``.

    ``Memory.addr_bits`` is floored at 1 so a port signal always exists,
    which leaves a depth-1 memory with one *dead* address bit.  The word
    simulator indexes modulo depth, so every mapping must ignore dead
    bits rather than decode them (a depth-1 write at address 1 wraps to
    word 0; it is neither dropped nor stored elsewhere).
    """
    return max(0, (memory.depth - 1).bit_length())


def _mux_word(eaig: EAIG, sel: int, a: Sequence[int], b: Sequence[int]) -> list[int]:
    return [eaig.add_mux(sel, ai, bi) for ai, bi in zip(a, b)]


def _mux_tree(eaig: EAIG, addr: Sequence[int], words: Sequence[Sequence[int]]) -> list[int]:
    """Select ``words[addr]`` with a balanced mux tree.

    ``len(words)`` is a power of two for every caller (memory depths are
    enforced to be powers of two); address bits beyond ``log2(len(words))``
    are ignored, matching the word simulator's modulo indexing.
    """
    if not words:
        raise ValueError("mux tree over zero words")
    level = [list(w) for w in words]
    if len(level) & (len(level) - 1):
        raise ValueError("mux tree requires a power-of-two word count")
    bit = 0
    while len(level) > 1:
        sel = addr[bit] if bit < len(addr) else FALSE
        level = [_mux_word(eaig, sel, level[i + 1], level[i]) for i in range(0, len(level), 2)]
        bit += 1
    return level[0]


class MappedMemory:
    """Base class: one behavioral memory mapped into the E-AIG."""

    def __init__(self, eaig: EAIG, memory: Memory, report: MappingReport) -> None:
        self.eaig = eaig
        self.memory = memory
        self.report = report

    def sync_read_data(self, port_index: int) -> list[int]:
        """Data literals of a synchronous read port (state, available early)."""
        raise NotImplementedError

    def async_read_data(self, port_index: int, addr: Sequence[int]) -> list[int]:
        """Build combinational read logic for an asynchronous port."""
        raise NotImplementedError

    def finalize(self, lits_of: LitsOf) -> None:
        """Wire write/address/enable ports once all logic is lowered."""
        raise NotImplementedError


class BlockMappedMemory(MappedMemory):
    """Memory decomposed onto native RAM blocks with bank/width adapters."""

    def __init__(self, eaig: EAIG, memory: Memory, config: RamMappingConfig, report: MappingReport) -> None:
        super().__init__(eaig, memory, report)
        self.config = config
        ab, db = config.addr_bits, config.data_bits
        self.banks = max(1, -(-memory.depth // (1 << ab)))
        self.chunks = max(1, -(-memory.width // db))
        self.bank_bits = max(0, (self.banks - 1).bit_length())
        init = memory.initial_words()
        # blocks[port][bank][chunk]
        self.blocks = []
        for p in range(len(memory.read_ports)):
            per_port = []
            for bank in range(self.banks):
                per_bank = []
                base = bank << ab
                for chunk in range(self.chunks):
                    words = [
                        (init[base + w] >> (chunk * db)) & ((1 << db) - 1)
                        for w in range(min(1 << ab, memory.depth - base))
                    ]
                    ram = eaig.add_ram(f"{memory.name}.p{p}.b{bank}.c{chunk}", ab, db, init=words)
                    per_bank.append(ram)
                per_port.append(per_bank)
            self.blocks.append(per_port)
        report.blocks = len(memory.read_ports) * self.banks * self.chunks
        # Registered bank-select per read port (holds when ren is low); the
        # FF d inputs are wired in finalize().
        self.bank_sel_ffs: list[list[int]] = []
        for p, rp in enumerate(memory.read_ports):
            if not rp.sync:
                raise ValueError("BlockMappedMemory only supports synchronous read ports")
            self.bank_sel_ffs.append(
                [eaig.add_ff(name=f"{memory.name}.p{p}.banksel{b}") for b in range(self.bank_bits)]
            )
        # Pre-build the read-data bank mux for each port: all operands are
        # state nodes (RAMRD + bank-select FFs) so this is legal up front.
        self._read_data: list[list[int]] = []
        for p in range(len(memory.read_ports)):
            bank_words = []
            for bank in range(self.banks):
                bits: list[int] = []
                for chunk in range(self.chunks):
                    bits.extend(2 * n for n in self.blocks[p][bank][chunk].data_nodes)
                bank_words.append(bits[: memory.width])
            self._read_data.append(_mux_tree(eaig, self.bank_sel_ffs[p], bank_words))

    def sync_read_data(self, port_index: int) -> list[int]:
        return self._read_data[port_index]

    def async_read_data(self, port_index: int, addr: Sequence[int]) -> list[int]:
        raise ValueError("native RAM blocks have no asynchronous read path")

    def finalize(self, lits_of: LitsOf) -> None:
        eaig = self.eaig
        mem = self.memory
        ab, db = self.config.addr_bits, self.config.data_bits
        gates0 = eaig.num_gates()
        # Write side (single port, possibly absent for ROMs).
        eff = _effective_addr_bits(mem)
        if mem.write_ports:
            wp = mem.write_ports[0]
            wen = lits_of(wp.en)[0]
            waddr = lits_of(wp.addr)[:eff]
            wdata = lits_of(wp.data)
            wdata = (wdata + [FALSE] * (self.chunks * db))[: self.chunks * db]
            wlow = (waddr[:ab] + [FALSE] * ab)[:ab]
            whigh = waddr[ab : ab + self.bank_bits]
        for p, rp in enumerate(mem.read_ports):
            raddr = lits_of(rp.addr)[:eff]
            ren = lits_of(rp.en)[0] if rp.en is not None else TRUE
            rlow = (raddr[:ab] + [FALSE] * ab)[:ab]
            rhigh = raddr[ab : ab + self.bank_bits]
            for b, ff in enumerate(self.bank_sel_ffs[p]):
                hold = ff  # positive FF literal == its own current value
                bit = rhigh[b] if b < len(rhigh) else FALSE
                eaig.set_ff_input(ff, eaig.add_mux(ren, bit, hold))
            for bank in range(self.banks):
                bank_hit_w = _eq_const(eaig, whigh, bank) if mem.write_ports else FALSE
                for chunk in range(self.chunks):
                    ram = self.blocks[p][bank][chunk]
                    ram.raddr = list(rlow)
                    ram.ren = ren
                    if mem.write_ports:
                        ram.wen = eaig.add_and(wen, bank_hit_w)
                        ram.waddr = list(wlow)
                        ram.wdata = wdata[chunk * db : (chunk + 1) * db]
                    else:
                        ram.wen = FALSE
                        ram.waddr = [FALSE] * ab
                        ram.wdata = [FALSE] * db
        self.report.adapter_gates_after = eaig.num_gates()
        self.report.adapter_gates_before = gates0


class PolyfilledMemory(MappedMemory):
    """Memory implemented with FFs, write decoders and read mux trees.

    This is the paper's costly fallback for asynchronous read ports (and, in
    our reproduction, for multi-write-port memories, which the native block
    cannot express).  Gate cost grows linearly with ``depth * width``.
    """

    def __init__(self, eaig: EAIG, memory: Memory, report: MappingReport) -> None:
        super().__init__(eaig, memory, report)
        init = memory.initial_words()
        self.word_ffs: list[list[int]] = []
        for w in range(memory.depth):
            bits = [
                eaig.add_ff(init=(init[w] >> b) & 1, name=f"{memory.name}.w{w}b{b}")
                for b in range(memory.width)
            ]
            self.word_ffs.append(bits)
        self.sync_ffs: dict[int, list[int]] = {}
        for p, rp in enumerate(memory.read_ports):
            if rp.sync:
                self.sync_ffs[p] = [
                    eaig.add_ff(name=f"{memory.name}.p{p}.rd{b}") for b in range(memory.width)
                ]
        report.polyfill_ffs = memory.depth * memory.width + len(self.sync_ffs) * memory.width

    def sync_read_data(self, port_index: int) -> list[int]:
        return self.sync_ffs[port_index]

    def async_read_data(self, port_index: int, addr: Sequence[int]) -> list[int]:
        addr_bits = _effective_addr_bits(self.memory)
        return _mux_tree(self.eaig, list(addr)[:addr_bits], self.word_ffs)

    def finalize(self, lits_of: LitsOf) -> None:
        eaig = self.eaig
        mem = self.memory
        gates0 = eaig.num_gates()
        # Write decoders; ports applied in order so later ports win, matching
        # the word simulator's sequential application.
        next_words = [list(bits) for bits in self.word_ffs]
        eff = _effective_addr_bits(mem)
        for wp in mem.write_ports:
            wen = lits_of(wp.en)[0]
            waddr = lits_of(wp.addr)[:eff]
            wdata = lits_of(wp.data)
            for w in range(mem.depth):
                hit = eaig.add_and(wen, _eq_const(eaig, waddr, w))
                next_words[w] = _mux_word(eaig, hit, wdata, next_words[w])
        for w, bits in enumerate(self.word_ffs):
            for b, ff in enumerate(bits):
                eaig.set_ff_input(ff, next_words[w][b])
        # Sync read ports sample the *current* word FFs (read-first).
        for p, rp in enumerate(mem.read_ports):
            if not rp.sync:
                continue
            raddr = lits_of(rp.addr)[:eff]
            data = _mux_tree(eaig, raddr, self.word_ffs)
            ren = lits_of(rp.en)[0] if rp.en is not None else TRUE
            for b, ff in enumerate(self.sync_ffs[p]):
                eaig.set_ff_input(ff, eaig.add_mux(ren, data[b], ff))
        self.report.adapter_gates_after = eaig.num_gates()
        self.report.adapter_gates_before = gates0


def map_memory(
    eaig: EAIG, memory: Memory, config: RamMappingConfig | None = None
) -> MappedMemory:
    """Choose and build the mapping for ``memory`` (blocks vs polyfill)."""
    config = config or RamMappingConfig()
    can_use_blocks = all(rp.sync for rp in memory.read_ports) and len(memory.write_ports) <= 1
    mode = "blocks" if can_use_blocks else "polyfill"
    report = MappingReport(name=memory.name, mode=mode)
    if can_use_blocks:
        return BlockMappedMemory(eaig, memory, config, report)
    return PolyfilledMemory(eaig, memory, report)
