"""Event-based pruning for GEM — the paper's §IV future-work item.

GEM is an oblivious full-cycle simulator: every block executes every
cycle, which is exactly why the low-activity OpenPiton8 workload flatters
event-driven baselines (paper §IV: "In the future, we plan to explore
event-based pruning in GEM").  This module implements that exploration.

Rule: a block may be skipped for a cycle when *none of its global source
bits changed* since it last executed — its layers are a pure function of
those sources, so every store it would perform would rewrite the values
already sitting in global memory.  Blocks owning RAMs need one extra
unchanged cycle before skipping: the cycle after a change, a write from
the pre-change cycle may still alter the read data even under identical
inputs (read-first ports lag the array by one cycle).

On a GPU this is a cheap block-prologue: load the source words, compare
against the previous-cycle copy kept in global memory, and exit early on
equality — the comparison is fully coalesced and costs a small fraction
of the layer pipeline.  Here the same logic runs in the interpreter, and
the measured skip fraction feeds :func:`gem_pruned_speed`, the pruned
performance model used by ``benchmarks/test_pruning_extension.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.interpreter import GemInterpreter, _DecodedPartition
from repro.core.perfmodel import A100, GemMetrics, GpuProfile, gem_cycle_time


class PruningGemInterpreter(GemInterpreter):
    """GEM interpreter with block-level event pruning.

    Functionally identical to :class:`GemInterpreter` (the test suite runs
    them in lockstep); additionally counts skipped blocks so the benefit
    is measurable.
    """

    def __init__(self, program, batch: int = 1) -> None:
        # Pruning hooks _run_partition, which only the legacy per-partition
        # dispatch calls; the fused executor has no per-block granularity.
        super().__init__(program, batch=batch, mode="legacy")
        self._source_cache: list[np.ndarray | None] = [None] * len(self.partitions)
        self._stable_cycles: list[int] = [0] * len(self.partitions)
        self._index_of = {id(p): i for i, p in enumerate(self.partitions)}
        self.blocks_executed = 0
        self.blocks_skipped = 0

    def _run_partition(self, part: _DecodedPartition, local: np.ndarray):
        index = self._index_of[id(part)]
        sources = self.global_state[part.read_gidx]
        cached = self._source_cache[index]
        if cached is not None and sources.shape == cached.shape and (sources == cached).all():
            self._stable_cycles[index] += 1
            # RAM-owning blocks need two stable cycles (read-first lag).
            need = 2 if part.ramops else 1
            if self._stable_cycles[index] >= need:
                self.blocks_skipped += 1
                return []
        else:
            self._stable_cycles[index] = 0
        self._source_cache[index] = sources.copy()
        self.blocks_executed += 1
        return super()._run_partition(part, local)

    @property
    def skip_fraction(self) -> float:
        total = self.blocks_executed + self.blocks_skipped
        return self.blocks_skipped / total if total else 0.0


def gem_pruned_speed(
    metrics: GemMetrics,
    skip_fraction: float,
    gpu: GpuProfile = A100,
    scale: float = 1.0,
    check_cost_fraction: float = 0.08,
) -> float:
    """Simulated Hz of GEM with event pruning.

    A skipped block still pays the source-compare prologue
    (``check_cost_fraction`` of its normal work) but neither fetches its
    instruction stream nor runs its layers.  Device synchronizations are
    unchanged — the cycle barrier remains.  ``scale`` carries the
    calibration constant of the unpruned model.
    """
    if not 0.0 <= skip_fraction <= 1.0:
        raise ValueError("skip_fraction must be within [0, 1]")
    active = 1.0 - skip_fraction * (1.0 - check_cost_fraction)
    scaled = GemMetrics(
        stage_partitions=list(metrics.stage_partitions),
        inst_words=int(metrics.inst_words * active),
        stage_work_bits=[int(w * active) for w in metrics.stage_work_bits],
        stage_max_block_bits=list(metrics.stage_max_block_bits),
        global_traffic=metrics.global_traffic,
    )
    return scale / gem_cycle_time(scaled, gpu)
