"""Depth-oriented E-AIG optimization (paper §III-B, second synthesis stage).

The paper's fake ASIC library (AND/OR = 1 ps, INV = 0 ps) makes commercial
timing-driven synthesis behave as a depth minimizer.  Our lowering in
:mod:`repro.core.synthesis` already builds log-depth operators, so this pass
plays the cleanup role the ASIC tool plays after elaboration:

* **dead-node elimination** — only logic reachable from flip-flop inputs,
  RAM ports and primary outputs survives (RAM adapters and speculative
  builder logic leave garbage behind);
* **re-strashing** — structural hashing across the whole graph after all
  construction, merging duplicates the incremental hash missed (e.g. nodes
  equal only after constant propagation);
* **tree balancing** — maximal single-fanout AND conjunctions are collected
  and rebuilt shallowest-first (ABC's ``balance`` with level-aware Huffman
  merging), reducing depth of chained conjunctions.

``optimize`` rebuilds a :class:`~repro.core.synthesis.SynthesisResult`
in place of the old one, preserving the word-level I/O binding, FF order,
and RAM blocks, so everything downstream (partitioning, placement,
simulation) is oblivious to whether optimization ran.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.eaig import EAIG, FALSE, NodeKind, lit_node
from repro.core.synthesis import SynthesisResult, reduce_tree


def optimize(result: SynthesisResult, balance: bool = True) -> SynthesisResult:
    """DCE + re-strash (+ balance) a synthesized design."""
    old = result.eaig
    new, lit_map = rebuild(old, balance=balance)
    return replace(
        result,
        eaig=new,
        input_bits={k: [lit_map[l] for l in v] for k, v in result.input_bits.items()},
        output_bits={k: [lit_map[l] for l in v] for k, v in result.output_bits.items()},
    )


def compact(eaig: EAIG) -> EAIG:
    """DCE + re-strash only (no restructuring)."""
    return rebuild(eaig, balance=False)[0]


def rebuild(old: EAIG, balance: bool) -> tuple[EAIG, dict[int, int]]:
    """Rebuild ``old`` bottom-up from its roots.

    Returns the new graph and a literal translation map covering every
    literal that refers to a surviving (live) node plus all state nodes.
    """
    old.check()
    new = EAIG(old.name)
    node_map: dict[int, int] = {0: 0}  # old node -> new *positive literal*

    for idx, pi in enumerate(old.pis):
        node_map[pi] = new.add_pi(old.names.get(pi, f"pi{idx}"))
    for ff in old.ffs:
        node_map[ff] = new.add_ff(init=old.aux[ff], name=old.names.get(ff))
    for ram in old.rams:
        new_ram = new.add_ram(ram.name, ram.addr_bits, ram.data_bits, init=ram.init)
        for old_node, new_node in zip(ram.data_nodes, new_ram.data_nodes):
            node_map[old_node] = 2 * new_node

    fanout = old.fanout_counts() if balance else []

    def translate(literal: int) -> int:
        return node_map[literal >> 1] ^ (literal & 1)

    def conjunction_leaves(root: int) -> list[int]:
        """Maximal AND cone of ``root``: expand non-complemented,
        single-fanout AND fanins (ABC balance's collection rule)."""
        leaves: list[int] = []
        stack = [2 * root]
        while stack:
            literal = stack.pop()
            node = literal >> 1
            if (
                literal & 1 == 0
                and old.kind[node] is NodeKind.AND
                and (node == root or fanout[node] == 1)
            ):
                stack.append(old.fanin0[node])
                stack.append(old.fanin1[node])
            else:
                leaves.append(literal)
        return leaves

    def build(root_literal: int) -> None:
        """Iterative post-order construction of one cone."""
        stack: list[tuple[int, bool]] = [(root_literal >> 1, False)]
        while stack:
            node, expanded = stack.pop()
            if node in node_map:
                continue
            kind = old.kind[node]
            if kind is not NodeKind.AND:
                raise AssertionError(f"unmapped non-AND node {node} ({kind})")
            if balance:
                leaves = conjunction_leaves(node)
                if expanded:
                    new_leaves = [translate(l) for l in leaves]
                    node_map[node] = _tree_and_signed(new, new_leaves)
                else:
                    stack.append((node, True))
                    stack.extend((l >> 1, False) for l in leaves)
            else:
                if expanded:
                    node_map[node] = new.add_and(
                        translate(old.fanin0[node]), translate(old.fanin1[node])
                    )
                else:
                    stack.append((node, True))
                    stack.append((old.fanin0[node] >> 1, False))
                    stack.append((old.fanin1[node] >> 1, False))

    roots: list[int] = []
    for ff in old.ffs:
        roots.append(old.fanin0[ff])
    for ram in old.rams:
        roots.extend(ram.port_literals())
    roots.extend(literal for _, literal in old.outputs)
    for root in roots:
        build(root)

    for ff in old.ffs:
        new.set_ff_input(node_map[ff], translate(old.fanin0[ff]))
    for ram, new_ram in zip(old.rams, new.rams):
        new_ram.raddr = [translate(l) for l in ram.raddr]
        new_ram.ren = translate(ram.ren)
        new_ram.waddr = [translate(l) for l in ram.waddr]
        new_ram.wdata = [translate(l) for l in ram.wdata]
        new_ram.wen = translate(ram.wen)
    for name, literal in old.outputs:
        new.add_output(name, translate(literal))
    new.check()

    lit_map: dict[int, int] = {}
    for old_node, new_pos in node_map.items():
        lit_map[2 * old_node] = new_pos
        lit_map[2 * old_node + 1] = new_pos ^ 1
    return new, lit_map


def _tree_and_signed(eaig: EAIG, leaves: list[int]) -> int:
    """Level-aware AND reduction returning a *positive* literal mapping.

    The conjunction value may strash to a complemented literal (e.g. when it
    folds to a constant); callers store node mappings as positive literals,
    so encode the result literal directly.
    """
    if not leaves:
        return 1  # empty conjunction is TRUE; map node to constant literal
    result = reduce_tree(eaig, leaves, eaig.add_and, empty=FALSE)
    return result


def depth_report(eaig: EAIG) -> dict:
    """Depth/size snapshot used by benchmarks and EXPERIMENTS.md."""
    hist = eaig.level_histogram()
    depth = max(hist) if hist else 0
    gates = sum(hist.values())
    # Long-tail metric (paper Observation 4): fraction of gates in the
    # shallowest quarter of levels.
    frontier = sum(count for lvl, count in hist.items() if lvl <= max(1, depth // 4))
    return {
        "gates": gates,
        "depth": depth,
        "frontier_fraction": frontier / gates if gates else 0.0,
        "histogram": hist,
    }
