"""Analytical performance models for Table II (see DESIGN.md §2).

This reproduction has no GPU, so simulated-cycles-per-second numbers are
produced by analytical timing models driven by *measured* quantities from
the real flow: instruction words assembled, permutation/fold bits placed,
partitions per stage, signal events counted by the event-driven baseline,
gate toggles counted by the gate-level baseline, and op counts of the
compiled cycle simulator.  The same methodology as calibrating an
architectural simulator: fix a small set of rate constants against anchor
points, then let every other number fall out of the counted work.

Models
------
* :func:`gem_speed` — the GEM CUDA interpreter:
  ``cycle time = bitstream fetch (bytes / HBM bandwidth)  ⊕  per-stage
  compute (block waves × shared-memory bit ops / block rate)  +  device
  synchronizations``.  Fetch and compute overlap (the kernel streams
  instructions), hence the ⊕ = max().
* :func:`event_sim_speed` — commercial event-driven tool:
  per-cycle scheduler overhead + events × per-event cost.
* :func:`compiled_sim_speed` — Verilator-style compiled full-cycle:
  word ops × per-op cost (+ thread scaling via
  :class:`repro.simref.threads.ThreadScalingModel`).
* :func:`gate_sim_speed` — GL0AM-style GPU gate-level:
  kernel launches × launch cost + toggled gates / GPU gate rate.

Calibration constants live in the profile dataclasses; the fitted values
(see ``repro.harness.calibrate``) anchor GEM-A100 to the paper's NVDLA
point and the CPU engines to the paper's NVDLA baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compiler import CompiledDesign


@dataclass(frozen=True)
class GpuProfile:
    """One GPU's model parameters."""

    name: str
    sms: int
    clock_ghz: float
    mem_bw_gb: float  # HBM/GDDR bandwidth, GB/s
    #: concurrently resident blocks per SM (shared-memory limited: the 8 KiB
    #: block state plus working set allow 2 on both parts)
    blocks_per_sm: int = 2
    #: device-wide cooperative-group sync latency, seconds
    sync_s: float = 3.0e-6
    #: efficiency of shared-memory bit processing: fraction of the peak
    #: (threads × 32 bits × clock) rate a block sustains through the
    #: gather + fold pipeline (bank conflicts, address arithmetic)
    smem_efficiency: float = 0.18
    #: GPU gate-level LUT evaluation rate (gates/s) for the GL0AM model
    gate_rate: float = 9.0e9
    #: kernel-launch / level-barrier cost for gate-level simulation, seconds
    launch_s: float = 2.2e-6

    @property
    def mem_bw_bytes(self) -> float:
        return self.mem_bw_gb * 1e9

    def block_bit_rate(self) -> float:
        """Bits/second one block pushes through gather+fold."""
        return 256 * 32 * self.clock_ghz * 1e9 * self.smem_efficiency


@dataclass(frozen=True)
class CpuProfile:
    """CPU rate constants for the event-driven and compiled baselines."""

    name: str = "xeon-6136"
    #: signal events processed per second (event-driven engines)
    event_rate: float = 55.0e6
    #: fixed per-cycle scheduler overhead of event-driven simulation, s
    event_cycle_overhead_s: float = 18.0e-6
    #: word-level operations per second (compiled full-cycle engines)
    compiled_op_rate: float = 260.0e6
    #: fixed per-cycle overhead of compiled simulation (eval loop, I/O), s
    compiled_cycle_overhead_s: float = 1.2e-6


#: The two GPUs evaluated in the paper.
A100 = GpuProfile(name="A100", sms=108, clock_ghz=1.41, mem_bw_gb=1555.0)
RTX3090 = GpuProfile(
    name="RTX3090", sms=82, clock_ghz=1.70, mem_bw_gb=936.0, sync_s=3.5e-6,
    smem_efficiency=0.16, gate_rate=7.0e9,
)
XEON = CpuProfile()


@dataclass
class GemMetrics:
    """Static per-cycle work of a compiled design (counted, not timed)."""

    stage_partitions: list[int]
    #: instruction words fetched per cycle (the whole bitstream streams in)
    inst_words: int
    #: per-stage total permutation+fold bits, and the per-stage max block
    stage_work_bits: list[int]
    stage_max_block_bits: list[int]
    #: global state bits read + written per cycle
    global_traffic: int


def gem_metrics(design: CompiledDesign) -> GemMetrics:
    """Extract the performance-model inputs from a compiled design."""
    stage_partitions = [len(s) for s in design.merge.plan.stages]
    num_stages = len(stage_partitions)
    stage_work = [0] * num_stages
    stage_max = [0] * num_stages
    global_traffic = 0
    from repro.core.bitstream import _effective_width_log2

    for placed in design.merge.placements:
        bits = 0
        for li in range(len(placed.layers)):
            width = 1 << _effective_width_log2(placed, li)
            # One gather of `width` bits plus folds halving from width.
            bits += width + (width - 1)
        s = placed.spec.stage
        stage_work[s] += bits
        stage_max[s] = max(stage_max[s], bits)
        global_traffic += len(placed.spec.sources) + len(placed.spec.root_literals())
    # Instruction stream length: total instruction words from the binary.
    inst_words = int(design.program.words[7])
    return GemMetrics(
        stage_partitions=stage_partitions,
        inst_words=inst_words,
        stage_work_bits=stage_work,
        stage_max_block_bits=stage_max,
        global_traffic=global_traffic,
    )


def gem_cycle_time(metrics: GemMetrics, gpu: GpuProfile) -> float:
    """Seconds per simulated cycle for the GEM interpreter on ``gpu``."""
    fetch = metrics.inst_words * 4 / gpu.mem_bw_bytes
    compute = 0.0
    slots = gpu.sms * gpu.blocks_per_sm
    rate = gpu.block_bit_rate()
    for s, parts in enumerate(metrics.stage_partitions):
        if parts == 0:
            continue
        waves = -(-parts // slots)
        mean_block = metrics.stage_work_bits[s] / parts
        # Each wave runs its blocks concurrently; the last block to finish
        # gates the wave.  Approximate by the stage's max block for the
        # first wave and the mean for the rest.
        stage_time = (
            metrics.stage_max_block_bits[s] + (waves - 1) * mean_block
        ) / rate
        compute += stage_time
    syncs = (len([p for p in metrics.stage_partitions if p]) ) * gpu.sync_s
    return max(fetch, compute) + syncs


def gem_speed(design_or_metrics: CompiledDesign | GemMetrics, gpu: GpuProfile = A100) -> float:
    """Simulated Hz of GEM on ``gpu``."""
    metrics = (
        design_or_metrics
        if isinstance(design_or_metrics, GemMetrics)
        else gem_metrics(design_or_metrics)
    )
    return 1.0 / gem_cycle_time(metrics, gpu)


def tuning_score(
    design_or_metrics: CompiledDesign | GemMetrics, gpu: GpuProfile = A100
) -> dict:
    """Analytical scorecard used by :mod:`repro.core.autotune`.

    The autotuner's cheap filter: rank every knob candidate by modelled
    :func:`gem_speed` before spending wall clock measuring finalists.  The
    breakdown fields make tuning-cache records self-describing (why a
    candidate scored the way it did) without re-compiling the design.
    """
    metrics = (
        design_or_metrics
        if isinstance(design_or_metrics, GemMetrics)
        else gem_metrics(design_or_metrics)
    )
    return {
        "model_hz": gem_speed(metrics, gpu),
        "stages": len([p for p in metrics.stage_partitions if p]),
        "partitions": sum(metrics.stage_partitions),
        "inst_words": metrics.inst_words,
        "work_bits": sum(metrics.stage_work_bits),
        "global_traffic": metrics.global_traffic,
    }


def gem_lane_throughput(
    design_or_metrics: CompiledDesign | GemMetrics,
    batch: int = 1,
    gpu: GpuProfile = A100,
) -> float:
    """Simulated cycles×lanes per second of GEM with packed stimulus lanes.

    A cycle's bitstream fetch and word compute are independent of how
    many stimulus lanes each word carries (every counted word op in
    :class:`~repro.core.interpreter.CycleCounters` serves all ``lanes``
    at once), so lane throughput scales linearly with ``batch`` up to
    the word width — the packed-word multiplier GATSPI/Parendi-style
    batching buys on top of the single-instance :func:`gem_speed`.
    Multi-word lane planes (``batch`` a whole number of 64-lane words,
    up to 4096 lanes) scale the word compute by K but amortize the
    fetch, which this first-order model folds into the same linear
    estimate.  Rejects unsupported geometries with
    :class:`~repro.errors.LaneConfigError` (a ``ValueError``).
    """
    from repro.core.engine import validate_batch

    validate_batch(batch)
    return batch * gem_speed(design_or_metrics, gpu)


def lane_amortized_work(counters) -> dict:
    """Measured per-lane per-cycle work from a run's ``CycleCounters``.

    Thin adapter so table generators report the amortized cost of a
    batched run next to the single-instance numbers
    (:meth:`~repro.core.interpreter.CycleCounters.per_lane_cycle`).
    """
    work = counters.per_lane_cycle()
    work["lanes"] = max(1, counters.lanes)
    work["lane_cycles"] = counters.lane_cycles
    return work


def dispatch_amortization(counters) -> dict:
    """Kernel-launch amortization of stage fusion from ``CycleCounters``.

    Both execution modes accumulate the per-cycle array-op counts of the
    legacy per-partition loop (``array_ops``) and the stage-fused DAG
    executor (``fused_array_ops``); their ratio is how many legacy NumPy
    dispatches (≈ GPU kernel launches for a CuPy backend) each fused
    whole-stage op replaces.
    """
    per_cycle = counters.per_cycle()
    legacy = per_cycle["array_ops"]
    fused = per_cycle["fused_array_ops"]
    return {
        "array_ops_per_cycle": legacy,
        "fused_array_ops_per_cycle": fused,
        "amortization": legacy / fused if fused else 0.0,
    }


def event_sim_speed(events_per_cycle: float, cpu: CpuProfile = XEON) -> float:
    """Simulated Hz of the commercial event-driven baseline."""
    t = cpu.event_cycle_overhead_s + events_per_cycle / cpu.event_rate
    return 1.0 / t


def compiled_sim_speed(
    ops_per_cycle: float,
    threads: int = 1,
    cpu: CpuProfile = XEON,
    scaling=None,
) -> float:
    """Simulated Hz of Verilator-style compiled simulation."""
    single = cpu.compiled_cycle_overhead_s + ops_per_cycle / cpu.compiled_op_rate
    if threads == 1:
        return 1.0 / single
    from repro.simref.threads import ThreadScalingModel

    model = scaling or ThreadScalingModel()
    return 1.0 / model.cycle_time(threads, single)


def gate_sim_speed(
    toggles_per_cycle: float,
    kernel_launches_per_cycle: float,
    gpu: GpuProfile = A100,
) -> float:
    """Simulated Hz of GL0AM-style GPU gate-level simulation."""
    t = kernel_launches_per_cycle * gpu.launch_s + toggles_per_cycle / gpu.gate_rate
    return 1.0 / t
