"""Packed-word lane engine: ``batch`` stimulus streams per bitwise op.

The paper's Observation 3 is that every boolean vector operation of the
interpreter stands in for one 32-bit bitwise GPU instruction per thread.
A ``dtype=bool`` NumPy lane therefore wastes 63/64 of every machine word
on a single simulation instance.  :class:`ExecutionEngine` recovers that
headroom the way word-packed batched-stimulus simulators do (GATSPI's
packed gate evaluation, Parendi's thousand-way RTL batches — see
PAPERS.md): every element of global state, every partition-local slot,
and every fold operand is a ``uint64`` word whose bit ``l`` carries lane
``l``'s value, so one XOR/AND/OR evaluates up to 64 independent stimulus
streams at once.

Batches beyond 64 lanes use **K-word lane planes**: state elements
become shape ``(..., K)`` rows of ``K = batch // 64`` words, lane ``l``
living in word ``l // 64`` at bit ``l % 64`` (word-major).  Such batches
must be a whole number of words (``batch = K×64`` exactly), which keeps
every word fully populated — the active-lane mask stays the scalar
all-ones word and decoded constant tables stay one word per element,
broadcasting across the plane via a trailing ``(n, 1)`` axis.

Layout invariants the rest of the runtime relies on:

* lane ``l`` of element ``i`` is ``(state[i] >> l) & 1`` for ``K == 1``
  and ``(state[i, l // 64] >> (l % 64)) & 1`` for ``K > 1``;
* lanes ``>= batch`` (the inactive lanes, ``K == 1`` only) are
  identically zero — fold constants are masked to
  :attr:`ExecutionEngine.lane_mask`, so garbage can never propagate into
  them and whole-word comparisons (state digests, pruning source caches,
  checkpoints) stay deterministic;
* at ``batch == 1`` every word is ``0`` or ``1`` and the engine is
  bit-for-bit the old boolean interpreter (the compatibility the
  single-instance ``step(dict) -> dict`` API keeps verbatim);
* at ``batch <= 64`` arrays keep their historical 1-D shape, so the
  single-word path is byte-identical to the pre-plane engine.

The conversion helpers use ``int.to_bytes``/``np.unpackbits`` rather than
per-bit Python loops, so primary-input injection and output extraction
are vectorized even at ``batch == 1``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import LaneConfigError

#: lanes carried by one packed word (the GPU register width GEM targets)
WORD_LANES = 64

#: most words per lane plane — bounds batch at 64 × 64 = 4096 lanes, the
#: point past which (batch, depth) RAM images stop fitting comfortably
MAX_LANE_WORDS = 64

_ONE = np.uint64(1)
_ZERO = np.uint64(0)
_ALL = np.uint64(0xFFFFFFFFFFFFFFFF)


def validate_batch(batch: int) -> int:
    """Check a batch size and return its lane-plane word count ``K``.

    ``batch <= 64`` packs into one word (``K == 1``, possibly partially
    populated); larger batches must be a whole number of 64-lane words
    so every word of the plane stays fully active.
    """
    if batch < 1:
        # the historical message, kept verbatim for batch<=64 callers
        raise LaneConfigError(f"batch must be in [1, {WORD_LANES}], got {batch}")
    if batch <= WORD_LANES:
        return 1
    words, rem = divmod(batch, WORD_LANES)
    if rem:
        raise LaneConfigError(
            f"batch {batch} is not a whole number of {WORD_LANES}-lane words: "
            f"batches beyond {WORD_LANES} must be K*{WORD_LANES} "
            f"with K <= {MAX_LANE_WORDS}"
        )
    if words > MAX_LANE_WORDS:
        raise LaneConfigError(
            f"batch {batch} exceeds the {MAX_LANE_WORDS}-word lane-plane limit "
            f"({MAX_LANE_WORDS * WORD_LANES} lanes)"
        )
    return words


#: value systems the engine stack executes: 2-state, or 4-state via the
#: dual-rail compile transform (see :mod:`repro.fourstate.fastpath`)
SUPPORTED_VALUES = (2, 4)


def validate_values(values: int) -> int:
    if values not in SUPPORTED_VALUES:
        raise ValueError(
            f"values must be one of {SUPPORTED_VALUES}, got {values!r}"
        )
    return values


def int_to_bits(value: int, nbits: int) -> np.ndarray:
    """Little-endian bit vector of ``value`` (bool, vectorized, any width)."""
    nbytes = (nbits + 7) // 8
    raw = np.frombuffer(
        (value & ((1 << nbits) - 1)).to_bytes(nbytes, "little"), dtype=np.uint8
    )
    return np.unpackbits(raw, bitorder="little")[:nbits].astype(bool)


def bits_to_int(bits: np.ndarray) -> int:
    """Inverse of :func:`int_to_bits` (accepts any 0/1 integer array)."""
    packed = np.packbits(np.asarray(bits, dtype=bool), bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


class ExecutionEngine:
    """Word-level ALU for ``batch`` packed stimulus lanes.

    Owns the packed-lane representation: how constants broadcast across
    lanes, how per-lane integers (primary inputs, RAM addresses and data)
    convert to and from bit-plane words, and the fold step itself.  The
    interpreter holds the decoded program and drives these primitives.

    ``batch <= 64`` keeps the historical single-word layout: 1-D
    ``(n,)`` arrays, a partial :attr:`lane_mask`, scalar quarantine
    word.  ``batch > 64`` switches to K-word planes: ``(n, K)`` arrays,
    all-ones :attr:`lane_mask` (every word fully active), and a ``(K,)``
    quarantine plane.

    **Four-state (dual-rail) execution.**  ``values=4`` designs are
    compiled through :func:`repro.fourstate.dualrail.to_dual_rail`, which
    lowers every 4-state net into two ordinary 2-state nets — a value
    rail and a known (``__u``) rail — *before* the program reaches this
    engine.  Both rails occupy regular slots in the same packed lane
    planes, so X/Z propagation costs exactly one extra net per 4-state
    net and zero new fold primitives: lane packing, quarantine keep
    masks, digests and checkpoints treat the known rail like any other
    state word.  ``values`` is recorded here purely so runtime layers
    (checkpoints, supervisor, oracle) can tag which value system a lane
    plane encodes; it never changes the fold math.
    """

    def __init__(self, batch: int = 1, values: int = 2) -> None:
        #: lane-plane width: state elements are ``(n,)`` words for
        #: ``words == 1`` and ``(n, words)`` rows beyond that
        self.words = validate_batch(batch)
        self.batch = batch
        #: value system the lane planes encode: 2 (plain) or 4 (dual-rail;
        #: the compiled program carries value+known rails as paired nets)
        self.values = validate_values(values)
        if self.words == 1:
            #: active-lane mask: bit ``l`` set for every lane ``l < batch``
            self.lane_mask = (
                _ALL if batch == WORD_LANES else np.uint64((1 << batch) - 1)
            )
            #: bit ``l`` set for every lane the runtime has masked out of
            #: the batch (fault containment — see :meth:`quarantine_lanes`)
            self.quarantined = _ZERO
            self.lane_shifts = np.arange(batch, dtype=np.uint64)
        else:
            # multi-word planes are always fully populated, so the mask
            # stays a scalar word and broadcasts across the plane
            self.lane_mask = _ALL
            self.quarantined = np.zeros(self.words, dtype=np.uint64)
            self.lane_shifts = np.arange(WORD_LANES, dtype=np.uint64)
        self.lane_index = np.arange(batch)

    # -- lane quarantine ------------------------------------------------------

    @property
    def active_mask(self):
        """Lanes still in service: :attr:`lane_mask` minus quarantined.

        A scalar word for single-word batches, a ``(K,)`` plane beyond.
        """
        return self.lane_mask & ~self.quarantined

    @staticmethod
    def lane_coords(lane: int) -> tuple[int, int]:
        """``(word, bit)`` coordinates of a lane in a K-word plane."""
        return divmod(lane, WORD_LANES)

    def quarantine_lanes(self, lanes: Sequence[int]):
        """Mask ``lanes`` out of the batch; returns the *keep* mask.

        Quarantined lanes stay physically present in every packed word
        (the decoded program's constants are immutable and still drive
        them), but the runtime zeroes their state bits with the returned
        keep mask and stops trusting their outputs.  Because primary and
        shadow are zeroed identically, the quarantined lane's bits evolve
        deterministically and whole-word digest scrubs stay valid for the
        healthy lanes.
        """
        for lane in lanes:
            if not 0 <= lane < self.batch:
                raise ValueError(
                    f"lane {lane} out of range for batch {self.batch}"
                )
            if self.words == 1:
                self.quarantined |= _ONE << np.uint64(lane)
            else:
                word, bit = self.lane_coords(lane)
                self.quarantined[word] |= _ONE << np.uint64(bit)
        return ~self.quarantined

    def clear_quarantine(self) -> None:
        """Return every quarantined lane to service (fresh reset)."""
        if self.words == 1:
            self.quarantined = _ZERO
        else:
            self.quarantined = np.zeros(self.words, dtype=np.uint64)

    # -- state allocation -----------------------------------------------------

    def zeros(self, n: int) -> np.ndarray:
        if self.words == 1:
            return np.zeros(n, dtype=np.uint64)
        return np.zeros((n, self.words), dtype=np.uint64)

    def const_mask(self, flags: np.ndarray) -> np.ndarray:
        """Per-element lane mask for decoded boolean constants.

        A fold/XOR/OR constant of 1 applies to *every* lane (the same
        program serves all stimulus streams), but only to the active
        ones — masking here is what keeps inactive lanes identically 0.
        For K-word planes the constants come back as an ``(n, 1)``
        column so they broadcast across the plane axis.
        """
        masked = np.where(np.asarray(flags, dtype=bool), self.lane_mask, _ZERO)
        return masked if self.words == 1 else masked[:, None]

    def scalar_mask(self, flag: bool) -> np.uint64:
        return self.lane_mask if flag else _ZERO

    # -- the hot-loop primitive ----------------------------------------------

    @staticmethod
    def fold_step(
        vec: np.ndarray, xor_a: np.ndarray, xor_b: np.ndarray, or_b: np.ndarray
    ) -> np.ndarray:
        """One boomerang fold: halves ``vec``, all lanes in parallel."""
        return (vec[0::2] ^ xor_a) & ((vec[1::2] ^ xor_b) | or_b)

    # -- integers <-> packed bit-plane words ----------------------------------

    def broadcast_int(self, value: int, nbits: int) -> np.ndarray:
        """``value``'s bits replicated across every active lane."""
        bits = np.where(int_to_bits(value, nbits), self.lane_mask, _ZERO)
        return bits if self.words == 1 else bits[:, None]

    def pack_lanes(self, values: Sequence[int], nbits: int) -> np.ndarray:
        """Per-lane integers to packed words (arbitrary width).

        Vectorized: all lanes' values become one ``(batch, nbytes)`` byte
        matrix, one ``np.unpackbits`` yields the ``(batch, nbits)`` bit
        plane, and a single shift-reduce packs each bit column into its
        word — no per-lane Python loop.  Returns ``(nbits,)`` words for
        single-word batches, ``(nbits, K)`` planes beyond.
        """
        if self.batch == 1:
            return int_to_bits(values[0], nbits).astype(np.uint64)
        nbytes = (nbits + 7) // 8
        vmask = (1 << nbits) - 1
        raw = b"".join((v & vmask).to_bytes(nbytes, "little") for v in values)
        mat = np.frombuffer(raw, dtype=np.uint8).reshape(len(values), nbytes)
        bits = np.unpackbits(mat, axis=1, bitorder="little")[:, :nbits]
        if self.words == 1:
            shifted = bits.astype(np.uint64) << self.lane_shifts[: len(values), None]
            return np.bitwise_or.reduce(shifted, axis=0)
        planes = bits.astype(np.uint64).reshape(self.words, WORD_LANES, nbits)
        shifted = planes << self.lane_shifts[None, :, None]
        return np.bitwise_or.reduce(shifted, axis=1).T.copy()

    def lane_int(self, words: np.ndarray, lane: int) -> int:
        """One lane's integer value from packed bit-plane words."""
        if self.words == 1:
            return bits_to_int((words >> np.uint64(lane)) & _ONE)
        word, bit = self.lane_coords(lane)
        return bits_to_int((words[:, word] >> np.uint64(bit)) & _ONE)

    def lane_bits(self, word) -> np.ndarray:
        """One packed word (or ``(K,)`` plane row) split into per-lane
        bits, shape ``(batch,)``."""
        if self.words == 1:
            return ((word >> self.lane_shifts) & _ONE).astype(np.uint8)
        row = np.asarray(word, dtype=np.uint64)
        bits = (row[:, None] >> self.lane_shifts[None, :]) & _ONE
        return bits.reshape(self.batch).astype(np.uint8)

    def lane_values(self, words: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Per-lane small integers (RAM addresses/data) from bit planes.

        ``words[i]`` carries bit ``i`` of every lane; ``weights[i]`` is
        ``2**i`` as ``uint64``.  Returns shape ``(batch,)``.  This is the
        vectorized replacement for the per-bit ``bits_value`` helper.
        """
        if self.words == 1:
            lane_bits = (words[:, None] >> self.lane_shifts[None, :]) & _ONE
        else:
            lane_bits = (
                (words[:, :, None] >> self.lane_shifts[None, None, :]) & _ONE
            ).reshape(words.shape[0], self.batch)
        return (lane_bits * weights[:, None]).sum(axis=0, dtype=np.uint64)

    def pack_lane_values(self, values: np.ndarray, nbits: int) -> np.ndarray:
        """Per-lane small integers back into bit-plane words
        (``(nbits,)`` single-word, ``(nbits, K)`` planes)."""
        bits = (values[None, :] >> np.arange(nbits, dtype=np.uint64)[:, None]) & _ONE
        if self.words == 1:
            return (bits << self.lane_shifts[None, :]).sum(axis=1, dtype=np.uint64)
        planes = bits.reshape(nbits, self.words, WORD_LANES)
        return (planes << self.lane_shifts[None, None, :]).sum(axis=2, dtype=np.uint64)

    def bit_planes(self, arr: np.ndarray) -> np.ndarray:
        """Per-lane bit matrix of a packed state array, shape
        ``(n, batch)`` uint8 — the per-lane digest / scrub view."""
        if self.words == 1:
            bits = (arr[:, None] >> self.lane_shifts[None, :]) & _ONE
            return bits.astype(np.uint8)
        bits = (arr[:, :, None] >> self.lane_shifts[None, None, :]) & _ONE
        return bits.reshape(arr.shape[0], self.batch).astype(np.uint8)

    # -- deferred-write commit ------------------------------------------------

    @staticmethod
    def merge(dst: np.ndarray, gidx: np.ndarray, values: np.ndarray, mask) -> None:
        """Commit a deferred scatter; ``mask`` (a packed lane word, a
        ``(K,)`` plane row, or ``None``) restricts the merge to the lanes
        whose write enable was set — the per-lane generalization of 'no
        deferred write at all'."""
        if mask is None:
            dst[gidx] = values
        else:
            dst[gidx] = (dst[gidx] & ~mask) | (values & mask)


def weights(nbits: int) -> np.ndarray:
    """``[1, 2, 4, ...]`` as ``uint64``, precomputed once per RAM port."""
    return _ONE << np.arange(nbits, dtype=np.uint64)
