"""Multi-stage replication-aided partitioning (paper §III-C, Fig. 5).

GEM needs hundreds of partitions to fill a GPU, but RepCut's replication
cost explodes with partition count (1.3% at 8 parts → ~11% at 48 → >200% at
216, per the paper).  The fix is **staging**: cut the circuit at one or more
logic levels, treat the values crossing a cut as endpoints of the earlier
stage and as inputs of the later stage, and run RepCut independently per
stage.  The cost is one extra device-wide synchronization per boundary per
simulated cycle; the benefit is that each stage's cones are shallow, so far
less logic is shared between endpoints.

This module:

* builds the endpoint groups (one per flip-flop, one per RAM block — all
  ports of a RAM must stay together — and one per output word);
* selects cut levels by scanning for the boundary with the fewest crossing
  values (a difference-array sweep over the level histogram);
* assigns groups to stages, adds the crossing values as publish groups,
  and runs :func:`repro.partition.repcut.repcut_partition` per stage;
* materializes :class:`PartitionSpec` objects — the unit everything
  downstream (merging, placement, bitstream) consumes — and validates the
  whole plan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.eaig import EAIG, NodeKind, lit_node
from repro.partition.repcut import RepCutResult, cone_masks, repcut_partition


@dataclass
class PartitionConfig:
    """Partitioning knobs (defaults follow the paper's architecture)."""

    #: bits of block state per virtual Boolean processor core
    width: int = 8192
    #: target live gates per partition before merging (Algorithm 1 merges
    #: excessive partitions back together, so this errs small)
    gates_per_partition: int = 3072
    #: overpartitioning factor for Algorithm 1's "partition excessively"
    overpartition: float = 1.5
    #: number of RepCut stages; None = auto heuristic
    num_stages: int | None = None
    #: allowed relative imbalance inside the hypergraph partitioner
    epsilon: float = 0.1
    seed: int = 0
    max_net_pins: int = 128


@dataclass
class EndpointGroup:
    """One indivisible endpoint: all its roots live in the same partition."""

    kind: str  # "ff" | "ram" | "po" | "cut"
    roots: list[int]  # literals this group's partition must compute
    ff_node: int = -1
    ram_index: int = -1
    po_name: str = ""
    cut_node: int = -1


@dataclass
class PartitionSpec:
    """One virtual Boolean processor core's share of the design."""

    stage: int
    index: int
    #: AND nodes evaluated by this partition, ascending (= topological)
    nodes: list[int]
    groups: list[EndpointGroup]
    #: nodes read from global state: PIs, FFs, RAM read bits, constants are
    #: implicit; this lists them plus earlier-stage published AND nodes
    sources: list[int] = field(default_factory=list)

    @property
    def ff_nodes(self) -> list[int]:
        return [g.ff_node for g in self.groups if g.kind == "ff"]

    @property
    def ram_indices(self) -> list[int]:
        return [g.ram_index for g in self.groups if g.kind == "ram"]

    @property
    def cut_nodes(self) -> list[int]:
        return [g.cut_node for g in self.groups if g.kind == "cut"]

    @property
    def po_groups(self) -> list[EndpointGroup]:
        return [g for g in self.groups if g.kind == "po"]

    def root_literals(self) -> list[int]:
        out: list[int] = []
        for g in self.groups:
            out.extend(g.roots)
        return out


@dataclass
class PartitionPlan:
    """Full multi-stage partitioning of one E-AIG."""

    eaig: EAIG
    config: PartitionConfig
    cut_levels: list[int]
    stages: list[list[PartitionSpec]]
    stage_results: list[RepCutResult]
    #: live-gate count per stage (union of cones)
    stage_live: list[int]

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def num_partitions(self) -> int:
        return sum(len(s) for s in self.stages)

    @property
    def partitions(self) -> list[PartitionSpec]:
        return [p for stage in self.stages for p in stage]

    def replication_cost(self) -> float:
        total = sum(len(p.nodes) for p in self.partitions)
        live = sum(self.stage_live)
        return (total - live) / live if live else 0.0

    def stats(self) -> dict:
        return {
            "stages": self.num_stages,
            "partitions": self.num_partitions,
            "cut_levels": self.cut_levels,
            "replication_cost": self.replication_cost(),
            "stage_live": self.stage_live,
            "stage_partitions": [len(s) for s in self.stages],
        }

    def validate(self) -> None:
        """Structural invariants every plan must satisfy."""
        eaig = self.eaig
        owned_ffs: set[int] = set()
        owned_rams: set[int] = set()
        owned_pos: set[str] = set()
        published: set[int] = set()
        for spec in self.partitions:
            nodes = set(spec.nodes)
            for g in spec.groups:
                if g.kind == "ff":
                    if g.ff_node in owned_ffs:
                        raise AssertionError(f"FF {g.ff_node} owned twice")
                    owned_ffs.add(g.ff_node)
                elif g.kind == "ram":
                    if g.ram_index in owned_rams:
                        raise AssertionError(f"RAM {g.ram_index} owned twice")
                    owned_rams.add(g.ram_index)
                elif g.kind == "po":
                    if g.po_name in owned_pos:
                        raise AssertionError(f"output {g.po_name} owned twice")
                    owned_pos.add(g.po_name)
                elif g.kind == "cut":
                    published.add(g.cut_node)
            sources = set(spec.sources)
            for node in spec.nodes:
                for fanin in (eaig.fanin0[node], eaig.fanin1[node]):
                    f = lit_node(fanin)
                    if f == 0:
                        continue
                    if f not in nodes and f not in sources:
                        raise AssertionError(
                            f"partition s{spec.stage}p{spec.index}: node {node} "
                            f"reads {f} which is neither local nor a source"
                        )
            for literal in spec.root_literals():
                f = lit_node(literal)
                if f != 0 and f not in nodes and f not in sources:
                    raise AssertionError(
                        f"partition s{spec.stage}p{spec.index}: root {literal} unresolved"
                    )
            # Earlier-stage AND sources must be published by earlier stages.
            for f in sources:
                if eaig.kind[f] is NodeKind.AND and f not in published:
                    raise AssertionError(
                        f"partition s{spec.stage}p{spec.index}: source {f} is an "
                        "AND node never published by an earlier stage"
                    )
        if owned_ffs != set(eaig.ffs):
            missing = set(eaig.ffs) - owned_ffs
            raise AssertionError(f"{len(missing)} FFs unowned (e.g. {sorted(missing)[:5]})")
        if owned_rams != set(range(len(eaig.rams))):
            raise AssertionError("some RAM blocks unowned")
        expected_pos = {name.rsplit("[", 1)[0] for name, _ in eaig.outputs}
        if owned_pos != expected_pos:
            raise AssertionError(f"outputs unowned: {sorted(expected_pos - owned_pos)[:5]}")


def build_endpoint_groups(eaig: EAIG) -> list[EndpointGroup]:
    """Endpoints of the whole design: FFs, RAMs (indivisible), output words."""
    groups: list[EndpointGroup] = []
    for ff in eaig.ffs:
        groups.append(EndpointGroup(kind="ff", roots=[eaig.fanin0[ff]], ff_node=ff))
    for ram in eaig.rams:
        groups.append(EndpointGroup(kind="ram", roots=list(ram.port_literals()), ram_index=ram.index))
    by_word: dict[str, list[int]] = {}
    for name, literal in eaig.outputs:
        word = name.rsplit("[", 1)[0]
        by_word.setdefault(word, []).append(literal)
    for word, literals in by_word.items():
        groups.append(EndpointGroup(kind="po", roots=literals, po_name=word))
    return groups


def _max_need_level(
    eaig: EAIG,
    groups: list[EndpointGroup],
    levels: list[int],
    live: set[int] | None = None,
) -> list[int]:
    """Highest logic level at which each AND node's value is consumed.

    AND consumers count at their own level; endpoint-root consumers count at
    the *group's* maximum root level (roots of one group stay together).
    ``live`` restricts consumers to nodes inside endpoint cones — dead logic
    must not force values to be published across stage boundaries.
    """
    need = [0] * len(eaig.kind)
    for node in range(len(eaig.kind)):
        if eaig.kind[node] is NodeKind.AND and (live is None or node in live):
            lvl = levels[node]
            for fanin in (eaig.fanin0[node], eaig.fanin1[node]):
                f = lit_node(fanin)
                if lvl > need[f]:
                    need[f] = lvl
    for g in groups:
        glevel = max((levels[lit_node(r)] for r in g.roots), default=0)
        for r in g.roots:
            f = lit_node(r)
            if glevel > need[f]:
                need[f] = glevel
    return need


def choose_cut_levels(
    eaig: EAIG,
    groups: list[EndpointGroup],
    num_stages: int,
    levels: list[int] | None = None,
) -> list[int]:
    """Pick ``num_stages - 1`` boundaries minimizing crossing values.

    A node at level ``l`` with a consumer above boundary ``L`` (``l <= L <
    need``) must be written to global memory — the staging overhead.  A
    difference-array sweep counts crossings for every candidate boundary;
    we greedily pick the cheapest boundary inside each of the
    ``num_stages`` equal depth bands.
    """
    if num_stages <= 1:
        return []
    levels = levels or eaig.levels()
    depth = max(levels) if levels else 0
    if depth < num_stages:
        return []
    need = _max_need_level(eaig, groups, levels)
    crossing = [0] * (depth + 1)
    for node in range(len(eaig.kind)):
        if eaig.kind[node] is not NodeKind.AND:
            continue
        lo = levels[node]
        hi = need[node]
        if hi > lo:
            crossing[lo] += 1
            if hi <= depth:
                crossing[hi] -= 1
    for i in range(1, depth + 1):
        crossing[i] += crossing[i - 1]
    # Gate mass per level: the long tail (Observation 4) makes equal-depth
    # splits lopsided, so windows are centred on gate-count quantiles.
    mass = [0] * (depth + 1)
    for node in range(len(eaig.kind)):
        if eaig.kind[node] is NodeKind.AND:
            mass[levels[node]] += 1
    cum = [0] * (depth + 2)
    for i in range(depth + 1):
        cum[i + 1] = cum[i] + mass[i]
    total = cum[depth + 1]

    def quantile_level(fraction: float) -> int:
        target = total * fraction
        for i in range(depth + 1):
            if cum[i + 1] >= target:
                return i
        return depth

    cuts: list[int] = []
    prev = 0
    for s in range(1, num_stages):
        centre = quantile_level(s / num_stages)
        half = max(1, depth // (2 * num_stages))
        band_lo = max(prev + 1, centre - half)
        band_hi = min(depth - 1, centre + half)
        if band_lo > band_hi:
            continue
        best = min(range(band_lo, band_hi + 1), key=lambda L: crossing[L])
        cuts.append(best)
        prev = best
    return cuts


def _auto_stages(total_gates: int, config: PartitionConfig) -> int:
    """Paper heuristic: more partitions need more stages (Fig. 5)."""
    k = max(1, math.ceil(total_gates / config.gates_per_partition))
    if k <= 8:
        return 1
    if k <= 512:
        return 2
    return 3


def partition_design(eaig: EAIG, config: PartitionConfig | None = None) -> PartitionPlan:
    """Run the full multi-stage RepCut flow on a synthesized design."""
    config = config or PartitionConfig()
    eaig.check()
    groups = build_endpoint_groups(eaig)
    levels = eaig.levels()
    total_gates = eaig.num_gates()
    num_stages = config.num_stages or _auto_stages(total_gates, config)
    cut_levels = choose_cut_levels(eaig, groups, num_stages, levels)
    boundaries = cut_levels + [max(levels) if levels else 0]
    num_stages = len(boundaries)  # cuts may collapse on shallow designs

    def band_of(level: int) -> int:
        for s, boundary in enumerate(boundaries):
            if level <= boundary:
                return s
        return num_stages - 1

    # Assign real endpoint groups to stages by their deepest root.
    stage_groups: list[list[EndpointGroup]] = [[] for _ in range(num_stages)]
    for g in groups:
        glevel = max((levels[lit_node(r)] for r in g.roots), default=0)
        stage_groups[band_of(glevel)].append(g)

    # Publish groups: values crossing a boundary become endpoints of their
    # own band's stage.  Only live logic (inside some endpoint cone) is
    # published — dead gates never need a global slot.
    if num_stages > 1:
        live = eaig.cone([r for g in groups for r in g.roots])
        need = _max_need_level(eaig, groups, levels, live)
        for node in range(len(eaig.kind)):
            if eaig.kind[node] is not NodeKind.AND or node not in live:
                continue
            band = band_of(levels[node])
            if band < num_stages - 1 and band_of(need[node]) > band:
                stage_groups[band].append(
                    EndpointGroup(kind="cut", roots=[2 * node], cut_node=node)
                )

    stages: list[list[PartitionSpec]] = []
    stage_results: list[RepCutResult] = []
    stage_live: list[int] = []
    for s in range(num_stages):
        source_flags = None
        if s > 0:
            boundary = boundaries[s - 1]
            source_flags = [
                eaig.kind[n] is NodeKind.AND and levels[n] <= boundary
                for n in range(len(eaig.kind))
            ]
        sgroups = stage_groups[s]
        if not sgroups:
            stages.append([])
            stage_results.append(
                RepCutResult(assignment=[], part_nodes=[], part_groups=[], total_nodes=0, cut_weight=0)
            )
            stage_live.append(0)
            continue
        masks = cone_masks(eaig, [g.roots for g in sgroups], source_flags)
        live = sum(1 for m in masks if m)
        k = max(1, math.ceil(live / config.gates_per_partition * config.overpartition))
        k = min(k, len(sgroups))
        result = repcut_partition(
            eaig,
            [g.roots for g in sgroups],
            k,
            epsilon=config.epsilon,
            seed=config.seed + s,
            max_net_pins=config.max_net_pins,
            masks=masks,
        )
        specs: list[PartitionSpec] = []
        for p in range(k):
            if not result.part_groups[p] and not result.part_nodes[p]:
                continue
            spec = PartitionSpec(
                stage=s,
                index=len(specs),
                nodes=sorted(result.part_nodes[p]),
                groups=[sgroups[g] for g in result.part_groups[p]],
            )
            compute_sources(eaig, spec)
            specs.append(spec)
        stages.append(specs)
        stage_results.append(result)
        stage_live.append(live)

    plan = PartitionPlan(
        eaig=eaig,
        config=config,
        cut_levels=cut_levels,
        stages=stages,
        stage_results=stage_results,
        stage_live=stage_live,
    )
    plan.validate()
    return plan


def compute_sources(eaig: EAIG, spec: PartitionSpec) -> None:
    """Fill ``spec.sources``: every non-local, non-constant value it reads."""
    local = set(spec.nodes)
    sources: set[int] = set()

    def visit(literal: int) -> None:
        node = lit_node(literal)
        if node != 0 and node not in local:
            sources.add(node)

    for node in spec.nodes:
        visit(eaig.fanin0[node])
        visit(eaig.fanin1[node])
    for literal in spec.root_literals():
        visit(literal)
    spec.sources = sorted(sources)
