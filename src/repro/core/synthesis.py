"""Word-level RTL → E-AIG synthesis (paper §III-B).

The paper feeds Verilog through Yosys (RAM mapping) and a commercial ASIC
synthesizer with a fake AND/OR/INV/FF library whose timing model makes
timing-driven synthesis equivalent to *depth* optimization.  This module is
our equivalent: it lowers every word-level op of an RTL
:class:`~repro.rtl.ir.Circuit` into AND/INV logic using depth-optimized
constructions:

* carry operators use Kogge–Stone parallel-prefix networks (log-depth
  adders, subtractors and unsigned comparators);
* multipliers reduce partial products with 3:2 carry-save compressors
  (Wallace style) before one final prefix adder;
* reductions and decoders use level-aware Huffman tree balancing — operands
  are merged shallowest-first, which is optimal when input depths differ;
* structural hashing and constant folding happen in :class:`EAIG` itself.

Behavioral memories are delegated to :mod:`repro.core.ram_mapping`.

The output is a :class:`SynthesisResult` carrying the E-AIG plus the
word-level I/O binding, and a :meth:`SynthesisResult.make_sim` golden
adapter used throughout the test suite to prove the lowering correct against
:class:`repro.rtl.netlist.WordSim`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.core.eaig import EAIG, EAIGSim, FALSE, TRUE, lit_neg, lit_node, lit_not
from repro.core.ram_mapping import MappedMemory, MappingReport, RamMappingConfig, map_memory
from repro.rtl.ir import Circuit, Op, OpKind, Signal
from repro.rtl.netlist import Netlist


@dataclass
class SynthesisConfig:
    """Knobs for the synthesis step."""

    ram: RamMappingConfig = field(default_factory=RamMappingConfig)


@dataclass
class SynthesisResult:
    """E-AIG plus word-level I/O binding for a synthesized circuit."""

    eaig: EAIG
    #: circuit input name -> PI literals (LSB first)
    input_bits: dict[str, list[int]]
    #: circuit output name -> literals (LSB first)
    output_bits: dict[str, list[int]]
    #: per-memory mapping accounting (blocks vs polyfill)
    memory_reports: list[MappingReport]

    def make_sim(self) -> "EAIGWordSim":
        """Bit-level golden simulator with word-level I/O."""
        return EAIGWordSim(self)


class EAIGWordSim:
    """Adapter: drive an :class:`EAIGSim` with word-valued inputs/outputs."""

    def __init__(self, result: SynthesisResult) -> None:
        self.result = result
        self.sim = EAIGSim(result.eaig, vectors=1)
        self._num_pis = len(result.eaig.pis)

    def step(self, inputs: Mapping[str, int] | None = None) -> dict[str, int]:
        eaig = self.result.eaig
        pi_values = [0] * self._num_pis
        for name, bits in self.result.input_bits.items():
            value = (inputs or {}).get(name, 0)
            for i, literal in enumerate(bits):
                pi_values[eaig.aux[lit_node(literal)]] = (value >> i) & 1
        self.sim.settle(pi_values)
        outs = self.outputs()
        self.sim.clock_edge()
        return outs

    def outputs(self) -> dict[str, int]:
        words: dict[str, int] = {}
        for name, bits in self.result.output_bits.items():
            value = 0
            for i, literal in enumerate(bits):
                value |= self.sim._lit_value(literal) << i
            words[name] = value
        return words


# ---------------------------------------------------------------------------
# Bit-level operator library
# ---------------------------------------------------------------------------


def reduce_tree(eaig: EAIG, lits: Sequence[int], combine: Callable[[int, int], int], empty: int) -> int:
    """Level-aware (Huffman) tree reduction: merge two shallowest first."""
    if not lits:
        return empty
    heap = [(eaig.lit_level(literal), i, literal) for i, literal in enumerate(lits)]
    heapq.heapify(heap)
    counter = len(lits)
    while len(heap) > 1:
        _, _, a = heapq.heappop(heap)
        _, _, b = heapq.heappop(heap)
        merged = combine(a, b)
        heapq.heappush(heap, (eaig.lit_level(merged), counter, merged))
        counter += 1
    return heap[0][2]


def tree_and(eaig: EAIG, lits: Sequence[int]) -> int:
    return reduce_tree(eaig, lits, eaig.add_and, TRUE)


def tree_or(eaig: EAIG, lits: Sequence[int]) -> int:
    return reduce_tree(eaig, lits, eaig.add_or, FALSE)


def tree_xor(eaig: EAIG, lits: Sequence[int]) -> int:
    return reduce_tree(eaig, lits, eaig.add_xor, FALSE)


def const_bits(value: int, width: int) -> list[int]:
    return [TRUE if (value >> i) & 1 else FALSE for i in range(width)]


def prefix_carries(eaig: EAIG, g: list[int], p: list[int], cin: int) -> list[int]:
    """Kogge–Stone prefix network: carries[0..n] given generate/propagate."""
    n = len(g)
    G = list(g)
    P = list(p)
    dist = 1
    while dist < n:
        new_g = list(G)
        new_p = list(P)
        for i in range(dist, n):
            new_g[i] = eaig.add_or(G[i], eaig.add_and(P[i], G[i - dist]))
            new_p[i] = eaig.add_and(P[i], P[i - dist])
        G, P = new_g, new_p
        dist <<= 1
    carries = [cin]
    for i in range(n):
        carries.append(eaig.add_or(G[i], eaig.add_and(P[i], cin)))
    return carries


def add_words(eaig: EAIG, a: Sequence[int], b: Sequence[int], cin: int = FALSE) -> tuple[list[int], int]:
    """Log-depth adder; returns (sum bits, carry out)."""
    if len(a) != len(b):
        raise ValueError("adder operands must have equal width")
    g = [eaig.add_and(x, y) for x, y in zip(a, b)]
    p = [eaig.add_xor(x, y) for x, y in zip(a, b)]
    carries = prefix_carries(eaig, g, p, cin)
    total = [eaig.add_xor(p[i], carries[i]) for i in range(len(a))]
    return total, carries[len(a)]


def sub_words(eaig: EAIG, a: Sequence[int], b: Sequence[int]) -> tuple[list[int], int]:
    """a - b via a + ~b + 1; second result is the carry (a >= b)."""
    nb = [lit_not(x) for x in b]
    return add_words(eaig, list(a), nb, cin=TRUE)


def less_than(eaig: EAIG, a: Sequence[int], b: Sequence[int]) -> int:
    """Unsigned a < b."""
    _, carry = sub_words(eaig, a, b)
    return lit_not(carry)


def equal_words(eaig: EAIG, a: Sequence[int], b: Sequence[int]) -> int:
    xnors = [lit_not(eaig.add_xor(x, y)) for x, y in zip(a, b)]
    return tree_and(eaig, xnors)


def mux_words(eaig: EAIG, sel: int, a: Sequence[int], b: Sequence[int]) -> list[int]:
    return [eaig.add_mux(sel, x, y) for x, y in zip(a, b)]


def csa(eaig: EAIG, x: Sequence[int], y: Sequence[int], z: Sequence[int]) -> tuple[list[int], list[int]]:
    """3:2 carry-save compressor over equal-width vectors.

    Returns (sum, carry) where ``x + y + z == sum + carry`` and carry is
    already shifted left by one position (width preserved, overflow drops).
    """
    n = len(x)
    s = [tree_xor(eaig, [x[i], y[i], z[i]]) for i in range(n)]
    maj = [
        tree_or(eaig, [eaig.add_and(x[i], y[i]), eaig.add_and(x[i], z[i]), eaig.add_and(y[i], z[i])])
        for i in range(n)
    ]
    carry = [FALSE] + maj[: n - 1]
    return s, carry


def multiply(eaig: EAIG, a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Wallace-style multiplier truncated to the operand width."""
    n = len(a)
    rows: list[list[int]] = []
    for j in range(n):
        row = [FALSE] * j + [eaig.add_and(a[i], b[j]) for i in range(n - j)]
        rows.append(row)
    while len(rows) > 2:
        next_rows: list[list[int]] = []
        for k in range(0, len(rows) - 2, 3):
            s, c = csa(eaig, rows[k], rows[k + 1], rows[k + 2])
            next_rows.extend((s, c))
        next_rows.extend(rows[len(rows) - (len(rows) % 3) :])
        rows = next_rows
    if len(rows) == 1:
        return list(rows[0])
    total, _ = add_words(eaig, rows[0], rows[1])
    return total


def shift_words(eaig: EAIG, a: Sequence[int], amount: Sequence[int], left: bool) -> list[int]:
    """Barrel shifter; amounts >= width produce zero (RTL semantics)."""
    n = len(a)
    result = list(a)
    stages = max(1, (n - 1).bit_length()) if n > 1 else 1
    for k in range(min(len(amount), stages)):
        shift = 1 << k
        if left:
            shifted = [FALSE] * shift + result[: n - shift]
        else:
            shifted = result[shift:] + [FALSE] * shift
        result = mux_words(eaig, amount[k], shifted, result)
    oversize = tree_or(eaig, list(amount[stages:]))
    if oversize != FALSE:
        keep = lit_not(oversize)
        result = [eaig.add_and(bit, keep) for bit in result]
    return result


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def synthesize(circuit: Circuit | Netlist, config: SynthesisConfig | None = None) -> SynthesisResult:
    """Lower a word-level circuit to an E-AIG (the paper's compile step 1)."""
    config = config or SynthesisConfig()
    netlist = circuit if isinstance(circuit, Netlist) else Netlist(circuit)
    circ = netlist.circuit
    eaig = EAIG(circ.name)
    env: dict[int, list[int]] = {}

    def lits_of(sig: Signal) -> list[int]:
        return env[sig.uid]

    input_bits: dict[str, list[int]] = {}
    for sig in circ.inputs:
        bits = [eaig.add_pi(f"{sig.name}[{i}]") for i in range(sig.width)]
        env[sig.uid] = bits
        input_bits[sig.name] = bits

    ff_ops: list[Op] = []
    for op in circ.ops:
        if op.kind is OpKind.CONST:
            env[op.out.uid] = const_bits(op.attrs["value"], op.out.width)
        elif op.kind is OpKind.REG:
            init = op.attrs.get("init", 0)
            env[op.out.uid] = [
                eaig.add_ff(init=(init >> i) & 1, name=f"{op.out.name}[{i}]")
                for i in range(op.out.width)
            ]
            ff_ops.append(op)

    mapped: dict[str, MappedMemory] = {}
    for mem in circ.memories:
        mapped[mem.name] = map_memory(eaig, mem, config.ram)
    # Synchronous read data is state: publish it before combinational lowering.
    for op in circ.ops:
        if op.kind is OpKind.MEMRD and op.attrs["sync"]:
            data = mapped[op.attrs["memory"]].sync_read_data(op.attrs["port"])
            env[op.out.uid] = list(data[: op.out.width])

    for op in netlist.order:
        env[op.out.uid] = _lower(eaig, op, env, mapped)

    output_bits: dict[str, list[int]] = {}
    for name, sig in circ.outputs:
        bits = env[sig.uid]
        output_bits[name] = bits
        for i, literal in enumerate(bits):
            eaig.add_output(f"{name}[{i}]", literal)

    for op in ff_ops:
        d_bits = env[op.inputs[0].uid]
        for ff_lit, d in zip(env[op.out.uid], d_bits):
            eaig.set_ff_input(ff_lit, d)
    for mem in circ.memories:
        mapped[mem.name].finalize(lits_of)

    eaig.check()
    return SynthesisResult(
        eaig=eaig,
        input_bits=input_bits,
        output_bits=output_bits,
        memory_reports=[m.report for m in mapped.values()],
    )


def _lower(eaig: EAIG, op: Op, env: dict[int, list[int]], mapped: dict[str, MappedMemory]) -> list[int]:
    """Lower one combinational word-level op to literals."""
    kind = op.kind
    ins = [env[s.uid] for s in op.inputs]
    width = op.out.width
    if kind is OpKind.AND:
        return [eaig.add_and(a, b) for a, b in zip(*ins)]
    if kind is OpKind.OR:
        return [eaig.add_or(a, b) for a, b in zip(*ins)]
    if kind is OpKind.XOR:
        return [eaig.add_xor(a, b) for a, b in zip(*ins)]
    if kind is OpKind.NOT:
        return [lit_not(a) for a in ins[0]]
    if kind is OpKind.ADD:
        total, _ = add_words(eaig, ins[0], ins[1])
        return total
    if kind is OpKind.SUB:
        total, _ = sub_words(eaig, ins[0], ins[1])
        return total
    if kind is OpKind.MUL:
        return multiply(eaig, ins[0], ins[1])
    if kind is OpKind.EQ:
        return [equal_words(eaig, ins[0], ins[1])]
    if kind is OpKind.LT:
        return [less_than(eaig, ins[0], ins[1])]
    if kind is OpKind.MUX:
        sel, a, b = ins
        return mux_words(eaig, sel[0], a, b)
    if kind is OpKind.REDAND:
        return [tree_and(eaig, ins[0])]
    if kind is OpKind.REDOR:
        return [tree_or(eaig, ins[0])]
    if kind is OpKind.REDXOR:
        return [tree_xor(eaig, ins[0])]
    if kind is OpKind.SHLI:
        amount = op.attrs["amount"]
        if amount >= width:
            return [FALSE] * width
        return [FALSE] * amount + list(ins[0][: width - amount])
    if kind is OpKind.SHRI:
        amount = op.attrs["amount"]
        if amount >= width:
            return [FALSE] * width
        return list(ins[0][amount:]) + [FALSE] * amount
    if kind is OpKind.SHL:
        return shift_words(eaig, ins[0], ins[1], left=True)
    if kind is OpKind.SHR:
        return shift_words(eaig, ins[0], ins[1], left=False)
    if kind is OpKind.SLICE:
        lo = op.attrs["lo"]
        return list(ins[0][lo : lo + width])
    if kind is OpKind.CONCAT:
        bits: list[int] = []
        for vec in ins:
            bits.extend(vec)
        return bits
    if kind is OpKind.MEMRD:  # asynchronous read port (sync handled earlier)
        mm = mapped[op.attrs["memory"]]
        data = mm.async_read_data(op.attrs["port"], ins[0])
        return list(data[:width])
    raise NotImplementedError(f"cannot lower {kind}")
