"""Decode-time stage fusion: the per-partition interpreter flattened into
level-synchronous whole-stage array ops.

The legacy execution path (:meth:`GemInterpreter._run_partition`) walks a
Python loop over every partition and every boomerang layer each cycle,
issuing thousands of tiny NumPy kernels whose dispatch overhead dwarfs
the bitwise work.  The paper's CUDA interpreter wins precisely by being a
*fixed-shape* kernel — coalesced loads, one device sync per stage (§III-E)
— and GATSPI's fused gate-evaluation kernels / Parendi's BSP-style
level-synchronous execution make the same move for word-packed
simulators.  This module is that move at decode time: it compiles the
decoded program into a :class:`FusedProgram` whose per-cycle execution is
a short, fixed sequence of large vector ops.

The fused execution model
-------------------------

Fusion symbolically executes one cycle of every partition at decode time
and extracts the *dynamic dataflow DAG* of the stage:

* **Constant folding.**  Partition locals start at zero each cycle, and
  boomerang fold trees are heavily padded with constant slots; fusion
  tracks every local slot as const-0 / const-1 / dynamic and folds
  ``(a ^ XA) & ((b ^ XB) | OB)`` accordingly.  A constant operand either
  kills the AND (result constant) or collapses it to an XOR *alias* of
  the other operand — aliases become edge flips, never computed.  On the
  large designs this removes ~90% of all fold positions.
* **Common-subexpression elimination + dead-code elimination.**  Nodes
  are hash-consed (an AND of the same flipped operands exists once per
  stage) and anything not transitively reachable from a global write,
  deferred write, or RAM-port input is dropped.
* **Level-synchronous waves.**  Surviving AND nodes are scheduled ASAP
  by depth.  One *wave* evaluates every node of one depth:
  one ``np.take`` (``mode="clip"``) gathers both operand vectors from
  the trace buffer, one XOR applies the edge-flip constants (elided when
  all zero), one AND over the two contiguous halves produces the wave's
  output — which is appended to the trace so later waves gather it.
  The trace layout is ``[stage reads][wave 1][wave 2]…``.
* **One global gather per stage.**  All partitions' READ indices dedup
  into a single raw ``np.take(gstate, read_gidx)`` (READ inversions ride
  the edge flips).  Reads stay per stage — they observe earlier stages'
  immediate writes — and fusion verifies the compiler's concurrency
  contract (no partition reads a global bit another partition of the
  *same* stage writes immediately), refusing to fuse otherwise
  (``FusionError``).
* **Coalesced terminal scatters.**  Immediate GWRITEs, deferred GWRITEs
  and RAM-port input slots become per-stage index tables, each entry
  either *dynamic* (a trace position + flip) or *constant* (a
  precomputed word).  Constant tails are prefilled once at executor
  init; each cycle pays one gather (+ optional XOR) for the dynamic
  prefix and one scatter for the whole table.  Constant RAM inputs are
  preset directly into the arena; constant deferred writes are one
  shared, read-only commit tuple.

RAM ports keep their dynamic per-lane semantics: the fused cycle calls
the interpreter's ``_run_ramop`` on per-partition arena views, in
(stage, partition) order at the end of each stage — after every arena
slot they reference has been scattered, before any later stage runs.
The arena carries no other live state: apart from the preset constants
it is written before read every cycle, so checkpoint restore needs no
executor cooperation.

:class:`FusedProgram` is pure static tables (shared across interpreter
instances via the fusion cache, keyed by bitstream CRC — see
:func:`fused_program`); :class:`FusedExecutor` owns the mutable trace,
arena and scatter buffers of one interpreter.  The tables are exactly
the form a Numba/CuPy backend would consume: fixed index arrays and
constant vectors, no Python control flow per element.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import GemError
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.interpreter import GemInterpreter


class FusionError(GemError):
    """The decoded program violates an assumption stage fusion relies on."""


# -- fused program tables -----------------------------------------------------


@dataclass
class _Wave:
    """All AND nodes of one DAG depth: take + (xor) + and."""

    #: trace positions of the operands, A-halves then B-halves
    gather: np.ndarray
    #: per-operand edge-flip lane masks, or ``None`` if all zero
    flips: np.ndarray | None
    #: node count (gather.size == 2 * count)
    count: int
    #: where this wave's output lands in the trace
    out_offset: int


@dataclass
class _FusedStage:
    #: deduped global bits feeding the stage: ``trace[:n] = gstate[read_gidx]``
    read_gidx: np.ndarray
    waves: list[_Wave]
    trace_size: int
    #: immediate GWRITE table — dynamic prefix, constant tail
    gwn_gidx: np.ndarray
    gwn_src: np.ndarray  # trace positions of the gwn_ndyn dynamic entries
    gwn_inv: np.ndarray | None
    gwn_const: np.ndarray  # precomputed words for the constant tail
    #: dynamic RAM-port input slots: ``arena[ram_slots] = trace[ram_src] ^ inv``
    ram_slots: np.ndarray
    ram_src: np.ndarray
    ram_inv: np.ndarray | None
    #: deferred GWRITEs sampled from this stage's trace (dynamic only)
    def_gidx: np.ndarray
    def_src: np.ndarray
    def_inv: np.ndarray | None
    #: RAM ports in (partition order), run at stage end on arena views
    ramops: list[tuple[int, object]]


@dataclass
class _StaticWork:
    """Per-cycle counter deltas, fixed by the program (mode-independent)."""

    instruction_words: int = 0
    fold_steps: int = 0
    permutation_bits: int = 0
    layer_syncs: int = 0
    device_syncs: int = 0
    global_reads: int = 0
    global_writes: int = 0
    #: NumPy dispatches the legacy per-partition path issues per cycle
    array_ops: int = 0
    #: NumPy dispatches the fused path issues per cycle
    fused_array_ops: int = 0


@dataclass
class FusedProgram:
    """Immutable fusion result: index/constant tables plus work deltas."""

    arena_size: int
    #: per-partition arena base offsets and sizes (for RAM-op views)
    arena_base: list[int]
    arena_span: list[int]
    #: constant RAM-port inputs, written into the arena once at init
    preset_slots: np.ndarray
    preset_vals: np.ndarray
    stages: list[_FusedStage]
    #: constant deferred GWRITEs — one shared read-only commit tuple
    def_const_gidx: np.ndarray
    def_const_vals: np.ndarray
    static: _StaticWork = field(default_factory=_StaticWork)
    #: buffer high-water marks for the executor's preallocations
    max_trace: int = 0
    max_wave: int = 0


# -- fusion cache -------------------------------------------------------------

_FUSE_CACHE: dict[tuple, FusedProgram] = {}
_FUSE_CACHE_MAX = 8
_FUSE_STATS = {"hits": 0, "misses": 0}


def fusion_cache_stats() -> dict:
    """Hit/miss counters of the fusion cache (mirrors the decode cache)."""
    return dict(_FUSE_STATS)


def clear_fusion_cache() -> None:
    _FUSE_CACHE.clear()
    _FUSE_STATS["hits"] = 0
    _FUSE_STATS["misses"] = 0


def fused_program(
    key: tuple, partitions: list, stage_indices: list[list[int]], engine
) -> FusedProgram:
    """Fuse (or fetch the cached fusion of) one decoded program.

    ``key`` is the interpreter's decode-cache key — (bitstream CRC,
    container size, batch) — so Supervisor primary+shadow and repeated
    ``GemSimulator`` instantiations of one design fuse exactly once.
    """
    cached = _FUSE_CACHE.get(key)
    if cached is not None:
        _FUSE_STATS["hits"] += 1
        REGISTRY.counter(
            "gem_fusion_cache_hits_total", "stage-fusion cache hits"
        ).inc()
        return cached
    _FUSE_STATS["misses"] += 1
    REGISTRY.counter(
        "gem_fusion_cache_misses_total", "stage-fusion cache misses"
    ).inc()
    with TRACER.span("fuse", cat="compile", args={"stages": len(stage_indices)}):
        fused = fuse(partitions, stage_indices, engine)
    while len(_FUSE_CACHE) >= _FUSE_CACHE_MAX:
        _FUSE_CACHE.pop(next(iter(_FUSE_CACHE)))
        REGISTRY.counter(
            "gem_cache_evictions_total",
            "LRU evictions per in-process cache",
            labels={"cache": "fusion"},
        ).inc()
    _FUSE_CACHE[key] = fused
    return fused


# -- fusion pass --------------------------------------------------------------

_EMPTY = np.zeros(0, dtype=np.int64)
_EMPTY_P = np.zeros(0, dtype=np.intp)
_EMPTY_U = np.zeros(0, dtype=np.uint64)


def _keep_last(dst: list[int]) -> list[int]:
    """Indices that survive keep-last dedup of a scatter-target list.

    NumPy fancy assignment with repeated indices has no defined order;
    legacy execution overwrites sequentially, so keep-last reproduces it
    deterministically.
    """
    seen: dict[int, int] = {}
    for i, d in enumerate(dst):
        seen[d] = i
    return sorted(seen.values())


def _maybe(inv: np.ndarray) -> np.ndarray | None:
    """Constant vectors that are all-zero elide their ufunc entirely."""
    return inv if inv.size and bool(inv.any()) else None


def count_legacy_array_ops(partitions: list, stage_indices: list[list[int]]) -> int:
    """NumPy dispatches per cycle of the legacy per-partition path.

    Counts every array-producing/consuming call of ``_run_partition`` /
    ``_run_cycle`` / ``_commit``: the per-cycle local zeroing, the READ
    gather+xor+scatter, each layer's gather, the four ufuncs of every
    fold step, writeback gathers+scatters, GWRITE gather+xor(+scatter at
    commit), and the deferred-value xor.  Host-side stimulus injection
    and output extraction are excluded (they are DMA, not kernels), as
    are the dynamically-gated RAM port ops (identical in both modes).
    """
    ops = 0
    for part in partitions:
        ops += 1  # local[:] = 0
        if part.read_gidx.size:
            ops += 3  # gather + xor + scatter
        for layer in part.layers:
            ops += 1  # gather
            ops += 4 * layer.eff_width_log2  # two XORs, OR, AND per step
            ops += sum(
                2 for positions, _ in layer.writebacks if positions.size
            )  # writeback gather + scatter
        if part.gw_now[2].size:
            ops += 3  # gather + xor + scatter
        if part.gw_deferred[2].size:
            ops += 3  # gather + xor now, scatter at commit
    return ops


# Symbolic values during the fusion walk are plain ints:
#   0 → constant 0,  1 → constant 1,  4 + 2*node + flip → dynamic.
# XOR by a decoded constant is ``value ^ 1`` in every case (bit 0 is the
# polarity for constants *and* the edge flip for dynamic values).


def fuse(partitions: list, stage_indices: list[list[int]], engine) -> FusedProgram:
    """Compile decoded partitions into one :class:`FusedProgram`."""
    mask = int(engine.lane_mask)

    arena_span = [p.state_slots for p in partitions]
    arena_base: list[int] = []
    arena_size = 0
    for span in arena_span:
        arena_base.append(arena_size)
        arena_size += span

    static = _StaticWork()
    static.array_ops = count_legacy_array_ops(partitions, stage_indices)
    for stage_parts in stage_indices:
        static.device_syncs += 1
        for idx in stage_parts:
            part = partitions[idx]
            static.instruction_words += part.instruction_words
            static.global_reads += int(part.read_gidx.size)
            static.global_writes += int(
                part.gw_now[2].size + part.gw_deferred[2].size
            )
            static.layer_syncs += len(part.layers)
            for layer in part.layers:
                static.fold_steps += layer.eff_width_log2
                static.permutation_bits += int(layer.gather.size)

    fused_ops = 0
    stages: list[_FusedStage] = []
    preset_slots: list[int] = []
    preset_vals: list[int] = []
    #: (gidx, stage, symbolic value, inv word) in legacy order
    all_deferred: list[tuple[int, int, int, int]] = []
    stage_pos: list[list[int]] = []
    max_trace = max_wave = 0

    for si, stage_parts in enumerate(stage_indices):
        # ---- symbolic walk of every partition, in partition order -------
        ands: list[tuple[int, int] | None] = []  # None = READ node
        node_gidx: list[int] = []  # aligned: gidx for READ nodes, -1 else
        cse: dict[int, int] = {}
        read_ids: dict[int, int] = {}
        gw_entries: list[tuple[int, int, int]] = []  # (gidx, sym, inv)
        ram_entries: list[tuple[int, int]] = []  # (abs slot, sym)
        stage_def: list[tuple[int, int, int]] = []  # (gidx, sym, inv)
        ramops: list[tuple[int, object]] = []
        raw_reads: list[np.ndarray] = []
        raw_writes: list[np.ndarray] = []

        for idx in stage_parts:
            part = partitions[idx]
            local = [0] * part.state_slots
            if part.read_gidx.size:
                raw_reads.append(part.read_gidx)
                rinv = np.ravel(part.read_inv).tolist()
                for j, (g, s) in enumerate(
                    zip(part.read_gidx.tolist(), part.read_slots.tolist())
                ):
                    nid = read_ids.get(g)
                    if nid is None:
                        nid = len(ands)
                        ands.append(None)
                        node_gidx.append(g)
                        read_ids[g] = nid
                    local[s] = 4 + 2 * nid + (1 if rinv[j] else 0)
            for layer in part.layers:
                vec = [local[i] for i in layer.gather.tolist()]
                for step in range(layer.eff_width_log2):
                    # ravel: K-word planes decode constants as (n, 1)
                    # columns; the symbolic walk only needs 0/mask words
                    xa = np.ravel(layer.xor_a[step]).tolist()
                    xb = np.ravel(layer.xor_b[step]).tolist()
                    ob = np.ravel(layer.or_b[step]).tolist()
                    half = len(vec) // 2
                    out = [0] * half
                    for p in range(half):
                        a = vec[2 * p] ^ (1 if xa[p] else 0)
                        if ob[p]:
                            b = 1
                        else:
                            b = vec[2 * p + 1] ^ (1 if xb[p] else 0)
                        if a == 0 or b == 0:
                            continue  # out[p] stays 0
                        if a == 1:
                            out[p] = b
                            continue
                        if b == 1:
                            out[p] = a
                            continue
                        if a > b:
                            a, b = b, a
                        key = (a << 42) | b
                        nid = cse.get(key)
                        if nid is None:
                            nid = len(ands)
                            ands.append((a, b))
                            node_gidx.append(-1)
                            cse[key] = nid
                        out[p] = 4 + 2 * nid
                    vec = out
                    positions, slots = layer.writebacks[step]
                    if positions.size:
                        for pos_, slot in zip(positions.tolist(), slots.tolist()):
                            local[slot] = vec[pos_]
            slots_, inv_, gidx_ = part.gw_now
            if gidx_.size:
                raw_writes.append(gidx_)
                for s, iv, g in zip(
                    slots_.tolist(), np.ravel(inv_).tolist(), gidx_.tolist()
                ):
                    gw_entries.append((g, local[s], iv))
            slots_, inv_, gidx_ = part.gw_deferred
            for s, iv, g in zip(
                slots_.tolist(), np.ravel(inv_).tolist(), gidx_.tolist()
            ):
                stage_def.append((g, local[s], iv))
            base = arena_base[idx]
            for op in part.ramops:
                ramops.append((idx, op))
                for s in (
                    op.raddr_slots.tolist()
                    + op.waddr_slots.tolist()
                    + op.wdata_slots.tolist()
                    + [op.ren_slot, op.wen_slot]
                ):
                    ram_entries.append((base + s, local[s]))

        # The fused schedule gathers all of a stage's READs before any of
        # its immediate GWRITEs land; verify the compiler kept them apart.
        if raw_reads and raw_writes:
            overlap = np.intersect1d(
                np.concatenate(raw_reads), np.concatenate(raw_writes)
            )
            if overlap.size:
                raise FusionError(
                    f"stage {si} reads global bits "
                    f"{overlap[:4].tolist()} written immediately within the "
                    "same stage; the fused reads-first schedule cannot "
                    "preserve that ordering"
                )

        # ---- DCE from the terminals -------------------------------------
        nand = len(ands)
        live = bytearray(nand)
        stack: list[int] = []

        def _mark(v: int) -> None:
            if v >= 4:
                nid = (v - 4) >> 1
                if not live[nid]:
                    live[nid] = 1
                    stack.append(nid)

        for _, sym, _ in gw_entries:
            _mark(sym)
        for _, sym in ram_entries:
            _mark(sym)
        for _, sym, _ in stage_def:
            _mark(sym)
        while stack:
            pair = ands[stack.pop()]
            if pair is not None:
                _mark(pair[0])
                _mark(pair[1])

        # ---- ASAP wave schedule (creation order is topological) ---------
        depth = [0] * nand
        by_depth: dict[int, list[int]] = {}
        for nid in range(nand):
            if not live[nid]:
                continue
            pair = ands[nid]
            if pair is None:
                continue
            a, b = pair
            da = depth[(a - 4) >> 1] if a >= 4 else 0
            db = depth[(b - 4) >> 1] if b >= 4 else 0
            d = (da if da > db else db) + 1
            depth[nid] = d
            by_depth.setdefault(d, []).append(nid)

        pos = [0] * nand
        read_gidx: list[int] = []
        for nid in range(nand):
            if live[nid] and ands[nid] is None:
                pos[nid] = len(read_gidx)
                read_gidx.append(node_gidx[nid])
        off = len(read_gidx)
        if off:
            fused_ops += 1  # the stage read gather

        waves: list[_Wave] = []
        for d in sorted(by_depth):
            wnodes = by_depth[d]
            n = len(wnodes)
            gather = np.empty(2 * n, dtype=np.intp)
            flips = np.zeros(2 * n, dtype=np.uint64)
            for i, nid in enumerate(wnodes):
                a, b = ands[nid]  # type: ignore[misc]
                gather[i] = pos[(a - 4) >> 1]
                gather[n + i] = pos[(b - 4) >> 1]
                if a & 1:
                    flips[i] = mask
                if b & 1:
                    flips[n + i] = mask
                pos[nid] = off + i
            fl = _maybe(flips)
            waves.append(_Wave(gather=gather, flips=fl, count=n, out_offset=off))
            fused_ops += 2 + (fl is not None)
            max_wave = max(max_wave, 2 * n)
            off += n
        trace_size = off
        max_trace = max(max_trace, trace_size)

        # ---- terminal tables --------------------------------------------
        def _split(entries):
            """Keep-last dedup, then dynamic-first/constant-tail split."""
            entries = [entries[i] for i in _keep_last([e[0] for e in entries])]
            dyn = [e for e in entries if e[1] >= 4]
            const = [e for e in entries if e[1] < 4]
            tgt = np.array([e[0] for e in dyn + const], dtype=np.int64)
            src = np.array(
                [pos[(sym - 4) >> 1] for _, sym, _ in dyn], dtype=np.intp
            )
            inv = np.array(
                [iv ^ (mask if sym & 1 else 0) for _, sym, iv in dyn],
                dtype=np.uint64,
            )
            cvals = np.array(
                [(mask if sym else 0) ^ iv for _, sym, iv in const],
                dtype=np.uint64,
            )
            return tgt, src, _maybe(inv), cvals

        gwn_gidx, gwn_src, gwn_inv, gwn_const = _split(gw_entries)
        if gwn_gidx.size:
            fused_ops += 1  # scatter
            if gwn_src.size:
                fused_ops += 1 + (gwn_inv is not None)  # gather (+ xor)

        ram_keep = [ram_entries[i] for i in _keep_last([e[0] for e in ram_entries])]
        ram_slots_l, ram_src_l, ram_inv_l = [], [], []
        for slot, sym in ram_keep:
            if sym >= 4:
                ram_slots_l.append(slot)
                ram_src_l.append(pos[(sym - 4) >> 1])
                ram_inv_l.append(mask if sym & 1 else 0)
            elif sym == 1:
                preset_slots.append(slot)
                preset_vals.append(mask)
            # sym == 0: the arena is zero-allocated, nothing to do
        ram_slots = np.array(ram_slots_l, dtype=np.int64)
        ram_src = np.array(ram_src_l, dtype=np.intp)
        ram_inv = _maybe(np.array(ram_inv_l, dtype=np.uint64))
        if ram_slots.size:
            fused_ops += 2 + (ram_inv is not None)  # gather (+ xor) + scatter

        all_deferred.extend((g, si, sym, iv) for g, sym, iv in stage_def)
        stage_pos.append(pos)
        stages.append(
            _FusedStage(
                read_gidx=np.array(read_gidx, dtype=np.int64),
                waves=waves,
                trace_size=trace_size,
                gwn_gidx=gwn_gidx,
                gwn_src=gwn_src,
                gwn_inv=gwn_inv,
                gwn_const=gwn_const,
                ram_slots=ram_slots,
                ram_src=ram_src,
                ram_inv=ram_inv,
                def_gidx=_EMPTY.copy(),  # filled below after global dedup
                def_src=_EMPTY_P.copy(),
                def_inv=None,
                ramops=ramops,
            )
        )

    # ---- deferred GWRITEs: global keep-last dedup, then split per stage --
    keep = _keep_last([g for g, _, _, _ in all_deferred])
    per_stage: dict[int, list[tuple[int, int, int]]] = {}
    const_def: list[tuple[int, int, int]] = []
    for i in keep:
        g, si, sym, iv = all_deferred[i]
        if sym >= 4:
            per_stage.setdefault(si, []).append((g, sym, iv))
        else:
            const_def.append((g, sym, iv))
    for si, entries in per_stage.items():
        pos = stage_pos[si]
        st = stages[si]
        st.def_gidx = np.array([g for g, _, _ in entries], dtype=np.int64)
        st.def_src = np.array(
            [pos[(sym - 4) >> 1] for _, sym, _ in entries], dtype=np.intp
        )
        st.def_inv = _maybe(
            np.array(
                [iv ^ (mask if sym & 1 else 0) for _, sym, iv in entries],
                dtype=np.uint64,
            )
        )
        fused_ops += 2 + (st.def_inv is not None)  # gather (+ xor) + commit
    def_const_gidx = np.array([g for g, _, _ in const_def], dtype=np.int64)
    def_const_vals = np.array(
        [(mask if sym else 0) ^ iv for _, sym, iv in const_def], dtype=np.uint64
    )
    if def_const_gidx.size:
        fused_ops += 1  # the commit scatter of the shared constant tuple

    static.fused_array_ops = fused_ops
    return FusedProgram(
        arena_size=arena_size,
        arena_base=arena_base,
        arena_span=arena_span,
        preset_slots=np.array(preset_slots, dtype=np.int64),
        preset_vals=np.array(preset_vals, dtype=np.uint64),
        stages=stages,
        def_const_gidx=def_const_gidx,
        def_const_vals=def_const_vals,
        static=static,
        max_trace=max_trace,
        max_wave=max_wave,
    )


# -- executor -----------------------------------------------------------------


class FusedExecutor:
    """Per-interpreter runtime of one :class:`FusedProgram`.

    Owns the trace, the RAM-slot arena and every terminal scatter buffer;
    ``run_cycle`` issues only fixed-shape ufuncs with ``out=`` into them
    (zero allocation in the hot loop, apart from the fancy-index scatters
    NumPy performs in place).  The single trace buffer is reused across
    stages — nothing reads a stage's trace after its deferred values are
    sampled — and the arena carries no live state across cycles beyond
    the constant presets.
    """

    def __init__(self, fused: FusedProgram, interp: "GemInterpreter") -> None:
        self.fused = fused
        self.interp = interp
        eng = interp.engine
        backend = interp.backend
        #: multi-word lane plane? buffers then carry a trailing (K,) axis
        #: and per-element constants broadcast as (n, 1) columns
        self._plane = eng.words > 1

        def col(arr):
            """Constant vectors broadcastable across the lane plane."""
            if arr is None or not self._plane:
                return arr
            return arr[:, None]

        self.arena = eng.zeros(fused.arena_size)
        if fused.preset_slots.size:
            self.arena[fused.preset_slots] = col(fused.preset_vals)
        self.trace = eng.zeros(fused.max_trace)
        self._views = [
            self.arena[base : base + span]
            for base, span in zip(fused.arena_base, fused.arena_span)
        ]
        self._def_const = (
            (fused.def_const_gidx, col(fused.def_const_vals), None)
            if fused.def_const_gidx.size
            else None
        )
        self._compiled: list | None = None
        if backend.name != "numpy":
            # Whole-stage kernels compiled by the backend from the
            # flattened schedule; the numpy buffers below are unused.
            from repro.core.backend import stage_plan

            self._compiled = [
                backend.compile_stage(stage_plan(stage)) for stage in fused.stages
            ]
            self._def_bufs2d = [
                np.zeros((stage.def_gidx.size, eng.words), dtype=np.uint64)
                for stage in fused.stages
            ]
            # merge() needs 1-D values when the state itself is 1-D
            self._def_flat = [
                buf if self._plane else buf.reshape(-1)
                for buf in self._def_bufs2d
            ]
            return
        self._wave_buf = eng.zeros(fused.max_wave)
        self._gwn_bufs: list[np.ndarray] = []
        self._ram_bufs: list[np.ndarray] = []
        self._def_bufs: list[np.ndarray] = []
        #: per-stage constant vectors, plane-broadcastable
        self._gwn_invs: list[np.ndarray | None] = []
        self._ram_invs: list[np.ndarray | None] = []
        self._def_invs: list[np.ndarray | None] = []
        # Per-wave execution tuples with the buffer views presliced: the
        # hot loop then touches no Python-level slicing or the np.take
        # wrapper (the bound ndarray.take skips ~2.5us of dispatch per
        # call, and every view below aliases a preallocated buffer).
        self._read_views: list[np.ndarray] = []
        self._wave_exec: list[list[tuple]] = []
        for stage in fused.stages:
            buf = eng.zeros(stage.gwn_gidx.size)
            buf[stage.gwn_src.size :] = col(stage.gwn_const)
            self._gwn_bufs.append(buf)
            self._ram_bufs.append(eng.zeros(stage.ram_slots.size))
            self._def_bufs.append(eng.zeros(stage.def_gidx.size))
            self._gwn_invs.append(col(stage.gwn_inv))
            self._ram_invs.append(col(stage.ram_inv))
            self._def_invs.append(col(stage.def_inv))
            self._read_views.append(self.trace[: stage.read_gidx.size])
            waves = []
            for wave in stage.waves:
                n = wave.count
                ab = self._wave_buf[: 2 * n]
                waves.append(
                    (
                        wave.gather,
                        col(wave.flips),
                        ab,
                        ab[:n],
                        ab[n:],
                        self.trace[wave.out_offset : wave.out_offset + n],
                    )
                )
            self._wave_exec.append(waves)

    def _run_cycle_compiled(self):
        """One cycle through the backend's per-stage kernels.

        The kernels see 2-D ``(n, K)`` planes; single-word batches pass
        zero-copy reshape views.  Phase attribution is coarser than the
        numpy path — a fused native stage has no gather/fold boundary —
        so kernel time lands in ``fold``.
        """
        fused = self.fused
        interp = self.interp
        profile = interp.profile
        times = interp.phase_times
        gstate = interp.global_state
        if self._plane:
            g2, t2, a2 = gstate, self.trace, self.arena
        else:
            g2 = gstate.reshape(-1, 1)
            t2 = self.trace.reshape(-1, 1)
            a2 = self.arena.reshape(-1, 1)
        deferred: list[tuple[np.ndarray, np.ndarray, np.uint64 | None]] = []
        for sidx, stage in enumerate(fused.stages):
            if profile:
                t0 = time.perf_counter()
            self._compiled[sidx](g2, t2, a2, self._def_bufs2d[sidx])
            if profile:
                t1 = time.perf_counter()
                times["fold"] += t1 - t0
                t0 = t1
            if stage.def_gidx.size:
                deferred.append((stage.def_gidx, self._def_flat[sidx], None))
            for pidx, op in stage.ramops:
                deferred.extend(interp._run_ramop(op, self._views[pidx]))
            if profile:
                times["commit"] += time.perf_counter() - t0
        if self._def_const is not None:
            deferred.append(self._def_const)
        return deferred

    def run_cycle(self) -> list[tuple[np.ndarray, np.ndarray, np.uint64 | None]]:
        if self._compiled is not None:
            return self._run_cycle_compiled()
        fused = self.fused
        trace = self.trace
        arena = self.arena
        interp = self.interp
        gstate = interp.global_state
        profile = interp.profile
        times = interp.phase_times
        deferred: list[tuple[np.ndarray, np.ndarray, np.uint64 | None]] = []
        for sidx, stage in enumerate(fused.stages):
            if profile:
                t0 = time.perf_counter()
            if stage.read_gidx.size:
                gstate.take(stage.read_gidx, 0, self._read_views[sidx], "clip")
            if profile:
                t1 = time.perf_counter()
                times["gather"] += t1 - t0
                t0 = t1
            for gather, flips, ab, a, b, out in self._wave_exec[sidx]:
                trace.take(gather, 0, ab, "clip")
                if flips is not None:
                    np.bitwise_xor(ab, flips, out=ab)
                np.bitwise_and(a, b, out=out)
            if profile:
                t1 = time.perf_counter()
                times["fold"] += t1 - t0
                t0 = t1
            if stage.gwn_gidx.size:
                buf = self._gwn_bufs[sidx]
                nd = stage.gwn_src.size
                if nd:
                    trace.take(stage.gwn_src, 0, buf[:nd], "clip")
                    inv = self._gwn_invs[sidx]
                    if inv is not None:
                        np.bitwise_xor(buf[:nd], inv, out=buf[:nd])
                gstate[stage.gwn_gidx] = buf
            if stage.ram_slots.size:
                buf = self._ram_bufs[sidx]
                trace.take(stage.ram_src, 0, buf, "clip")
                inv = self._ram_invs[sidx]
                if inv is not None:
                    np.bitwise_xor(buf, inv, out=buf)
                arena[stage.ram_slots] = buf
            if stage.def_gidx.size:
                buf = self._def_bufs[sidx]
                trace.take(stage.def_src, 0, buf, "clip")
                inv = self._def_invs[sidx]
                if inv is not None:
                    np.bitwise_xor(buf, inv, out=buf)
                deferred.append((stage.def_gidx, buf, None))
            for pidx, op in stage.ramops:
                deferred.extend(interp._run_ramop(op, self._views[pidx]))
            if profile:
                times["commit"] += time.perf_counter() - t0
        if self._def_const is not None:
            deferred.append(self._def_const)
        return deferred
