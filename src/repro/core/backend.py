"""Pluggable execution backends for the stage-fused hot loop.

:class:`repro.core.fused.FusedProgram` was designed as "the kernel
schedule a CuPy/Numba backend would consume" — fixed index arrays and
constant vectors, no per-element Python control flow.  This module is
the seam that cashes that check: an :class:`ArrayBackend` protocol over
the primitives the executor needs (buffer allocation, gather / xor /
and / scatter, the boomerang fold) plus a whole-stage compilation hook,
with three implementations:

* :class:`NumpyBackend` — the default; the executor keeps its
  hand-tuned bound-method ``take`` loop (extracted alongside this
  protocol from the historical ``FusedExecutor`` hot path), so numpy
  runs are byte-identical to the pre-backend engine.
* :class:`NumbaBackend` — JIT-compiles each stage's wave schedule into
  **one fused native kernel per stage**: the read gather, every wave's
  gather+flip+AND, and all terminal scatters run as a single nopython
  loop nest with no per-wave NumPy dispatch and no intermediate
  temporaries.  One generic kernel is compiled once per process (numba
  caches it on disk) and parameterized by each stage's index tables.
* :class:`CupyBackend` — a GPU drop-in stub: the same stage schedule
  executed with CuPy ufuncs, staging state to and from the device per
  stage.  It exists to pin the protocol shape for a real GPU port; the
  per-stage transfers make it a correctness backend, not a fast one.

Backends whose runtime dependency is missing (no numba; no cupy or no
visible GPU) resolve to numpy with a single warning per process —
mirroring the ``FusionError`` → legacy fallback pattern — so
``--backend numba`` never hard-fails a run on a machine without it.

Lane planes: every kernel here is written against the 2-D ``(n, K)``
plane layout of :mod:`repro.core.engine`.  Single-word batches
(``K == 1``) pass zero-copy ``(n, 1)`` reshape views, so one kernel
serves every batch size.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro.errors import BackendUnavailableError

logger = logging.getLogger(__name__)

#: selectable backend names, in preference order
BACKEND_NAMES = ("numpy", "numba", "cupy")


@dataclass
class StagePlan:
    """One fused stage's schedule, flattened for kernel consumption.

    The per-wave tables of :class:`repro.core.fused._FusedStage` are
    concatenated into flat arrays with per-wave ``(count, out, start)``
    descriptors so a single compiled kernel can run any stage.  Elided
    constants (``None`` inversion vectors) are materialized as zeros —
    a compiled kernel XORs them for free, unlike a NumPy dispatch.
    """

    trace_size: int
    read_gidx: np.ndarray  # int64 (nread,)
    wave_count: np.ndarray  # int64 (nwaves,) nodes per wave
    wave_out: np.ndarray  # int64 (nwaves,) trace offset of the outputs
    wave_start: np.ndarray  # int64 (nwaves,) offset into gather/flips
    gather: np.ndarray  # int64, all waves' operand positions (A then B)
    flips: np.ndarray  # uint64, matching edge-flip words
    gwn_gidx: np.ndarray  # int64, immediate GWRITE targets (dyn + const)
    gwn_src: np.ndarray  # int64, trace positions of the dynamic prefix
    gwn_inv: np.ndarray  # uint64 (ndyn,)
    gwn_const: np.ndarray  # uint64, the constant tail's words
    ram_slots: np.ndarray  # int64, dynamic RAM-port arena slots
    ram_src: np.ndarray  # int64
    ram_inv: np.ndarray  # uint64
    def_src: np.ndarray  # int64, deferred-GWRITE trace positions
    def_inv: np.ndarray  # uint64


def stage_plan(stage) -> StagePlan:
    """Flatten one ``_FusedStage`` into a :class:`StagePlan`."""
    counts, outs, starts, gathers, flips = [], [], [], [], []
    off = 0
    for wave in stage.waves:
        counts.append(wave.count)
        outs.append(wave.out_offset)
        starts.append(off)
        gathers.append(wave.gather.astype(np.int64))
        flips.append(
            wave.flips
            if wave.flips is not None
            else np.zeros(2 * wave.count, dtype=np.uint64)
        )
        off += 2 * wave.count

    def _zeros_like(inv, n):
        return inv if inv is not None else np.zeros(n, dtype=np.uint64)

    return StagePlan(
        trace_size=stage.trace_size,
        read_gidx=stage.read_gidx.astype(np.int64),
        wave_count=np.array(counts, dtype=np.int64),
        wave_out=np.array(outs, dtype=np.int64),
        wave_start=np.array(starts, dtype=np.int64),
        gather=(
            np.concatenate(gathers) if gathers else np.zeros(0, dtype=np.int64)
        ),
        flips=(
            np.concatenate(flips) if flips else np.zeros(0, dtype=np.uint64)
        ),
        gwn_gidx=stage.gwn_gidx.astype(np.int64),
        gwn_src=stage.gwn_src.astype(np.int64),
        gwn_inv=_zeros_like(stage.gwn_inv, stage.gwn_src.size),
        gwn_const=stage.gwn_const,
        ram_slots=stage.ram_slots.astype(np.int64),
        ram_src=stage.ram_src.astype(np.int64),
        ram_inv=_zeros_like(stage.ram_inv, stage.ram_src.size),
        def_src=stage.def_src.astype(np.int64),
        def_inv=_zeros_like(stage.def_inv, stage.def_src.size),
    )


class ArrayBackend:
    """Protocol for the executor's array primitives (numpy semantics).

    The base class *is* the numpy implementation of the individual
    primitives; subclasses override :meth:`compile_stage` to replace the
    per-stage schedule with a fused kernel (and may override the
    primitives for device-resident arrays).  All stage-level arrays are
    2-D ``(n, K)`` lane planes — ``K == 1`` callers pass reshape views.
    """

    name = "numpy"

    # -- buffer allocation ----------------------------------------------------

    def zeros(self, shape) -> np.ndarray:
        """A zeroed uint64 buffer the backend's kernels can target."""
        return np.zeros(shape, dtype=np.uint64)

    # -- primitives (one fused-schedule step each) ----------------------------

    def gather(self, src: np.ndarray, idx: np.ndarray, out: np.ndarray) -> None:
        """``out[:] = src[idx]`` along axis 0 (clip mode, preallocated)."""
        src.take(idx, 0, out, "clip")

    def scatter(self, dst: np.ndarray, idx: np.ndarray, values: np.ndarray) -> None:
        """``dst[idx] = values`` along axis 0."""
        dst[idx] = values

    def xor(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
        np.bitwise_xor(a, b, out=out)

    def and_(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
        np.bitwise_and(a, b, out=out)

    def fold(self, vec, xor_a, xor_b, or_b) -> np.ndarray:
        """One boomerang fold step over packed lane words."""
        return (vec[0::2] ^ xor_a) & ((vec[1::2] ^ xor_b) | or_b)

    # -- whole-stage compilation ----------------------------------------------

    def compile_stage(self, plan: StagePlan):
        """Compile one stage schedule; returns
        ``run(gstate, trace, arena, def_buf) -> None`` over ``(n, K)``
        planes.  The returned callable performs the stage's read gather,
        every wave, and the gwn/ram/deferred terminal stores
        (``def_buf`` receives the deferred values; the caller commits
        them at the cycle boundary)."""
        ndyn = plan.gwn_src.size
        gwn_const = plan.gwn_const[:, None]
        gwn_inv = plan.gwn_inv[:, None]
        ram_inv = plan.ram_inv[:, None]
        def_inv = plan.def_inv[:, None]
        flips = plan.flips[:, None]
        waves = [
            (
                plan.gather[s : s + 2 * n],
                flips[s : s + 2 * n],
                n,
                out,
            )
            for n, out, s in zip(
                plan.wave_count.tolist(),
                plan.wave_out.tolist(),
                plan.wave_start.tolist(),
            )
        ]

        def run(gstate, trace, arena, def_buf):
            if plan.read_gidx.size:
                trace[: plan.read_gidx.size] = gstate[plan.read_gidx]
            for gather, wflips, n, out in waves:
                ab = trace[gather] ^ wflips
                np.bitwise_and(ab[:n], ab[n:], out=trace[out : out + n])
            if plan.gwn_gidx.size:
                if ndyn:
                    gstate[plan.gwn_gidx[:ndyn]] = trace[plan.gwn_src] ^ gwn_inv
                if plan.gwn_const.size:
                    gstate[plan.gwn_gidx[ndyn:]] = gwn_const
            if plan.ram_slots.size:
                arena[plan.ram_slots] = trace[plan.ram_src] ^ ram_inv
            if plan.def_src.size:
                np.bitwise_xor(trace[plan.def_src], def_inv, out=def_buf)

        return run


class NumpyBackend(ArrayBackend):
    """The default backend: plain NumPy ufuncs on host memory.

    ``FusedExecutor`` special-cases this backend to keep its historical
    presliced bound-method hot loop (see the executor docstring), so a
    numpy run is byte-identical to the pre-backend engine; the
    :meth:`ArrayBackend.compile_stage` path above is the generic
    reference implementation the other backends mirror.
    """

    name = "numpy"


def _build_numba_kernel(numba):
    """The one generic stage kernel, compiled lazily per process.

    Everything a stage does — read gather, each wave's gather + flip +
    AND, terminal gwn/ram/deferred stores — runs inside a single
    ``nopython`` loop nest over the ``(n, K)`` lane planes: no per-wave
    dispatch, no intermediate ``ab`` buffer, no constant-elision
    branches (zero XORs are free in native code).  Within a wave every
    operand position is strictly below the wave's output offset, so the
    sequential in-place trace update is safe.
    """

    @numba.njit(cache=True, fastmath=False)
    def stage_kernel(
        gstate,
        trace,
        arena,
        def_buf,
        read_gidx,
        wave_count,
        wave_out,
        wave_start,
        gather,
        flips,
        gwn_gidx,
        gwn_src,
        gwn_inv,
        gwn_const,
        ram_slots,
        ram_src,
        ram_inv,
        def_src,
        def_inv,
    ):  # pragma: no cover - requires numba
        K = gstate.shape[1]
        for i in range(read_gidx.size):
            g = read_gidx[i]
            for k in range(K):
                trace[i, k] = gstate[g, k]
        for w in range(wave_count.size):
            n = wave_count[w]
            out = wave_out[w]
            s = wave_start[w]
            for p in range(n):
                ia = gather[s + p]
                ib = gather[s + n + p]
                fa = flips[s + p]
                fb = flips[s + n + p]
                for k in range(K):
                    trace[out + p, k] = (trace[ia, k] ^ fa) & (trace[ib, k] ^ fb)
        ndyn = gwn_src.size
        for i in range(gwn_gidx.size):
            g = gwn_gidx[i]
            if i < ndyn:
                src = gwn_src[i]
                inv = gwn_inv[i]
                for k in range(K):
                    gstate[g, k] = trace[src, k] ^ inv
            else:
                c = gwn_const[i - ndyn]
                for k in range(K):
                    gstate[g, k] = c
        for i in range(ram_slots.size):
            src = ram_src[i]
            inv = ram_inv[i]
            slot = ram_slots[i]
            for k in range(K):
                arena[slot, k] = trace[src, k] ^ inv
        for i in range(def_src.size):
            src = def_src[i]
            inv = def_inv[i]
            for k in range(K):
                def_buf[i, k] = trace[src, k] ^ inv

    return stage_kernel


class NumbaBackend(ArrayBackend):
    """Stage schedules JIT-compiled to one native kernel per stage."""

    name = "numba"

    def __init__(self) -> None:
        try:
            import numba
        except ImportError as exc:
            raise BackendUnavailableError(
                "numba is not installed (pip install repro[numba])"
            ) from exc
        self._kernel = _build_numba_kernel(numba)

    def compile_stage(self, plan: StagePlan):
        kernel = self._kernel

        def run(gstate, trace, arena, def_buf):  # pragma: no cover - needs numba
            kernel(
                gstate,
                trace,
                arena,
                def_buf,
                plan.read_gidx,
                plan.wave_count,
                plan.wave_out,
                plan.wave_start,
                plan.gather,
                plan.flips,
                plan.gwn_gidx,
                plan.gwn_src,
                plan.gwn_inv,
                plan.gwn_const,
                plan.ram_slots,
                plan.ram_src,
                plan.ram_inv,
                plan.def_src,
                plan.def_inv,
            )

        return run


class CupyBackend(ArrayBackend):
    """GPU stage execution via CuPy — correctness stub.

    Uploads the stage's inputs, runs the generic schedule with CuPy
    ufuncs, and downloads the results, once per stage.  A real port
    would keep ``gstate``/``trace``/``arena`` device-resident across the
    whole run (the protocol's ``zeros`` hook is where that starts); the
    stub keeps state on the host so checkpoints, scrubbing, and fault
    injection work unchanged.
    """

    name = "cupy"

    def __init__(self) -> None:
        try:
            import cupy
        except ImportError as exc:
            raise BackendUnavailableError(
                "cupy is not installed (pip install cupy-cuda12x)"
            ) from exc
        try:
            if cupy.cuda.runtime.getDeviceCount() < 1:
                raise BackendUnavailableError("cupy found no CUDA device")
        except BackendUnavailableError:
            raise
        except Exception as exc:
            raise BackendUnavailableError(f"CUDA unavailable ({exc})") from exc
        self._cp = cupy

    def compile_stage(self, plan: StagePlan):  # pragma: no cover - needs a GPU
        cp = self._cp
        ndyn = plan.gwn_src.size
        d = {
            name: cp.asarray(getattr(plan, name))
            for name in (
                "read_gidx",
                "gather",
                "flips",
                "gwn_gidx",
                "gwn_src",
                "gwn_inv",
                "gwn_const",
                "ram_slots",
                "ram_src",
                "ram_inv",
                "def_src",
                "def_inv",
            )
        }
        waves = list(
            zip(
                plan.wave_count.tolist(),
                plan.wave_out.tolist(),
                plan.wave_start.tolist(),
            )
        )

        def run(gstate, trace, arena, def_buf):
            d_trace = cp.zeros(trace.shape, dtype=cp.uint64)
            d_gstate = cp.asarray(gstate)
            if plan.read_gidx.size:
                d_trace[: plan.read_gidx.size] = d_gstate[d["read_gidx"]]
            for n, out, s in waves:
                ab = d_trace[d["gather"][s : s + 2 * n]] ^ d["flips"][s : s + 2 * n, None]
                d_trace[out : out + n] = ab[:n] & ab[n:]
            if plan.gwn_gidx.size:
                if ndyn:
                    d_gstate[d["gwn_gidx"][:ndyn]] = (
                        d_trace[d["gwn_src"]] ^ d["gwn_inv"][:, None]
                    )
                if plan.gwn_const.size:
                    d_gstate[d["gwn_gidx"][ndyn:]] = d["gwn_const"][:, None]
                gstate[plan.gwn_gidx] = cp.asnumpy(d_gstate[d["gwn_gidx"]])
            if plan.ram_slots.size:
                arena[plan.ram_slots] = cp.asnumpy(
                    d_trace[d["ram_src"]] ^ d["ram_inv"][:, None]
                )
            if plan.def_src.size:
                def_buf[:] = cp.asnumpy(d_trace[d["def_src"]] ^ d["def_inv"][:, None])
            trace[:] = cp.asnumpy(d_trace)

        return run


# -- resolution ---------------------------------------------------------------

_CLASSES = {"numpy": NumpyBackend, "numba": NumbaBackend, "cupy": CupyBackend}
_INSTANCES: dict[str, ArrayBackend] = {}
_FALLBACK_WARNED: set[str] = set()


def resolve_backend(name=None, *, strict: bool = False) -> ArrayBackend:
    """Resolve a backend name (or instance) to a live backend.

    ``None`` means numpy.  A backend whose dependency is missing falls
    back to numpy with one warning per process (``strict=True`` raises
    :class:`BackendUnavailableError` instead) — the same shape as the
    ``FusionError`` → legacy fallback.
    """
    if name is None:
        name = "numpy"
    if isinstance(name, ArrayBackend):
        return name
    if name not in _CLASSES:
        raise BackendUnavailableError(
            f"unknown backend {name!r}; choose from {BACKEND_NAMES}"
        )
    inst = _INSTANCES.get(name)
    if inst is not None:
        return inst
    try:
        inst = _CLASSES[name]()
    except BackendUnavailableError as exc:
        if strict:
            raise
        if name not in _FALLBACK_WARNED:
            _FALLBACK_WARNED.add(name)
            logger.warning(
                "%s backend unavailable (%s); falling back to numpy", name, exc
            )
        return resolve_backend("numpy")
    _INSTANCES[name] = inst
    return inst


def available_backends() -> tuple[str, ...]:
    """Backends whose dependencies resolve on this machine."""
    out = []
    for name in BACKEND_NAMES:
        try:
            resolve_backend(name, strict=True)
        except BackendUnavailableError:
            continue
        out.append(name)
    return tuple(out)


def reset_backend_state() -> None:
    """Drop cached instances and the warn-once set (tests)."""
    _INSTANCES.clear()
    _FALLBACK_WARNED.clear()
